// Package repro's top-level benchmarks regenerate every table and figure
// in the paper's evaluation (§4) at test scale, reporting the headline
// numbers as benchmark metrics. Run the full paper-scale versions with
// cmd/mosh-bench.
//
//	go test -bench=. -benchmem
//
// Benchmarks report custom metrics named after the paper's statistics
// (medians and means in milliseconds), so who-wins and by-what-factor is
// visible straight from the benchmark output.
package repro

import (
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/netem"
	"repro/internal/overlay"
	"repro/internal/trace"
	"repro/internal/transport"
)

// benchConfig is the reduced workload used per benchmark iteration
// (six users, 120 keystrokes each ≈ 720 keystrokes per arm).
func benchConfig(i int) bench.Config {
	return bench.Config{KeystrokesPerUser: 120, Seed: int64(i)*31 + 1}
}

func reportComparison(b *testing.B, c bench.Comparison) {
	b.ReportMetric(float64(c.Mosh.Stats.Median)/1e6, "mosh-median-ms")
	b.ReportMetric(float64(c.Mosh.Stats.Mean)/1e6, "mosh-mean-ms")
	b.ReportMetric(float64(c.SSH.Stats.Median)/1e6, "ssh-median-ms")
	b.ReportMetric(float64(c.SSH.Stats.Mean)/1e6, "ssh-mean-ms")
	b.ReportMetric(c.Mosh.Stats.FracInstant*100, "mosh-instant-%")
}

// BenchmarkFigure2EVDO regenerates Figure 2: keystroke response time over
// the Sprint EV-DO (3G) model, Mosh vs SSH.
// Paper: Mosh median 5 ms / mean 173 ms; SSH median 503 ms / mean 515 ms.
func BenchmarkFigure2EVDO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportComparison(b, bench.Figure2(benchConfig(i)))
	}
}

// BenchmarkFigure3Collection regenerates Figure 3: mean protocol-induced
// delay versus the collection interval (frame interval 250 ms).
// Paper: minimum at 8 ms on a 30–90 ms curve.
func BenchmarkFigure3Collection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		traces := []*trace.Trace{trace.Generate(int64(i)+5, trace.SixProfiles()[0], 300)}
		pts := bench.CollectionSweep(traces, bench.Figure3Intervals())
		b.ReportMetric(float64(bench.BestInterval(pts))/1e6, "best-interval-ms")
		for _, p := range pts {
			if p.Interval == 8*time.Millisecond {
				b.ReportMetric(float64(p.MeanDelay)/1e6, "delay-at-8ms-ms")
			}
			if p.Interval == 100*time.Millisecond {
				b.ReportMetric(float64(p.MeanDelay)/1e6, "delay-at-100ms-ms")
			}
		}
	}
}

// BenchmarkTableLTE regenerates the Verizon LTE table: one concurrent TCP
// download fills the bottleneck buffer.
// Paper: SSH 5.36 s / 5.03 s / 2.14 s; Mosh <5 ms / 1.70 s / 2.60 s.
func BenchmarkTableLTE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportComparison(b, bench.TableLTE(benchConfig(i)))
	}
}

// BenchmarkTableSingapore regenerates the MIT→Singapore wired-path table.
// Paper: SSH 273 ms / 272 ms / 9 ms; Mosh <5 ms / 86 ms / 132 ms.
func BenchmarkTableSingapore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportComparison(b, bench.TableSingapore(benchConfig(i)))
	}
}

// BenchmarkTableLoss regenerates the packet-loss table: 100 ms RTT, 29%
// i.i.d. loss per direction, Mosh predictions disabled.
// Paper: SSH 0.416 s / 16.8 s / 52.2 s; Mosh 0.222 s / 0.329 s / 1.63 s.
func BenchmarkTableLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportComparison(b, bench.TableLoss(benchConfig(i)))
	}
}

// --- Ablations (design choices DESIGN.md calls out) ---

func ablationTrace(i int) *trace.Trace {
	return trace.Generate(int64(i)*17+3, trace.SixProfiles()[4], 200)
}

// BenchmarkAblationEchoAck compares the server-side 50 ms echo ack against
// a near-zero and a sluggish timeout. Too small → false-negative
// mispredictions (flicker); too large → slow verification.
func BenchmarkAblationEchoAck(b *testing.B) {
	for _, d := range []time.Duration{time.Millisecond, 50 * time.Millisecond, 500 * time.Millisecond} {
		b.Run(d.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := bench.RunMoshTrace(ablationTrace(i), netem.EVDO(), int64(i)+1,
					bench.MoshOptions{Predictions: overlay.Adaptive, EchoAckTimeout: d})
				st := bench.Summarize(res.Samples)
				b.ReportMetric(float64(st.Median)/1e6, "median-ms")
				b.ReportMetric(float64(res.Mispredicted), "displayed-mispredictions")
			}
		})
	}
}

// BenchmarkAblationDisplayPolicy compares Adaptive/Always/Never prediction
// display on the 3G path.
func BenchmarkAblationDisplayPolicy(b *testing.B) {
	for _, p := range []struct {
		name string
		pref overlay.DisplayPreference
	}{{"adaptive", overlay.Adaptive}, {"always", overlay.Always}, {"never", overlay.Never}} {
		b.Run(p.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := bench.RunMoshTrace(ablationTrace(i), netem.EVDO(), int64(i)+1,
					bench.MoshOptions{Predictions: p.pref})
				st := bench.Summarize(res.Samples)
				b.ReportMetric(float64(st.Median)/1e6, "median-ms")
				b.ReportMetric(st.FracInstant*100, "instant-%")
			}
		})
	}
}

// BenchmarkAblationMinRTO isolates SSP's 50 ms RTO floor against TCP's 1 s
// under heavy loss (predictions off).
func BenchmarkAblationMinRTO(b *testing.B) {
	for _, rto := range []time.Duration{50 * time.Millisecond, time.Second} {
		b.Run(rto.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := bench.RunMoshTrace(ablationTrace(i), netem.LossyNetem(), int64(i)+1,
					bench.MoshOptions{Predictions: overlay.Never, MinRTO: rto, MaxRTO: 4 * rto})
				st := bench.Summarize(res.Samples)
				b.ReportMetric(float64(st.Median)/1e6, "median-ms")
				b.ReportMetric(float64(st.Mean)/1e6, "mean-ms")
			}
		})
	}
}

// BenchmarkAblationFrameCap measures what the 50 Hz frame-rate cap saves
// while a runaway process floods the terminal (paper footnote 1: "to save
// unnecessary traffic on low-latency paths").
func BenchmarkAblationFrameCap(b *testing.B) {
	for _, min := range []time.Duration{20 * time.Millisecond, time.Millisecond} {
		b.Run(min.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				timing := transport.DefaultTiming()
				timing.SendIntervalMin = min
				res := bench.RunFlood(10*time.Second, &timing, int64(i)+1)
				if !res.Converged {
					b.Fatal("flood session did not converge")
				}
				b.ReportMetric(float64(res.Frames), "frames")
				b.ReportMetric(float64(res.WirePackets), "wire-packets")
			}
		})
	}
}

// BenchmarkAblationDelayedAck measures the delayed-ack interval's traffic
// saving (paper §2.3: within 100 ms, >99.9% of acks piggyback).
func BenchmarkAblationDelayedAck(b *testing.B) {
	for _, d := range []time.Duration{time.Millisecond, 100 * time.Millisecond} {
		b.Run(d.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				timing := transport.DefaultTiming()
				timing.AckDelay = d
				res := bench.RunMoshTrace(ablationTrace(i), netem.EVDO(), int64(i)+1,
					bench.MoshOptions{Predictions: overlay.Adaptive, Timing: &timing})
				b.ReportMetric(float64(res.WirePackets), "wire-packets")
			}
		})
	}
}

// BenchmarkAblationCollectionInterval spot-checks Figure 3's tradeoff at
// three collection intervals.
func BenchmarkAblationCollectionInterval(b *testing.B) {
	for _, c := range []time.Duration{100 * time.Microsecond, 8 * time.Millisecond, 100 * time.Millisecond} {
		b.Run(c.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				traces := []*trace.Trace{trace.Generate(int64(i)+5, trace.SixProfiles()[0], 200)}
				pts := bench.CollectionSweep(traces, []time.Duration{c})
				b.ReportMetric(float64(pts[0].MeanDelay)/1e6, "mean-delay-ms")
			}
		})
	}
}
