package core

import (
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/overlay"
	"repro/internal/terminal"
)

// Regression tests for the Latest() escape audit that unlocked
// receiver-side snapshot recycling: the client's reconstructed screen is
// rebuilt state by state with retired history recycled underneath, so
// (a) every in-turn read must keep yielding the authoritative screen, and
// (b) a *Clone* taken from ServerState must stay byte-stable forever even
// as the receiver churns and reuses retired storage (copy-on-write).

// TestReceiverRecyclingMatchesServerUnderScrollFlood drives a scroll-heavy
// session — constant state churn, deep retirement, pooled snapshot reuse
// on the receive path — and checks the client's screen against the
// server's authoritative terminal after convergence, plus the stability of
// retained clones taken at every step along the way.
func TestReceiverRecyclingMatchesServerUnderScrollFlood(t *testing.T) {
	ss := newSession(t, netem.LinkParams{Delay: 10 * time.Millisecond}, overlay.Never)
	lines := 0
	ss.hostScript = func(data []byte) {
		// Every keystroke triggers a multi-line repaint plus scrolling
		// output, like a pager under continuous load.
		out := []byte("\r\n")
		for i := 0; i < 6; i++ {
			lines++
			out = append(out, []byte("flood line with some cells and content\r\n")...)
		}
		ss.sched.AfterFunc(2*time.Millisecond, func() {
			ss.server.HostOutput(out)
			ss.wakeServer()
		})
	}
	ss.run(time.Second)

	type retained struct {
		fb    *terminal.Framebuffer
		bytes string
	}
	var held []retained
	for k := 0; k < 30; k++ {
		ss.client.TypeRune('j')
		ss.wakeClient()
		ss.run(120 * time.Millisecond)
		// Retain a CoW clone of the current reconstructed screen, exactly
		// what Display() hands the renderer. Recycling retired receiver
		// states must never mutate it.
		fb := ss.client.ServerState().Clone()
		held = append(held, retained{fb: fb, bytes: string(fb.AppendSnapshot(nil))})
	}
	ss.run(3 * time.Second)

	if !ss.client.ServerState().Equal(ss.server.Terminal().Framebuffer()) {
		t.Fatal("client screen diverged from the server under receiver recycling")
	}
	for i, h := range held {
		if got := string(h.fb.AppendSnapshot(nil)); got != h.bytes {
			t.Fatalf("retained clone %d mutated after later receives (recycled storage leaked)", i)
		}
	}
	if lines == 0 {
		t.Fatal("host script never ran")
	}
}
