package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/overlay"
	"repro/internal/simclock"
	"repro/internal/sspcrypto"
)

var t0 = time.Date(2012, 4, 1, 0, 0, 0, 0, time.UTC)

// session is a complete client+server pair over an emulated path, with a
// scriptable "host application" that echoes after a configurable delay.
type session struct {
	sched      *simclock.Scheduler
	net        *netem.Network
	path       *netem.Path
	client     *Client
	server     *Server
	clientAddr netem.Addr
	serverAddr netem.Addr

	wakeClient func()
	wakeServer func()

	// echoDelay simulates host application processing time.
	echoDelay time.Duration
	// hostEcho, when true, echoes printable input back through the
	// server terminal (like a shell at a prompt).
	hostEcho bool
	// hostScript, when set, overrides echoing entirely.
	hostScript func(data []byte)
}

func newSession(t *testing.T, params netem.LinkParams, pref overlay.DisplayPreference) *session {
	t.Helper()
	ss := &session{
		sched:      simclock.NewScheduler(t0),
		clientAddr: netem.Addr{Host: 1, Port: 1000},
		serverAddr: netem.Addr{Host: 2, Port: 60001},
		echoDelay:  5 * time.Millisecond,
		hostEcho:   true,
	}
	ss.net = netem.NewNetwork(ss.sched)
	ss.path = netem.NewPath(ss.net, params, 11)
	key := sspcrypto.Key{42}

	var err error
	ss.server, err = NewServer(ServerConfig{
		Key:   key,
		Clock: ss.sched,
		Emit: func(wire []byte) {
			if dst, ok := ss.server.Transport().Connection().RemoteAddr(); ok {
				ss.path.Down.Send(netem.Packet{Src: ss.serverAddr, Dst: dst, Payload: wire})
			}
		},
		HostInput: func(data []byte) { ss.hostInput(data) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ss.client, err = NewClient(ClientConfig{
		Key:         key,
		Clock:       ss.sched,
		Predictions: pref,
		Emit: func(wire []byte) {
			ss.path.Up.Send(netem.Packet{Src: ss.clientAddr, Dst: ss.serverAddr, Payload: wire})
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	ss.net.Attach(ss.serverAddr, func(p netem.Packet) { ss.server.Receive(p.Payload, p.Src) })
	ss.net.Attach(ss.clientAddr, func(p netem.Packet) { ss.client.Receive(p.Payload, p.Src) })
	ss.wakeClient = Pump(ss.sched, ss.client)
	ss.wakeServer = Pump(ss.sched, ss.server)
	return ss
}

// hostInput is the scripted application: echo printables, handle CR.
func (ss *session) hostInput(data []byte) {
	if ss.hostScript != nil {
		ss.hostScript(data)
		return
	}
	if !ss.hostEcho {
		return
	}
	out := make([]byte, 0, len(data)+1)
	for _, b := range data {
		switch {
		case b == '\r':
			out = append(out, '\r', '\n')
		case b >= 0x20 && b != 0x7f:
			out = append(out, b)
		case b == 0x7f:
			out = append(out, '\b', ' ', '\b')
		}
	}
	if len(out) > 0 {
		ss.sched.AfterFunc(ss.echoDelay, func() {
			ss.server.HostOutput(out)
			ss.wakeServer()
		})
	}
}

func (ss *session) run(d time.Duration) { ss.sched.RunFor(d) }

func (ss *session) typeString(s string) {
	for _, r := range s {
		ss.client.TypeRune(r)
		ss.wakeClient()
		ss.run(80 * time.Millisecond)
	}
}

func displayRow(ss *session, row int) string {
	return strings.TrimRight(ss.client.Display().Text(row), " ")
}

func TestEndToEndEcho(t *testing.T) {
	ss := newSession(t, netem.LinkParams{Delay: 30 * time.Millisecond}, overlay.Never)
	ss.run(time.Second)
	ss.typeString("hello")
	ss.run(2 * time.Second)
	if got := displayRow(ss, 0); got != "hello" {
		t.Fatalf("client display row 0 = %q", got)
	}
	if got := strings.TrimRight(ss.server.Terminal().Framebuffer().Text(0), " "); got != "hello" {
		t.Fatalf("server terminal row 0 = %q", got)
	}
}

func TestPredictiveEchoDisplaysInstantly(t *testing.T) {
	// Half-second RTT, like the paper's EV-DO link.
	ss := newSession(t, netem.LinkParams{Delay: 250 * time.Millisecond}, overlay.Adaptive)
	ss.run(2 * time.Second)
	// Warm up: first keystrokes confirm the epoch.
	ss.typeString("ab")
	ss.run(3 * time.Second)
	// Now a keystroke must appear on the display immediately, long
	// before the server state can return.
	ss.client.TypeRune('c')
	ss.wakeClient()
	ss.run(10 * time.Millisecond) // far less than the 500ms RTT
	if got := displayRow(ss, 0); got != "abc" {
		t.Fatalf("display shortly after keystroke = %q, want instant 'abc'", got)
	}
	// And the authoritative state still converges.
	ss.run(3 * time.Second)
	if got := displayRow(ss, 0); got != "abc" {
		t.Fatalf("converged display = %q", got)
	}
	st := ss.client.Predictions().Stats()
	if st.Incorrect != 0 {
		t.Fatalf("mispredictions: %+v", st)
	}
}

func TestPredictionRepairWithinRTT(t *testing.T) {
	ss := newSession(t, netem.LinkParams{Delay: 200 * time.Millisecond}, overlay.Adaptive)
	ss.run(2 * time.Second)
	ss.typeString("ok")
	ss.run(3 * time.Second)
	// Host stops echoing (password prompt): predictions become wrong.
	ss.hostEcho = false
	ss.client.TypeRune('s')
	ss.wakeClient()
	ss.run(20 * time.Millisecond)
	if got := displayRow(ss, 0); got != "oks" {
		t.Fatalf("prediction not displayed: %q", got)
	}
	// Within ~an RTT the mistaken 's' must be repaired away.
	ss.run(3 * time.Second)
	if got := displayRow(ss, 0); got != "ok" {
		t.Fatalf("misprediction not repaired: %q", got)
	}
}

func TestEchoAckArrives(t *testing.T) {
	ss := newSession(t, netem.LinkParams{Delay: 50 * time.Millisecond}, overlay.Never)
	ss.run(time.Second)
	ss.client.TypeRune('x')
	ss.wakeClient()
	ss.run(3 * time.Second)
	if got := ss.client.Transport().RemoteState().EchoAck(); got == 0 {
		t.Fatal("echo ack never propagated to client")
	}
}

func TestControlCDuringFlood(t *testing.T) {
	// A runaway process floods the terminal; SSP must keep the path
	// usable so Ctrl-C reaches the server quickly (paper §1).
	ss := newSession(t, netem.LinkParams{
		Delay:          100 * time.Millisecond,
		RateBitsPerSec: 1_000_000,
		QueueBytes:     30_000,
	}, overlay.Never)
	ss.run(time.Second)

	flooding := true
	gotInterrupt := time.Time{}
	ss.hostScript = func(data []byte) {
		for _, b := range data {
			if b == 0x03 {
				flooding = false
				gotInterrupt = ss.sched.Now()
			}
		}
	}
	var flood func()
	flood = func() {
		if !flooding {
			return
		}
		ss.server.HostOutput([]byte(strings.Repeat("spam output line!\r\n", 20)))
		ss.wakeServer()
		ss.sched.AfterFunc(10*time.Millisecond, flood)
	}
	ss.sched.AfterFunc(0, flood)
	ss.run(2 * time.Second)

	sent := ss.client.UserBytes([]byte{0x03})
	_ = sent
	ss.wakeClient()
	start := ss.sched.Now()
	ss.run(3 * time.Second)
	if gotInterrupt.IsZero() {
		t.Fatal("Ctrl-C never reached the host")
	}
	if lat := gotInterrupt.Sub(start); lat > 500*time.Millisecond {
		t.Fatalf("Ctrl-C took %v; buffers must not delay input", lat)
	}
	// And the client's screen converges to the final server state.
	ss.run(3 * time.Second)
	if !ss.client.ServerState().Equal(ss.server.Terminal().Framebuffer()) {
		t.Fatal("screens did not converge after flood")
	}
}

func TestClientRoamingMidSession(t *testing.T) {
	ss := newSession(t, netem.LinkParams{Delay: 40 * time.Millisecond}, overlay.Never)
	ss.run(time.Second)
	ss.typeString("pre")
	ss.run(time.Second)

	newAddr := netem.Addr{Host: 99, Port: 4242}
	ss.net.Detach(ss.clientAddr)
	ss.clientAddr = newAddr
	ss.net.Attach(newAddr, func(p netem.Packet) { ss.client.Receive(p.Payload, p.Src) })

	ss.typeString("post")
	ss.run(2 * time.Second)
	if got := displayRow(ss, 0); got != "prepost" {
		t.Fatalf("after roam display = %q", got)
	}
	if ss.server.Transport().Connection().RemoteAddrChanges() != 1 {
		t.Fatal("server did not observe the roam")
	}
}

func TestResizePropagatesToServer(t *testing.T) {
	ss := newSession(t, netem.LinkParams{Delay: 30 * time.Millisecond}, overlay.Never)
	ss.run(time.Second)
	gotW, gotH := 0, 0
	ss.server.cfg.OnResize = func(w, h int) { gotW, gotH = w, h }
	ss.client.Resize(132, 43)
	ss.wakeClient()
	ss.run(2 * time.Second)
	if gotW != 132 || gotH != 43 {
		t.Fatalf("server saw resize %dx%d", gotW, gotH)
	}
	if fb := ss.server.Terminal().Framebuffer(); fb.W != 132 || fb.H != 43 {
		t.Fatalf("server terminal is %dx%d", fb.W, fb.H)
	}
	ss.run(2 * time.Second)
	if fb := ss.client.ServerState(); fb.W != 132 || fb.H != 43 {
		t.Fatalf("client screen is %dx%d", fb.W, fb.H)
	}
}

func TestIntermittentConnectivity(t *testing.T) {
	ss := newSession(t, netem.LinkParams{Delay: 40 * time.Millisecond}, overlay.Never)
	ss.run(time.Second)
	// Hard outage: detach the client (suspend / airplane mode).
	ss.net.Detach(ss.clientAddr)
	ss.typeString("typed-while-offline")
	ss.run(30 * time.Second)
	// Reattach; everything must flush.
	ss.net.Attach(ss.clientAddr, func(p netem.Packet) { ss.client.Receive(p.Payload, p.Src) })
	ss.run(15 * time.Second)
	if got := displayRow(ss, 0); got != "typed-while-offline" {
		t.Fatalf("after reconnect display = %q", got)
	}
}

func TestConnectivityBannerDuringOutage(t *testing.T) {
	ss := newSession(t, netem.LinkParams{Delay: 20 * time.Millisecond}, overlay.Never)
	ss.run(5 * time.Second) // at least one server heartbeat arrives
	if got := ss.client.Display().Text(0); strings.Contains(got, "Last contact") {
		t.Fatalf("banner while healthy: %q", got)
	}
	// Server goes dark.
	ss.net.Detach(ss.clientAddr)
	ss.run(15 * time.Second)
	if got := ss.client.Display().Text(0); !strings.Contains(got, "Last contact") {
		t.Fatalf("no banner after 15s outage: %q", got)
	}
	// Reconnect: the banner clears by the next heartbeat.
	ss.net.Attach(ss.clientAddr, func(p netem.Packet) { ss.client.Receive(p.Payload, p.Src) })
	ss.run(10 * time.Second)
	if got := ss.client.Display().Text(0); strings.Contains(got, "Last contact") {
		t.Fatalf("banner persisted after reconnect: %q", got)
	}
}

func TestHeavyLossSessionConverges(t *testing.T) {
	ss := newSession(t, netem.LinkParams{Delay: 50 * time.Millisecond, LossProb: 0.29}, overlay.Never)
	ss.run(time.Second)
	ss.typeString("survive 50% round-trip loss")
	ss.run(20 * time.Second)
	if got := displayRow(ss, 0); got != "survive 50% round-trip loss" {
		t.Fatalf("display = %q", got)
	}
}

func TestDatagramsStayUnderMTU(t *testing.T) {
	ss := newSession(t, netem.LinkParams{Delay: 20 * time.Millisecond}, overlay.Never)
	ss.run(time.Second)
	big := strings.Repeat("0123456789abcdef", 400) // 6.4 kB burst
	ss.server.HostOutput([]byte(big))
	ss.wakeServer()
	ss.run(2 * time.Second)
	stats := ss.path.Down.Stats()
	if stats.Sent == 0 {
		t.Fatal("no packets sent")
	}
	if !ss.client.ServerState().Equal(ss.server.Terminal().Framebuffer()) {
		t.Fatal("large burst did not converge")
	}
}

func TestSessionStatsExposed(t *testing.T) {
	ss := newSession(t, netem.LinkParams{Delay: 30 * time.Millisecond}, overlay.Adaptive)
	ss.run(time.Second)
	ss.typeString("abc")
	ss.run(2 * time.Second)
	if ss.client.Transport().Sender().Stats().Fragments == 0 {
		t.Fatal("client sent no datagrams")
	}
	if !ss.client.Transport().Connection().HaveRTT() {
		t.Fatal("no RTT estimate formed")
	}
	if ss.client.Predictions().Stats().InputEvents != 3 {
		t.Fatalf("prediction engine saw %d events", ss.client.Predictions().Stats().InputEvents)
	}
}

func TestServerAnswerback(t *testing.T) {
	ss := newSession(t, netem.LinkParams{Delay: 10 * time.Millisecond}, overlay.Never)
	ss.run(time.Second)
	ss.server.HostOutput([]byte("\x1b[6n"))
	if ab := ss.server.Answerback(); len(ab) == 0 {
		t.Fatal("no answerback after DSR")
	}
}

func TestDisplayIsACopy(t *testing.T) {
	ss := newSession(t, netem.LinkParams{Delay: 10 * time.Millisecond}, overlay.Never)
	ss.run(time.Second)
	d := ss.client.Display()
	d.Cell(0, 0).SetContents("X")
	if ss.client.ServerState().Cell(0, 0).ContentsString() == "X" {
		t.Fatal("Display returned the live state, not a copy")
	}
}

func TestManyKeystrokesOrderPreserved(t *testing.T) {
	ss := newSession(t, netem.LinkParams{Delay: 60 * time.Millisecond, LossProb: 0.1}, overlay.Never)
	ss.run(time.Second)
	var want strings.Builder
	for i := 0; i < 60; i++ {
		r := rune('a' + i%26)
		want.WriteRune(r)
		ss.client.TypeRune(r)
		ss.wakeClient()
		ss.run(23 * time.Millisecond)
	}
	ss.run(10 * time.Second)
	got := displayRow(ss, 0)
	if got != want.String() {
		t.Fatalf("keystroke order corrupted:\n got %q\nwant %q", got, want.String())
	}
}

func TestFigureStyleLatencySample(t *testing.T) {
	// Smoke-test the measurement pattern the benchmark harness uses:
	// keystroke → prediction record → outcome.
	ss := newSession(t, netem.LinkParams{Delay: 250 * time.Millisecond}, overlay.Adaptive)
	ss.run(2 * time.Second)
	ss.typeString("ab") // warm-up epoch confirmation
	ss.run(3 * time.Second)
	seq := ss.client.TypeRune('c')
	ss.wakeClient()
	ss.run(5 * time.Second)
	rec, ok := ss.client.Predictions().TakeInputRecord(seq)
	if !ok {
		t.Fatal("no input record")
	}
	if !rec.Displayed {
		t.Fatalf("keystroke was not displayed speculatively: %+v", rec)
	}
	if rec.Outcome != overlay.OutcomeCorrect {
		t.Fatalf("outcome = %v", rec.Outcome)
	}
	if lat := rec.DisplayedAt.Sub(rec.MadeAt); lat > 10*time.Millisecond {
		t.Fatalf("speculative display latency = %v", lat)
	}
}

func BenchmarkSessionKeystroke(b *testing.B) {
	sched := simclock.NewScheduler(t0)
	net := netem.NewNetwork(sched)
	path := netem.NewPath(net, netem.LinkParams{Delay: 20 * time.Millisecond}, 3)
	key := sspcrypto.Key{7}
	serverAddr := netem.Addr{Host: 2, Port: 60001}
	clientAddr := netem.Addr{Host: 1, Port: 1000}

	var server *Server
	var client *Client
	server, _ = NewServer(ServerConfig{
		Key: key, Clock: sched,
		Emit: func(wire []byte) {
			if dst, ok := server.Transport().Connection().RemoteAddr(); ok {
				path.Down.Send(netem.Packet{Src: serverAddr, Dst: dst, Payload: wire})
			}
		},
		HostInput: func(data []byte) { server.HostOutput(data) },
	})
	client, _ = NewClient(ClientConfig{
		Key: key, Clock: sched, Predictions: overlay.Adaptive,
		Emit: func(wire []byte) {
			path.Up.Send(netem.Packet{Src: clientAddr, Dst: serverAddr, Payload: wire})
		},
	})
	net.Attach(serverAddr, func(p netem.Packet) { server.Receive(p.Payload, p.Src) })
	net.Attach(clientAddr, func(p netem.Packet) { client.Receive(p.Payload, p.Src) })
	wakeClient := Pump(sched, client)
	Pump(sched, server)
	sched.RunFor(time.Second)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client.TypeRune(rune('a' + i%26))
		wakeClient()
		sched.RunFor(60 * time.Millisecond)
	}
}

func (ss *session) String() string {
	return fmt.Sprintf("session@%v", ss.sched.Now().Sub(t0))
}

func TestClientScrollbackFillsFromSync(t *testing.T) {
	// The paper's future-work item: the client can browse history. The
	// client's emulator accumulates scrollback naturally as it applies
	// the server's scroll diffs.
	ss := newSession(t, netem.LinkParams{Delay: 20 * time.Millisecond}, overlay.Never)
	ss.run(time.Second)
	for i := 0; i < 40; i++ {
		ss.server.HostOutput([]byte(fmt.Sprintf("output line %02d\r\n", i)))
		ss.wakeServer()
		ss.run(300 * time.Millisecond)
	}
	ss.run(3 * time.Second)
	fb := ss.client.ServerState()
	if fb.ScrollbackLines() < 10 {
		t.Fatalf("client scrollback holds %d lines; expected history from sync", fb.ScrollbackLines())
	}
	// History lines are real content, oldest first.
	first := strings.TrimRight(fb.ScrollbackText(0), " ")
	if !strings.HasPrefix(first, "output line") {
		t.Fatalf("history[0] = %q", first)
	}
}
