package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/overlay"
	"repro/internal/simclock"
	"repro/internal/sspcrypto"
)

// TestGarbageDatagramsNeverPanic throws random bytes at both endpoints:
// an attacker on the path must not be able to crash or desynchronize a
// session (packets fail authentication and are dropped).
func TestGarbageDatagramsNeverPanic(t *testing.T) {
	ss := newSession(t, netem.LinkParams{Delay: 20 * time.Millisecond}, overlay.Adaptive)
	ss.run(time.Second)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		n := 1 + rng.Intn(600)
		junk := make([]byte, n)
		rng.Read(junk)
		if rng.Intn(2) == 0 {
			ss.server.Receive(junk, netem.Addr{Host: uint32(rng.Uint32()), Port: uint16(rng.Intn(65536))})
		} else {
			ss.client.Receive(junk, netem.Addr{Host: uint32(rng.Uint32())})
		}
	}
	// The session still works afterwards.
	ss.typeString("alive")
	ss.run(3 * time.Second)
	if got := displayRow(ss, 0); got != "alive" {
		t.Fatalf("session broken after garbage: %q", got)
	}
	// And the garbage did not steal the server's reply target.
	if ss.server.Transport().Connection().RemoteAddrChanges() != 0 {
		t.Fatal("forged packets moved the roaming target")
	}
}

// TestTruncatedAndBitflippedDatagrams replays real session traffic with
// random corruption; authentication must reject every damaged packet.
func TestTruncatedAndBitflippedDatagrams(t *testing.T) {
	key := sspcrypto.Key{5}
	clk := simclock.NewManual(time.Date(2012, 4, 1, 0, 0, 0, 0, time.UTC))
	var wires [][]byte
	client, err := NewClient(ClientConfig{
		Key: key, Clock: clk,
		Emit: func(w []byte) { wires = append(wires, append([]byte(nil), w...)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	server, err := NewServer(ServerConfig{Key: key, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	client.TypeRune('x')
	client.Tick()
	if len(wires) == 0 {
		t.Fatal("client sent nothing")
	}
	rng := rand.New(rand.NewSource(4))
	src := netem.Addr{Host: 9}
	for _, w := range wires {
		for trial := 0; trial < 50; trial++ {
			m := append([]byte(nil), w...)
			switch rng.Intn(3) {
			case 0:
				m = m[:rng.Intn(len(m))]
			case 1:
				m[rng.Intn(len(m))] ^= byte(1 + rng.Intn(255))
			case 2:
				m = append(m, byte(rng.Intn(256)))
			}
			if err := server.Receive(m, src); err == nil {
				// A truncation that only removes trailing bytes of a
				// previously-unseen packet can never authenticate; err
				// must be non-nil. The only acceptable nil is a replay
				// of the exact original, which corruption precludes.
				t.Fatalf("corrupted packet accepted (trial %d)", trial)
			}
		}
	}
}
