// Package core assembles the Mosh session endpoints from the layers below:
// SSP (internal/network + internal/transport) synchronizing the two state
// objects (internal/statesync), the server-side terminal emulator
// (internal/terminal), and the client-side prediction engine
// (internal/overlay).
//
// Both endpoints are IO-free, single-threaded state machines with the same
// driving contract as the transport layer: call Receive when a datagram
// arrives, call Tick after local activity or when WaitTime elapses. The
// benchmark harness drives them in virtual time over internal/netem; the
// cmd/mosh-server and cmd/mosh-client binaries drive them from goroutines
// over real UDP sockets.
package core

import (
	"time"

	"repro/internal/netem"
	"repro/internal/network"
	"repro/internal/overlay"
	"repro/internal/simclock"
	"repro/internal/sspcrypto"
	"repro/internal/statesync"
	"repro/internal/telemetry"
	"repro/internal/terminal"
	"repro/internal/transport"
)

// DefaultEchoAckTimeout is the paper's server-side echo timeout: a
// keystroke is "echo-acknowledged" once it has been presented to the host
// application for 50 ms, chosen to contain the vast majority of legitimate
// application echoes while still detecting mistaken predictions fast
// (§3.2).
const DefaultEchoAckTimeout = 50 * time.Millisecond

// ServerConfig parameterizes a Server.
type ServerConfig struct {
	// Key is the pre-shared session key (printed by the bootstrap).
	Key sspcrypto.Key
	// Clock drives all timing.
	Clock simclock.Clock
	// Width, Height size the initial terminal.
	Width, Height int
	// Timing overrides SSP transport timing (nil = paper defaults).
	Timing *transport.Timing
	// MinRTO/MaxRTO pass through to the datagram layer.
	MinRTO, MaxRTO time.Duration
	// Envelope enables the sessiond session-ID envelope (nil = plain
	// single-session wire format).
	Envelope *network.Envelope
	// EchoAckTimeout overrides the 50 ms echo timeout (0 = default).
	// The ablation benches sweep it.
	EchoAckTimeout time.Duration
	// Emit transmits one sealed datagram toward the client.
	Emit func(wire []byte)
	// RecycleWire declares Emit non-retaining so wire buffers are reused
	// (see transport.Config.RecycleWire).
	RecycleWire bool
	// HostInput delivers decoded user keystrokes to the host application
	// (a pty in production, a scripted application model in benches).
	HostInput func(data []byte)
	// OnResize reports window-size changes (to forward to the pty).
	OnResize func(w, h int)
	// Resume, when non-nil, restores the endpoint from a session-journal
	// snapshot instead of starting a fresh session (sessiond restart).
	Resume *ServerResume
	// Probe, when non-nil, receives per-stage latency observations from
	// the transport and datagram layers (see transport.Config.Probe).
	Probe *telemetry.Pipeline
}

// ServerResume carries the durable core of a server endpoint across a
// process restart. All counters must come from a journal whose reservation
// rules guarantee they exceed anything the dead process put on the wire
// (see internal/sessiond's journal writer).
type ServerResume struct {
	// Current is the restored live screen state.
	Current *statesync.Complete
	// Baseline is the agreed initial screen (state number 0: blank, at the
	// session's original dimensions) the resume repaint diffs from.
	Baseline *statesync.Complete
	// Stream is the restored user-input stream, positioned at the persisted
	// event count; its events were already delivered to the application.
	Stream *statesync.UserStream
	// SendNumFloor is the reserved state number for the first post-restore
	// screen state.
	SendNumFloor uint64
	// RecvNum is the newest client state number the dead process received.
	RecvNum uint64
	// NextSeq and ExpectedSeq restore the datagram-layer counters.
	NextSeq, ExpectedSeq uint64
	// RemoteAddr optionally seeds the reply target so heartbeats and the
	// resume repaint flow before the client next speaks.
	RemoteAddr *netem.Addr
	// Heard marks that the dead process had heard authentic client traffic.
	Heard bool
}

type echoEntry struct {
	num uint64
	at  time.Time
}

// Server is the Mosh server endpoint: it owns the authoritative terminal,
// applies user input arriving via SSP, and synchronizes the screen state
// back to the client.
type Server struct {
	cfg ServerConfig
	tr  *transport.Transport[*statesync.Complete, *statesync.UserStream]

	processedEvents uint64
	echoQueue       []echoEntry
	pendingEchoAck  uint64
	haveEchoUpdate  bool
}

// NewServer builds a server endpoint.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.EchoAckTimeout == 0 {
		cfg.EchoAckTimeout = DefaultEchoAckTimeout
	}
	if cfg.Width == 0 {
		cfg.Width = 80
	}
	if cfg.Height == 0 {
		cfg.Height = 24
	}
	trCfg := transport.Config[*statesync.Complete, *statesync.UserStream]{
		Direction:     sspcrypto.ToClient,
		Key:           cfg.Key,
		Clock:         cfg.Clock,
		Timing:        cfg.Timing,
		MinRTO:        cfg.MinRTO,
		MaxRTO:        cfg.MaxRTO,
		Envelope:      cfg.Envelope,
		LocalInitial:  statesync.NewComplete(cfg.Width, cfg.Height),
		RemoteInitial: statesync.NewUserStream(),
		Emit:          cfg.Emit,
		RecycleWire:   cfg.RecycleWire,
		Probe:         cfg.Probe,
	}
	if rs := cfg.Resume; rs != nil {
		trCfg.LocalInitial = rs.Current
		trCfg.LocalBaseline = rs.Baseline
		trCfg.RemoteInitial = rs.Stream
		trCfg.Resume = &transport.Resume{
			SendNumFloor: rs.SendNumFloor,
			RecvNum:      rs.RecvNum,
			NextSeq:      rs.NextSeq,
			ExpectedSeq:  rs.ExpectedSeq,
			RemoteAddr:   rs.RemoteAddr,
			Heard:        rs.Heard,
		}
	}
	tr, err := transport.New(trCfg)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, tr: tr}
	if rs := cfg.Resume; rs != nil {
		// The restored stream's events were delivered by the previous
		// incarnation; delivery resumes after its persisted size.
		s.processedEvents = rs.Stream.Size()
	}
	return s, nil
}

// Transport exposes the SSP endpoint (stats, RTT, roaming target).
func (s *Server) Transport() *transport.Transport[*statesync.Complete, *statesync.UserStream] {
	return s.tr
}

// Terminal exposes the authoritative terminal state.
func (s *Server) Terminal() *terminal.Emulator {
	return s.tr.CurrentState().Terminal()
}

// Receive processes one datagram from the client at src. New user input is
// decoded and delivered to the host application exactly once, and queued
// for echo acknowledgment.
func (s *Server) Receive(wire []byte, src netem.Addr) error {
	isNew, err := s.tr.Receive(wire, src)
	if err != nil || !isNew {
		return err
	}
	stream := s.tr.RemoteState()
	now := s.cfg.Clock.Now()
	for _, ev := range stream.EventsSince(s.processedEvents) {
		switch ev.Type {
		case statesync.EventBytes:
			if s.cfg.HostInput != nil {
				s.cfg.HostInput(ev.Data)
			}
		case statesync.EventResize:
			s.Terminal().Resize(ev.W, ev.H)
			if s.cfg.OnResize != nil {
				s.cfg.OnResize(ev.W, ev.H)
			}
		}
	}
	s.processedEvents = stream.Size()
	s.echoQueue = append(s.echoQueue, echoEntry{num: s.tr.RemoteStateNum(), at: now})
	s.Tick()
	return nil
}

// HostOutput interprets host application output onto the terminal and
// wakes the transport (which will wait out the collection interval before
// sending a frame).
func (s *Server) HostOutput(data []byte) {
	s.Terminal().Write(data)
	s.tr.Tick()
}

// Answerback drains terminal→host reports (cursor position queries and the
// like) that the caller must feed back to the host application.
func (s *Server) Answerback() []byte { return s.Terminal().TakeAnswerback() }

// Tick advances the echo-ack clock and the transport.
func (s *Server) Tick() {
	now := s.cfg.Clock.Now()
	for len(s.echoQueue) > 0 && now.Sub(s.echoQueue[0].at) >= s.cfg.EchoAckTimeout {
		s.pendingEchoAck = s.echoQueue[0].num
		s.haveEchoUpdate = true
		s.echoQueue = s.echoQueue[1:]
	}
	if s.haveEchoUpdate {
		// Dirtying the state triggers the "extra datagram ~50 ms after a
		// keystroke" the paper describes.
		s.tr.CurrentState().SetEchoAck(s.pendingEchoAck)
		s.haveEchoUpdate = false
	}
	s.tr.Tick()
}

// WaitTime reports how long the event loop may sleep before calling Tick.
func (s *Server) WaitTime() time.Duration {
	w := s.tr.WaitTime()
	if len(s.echoQueue) > 0 {
		d := s.cfg.EchoAckTimeout - s.cfg.Clock.Now().Sub(s.echoQueue[0].at)
		if d < 0 {
			d = 0
		}
		if d < w {
			w = d
		}
	}
	return w
}

// ClientConfig parameterizes a Client.
type ClientConfig struct {
	// Key is the pre-shared session key.
	Key sspcrypto.Key
	// Clock drives all timing.
	Clock simclock.Clock
	// Width, Height must match the server's initial terminal size.
	Width, Height int
	// Timing overrides SSP transport timing (nil = paper defaults).
	Timing *transport.Timing
	// MinRTO/MaxRTO pass through to the datagram layer.
	MinRTO, MaxRTO time.Duration
	// Envelope enables the sessiond session-ID envelope (nil = plain
	// single-session wire format).
	Envelope *network.Envelope
	// Predictions selects the speculative-echo display policy.
	Predictions overlay.DisplayPreference
	// Emit transmits one sealed datagram toward the server.
	Emit func(wire []byte)
	// RecycleWire declares Emit non-retaining so wire buffers are reused
	// (see transport.Config.RecycleWire).
	RecycleWire bool
}

// Client is the Mosh client endpoint: it records user input into the
// synchronized UserStream, maintains the reconstructed server screen, and
// overlays speculative local echo.
type Client struct {
	cfg           ClientConfig
	tr            *transport.Transport[*statesync.UserStream, *statesync.Complete]
	engine        *overlay.Engine
	notifications *overlay.NotificationEngine
}

// NewClient builds a client endpoint.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Width == 0 {
		cfg.Width = 80
	}
	if cfg.Height == 0 {
		cfg.Height = 24
	}
	tr, err := transport.New(transport.Config[*statesync.UserStream, *statesync.Complete]{
		Direction:     sspcrypto.ToServer,
		Key:           cfg.Key,
		Clock:         cfg.Clock,
		Timing:        cfg.Timing,
		MinRTO:        cfg.MinRTO,
		MaxRTO:        cfg.MaxRTO,
		Envelope:      cfg.Envelope,
		LocalInitial:  statesync.NewUserStream(),
		RemoteInitial: statesync.NewComplete(cfg.Width, cfg.Height),
		Emit:          cfg.Emit,
		RecycleWire:   cfg.RecycleWire,
	})
	if err != nil {
		return nil, err
	}
	c := &Client{
		cfg:           cfg,
		tr:            tr,
		engine:        overlay.NewEngine(cfg.Clock, cfg.Predictions),
		notifications: overlay.NewNotificationEngine(cfg.Clock),
	}
	// Introduce ourselves so the server learns our address immediately.
	tr.Sender().ForceAckSoon()
	return c, nil
}

// Transport exposes the SSP endpoint.
func (c *Client) Transport() *transport.Transport[*statesync.UserStream, *statesync.Complete] {
	return c.tr
}

// Predictions exposes the speculative-echo engine (stats, preferences).
func (c *Client) Predictions() *overlay.Engine { return c.engine }

// Notifications exposes the connectivity-banner engine.
func (c *Client) Notifications() *overlay.NotificationEngine { return c.notifications }

// ServerState returns the newest reconstructed server screen (read-only).
func (c *Client) ServerState() *terminal.Framebuffer {
	return c.tr.RemoteState().Framebuffer()
}

// sendInterval mirrors the transport's frame-rate rule for the engine's
// adaptive triggers.
func (c *Client) sendInterval() time.Duration {
	iv := c.tr.Connection().SRTT(time.Second) / 2
	if iv < 20*time.Millisecond {
		iv = 20 * time.Millisecond
	}
	if iv > 250*time.Millisecond {
		iv = 250 * time.Millisecond
	}
	return iv
}

// InputSeq returns the global index the next user event will carry; the
// latency harness uses it to correlate keystrokes with prediction records.
func (c *Client) InputSeq() uint64 { return c.tr.CurrentState().Size() + 1 }

// UserBytes records one user keystroke event (already encoded as host
// bytes), runs it through the prediction engine, and wakes the transport.
// It returns the event's global index.
func (c *Client) UserBytes(data []byte) uint64 {
	seq := c.InputSeq()
	c.engine.SetSendInterval(c.sendInterval())
	c.engine.SetLocalFrameSent(c.tr.Sender().LastSentNum())
	c.engine.NewUserInput(seq, data, c.ServerState())
	c.tr.CurrentState().PushBytes(data)
	c.tr.Tick()
	return seq
}

// TypeRune is a convenience for a printable keystroke.
func (c *Client) TypeRune(r rune) uint64 { return c.UserBytes(terminal.EncodeRune(r)) }

// TypeSpecial encodes a special key according to the synchronized terminal
// modes and records it.
func (c *Client) TypeSpecial(k terminal.SpecialKey) uint64 {
	return c.UserBytes(terminal.EncodeSpecial(k, c.ServerState().DS.ApplicationCursorKeys))
}

// Resize records a window-size change.
func (c *Client) Resize(w, h int) {
	c.tr.CurrentState().PushResize(w, h)
	c.tr.Tick()
}

// Receive processes one datagram from the server at src, updating the
// reconstructed screen and re-judging outstanding predictions.
func (c *Client) Receive(wire []byte, src netem.Addr) error {
	isNew, err := c.tr.Receive(wire, src)
	if err == nil {
		c.notifications.ServerHeard()
	}
	if err != nil || !isNew {
		return err
	}
	c.engine.SetSendInterval(c.sendInterval())
	c.engine.SetLocalFrameAcked(c.tr.Sender().LastAckedNum())
	c.engine.SetLocalFrameLateAcked(c.tr.RemoteState().EchoAck())
	c.engine.Cull(c.ServerState())
	return nil
}

// Display returns what the user sees: the reconstructed server screen with
// displayable predictions overlaid, plus the connectivity banner when the
// server has gone silent.
func (c *Client) Display() *terminal.Framebuffer {
	fb := c.ServerState().Clone()
	c.engine.Apply(fb)
	c.notifications.Apply(fb)
	return fb
}

// Tick drives timers; call after local activity or when WaitTime elapses.
func (c *Client) Tick() { c.tr.Tick() }

// WaitTime reports how long the event loop may sleep before calling Tick.
func (c *Client) WaitTime() time.Duration { return c.tr.WaitTime() }

// Endpoint is the common driving contract shared by Client and Server.
type Endpoint interface {
	Tick()
	WaitTime() time.Duration
}

// Pump attaches an endpoint to a simulation scheduler with a
// self-rescheduling timer and returns a wake function: call it after any
// local activity so deadlines are re-armed. This is the virtual-time
// equivalent of each program's select loop.
func Pump(sched *simclock.Scheduler, ep Endpoint) (wake func()) {
	var pump func()
	timer := sched.NewEventTimer(func() { pump() })
	pump = func() {
		ep.Tick()
		wait := ep.WaitTime()
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		timer.Reset(sched.Now().Add(wait))
	}
	sched.AfterFunc(0, pump)
	return pump
}
