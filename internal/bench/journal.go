package bench

import (
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/sessiond"
	"repro/internal/simclock"
)

// JournalBenchOptions sizes the incremental-journaling experiment: a large
// fleet of sessions in virtual time, of which only a small fraction is
// active in any flush interval — the steady-state shape the log-structured
// journal is built for. Each round dirties DirtyPerRound sessions and
// flushes; the figure of merit is bytes written per flush versus the
// monolithic full-rewrite baseline, plus the physical/logical write
// amplification of the segment log itself.
type JournalBenchOptions struct {
	// Sessions is the fleet size (default 10000).
	Sessions int
	// Rounds is the number of steady-state flush intervals measured after
	// the warm-up full flush (default 20).
	Rounds int
	// DirtyPerRound is how many sessions see output between flushes
	// (default Sessions/100, min 1 — the ~1% activity regime).
	DirtyPerRound int
	// FlushInterval is the virtual time between flushes (default 3 s).
	FlushInterval time.Duration
	// FullRewrite runs the monolithic-journal baseline: every flush
	// rewrites the whole checkpoint regardless of dirtiness.
	FullRewrite bool
	// Dir is the state directory (default: a fresh temp dir, removed
	// after the run).
	Dir string
	// Seed varies the per-session output content.
	Seed int64
}

// JournalBenchResult reports one arm of the journaling experiment.
type JournalBenchResult struct {
	Sessions      int
	Rounds        int
	DirtyPerRound int
	FullRewrite   bool
	// WarmBytes is the initial whole-fleet flush (both arms pay it).
	WarmBytes int64
	// SteadyBytes is the total journal bytes across the measured rounds;
	// BytesPerFlush is the per-round average — the number the ≥10×
	// incremental-vs-rewrite claim is about.
	SteadyBytes   int64
	BytesPerFlush float64
	// WriteAmp is physical bytes written over encoded bytes that changed,
	// cumulative over the whole run (journal_write_amp).
	WriteAmp float64
	// FlushP50/FlushP99 are wall-clock FlushJournal latencies over the
	// measured rounds (journal_flush_p99_ms feeds the BENCH record).
	FlushP50, FlushP99 time.Duration
	// Segments / CompactionRuns echo the daemon gauges at run end.
	Segments       int64
	CompactionRuns int64
	// Elapsed is virtual time simulated; Wall is real time spent.
	Elapsed time.Duration
	Wall    time.Duration
}

// RunJournalBench drives one arm of the experiment. Everything runs on a
// virtual clock with the daemon's loops unstarted, so flushes happen
// exactly when the harness says and the byte accounting is deterministic;
// only the flush latencies are wall-clock measurements.
func RunJournalBench(opt JournalBenchOptions) JournalBenchResult {
	if opt.Sessions == 0 {
		opt.Sessions = 10000
	}
	if opt.Rounds == 0 {
		opt.Rounds = 20
	}
	if opt.DirtyPerRound == 0 {
		opt.DirtyPerRound = opt.Sessions / 100
		if opt.DirtyPerRound == 0 {
			opt.DirtyPerRound = 1
		}
	}
	if opt.FlushInterval == 0 {
		opt.FlushInterval = 3 * time.Second
	}
	dir := opt.Dir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "journalbench"); err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
	}

	var wall simclock.Real
	wallStart := wall.Now()
	sched := simclock.NewScheduler(time.Date(2012, 4, 1, 0, 0, 0, 0, time.UTC))
	d, err := sessiond.New(sessiond.Config{
		Clock:              sched,
		Send:               func(netem.Addr, []byte) {},
		IdleTimeout:        -1,
		StateDir:           dir,
		JournalFullRewrite: opt.FullRewrite,
	})
	if err != nil {
		panic(err)
	}
	defer d.Close()

	res := JournalBenchResult{
		Sessions:      opt.Sessions,
		Rounds:        opt.Rounds,
		DirtyPerRound: opt.DirtyPerRound,
		FullRewrite:   opt.FullRewrite,
	}
	m := d.Metrics()
	start := sched.Now()

	sessions := make([]*sessiond.Session, opt.Sessions)
	for i := range sessions {
		s, err := d.OpenSession()
		if err != nil {
			panic(err)
		}
		banner := fmt.Sprintf("\x1b[32muser%d@host\x1b[0m:~$ session %d of %d (seed %d)\r\n",
			i, i, opt.Sessions, opt.Seed)
		s.Do(func(srv *core.Server) { srv.HostOutput([]byte(banner)) })
		sessions[i] = s
	}
	if err := d.FlushJournal(); err != nil {
		panic(err)
	}
	res.WarmBytes = m.JournalBytes.Value()

	// Steady state: each round, a rotating ~1% slice of the fleet emits a
	// line of output, virtual time advances one flush interval, and the
	// journal flushes. The rotation touches every session eventually, so
	// the dirty set is never conveniently cache-warm.
	lats := make([]time.Duration, 0, opt.Rounds)
	steady0 := m.JournalBytes.Value()
	for r := 0; r < opt.Rounds; r++ {
		for k := 0; k < opt.DirtyPerRound; k++ {
			s := sessions[(r*opt.DirtyPerRound+k)%len(sessions)]
			line := fmt.Sprintf("round %d activity on session %d\r\n", r, k)
			s.Do(func(srv *core.Server) { srv.HostOutput([]byte(line)) })
		}
		sched.RunFor(opt.FlushInterval)
		t0 := wall.Now()
		if err := d.FlushJournal(); err != nil {
			panic(err)
		}
		lats = append(lats, wall.Since(t0))
	}
	res.SteadyBytes = m.JournalBytes.Value() - steady0
	res.BytesPerFlush = float64(res.SteadyBytes) / float64(opt.Rounds)
	res.WriteAmp = m.JournalWriteAmp()
	res.Segments = m.JournalSegments.Value()
	res.CompactionRuns = m.CompactionRuns.Value()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	res.FlushP50 = lats[len(lats)/2]
	res.FlushP99 = lats[len(lats)*99/100]
	res.Elapsed = sched.Now().Sub(start)
	res.Wall = wall.Since(wallStart)
	return res
}

// FormatJournalBench renders one arm for the CLI.
func FormatJournalBench(r JournalBenchResult) string {
	arm := "incremental"
	if r.FullRewrite {
		arm = "full-rewrite"
	}
	return fmt.Sprintf(
		"journal [%s]: %d sessions, %d dirty/round, %d rounds\n"+
			"  warm flush      %d B\n"+
			"  steady flush    %.0f B/flush (%d B total)\n"+
			"  write amp       %.3f\n"+
			"  flush latency   p50 %v  p99 %v\n"+
			"  segments %d  compactions %d  elapsed %v (virtual)  wall %v\n",
		arm, r.Sessions, r.DirtyPerRound, r.Rounds,
		r.WarmBytes, r.BytesPerFlush, r.SteadyBytes, r.WriteAmp,
		r.FlushP50.Round(time.Microsecond), r.FlushP99.Round(time.Microsecond),
		r.Segments, r.CompactionRuns, r.Elapsed, r.Wall.Round(time.Millisecond))
}
