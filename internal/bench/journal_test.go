package bench

import (
	"testing"
	"time"
)

// journalGateOpts is the scaled-down CI shape of the 10k-session / 1%-
// dirty experiment: the byte accounting is per-session exact, so the
// incremental-vs-rewrite ratio at 400 sessions is the same phenomenon as
// at 10000 — only the wall clock differs.
func journalGateOpts(fullRewrite bool) JournalBenchOptions {
	return JournalBenchOptions{
		Sessions:    400,
		Rounds:      12,
		FullRewrite: fullRewrite,
		Seed:        7,
	}
}

// TestJournalIncrementalFlushCost is the acceptance gate for the log-
// structured journal: in the ~1%-dirty steady state, incremental flushes
// must cost at least 10x fewer bytes than the full-rewrite baseline, and
// the segment log's physical/logical write amplification must stay ≤ 2.
func TestJournalIncrementalFlushCost(t *testing.T) {
	inc := RunJournalBench(journalGateOpts(false))
	full := RunJournalBench(journalGateOpts(true))
	t.Logf("incremental: %s", FormatJournalBench(inc))
	t.Logf("full-rewrite: %s", FormatJournalBench(full))
	if inc.SteadyBytes <= 0 || full.SteadyBytes <= 0 {
		t.Fatalf("degenerate run: steady bytes inc=%d full=%d", inc.SteadyBytes, full.SteadyBytes)
	}
	ratio := full.BytesPerFlush / inc.BytesPerFlush
	if ratio < 10 {
		t.Fatalf("incremental flush saves only %.1fx over full rewrite, want >= 10x (inc %.0f B/flush, full %.0f B/flush)",
			ratio, inc.BytesPerFlush, full.BytesPerFlush)
	}
	if inc.WriteAmp > 2 {
		t.Fatalf("journal_write_amp = %.3f, want <= 2", inc.WriteAmp)
	}
	if inc.WriteAmp < 1 {
		t.Fatalf("journal_write_amp = %.3f below 1 — accounting is broken", inc.WriteAmp)
	}
}

// TestJournalBenchRestores sanity-checks that the bench fleet is actually
// durable: a daemon booted on the bench's state directory revives every
// session. Guards against the bench quietly measuring an empty journal.
func TestJournalBenchRestores(t *testing.T) {
	dir := t.TempDir()
	res := RunJournalBench(JournalBenchOptions{
		Sessions: 50, Rounds: 4, Dir: dir, Seed: 3,
	})
	if res.Segments < 0 || res.WarmBytes == 0 {
		t.Fatalf("bench wrote nothing (warm=%d)", res.WarmBytes)
	}
}

// TestRowInternEquivalence pins the row-interning acceptance criterion on
// the mixed-cohort load: frame streams byte-identical with interning on
// or off, and measurably lower resident bytes per session with it on.
func TestRowInternEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run virtual-time simulation")
	}
	base := ManySessionOptions{
		Sessions:      60,
		Keystrokes:    8,
		TypeInterval:  200 * time.Millisecond,
		Seed:          11,
		Mixed:         true,
		CaptureFrames: true,
	}
	on := base
	off := base
	off.DisableRowIntern = true
	ron := RunManySession(on)
	roff := RunManySession(off)
	if len(ron.FrameHashes) != len(roff.FrameHashes) || len(ron.FrameHashes) == 0 {
		t.Fatalf("frame capture mismatch: %d vs %d sessions", len(ron.FrameHashes), len(roff.FrameHashes))
	}
	for i := range ron.FrameHashes {
		if ron.FrameHashes[i] != roff.FrameHashes[i] {
			t.Fatalf("session %d: frame stream differs between interned and uninterned runs", i)
		}
	}
	t.Logf("resident bytes/session: interned %d, uninterned %d",
		ron.ResidentBytesPerSession, roff.ResidentBytesPerSession)
	if ron.ResidentBytesPerSession <= 0 || roff.ResidentBytesPerSession <= 0 {
		t.Fatal("resident-bytes gauge returned nothing")
	}
	if ron.ResidentBytesPerSession >= roff.ResidentBytesPerSession {
		t.Fatalf("row interning did not reduce resident bytes per session (%d >= %d)",
			ron.ResidentBytesPerSession, roff.ResidentBytesPerSession)
	}
}

// BenchmarkJournalFlush publishes the journaling figures of merit to the
// BENCH record: steady-state bytes per flush, write amplification, and
// wall-clock flush latency at the ~1%-dirty operating point.
func BenchmarkJournalFlush(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := RunJournalBench(JournalBenchOptions{
			Sessions: 2000,
			Rounds:   16,
			Seed:     int64(i + 1),
		})
		b.ReportMetric(res.BytesPerFlush, "journal_flush_bytes")
		b.ReportMetric(res.WriteAmp, "journal_write_amp")
		b.ReportMetric(float64(res.FlushP99)/float64(time.Millisecond), "journal_flush_p99_ms")
		b.ReportMetric(float64(res.Segments), "journal_segments")
		b.ReportMetric(float64(res.CompactionRuns), "compaction_runs")
	}
}
