package bench

import (
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/overlay"
	"repro/internal/trace"
)

func smallTrace(t *testing.T) *trace.Trace {
	t.Helper()
	return trace.Generate(42, trace.SixProfiles()[0], 120)
}

func TestRunMoshTraceProducesSamples(t *testing.T) {
	tr := smallTrace(t)
	res := RunMoshTrace(tr, netem.EVDO(), 1, MoshOptions{Predictions: overlay.Adaptive})
	if len(res.Samples) < len(tr.Steps)/2 {
		t.Fatalf("only %d samples from %d steps", len(res.Samples), len(tr.Steps))
	}
	st := Summarize(res.Samples)
	if st.Median <= 0 && st.FracInstant == 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
	t.Logf("mosh EV-DO: median=%v mean=%v instant=%.0f%% predicted=%.0f%%",
		st.Median, st.Mean, st.FracInstant*100, st.FracPredicted*100)
}

func TestRunSSHTraceProducesSamples(t *testing.T) {
	tr := smallTrace(t)
	samples := RunSSHTrace(tr, netem.EVDO(), 1, SSHOptions{})
	if len(samples) < len(tr.Steps)/2 {
		t.Fatalf("only %d samples from %d steps", len(samples), len(tr.Steps))
	}
	st := Summarize(samples)
	// EV-DO RTT ≈ 500 ms: SSH's median must sit near it.
	if st.Median < 300*time.Millisecond || st.Median > 1200*time.Millisecond {
		t.Fatalf("SSH median on EV-DO = %v, want ≈0.5s", st.Median)
	}
	t.Logf("ssh EV-DO: median=%v mean=%v", st.Median, st.Mean)
}

func TestFigure2Shape(t *testing.T) {
	// The paper's headline: Mosh median < 5 ms (instant), SSH median ≈
	// path RTT (503 ms), ~70% of keystrokes instant.
	c := runComparison("fig2-small", Config{KeystrokesPerUser: 120, Seed: 1},
		netem.EVDO(), MoshOptions{Predictions: overlay.Adaptive}, SSHOptions{})
	if c.Mosh.Stats.Median >= 50*time.Millisecond {
		t.Fatalf("Mosh median = %v, want near-instant", c.Mosh.Stats.Median)
	}
	if c.SSH.Stats.Median < 300*time.Millisecond {
		t.Fatalf("SSH median = %v, want ≈RTT", c.SSH.Stats.Median)
	}
	if c.Mosh.Stats.FracInstant < 0.45 || c.Mosh.Stats.FracInstant > 0.95 {
		t.Fatalf("Mosh instant fraction = %.2f, want ≈0.70", c.Mosh.Stats.FracInstant)
	}
	if c.SSH.Stats.FracInstant > 0.05 {
		t.Fatalf("SSH instant fraction = %.2f, should be ~0", c.SSH.Stats.FracInstant)
	}
	t.Logf("%s", FormatComparison(c))
}

func TestTableLossShape(t *testing.T) {
	// SSP without predictions must beat TCP's RTO tail: bounded mean and
	// σ vs SSH's loss-induced multi-second stalls.
	c := runComparison("loss-small", Config{KeystrokesPerUser: 100, Seed: 2},
		netem.LossyNetem(), MoshOptions{Predictions: overlay.Never}, SSHOptions{})
	if c.Mosh.Stats.Mean > 2*time.Second {
		t.Fatalf("Mosh mean under loss = %v, should stay bounded", c.Mosh.Stats.Mean)
	}
	if c.SSH.Stats.Mean < c.Mosh.Stats.Mean*2 {
		t.Fatalf("SSH mean %v vs Mosh %v: TCP should be far worse under 50%% loss",
			c.SSH.Stats.Mean, c.Mosh.Stats.Mean)
	}
	if c.SSH.Stats.Stddev < c.SSH.Stats.Mean {
		t.Fatalf("SSH σ=%v < mean=%v; expected heavy tail", c.SSH.Stats.Stddev, c.SSH.Stats.Mean)
	}
	t.Logf("%s", FormatComparison(c))
}

func TestFigure3ShapeSmall(t *testing.T) {
	traces := []*trace.Trace{trace.Generate(7, trace.SixProfiles()[0], 200)}
	intervals := []time.Duration{
		100 * time.Microsecond, 2 * time.Millisecond, 8 * time.Millisecond,
		32 * time.Millisecond, 100 * time.Millisecond,
	}
	pts := CollectionSweep(traces, intervals)
	if len(pts) != len(intervals) {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.Writes == 0 {
			t.Fatalf("no writes measured at %v", p.Interval)
		}
		t.Logf("C=%-10v meanDelay=%v writes=%d", p.Interval, p.MeanDelay, p.Writes)
	}
	best := BestInterval(pts)
	// The minimum should be in the single-digit-millisecond region, not
	// at the extremes.
	if best < time.Millisecond || best > 50*time.Millisecond {
		t.Fatalf("best interval = %v, expected near the paper's 8 ms", best)
	}
}

func TestStatsFunctions(t *testing.T) {
	samples := []Sample{
		{Latency: 1 * time.Millisecond},
		{Latency: 2 * time.Millisecond, Predicted: true},
		{Latency: 100 * time.Millisecond},
		{Latency: 200 * time.Millisecond},
		{Latency: 300 * time.Millisecond},
	}
	st := Summarize(samples)
	if st.N != 5 || st.Median != 100*time.Millisecond {
		t.Fatalf("stats = %+v", st)
	}
	if st.FracInstant != 0.4 || st.FracPredicted != 0.2 {
		t.Fatalf("fractions = %+v", st)
	}
	cdf := CDF(samples, []time.Duration{5 * time.Millisecond, time.Second})
	if cdf[0] != 0.4 || cdf[1] != 1.0 {
		t.Fatalf("cdf = %v", cdf)
	}
	if p := Percentile(samples, 100); p != 300*time.Millisecond {
		t.Fatalf("p100 = %v", p)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summarize")
	}
}
