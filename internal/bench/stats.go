// Package bench is the experiment harness that regenerates every table and
// figure in the paper's evaluation (§4). It replays the synthetic
// keystroke traces over emulated networks in deterministic virtual time,
// measures per-keystroke user-interface response latency for both Mosh and
// the SSH baseline, and formats results the way the paper reports them.
//
// Experiment index (see DESIGN.md):
//
//	Figure 2   — keystroke latency CDF, Mosh vs SSH, EV-DO (3G)
//	Figure 3   — protocol-induced delay vs collection interval
//	Table LTE  — Verizon LTE with a concurrent TCP download
//	Table Sing — MIT→Singapore wired path
//	Table Loss — 100 ms RTT with 29% loss/direction, predictions off
package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/trace"
)

// Sample is one measured keystroke response.
type Sample struct {
	Kind      trace.Kind
	Latency   time.Duration
	Predicted bool // displayed via speculative local echo
	// RTT is the client's smoothed RTT estimate when the sample landed
	// (0 when unknown); the Fig. 6 "within one RTT" fraction needs it.
	RTT time.Duration
}

// Stats summarizes a latency distribution the way the paper's tables do.
type Stats struct {
	N             int
	Median        time.Duration
	Mean          time.Duration
	Stddev        time.Duration
	FracInstant   float64 // fraction displayed within 5 ms ("instant")
	FracPredicted float64
}

// Summarize computes distribution statistics.
func Summarize(samples []Sample) Stats {
	if len(samples) == 0 {
		return Stats{}
	}
	lat := make([]time.Duration, len(samples))
	instant, predicted := 0, 0
	var sum float64
	for i, s := range samples {
		lat[i] = s.Latency
		sum += float64(s.Latency)
		if s.Latency < 5*time.Millisecond {
			instant++
		}
		if s.Predicted {
			predicted++
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	mean := sum / float64(len(lat))
	var varsum float64
	for _, l := range lat {
		d := float64(l) - mean
		varsum += d * d
	}
	return Stats{
		N:             len(lat),
		Median:        lat[len(lat)/2],
		Mean:          time.Duration(mean),
		Stddev:        time.Duration(math.Sqrt(varsum / float64(len(lat)))),
		FracInstant:   float64(instant) / float64(len(lat)),
		FracPredicted: float64(predicted) / float64(len(lat)),
	}
}

// CDF returns the cumulative fraction of samples at or below each
// threshold.
func CDF(samples []Sample, thresholds []time.Duration) []float64 {
	out := make([]float64, len(thresholds))
	if len(samples) == 0 {
		return out
	}
	for i, th := range thresholds {
		n := 0
		for _, s := range samples {
			if s.Latency <= th {
				n++
			}
		}
		out[i] = float64(n) / float64(len(samples))
	}
	return out
}

// Percentile returns the p-th percentile latency (0..100).
func Percentile(samples []Sample, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	lat := make([]time.Duration, len(samples))
	for i, s := range samples {
		lat[i] = s.Latency
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	idx := int(p / 100 * float64(len(lat)-1))
	return lat[idx]
}

// Fig6Fractions reports the paper's Fig. 6 thresholds over a sample set:
// the fraction of keystrokes displayed within 16 ms (one frame at 60 Hz)
// and within one round-trip time (the sample-time smoothed RTT; samples
// without an RTT estimate count only against the denominator).
func Fig6Fractions(samples []Sample) (le16, leRTT float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	var n16, nrtt int
	for _, s := range samples {
		if s.Latency <= 16*time.Millisecond {
			n16++
		}
		if s.RTT > 0 && s.Latency <= s.RTT {
			nrtt++
		}
	}
	return float64(n16) / float64(len(samples)), float64(nrtt) / float64(len(samples))
}

// fmtDur renders a latency like the paper ("<0.005 s" for instant).
func fmtDur(d time.Duration) string {
	if d < 5*time.Millisecond {
		return "< 5 ms"
	}
	if d < time.Second {
		return fmt.Sprintf("%d ms", d.Milliseconds())
	}
	return fmt.Sprintf("%.2f s", d.Seconds())
}

// TableRow formats one arm of a latency table.
func TableRow(name string, st Stats) string {
	return fmt.Sprintf("%-24s %10s %10s %10s   (n=%d, instant=%.0f%%)",
		name, fmtDur(st.Median), fmtDur(st.Mean), fmtDur(st.Stddev), st.N, st.FracInstant*100)
}

// TableHeader is the column header matching TableRow.
func TableHeader(title string) string {
	return fmt.Sprintf("%s\n%-24s %10s %10s %10s\n%s",
		title, "", "median", "mean", "σ", strings.Repeat("-", 70))
}
