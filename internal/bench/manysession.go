package bench

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/host"
	"repro/internal/netem"
	"repro/internal/network"
	"repro/internal/overlay"
	"repro/internal/sessiond"
	"repro/internal/simclock"
	"repro/internal/sspcrypto"
	"repro/internal/telemetry"
	"repro/internal/terminal"
	"repro/internal/transport"
	"repro/internal/udpbatch"
)

// ManySessionOptions configures the multi-session load generator: N
// simulated Mosh clients, each behind its own emulated link, all served by
// one sessiond daemon on one socket, in deterministic virtual time.
type ManySessionOptions struct {
	// Sessions is the number of concurrent sessions (default 100).
	Sessions int
	// Keystrokes per session (default 20, capped at 60 so the echo stays
	// on the prompt line and visibility checking is exact).
	Keystrokes int
	// TypeInterval is each user's inter-keystroke gap (default 150 ms,
	// phase-shifted per session so the load spreads).
	TypeInterval time.Duration
	// Params shapes every client's link (default: 2 ms LAN).
	Params netem.LinkParams
	// Seed drives link randomness and the per-session shell applications.
	Seed int64
	// Mixed runs heterogeneous workload cohorts instead of uniform shell
	// typing: sessions rotate through shell (keystroke latency measured on
	// the echo), CJK/emoji editor (unicode-heavy screens exercising the
	// grapheme intern table), and log-tail (deep client-side scrollback
	// from continuous scrolling). Latency samples come from the shell
	// cohort; the other cohorts contribute realistic screen-state load.
	Mixed bool
	// Roam makes a third of the sessions change their source address
	// mid-run (60% through the typing window), exercising per-session
	// roaming under full multiplexer load.
	Roam bool
	// LossyCohorts degrades the non-shell cohorts' links (editor 1%,
	// log-tail 3% i.i.d. loss; with Mixed off, every third/fifth session
	// plays those roles). The shell cohort's links stay clean so the
	// latency percentiles stay attributable.
	LossyCohorts bool
	// Restart kills the daemon mid-run (journal flush on Close), restores
	// it from the journal after a short outage with every host application
	// transplanted, and reports per-session resumption latency: restore
	// instant → first post-restart state accepted by that client.
	Restart bool
	// Unbatched runs the daemon on the one-datagram-per-syscall model (the
	// portable fallback / pre-batching baseline): ingress is handled one
	// packet at a time and write accounting is one syscall per datagram.
	// The default (false) drives the batched pipeline: whole ingress
	// batches demultiplexed at once, egress flushed through modeled
	// sendmmsg sweeps. Packet handling instants are identical in both
	// modes, so the comparison isolates syscall amortization.
	Unbatched bool
	// IOModel selects which provider geometry the batched daemon's syscall
	// and stack-traversal accounting mirrors (mmsg by default; see
	// sessiond.IOModel). Packet handling is identical in every model —
	// per-session traffic is byte-for-byte the same — so model runs are
	// directly comparable on syscalls/pkt and traversals/pkt alone.
	IOModel sessiond.IOModel
	// Trains replaces every session's application with host.BulkStream and
	// types in lockstep (no phase shift): one shared busy log feeding every
	// viewer, so reply bursts are correlated across sessions and each reply
	// diff spans several MTU-sized fragments. The egress ring then carries
	// long same-peer equal-length trains — the workload UDP segmentation
	// offload (IOModel gso) collapses into single sendmmsg entries and
	// single kernel-stack traversals. Echo-latency sampling is disabled
	// (bulk output scrolls the prompt away); the measures of interest are
	// WriteCalls, StackIn/StackOut, and frame equivalence.
	Trains bool
	// DeliveryQuantum models receive-side interrupt coalescing on the
	// daemon's ingress path (client→daemon links only): arrivals are
	// clustered onto quantum boundaries, exactly as a NIC+epoll loop hands
	// a busy process everything since its last wakeup. It applies to BOTH
	// modes, so latency percentiles stay directly comparable. Zero takes
	// the 1 ms default; negative disables coalescing.
	DeliveryQuantum time.Duration
	// CaptureFrames records, per session, a running hash of every server
	// state the client accepts (in order) plus the final rendered screen —
	// the equivalence test's evidence that batched and unbatched runs
	// produce byte-identical per-session frame streams.
	CaptureFrames bool
	// Chaos runs the whole load under a seeded hostile-world schedule:
	// windowed drop/dup/corrupt/truncate manglers on both wire directions,
	// a fault-injecting filesystem under the journal (write/sync/rename
	// failures, short writes, torn renames — healed just before the
	// Restart kill so the recovery story stays testable), a periodic
	// journal flush pump so the retry/backoff/suspension machinery
	// actually runs in virtual time, and a nonce audit on every datagram
	// the daemon seals. Combine with Restart/Roam/LossyCohorts for the
	// full torture. Everything is deterministic from ChaosSeed.
	Chaos bool
	// ChaosSeed drives the chaos schedule (default: derived from Seed).
	ChaosSeed int64
	// Virtual tunes the run for wall-beating virtual time at very large
	// session counts (the 10⁵-session regime): few keystrokes spread over
	// a long inter-keystroke interval (defaults become 2 keystrokes every
	// 3 min) and a stretched SSP heartbeat (150 s instead of the paper's
	// 3 s), so the simulated span is dominated by idle virtual time —
	// which costs nearly no wall time to skip over — instead of by
	// per-packet work. Explicit Keystrokes/TypeInterval still win.
	Virtual bool
	// DisableRowIntern turns off row-level screen interning in the daemon,
	// giving the resident-memory baseline an interned run is compared
	// against. Frame streams must be byte-identical either way.
	DisableRowIntern bool
}

// ManySessionResult aggregates the run.
type ManySessionResult struct {
	Sessions   int
	Keystrokes int // per session
	// Shells/Editors/Pagers/Bulk are the cohort sizes (Sessions/0/0/0 for
	// the uniform run; 0/0/0/Sessions for the Trains run).
	Shells, Editors, Pagers, Bulk int
	// PagerScrollbackMin is the shallowest client-side history across the
	// pager cohort at the end of the run — proof the cohort actually
	// exercised deep scrollback (0 when the cohort is empty).
	PagerScrollbackMin int
	// Samples holds one keystroke→visible-echo latency per delivered
	// keystroke, across all sessions.
	Samples []Sample
	// Lost counts keystrokes whose echo never became visible (should be 0
	// on a loss-free link).
	Lost int
	// Elapsed is the virtual time from first keystroke to convergence.
	Elapsed time.Duration
	// Wall is the real time the simulation took (sim efficiency).
	Wall time.Duration
	// PacketsIn/Out, BytesIn/Out are daemon-side aggregate wire counters
	// over Elapsed (summed across a restart).
	PacketsIn, PacketsOut int64
	BytesIn, BytesOut     int64
	// QueueDrops counts dispatch-queue overflow drops (0 in sim mode).
	QueueDrops int64
	// Roams counts authentic source-address changes the daemon observed.
	Roams int64
	// Restarted reports whether the restart scenario ran; Restored is how
	// many sessions the second daemon revived from the journal, and
	// ResumeSamples holds one restore→first-new-state latency per session
	// that resumed within the run.
	Restarted     bool
	Restored      int64
	ResumeSamples []Sample
	// ResidentBytesPerSession is the end-of-run deduplicated screen-cell
	// footprint per live session (the row-interning gauge): each distinct
	// backing array is charged once across the whole daemon, so intern-
	// table sharing shows up directly as a lower number.
	ResidentBytesPerSession int
	// ReadCalls/WriteCalls count daemon-side socket syscalls (modeled:
	// one per batch in batched mode, one per datagram in unbatched mode);
	// SyscallsPerPacket = (ReadCalls+WriteCalls)/(PacketsIn+PacketsOut).
	ReadCalls, WriteCalls int64
	SyscallsPerPacket     float64
	// IOModel echoes the provider geometry the run's accounting mirrored.
	IOModel sessiond.IOModel
	// StackIn/StackOut count modeled UDP-stack traversals per direction:
	// one per coalesced same-peer run under the gso model (the kernel
	// segments/reassembles a whole train in one pass), one per datagram
	// everywhere else. StackTraversalsPerPacket =
	// (StackIn+StackOut)/(PacketsIn+PacketsOut) — the below-syscall
	// companion to SyscallsPerPacket.
	StackIn, StackOut        int64
	StackTraversalsPerPacket float64
	// Batch-size distribution observed by the daemon (datagrams moved per
	// syscall; from the final daemon incarnation on restart runs).
	ReadBatchP50, ReadBatchP99   int
	WriteBatchP50, WriteBatchP99 int
	// FrameHashes (with CaptureFrames) holds one order-sensitive FNV-1a
	// hash per session over every accepted server state; FinalFrames holds
	// each session's converged screen render.
	FrameHashes []uint64
	FinalFrames [][]byte
	// Chaos reporting (Chaos mode). NonceViolations counts sealed
	// datagrams whose (session, sequence) pair was ever seen before at the
	// daemon's Send hook — ANY value other than zero is a broken crypto
	// invariant. The mangle counters sum both wire directions; AuthDrops
	// and JournalFlushFailures are daemon-side deltas over the run;
	// JournalSuspendedSeen reports whether the disk-fault windows actually
	// drove the journal into a suspension.
	ChaosActive          bool
	NonceViolations      int
	ChaosDropped         int64
	ChaosDuplicated      int64
	ChaosCorrupted       int64
	ChaosTruncated       int64
	AuthDrops            int64
	JournalFlushFailures int64
	JournalSuspendedSeen bool
	// Server-side telemetry (shared across a restart): per-cohort
	// keystroke→echo percentiles measured at the daemon (paper Fig. 6,
	// from the telemetry pipeline's matcher), per-stage pipeline
	// latencies, and the client-visible Fig. 6 fractions computed from
	// Samples. FlightDump is the daemon's flight-recorder dump captured
	// at run end (Chaos mode only) so a failing gate can ship forensics.
	EchoCohorts               []EchoCohortStats
	StageStats                []StageStat
	ClientLe16ms, ClientLeRTT float64
	FlightDump                []byte
}

// EchoCohortStats summarizes one cohort's server-side keystroke→echo
// distribution: how long from a keystroke's arrival at the daemon to the
// mint of the first frame delta carrying its host output.
type EchoCohortStats struct {
	Name           string
	N              int64
	P50, P99, P999 time.Duration
	// Le16ms/LeRTT are fractions of matched echoes within 16 ms and
	// within one smoothed RTT — the paper's Fig. 6 buckets.
	Le16ms, LeRTT float64
}

// StageStat summarizes one pipeline stage's latency distribution.
type StageStat struct {
	Name           string
	N              int64
	P50, P99, P999 time.Duration
}

// shellPromptLen is where the first echoed character lands on the prompt
// row of host.NewShell's screen.
const shellPromptLen = len("user@remote:~$ ")

// RunManySession drives Sessions simulated clients through one in-process
// sessiond daemon and measures per-keystroke visible latency plus
// aggregate daemon throughput. Everything runs in virtual time on one
// scheduler, so results are exactly reproducible from the seed.
func RunManySession(opt ManySessionOptions) ManySessionResult {
	if opt.Sessions <= 0 {
		opt.Sessions = 100
	}
	if opt.Virtual {
		if opt.Keystrokes <= 0 {
			opt.Keystrokes = 2
		}
		if opt.TypeInterval <= 0 {
			opt.TypeInterval = 3 * time.Minute
		}
	}
	if opt.Keystrokes <= 0 {
		opt.Keystrokes = 20
	}
	if opt.Keystrokes > 60 {
		opt.Keystrokes = 60
	}
	if opt.TypeInterval <= 0 {
		opt.TypeInterval = 150 * time.Millisecond
	}
	if opt.Params == (netem.LinkParams{}) {
		opt.Params = netem.LinkParams{Delay: 2 * time.Millisecond, Overhead: 28}
	}
	if opt.DeliveryQuantum == 0 {
		opt.DeliveryQuantum = time.Millisecond
	}

	// Wall-clock measurement is the one legitimately real-time reading in
	// this file; it goes through the Real clock so the naked-time lint
	// stays clean and the intent is explicit.
	var wallClock simclock.Real
	wallStart := wallClock.Now()
	sched := simclock.NewScheduler(benchEpoch)
	nw := netem.NewNetwork(sched)
	daemonAddr := netem.Addr{Host: 0xFFFF, Port: 60001}
	paths := make(map[netem.Addr]*netem.Path, opt.Sessions)

	// Cohort assignment: session IDs are issued sequentially from 1 in
	// OpenSession order, so client i holds session ID i+1.
	const (
		cohortShell = iota
		cohortEditor
		cohortPager
		cohortBulk
	)
	cohortOf := func(i int) int {
		if opt.Trains {
			return cohortBulk
		}
		if !opt.Mixed {
			return cohortShell
		}
		return i % 3
	}

	// Chaos plumbing: manglers on both wire directions, a nonce audit at
	// the daemon's Send hook (BEFORE mangling, so network duplication is
	// not mistaken for daemon nonce reuse), and a fault-injecting
	// filesystem under the journal. The whole simulation is single-
	// threaded on the scheduler, so the audit map needs no lock.
	var (
		ingressMangler, egressMangler *faultinject.Mangler
		chaosFS                       *faultinject.FaultFS
		nonceSeen                     map[uint64]map[uint64]struct{}
	)
	res := ManySessionResult{Sessions: opt.Sessions, Keystrokes: opt.Keystrokes, IOModel: opt.IOModel}
	if opt.Chaos {
		if opt.ChaosSeed == 0 {
			opt.ChaosSeed = opt.Seed + 0xC4A05
		}
		ingressMangler = faultinject.NewMangler(opt.ChaosSeed)
		egressMangler = faultinject.NewMangler(opt.ChaosSeed + 1)
		nonceSeen = make(map[uint64]map[uint64]struct{})
		res.ChaosActive = true
	}
	deliver := func(dst netem.Addr, wire []byte) {
		if p := paths[dst]; p != nil {
			p.Down.Send(netem.Packet{Src: daemonAddr, Dst: dst, Payload: wire})
		}
	}

	// Server-side telemetry shared across a daemon restart: the restored
	// daemon inherits the same pipeline, so echo percentiles and stage
	// latencies cover the whole run. Per-cohort echo aggregation hangs off
	// the daemon's echo matcher (OnEcho fires under the session lock, and
	// the simulation is single-threaded on the scheduler).
	pipe := telemetry.NewPipeline()
	cohortNames := [4]string{cohortShell: "shell", cohortEditor: "cjk-editor", cohortPager: "log-tail", cohortBulk: "bulk-stream"}
	type echoAgg struct {
		hist           *telemetry.Hist
		n, le16, leRTT int64
	}
	var echoAggs [4]echoAgg
	for i := range echoAggs {
		echoAggs[i].hist = telemetry.NewHist(6)
	}

	// Host applications live outside the daemon so a restart can transplant
	// them, like ptys surviving a frontend restart.
	apps := make(map[uint64]host.App, opt.Sessions)
	cfg := sessiond.Config{
		Clock:    sched,
		Pipeline: pipe,
		OnEcho: func(session uint64, lat, srtt time.Duration) {
			a := &echoAggs[cohortOf(int(session)-1)]
			a.hist.Observe(int64(lat))
			a.n++
			if lat <= 16*time.Millisecond {
				a.le16++
			}
			if srtt > 0 && lat <= srtt {
				a.leRTT++
			}
		},
		Send: func(dst netem.Addr, wire []byte) {
			if !opt.Chaos {
				deliver(dst, wire)
				return
			}
			if id, inner, err := network.ParseEnvelope(wire); err == nil && len(inner) >= 8 {
				seq := binary.BigEndian.Uint64(inner[:8]) & sspcrypto.MaxSeq
				seen := nonceSeen[id]
				if seen == nil {
					seen = make(map[uint64]struct{})
					nonceSeen[id] = seen
				}
				if _, dup := seen[seq]; dup {
					res.NonceViolations++
				} else {
					seen[seq] = struct{}{}
				}
			}
			for _, w := range egressMangler.Mangle(wire) {
				deliver(dst, w)
			}
		},
		NewApp: func(id uint64) host.App {
			var a host.App
			switch cohortOf(int(id) - 1) {
			case cohortEditor:
				a = host.NewUnicodeEditor(opt.Seed+int64(id), 80)
			case cohortPager:
				a = host.NewLogTail(opt.Seed + int64(id))
			case cohortBulk:
				a = host.NewBulkStream(opt.Seed+int64(id), 0)
			default:
				a = host.NewShell(opt.Seed + int64(id))
			}
			apps[id] = a
			return a
		},
		RestoreApp:       func(id uint64) host.App { return apps[id] },
		IdleTimeout:      -1,
		UnbatchedIO:      opt.Unbatched,
		IOModel:          opt.IOModel,
		DisableRowIntern: opt.DisableRowIntern,
	}
	// Virtual regime: stretch the keepalive heartbeat on both ends so the
	// long idle stretches between keystrokes stay idle on the wire too —
	// per-session heartbeat exchanges, not simulated idle time, are what
	// cost wall clock at 10⁵ sessions.
	var virtualTiming *transport.Timing
	if opt.Virtual {
		t := transport.DefaultTiming()
		t.HeartbeatInterval = 150 * time.Second
		virtualTiming = &t
		cfg.Timing = virtualTiming
	}
	// The trains workload views a wide dashboard-sized window: the reply
	// diff is bounded by one screenful, so a large screen is what makes
	// each burst span many MTU-sized fragments (the egress train).
	const trainsWidth, trainsHeight = 162, 64
	if opt.Trains {
		cfg.Width, cfg.Height = trainsWidth, trainsHeight
	}
	if opt.Restart {
		stateDir, err := os.MkdirTemp("", "mosh-bench-journal-")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(stateDir)
		cfg.StateDir = stateDir
		if opt.Chaos {
			// A hostile disk under the journal, with a tight retry/suspend
			// schedule so backoff, suspension, and resume all fit inside
			// the run's fault windows. The small SeqReserve makes the
			// two-phase reservation actually bind under disk failure.
			chaosFS = faultinject.NewFaultFS(nil, opt.ChaosSeed+2)
			cfg.FS = chaosFS
			cfg.FaultSeed = opt.ChaosSeed + 3
			cfg.JournalRetryMin = 40 * time.Millisecond
			cfg.JournalRetryMax = 400 * time.Millisecond
			cfg.JournalSuspendAfter = 3
			cfg.SeqReserve = 512
		}
	}
	d, err := sessiond.New(cfg)
	if err != nil {
		panic(err)
	}
	wakeDaemon := d.Pump(sched)
	// The daemon's "socket": a coalescing sink collects every same-instant
	// arrival (clustered by the ingress links' delivery quantum, the way a
	// busy reader finds the kernel queue on wakeup) and hands the daemon
	// the whole batch. The batched mode demultiplexes it in one sweep
	// (HandleBatch); the unbatched baseline handles the identical packets
	// at the identical instants one syscall-equivalent at a time, so the
	// two modes differ only in syscall amortization. d and wakeDaemon are
	// rebound when the restart scenario swaps in the restored daemon;
	// in-flight packets follow automatically.
	var ingressScratch []udpbatch.Message
	var manglePkts []netem.Packet
	netem.NewBatchSink(nw, daemonAddr, func(pkts []netem.Packet) {
		if ingressMangler != nil {
			out := manglePkts[:0]
			for _, p := range pkts {
				for _, w := range ingressMangler.Mangle(p.Payload) {
					q := p
					q.Payload = w
					out = append(out, q)
				}
			}
			manglePkts = out[:0]
			pkts = out
		}
		if opt.Unbatched {
			for _, p := range pkts {
				d.HandlePacket(p.Payload, p.Src)
			}
		} else {
			msgs := ingressScratch[:0]
			for _, p := range pkts {
				msgs = append(msgs, udpbatch.Message{Buf: p.Payload, Addr: p.Src})
			}
			ingressScratch = msgs[:0]
			d.HandleBatch(msgs)
		}
		wakeDaemon()
	})

	type pendingKey struct {
		col  int
		char byte
		at   time.Time
	}
	type loadClient struct {
		cl      *core.Client
		wake    func()
		pending []pendingKey
		typed   int
		cohort  int
		addr    netem.Addr
		path    *netem.Path
		// Resumption-latency tracking (restart scenario): preNum is the
		// newest server state at restore time; the first state beyond it
		// is the resume repaint.
		preNum   uint64
		resumeAt time.Time
		receive  func(p netem.Packet)
		// Frame-stream capture (CaptureFrames): an order-sensitive hash
		// over every accepted server state.
		frameNum  uint64
		frameHash hash.Hash64
	}
	clients := make([]*loadClient, opt.Sessions)

	// cohortParams degrades the non-shell cohorts' links when requested.
	cohortParams := func(cohort int) netem.LinkParams {
		p := opt.Params
		if opt.LossyCohorts {
			switch cohort {
			case cohortEditor:
				p.LossProb += 0.01
			case cohortPager:
				p.LossProb += 0.03
			}
		}
		return p
	}
	// newClientPath builds one client's link pair: the uplink carries the
	// daemon-side delivery quantum (receive coalescing at the shared
	// socket), the downlink delivers exactly (clients are one-session
	// processes; their read syscalls are not what this bench scales).
	// Seed handling matches netem.NewPath, keeping runs comparable.
	newClientPath := func(cohort int, seed int64) *netem.Path {
		up := cohortParams(cohort)
		if opt.DeliveryQuantum > 0 {
			up.DeliveryQuantum = opt.DeliveryQuantum
		}
		return netem.NewAsymmetricPath(nw, up, cohortParams(cohort), seed)
	}

	for i := 0; i < opt.Sessions; i++ {
		switch cohortOf(i) {
		case cohortEditor:
			res.Editors++
		case cohortPager:
			res.Pagers++
		case cohortBulk:
			res.Bulk++
		default:
			res.Shells++
		}
		sess, err := d.OpenSession()
		if err != nil {
			panic(err)
		}
		lc := &loadClient{cohort: cohortOf(i)}
		if opt.CaptureFrames {
			lc.frameHash = fnv.New64a()
		}
		lc.addr = netem.Addr{Host: uint32(1 + i), Port: uint16(1000 + i%60000)}
		lc.path = newClientPath(lc.cohort, opt.Seed+int64(i)*7919)
		paths[lc.addr] = lc.path
		lc.cl, err = core.NewClient(core.ClientConfig{
			Key:         sess.Key(),
			Clock:       sched,
			Timing:      virtualTiming,
			Envelope:    &network.Envelope{ID: sess.ID},
			Width:       cfg.Width,
			Height:      cfg.Height,
			Predictions: overlay.Never,
			Emit: func(wire []byte) {
				lc.path.Up.Send(netem.Packet{Src: lc.addr, Dst: daemonAddr, Payload: wire})
			},
		})
		if err != nil {
			panic(err)
		}
		lc.wake = core.Pump(sched, lc.cl)
		clients[i] = lc
		receive := func(p netem.Packet) {
			lc.cl.Receive(p.Payload, p.Src)
			now := sched.Now()
			if lc.frameHash != nil {
				if num := lc.cl.Transport().RemoteStateNum(); num > lc.frameNum {
					lc.frameNum = num
					var numBuf [8]byte
					binary.BigEndian.PutUint64(numBuf[:], num)
					lc.frameHash.Write(numBuf[:])
					lc.frameHash.Write(terminal.NewFrame(false, nil, lc.cl.ServerState()))
				}
			}
			if !lc.resumeAt.IsZero() && lc.cl.Transport().RemoteStateNum() > lc.preNum {
				res.ResumeSamples = append(res.ResumeSamples, Sample{Latency: now.Sub(lc.resumeAt)})
				lc.resumeAt = time.Time{}
			}
			// Visibility check (shell cohort only — its echo position is
			// exact): a keystroke's echo is the cell the shell echoes it
			// into on the prompt row.
			fb := lc.cl.ServerState()
			for len(lc.pending) > 0 {
				k := lc.pending[0]
				if k.col >= fb.W || fb.Peek(0, k.col).ContentsString() != string(rune(k.char)) {
					break
				}
				var rtt time.Duration
				if conn := lc.cl.Transport().Connection(); conn.HaveRTT() {
					rtt = conn.SRTT(0)
				}
				res.Samples = append(res.Samples, Sample{Latency: now.Sub(k.at), RTT: rtt})
				lc.pending = lc.pending[1:]
			}
			lc.wake()
		}
		lc.receive = receive
		nw.Attach(lc.addr, receive)
	}

	// Connection warmup: clients introduce themselves, RTT estimators
	// settle, before the measured window opens.
	sched.RunFor(2 * time.Second)
	// Wire counters accumulate across a daemon restart: harvest folds the
	// current daemon's deltas into the result and rebases.
	m := d.Metrics()
	packetsIn0, packetsOut0 := m.PacketsIn.Value(), m.PacketsOut.Value()
	bytesIn0, bytesOut0 := m.BytesIn.Value(), m.BytesOut.Value()
	queueDrops0, roams0 := m.DropsQueueFull.Value(), m.RoamingEvents.Value()
	readCalls0, writeCalls0 := m.ReadBatchCalls.Value(), m.WriteBatchCalls.Value()
	stackIn0, stackOut0 := m.StackTraversalsIn.Value(), m.StackTraversalsOut.Value()
	authDrops0, flushFails0 := m.DropsAuth.Value(), m.JournalFlushFailures.Value()
	harvest := func() {
		res.PacketsIn += m.PacketsIn.Value() - packetsIn0
		res.PacketsOut += m.PacketsOut.Value() - packetsOut0
		res.BytesIn += m.BytesIn.Value() - bytesIn0
		res.BytesOut += m.BytesOut.Value() - bytesOut0
		res.QueueDrops += m.DropsQueueFull.Value() - queueDrops0
		res.Roams += m.RoamingEvents.Value() - roams0
		res.ReadCalls += m.ReadBatchCalls.Value() - readCalls0
		res.WriteCalls += m.WriteBatchCalls.Value() - writeCalls0
		res.StackIn += m.StackTraversalsIn.Value() - stackIn0
		res.StackOut += m.StackTraversalsOut.Value() - stackOut0
		res.AuthDrops += m.DropsAuth.Value() - authDrops0
		res.JournalFlushFailures += m.JournalFlushFailures.Value() - flushFails0
	}
	rebase := func() {
		m = d.Metrics()
		packetsIn0, packetsOut0 = m.PacketsIn.Value(), m.PacketsOut.Value()
		bytesIn0, bytesOut0 = m.BytesIn.Value(), m.BytesOut.Value()
		queueDrops0, roams0 = m.DropsQueueFull.Value(), m.RoamingEvents.Value()
		readCalls0, writeCalls0 = m.ReadBatchCalls.Value(), m.WriteBatchCalls.Value()
		stackIn0, stackOut0 = m.StackTraversalsIn.Value(), m.StackTraversalsOut.Value()
		authDrops0, flushFails0 = m.DropsAuth.Value(), m.JournalFlushFailures.Value()
	}
	start := sched.Now()

	// Schedule every user's typing, phase-shifted so keystrokes spread
	// evenly across the interval instead of arriving in lockstep.
	const letters = "abcdefghijklmnopqrstuvwxyz"
	for i, lc := range clients {
		lc := lc
		phase := opt.TypeInterval * time.Duration(i) / time.Duration(opt.Sessions)
		if opt.Trains {
			// One shared log feeds every viewer: bursts land in lockstep, so
			// same-instant egress sweeps carry many sessions' trains at once.
			phase = 0
		}
		var typeNext func()
		typeNext = func() {
			if lc.typed >= opt.Keystrokes {
				return
			}
			ch := letters[lc.typed%len(letters)]
			if lc.cohort == cohortPager {
				ch = ' ' // hold the pager on space
			}
			if lc.cohort == cohortShell {
				lc.pending = append(lc.pending, pendingKey{
					col:  shellPromptLen + lc.typed,
					char: ch,
					at:   sched.Now(),
				})
			}
			lc.typed++
			lc.cl.UserBytes([]byte{ch})
			lc.wake()
			sched.AfterFunc(opt.TypeInterval, typeNext)
		}
		sched.At(start.Add(phase), typeNext)
	}

	typing := opt.TypeInterval * time.Duration(opt.Keystrokes)
	const outage = 300 * time.Millisecond
	killAt := start.Add(typing / 2)

	if opt.Restart {
		// Kill the daemon mid-run (on-shutdown journal flush included) and
		// restore it after a short outage, transplanting the applications.
		sched.At(killAt, func() {
			harvest()
			d.Close()
		})
		sched.At(killAt.Add(outage), func() {
			nd, err := sessiond.New(cfg)
			if err != nil {
				panic(err)
			}
			res.Restarted = true
			res.Restored = nd.Metrics().SessionsRestored.Value()
			d = nd
			wakeDaemon = d.Pump(sched)
			rebase()
			now := sched.Now()
			for _, lc := range clients {
				lc.preNum = lc.cl.Transport().RemoteStateNum()
				lc.resumeAt = now
			}
		})
	}

	if opt.Roam {
		// A third of the sessions change network address 60% through the
		// typing window — floored past the restore instant when Restart is
		// also enabled, so roaming always exercises the restored daemon
		// (not the outage) however short the typing window is.
		roamAt := start.Add(typing * 3 / 5)
		if opt.Restart {
			if floor := killAt.Add(outage + 200*time.Millisecond); roamAt.Before(floor) {
				roamAt = floor
			}
		}
		sched.At(roamAt, func() {
			for i, lc := range clients {
				if i%3 != 0 {
					continue
				}
				nw.Detach(lc.addr)
				delete(paths, lc.addr)
				lc.addr = netem.Addr{Host: uint32(1<<20 + i), Port: uint16(2000 + i%60000)}
				lc.path = newClientPath(lc.cohort, opt.Seed+int64(i)*104729)
				paths[lc.addr] = lc.path
				nw.Attach(lc.addr, lc.receive)
				// Speak from the new address promptly so the daemon
				// re-learns the reply target, like a real roaming client.
				lc.cl.Tick()
				lc.wake()
			}
		})
	}

	if opt.Chaos {
		// Network chaos window: both directions mangled from shortly after
		// the measured window opens until typing ends, leaving the drain
		// clean so retransmits can converge the screens.
		mangleOn := faultinject.MangleFaults{
			DropProb: 0.02, DupProb: 0.02, CorruptProb: 0.01, TruncProb: 0.01,
		}
		sched.At(start.Add(250*time.Millisecond), func() {
			ingressMangler.SetFaults(mangleOn)
			egressMangler.SetFaults(mangleOn)
		})
		sched.At(start.Add(typing), func() {
			ingressMangler.SetFaults(faultinject.MangleFaults{})
			egressMangler.SetFaults(faultinject.MangleFaults{})
		})
		if chaosFS != nil {
			// Disk chaos: high failure rates so consecutive-failure
			// suspension actually triggers, healed just before the Restart
			// kill (the shutdown flush must find a working disk for the
			// restore side of the torture to stay meaningful) and again at
			// the end of typing so the final suspension can resume.
			fsOn := faultinject.FSFaults{
				WriteErrProb: 0.85, ShortWriteProb: 0.2, SyncErrProb: 0.5,
				RenameErrProb: 0.25, TornRenameProb: 0.25,
			}
			sched.At(start.Add(400*time.Millisecond), func() { chaosFS.SetFaults(fsOn) })
			if opt.Restart {
				sched.At(killAt.Add(-100*time.Millisecond), func() { chaosFS.SetFaults(faultinject.FSFaults{}) })
				sched.At(killAt.Add(outage+300*time.Millisecond), func() { chaosFS.SetFaults(fsOn) })
			}
			sched.At(start.Add(typing), func() { chaosFS.SetFaults(faultinject.FSFaults{}) })
		}
		if opt.Restart {
			// Periodic flush pump: sim mode has no journal loop, so drive
			// the flush (and observe suspensions) on a fixed cadence.
			// Attempts self-gate on the retry backoff, so this cannot
			// defeat the backoff it is exercising.
			var pump func()
			pump = func() {
				d.FlushJournal()
				if d.JournalSuspended() != 0 {
					res.JournalSuspendedSeen = true
				}
				sched.AfterFunc(500*time.Millisecond, pump)
			}
			sched.AfterFunc(500*time.Millisecond, pump)
		}
	}

	// Run through the typing period plus a generous drain for retransmits.
	sched.RunFor(typing + 10*time.Second)
	for _, lc := range clients {
		res.Lost += len(lc.pending)
		if lc.cohort == cohortPager {
			if depth := lc.cl.ServerState().ScrollbackLines(); res.PagerScrollbackMin == 0 || depth < res.PagerScrollbackMin {
				res.PagerScrollbackMin = depth
			}
		}
	}

	res.Elapsed = sched.Now().Sub(start)
	res.Wall = wallClock.Since(wallStart)
	harvest()
	res.ReadBatchP50 = m.ReadBatchSizes.Quantile(0.50)
	res.ReadBatchP99 = m.ReadBatchSizes.Quantile(0.99)
	res.WriteBatchP50 = m.WriteBatchSizes.Quantile(0.50)
	res.WriteBatchP99 = m.WriteBatchSizes.Quantile(0.99)
	if pkts := res.PacketsIn + res.PacketsOut; pkts > 0 {
		res.SyscallsPerPacket = float64(res.ReadCalls+res.WriteCalls) / float64(pkts)
		res.StackTraversalsPerPacket = float64(res.StackIn+res.StackOut) / float64(pkts)
	}
	if opt.CaptureFrames {
		for _, lc := range clients {
			res.FrameHashes = append(res.FrameHashes, lc.frameHash.Sum64())
			res.FinalFrames = append(res.FinalFrames, terminal.NewFrame(false, nil, lc.cl.ServerState()))
		}
	}
	res.ResidentBytesPerSession = d.ScreenStateStats().ResidentBytesPerSession()
	if opt.Chaos {
		is, es := ingressMangler.Stats(), egressMangler.Stats()
		res.ChaosDropped = is.Dropped.Load() + es.Dropped.Load()
		res.ChaosDuplicated = is.Duplicated.Load() + es.Duplicated.Load()
		res.ChaosCorrupted = is.Corrupted.Load() + es.Corrupted.Load()
		res.ChaosTruncated = is.Truncated.Load() + es.Truncated.Load()
		res.FlightDump = d.FlightDump("chaos-run-end")
	}

	// Server-side telemetry: per-cohort Fig. 6 echo percentiles, the
	// client-visible fractions, and the pipeline stage latencies.
	res.ClientLe16ms, res.ClientLeRTT = Fig6Fractions(res.Samples)
	for c, a := range echoAggs {
		if a.n == 0 {
			continue
		}
		res.EchoCohorts = append(res.EchoCohorts, EchoCohortStats{
			Name:   cohortNames[c],
			N:      a.n,
			P50:    a.hist.QuantileDuration(0.50),
			P99:    a.hist.QuantileDuration(0.99),
			P999:   a.hist.QuantileDuration(0.999),
			Le16ms: float64(a.le16) / float64(a.n),
			LeRTT:  float64(a.leRTT) / float64(a.n),
		})
	}
	for _, st := range telemetry.Stages() {
		h := pipe.Stage(st)
		if h.Count() == 0 {
			continue
		}
		res.StageStats = append(res.StageStats, StageStat{
			Name: st.String(),
			N:    h.Count(),
			P50:  h.QuantileDuration(0.50),
			P99:  h.QuantileDuration(0.99),
			P999: h.QuantileDuration(0.999),
		})
	}
	return res
}

// FormatManySession renders the load generator's report: aggregate
// throughput through the single daemon socket plus keystroke latency
// percentiles across every session.
func FormatManySession(r ManySessionResult) string {
	var b strings.Builder
	secs := r.Elapsed.Seconds()
	if secs <= 0 {
		secs = 1
	}
	if r.Bulk > 0 {
		fmt.Fprintf(&b, "many-session load: %d bulk-stream sessions × %d keystrokes (lockstep egress trains) over one daemon socket\n",
			r.Bulk, r.Keystrokes)
	} else if r.Editors > 0 || r.Pagers > 0 {
		fmt.Fprintf(&b, "many-session load: %d sessions (%d shell / %d cjk-editor / %d log-tail) × %d keystrokes over one daemon socket\n",
			r.Sessions, r.Shells, r.Editors, r.Pagers, r.Keystrokes)
	} else {
		fmt.Fprintf(&b, "many-session load: %d sessions × %d keystrokes over one daemon socket\n",
			r.Sessions, r.Keystrokes)
	}
	fmt.Fprintf(&b, "  throughput: %7.0f pkts/s in, %7.0f pkts/s out, %8.1f KB/s in, %8.1f KB/s out (virtual)\n",
		float64(r.PacketsIn)/secs, float64(r.PacketsOut)/secs,
		float64(r.BytesIn)/secs/1024, float64(r.BytesOut)/secs/1024)
	if r.ReadCalls+r.WriteCalls > 0 {
		// The unbatched baseline is exactly 1.0 syscall per datagram by
		// construction, so the factor below is directly the batching win.
		factor := 0.0
		if r.SyscallsPerPacket > 0 {
			factor = 1 / r.SyscallsPerPacket
		}
		fmt.Fprintf(&b, "  socket io [%s]: %d read + %d write syscalls for %d pkts → %.3f syscalls/pkt (%.1fx fewer than 1/pkt); batch size read p50/p99 = %d/%d, write p50/p99 = %d/%d\n",
			r.IOModel, r.ReadCalls, r.WriteCalls, r.PacketsIn+r.PacketsOut, r.SyscallsPerPacket, factor,
			r.ReadBatchP50, r.ReadBatchP99, r.WriteBatchP50, r.WriteBatchP99)
	}
	if r.StackIn+r.StackOut > 0 {
		// One traversal per datagram everywhere except the gso model, where
		// the stack runs once per coalesced same-peer train each direction.
		fmt.Fprintf(&b, "  udp stack: %d in + %d out traversals → %.3f traversals/pkt\n",
			r.StackIn, r.StackOut, r.StackTraversalsPerPacket)
	}
	st := Summarize(r.Samples)
	fmt.Fprintf(&b, "  keystroke latency: n=%d p50=%v p90=%v p99=%v max=%v lost=%d\n",
		st.N, Percentile(r.Samples, 50), Percentile(r.Samples, 90),
		Percentile(r.Samples, 99), Percentile(r.Samples, 100), r.Lost)
	if st.N > 0 {
		fmt.Fprintf(&b, "  fig6 (client-visible): %.1f%% ≤ 16 ms, %.1f%% ≤ 1 RTT\n",
			r.ClientLe16ms*100, r.ClientLeRTT*100)
	}
	for _, ec := range r.EchoCohorts {
		fmt.Fprintf(&b, "  keystroke→echo [%s]: n=%d p50=%v p99=%v p99.9=%v; %.1f%% ≤ 16 ms, %.1f%% ≤ 1 RTT (server-side)\n",
			ec.Name, ec.N, ec.P50.Round(time.Microsecond), ec.P99.Round(time.Microsecond),
			ec.P999.Round(time.Microsecond), ec.Le16ms*100, ec.LeRTT*100)
	}
	if len(r.StageStats) > 0 {
		fmt.Fprintf(&b, "  pipeline stages (p50/p99/p99.9):")
		for _, ss := range r.StageStats {
			fmt.Fprintf(&b, " %s=%v/%v/%v", ss.Name,
				ss.P50.Round(time.Microsecond), ss.P99.Round(time.Microsecond),
				ss.P999.Round(time.Microsecond))
		}
		b.WriteByte('\n')
	}
	if r.Roams > 0 {
		fmt.Fprintf(&b, "  roaming: %d authentic address changes observed\n", r.Roams)
	}
	if r.Restarted {
		rs := Summarize(r.ResumeSamples)
		fmt.Fprintf(&b, "  restart: %d/%d sessions restored from the journal; resumption latency n=%d p50=%v p90=%v p99=%v max=%v\n",
			r.Restored, r.Sessions, rs.N,
			Percentile(r.ResumeSamples, 50), Percentile(r.ResumeSamples, 90),
			Percentile(r.ResumeSamples, 99), Percentile(r.ResumeSamples, 100))
	}
	if r.ChaosActive {
		fmt.Fprintf(&b, "  chaos: wire %d dropped / %d duped / %d corrupted / %d truncated; %d auth drops; %d journal flush failures (suspension seen: %v); nonce violations: %d\n",
			r.ChaosDropped, r.ChaosDuplicated, r.ChaosCorrupted, r.ChaosTruncated,
			r.AuthDrops, r.JournalFlushFailures, r.JournalSuspendedSeen, r.NonceViolations)
	}
	fmt.Fprintf(&b, "  sim: %v virtual in %v wall (%.1fx real time)",
		r.Elapsed.Round(time.Millisecond), r.Wall.Round(time.Millisecond),
		r.Elapsed.Seconds()/max(r.Wall.Seconds(), 1e-9))
	return b.String()
}
