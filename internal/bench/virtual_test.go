package bench

import (
	"os"
	"reflect"
	"strconv"
	"testing"
	"time"
)

// virtualSessions picks the session count for the virtual-time gates: a
// tier-1-friendly default, overridable to the full 10⁵-session regime via
// MANYSESSION_VIRTUAL_SESSIONS=100000 (the CI virtual-bench step does).
func virtualSessions(def int) int {
	if s := os.Getenv("MANYSESSION_VIRTUAL_SESSIONS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// TestManySessionVirtualTimeDeterministic is the capstone gate for the
// one-clock regime: the virtual-time many-session run must (a) simulate
// its span faster than real time — idle virtual time costs nearly no wall
// time once every sleep rides the injected clock — and (b) be bit-for-bit
// reproducible: two same-seed runs produce identical latency percentiles,
// identical server-side echo cohorts, and identical wire counters.
func TestManySessionVirtualTimeDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-thousand-session simulation")
	}
	opt := ManySessionOptions{
		Sessions: virtualSessions(2000),
		Seed:     7,
		Virtual:  true,
	}
	a := RunManySession(opt)
	b := RunManySession(opt)

	for name, r := range map[string]*ManySessionResult{"first": &a, "second": &b} {
		if r.Lost != 0 {
			t.Errorf("%s run lost %d keystrokes", name, r.Lost)
		}
		if r.Wall >= r.Elapsed {
			t.Errorf("%s run: %v wall >= %v virtual — the virtual-time bench must beat real time (%.2fx)",
				name, r.Wall.Round(time.Millisecond), r.Elapsed, r.Elapsed.Seconds()/r.Wall.Seconds())
		}
	}

	// Every BENCH-field percentile must be bit-identical across runs.
	for _, p := range []float64{50, 90, 99, 100} {
		if pa, pb := Percentile(a.Samples, p), Percentile(b.Samples, p); pa != pb {
			t.Errorf("keystroke latency p%g differs across identical runs: %v vs %v", p, pa, pb)
		}
	}
	if len(a.Samples) != len(b.Samples) {
		t.Errorf("sample counts differ: %d vs %d", len(a.Samples), len(b.Samples))
	}
	if !reflect.DeepEqual(a.EchoCohorts, b.EchoCohorts) {
		t.Errorf("server-side echo cohorts differ:\n%+v\n%+v", a.EchoCohorts, b.EchoCohorts)
	}
	if !reflect.DeepEqual(a.StageStats, b.StageStats) {
		t.Errorf("pipeline stage latencies differ across identical runs")
	}
	if a.ClientLe16ms != b.ClientLe16ms || a.ClientLeRTT != b.ClientLeRTT {
		t.Errorf("fig6 fractions differ: %v/%v vs %v/%v", a.ClientLe16ms, a.ClientLeRTT, b.ClientLe16ms, b.ClientLeRTT)
	}
	if a.PacketsIn != b.PacketsIn || a.PacketsOut != b.PacketsOut || a.Elapsed != b.Elapsed {
		t.Errorf("wire counters / virtual span differ: in %d/%d out %d/%d elapsed %v/%v",
			a.PacketsIn, b.PacketsIn, a.PacketsOut, b.PacketsOut, a.Elapsed, b.Elapsed)
	}
	t.Logf("\n%s", FormatManySession(a))
}

// BenchmarkManySessionVirtual feeds the per-commit perf artifact with the
// virtual-time regime's wall/virtual ratio. The CI virtual-bench step runs
// it at the full 10⁵ sessions; the default keeps `go test -bench .`
// affordable. A ratio at or above 1 (wall no faster than the simulated
// span) fails the benchmark outright.
func BenchmarkManySessionVirtual(b *testing.B) {
	sessions := virtualSessions(5000)
	for i := 0; i < b.N; i++ {
		res := RunManySession(ManySessionOptions{
			Sessions: sessions,
			Seed:     int64(i + 1),
			Virtual:  true,
		})
		if res.Lost != 0 {
			b.Fatalf("lost %d keystrokes", res.Lost)
		}
		wallOverVirtual := res.Wall.Seconds() / res.Elapsed.Seconds()
		if wallOverVirtual >= 1 {
			b.Fatalf("virtual-time bench ran slower than real time: %v wall for %v virtual",
				res.Wall.Round(time.Millisecond), res.Elapsed)
		}
		b.ReportMetric(wallOverVirtual, "wall_over_virtual")
		b.ReportMetric(res.Elapsed.Seconds()/res.Wall.Seconds(), "virtual_speedup_x")
		b.ReportMetric(float64(sessions), "sessions")
	}
}
