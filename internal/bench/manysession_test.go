package bench

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/sessiond"
)

// TestManySessionLoad1000 is the scaling demonstration from the roadmap:
// one sessiond daemon serving 1000 concurrent sessions on one socket in
// simulation, with the load generator's full report (aggregate throughput
// plus keystroke latency percentiles) printed to the test log.
func TestManySessionLoad1000(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-session simulation")
	}
	res := RunManySession(ManySessionOptions{
		Sessions:     1000,
		Keystrokes:   8,
		TypeInterval: 200 * time.Millisecond,
		Seed:         1,
	})
	t.Logf("\n%s", FormatManySession(res))
	if got := len(res.Samples); got != 1000*8 {
		t.Fatalf("delivered %d keystroke samples, want %d (lost=%d)", got, 1000*8, res.Lost)
	}
	if res.Lost != 0 {
		t.Fatalf("%d keystrokes never became visible on a loss-free link", res.Lost)
	}
	st := Summarize(res.Samples)
	// 2 ms link, 8 ms collection interval, millisecond host think time: the
	// median must sit in the low tens of milliseconds, far under one RTT of
	// slack; a scheduling or demux bug at this scale shows up as a blowout.
	if st.Median <= 0 || st.Median > 100*time.Millisecond {
		t.Fatalf("median keystroke latency = %v at 1000 sessions; demux or timer heap misbehaving", st.Median)
	}
	if res.PacketsIn == 0 || res.PacketsOut == 0 {
		t.Fatal("no aggregate traffic measured")
	}
	// The batched pipeline's acceptance threshold at scale: at 1000
	// sessions the daemon must spend at least 4x fewer read+write
	// syscalls per delivered packet than the one-per-datagram baseline
	// (which is exactly 1.0 by construction).
	if res.SyscallsPerPacket <= 0 || res.SyscallsPerPacket > 0.25 {
		t.Fatalf("batched pipeline spent %.3f syscalls/pkt at 1000 sessions, want <= 0.25 (>=4x fewer)",
			res.SyscallsPerPacket)
	}
	if res.ReadBatchP50 < 2 {
		t.Fatalf("median read batch = %d datagrams/syscall; batching is not engaging", res.ReadBatchP50)
	}
}

func TestManySessionLossRecovery(t *testing.T) {
	// A lossy link must not strand keystrokes: SSP retransmits until every
	// echo lands.
	res := RunManySession(ManySessionOptions{
		Sessions:     50,
		Keystrokes:   6,
		TypeInterval: 100 * time.Millisecond,
		Params:       netem.LinkParams{Delay: 5 * time.Millisecond, LossProb: 0.10, Overhead: 28},
		Seed:         3,
	})
	if res.Lost != 0 {
		t.Fatalf("%d keystrokes lost despite SSP retransmission", res.Lost)
	}
	if got := len(res.Samples); got != 50*6 {
		t.Fatalf("delivered %d samples, want %d", got, 50*6)
	}
}

// TestManySessionMixedCohorts runs the heterogeneous workload: shells
// (latency-measured), CJK/emoji editors (intern-table load), and log
// tails (deep client scrollback) sharing one daemon socket. The shell
// cohort's echoes must all land, and the pager cohort must actually have
// built deep scrollback on its clients.
func TestManySessionMixedCohorts(t *testing.T) {
	res := RunManySession(ManySessionOptions{
		Sessions:     60,
		Keystrokes:   10,
		TypeInterval: 150 * time.Millisecond,
		Seed:         7,
		Mixed:        true,
	})
	if res.Shells != 20 || res.Editors != 20 || res.Pagers != 20 {
		t.Fatalf("cohorts = %d/%d/%d, want 20/20/20", res.Shells, res.Editors, res.Pagers)
	}
	if got := len(res.Samples); got != res.Shells*10 {
		t.Fatalf("delivered %d shell samples, want %d (lost=%d)", got, res.Shells*10, res.Lost)
	}
	if res.Lost != 0 {
		t.Fatalf("%d shell keystrokes never became visible on a loss-free link", res.Lost)
	}
	if res.PacketsOut == 0 {
		t.Fatal("no aggregate traffic measured")
	}
	// The pager cohort must have actually built deep client-side history:
	// 10 keystrokes × 3-5 log lines each on a 24-high screen scrolls well
	// past a screenful on every pager client.
	if res.PagerScrollbackMin <= 24 {
		t.Fatalf("pager cohort min scrollback = %d lines, want > one screen", res.PagerScrollbackMin)
	}
	t.Logf("\n%s", FormatManySession(res))
}

// TestManySessionRestartRoamLoss is the load generator's torture mode:
// mixed cohorts on per-cohort lossy links, the daemon killed and restored
// from its journal mid-run, and a third of the clients roaming afterwards.
// Every session must resume (resumption latency measured per session),
// every shell keystroke must eventually echo, and roaming must actually
// have been observed by the restored daemon.
func TestManySessionRestartRoamLoss(t *testing.T) {
	res := RunManySession(ManySessionOptions{
		Sessions:     45,
		Keystrokes:   12,
		TypeInterval: 150 * time.Millisecond,
		Seed:         11,
		Mixed:        true,
		Restart:      true,
		Roam:         true,
		LossyCohorts: true,
	})
	t.Logf("\n%s", FormatManySession(res))
	if !res.Restarted {
		t.Fatal("restart scenario did not run")
	}
	if res.Restored != int64(res.Sessions) {
		t.Fatalf("restored %d/%d sessions from the journal", res.Restored, res.Sessions)
	}
	// Every session must have accepted a post-restart state (the resume
	// repaint or a newer frame) — a stranded client shows up here.
	if got := len(res.ResumeSamples); got != res.Sessions {
		t.Fatalf("resumption latency samples = %d, want %d (stranded clients)", got, res.Sessions)
	}
	if res.Lost != 0 {
		t.Fatalf("%d shell keystrokes never became visible across the restart", res.Lost)
	}
	if got := len(res.Samples); got != res.Shells*12 {
		t.Fatalf("delivered %d shell samples, want %d", got, res.Shells*12)
	}
	if res.Roams == 0 {
		t.Fatal("no roaming events observed by the daemon")
	}
	rs := Summarize(res.ResumeSamples)
	// Resumption is bounded by the heartbeat/retransmission machinery, not
	// by operator action: the whole fleet must be back within seconds.
	if rs.N > 0 && Percentile(res.ResumeSamples, 99) > 10*time.Second {
		t.Fatalf("p99 resumption latency %v is not operational", Percentile(res.ResumeSamples, 99))
	}
}

// TestManySessionTelemetryDeterministic is the acceptance gate for the
// server-side telemetry spine: a ≥300-session run produces non-trivial
// keystroke→echo percentiles and per-stage latencies, and rerunning the
// identical options reproduces every telemetry number bit-for-bit. The
// probes read the same virtual clock as the pipeline, so instrumentation
// cannot perturb (or be perturbed by) scheduling.
func TestManySessionTelemetryDeterministic(t *testing.T) {
	opt := ManySessionOptions{
		Sessions:     300,
		Keystrokes:   6,
		TypeInterval: 150 * time.Millisecond,
		Seed:         5,
		Mixed:        true,
	}
	a := RunManySession(opt)
	b := RunManySession(opt)

	if len(a.EchoCohorts) == 0 {
		t.Fatal("no server-side echo cohorts measured")
	}
	for _, ec := range a.EchoCohorts {
		if ec.N == 0 || ec.P50 <= 0 || ec.P99 < ec.P50 {
			t.Fatalf("degenerate echo percentiles for cohort %s: %+v", ec.Name, ec)
		}
	}
	if len(a.StageStats) == 0 {
		t.Fatal("no pipeline stage latencies measured")
	}
	if !reflect.DeepEqual(a.EchoCohorts, b.EchoCohorts) {
		t.Fatalf("echo percentiles differ across identical runs:\n%+v\n%+v", a.EchoCohorts, b.EchoCohorts)
	}
	if !reflect.DeepEqual(a.StageStats, b.StageStats) {
		t.Fatalf("stage latencies differ across identical runs:\n%+v\n%+v", a.StageStats, b.StageStats)
	}
	if a.ClientLe16ms != b.ClientLe16ms || a.ClientLeRTT != b.ClientLeRTT {
		t.Fatalf("client-visible Fig. 6 fractions differ: %v/%v vs %v/%v",
			a.ClientLe16ms, a.ClientLeRTT, b.ClientLe16ms, b.ClientLeRTT)
	}
	t.Logf("\n%s", FormatManySession(a))
}

// reportEchoMetrics pushes the server-side echo percentiles into the
// per-commit benchmark artifact (BENCH_<sha>.json via benchjson): shell-
// cohort p50/p99 in milliseconds plus the Fig. 6 "% within 16 ms"
// fraction, alongside the wire-packet throughput metric.
func reportEchoMetrics(b *testing.B, res ManySessionResult) {
	b.ReportMetric(float64(res.PacketsIn+res.PacketsOut), "wirepkts/op")
	b.ReportMetric(res.SyscallsPerPacket, "syscalls_per_pkt")
	b.ReportMetric(res.StackTraversalsPerPacket, "stack_traversals_per_pkt")
	for _, ec := range res.EchoCohorts {
		if ec.Name != "shell" {
			continue
		}
		b.ReportMetric(float64(ec.P50)/float64(time.Millisecond), "echo_p50_ms")
		b.ReportMetric(float64(ec.P99)/float64(time.Millisecond), "echo_p99_ms")
		b.ReportMetric(ec.Le16ms*100, "echo_le16ms_pct")
	}
}

// BenchmarkManySessionMixed feeds the per-commit perf artifact with the
// heterogeneous cohort run (unicode + deep-scrollback screen-state load).
func BenchmarkManySessionMixed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := RunManySession(ManySessionOptions{
			Sessions:     63,
			Keystrokes:   5,
			TypeInterval: 100 * time.Millisecond,
			Seed:         int64(i + 1),
			Mixed:        true,
		})
		if res.Lost != 0 {
			b.Fatalf("lost %d keystrokes", res.Lost)
		}
		reportEchoMetrics(b, res)
	}
}

// BenchmarkManySession feeds the per-commit perf artifact: virtual-time
// cost of a 64-session daemon serving a short typing burst.
func BenchmarkManySession(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := RunManySession(ManySessionOptions{
			Sessions:     64,
			Keystrokes:   5,
			TypeInterval: 100 * time.Millisecond,
			Seed:         int64(i + 1),
		})
		if res.Lost != 0 {
			b.Fatalf("lost %d keystrokes", res.Lost)
		}
		reportEchoMetrics(b, res)
	}
}

// TestManySessionGSOTrains1000 is the segmentation-offload acceptance gate
// at scale: 1000 sessions viewing one shared bulk stream type in lockstep,
// so every reply leaves the daemon as a same-peer train of MTU-sized
// fragments and same-instant sweeps carry hundreds of sessions' trains.
// The gso model must spend at least 3x fewer write syscalls than the mmsg
// baseline on identical traffic (the sweep is GSOBatch wide because run
// coalescing bounds per-call msghdr count), cut egress stack traversals
// at least 2x (one per train instead of one per datagram), and deliver
// byte-identical per-session frame streams.
func TestManySessionGSOTrains1000(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-session simulation")
	}
	opt := ManySessionOptions{
		Sessions:      1000,
		Keystrokes:    2,
		TypeInterval:  200 * time.Millisecond,
		Seed:          17,
		Trains:        true,
		CaptureFrames: true,
	}
	base := RunManySession(opt) // mmsg geometry
	gsoOpt := opt
	gsoOpt.IOModel = sessiond.IOModelGSO
	gso := RunManySession(gsoOpt)
	t.Logf("\n%s", FormatManySession(base))
	t.Logf("\n%s", FormatManySession(gso))

	// Same traffic: the model changes accounting geometry, never packets.
	if base.PacketsOut == 0 || base.PacketsIn != gso.PacketsIn || base.PacketsOut != gso.PacketsOut {
		t.Fatalf("wire traffic differs: mmsg %d/%d vs gso %d/%d pkts",
			base.PacketsIn, base.PacketsOut, gso.PacketsIn, gso.PacketsOut)
	}
	if len(base.FrameHashes) != opt.Sessions || len(gso.FrameHashes) != opt.Sessions {
		t.Fatalf("frame capture incomplete: %d vs %d hashes", len(base.FrameHashes), len(gso.FrameHashes))
	}
	for i := range base.FrameHashes {
		if base.FrameHashes[i] != gso.FrameHashes[i] {
			t.Fatalf("session %d: frame-stream hash differs (mmsg %x vs gso %x)",
				i+1, base.FrameHashes[i], gso.FrameHashes[i])
		}
	}
	// The tentpole gate: >=3x fewer write syscalls on the trains workload.
	if gso.WriteCalls*3 > base.WriteCalls {
		t.Fatalf("gso spent %d write syscalls vs mmsg's %d, want >=3x fewer",
			gso.WriteCalls, base.WriteCalls)
	}
	// The mmsg baseline pays the stack once per datagram by construction;
	// coalescing must cut egress traversals at least in half.
	if base.StackOut != base.PacketsOut {
		t.Fatalf("mmsg egress traversals = %d for %d pkts, want exactly 1/pkt", base.StackOut, base.PacketsOut)
	}
	if gso.StackOut*2 > base.StackOut {
		t.Fatalf("gso egress traversals = %d vs mmsg's %d, want >=2x fewer", gso.StackOut, base.StackOut)
	}
	if gso.StackTraversalsPerPacket >= base.StackTraversalsPerPacket {
		t.Fatalf("gso traversals/pkt = %.3f not below mmsg's %.3f",
			gso.StackTraversalsPerPacket, base.StackTraversalsPerPacket)
	}
}

// BenchmarkManySessionGSOTrains feeds the per-commit perf artifact with
// the segmentation-offload trains run, reporting stack traversals per
// packet alongside the echo metrics.
func BenchmarkManySessionGSOTrains(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := RunManySession(ManySessionOptions{
			Sessions:     128,
			Keystrokes:   3,
			TypeInterval: 150 * time.Millisecond,
			Seed:         int64(i + 1),
			Trains:       true,
			IOModel:      sessiond.IOModelGSO,
		})
		if res.PacketsOut == 0 {
			b.Fatal("no traffic")
		}
		reportEchoMetrics(b, res)
	}
}
