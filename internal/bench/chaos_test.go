package bench

import (
	"bytes"
	"testing"
	"time"
)

// TestChaosTorture is the capstone fault-injection run: ~200 mixed-cohort
// sessions in virtual time under a seeded hostile-world schedule — wire
// drop/dup/corrupt/truncate in both directions, cohort link loss, a
// fault-injecting disk under the journal (driving retry, backoff, and
// suspension), a mid-run daemon kill + journal restore, and a roam wave —
// and the survivable-failure contract that must hold through all of it:
//
//  1. Every session converges to a final screen BYTE-IDENTICAL to an
//     undisturbed baseline run with the same seed.
//  2. The daemon never reuses a nonce: every sealed (session, sequence)
//     pair is unique across both daemon incarnations.
//  3. Every keystroke's echo becomes visible (nothing is silently lost).
//  4. Retries stay backoff-bounded: a flush-failure count anywhere near
//     one-per-tick would mean the backoff gate is not holding.
//
// Everything is deterministic from the seeds; on failure the schedule is
// reproducible from the logged chaos seed.
func TestChaosTorture(t *testing.T) {
	base := ManySessionOptions{
		Sessions:      200,
		Keystrokes:    20,
		TypeInterval:  150 * time.Millisecond,
		Seed:          77,
		Mixed:         true,
		CaptureFrames: true,
	}
	clean := RunManySession(base)

	chaos := base
	chaos.Chaos = true
	chaos.ChaosSeed = 1077
	chaos.Restart = true
	chaos.Roam = true
	chaos.LossyCohorts = true
	got := RunManySession(chaos)
	t.Logf("chaos seed %d\n%s", chaos.ChaosSeed, FormatManySession(got))

	// The schedule must have actually been hostile — a chaos run that
	// injected nothing proves nothing.
	if got.ChaosDropped == 0 || got.ChaosDuplicated == 0 ||
		got.ChaosCorrupted == 0 || got.ChaosTruncated == 0 {
		t.Fatalf("chaos schedule injected nothing: dropped=%d duped=%d corrupted=%d truncated=%d",
			got.ChaosDropped, got.ChaosDuplicated, got.ChaosCorrupted, got.ChaosTruncated)
	}
	if got.AuthDrops == 0 {
		t.Fatal("corrupted datagrams produced no auth drops — injection not reaching the daemon")
	}
	if got.JournalFlushFailures == 0 {
		t.Fatal("disk fault windows produced no journal flush failures")
	}
	if !got.JournalSuspendedSeen {
		t.Fatal("sustained disk failure never drove the journal into suspension")
	}

	// Contract 2: zero nonce reuse, across the restart included.
	if got.NonceViolations != 0 {
		t.Fatalf("%d nonce violations — the daemon resealed a (session, sequence) pair", got.NonceViolations)
	}

	// The restore side of the torture: the mid-chaos kill must come back
	// with every session.
	if !got.Restarted || got.Restored != int64(got.Sessions) {
		t.Fatalf("restart restored %d/%d sessions", got.Restored, got.Sessions)
	}

	// Contract 3: every keystroke's echo eventually became visible.
	if got.Lost != 0 {
		t.Fatalf("%d keystrokes never became visible through the chaos", got.Lost)
	}

	// Contract 4: flush attempts stay backoff-bounded. The fault windows
	// total a few seconds; with a 40ms→400ms doubling backoff that is a
	// few dozen attempts at the very most, where an unbounded loop would
	// be thousands.
	if got.JournalFlushFailures > 200 {
		t.Fatalf("%d journal flush failures — retry loop is not backoff-bounded", got.JournalFlushFailures)
	}

	// Contract 1: byte-identical final screens against the undisturbed
	// baseline. The intermediate frame STREAMS legitimately differ (loss
	// reshapes which states each client sees), but the converged screens
	// may not differ by a single byte.
	if len(got.FinalFrames) != len(clean.FinalFrames) {
		t.Fatalf("frame capture mismatch: %d vs %d sessions", len(got.FinalFrames), len(clean.FinalFrames))
	}
	diverged := 0
	for i := range got.FinalFrames {
		if !bytes.Equal(got.FinalFrames[i], clean.FinalFrames[i]) {
			diverged++
			if diverged <= 3 {
				t.Errorf("session %d: final screen diverged from the undisturbed baseline", i+1)
			}
		}
	}
	if diverged > 0 {
		t.Fatalf("%d/%d sessions diverged from the baseline (chaos seed %d)",
			diverged, len(got.FinalFrames), chaos.ChaosSeed)
	}
}
