package bench

import (
	"bytes"
	"time"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/overlay"
	"repro/internal/simclock"
	"repro/internal/sspcrypto"
	"repro/internal/trace"
	"repro/internal/transport"
)

var benchEpoch = time.Date(2012, 4, 1, 0, 0, 0, 0, time.UTC)

// MoshOptions configures the Mosh arm of an experiment.
type MoshOptions struct {
	// Predictions selects the speculative-echo policy (Never for the
	// loss experiment, Adaptive elsewhere).
	Predictions overlay.DisplayPreference
	// Timing overrides transport timing (Figure 3 and ablations).
	Timing *transport.Timing
	// MinRTO/MaxRTO override the datagram layer's RTO bounds (ablation;
	// the paper argues for a 50 ms floor against TCP's 1 s).
	MinRTO, MaxRTO time.Duration
	// EchoAckTimeout overrides the 50 ms server echo timeout (ablation).
	EchoAckTimeout time.Duration
	// BulkDownload shares the downlink with a saturating TCP flow
	// (the LTE bufferbloat experiment).
	BulkDownload bool
	// Warmup idles the session before the trace starts so RTT estimates
	// settle (default 3 s).
	Warmup time.Duration
	// Diagnose, when set, receives a line per misprediction (workload
	// calibration aid).
	Diagnose func(format string, args ...any)
}

// MoshResult carries samples plus engine-level statistics.
type MoshResult struct {
	Samples []Sample
	Overlay overlay.Stats
	// Mispredicted counts keystrokes whose displayed prediction proved
	// wrong (the paper reports 0.9%).
	Mispredicted int
	// WirePackets counts datagrams the session put on the wire.
	WirePackets int
}

type keyInfo struct {
	step        int
	seq         uint64
	at          time.Time
	kind        trace.Kind
	hasResponse bool
	// visibility via the server path
	stateNum  uint64 // first server state containing the response
	sent      bool
	visibleAt time.Time
	visible   bool
}

// RunMoshTrace replays one trace through a full Mosh session over the
// given path parameters, returning per-keystroke response samples.
func RunMoshTrace(tr *trace.Trace, params netem.LinkParams, seed int64, opt MoshOptions) MoshResult {
	if opt.Warmup == 0 {
		opt.Warmup = 3 * time.Second
	}
	sched := simclock.NewScheduler(benchEpoch)
	nw := netem.NewNetwork(sched)
	path := netem.NewPath(nw, params, seed)
	clientAddr := netem.Addr{Host: 1, Port: 1001}
	serverAddr := netem.Addr{Host: 2, Port: 60001}
	key := sspcrypto.Key{byte(seed), 0x5e}

	keys := make([]*keyInfo, len(tr.Steps))
	wire := 0

	// The server-side replay process: wait for each step's expected
	// input, then write its prerecorded response (paper §4).
	var server *core.Server
	var wakeServer func()
	expected := make([]byte, 0, 1024)
	for _, st := range tr.Steps {
		expected = append(expected, st.Data...)
	}
	matched := 0 // bytes of expected input seen so far
	stepEnd := make([]int, len(tr.Steps))
	{
		off := 0
		for i, st := range tr.Steps {
			off += len(st.Data)
			stepEnd[i] = off
		}
	}
	nextStep := 0
	pendingSend := []int{} // steps whose response was written, awaiting a send
	// Host responses are serialized: even when several keystrokes arrive
	// in one instruction, the application replies in input order.
	var lastRespAt time.Time

	var err error
	server, err = core.NewServer(core.ServerConfig{
		Key: key, Clock: sched,
		Width: tr.Width, Height: tr.Height,
		Timing: opt.Timing, MinRTO: opt.MinRTO, MaxRTO: opt.MaxRTO, EchoAckTimeout: opt.EchoAckTimeout,
		Emit: func(w []byte) {
			wire++
			// Any data send after a response write carries it: record
			// the state number for visibility tracking.
			if len(pendingSend) > 0 {
				num := server.Transport().Sender().LastSentNum()
				for _, si := range pendingSend {
					keys[si].stateNum = num
					keys[si].sent = true
				}
				pendingSend = pendingSend[:0]
			}
			if dst, ok := server.Transport().Connection().RemoteAddr(); ok {
				path.Down.Send(netem.Packet{Src: serverAddr, Dst: dst, Payload: w})
			}
		},
		HostInput: func(data []byte) {
			// Verify the input matches the trace, then fire responses
			// for every completed step.
			if matched+len(data) <= len(expected) && bytes.Equal(data, expected[matched:matched+len(data)]) {
				matched += len(data)
			} else {
				matched += len(data) // tolerate divergence; keep counting
			}
			for nextStep < len(tr.Steps) && stepEnd[nextStep] <= matched {
				si := nextStep
				nextStep++
				st := tr.Steps[si]
				if len(st.Response) == 0 {
					continue
				}
				at := sched.Now().Add(st.ResponseDelay)
				if at.Before(lastRespAt) {
					at = lastRespAt
				}
				lastRespAt = at
				sched.At(at, func() {
					server.HostOutput(st.Response)
					pendingSend = append(pendingSend, si)
					wakeServer()
				})
			}
		},
	})
	if err != nil {
		panic(err)
	}

	var client *core.Client
	client, err = core.NewClient(core.ClientConfig{
		Key: key, Clock: sched,
		Width: tr.Width, Height: tr.Height,
		Timing: opt.Timing, MinRTO: opt.MinRTO, MaxRTO: opt.MaxRTO,
		Predictions: opt.Predictions,
		Emit: func(w []byte) {
			wire++
			path.Up.Send(netem.Packet{Src: clientAddr, Dst: serverAddr, Payload: w})
		},
	})
	if err != nil {
		panic(err)
	}

	client.Predictions().Diagnose = opt.Diagnose

	wakeClient := core.Pump(sched, client)
	wakeServer = core.Pump(sched, server)
	// Receiving can establish new deadlines (delayed acks, echo acks), so
	// the pump timers are re-armed after every arrival.
	nw.Attach(serverAddr, func(p netem.Packet) {
		server.Receive(p.Payload, p.Src)
		wakeServer()
	})
	nw.Attach(clientAddr, func(p netem.Packet) {
		client.Receive(p.Payload, p.Src)
		wakeClient()
		// A new remote state may make pending responses visible.
		m := client.Transport().RemoteStateNum()
		now := sched.Now()
		for _, ki := range keys {
			if ki != nil && ki.sent && !ki.visible && ki.stateNum <= m {
				ki.visible = true
				ki.visibleAt = now
			}
		}
	})

	if opt.BulkDownload {
		startBulk(sched, nw, path)
		// The paper measures with the download already in progress: give
		// the bulk flow time to stand the bottleneck queue up.
		if opt.Warmup < 30*time.Second {
			opt.Warmup = 30 * time.Second
		}
	}

	// Let RTT estimates settle, then write the startup output.
	sched.RunFor(opt.Warmup)
	if len(tr.Startup) > 0 {
		server.HostOutput(tr.Startup)
		wakeServer()
	}
	start := sched.Now()

	// Schedule the user side of the replay.
	for i, st := range tr.Steps {
		i, st := i, st
		sched.At(start.Add(st.At), func() {
			seq := client.UserBytes(st.Data)
			keys[i] = &keyInfo{
				step: i, seq: seq, at: sched.Now(), kind: st.Kind,
				hasResponse: len(st.Response) > 0,
			}
			wakeClient()
		})
	}

	sched.RunUntil(start.Add(tr.Duration() + 30*time.Second))

	// Collect samples.
	res := MoshResult{Overlay: client.Predictions().Stats(), WirePackets: wire}
	for _, ki := range keys {
		if ki == nil {
			continue
		}
		rec, hasRec := client.Predictions().TakeInputRecord(ki.seq)
		var lat time.Duration
		have := false
		predicted := false
		if hasRec && rec.Displayed && rec.Outcome == overlay.OutcomeCorrect {
			lat = rec.DisplayedAt.Sub(ki.at)
			have = true
			predicted = true
		}
		// The paper's 0.9% counts *displayed* erroneous predictions (ones
		// the user saw get repaired); background speculation that was
		// disproven before display doesn't qualify.
		if hasRec && rec.Displayed && rec.Outcome == overlay.OutcomeIncorrect {
			res.Mispredicted++
		}
		if ki.visible {
			sl := ki.visibleAt.Sub(ki.at)
			if !have || sl < lat {
				lat = sl
				predicted = false
			}
			have = true
		}
		if !ki.hasResponse && !predicted {
			continue // no observable response (e.g. password typing)
		}
		if !have {
			continue // response never made it (shouldn't happen; excluded)
		}
		if lat < 0 {
			lat = 0
		}
		res.Samples = append(res.Samples, Sample{Kind: ki.kind, Latency: lat, Predicted: predicted})
	}
	return res
}
