package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/simclock"
	"repro/internal/sspcrypto"
	"repro/internal/transport"
)

// FloodResult reports how a Mosh session behaved while the host flooded
// the terminal with output (the runaway-process scenario of §1/§2.3).
type FloodResult struct {
	// Frames is the number of screen-state instructions the server sent.
	Frames int
	// WirePackets counts all server datagrams.
	WirePackets int
	// Converged reports whether the client's screen matched the server's
	// at the end.
	Converged bool
}

// RunFlood floods the server terminal with output for the given duration
// over a fast path and reports how much traffic SSP generated. With the
// paper's 50 Hz frame cap the traffic stays bounded no matter how fast
// the host writes; the ablation removes the cap.
func RunFlood(d time.Duration, timing *transport.Timing, seed int64) FloodResult {
	sched := simclock.NewScheduler(benchEpoch)
	nw := netem.NewNetwork(sched)
	path := netem.NewPath(nw, netem.LinkParams{Delay: 2 * time.Millisecond}, seed)
	clientAddr := netem.Addr{Host: 1, Port: 1001}
	serverAddr := netem.Addr{Host: 2, Port: 60001}
	key := sspcrypto.Key{byte(seed), 0x0f}

	var server *core.Server
	var client *core.Client
	packets := 0
	server, _ = core.NewServer(core.ServerConfig{
		Key: key, Clock: sched, Timing: timing,
		Emit: func(w []byte) {
			packets++
			if dst, ok := server.Transport().Connection().RemoteAddr(); ok {
				path.Down.Send(netem.Packet{Src: serverAddr, Dst: dst, Payload: w})
			}
		},
	})
	client, _ = core.NewClient(core.ClientConfig{
		Key: key, Clock: sched, Timing: timing,
		Emit: func(w []byte) {
			path.Up.Send(netem.Packet{Src: clientAddr, Dst: serverAddr, Payload: w})
		},
	})
	wakeClient := core.Pump(sched, client)
	wakeServer := core.Pump(sched, server)
	nw.Attach(serverAddr, func(p netem.Packet) { server.Receive(p.Payload, p.Src); wakeServer() })
	nw.Attach(clientAddr, func(p netem.Packet) { client.Receive(p.Payload, p.Src); wakeClient() })
	sched.RunFor(time.Second)

	stop := sched.Now().Add(d)
	counter := 0
	var flood func()
	flood = func() {
		if sched.Now().After(stop) {
			return
		}
		var b strings.Builder
		for i := 0; i < 5; i++ {
			counter++
			fmt.Fprintf(&b, "runaway process output line %08d!\r\n", counter)
		}
		server.HostOutput([]byte(b.String()))
		wakeServer()
		sched.AfterFunc(2*time.Millisecond, flood)
	}
	sched.AfterFunc(0, flood)
	sched.RunFor(d + 5*time.Second)

	return FloodResult{
		Frames:      server.Transport().Sender().Stats().Instructions,
		WirePackets: packets,
		Converged:   client.ServerState().Equal(server.Terminal().Framebuffer()),
	}
}
