package bench

import (
	"time"

	"repro/internal/netem"
	"repro/internal/simclock"
	"repro/internal/sshsim"
	"repro/internal/trace"
)

// SSHOptions configures the SSH arm of an experiment.
type SSHOptions struct {
	// MinRTO overrides TCP's 1 s retransmission-timeout floor (ablation;
	// 0 = standard TCP).
	MinRTO time.Duration
	// BulkDownload shares the downlink with a saturating TCP flow.
	BulkDownload bool
}

// startBulk launches the saturating download plus its ack flow, sharing
// the experiment path's bottleneck queues.
func startBulk(sched *simclock.Scheduler, nw *netem.Network, path *netem.Path) {
	sshsim.BulkFlow(sched, nw, path,
		netem.Addr{Host: 2, Port: 80}, netem.Addr{Host: 1, Port: 8080})
}

// RunSSHTrace replays one trace through the SSH baseline over the given
// path parameters. Latency for keystroke k is the time until the host's
// prerecorded response to k has been fully delivered (and therefore
// rendered) at the client — SSH renders output the moment it arrives.
func RunSSHTrace(tr *trace.Trace, params netem.LinkParams, seed int64, opt SSHOptions) []Sample {
	sched := simclock.NewScheduler(benchEpoch)
	nw := netem.NewNetwork(sched)
	path := netem.NewPath(nw, params, seed)

	ss := sshsim.New(sshsim.Config{
		Sched: sched, Net: nw, Path: path,
		ClientAddr: netem.Addr{Host: 1, Port: 1002},
		ServerAddr: netem.Addr{Host: 2, Port: 22},
		MinRTO:     opt.MinRTO,
	})
	if opt.BulkDownload {
		startBulk(sched, nw, path)
		sched.RunFor(30 * time.Second) // download in progress before measuring
	}

	// Server-side replay process.
	expected := make([]byte, 0, 1024)
	stepEnd := make([]int, len(tr.Steps))
	for i, st := range tr.Steps {
		expected = append(expected, st.Data...)
		stepEnd[i] = len(expected)
	}
	matched := 0
	nextStep := 0

	type pending struct {
		step   int
		offset int64 // stream offset at which the response completes
	}
	var awaiting []pending
	keyAt := make([]time.Time, len(tr.Steps))
	visibleAt := make([]time.Time, len(tr.Steps))
	visible := make([]bool, len(tr.Steps))

	var lastRespAt time.Time
	ss.OnServerInput = func(data []byte) {
		matched += len(data)
		for nextStep < len(tr.Steps) && stepEnd[nextStep] <= matched {
			si := nextStep
			nextStep++
			st := tr.Steps[si]
			if len(st.Response) == 0 {
				continue
			}
			at := sched.Now().Add(st.ResponseDelay)
			if at.Before(lastRespAt) {
				at = lastRespAt
			}
			lastRespAt = at
			sched.At(at, func() {
				off := ss.HostOutput(st.Response)
				awaiting = append(awaiting, pending{step: si, offset: off})
			})
		}
	}
	ss.OnClientOutput = func([]byte) {
		now := sched.Now()
		seen := ss.DeliveredAtClient()
		keep := awaiting[:0]
		for _, p := range awaiting {
			if p.offset <= seen {
				visible[p.step] = true
				visibleAt[p.step] = now
			} else {
				keep = append(keep, p)
			}
		}
		awaiting = keep
	}

	// Warm the connection, print startup output.
	sched.RunFor(time.Second)
	if len(tr.Startup) > 0 {
		ss.HostOutput(tr.Startup)
	}
	sched.RunFor(2 * time.Second)
	start := sched.Now()

	for i, st := range tr.Steps {
		i, st := i, st
		sched.At(start.Add(st.At), func() {
			keyAt[i] = sched.Now()
			ss.Type(st.Data)
		})
	}

	sched.RunUntil(start.Add(tr.Duration() + 120*time.Second))

	var samples []Sample
	for i, st := range tr.Steps {
		if len(st.Response) == 0 || !visible[i] {
			continue
		}
		lat := visibleAt[i].Sub(keyAt[i])
		if lat < 0 {
			lat = 0
		}
		samples = append(samples, Sample{Kind: st.Kind, Latency: lat})
	}
	return samples
}
