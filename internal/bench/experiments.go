package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/netem"
	"repro/internal/overlay"
	"repro/internal/trace"
)

// Config sizes an experiment run. The full paper-scale workload is six
// users at ~1664 keystrokes each; tests use smaller values.
type Config struct {
	// KeystrokesPerUser sizes each of the six traces (0 = paper scale).
	KeystrokesPerUser int
	// Seed makes the whole experiment reproducible.
	Seed int64
}

func (c Config) traces() []*trace.Trace {
	n := c.KeystrokesPerUser
	if n == 0 {
		n = 1664
	}
	profiles := trace.SixProfiles()
	traces := make([]*trace.Trace, len(profiles))
	for i, p := range profiles {
		traces[i] = trace.Generate(c.Seed+int64(i)*1000+1, p, n)
	}
	return traces
}

// ArmResult is one arm (Mosh or SSH) of a comparison.
type ArmResult struct {
	Name    string
	Stats   Stats
	Samples []Sample
}

// Comparison is a two-arm experiment result.
type Comparison struct {
	Title string
	SSH   ArmResult
	Mosh  ArmResult
	// Mispredicted is the fraction of Mosh keystrokes whose displayed
	// prediction proved wrong (paper: 0.9% on EV-DO).
	Mispredicted float64
}

// runComparison replays all traces through both arms on the same path.
func runComparison(title string, cfg Config, params netem.LinkParams,
	moshOpt MoshOptions, sshOpt SSHOptions) Comparison {
	traces := cfg.traces()
	var moshSamples, sshSamples []Sample
	mispred, inputs := 0, 0
	for i, tr := range traces {
		mr := RunMoshTrace(tr, params, cfg.Seed+int64(i)*7+1, moshOpt)
		moshSamples = append(moshSamples, mr.Samples...)
		mispred += mr.Mispredicted
		inputs += len(tr.Steps)
		sshSamples = append(sshSamples, RunSSHTrace(tr, params, cfg.Seed+int64(i)*7+1, sshOpt)...)
	}
	c := Comparison{
		Title: title,
		SSH:   ArmResult{Name: "SSH", Stats: Summarize(sshSamples), Samples: sshSamples},
		Mosh:  ArmResult{Name: "Mosh", Stats: Summarize(moshSamples), Samples: moshSamples},
	}
	if inputs > 0 {
		c.Mispredicted = float64(mispred) / float64(inputs)
	}
	return c
}

// Figure2 regenerates the headline experiment: keystroke response-time
// distribution for Mosh vs SSH over the Sprint EV-DO (3G) model.
func Figure2(cfg Config) Comparison {
	return runComparison("Figure 2: keystroke response time, Sprint EV-DO (3G)",
		cfg, netem.EVDO(),
		MoshOptions{Predictions: overlay.Adaptive}, SSHOptions{})
}

// TableLTE regenerates the Verizon LTE experiment: one concurrent TCP
// download fills the bottleneck buffer.
func TableLTE(cfg Config) Comparison {
	return runComparison("Verizon LTE with one concurrent TCP download",
		cfg, netem.LTE(),
		MoshOptions{Predictions: overlay.Adaptive, BulkDownload: true},
		SSHOptions{BulkDownload: true})
}

// TableSingapore regenerates the MIT→Singapore wired-path experiment.
func TableSingapore(cfg Config) Comparison {
	return runComparison("MIT–Singapore Internet path (Amazon EC2)",
		cfg, netem.Transoceanic(),
		MoshOptions{Predictions: overlay.Adaptive}, SSHOptions{})
}

// TableLoss regenerates the packet-loss experiment: 100 ms RTT, 29% i.i.d.
// loss each direction, Mosh predictions disabled to isolate SSP.
func TableLoss(cfg Config) Comparison {
	return runComparison("netem router: 100 ms RTT, 29% loss each way (predictions off)",
		cfg, netem.LossyNetem(),
		MoshOptions{Predictions: overlay.Never}, SSHOptions{})
}

// Figure3 regenerates the collection-interval sweep.
func Figure3(cfg Config) []SweepPoint {
	return CollectionSweep(cfg.traces(), Figure3Intervals())
}

// FormatComparison renders a comparison as a paper-style table.
func FormatComparison(c Comparison) string {
	var b strings.Builder
	b.WriteString(TableHeader(c.Title))
	b.WriteString("\n")
	b.WriteString(TableRow(c.SSH.Name, c.SSH.Stats))
	b.WriteString("\n")
	b.WriteString(TableRow(c.Mosh.Name, c.Mosh.Stats))
	b.WriteString("\n")
	if c.Mispredicted > 0 {
		fmt.Fprintf(&b, "mosh mispredictions repaired: %.1f%% of keystrokes\n", c.Mispredicted*100)
	}
	return b.String()
}

// FormatCDF renders Figure 2's cumulative distributions as text.
func FormatCDF(c Comparison) string {
	thresholds := []time.Duration{
		time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond,
		25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond,
		200 * time.Millisecond, 300 * time.Millisecond, 400 * time.Millisecond,
		500 * time.Millisecond, 700 * time.Millisecond, time.Second,
		2 * time.Second, 5 * time.Second,
	}
	mosh := CDF(c.Mosh.Samples, thresholds)
	ssh := CDF(c.SSH.Samples, thresholds)
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %8s\n", "latency <=", "Mosh", "SSH")
	for i, th := range thresholds {
		fmt.Fprintf(&b, "%-12s %7.1f%% %7.1f%%\n", th, mosh[i]*100, ssh[i]*100)
	}
	return b.String()
}

// FormatSweep renders Figure 3 as text.
func FormatSweep(pts []SweepPoint) string {
	var b strings.Builder
	b.WriteString("Figure 3: mean protocol-induced delay vs collection interval (frame interval 250 ms)\n")
	fmt.Fprintf(&b, "%-14s %12s %8s\n", "interval", "mean delay", "writes")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-14s %12s %8d\n", p.Interval, p.MeanDelay.Round(100*time.Microsecond), p.Writes)
	}
	return b.String()
}

// BestInterval returns the sweep's minimum-delay collection interval.
func BestInterval(pts []SweepPoint) time.Duration {
	if len(pts) == 0 {
		return 0
	}
	best := pts[0]
	for _, p := range pts[1:] {
		if p.MeanDelay < best.MeanDelay {
			best = p
		}
	}
	return best.Interval
}
