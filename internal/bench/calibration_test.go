package bench

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/overlay"
	"repro/internal/simclock"
	"repro/internal/sspcrypto"
)

// TestLongTypingRunMostlyInstant traces why long typing runs do or don't display
// instantly on a 500ms-RTT path.
func TestLongTypingRunMostlyInstant(t *testing.T) {
	sched := simclock.NewScheduler(benchEpoch)
	nw := netem.NewNetwork(sched)
	path := netem.NewPath(nw, netem.EVDO(), 3)
	key := sspcrypto.Key{1}
	clientAddr := netem.Addr{Host: 1, Port: 1}
	serverAddr := netem.Addr{Host: 2, Port: 2}

	var server *core.Server
	var client *core.Client
	var wakeServer func()
	server, _ = core.NewServer(core.ServerConfig{
		Key: key, Clock: sched,
		Emit: func(w []byte) {
			if dst, ok := server.Transport().Connection().RemoteAddr(); ok {
				path.Down.Send(netem.Packet{Src: serverAddr, Dst: dst, Payload: w})
			}
		},
		HostInput: func(data []byte) {
			out := make([]byte, 0)
			for _, b := range data {
				if b >= 0x20 && b < 0x7f {
					out = append(out, b)
				}
			}
			if len(out) > 0 {
				sched.AfterFunc(3*time.Millisecond, func() {
					server.HostOutput(out)
					wakeServer()
				})
			}
		},
	})
	client, _ = core.NewClient(core.ClientConfig{
		Key: key, Clock: sched, Predictions: overlay.Adaptive,
		Emit: func(w []byte) {
			path.Up.Send(netem.Packet{Src: clientAddr, Dst: serverAddr, Payload: w})
		},
	})
	nw.Attach(serverAddr, func(p netem.Packet) { server.Receive(p.Payload, p.Src) })
	nw.Attach(clientAddr, func(p netem.Packet) { client.Receive(p.Payload, p.Src) })
	wakeClient := core.Pump(sched, client)
	wakeServer = core.Pump(sched, server)
	sched.RunFor(3 * time.Second)

	// A 40-keystroke typing run at 150ms spacing.
	type ev struct {
		seq uint64
		at  time.Time
	}
	var evs []ev
	for i := 0; i < 40; i++ {
		r := rune('a' + i%26)
		seq := client.TypeRune(r)
		evs = append(evs, ev{seq: seq, at: sched.Now()})
		wakeClient()
		sched.RunFor(150 * time.Millisecond)
	}
	sched.RunFor(5 * time.Second)

	instant, confirmed := 0, 0
	for i, e := range evs {
		rec, ok := client.Predictions().TakeInputRecord(e.seq)
		if !ok {
			t.Logf("key %d: no record", i)
			continue
		}
		lat := time.Duration(-1)
		if rec.Displayed {
			lat = rec.DisplayedAt.Sub(e.at)
		}
		if rec.Outcome == overlay.OutcomeCorrect {
			confirmed++
		}
		if rec.Displayed && lat < 5*time.Millisecond {
			instant++
		}
		if i < 12 || lat >= 5*time.Millisecond {
			t.Logf("key %2d: epoch=%d displayed=%v lat=%v outcome=%v", i, rec.Epoch, rec.Displayed, lat, rec.Outcome)
		}
	}
	t.Logf("stats: %+v", client.Predictions().Stats())
	t.Logf("instant=%d/40 confirmed=%d/40", instant, confirmed)
	if instant < 30 {
		t.Fatalf("long run should be mostly instant; got %d/40", instant)
	}
}
