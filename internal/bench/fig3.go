package bench

import (
	"math/rand"
	"time"

	"repro/internal/netem"
	"repro/internal/simclock"
	"repro/internal/sspcrypto"
	"repro/internal/statesync"
	"repro/internal/trace"
	"repro/internal/transport"
)

// SweepPoint is one measurement of Figure 3: the mean protocol-induced
// delay on host screen updates for a given collection interval, with the
// frame interval pinned at 250 ms as in the paper.
type SweepPoint struct {
	Interval  time.Duration
	MeanDelay time.Duration
	Writes    int
}

// hostWrite is one timed application write extracted from a trace.
type hostWrite struct {
	at   time.Duration
	size int
}

// extractWrites converts a trace's prerecorded responses into a write
// stream. Larger responses are split into a few chunks a handful of
// milliseconds apart, reflecting how real applications clump their writes
// (the behavior the collection interval exists to absorb).
//
// The synthetic traces compress idle time (as the paper's replay did);
// for this figure the *absolute* spacing of writes matters — the
// collection-interval tradeoff is visible only on writes that do not
// already share a frame with their neighbors — so the timeline is
// stretched back out to real-usage density.
func extractWrites(tr *trace.Trace, seed int64) []hostWrite {
	const stretch = 3
	rng := rand.New(rand.NewSource(seed))
	var writes []hostWrite
	for _, st := range tr.Steps {
		if len(st.Response) == 0 {
			continue
		}
		at := stretch * (st.At + st.ResponseDelay)
		if len(st.Response) <= 20 {
			writes = append(writes, hostWrite{at: at, size: len(st.Response)})
			continue
		}
		chunks := 2 + rng.Intn(3)
		per := len(st.Response) / chunks
		for c := 0; c < chunks; c++ {
			writes = append(writes, hostWrite{at: at, size: per})
			at += time.Duration(2+rng.Intn(9)) * time.Millisecond
		}
	}
	return writes
}

// runCollection replays the write stream through a real SSP sender with
// the given collection interval and measures, for every write, the delay
// between the application's write and the frame that first carried it.
func runCollection(writes []hostWrite, collection time.Duration) SweepPoint {
	sched := simclock.NewScheduler(benchEpoch)
	nw := netem.NewNetwork(sched)
	// A fast, clean path: the delay measured is protocol-induced only.
	path := netem.NewPath(nw, netem.LinkParams{Delay: time.Millisecond}, 1)
	key := sspcrypto.Key{3}

	timing := transport.DefaultTiming()
	timing.SendIntervalMin = 250 * time.Millisecond // paper: frame interval 250 ms
	timing.SendIntervalMax = 250 * time.Millisecond
	timing.CollectionInterval = collection

	srvAddr := netem.Addr{Host: 2, Port: 1}
	cliAddr := netem.Addr{Host: 1, Port: 1}

	type pendingWrite struct {
		at time.Time
	}
	var pending []pendingWrite
	var totalDelay time.Duration
	measured := 0

	var srv *transport.Transport[*statesync.UserStream, *statesync.UserStream]
	lastNum := uint64(0)
	var err error
	srv, err = transport.New(transport.Config[*statesync.UserStream, *statesync.UserStream]{
		Direction: sspcrypto.ToClient, Key: key, Clock: sched, Timing: &timing,
		LocalInitial: statesync.NewUserStream(), RemoteInitial: statesync.NewUserStream(),
		Emit: func(w []byte) {
			if num := srv.Sender().LastSentNum(); num > lastNum {
				lastNum = num
				now := sched.Now()
				for _, p := range pending {
					totalDelay += now.Sub(p.at)
					measured++
				}
				pending = pending[:0]
			}
			if dst, ok := srv.Connection().RemoteAddr(); ok {
				path.Down.Send(netem.Packet{Src: srvAddr, Dst: dst, Payload: w})
			}
		},
	})
	if err != nil {
		panic(err)
	}
	cli, err := transport.New(transport.Config[*statesync.UserStream, *statesync.UserStream]{
		Direction: sspcrypto.ToServer, Key: key, Clock: sched, Timing: &timing,
		LocalInitial: statesync.NewUserStream(), RemoteInitial: statesync.NewUserStream(),
		Emit: func(w []byte) {
			path.Up.Send(netem.Packet{Src: cliAddr, Dst: srvAddr, Payload: w})
		},
	})
	if err != nil {
		panic(err)
	}
	var wakeSrv, wakeCli func()
	pumpEndpoint := func(t interface {
		Tick()
		WaitTime() time.Duration
	}) func() {
		var pump func()
		timer := sched.NewEventTimer(func() { pump() })
		pump = func() {
			t.Tick()
			w := t.WaitTime()
			if w < time.Millisecond {
				w = time.Millisecond
			}
			timer.Reset(sched.Now().Add(w))
		}
		sched.AfterFunc(0, pump)
		return pump
	}
	wakeSrv = pumpEndpoint(srv)
	wakeCli = pumpEndpoint(cli)
	// Receiving can establish new deadlines (delayed acks), so the pump
	// timer must be re-armed after every arrival.
	nw.Attach(srvAddr, func(p netem.Packet) { srv.Receive(p.Payload, p.Src); wakeSrv() })
	nw.Attach(cliAddr, func(p netem.Packet) { cli.Receive(p.Payload, p.Src); wakeCli() })
	cli.Sender().ForceAckSoon()

	sched.RunFor(2 * time.Second)
	start := sched.Now()
	payload := make([]byte, 64)
	for _, w := range writes {
		w := w
		sched.At(start.Add(w.at), func() {
			n := w.size
			if n > len(payload) {
				n = len(payload)
			}
			srv.CurrentState().PushBytes(payload[:n])
			pending = append(pending, pendingWrite{at: sched.Now()})
			wakeSrv()
		})
	}
	var horizon time.Duration
	if len(writes) > 0 {
		horizon = writes[len(writes)-1].at
	}
	sched.RunUntil(start.Add(horizon + 10*time.Second))

	pt := SweepPoint{Interval: collection, Writes: measured}
	if measured > 0 {
		pt.MeanDelay = totalDelay / time.Duration(measured)
	}
	return pt
}

// CollectionSweep regenerates Figure 3: mean protocol-induced delay as a
// function of the collection interval. Each trace is replayed as its own
// session (sessions are independent in the paper's corpus) and the means
// are write-weighted across sessions.
func CollectionSweep(traces []*trace.Trace, intervals []time.Duration) []SweepPoint {
	perTrace := make([][]hostWrite, len(traces))
	for i, tr := range traces {
		perTrace[i] = extractWrites(tr, int64(i+1))
	}
	pts := make([]SweepPoint, 0, len(intervals))
	for _, iv := range intervals {
		var total time.Duration
		n := 0
		for _, writes := range perTrace {
			pt := runCollection(writes, iv)
			total += pt.MeanDelay * time.Duration(pt.Writes)
			n += pt.Writes
		}
		p := SweepPoint{Interval: iv, Writes: n}
		if n > 0 {
			p.MeanDelay = total / time.Duration(n)
		}
		pts = append(pts, p)
	}
	return pts
}

// Figure3Intervals are the sweep points (log-spaced 0.1–100 ms, as in the
// paper's x-axis).
func Figure3Intervals() []time.Duration {
	return []time.Duration{
		100 * time.Microsecond,
		300 * time.Microsecond,
		time.Millisecond,
		2 * time.Millisecond,
		4 * time.Millisecond,
		8 * time.Millisecond,
		16 * time.Millisecond,
		32 * time.Millisecond,
		64 * time.Millisecond,
		100 * time.Millisecond,
	}
}
