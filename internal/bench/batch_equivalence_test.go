package bench

import (
	"bytes"
	"sort"
	"testing"
	"time"

	"repro/internal/sessiond"
)

// TestBatchEquivalenceUnderLossAndRoam is the batched pipeline's
// semantic-equivalence property: with the identical emulated network
// (same delivery instants, same loss decisions, same roaming schedule),
// the batched daemon — whole-batch demultiplexing, per-session runs,
// ring-buffered batched egress — must produce, for EVERY session, a
// byte-identical stream of server states to the unbatched baseline, and
// identical keystroke latencies. Batching may only change how many
// syscalls the traffic costs, never what the traffic is or when it
// happens. Runs mixed cohorts over lossy links with a third of the
// clients roaming mid-run, reusing the torture harness.
func TestBatchEquivalenceUnderLossAndRoam(t *testing.T) {
	base := ManySessionOptions{
		Sessions:      120,
		Keystrokes:    10,
		TypeInterval:  150 * time.Millisecond,
		Seed:          23,
		Mixed:         true,
		Roam:          true,
		LossyCohorts:  true,
		CaptureFrames: true,
	}

	batched := base
	res := RunManySession(batched)

	unbatched := base
	unbatched.Unbatched = true
	ref := RunManySession(unbatched)

	if len(res.FrameHashes) != base.Sessions || len(ref.FrameHashes) != base.Sessions {
		t.Fatalf("frame capture incomplete: %d vs %d hashes", len(res.FrameHashes), len(ref.FrameHashes))
	}
	for i := range res.FrameHashes {
		if res.FrameHashes[i] != ref.FrameHashes[i] {
			t.Errorf("session %d: frame-stream hash differs (batched %x vs unbatched %x)",
				i+1, res.FrameHashes[i], ref.FrameHashes[i])
		}
		if !bytes.Equal(res.FinalFrames[i], ref.FinalFrames[i]) {
			t.Errorf("session %d: converged frame differs:\nbatched   %q\nunbatched %q",
				i+1, res.FinalFrames[i], ref.FinalFrames[i])
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// Every provider geometry in the fallback ladder — loop, gso, io_uring
	// (mmsg is `res` above) — must produce the identical per-session frame
	// streams: the I/O model only changes how syscalls and stack
	// traversals are accounted, never what any session sees.
	for _, m := range []sessiond.IOModel{sessiond.IOModelLoop, sessiond.IOModelGSO, sessiond.IOModelURing} {
		mopt := base
		mopt.IOModel = m
		mres := RunManySession(mopt)
		if len(mres.FrameHashes) != base.Sessions {
			t.Fatalf("[%v] frame capture incomplete: %d hashes", m, len(mres.FrameHashes))
		}
		for i := range mres.FrameHashes {
			if mres.FrameHashes[i] != ref.FrameHashes[i] {
				t.Fatalf("session %d: frame-stream hash differs (%v %x vs unbatched %x)",
					i+1, m, mres.FrameHashes[i], ref.FrameHashes[i])
			}
			if !bytes.Equal(mres.FinalFrames[i], ref.FinalFrames[i]) {
				t.Fatalf("session %d: converged frame differs under the %v model", i+1, m)
			}
		}
		if mres.PacketsIn != ref.PacketsIn || mres.PacketsOut != ref.PacketsOut {
			t.Fatalf("[%v] wire traffic differs: %d/%d vs unbatched %d/%d pkts",
				m, mres.PacketsIn, mres.PacketsOut, ref.PacketsIn, ref.PacketsOut)
		}
	}

	if res.Lost != ref.Lost {
		t.Fatalf("lost keystrokes differ: batched %d vs unbatched %d", res.Lost, ref.Lost)
	}
	if res.Roams == 0 || res.Roams != ref.Roams {
		t.Fatalf("roaming events differ: batched %d vs unbatched %d", res.Roams, ref.Roams)
	}
	if res.PacketsIn != ref.PacketsIn || res.PacketsOut != ref.PacketsOut {
		t.Fatalf("wire traffic differs: batched %d/%d vs unbatched %d/%d pkts",
			res.PacketsIn, res.PacketsOut, ref.PacketsIn, ref.PacketsOut)
	}

	// Latency equivalence is exact, not statistical: the same keystrokes
	// become visible at the same virtual instants. (Sample order may
	// differ across sessions within an instant, so compare sorted.)
	if len(res.Samples) != len(ref.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(res.Samples), len(ref.Samples))
	}
	a := make([]time.Duration, len(res.Samples))
	b := make([]time.Duration, len(ref.Samples))
	for i := range res.Samples {
		a[i], b[i] = res.Samples[i].Latency, ref.Samples[i].Latency
	}
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("latency sample %d differs: batched %v vs unbatched %v", i, a[i], b[i])
		}
	}

	// And the whole point: identical traffic, materially fewer syscalls.
	// (The win grows with session count — TestManySessionLoad1000 gates
	// the ≥4x acceptance threshold at 1000 sessions; at this test's 120
	// sessions a fraction of that is expected.)
	if got, limit := res.ReadCalls+res.WriteCalls, (ref.ReadCalls+ref.WriteCalls)*4/5; got >= limit {
		t.Fatalf("batched mode used %d syscalls, want materially fewer than the unbatched baseline's %d",
			got, ref.ReadCalls+ref.WriteCalls)
	}
	if ref.SyscallsPerPacket != 1.0 {
		t.Fatalf("unbatched baseline = %.3f syscalls/pkt, want exactly 1.0", ref.SyscallsPerPacket)
	}
	t.Logf("equivalent streams; syscalls/pkt: batched %.3f vs unbatched %.3f",
		res.SyscallsPerPacket, ref.SyscallsPerPacket)
}
