package sessiond

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// This file is the daemon's explicit shed policy. Isolated pressure
// drops (one slow session's full inbox, a brief egress burst) are normal
// backpressure — SSP retransmits and nobody else notices. SUSTAINED
// pressure is different: it means offered load exceeds what the daemon
// can move, and continuing to admit full budgets for everyone just
// converts memory into drops at a different layer. The shed policy makes
// that regime a first-class, metered state: when pressure drops exceed a
// threshold within a window, the daemon "sheds" for a hold period —
// halving every session's inbox budget so queues stay short and the
// heaviest offenders absorb the drops — and counts the event
// (shed_events, shedding gauge) so operators see the regime change
// instead of inferring it from scattered drop counters.

// DefaultShedThreshold is the pressure-drop count within ShedWindow that
// activates shedding.
const DefaultShedThreshold = 256

// shedState tracks pressure drops over a sliding window and the
// activation deadline. until is the lock-free read path (checked per
// delivered run); the window counters live under mu and are touched only
// when drops actually happen.
type shedState struct {
	threshold int64
	window    time.Duration
	hold      time.Duration

	until atomic.Int64 // unix nanos; shedding active while now < until

	mu          sync.Mutex
	windowStart int64 // unix nanos
	drops       int64
}

// notePressureDrop records n datagrams dropped for pressure (full inbox,
// full egress ring) and activates shedding when the windowed total trips
// the threshold. Never blocks; safe under session locks.
func (d *Daemon) notePressureDrop(n int64) {
	sh := &d.shed
	if sh.threshold <= 0 {
		return
	}
	now := d.cfg.Clock.Now().UnixNano()
	sh.mu.Lock()
	if now-sh.windowStart > int64(sh.window) {
		sh.windowStart, sh.drops = now, 0
	}
	sh.drops += n
	trip := sh.drops >= sh.threshold
	if trip {
		sh.windowStart, sh.drops = now, 0
	}
	sh.mu.Unlock()
	if trip {
		if prev := sh.until.Swap(now + int64(sh.hold)); prev < now {
			// Newly activated (not an extension of an active hold). The
			// flight-recorder dump here is the whole point of the recorder:
			// the events leading up to the trip are still in the ring.
			d.metrics.ShedEvents.Add(1)
			d.degrade("shed", telemetry.EvShedTrip, 0, uint64(sh.threshold))
		}
		d.metrics.Shedding.Set(1)
	}
}

// shedding reports whether the shed policy is currently active, clearing
// the gauge lazily when the hold expires.
func (d *Daemon) shedding() bool {
	sh := &d.shed
	until := sh.until.Load()
	if until == 0 {
		return false
	}
	if d.cfg.Clock.Now().UnixNano() >= until {
		if sh.until.CompareAndSwap(until, 0) {
			d.metrics.Shedding.Set(0)
		}
		return false
	}
	return true
}
