package sessiond

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/statesync"
	"repro/internal/telemetry"
	"repro/internal/terminal"
	"repro/internal/udpbatch"
)

// This file renders the daemon's telemetry in the Prometheus text
// exposition format (version 0.0.4), hand-rolled — the repo takes no
// dependencies, and the format is lines of `name{labels} value`. The
// expvar registry (metrics.go) stays the debug-oriented surface; this one
// is for scrapers.

// promGauges marks the published counters that are point-in-time gauges
// rather than monotonic counters.
var promGauges = map[string]bool{
	"sessions_live":            true,
	"dispatch_queue_depth":     true,
	"egress_queue_depth":       true,
	"journal_suspended":        true,
	"journal_retry_backoff_ms": true,
	"journal_segments":         true,
	"shedding":                 true,
}

// batchSizeBoundaries are the `le` boundaries for the batch-size
// histograms: powers of two up to the clamp, matching BatchHist's exact
// range.
var batchSizeBoundaries = []int64{1, 2, 4, 8, 16, 32, 64, 128}

// stageSecondsBoundaries are the `le` boundaries (in seconds) for the
// pipeline stage and echo histograms: 1 µs to 10 s, log-spaced, with the
// paper's 16 ms echo threshold as an explicit edge so the Fig. 6 fraction
// is readable straight off the histogram.
var stageSecondsBoundaries = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 4e-3, 16e-3, 64e-3, 0.25, 1, 10,
}

// MetricsHandler returns an http.Handler serving the daemon's metrics in
// Prometheus text format. Mount it wherever the debug listener lives
// (mosh-server -debug serves it on /metrics).
func (d *Daemon) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(d.appendPrometheus(nil))
	})
}

// appendPrometheus renders the full exposition into dst.
func (d *Daemon) appendPrometheus(dst []byte) []byte {
	m := d.Metrics()
	for _, f := range metricFields {
		kind := "counter"
		if promGauges[f.name] {
			kind = "gauge"
		}
		dst = append(dst, "# TYPE sessiond_"+f.name+" "+kind+"\n"...)
		dst = append(dst, "sessiond_"+f.name+" "...)
		dst = strconv.AppendInt(dst, f.get(m), 10)
		dst = append(dst, '\n')
	}
	dst = appendPromCounter(dst, "sessiond_syscalls_avoided", m.SyscallsAvoided())
	dst = appendPromFloatGauge(dst, "sessiond_journal_write_amp", m.JournalWriteAmp())

	dst = appendPromBatchHist(dst, "sessiond_read_batch_size", &m.ReadBatchSizes)
	dst = appendPromBatchHist(dst, "sessiond_write_batch_size", &m.WriteBatchSizes)

	// Pipeline stages: one histogram per stage, labeled.
	dst = append(dst, "# TYPE sessiond_stage_latency_seconds histogram\n"...)
	for _, st := range telemetry.Stages() {
		if st == telemetry.StageEcho {
			continue // exported as its own histogram below
		}
		dst = appendPromLatencyHist(dst, "sessiond_stage_latency_seconds",
			`stage="`+st.String()+`",`, d.pipe.Stage(st))
	}

	// Keystroke→echo: the Fig. 6 numbers.
	dst = append(dst, "# TYPE sessiond_echo_latency_seconds histogram\n"...)
	dst = appendPromLatencyHist(dst, "sessiond_echo_latency_seconds", "",
		d.pipe.Stage(telemetry.StageEcho))
	total, le16, leRTT := d.pipe.EchoStats()
	dst = appendPromCounter(dst, "sessiond_echo_total", total)
	dst = appendPromCounter(dst, "sessiond_echo_within_16ms_total", le16)
	dst = appendPromCounter(dst, "sessiond_echo_within_rtt_total", leRTT)

	// Live transport introspection.
	tr := d.TransportStats()
	dst = appendPromGauge(dst, "sessiond_transport_sessions", int64(tr.Sessions))
	dst = appendPromGauge(dst, "sessiond_transport_outstanding_states", int64(tr.OutstandingStates))
	dst = appendPromGauge(dst, "sessiond_transport_fragments_held", int64(tr.FragmentsHeld))
	dst = appendPromGauge(dst, "sessiond_transport_queued_packets", tr.QueuedPackets)
	dst = appendPromSummary(dst, "sessiond_transport_srtt_seconds",
		tr.SRTTp50, tr.SRTTp99, tr.SRTTMax)
	dst = appendPromSummary(dst, "sessiond_transport_frame_interval_seconds",
		tr.FrameIntervalP50, tr.FrameIntervalP99, tr.FrameIntervalMax)

	// Memory-per-session observability.
	ss := d.ScreenStateStats()
	dst = appendPromGauge(dst, "sessiond_screen_rows", int64(ss.ScreenRows))
	dst = appendPromGauge(dst, "sessiond_screen_rows_shared", int64(ss.SharedScreenRows))
	dst = appendPromGauge(dst, "sessiond_screen_rows_pooled", int64(ss.PooledRows))
	dst = appendPromGauge(dst, "sessiond_scrollback_rows", int64(ss.ScrollbackRows))
	dst = appendPromGauge(dst, "sessiond_scrollback_arena_rows", int64(ss.ScrollbackArenaRows))
	dst = appendPromGauge(dst, "sessiond_interned_graphemes", int64(terminal.InternedGraphemes()))
	dst = appendPromGauge(dst, "sessiond_resident_bytes_per_session", int64(ss.ResidentBytesPerSession()))
	irows, ibytes := terminal.InternedRowStats()
	dst = appendPromGauge(dst, "sessiond_interned_rows", int64(irows))
	dst = appendPromGauge(dst, "sessiond_interned_row_bytes", int64(ibytes))
	dst = appendPromGauge(dst, "sessiond_screen_rows_interned", int64(ss.InternedRows))

	sc, sb, uc, ub := statesync.ApplyStats()
	dst = appendPromCounter(dst, "sessiond_statesync_screen_applies", sc)
	dst = appendPromCounter(dst, "sessiond_statesync_screen_apply_bytes", sb)
	dst = appendPromCounter(dst, "sessiond_statesync_stream_applies", uc)
	dst = appendPromCounter(dst, "sessiond_statesync_stream_apply_bytes", ub)

	dst = append(dst, "# TYPE sessiond_buffer_pool_gets counter\n"...)
	dst = append(dst, "# TYPE sessiond_buffer_pool_misses counter\n"...)
	for _, p := range []struct {
		name string
		pool *udpbatch.Pool
	}{{"read", d.readPool}, {"wire", d.wirePool}} {
		if p.pool == nil {
			continue
		}
		gets, misses := p.pool.Stats()
		dst = append(dst, fmt.Sprintf("sessiond_buffer_pool_gets{pool=%q} %d\n", p.name, gets)...)
		dst = append(dst, fmt.Sprintf("sessiond_buffer_pool_misses{pool=%q} %d\n", p.name, misses)...)
	}
	return dst
}

func appendPromCounter(dst []byte, name string, v int64) []byte {
	dst = append(dst, "# TYPE "+name+" counter\n"+name+" "...)
	dst = strconv.AppendInt(dst, v, 10)
	return append(dst, '\n')
}

func appendPromGauge(dst []byte, name string, v int64) []byte {
	dst = append(dst, "# TYPE "+name+" gauge\n"+name+" "...)
	dst = strconv.AppendInt(dst, v, 10)
	return append(dst, '\n')
}

func appendPromFloatGauge(dst []byte, name string, v float64) []byte {
	dst = append(dst, "# TYPE "+name+" gauge\n"+name+" "...)
	dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
	return append(dst, '\n')
}

// appendPromSummary renders a three-point quantile summary from
// pre-aggregated durations.
func appendPromSummary(dst []byte, name string, p50, p99, max time.Duration) []byte {
	dst = append(dst, "# TYPE "+name+" summary\n"...)
	for _, q := range []struct {
		label string
		v     time.Duration
	}{{"0.5", p50}, {"0.99", p99}, {"1", max}} {
		dst = append(dst, name+`{quantile="`+q.label+`"} `...)
		dst = strconv.AppendFloat(dst, q.v.Seconds(), 'g', -1, 64)
		dst = append(dst, '\n')
	}
	return dst
}

// appendPromBatchHist renders a BatchHist as a cumulative histogram with
// power-of-two boundaries.
func appendPromBatchHist(dst []byte, name string, h *BatchHist) []byte {
	dst = append(dst, "# TYPE "+name+" histogram\n"...)
	th := h.hist()
	for _, le := range batchSizeBoundaries {
		dst = append(dst, name+`_bucket{le="`...)
		dst = strconv.AppendInt(dst, le, 10)
		dst = append(dst, `"} `...)
		dst = strconv.AppendInt(dst, th.CountLE(le), 10)
		dst = append(dst, '\n')
	}
	dst = append(dst, name+`_bucket{le="+Inf"} `...)
	dst = strconv.AppendInt(dst, th.Count(), 10)
	dst = append(dst, '\n')
	dst = append(dst, name+"_sum "...)
	dst = strconv.AppendInt(dst, th.Sum(), 10)
	dst = append(dst, '\n')
	dst = append(dst, name+"_count "...)
	dst = strconv.AppendInt(dst, th.Count(), 10)
	return append(dst, '\n')
}

// appendPromLatencyHist renders a nanosecond-valued telemetry.Hist as a
// seconds-denominated cumulative histogram. labels is either empty or a
// `key="value",`-style prefix.
func appendPromLatencyHist(dst []byte, name, labels string, h *telemetry.Hist) []byte {
	for _, le := range stageSecondsBoundaries {
		dst = append(dst, name+"_bucket{"+labels+`le="`...)
		dst = strconv.AppendFloat(dst, le, 'g', -1, 64)
		dst = append(dst, `"} `...)
		dst = strconv.AppendInt(dst, h.CountLE(int64(le*float64(time.Second))), 10)
		dst = append(dst, '\n')
	}
	dst = append(dst, name+"_bucket{"+labels+`le="+Inf"} `...)
	dst = strconv.AppendInt(dst, h.Count(), 10)
	dst = append(dst, '\n')
	trim := labels
	if trim != "" {
		trim = "{" + trim[:len(trim)-1] + "}"
	}
	dst = append(dst, name+"_sum"+trim+" "...)
	dst = strconv.AppendFloat(dst, float64(h.Sum())/float64(time.Second), 'g', -1, 64)
	dst = append(dst, '\n')
	dst = append(dst, name+"_count"+trim+" "...)
	dst = strconv.AppendInt(dst, h.Count(), 10)
	return append(dst, '\n')
}
