// Package sessiond is the multi-session SSP daemon: it runs N independent
// Mosh sessions behind one UDP socket, where the paper's design (§2.2)
// binds one session to one port. Each datagram carries a cleartext 64-bit
// session-ID envelope (see internal/network); the ID is pure routing —
// authenticity still comes from each session's own AES-OCB key, so a
// spoofed ID merely selects a session whose key rejects the packet.
//
// The daemon owns three things:
//
//   - a sharded session registry with key issuance, idle eviction, and
//     per-session roaming (each session's replies follow the latest
//     authentic source address of that session, independently);
//   - a batched event loop: whole batches of datagrams are read per
//     syscall (recvmmsg on Linux — see internal/udpbatch), demultiplexed
//     by envelope in one sweep, and delivered to per-session workers as
//     runs (one channel send per session per batch); replies funnel into
//     a daemon-wide egress ring a flusher drains via sendmmsg. Sender
//     ticks and delayed host output are driven from a single
//     next-deadline timer heap rather than a timer goroutine per session;
//   - a metrics surface (sessions live, packets/bytes in/out, evictions,
//     dispatch-queue depth) publishable via expvar.
//
// Two driving modes share all of that machinery. Production
// (cmd/mosh-server) calls ServeBatch with a vectorized socket: a reader
// loop feeds DispatchBatch, the egress flusher writes batches out, and a
// tick goroutine sleeps on the heap minimum. Simulation (internal/bench's
// many-session load generator, tests) drives the same daemon synchronously
// in virtual time via HandleBatch/HandlePacket + Pump — the egress ring is
// flushed before each entry point returns — keeping experiments exactly
// reproducible.
package sessiond

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/host"
	"repro/internal/netem"
	"repro/internal/network"
	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/udpbatch"
)

// DefaultIdleTimeout evicts sessions that have heard nothing authentic for
// this long. Mosh sessions are deliberately long-lived (roaming clients go
// silent for hours), so the default is generous; a negative Config value
// disables eviction entirely.
const DefaultIdleTimeout = 12 * time.Hour

// minTickInterval floors the per-session rearm delay so a hot session
// cannot spin the tick loop.
const minTickInterval = time.Millisecond

// Config parameterizes a Daemon.
type Config struct {
	// Clock drives all timing: simclock.Real{} under Serve,
	// a *simclock.Scheduler under Pump/HandlePacket simulation.
	Clock simclock.Clock
	// Send transmits one enveloped wire datagram to dst. It may be nil
	// when the daemon is driven via Serve/ServeBatch (which send on the
	// served connection). Datagrams reach it via the egress ring in
	// batches accounted by the write counters; it runs under the egress
	// flush lock and MUST NOT call back into the daemon (HandlePacket,
	// TickDue, Session.Do, …) — doing so self-deadlocks the flusher.
	Send func(dst netem.Addr, wire []byte)
	// NewApp builds the host application behind session id (a pty stand-in:
	// shell, editor, mail reader). Nil means sessions have no application
	// and the embedder feeds output through Session.Do.
	NewApp func(id uint64) host.App
	// Capacity bounds live sessions; 0 means unlimited.
	Capacity int
	// IdleTimeout evicts sessions silent this long (0 = DefaultIdleTimeout,
	// negative = never evict).
	IdleTimeout time.Duration
	// Width, Height size each session's terminal (default 80×24).
	Width, Height int
	// Scrollback is the per-session server-side history depth in lines.
	// Zero or negative keeps the daemon default: history disabled — the
	// client rebuilds its own history from scroll diffs, scrolled-off rows
	// recycle through the row pool, and at thousands of sessions the dead
	// rows would otherwise dominate memory. With the structurally-shared
	// scrollback a positive depth is affordable when an embedder wants
	// server-side history (e.g. for session handoff or auditing).
	Scrollback int
	// Timing overrides SSP transport timing (nil = paper defaults).
	Timing *transport.Timing
	// MinRTO/MaxRTO pass through to the datagram layer.
	MinRTO, MaxRTO time.Duration
	// RecycleWire declares Send non-retaining (synchronous socket write),
	// enabling per-session wire-buffer reuse. Must stay false when Send
	// hands buffers to something that holds them (netem links in flight).
	RecycleWire bool
	// InboxDepth bounds each session's async dispatch queue in DATAGRAMS
	// (Serve mode; default 128) — runs from a read batch are admitted
	// only while the session is under budget, so per-session queued wire
	// memory stays bounded exactly as before batching. Overflow drops
	// the run — SSP retransmits.
	InboxDepth int
	// EgressDepth bounds the daemon-wide egress ring in datagrams
	// (default 4096). Overflow drops the datagram (drops_egress_full) —
	// backpressure the flusher works off in batches.
	EgressDepth int
	// UnbatchedIO models the portable loop fallback in simulation: read
	// and write syscall accounting is one datagram per call instead of
	// one batch per call. The packet path itself is identical — this is
	// the baseline mode the batched pipeline is measured against.
	// Shorthand for IOModel: IOModelLoop; ignored when IOModel is set.
	UnbatchedIO bool
	// IOModel selects which udpbatch provider geometry the simulation's
	// syscall and stack-traversal accounting mirrors (mmsg by default;
	// see the IOModel constants). The packet path is identical across
	// models — per-session frame streams are byte-for-byte the same —
	// only the modeled I/O cost differs. Served sockets ignore it: their
	// accounting comes from the real provider.
	IOModel IOModel

	// StateDir enables crash-safe session persistence: the daemon journals
	// every session's durable core there (periodically and on Close, with
	// atomic rename) and New restores journaled sessions on boot, so a
	// restart is just another form of packet loss to the clients. Empty
	// disables persistence entirely.
	StateDir string
	// JournalInterval is the periodic flush cadence in Serve mode
	// (default DefaultJournalInterval). Simulation embedders drive
	// FlushJournal explicitly instead.
	JournalInterval time.Duration
	// SeqReserve is the per-flush counter reservation (default
	// DefaultSeqReserve): how many datagrams/states a session may emit
	// between flushes. Larger values flush less often under load; smaller
	// values bound how much a hard crash can suppress.
	SeqReserve uint64
	// RestoreApp reattaches the host application behind a restored session
	// (an application that survived the restart). When nil, restored
	// sessions fall back to NewApp — without replaying Start(), since the
	// restored screen already reflects history.
	RestoreApp func(id uint64) host.App

	// FS is the filesystem the journal reads and writes through (nil =
	// the real filesystem). Fault tests substitute a faultinject.FaultFS
	// so every operation of the atomic-rename protocol can fail on
	// schedule.
	FS faultinject.FS
	// JournalRetryMin/JournalRetryMax bound the exponential backoff
	// between failed journal-flush attempts (defaults 100ms / 10s). The
	// retry never blocks the packet path: it rides the journal loop's
	// timer (async) or the daemon's deadline heap (simulation).
	JournalRetryMin, JournalRetryMax time.Duration
	// JournalSuspendAfter is how many consecutive flush failures put the
	// journal into its explicit suspended state (default 8; negative
	// never suspends — the daemon retries at JournalRetryMax forever).
	JournalSuspendAfter int
	// FaultSeed seeds the deterministic jitter on journal-retry backoff
	// (0 = a fixed default), keeping fault-schedule runs reproducible.
	FaultSeed int64
	// JournalFullRewrite disables the incremental segment log and rewrites
	// the complete checkpoint on every flush — the pre-incremental
	// behavior, kept as the measured baseline the journal bench compares
	// against.
	JournalFullRewrite bool
	// JournalCompactMinBytes floors the segment-tail growth that triggers
	// compaction back into a checkpoint (default
	// DefaultJournalCompactMinBytes). The trigger itself is relative: the
	// tail must also outgrow twice the checkpoint, bounding the log at
	// O(live state).
	JournalCompactMinBytes int
	// DisableRowIntern turns off row-level screen interning (process-wide
	// sharing of identical screen rows across sessions). Interning is
	// semantically invisible — frames and snapshots are byte-identical
	// either way — so this knob exists for A/B memory measurement.
	DisableRowIntern bool

	// UnauthQuotaBurst/UnauthQuotaRate parameterize the per-source token
	// bucket on auth-failing datagrams: a source that fails
	// authentication Burst times faster than Rate tokens/second refill is
	// refused before the AEAD runs, so a spoofed-envelope flood cannot
	// starve live sessions of CPU. Any authentic datagram clears its
	// source's record, so a legitimate roaming client can never be locked
	// out. Defaults 64 and 16/s; a negative Burst disables the quota.
	UnauthQuotaBurst int
	UnauthQuotaRate  float64

	// ShedThreshold/ShedWindow/ShedHold parameterize the pressure-shed
	// policy: when pressure drops (full session inboxes, full egress
	// ring) exceed ShedThreshold within ShedWindow, the daemon sheds for
	// ShedHold — halving every session's inbox budget so the flood pays
	// for the pressure it creates — and meters the event (shed_events).
	// Defaults 256 drops / 1s / 2s; a negative threshold disables.
	ShedThreshold        int
	ShedWindow, ShedHold time.Duration

	// Pipeline receives the daemon's per-stage latency observations and
	// keystroke→echo matches. Nil allocates a daemon-private one
	// (exposed via Daemon.Pipeline); benches pass a shared pipeline so
	// observations survive a mid-run daemon restart.
	Pipeline *telemetry.Pipeline
	// FlightRecorderSlots sizes the flight recorder's per-shard event
	// ring (0 = telemetry.DefaultRecorderSlots; negative disables the
	// recorder entirely, leaving only the atomic-load-and-branch gate
	// compiled out via the nil recorder).
	FlightRecorderSlots int
	// OnEcho, when non-nil, observes every matched keystroke→echo-frame
	// completion: the session, the end-to-end latency, and the smoothed
	// RTT at match time (0 before the first RTT sample). Called with the
	// session's lock held — it must be fast and must not call back into
	// the daemon.
	OnEcho func(session uint64, latency, srtt time.Duration)
	// OnDegrade, when non-nil, receives a human-readable flight-recorder
	// dump whenever a degradation state trips: pressure shed, journal
	// suspension, or unauth-quota exhaustion. Dumps are rate limited to
	// one per reason per 10 s. May be called with daemon or session
	// locks held — it must not call back into the daemon (write the dump
	// somewhere and return).
	OnDegrade func(reason string, dump []byte)
}

// PacketConn is the legacy one-datagram socket surface: a blocking read
// and a send, in the address terms the rest of the stack uses. Serve
// adapts it onto the batched pipeline through udpbatch.NewLoopConn (one
// datagram per syscall); sockets with vectorized I/O go straight to
// ServeBatch (cmd/mosh-server uses udpbatch.NewUDPConn).
type PacketConn interface {
	// ReadFrom blocks for one datagram, copying it into buf.
	ReadFrom(buf []byte) (n int, src netem.Addr, err error)
	// WriteTo transmits one datagram, consuming wire before returning.
	WriteTo(wire []byte, dst netem.Addr) error
}

// Daemon multiplexes many SSP sessions over one socket.
type Daemon struct {
	cfg     Config
	reg     *registry
	timers  *timerHeap
	metrics Metrics
	nextID  atomic.Uint64
	send    func(dst netem.Addr, wire []byte)

	// openMu serializes OpenSession's capacity check against its insert so
	// concurrent opens cannot over-admit.
	openMu sync.Mutex

	// journal is the persistence state (nil when Config.StateDir is
	// empty); flushMu serializes flushes; flushReq coalesces early-flush
	// requests toward the journal loop. asyncJournal marks that the
	// journal loop owns retry timing (Serve mode), so the simulation
	// deadline hooks stand down.
	journal      *journal
	flushMu      sync.Mutex
	flushReq     chan struct{}
	asyncJournal atomic.Bool

	// quota is the per-source unauthenticated-datagram token bucket (nil
	// when disabled); shed is the inbox/egress pressure-shed policy.
	quota *unauthQuota
	shed  shedState

	// pipe is the stage-latency/echo pipeline (never nil); rec is the
	// flight recorder (nil when disabled — telemetry.Recorder methods are
	// nil-safe). dumpMu/lastDump rate-limit OnDegrade dumps per reason.
	pipe     *telemetry.Pipeline
	rec      *telemetry.Recorder
	dumpMu   sync.Mutex
	lastDump map[string]int64

	// serveConn remembers the batched connection Serve/ServeBatch runs on
	// so the egress flusher can write to it and Close can unblock its
	// pending read.
	serveConn atomic.Pointer[udpbatch.Conn]

	// Batched I/O state: pooled read buffers (ServeBatch), pooled egress
	// copies (RecycleWire), the daemon-wide egress ring, and the
	// demultiplexer/flush scratch (single reader / single sim driver;
	// egressMu serializes flush sweeps).
	readPool        *udpbatch.Pool
	wirePool        *udpbatch.Pool
	egress          *egressRing
	groupScratch    []sessGroup
	groupEpoch      uint64
	egressMu        sync.Mutex
	egressScratch   []egressEntry
	writeMsgScratch []udpbatch.Message

	startOnce sync.Once
	closeOnce sync.Once
	stop      chan struct{}

	// closing gates packet handling during shutdown: it is set BEFORE the
	// final journal flush, so no input can be delivered to an application
	// after the snapshot that a restore will resume from — that ordering
	// is what makes a clean shutdown exactly-once. Packets arriving in the
	// window are dropped; SSP retransmits them to the next incarnation.
	closing atomic.Bool
}

// New builds a daemon. Clock is required.
func New(cfg Config) (*Daemon, error) {
	if cfg.Clock == nil {
		return nil, errors.New("sessiond: Config.Clock is required")
	}
	if cfg.Width == 0 {
		cfg.Width = 80
	}
	if cfg.Height == 0 {
		cfg.Height = 24
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	if cfg.InboxDepth <= 0 {
		cfg.InboxDepth = 128
	}
	if cfg.UnbatchedIO && cfg.IOModel == IOModelMMsg {
		cfg.IOModel = IOModelLoop
	}
	if cfg.JournalInterval <= 0 {
		cfg.JournalInterval = DefaultJournalInterval
	}
	if cfg.SeqReserve == 0 {
		cfg.SeqReserve = DefaultSeqReserve
	}
	if cfg.EgressDepth <= 0 {
		cfg.EgressDepth = 4096
	}
	if cfg.FS == nil {
		cfg.FS = faultinject.OSFS{}
	}
	if cfg.JournalRetryMin <= 0 {
		cfg.JournalRetryMin = 100 * time.Millisecond
	}
	if cfg.JournalRetryMax <= 0 {
		cfg.JournalRetryMax = 10 * time.Second
	}
	if cfg.JournalRetryMax < cfg.JournalRetryMin {
		cfg.JournalRetryMax = cfg.JournalRetryMin
	}
	if cfg.JournalSuspendAfter == 0 {
		cfg.JournalSuspendAfter = 8
	}
	if cfg.UnauthQuotaBurst == 0 {
		cfg.UnauthQuotaBurst = DefaultUnauthQuotaBurst
	}
	if cfg.UnauthQuotaRate <= 0 {
		cfg.UnauthQuotaRate = DefaultUnauthQuotaRate
	}
	if cfg.ShedThreshold == 0 {
		cfg.ShedThreshold = DefaultShedThreshold
	}
	if cfg.ShedWindow <= 0 {
		cfg.ShedWindow = time.Second
	}
	if cfg.ShedHold <= 0 {
		cfg.ShedHold = 2 * time.Second
	}
	// Wire-buffer slots must hold any datagram this daemon's transport
	// can legitimately produce: the configured MTU (fragment contents)
	// plus headers, envelope, AEAD tag and slack. A truncated read would
	// fail authentication and, because SSP retransmits the identical
	// datagram, stall its session forever.
	bufSize := udpbatch.DefaultBufSize
	if cfg.Timing != nil && cfg.Timing.MTU > 0 {
		if need := cfg.Timing.MTU + 512; need > bufSize {
			bufSize = need
		}
	}
	d := &Daemon{
		cfg:      cfg,
		reg:      newRegistry(),
		timers:   newTimerHeap(),
		send:     cfg.Send,
		stop:     make(chan struct{}),
		flushReq: make(chan struct{}, 1),
		readPool: udpbatch.NewPool(bufSize, 4*udpbatch.DefaultBatch),
		wirePool: udpbatch.NewPool(bufSize, cfg.EgressDepth),
		egress:   newEgressRing(cfg.EgressDepth),
	}
	if cfg.UnauthQuotaBurst > 0 {
		d.quota = newUnauthQuota(float64(cfg.UnauthQuotaBurst), cfg.UnauthQuotaRate)
	}
	d.shed.threshold = int64(cfg.ShedThreshold)
	d.shed.window = cfg.ShedWindow
	d.shed.hold = cfg.ShedHold
	// Telemetry must exist before restore: sessions revived from the
	// journal get their probe wired at construction like fresh ones.
	d.pipe = cfg.Pipeline
	if d.pipe == nil {
		d.pipe = telemetry.NewPipeline()
	}
	if cfg.FlightRecorderSlots >= 0 {
		d.rec = telemetry.NewRecorder(cfg.FlightRecorderSlots)
	}
	d.lastDump = make(map[string]int64)
	if cfg.StateDir != "" {
		if err := cfg.FS.MkdirAll(cfg.StateDir, 0o700); err != nil {
			return nil, fmt.Errorf("sessiond: state dir: %w", err)
		}
		d.journal = newJournal(cfg)
		if err := d.restoreFromJournal(); err != nil {
			return nil, err
		}
		// Record the restart state and grant every restored session fresh
		// reservation headroom before any traffic flows.
		if err := d.FlushJournal(); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Metrics exposes the daemon's counters.
func (d *Daemon) Metrics() *Metrics { return &d.metrics }

// Pipeline exposes the stage-latency/echo telemetry (never nil).
func (d *Daemon) Pipeline() *telemetry.Pipeline { return d.pipe }

// FlightRecorder exposes the event ring (nil when disabled; the
// recorder's methods are nil-safe).
func (d *Daemon) FlightRecorder() *telemetry.Recorder { return d.rec }

// recordEv stores one flight-recorder event. The enabled check runs
// BEFORE the clock read, so with recording off (or disabled) the whole
// call is one atomic load and a branch — cheap enough for every packet.
func (d *Daemon) recordEv(code telemetry.Code, session, arg uint64) {
	if d.rec.Enabled() {
		d.rec.Record(code, session, arg, d.cfg.Clock.Now())
	}
}

// degradeDumpInterval rate-limits OnDegrade dumps: a sustained flood
// trips its degradation state on every packet, but one dump per reason
// per interval is what a human (or a log pipeline) can use.
const degradeDumpInterval = 10 * time.Second

// degrade records a degradation-state trip in the flight recorder and,
// when the embedder asked for dumps, hands it a rendered dump of the
// events leading up to the trip (rate limited per reason). Callers may
// hold session locks; OnDegrade must not call back into the daemon.
func (d *Daemon) degrade(reason string, code telemetry.Code, session, arg uint64) {
	d.recordEv(code, session, arg)
	cb := d.cfg.OnDegrade
	if cb == nil {
		return
	}
	now := d.cfg.Clock.Now().UnixNano()
	d.dumpMu.Lock()
	last, seen := d.lastDump[reason]
	if seen && now-last < int64(degradeDumpInterval) {
		d.dumpMu.Unlock()
		return
	}
	d.lastDump[reason] = now
	d.dumpMu.Unlock()
	cb(reason, d.FlightDump(reason))
}

// FlightDump renders the flight recorder human-readably: every buffered
// event, oldest first. Returns nil when the recorder is disabled. Also
// the SIGQUIT handler's payload in cmd/mosh-server.
func (d *Daemon) FlightDump(reason string) []byte {
	if d.rec == nil {
		return nil
	}
	now := d.cfg.Clock.Now()
	d.rec.Record(telemetry.EvDump, 0, 0, now)
	return d.rec.AppendDump(nil, reason, now)
}

// FlightDumpJSON is FlightDump as one machine-readable JSON document.
func (d *Daemon) FlightDumpJSON(reason string) []byte {
	if d.rec == nil {
		return nil
	}
	now := d.cfg.Clock.Now()
	d.rec.Record(telemetry.EvDump, 0, 0, now)
	return d.rec.AppendDumpJSON(nil, reason, now)
}

// SessionsLive reports the number of registered sessions.
func (d *Daemon) SessionsLive() int { return int(d.metrics.SessionsLive.Value()) }

// Lookup returns the live session with the given ID, or nil.
func (d *Daemon) Lookup(id uint64) *Session { return d.reg.lookup(id) }

// Sessions returns the live sessions in ascending ID order (a snapshot;
// sessions may be removed concurrently).
func (d *Daemon) Sessions() []*Session {
	var out []*Session
	d.reg.each(func(s *Session) { out = append(out, s) })
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

func (d *Daemon) inboxDepth() int { return d.cfg.InboxDepth }

// ---- Synchronous driving (simulation, tests) ----

// HandlePacket demultiplexes and processes one datagram synchronously:
// envelope parse, registry lookup, session receive, replies emitted via
// Send before it returns. This is the single-datagram virtual-time entry
// point (it accounts one read syscall per datagram — the unbatched
// baseline); batch-aware drivers use HandleBatch.
func (d *Daemon) HandlePacket(wire []byte, src netem.Addr) {
	d.metrics.ReadBatchCalls.Add(1)
	d.metrics.ReadBatchSizes.Observe(1)
	d.metrics.StackTraversalsIn.Add(1)
	// The modeled read syscall is instantaneous in virtual time; a
	// 0-duration observation keeps StageRead's count aligned with
	// read_batch_calls in both driving modes.
	d.pipe.Observe(telemetry.StageRead, 0)
	demuxStart := d.cfg.Clock.Now()
	s := d.route(wire)
	d.pipe.Observe(telemetry.StageDemux, d.cfg.Clock.Now().Sub(demuxStart))
	if s != nil {
		s.handle(wire, src)
	}
	d.flushEgress()
}

// route accounts an arriving datagram and resolves its session.
func (d *Daemon) route(wire []byte) *Session {
	d.metrics.PacketsIn.Add(1)
	d.metrics.BytesIn.Add(int64(len(wire)))
	id, _, err := network.ParseEnvelope(wire)
	if err != nil {
		d.metrics.DropsBadEnvelope.Add(1)
		return nil
	}
	s := d.reg.lookup(id)
	if s == nil {
		d.metrics.DropsUnknownSession.Add(1)
		return nil
	}
	return s
}

// TickDue runs every session whose deadline has arrived, then flushes
// their emissions as one egress sweep (sessions ticking at the same
// instant share write batches). The sim driver calls it from Pump; the
// async tick loop calls it from its sleeper. In simulation it also
// drives a due journal-retry (the async journal loop owns that job in
// Serve mode, keeping disk I/O off the tick loop).
func (d *Daemon) TickDue() {
	now := d.cfg.Clock.Now()
	for _, s := range d.timers.popDue(now) {
		s.tick()
	}
	if j := d.journal; j != nil && !d.asyncJournal.Load() {
		if at := j.retryAt.Load(); at != 0 && now.UnixNano() >= at {
			d.FlushJournal() // outcome recorded in metrics/backoff state
		}
	}
	d.flushEgress()
}

// NextDeadline reports the earliest pending deadline: session timers
// plus, in simulation mode, a pending journal-retry.
func (d *Daemon) NextDeadline() (time.Time, bool) {
	at, ok := d.timers.next()
	if j := d.journal; j != nil && !d.asyncJournal.Load() {
		if r := j.retryAt.Load(); r != 0 {
			if rt := time.Unix(0, r); !ok || rt.Before(at) {
				at, ok = rt, true
			}
		}
	}
	return at, ok
}

// Pump attaches the daemon to a simulation scheduler with a
// self-rescheduling timer (the virtual-time analogue of the Serve tick
// loop) and returns a wake function to call after delivering packets.
func (d *Daemon) Pump(sched *simclock.Scheduler) (wake func()) {
	var pump func()
	timer := sched.NewEventTimer(func() { pump() })
	pump = func() {
		d.TickDue()
		if at, ok := d.NextDeadline(); ok {
			timer.Reset(at)
		}
	}
	sched.AfterFunc(0, pump)
	return pump
}

// ---- Asynchronous driving (production) ----

// Start launches the next-deadline tick loop, the egress flusher (and,
// with persistence configured, the journal flush loop). It is called
// implicitly by Serve/ServeBatch and is idempotent. Requires a real
// clock.
func (d *Daemon) Start() {
	d.startOnce.Do(func() {
		go d.tickLoop()
		go d.egressLoop()
		if d.journal != nil {
			// The journal loop owns flush-retry timing from here on; the
			// simulation deadline hooks stand down so the tick loop never
			// does disk I/O.
			d.asyncJournal.Store(true)
			go d.journalLoop()
		}
	})
}

// tickLoop sleeps until the earliest session deadline and ticks every due
// session — one goroutine for the whole daemon, woken early whenever a new
// minimum is armed. The sleep goes through the injected Clock: deadlines
// are computed against Clock.Now, so sleeping on anything else (a real
// time.Timer, say) silently miscomputes every sleep the moment a non-real
// clock is injected.
func (d *Daemon) tickLoop() {
	timer := d.cfg.Clock.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		var sleeve <-chan time.Time
		if at, ok := d.timers.next(); ok {
			dur := at.Sub(d.cfg.Clock.Now())
			if dur < 0 {
				dur = 0
			}
			if !timer.Stop() {
				select {
				case <-timer.C():
				default:
				}
			}
			timer.Reset(dur)
			sleeve = timer.C()
		}
		select {
		case <-d.stop:
			return
		case <-d.timers.wake:
			// New earliest deadline; recompute the sleep.
		case <-sleeve:
			d.TickDue()
		}
	}
}

// Dispatch routes one datagram to its session's worker queue as a
// single-packet run. Tests drive it directly to exercise the concurrent
// path; the batched reader uses DispatchBatch. The wire buffer is
// retained until the worker processes it. Safe for concurrent use.
func (d *Daemon) Dispatch(wire []byte, src netem.Addr) {
	// One datagram handed in individually = one upstream read syscall:
	// accounting it keeps syscalls_avoided honest for embedders that
	// bypass the batched reader.
	d.metrics.ReadBatchCalls.Add(1)
	d.metrics.ReadBatchSizes.Observe(1)
	d.metrics.StackTraversalsIn.Add(1)
	d.pipe.Observe(telemetry.StageRead, 0)
	demuxStart := d.cfg.Clock.Now()
	s := d.route(wire)
	d.pipe.Observe(telemetry.StageDemux, d.cfg.Clock.Now().Sub(demuxStart))
	if s == nil {
		return
	}
	r := getRun(false)
	r.pkts = append(r.pkts, inPacket{wire: wire, src: src})
	d.deliverRun(s, r)
}

// Serve runs the daemon over pc through the loop adapter: one datagram
// per read syscall — the portable fallback path. Production servers with
// a vectorized socket call ServeBatch directly. It returns when the
// socket read fails (socket closed) or the daemon is closed; replies go
// out via the egress flusher onto pc.WriteTo.
func (d *Daemon) Serve(pc PacketConn) error {
	// Preserve Serve's historical read contract: a 64 KiB buffer per
	// datagram, whatever the source (the loop adapter reads one at a
	// time, so a handful of slots suffices).
	d.readPool = udpbatch.NewPool(64<<10, 8)
	return d.ServeBatch(udpbatch.NewLoopConn(pc))
}

// Close stops the tick loop, flushes the journal one final time (so a
// clean shutdown preserves every session for the next incarnation), removes
// every session, and — when the served connection supports Close —
// unblocks Serve's pending read so it returns.
func (d *Daemon) Close() {
	d.closeOnce.Do(func() {
		// Order matters for exactly-once delivery across a clean restart:
		// stop accepting input first (closing gate + stop channel), THEN
		// take the final snapshot. Any handle() in flight when the gate
		// rises holds its session lock and therefore completes before the
		// flush encodes that session.
		d.closing.Store(true)
		close(d.stop)
		if d.journal != nil {
			// The on-shutdown flush bypasses the retry gate and gets a few
			// bounded attempts: under a probabilistic fault schedule a
			// retry often lands, and this snapshot is the next
			// incarnation's whole world. Persistent failure is recorded in
			// metrics and the sessions are lost — the documented cost of
			// dying while the disk is refusing writes.
			for attempt := 0; attempt < 3; attempt++ {
				if err := d.flushJournal(true); err == nil {
					break
				}
			}
		}
	})
	// Give queued replies one final sweep before the transport goes away:
	// in simulation this keeps Close-time emission deterministic, and on a
	// real socket it drains what the flusher had not reached yet.
	d.flushEgress()
	if bcp := d.serveConn.Load(); bcp != nil {
		if closer, ok := (*bcp).(interface{ Close() error }); ok {
			closer.Close()
		}
	}
	d.reg.each(func(s *Session) {
		s.mu.Lock()
		s.removeLocked(&d.metrics.SessionsClosed)
		s.mu.Unlock()
	})
}

// ---- Per-session machinery ----

// worker drains one session's inbox (Serve mode), one run — several
// datagrams, one wakeup — at a time, recycling reader-owned wire buffers
// after handling.
func (s *Session) worker() {
	for {
		select {
		case <-s.done:
			// Drain anything still queued so the dispatch-queue gauge
			// does not leak the remainder when a session is removed.
			for {
				select {
				case r := <-s.inbox:
					s.queuedPkts.Add(-int64(len(r.pkts)))
					s.d.metrics.DispatchQueueDepth.Add(-int64(len(r.pkts)))
					s.d.freeRun(r)
				default:
					return
				}
			}
		case r := <-s.inbox:
			s.queuedPkts.Add(-int64(len(r.pkts)))
			s.d.metrics.DispatchQueueDepth.Add(-int64(len(r.pkts)))
			if !r.at.IsZero() {
				s.d.pipe.Observe(telemetry.StageQueueWait, s.d.cfg.Clock.Now().Sub(r.at))
			}
			for i := range r.pkts {
				s.handle(r.pkts[i].wire, r.pkts[i].src)
			}
			s.d.freeRun(r)
		}
	}
}

// handle processes one datagram for this session, emitting any replies.
func (s *Session) handle(wire []byte, src netem.Addr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.d.closing.Load() {
		s.d.metrics.DropsUnknownSession.Add(1)
		return
	}
	now := s.d.cfg.Clock.Now()
	if q := s.d.quota; q != nil && q.blocked(src, now) {
		// This source has been failing authentication faster than its
		// token bucket refills: refuse the datagram BEFORE the AEAD runs,
		// so a spoofed-envelope flood pays nothing but an envelope parse
		// and cannot starve live sessions of CPU.
		s.d.metrics.DropsUnauthQuota.Add(1)
		s.d.degrade("unauth-quota", telemetry.EvQuotaBlocked, s.ID, 0)
		return
	}
	roamsBefore := s.srv.Transport().Connection().RemoteAddrChanges()
	if err := s.srv.Receive(wire, src); err != nil {
		// Forged, replayed, stale or malformed: normal network noise at
		// this layer; the envelope got it here but the key said no.
		s.d.metrics.DropsAuth.Add(1)
		s.d.recordEv(telemetry.EvDropAuth, s.ID, 0)
		if q := s.d.quota; q != nil {
			q.charge(src, now)
		}
	} else {
		s.lastActive = now
		if q := s.d.quota; q != nil {
			// Forgive-on-success: an authentic datagram clears its
			// source's failure record, so a legitimate client sharing an
			// address with noise (NAT, injected corruption) can never be
			// locked out.
			q.forgive(src)
		}
		if roams := s.srv.Transport().Connection().RemoteAddrChanges(); roams > roamsBefore {
			s.d.metrics.RoamingEvents.Add(int64(roams - roamsBefore))
			s.d.recordEv(telemetry.EvRoam, s.ID, uint64(roams))
		}
		// An accepted datagram moved durable state: the replay floor at
		// minimum, usually also the delivered-input watermarks (and the
		// screen, via any host output it provoked).
		s.markDirty()
	}
	// Echo matching brackets the output flush: a frame minted during
	// Receive echoes output applied on earlier entries (match before the
	// flush adds new waiters), and a frame minted inside the flush's own
	// HostOutput tick echoes what it just applied (match again after).
	s.noteEchoLocked(now)
	s.flushHostOutputLocked(now)
	s.noteEchoLocked(now)
	s.maybeRequestFlushLocked()
	s.rearmLocked(now)
}

// tick advances timers for this session: due host output, the transport's
// sender timing, and the idle-eviction check.
func (s *Session) tick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	now := s.d.cfg.Clock.Now()
	// The tick loop popped this session's heap entry; whatever deadline
	// was armed is gone, so the rearm below must not dedup against it.
	s.lastArmed = time.Time{}
	s.flushHostOutputLocked(now)
	s.srv.Tick()
	if !s.d.cfg.DisableRowIntern {
		// Deduplicate identical screen rows across the fleet (prompts,
		// banners, blank rows). Memoized per row generation, so on an
		// unchanged screen this is a per-row integer compare.
		s.srv.Terminal().Framebuffer().InternRows()
	}
	// Both the flush's HostOutput tick and srv.Tick can mint the frame
	// that echoes the output applied above; one match pass covers both.
	s.noteEchoLocked(now)
	// Idle eviction applies only to sessions a client has actually used:
	// a pre-issued slot whose MOSH CONNECT line nobody has redeemed yet
	// waits indefinitely, like a listening mosh-server does.
	if idle := s.d.cfg.IdleTimeout; idle > 0 && now.Sub(s.lastActive) >= idle {
		if _, heard := s.srv.Transport().Connection().LastHeard(); heard {
			s.removeLocked(&s.d.metrics.SessionsEvicted)
			return
		}
	}
	s.maybeRequestFlushLocked()
	s.rearmLocked(now)
}

// hostInput feeds decoded user keystrokes to the host application and
// queues its (delayed) response. Called by core.Server during Receive,
// with s.mu held.
func (s *Session) hostInput(data []byte) {
	if s.app == nil {
		return
	}
	s.d.recordEv(telemetry.EvKeystroke, s.ID, uint64(len(data)))
	out, delay := s.app.Input(data)
	if len(out) == 0 {
		return
	}
	now := s.d.cfg.Clock.Now()
	at := now.Add(delay)
	// Host responses are serialized in input order, like a real pty.
	if n := len(s.pendingOut); n > 0 && at.Before(s.pendingOut[n-1].at) {
		at = s.pendingOut[n-1].at
	}
	// keyAt tags this output with its keystroke's arrival time so the
	// echo tracker can match it to the first frame that conveys it.
	s.pendingOut = append(s.pendingOut, timedOutput{at: at, keyAt: now, data: out})
}

// flushHostOutputLocked writes every due host response to the terminal.
func (s *Session) flushHostOutputLocked(now time.Time) {
	n := 0
	for n < len(s.pendingOut) && !s.pendingOut[n].at.After(now) {
		// The waiter joins the echo ring BEFORE the write: HostOutput
		// ticks the sender, and a frame minted there already carries
		// this output. A burst beyond the ring is sampled, not queued —
		// the ring is measurement, not accounting.
		if keyAt := s.pendingOut[n].keyAt; !keyAt.IsZero() && s.echoAwaitN < len(s.echoAwait) {
			s.echoAwait[s.echoAwaitN] = keyAt
			s.echoAwaitN++
		}
		s.srv.HostOutput(s.pendingOut[n].data)
		n++
	}
	if n > 0 {
		s.pendingOut = append(s.pendingOut[:0], s.pendingOut[n:]...)
		// Applied host output changed the screen and the pending-output
		// queue — both journaled state.
		s.markDirty()
	}
}

// noteEchoLocked is the server-side keystroke→echo matcher (the paper's
// Fig. 6 measurement): when the sender has minted a new state since the
// last call, that state is the first frame carrying every host output
// applied so far, so each waiting keystroke's end-to-end latency is
// now − keystroke arrival. Observed into the pipeline's echo histogram
// and Fig. 6 counters, the flight recorder, and Config.OnEcho.
func (s *Session) noteEchoLocked(now time.Time) {
	sent := s.srv.Transport().Sender().LastSentNum()
	if sent == s.lastSentNum {
		return
	}
	s.lastSentNum = sent
	s.d.recordEv(telemetry.EvFrameSent, s.ID, sent)
	if s.echoAwaitN == 0 {
		return
	}
	conn := s.srv.Transport().Connection()
	srtt := time.Duration(0)
	if conn.HaveRTT() {
		srtt = conn.SRTT(0)
	}
	for i := 0; i < s.echoAwaitN; i++ {
		lat := now.Sub(s.echoAwait[i])
		s.d.pipe.ObserveEcho(lat, srtt)
		s.d.recordEv(telemetry.EvEcho, s.ID, uint64(lat/time.Microsecond))
		if cb := s.d.cfg.OnEcho; cb != nil {
			cb(s.ID, lat, srtt)
		}
		s.echoAwait[i] = time.Time{}
	}
	s.echoAwaitN = 0
}

// rearmLocked recomputes this session's single heap deadline: the earliest
// of the transport's wait time, the next pending host response, and (for
// sessions a client has used) the idle-eviction horizon. The result is
// floored at minTickInterval ahead of now so a stale deadline can never
// spin the tick loop.
func (s *Session) rearmLocked(now time.Time) {
	wait := s.srv.WaitTime()
	if wait < minTickInterval {
		wait = minTickInterval
	}
	at := now.Add(wait)
	if len(s.pendingOut) > 0 && s.pendingOut[0].at.Before(at) {
		at = s.pendingOut[0].at
	}
	if idle := s.d.cfg.IdleTimeout; idle > 0 {
		if _, heard := s.srv.Transport().Connection().LastHeard(); heard {
			if idleAt := s.lastActive.Add(idle); idleAt.Before(at) {
				at = idleAt
			}
		}
	}
	if floor := now.Add(minTickInterval); at.Before(floor) {
		at = floor
	}
	// Steady-state receives often leave the deadline where it was; skip
	// the shared heap lock when nothing moved so packet handling across
	// sessions does not serialize on it.
	if at.Equal(s.lastArmed) {
		return
	}
	s.d.timers.arm(s, at)
	s.lastArmed = at
}

// emit queues one sealed, enveloped datagram toward the session's
// current reply target on the daemon egress ring; the flusher (or the
// simulation driver's synchronous flush) transmits it in a batch.
// Called by the transport with s.mu held. Roaming is fully per-session:
// the target is this session's datagram-layer address, which follows its
// latest authentic source independently of every other session on the
// socket.
func (s *Session) emit(wire []byte) {
	dst, ok := s.srv.Transport().Connection().RemoteAddr()
	if !ok {
		return // no authentic client packet yet: nowhere to send
	}
	if !s.d.enqueueEgress(dst, wire) {
		s.d.recordEv(telemetry.EvDropEgress, s.ID, 1)
	}
}
