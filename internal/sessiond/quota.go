package sessiond

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netem"
)

// This file is the daemon's defense against unauthenticated-datagram
// floods. The envelope is cleartext, so anyone can aim traffic at a live
// session ID; the key rejects it, but each rejection costs an AEAD pass.
// A per-source token bucket bounds how much of that work any one source
// can extract: sources are charged per authentication failure, refused
// once their bucket empties, and forgiven entirely by a single authentic
// datagram — so a legitimate client behind a noisy address can never be
// locked out, while a flood is cut off after its burst allowance.

// DefaultUnauthQuotaBurst is how many authentication failures a source
// may accumulate before being refused: generous enough for a roaming
// client replaying a stale address's worth of in-flight datagrams,
// trivial next to a flood.
const DefaultUnauthQuotaBurst = 64

// DefaultUnauthQuotaRate is the per-source refill in failures/second: a
// blocked source regains service this fast once it quiets down.
const DefaultUnauthQuotaRate = 16

// unauthQuotaMaxSources bounds the tracking map. A flood from more
// spoofed sources than this resets the table (losing its own history —
// the flood re-pays its burst) rather than letting an attacker grow
// daemon memory without bound.
const unauthQuotaMaxSources = 4096

type unauthBucket struct {
	tokens float64
	last   time.Time
}

// unauthQuota is the per-source token bucket. The common case — no
// authentication failures anywhere — is a single atomic load per
// datagram; the map and its lock are touched only while some source is
// actually misbehaving.
type unauthQuota struct {
	burst float64
	rate  float64 // tokens per second

	active atomic.Int64 // number of tracked sources (lock-free fast path)
	mu     sync.Mutex
	src    map[netem.Addr]*unauthBucket
}

func newUnauthQuota(burst, rate float64) *unauthQuota {
	return &unauthQuota{burst: burst, rate: rate, src: make(map[netem.Addr]*unauthBucket)}
}

// refillLocked advances b's bucket to now.
func (q *unauthQuota) refillLocked(b *unauthBucket, now time.Time) {
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens += q.rate * dt.Seconds()
		if b.tokens > q.burst {
			b.tokens = q.burst
		}
	}
	b.last = now
}

// blocked reports whether src has exhausted its failure allowance.
func (q *unauthQuota) blocked(src netem.Addr, now time.Time) bool {
	if q.active.Load() == 0 {
		return false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.src[src]
	if b == nil {
		return false
	}
	q.refillLocked(b, now)
	if b.tokens >= q.burst {
		// Fully healed: stop tracking the source at all.
		delete(q.src, src)
		q.active.Add(-1)
		return false
	}
	return b.tokens < 1
}

// charge records one authentication failure from src.
func (q *unauthQuota) charge(src netem.Addr, now time.Time) {
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.src[src]
	if b == nil {
		if len(q.src) >= unauthQuotaMaxSources {
			// Bounded memory beats per-source fairness under a spoofed
			// many-source flood: reset and let everyone re-pay the burst.
			clear(q.src)
			q.active.Store(0)
		}
		b = &unauthBucket{tokens: q.burst, last: now}
		q.src[src] = b
		q.active.Add(1)
	} else {
		q.refillLocked(b, now)
	}
	if b.tokens > 0 {
		b.tokens--
	}
}

// forgive clears src's failure record (an authentic datagram arrived).
func (q *unauthQuota) forgive(src netem.Addr) {
	if q.active.Load() == 0 {
		return
	}
	q.mu.Lock()
	if _, ok := q.src[src]; ok {
		delete(q.src, src)
		q.active.Add(-1)
	}
	q.mu.Unlock()
}
