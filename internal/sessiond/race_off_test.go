//go:build !race

package sessiond

// raceEnabled lets allocation guards skip under the race detector; see
// race_on_test.go.
const raceEnabled = false
