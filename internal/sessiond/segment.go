package sessiond

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/binio"
	"repro/internal/netem"
)

// This file is the log-segment codec of the incremental journal. The
// durable layout is a full checkpoint (sessions.journal — the version-2
// file persist.go encodes) plus an ordered tail of append-only segment
// files, one per flush batch:
//
//	sessions.journal.seg.<epoch>.<seq>
//
// Each segment carries a CRC-protected header naming the checkpoint epoch
// it extends, followed by CRC-framed records: counter/watermark deltas and
// screen row deltas for the sessions whose durable core actually changed
// since the previous flush, tombstones for closed sessions, and the
// session-ID issuance floor when it moved. Boot replays checkpoint +
// matching-epoch segments in sequence order; compaction folds the tail
// into a fresh checkpoint at epoch+1 and deletes the old segments — a
// crash between those two steps leaves stale-epoch segments that the next
// boot ignores and removes.
//
// Every record body is one of:
//
//	recMeta  — uvarint NextID (session-ID issuance floor)
//	recClose — uvarint ID (tombstone: the session closed)
//	recFull  — a complete appendSessionSnapshot record (new session, or a
//	           session whose screen changed too much for a delta to pay)
//	recDelta — counters, watermarks, pending output and only the screen
//	           rows whose generation moved since the last durable record
//
// The framing (uvarint length + body + CRC32-Castagnoli) matches the
// checkpoint's record framing, so the fuzz corpus and torn-tail recovery
// logic cover both.

// Segment record types (first body byte).
const (
	recMeta  = 1
	recClose = 2
	recFull  = 3
	recDelta = 4
)

const (
	segMagic   = "MOSHSEG1"
	segVersion = 1
)

// segSuffix builds segment file names under journalFileName; see
// segmentFileName.
const segSuffix = ".seg."

// segmentFileName names the segment file for one flush batch.
func segmentFileName(epoch, seq uint64) string {
	return journalFileName + segSuffix +
		strconv.FormatUint(epoch, 10) + "." + strconv.FormatUint(seq, 10)
}

// parseSegmentName recovers (epoch, seq) from a directory entry, rejecting
// everything that is not a well-formed segment file name.
func parseSegmentName(name string) (epoch, seq uint64, ok bool) {
	prefix := journalFileName + segSuffix
	if !strings.HasPrefix(name, prefix) {
		return 0, 0, false
	}
	rest := name[len(prefix):]
	dot := strings.IndexByte(rest, '.')
	if dot <= 0 || dot == len(rest)-1 {
		return 0, 0, false
	}
	epoch, err := strconv.ParseUint(rest[:dot], 10, 64)
	if err != nil {
		return 0, 0, false
	}
	seq, err = strconv.ParseUint(rest[dot+1:], 10, 64)
	if err != nil {
		return 0, 0, false
	}
	return epoch, seq, true
}

// appendSegmentHeader encodes the segment file prefix: magic, version,
// epoch, sequence, and a CRC over all of it. A header that fails any check
// invalidates the whole file (it cannot be placed in the log order).
func appendSegmentHeader(buf []byte, epoch, seq uint64) []byte {
	start := len(buf)
	buf = append(buf, segMagic...)
	buf = binary.AppendUvarint(buf, segVersion)
	buf = binary.AppendUvarint(buf, epoch)
	buf = binary.AppendUvarint(buf, seq)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[start:], crcTable))
}

// decodeSegmentHeader validates a segment file prefix and returns the
// record region that follows it.
func decodeSegmentHeader(data []byte) (epoch, seq uint64, records []byte, err error) {
	r := binio.NewReader(data)
	magic, ok := r.Bytes(len(segMagic))
	if !ok || string(magic) != segMagic {
		return 0, 0, nil, fmt.Errorf("%w: bad segment magic", ErrBadJournal)
	}
	ver, ok := r.Uvarint()
	if !ok || ver != segVersion {
		return 0, 0, nil, fmt.Errorf("%w: segment version", ErrBadJournal)
	}
	if epoch, ok = r.Uvarint(); !ok {
		return 0, 0, nil, ErrBadJournal
	}
	if seq, ok = r.Uvarint(); !ok {
		return 0, 0, nil, ErrBadJournal
	}
	hdrLen := len(data) - r.Len()
	sum, ok := r.Bytes(4)
	if !ok || binary.LittleEndian.Uint32(sum) != crc32.Checksum(data[:hdrLen], crcTable) {
		return 0, 0, nil, fmt.Errorf("%w: segment header checksum", ErrBadJournal)
	}
	return epoch, seq, r.Rest(), nil
}

// appendFramedRecord wraps one record body in the journal's record
// framing: uvarint length, body, CRC32 of the body.
func appendFramedRecord(buf, body []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	buf = append(buf, body...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(body, crcTable))
}

// decodeSegmentRecords splits a segment's record region into CRC-verified
// record bodies. It stops at the first failure: a torn append leaves a
// valid prefix and unlocatable bytes after it, and within one file
// everything after damage is untrustworthy. bad counts the abandonment
// (0 or 1). torn classifies the damage: true when the input simply ran
// out mid-frame (the shape a crashed append leaves — the prefix is a
// consistent smaller batch), false when a complete frame failed its
// checksum or carried a nonsense length (corruption of once-durable
// bytes, which the caller escalates to poisoning).
func decodeSegmentRecords(data []byte) (recs [][]byte, bad int, torn bool) {
	r := binio.NewReader(data)
	for r.Len() > 0 {
		rlen, lenOK := r.Uvarint()
		if !lenOK {
			return recs, 1, true // truncated length varint
		}
		if rlen > maxSnapshotLen || rlen == 0 {
			return recs, 1, false // nonsense length: corruption
		}
		body, bodyOK := r.Bytes(int(rlen))
		sum, sumOK := r.Bytes(4)
		if !bodyOK || !sumOK {
			return recs, 1, true // frame runs past the end: torn append
		}
		if binary.LittleEndian.Uint32(sum) != crc32.Checksum(body, crcTable) {
			return recs, 1, false // complete frame, bad sum: corruption
		}
		recs = append(recs, body)
	}
	return recs, 0, false
}

// appendDeltaBody encodes a recDelta record body for sn, carrying the
// changed grid rows named by rowIdx (ascending). The caller guarantees the
// last durable record for this session has the same dimensions and no
// scrollback. With a warmed buffer the encode performs no allocations.
func appendDeltaBody(buf []byte, sn *sessionSnapshot, rowIdx []int) []byte {
	buf = append(buf, recDelta)
	buf = binary.AppendUvarint(buf, sn.ID)
	buf = binary.AppendUvarint(buf, sn.NextSeq)
	buf = binary.AppendUvarint(buf, sn.ExpectedSeq)
	buf = binary.AppendUvarint(buf, sn.NextStateNum)
	buf = binary.AppendUvarint(buf, sn.RecvNum)
	buf = binary.AppendUvarint(buf, sn.StreamSize)
	var fl byte
	if sn.HaveRemote {
		fl |= 1
	}
	if sn.Heard {
		fl |= 2
	}
	buf = append(buf, fl)
	buf = binary.AppendUvarint(buf, uint64(sn.Remote.Host))
	buf = binary.AppendUvarint(buf, uint64(sn.Remote.Port))
	buf = binary.AppendVarint(buf, sn.LastActive.UnixNano())
	// Pending host output is tiny and churns as a unit: full replacement.
	buf = binary.AppendUvarint(buf, uint64(len(sn.PendingOut)))
	for _, po := range sn.PendingOut {
		buf = binary.AppendVarint(buf, po.at.UnixNano())
		buf = binary.AppendUvarint(buf, uint64(len(po.data)))
		buf = append(buf, po.data...)
	}
	buf = sn.FB.AppendMetaSnapshot(buf)
	buf = binary.AppendUvarint(buf, uint64(len(rowIdx)))
	for _, i := range rowIdx {
		buf = binary.AppendUvarint(buf, uint64(i))
		buf = sn.FB.AppendRowSnapshot(buf, i)
	}
	return buf
}

// journalReplay accumulates the boot-time replay of checkpoint + segments.
//
// Poisoning is how replay stays consistent across a damaged middle: when a
// non-final segment loses records (read error, bad header, failed CRC),
// every session restored so far moves to the poisoned set — later deltas
// for it may build on updates the gap swallowed, so they are ignored until
// a full record (or tombstone) re-establishes the session. Dropping a
// session is always nonce-safe: an unrestored session reseals nothing.
type journalReplay struct {
	snaps    map[uint64]*sessionSnapshot
	poisoned map[uint64]struct{}
	// nextID is the highest session-ID issuance floor seen (checkpoint
	// header and recMeta records).
	nextID uint64
}

func newJournalReplay(hdr journalHeader, snaps []*sessionSnapshot) *journalReplay {
	jr := &journalReplay{
		snaps:    make(map[uint64]*sessionSnapshot, len(snaps)),
		poisoned: make(map[uint64]struct{}),
		nextID:   hdr.NextID,
	}
	for _, sn := range snaps {
		jr.snaps[sn.ID] = sn
	}
	return jr
}

// poisonAll marks every session restored so far as unextendable by deltas.
func (jr *journalReplay) poisonAll() {
	for id := range jr.snaps {
		jr.poisoned[id] = struct{}{}
	}
	clear(jr.snaps)
}

// applyRecord folds one verified segment record into the replay state.
// false means the record body itself is malformed (the caller treats it
// like a CRC failure: abandon the rest of the segment).
func (jr *journalReplay) applyRecord(body []byte) bool {
	switch body[0] {
	case recMeta:
		r := binio.NewReader(body[1:])
		id, ok := r.Uvarint()
		if !ok || r.Len() != 0 {
			return false
		}
		if id > jr.nextID {
			jr.nextID = id
		}
		return true
	case recClose:
		r := binio.NewReader(body[1:])
		id, ok := r.Uvarint()
		if !ok || r.Len() != 0 {
			return false
		}
		delete(jr.snaps, id)
		delete(jr.poisoned, id)
		return true
	case recFull:
		sn, err := decodeSessionSnapshot(body[1:])
		if err != nil {
			return false
		}
		jr.snaps[sn.ID] = sn
		delete(jr.poisoned, sn.ID)
		return true
	case recDelta:
		return jr.applyDelta(body[1:])
	default:
		return false
	}
}

// applyDelta folds one recDelta body onto its base snapshot. Deltas for
// poisoned or unknown sessions are parsed for well-formedness cheaply and
// ignored (the session stays dropped until a recFull revives it).
func (jr *journalReplay) applyDelta(body []byte) bool {
	r := binio.NewReader(body)
	id, ok := r.Uvarint()
	if !ok {
		return false
	}
	sn := jr.snaps[id]
	if sn == nil {
		// Unknown base. After poisoning this is the expected shape (the
		// full record that introduced the session was lost with the gap);
		// otherwise the log itself is inconsistent. Either way the delta
		// cannot apply and the session stays dropped — always nonce-safe.
		_, poisoned := jr.poisoned[id]
		return poisoned
	}
	var next, exp, num, recv, stream uint64
	for _, dst := range []*uint64{&next, &exp, &num, &recv, &stream} {
		if *dst, ok = r.Uvarint(); !ok {
			return false
		}
	}
	fl, ok := r.Byte()
	if !ok {
		return false
	}
	host, ok := r.BoundedUvarint(uint64(^uint32(0)))
	if !ok {
		return false
	}
	port, ok := r.BoundedUvarint(uint64(^uint16(0)))
	if !ok {
		return false
	}
	nanos, ok := r.Varint()
	if !ok {
		return false
	}
	poCount, ok := r.BoundedUvarint(maxPendingOut)
	if !ok {
		return false
	}
	pendingOut := sn.PendingOut[:0]
	for i := uint64(0); i < poCount; i++ {
		at, ok := r.Varint()
		if !ok {
			return false
		}
		dlen, ok := r.BoundedUvarint(maxPendingOutBytes)
		if !ok {
			return false
		}
		data, ok := r.Bytes(int(dlen))
		if !ok {
			return false
		}
		pendingOut = append(pendingOut, timedOutput{
			at:   time.Unix(0, at),
			data: append([]byte(nil), data...),
		})
	}
	rest, err := sn.FB.ApplyMetaSnapshot(r.Rest())
	if err != nil {
		return false
	}
	rr := binio.NewReader(rest)
	rowCount, ok := rr.BoundedUvarint(uint64(sn.FB.H))
	if !ok {
		return false
	}
	rest = rr.Rest()
	for i := uint64(0); i < rowCount; i++ {
		ri := binio.NewReader(rest)
		idx, ok := ri.BoundedUvarint(uint64(sn.FB.H) - 1)
		if !ok {
			return false
		}
		rest = ri.Rest()
		if rest, err = sn.FB.ApplyRowSnapshot(rest, int(idx)); err != nil {
			return false
		}
	}
	if len(rest) != 0 {
		return false
	}
	// All parsed: commit the scalar fields.
	sn.NextSeq, sn.ExpectedSeq, sn.NextStateNum = next, exp, num
	sn.RecvNum, sn.StreamSize = recv, stream
	sn.HaveRemote = fl&1 != 0
	sn.Heard = fl&2 != 0
	sn.Remote = netem.Addr{Host: uint32(host), Port: uint16(port)}
	sn.LastActive = time.Unix(0, nanos)
	sn.PendingOut = pendingOut
	return true
}

// sessionsSorted returns the surviving snapshots in ascending ID order
// (deterministic restore order, like the monolithic journal's record
// order).
func (jr *journalReplay) sessionsSorted() []*sessionSnapshot {
	out := make([]*sessionSnapshot, 0, len(jr.snaps))
	for _, sn := range jr.snaps {
		out = append(out, sn)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}
