package sessiond

import (
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/simclock"
)

// TestJournalEncodeAllocFree guards the steady-state journal encode path:
// snapshotting one live session into a warmed buffer — counters, pending
// output, screen, scrollback window — performs no heap allocations, so
// the periodic flush never pressures the collector however many thousands
// of sessions the daemon carries.
func TestJournalEncodeAllocFree(t *testing.T) {
	sched := simclock.NewScheduler(time.Date(2012, 4, 1, 0, 0, 0, 0, time.UTC))
	d, err := New(Config{
		Clock:       sched,
		Send:        func(netem.Addr, []byte) {},
		IdleTimeout: -1,
		Scrollback:  64,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := d.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	// Populate the screen and history so the encode is representative.
	s.mu.Lock()
	for i := 0; i < 40; i++ {
		s.srv.HostOutput([]byte("\x1b[1;32muser@remote\x1b[0m:~$ ls -l output line\r\n"))
	}
	s.mu.Unlock()

	var sn sessionSnapshot
	var buf []byte
	encode := func() {
		s.mu.Lock()
		s.snapshotSessionLocked(&sn, DefaultSeqReserve)
		buf = appendSessionSnapshot(buf[:0], &sn)
		s.mu.Unlock()
	}
	encode() // warm the buffer
	if len(buf) == 0 {
		t.Fatal("empty snapshot encode")
	}
	if n := testing.AllocsPerRun(200, encode); n != 0 {
		t.Fatalf("journal encode allocates %.1f times per run, want 0", n)
	}
}
