package sessiond_test

import (
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/host"
	"repro/internal/netem"
	"repro/internal/network"
	"repro/internal/overlay"
	"repro/internal/sessiond"
	"repro/internal/simclock"
	"repro/internal/sspcrypto"
	"repro/internal/terminal"
)

// This file is the restart/roam/loss torture suite for crash-safe session
// resumption: the same 50-session workload runs once uninterrupted and
// once with the daemon serialized, killed, and restored mid-traffic (with
// a roaming cohort and a lossy cohort layered on top). After resumption,
// every client's converged screens must be byte-identical to the
// uninterrupted baseline, and no AES-OCB nonce may ever be sealed twice
// within a (session, direction) across the restart.

// nonceKey identifies one sealed datagram's nonce.
type nonceKey struct {
	id  uint64
	dir byte
	seq uint64
}

// recordNonce parses the cleartext envelope + sequence header of a wire
// datagram and counts its nonce.
func recordNonce(t *testing.T, seen map[nonceKey]int, wire []byte) {
	t.Helper()
	id, inner, err := network.ParseEnvelope(wire)
	if err != nil || len(inner) < 8 {
		t.Fatalf("unparseable wire datagram: %v", err)
	}
	header := binary.BigEndian.Uint64(inner[:8])
	seen[nonceKey{id: id, dir: byte(header >> 63), seq: header & sspcrypto.MaxSeq}]++
}

// maskedScreen serializes a framebuffer for cross-run comparison. EchoAck
// is masked (it encodes transport state numbers, which legitimately depend
// on frame batching and therefore on restart timing); client-side
// scrollback is optionally dropped (frames skipped during the outage never
// enter the surviving client's local history — by design, SSP skips
// intermediate states).
func maskedScreen(fb *terminal.Framebuffer, dropScrollback bool) string {
	c := fb.Clone()
	c.EchoAck = 0
	if dropScrollback {
		c.SetScrollbackLimit(-1)
	}
	return string(c.AppendSnapshot(nil))
}

// tortureScenario drives the workload and returns the per-checkpoint,
// per-session screen serializations.
func tortureScenario(t *testing.T, restart bool) [][]string {
	t.Helper()
	const (
		nSessions  = 50
		nKeys      = 24
		interval   = 150 * time.Millisecond
		burst1     = 12 // keys typed before the restart point
		burst2     = 18 // keys typed before the first checkpoint
		outage     = 120 * time.Millisecond
		scrollback = 64
	)

	sched := simclock.NewScheduler(epoch)
	nw := netem.NewNetwork(sched)
	daemonAddr := netem.Addr{Host: 0xBEEF, Port: 60001}
	paths := make(map[netem.Addr]*netem.Path)
	nonces := make(map[nonceKey]int)

	// Applications live OUTSIDE the daemon (they model ptys that survive a
	// frontend restart); the restored daemon reattaches them.
	apps := make(map[uint64]host.App)
	cfg := sessiond.Config{
		Clock: sched,
		Send: func(dst netem.Addr, wire []byte) {
			recordNonce(t, nonces, wire)
			if p := paths[dst]; p != nil {
				p.Down.Send(netem.Packet{Src: daemonAddr, Dst: dst, Payload: wire})
			}
		},
		NewApp: func(id uint64) host.App {
			a := host.NewShell(int64(id))
			apps[id] = a
			return a
		},
		RestoreApp:  func(id uint64) host.App { return apps[id] },
		IdleTimeout: -1,
		Scrollback:  scrollback,
	}
	if restart {
		cfg.StateDir = t.TempDir()
	}
	d, err := sessiond.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	attach := func(dm *sessiond.Daemon) {
		wake := dm.Pump(sched)
		nw.Attach(daemonAddr, func(p netem.Packet) {
			dm.HandlePacket(p.Payload, p.Src)
			wake()
		})
	}
	attach(d)

	type client struct {
		cl   *core.Client
		wake func()
		addr netem.Addr
		path *netem.Path
		id   uint64
	}
	clients := make([]*client, nSessions)
	for i := 0; i < nSessions; i++ {
		sess, err := d.OpenSession()
		if err != nil {
			t.Fatal(err)
		}
		params := lan()
		if i%3 == 1 {
			params.LossProb = 0.02 // lossy cohort
		}
		c := &client{addr: netem.Addr{Host: uint32(100 + i), Port: 9000}, id: sess.ID}
		c.path = netem.NewPath(nw, params, 7919*int64(i+1))
		paths[c.addr] = c.path
		c.cl, err = core.NewClient(core.ClientConfig{
			Key:         sess.Key(),
			Clock:       sched,
			Envelope:    &network.Envelope{ID: sess.ID},
			Predictions: overlay.Never,
			Emit: func(wire []byte) {
				recordNonce(t, nonces, wire)
				c.path.Up.Send(netem.Packet{Src: c.addr, Dst: daemonAddr, Payload: wire})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		c.wake = core.Pump(sched, c.cl)
		nw.Attach(c.addr, func(p netem.Packet) {
			c.cl.Receive(p.Payload, p.Src)
			c.wake()
		})
		clients[i] = c
	}

	// Key scripts: most sessions type text with a couple of commands; the
	// i%5==4 cohort hammers ENTER so command output scrolls the screen and
	// fills server-side scrollback (exercising its persistence).
	script := func(i, k int) byte {
		if i%5 == 4 {
			return '\r'
		}
		return "abcdefg\rhijk\rmnopqrstuvw"[k]
	}
	typeKey := func(k int) {
		for i, c := range clients {
			c.cl.UserBytes([]byte{script(i, k)})
			c.wake()
		}
		sched.RunFor(interval)
	}

	for k := 0; k < burst1; k++ {
		typeKey(k)
	}

	if restart {
		// Kill the daemon 30 ms after the last burst-1 keystroke: echoes,
		// acks, and the ENTER cohort's repaints are in flight. Close
		// performs the on-shutdown journal flush.
		sched.RunFor(30 * time.Millisecond)
		d.Close()
		sched.RunFor(outage) // packets arriving now hit the dead daemon
		d2, err := sessiond.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := d2.Metrics().SessionsRestored.Value(); got != nSessions {
			t.Fatalf("restored %d sessions, want %d", got, nSessions)
		}
		attach(d2)
		d = d2
	} else {
		sched.RunFor(30*time.Millisecond + outage)
	}

	for k := burst1; k < burst2; k++ {
		typeKey(k)
	}

	// Mid-run roaming: a third of the clients change network address —
	// in the restart run, against the restored daemon.
	roamsBefore := d.Metrics().RoamingEvents.Value()
	for i, c := range clients {
		if i%3 != 0 {
			continue
		}
		nw.Detach(c.addr)
		delete(paths, c.addr)
		c.addr = netem.Addr{Host: uint32(10000 + i), Port: 9100}
		paths[c.addr] = c.path
		cc := c
		nw.Attach(c.addr, func(p netem.Packet) {
			cc.cl.Receive(p.Payload, p.Src)
			cc.wake()
		})
	}

	converge := func(what string) {
		deadline := sched.Now().Add(30 * time.Second)
		for _, c := range clients {
			cc := c
			for {
				sess := d.Lookup(cc.id)
				if sess == nil {
					t.Fatalf("session %d vanished", cc.id)
				}
				equal := false
				sess.Do(func(srv *core.Server) {
					equal = cc.cl.ServerState().Equal(srv.Terminal().Framebuffer())
				})
				if equal {
					break
				}
				if !sched.Now().Before(deadline) {
					t.Fatalf("timeout waiting for %s: session %d never converged", what, cc.id)
				}
				sched.RunFor(5 * time.Millisecond)
			}
		}
	}
	checkpoint := func() []string {
		out := make([]string, nSessions)
		for i, c := range clients {
			sess := d.Lookup(c.id)
			var server string
			sess.Do(func(srv *core.Server) {
				// Server-side state INCLUDING scrollback: the restored
				// daemon must carry history, not just the visible grid.
				server = maskedScreen(srv.Terminal().Framebuffer(), false)
			})
			out[i] = maskedScreen(c.cl.ServerState(), true) + "|" + server
		}
		return out
	}

	var frames [][]string
	sched.RunFor(2 * time.Second)
	converge("checkpoint 1")
	frames = append(frames, checkpoint())

	for k := burst2; k < nKeys; k++ {
		typeKey(k)
	}
	sched.RunFor(2 * time.Second)
	converge("checkpoint 2")
	frames = append(frames, checkpoint())

	if d.Metrics().RoamingEvents.Value() <= roamsBefore {
		t.Fatal("roaming cohort produced no roaming events")
	}

	// The ENTER cohort must have scrolled deep enough that server-side
	// scrollback (persisted across the restart) is non-trivial.
	deepest := 0
	for i, c := range clients {
		if i%5 != 4 {
			continue
		}
		d.Lookup(c.id).Do(func(srv *core.Server) {
			if n := srv.Terminal().Framebuffer().ScrollbackLines(); n > deepest {
				deepest = n
			}
		})
	}
	if deepest == 0 {
		t.Fatal("ENTER cohort produced no server-side scrollback")
	}

	// Nonce uniqueness across the whole run, including across the restart:
	// SSP's security argument needs every (key, direction, sequence)
	// sealed at most once, ever.
	for k, n := range nonces {
		if n > 1 {
			t.Fatalf("nonce reused %d times: session %d dir %d seq %d", n, k.id, k.dir, k.seq)
		}
	}
	return frames
}

// TestRestartResumeTorture is the acceptance test for crash-safe
// resumption: 50 live sessions, daemon serialized and restored
// mid-traffic, every client resumes with byte-identical converged frames
// versus an uninterrupted baseline, with roaming and lossy cohorts layered
// on top and no nonce ever reused across the restart.
func TestRestartResumeTorture(t *testing.T) {
	baseline := tortureScenario(t, false)
	restarted := tortureScenario(t, true)
	if len(baseline) != len(restarted) {
		t.Fatalf("checkpoint count mismatch: %d vs %d", len(baseline), len(restarted))
	}
	for cp := range baseline {
		for i := range baseline[cp] {
			if baseline[cp][i] != restarted[cp][i] {
				t.Errorf("checkpoint %d session %d: screens diverged after restart (len %d vs %d)",
					cp, i, len(baseline[cp][i]), len(restarted[cp][i]))
			}
		}
	}
}

// TestRestoreStaleSnapshotEviction proves the boot path evicts sessions
// whose snapshots are idle past the eviction horizon instead of reviving
// them, while fresh sessions come back.
func TestRestoreStaleSnapshotEviction(t *testing.T) {
	sched := simclock.NewScheduler(epoch)
	dir := t.TempDir()
	cfg := sessiond.Config{
		Clock:       sched,
		Send:        func(netem.Addr, []byte) {},
		IdleTimeout: time.Hour,
		StateDir:    dir,
	}
	d, err := sessiond.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	staleSess, err := d.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	freshSess, err := d.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	// Mark the stale session as heard (only used sessions evict), then let
	// it idle past the horizon while the fresh one stays untouched (a
	// never-redeemed slot waits indefinitely).
	makeHeard(t, sched, d, staleSess)
	sched.RunFor(2 * time.Hour)
	if err := d.FlushJournal(); err != nil {
		t.Fatal(err)
	}
	// The live daemon would also have evicted it by now; what matters here
	// is that the *snapshot* is judged stale at boot.
	d.Close()

	d2, err := sessiond.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Lookup(freshSess.ID) == nil {
		t.Fatal("fresh (never-heard) session was not restored")
	}
	if d2.Lookup(staleSess.ID) != nil {
		t.Fatal("stale session was restored despite idling past the horizon")
	}
	if got := d2.Metrics().SnapshotsStale.Value(); got < 1 {
		t.Fatalf("SnapshotsStale = %d, want >= 1", got)
	}
	// Issuance continues above every journaled ID.
	next, err := d2.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if next.ID <= freshSess.ID {
		t.Fatalf("post-restore session id %d not above restored id %d", next.ID, freshSess.ID)
	}
}

// makeHeard drives one authentic client packet into the session so the
// daemon considers it used.
func makeHeard(t *testing.T, sched *simclock.Scheduler, d *sessiond.Daemon, sess *sessiond.Session) {
	t.Helper()
	var wires [][]byte
	cl, err := core.NewClient(core.ClientConfig{
		Key:      sess.Key(),
		Clock:    sched,
		Envelope: &network.Envelope{ID: sess.ID},
		Emit:     func(wire []byte) { wires = append(wires, append([]byte(nil), wire...)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.TypeRune('x')
	sched.RunFor(100 * time.Millisecond)
	cl.Tick()
	if len(wires) == 0 {
		t.Fatal("client emitted nothing")
	}
	for _, w := range wires {
		d.HandlePacket(w, netem.Addr{Host: 42, Port: 42})
	}
	if _, heard := heardOf(sess); !heard {
		t.Fatal("session did not hear the client")
	}
}

func heardOf(sess *sessiond.Session) (time.Time, bool) {
	var at time.Time
	var heard bool
	sess.Do(func(srv *core.Server) {
		at, heard = srv.Transport().Connection().LastHeard()
	})
	return at, heard
}
