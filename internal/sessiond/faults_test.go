package sessiond_test

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/netem"
	"repro/internal/network"
	"repro/internal/sessiond"
	"repro/internal/simclock"
	"repro/internal/udpbatch"
)

// spoofedWire builds a datagram with a valid envelope for session id and
// a payload no key will ever authenticate.
func spoofedWire(id uint64) []byte {
	wire := network.AppendEnvelope(nil, id)
	for i := 0; i < 24; i++ {
		wire = append(wire, byte(0xA5^i))
	}
	return wire
}

// seqRemaining reads a session's current send-reservation headroom.
func seqRemaining(s *sessiond.Session) uint64 {
	var rem uint64
	s.Do(func(srv *core.Server) {
		rem = srv.Transport().Connection().SeqRemaining()
	})
	return rem
}

// TestJournalFlushBackoff proves flush failures retry with exponential
// backoff in virtual time: attempt gaps grow from JournalRetryMin toward
// JournalRetryMax and the attempt count over a long outage stays small —
// no unbounded retry loop, no flush-request storm reaching the disk.
func TestJournalFlushBackoff(t *testing.T) {
	dir := t.TempDir()
	ffs := faultinject.NewFaultFS(nil, 1)
	w := newSimWorld(t, sessiond.Config{
		IdleTimeout:         -1,
		StateDir:            dir,
		FS:                  ffs,
		JournalRetryMin:     100 * time.Millisecond,
		JournalRetryMax:     2 * time.Second,
		JournalSuspendAfter: -1, // isolate backoff from suspension
	}, lan())
	sess, err := w.d.OpenSession()
	if err != nil {
		t.Fatal(err)
	}

	// Record every flush ATTEMPT (the open of the checkpoint staging file
	// or of an incremental segment) in virtual time, then fail everything.
	var attempts []time.Time
	ffs.SetOpHook(func(op faultinject.Op, path string) error {
		if op == faultinject.OpOpen &&
			(strings.Contains(path, ".tmp") || strings.Contains(path, ".seg.")) {
			attempts = append(attempts, w.sched.Now())
		}
		return nil
	})
	ffs.SetFaults(faultinject.FSFaults{FailAll: faultinject.ErrEIO})

	// Dirty the session so the flush has work: a clean incremental flush
	// is a no-op that never reaches the disk at all.
	sess.Do(func(*core.Server) {})
	if err := w.d.FlushJournal(); err == nil {
		t.Fatal("flush succeeded under FailAll")
	}
	w.wake()
	w.sched.RunFor(30 * time.Second)

	// A request storm during the outage must collapse into the backoff
	// gate, not reach the disk.
	for i := 0; i < 100; i++ {
		w.d.FlushJournal()
	}
	attemptsAfterStorm := len(attempts)

	if n := len(attempts); n < 8 || n > 25 {
		// Without backoff this would be hundreds (every session tick);
		// with min 100ms doubling to a 2s cap, 30s of outage is ~17.
		t.Fatalf("attempts over 30s outage = %d, want backoff-bounded [8, 25]", n)
	}
	if attemptsAfterStorm != len(attempts) {
		t.Fatalf("%d flush requests leaked through the backoff gate",
			attemptsAfterStorm-len(attempts))
	}
	gaps := make([]time.Duration, 0, len(attempts)-1)
	for i := 1; i < len(attempts); i++ {
		gaps = append(gaps, attempts[i].Sub(attempts[i-1]))
	}
	for i, g := range gaps {
		if g < 100*time.Millisecond {
			t.Fatalf("gap[%d] = %v, below JournalRetryMin", i, g)
		}
		if g > 2*time.Second+2*time.Second/4+10*time.Millisecond {
			t.Fatalf("gap[%d] = %v, above JournalRetryMax+jitter", i, g)
		}
	}
	// The first gaps double (jitter is at most backoff/4, strictly less
	// than the doubling), and the cap is eventually reached.
	if !(gaps[1] > gaps[0] && gaps[2] > gaps[1]) {
		t.Fatalf("early gaps not growing: %v", gaps[:3])
	}
	if max := gaps[len(gaps)-1]; max < 2*time.Second {
		t.Fatalf("final gap %v never reached the backoff cap", max)
	}
	if w.d.Metrics().JournalFlushFailures.Value() != int64(len(attempts)) {
		// Every failure is a real disk attempt (the boot flush succeeded
		// before the hook was armed; the manual kick-off is recorded too).
		t.Fatalf("journal_flush_failures = %d, attempts = %d",
			w.d.Metrics().JournalFlushFailures.Value(), len(attempts))
	}
	if w.d.Metrics().JournalRetryBackoffMs.Value() == 0 {
		t.Fatal("journal_retry_backoff_ms gauge is zero mid-outage")
	}

	// Recovery: heal the disk, let the pending retry land, gauge resets.
	ffs.SetFaults(faultinject.FSFaults{})
	w.runUntil(5*time.Second, func() bool {
		return w.d.Metrics().JournalRetryBackoffMs.Value() == 0
	}, "backoff reset after recovery")
}

// TestJournalSuspendResume drives the journal into the suspended-
// unjournaled state (writes fail, rename works): the stale snapshot is
// invalidated, ceilings lift so service continues, and a later recovery
// resumes journaling with re-capped reservations.
func TestJournalSuspendResume(t *testing.T) {
	dir := t.TempDir()
	ffs := faultinject.NewFaultFS(nil, 2)
	w := newSimWorld(t, sessiond.Config{
		IdleTimeout:         -1,
		StateDir:            dir,
		FS:                  ffs,
		SeqReserve:          128,
		JournalRetryMin:     50 * time.Millisecond,
		JournalRetryMax:     200 * time.Millisecond,
		JournalSuspendAfter: 3,
	}, lan())
	sess, err := w.d.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	cl := w.addClient(sess, netem.Addr{Host: 1, Port: 7000})
	cl.typeString("x")
	w.runUntil(2*time.Second, func() bool {
		return w.d.Metrics().PacketsIn.Value() > 0
	}, "client traffic")
	if err := w.d.FlushJournal(); err != nil {
		t.Fatal(err)
	}
	journalPath := filepath.Join(dir, "sessions.journal")
	if _, err := os.Stat(journalPath); err != nil {
		t.Fatalf("journal not on disk before the outage: %v", err)
	}

	// Disk starts rejecting writes (but rename still works — metadata
	// and data paths often fail independently). Dirty the session first:
	// an incremental flush with no changed sessions never touches the
	// disk, so it could neither fail nor drive the suspension counter.
	ffs.SetFaults(faultinject.FSFaults{WriteErrProb: 1})
	sess.Do(func(*core.Server) {})
	w.d.FlushJournal()
	w.wake()
	w.runUntil(10*time.Second, func() bool {
		return w.d.JournalSuspended() == 1
	}, "suspension (unjournaled mode)")

	if _, err := os.Stat(journalPath); !os.IsNotExist(err) {
		t.Fatalf("stale journal was not invalidated: %v", err)
	}
	if _, err := os.Stat(journalPath + ".suspended"); err != nil {
		t.Fatalf("invalidated journal not renamed aside: %v", err)
	}
	if got := w.d.Metrics().JournalSuspended.Value(); got != 1 {
		t.Fatalf("journal_suspended gauge = %d, want 1", got)
	}
	if rem := seqRemaining(sess); rem < 1<<40 {
		t.Fatalf("ceilings not lifted while unjournaled: remaining = %d", rem)
	}
	// Sessions opened DURING the suspension also run unthrottled.
	s2, err := w.d.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if rem := seqRemaining(s2); rem < 1<<40 {
		t.Fatalf("session opened while suspended is capped: remaining = %d", rem)
	}
	// Service continues: the client keeps typing and hearing back.
	before := w.d.Metrics().PacketsIn.Value()
	cl.typeString("still alive")
	w.runUntil(5*time.Second, func() bool {
		return w.d.Metrics().PacketsIn.Value() > before
	}, "service while suspended")

	// Recovery: flushes succeed again, journaling resumes, ceilings
	// re-cap at a fresh reservation.
	ffs.SetFaults(faultinject.FSFaults{})
	w.runUntil(10*time.Second, func() bool {
		return w.d.JournalSuspended() == 0
	}, "resume after recovery")
	if _, err := os.Stat(journalPath); err != nil {
		t.Fatalf("journal not rewritten after resume: %v", err)
	}
	if rem := seqRemaining(sess); rem > 2*128 {
		t.Fatalf("ceilings not re-capped after resume: remaining = %d", rem)
	}
	if got := w.d.Metrics().JournalSuspended.Value(); got != 0 {
		t.Fatalf("journal_suspended gauge = %d after resume, want 0", got)
	}
}

// TestJournalFailSafe drives the journal into the fail-safe suspension:
// the disk rejects EVERYTHING including the invalidating rename, so the
// stale snapshot stays restorable and the ceilings must stay binding.
func TestJournalFailSafe(t *testing.T) {
	dir := t.TempDir()
	ffs := faultinject.NewFaultFS(nil, 3)
	w := newSimWorld(t, sessiond.Config{
		IdleTimeout:         -1,
		StateDir:            dir,
		FS:                  ffs,
		SeqReserve:          128,
		JournalRetryMin:     50 * time.Millisecond,
		JournalRetryMax:     200 * time.Millisecond,
		JournalSuspendAfter: 3,
	}, lan())
	sess, err := w.d.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.d.FlushJournal(); err != nil {
		t.Fatal(err)
	}

	ffs.SetFaults(faultinject.FSFaults{FailAll: faultinject.ErrEACCES})
	sess.Do(func(*core.Server) {}) // dirty, so flushes attempt real I/O
	w.d.FlushJournal()
	w.wake()
	w.runUntil(10*time.Second, func() bool {
		return w.d.JournalSuspended() == 2
	}, "fail-safe suspension")

	if _, err := os.Stat(filepath.Join(dir, "sessions.journal")); err != nil {
		t.Fatalf("stale journal should survive in fail-safe mode: %v", err)
	}
	if rem := seqRemaining(sess); rem > 2*128 {
		t.Fatalf("fail-safe mode lifted ceilings: remaining = %d (nonce reuse risk)", rem)
	}
	if got := w.d.Metrics().JournalSuspended.Value(); got != 2 {
		t.Fatalf("journal_suspended gauge = %d, want 2", got)
	}

	// Recovery resumes normally from fail-safe too.
	ffs.SetFaults(faultinject.FSFaults{})
	w.runUntil(10*time.Second, func() bool {
		return w.d.JournalSuspended() == 0
	}, "resume from fail-safe")
}

// TestSuspendedCrashRestoresNothing proves the invalidation did its job:
// a daemon that dies while suspended-unjournaled must restore NO
// sessions — restoring the stale pre-suspension snapshot would revive
// counters below nonces used while the suspension lasted.
func TestSuspendedCrashRestoresNothing(t *testing.T) {
	dir := t.TempDir()
	ffs := faultinject.NewFaultFS(nil, 4)
	w := newSimWorld(t, sessiond.Config{
		IdleTimeout:         -1,
		StateDir:            dir,
		FS:                  ffs,
		JournalRetryMin:     50 * time.Millisecond,
		JournalRetryMax:     200 * time.Millisecond,
		JournalSuspendAfter: 2,
	}, lan())
	sess, err := w.d.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.d.FlushJournal(); err != nil {
		t.Fatal(err)
	}
	ffs.SetFaults(faultinject.FSFaults{WriteErrProb: 1})
	sess.Do(func(*core.Server) {}) // dirty, so flushes attempt real I/O
	w.d.FlushJournal()
	w.wake()
	w.runUntil(10*time.Second, func() bool {
		return w.d.JournalSuspended() == 1
	}, "suspension")

	// Hard crash (no Close, no final flush), then a healthy restart.
	d2, err := sessiond.New(sessiond.Config{
		Clock:       w.sched,
		IdleTimeout: -1,
		StateDir:    dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.Metrics().SessionsRestored.Value(); got != 0 {
		t.Fatalf("restart restored %d sessions from an invalidated journal", got)
	}
}

// TestUnauthQuotaFlood proves the per-source token bucket stops a
// spoofed-envelope flood after its burst allowance — before the AEAD
// runs — while a legitimate client on another address stays untouched,
// and a quieted source earns its service back at the refill rate.
func TestUnauthQuotaFlood(t *testing.T) {
	w := newSimWorld(t, sessiond.Config{
		IdleTimeout:      -1,
		UnauthQuotaBurst: 32,
		UnauthQuotaRate:  16,
	}, lan())
	sess, err := w.d.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	cl := w.addClient(sess, netem.Addr{Host: 1, Port: 7000})
	cl.typeString("hi")
	w.runUntil(2*time.Second, func() bool {
		return w.d.Metrics().PacketsIn.Value() > 0
	}, "legit traffic")

	// 500 spoofed datagrams from one source, all naming the live session.
	floodSrc := netem.Addr{Host: 66, Port: 666}
	wire := spoofedWire(sess.ID)
	authBefore := w.d.Metrics().DropsAuth.Value()
	for i := 0; i < 500; i++ {
		w.d.HandlePacket(wire, floodSrc)
	}
	authCost := w.d.Metrics().DropsAuth.Value() - authBefore
	quotaDrops := w.d.Metrics().DropsUnauthQuota.Value()
	if authCost != 32 {
		t.Fatalf("flood extracted %d AEAD passes, want exactly the burst (32)", authCost)
	}
	if quotaDrops != 500-32 {
		t.Fatalf("drops_unauth_quota = %d, want %d", quotaDrops, 500-32)
	}

	// The legitimate client is unaffected mid-flood.
	inBefore := w.d.Metrics().PacketsIn.Value()
	cl.typeString("still fine")
	w.runUntil(5*time.Second, func() bool {
		return w.d.Metrics().PacketsIn.Value() > inBefore
	}, "legit service during flood")

	// A quieted source refills: after 2 virtual seconds at 16/s the
	// bucket is full again, so a fresh (small) burst is charged, not
	// quota-refused.
	w.sched.RunFor(2 * time.Second)
	authBefore = w.d.Metrics().DropsAuth.Value()
	for i := 0; i < 10; i++ {
		w.d.HandlePacket(wire, floodSrc)
	}
	if got := w.d.Metrics().DropsAuth.Value() - authBefore; got != 10 {
		t.Fatalf("refilled source charged %d/10 — refill broken", got)
	}
}

// TestShedPolicy wedges a session's worker and floods its inbox: the
// pressure drops must trip the metered shed policy (shed_events,
// shedding gauge), and the gauge must clear after the hold expires.
func TestShedPolicy(t *testing.T) {
	sched := simclock.NewScheduler(epoch)
	d, err := sessiond.New(sessiond.Config{
		Clock:         sched,
		IdleTimeout:   -1,
		InboxDepth:    4,
		ShedThreshold: 16,
		ShedWindow:    time.Second,
		ShedHold:      2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	sess, err := d.OpenSession()
	if err != nil {
		t.Fatal(err)
	}

	// Wedge the session: Do holds the session lock, so the worker blocks
	// mid-handle and the inbox backs up.
	entered := make(chan struct{})
	release := make(chan struct{})
	var wedge sync.WaitGroup
	wedge.Add(1)
	go func() {
		defer wedge.Done()
		sess.Do(func(*core.Server) {
			close(entered)
			<-release
		})
	}()
	<-entered

	wire := spoofedWire(sess.ID)
	src := netem.Addr{Host: 9, Port: 99}
	for i := 0; i < 100; i++ {
		d.Dispatch(append([]byte(nil), wire...), src)
	}
	if d.Metrics().DropsQueueFull.Value() < 16 {
		t.Fatalf("flood produced only %d pressure drops", d.Metrics().DropsQueueFull.Value())
	}
	if d.Metrics().ShedEvents.Value() != 1 {
		t.Fatalf("shed_events = %d, want 1", d.Metrics().ShedEvents.Value())
	}
	if d.Metrics().Shedding.Value() != 1 {
		t.Fatal("shedding gauge not set while active")
	}

	// After the hold expires, the next delivery observes the lapse and
	// clears the gauge.
	close(release)
	wedge.Wait()
	sched.RunFor(3 * time.Second)
	d.Dispatch(append([]byte(nil), wire...), src)
	if d.Metrics().Shedding.Value() != 0 {
		t.Fatal("shedding gauge still set after the hold expired")
	}
}

// chanConn is an in-memory batched connection: a channel of datagrams
// in, a counter out. ReadBatch blocks like a real socket.
type chanConn struct {
	ch     chan udpbatch.Message
	closed chan struct{}
	once   sync.Once
	wrote  atomic.Int64
}

func newChanConn() *chanConn {
	return &chanConn{ch: make(chan udpbatch.Message, 64), closed: make(chan struct{})}
}

func (c *chanConn) BatchCap() int { return 4 }

func (c *chanConn) ReadBatch(msgs []udpbatch.Message) (int, error) {
	select {
	case m := <-c.ch:
		msgs[0].Buf = append(msgs[0].Buf[:0], m.Buf...)
		msgs[0].Addr = m.Addr
		return 1, nil
	case <-c.closed:
		return 0, net.ErrClosed
	}
}

func (c *chanConn) WriteBatch(msgs []udpbatch.Message) (int, error) {
	c.wrote.Add(int64(len(msgs)))
	return len(msgs), nil
}

func (c *chanConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

// TestServeBatchSurvivesTransientErrnos pins the satellite fix: the
// poller errnos a connected-UDP socket can surface (ETIMEDOUT,
// ECONNREFUSED) and kernel pressure (EINTR, ENOBUFS) must not kill the
// reader loop — while a genuinely fatal errno (persistent EACCES) still
// ends ServeBatch with that error.
func TestServeBatchSurvivesTransientErrnos(t *testing.T) {
	d, err := sessiond.New(sessiond.Config{Clock: simclock.Real{}, IdleTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := d.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	inner := newChanConn()
	fc := faultinject.NewConn(inner, 1)
	fc.ScriptReadError(
		faultinject.ErrEINTR, faultinject.ErrENOBUFS,
		faultinject.ErrETIMEDOUT, faultinject.ErrECONNREFUSED,
	)
	serveErr := make(chan error, 1)
	go func() { serveErr <- d.ServeBatch(fc) }()

	// The four scripted errnos drain first; then a real datagram must
	// still be read and routed — proof the reader survived them all.
	inner.ch <- udpbatch.Message{Buf: spoofedWire(sess.ID), Addr: netem.Addr{Host: 3, Port: 33}}
	deadline := time.Now().Add(10 * time.Second)
	for d.Metrics().ReadErrorsTransient.Value() < 4 || d.Metrics().PacketsIn.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("reader did not survive transient errnos: transient=%d in=%d",
				d.Metrics().ReadErrorsTransient.Value(), d.Metrics().PacketsIn.Value())
		}
		select {
		case err := <-serveErr:
			t.Fatalf("ServeBatch died on a transient errno: %v", err)
		case <-time.After(time.Millisecond):
		}
	}

	// A persistent EACCES (firewall rejection) is NOT transient: the
	// reader must surface it rather than spin forever.
	fc.ScriptReadError(faultinject.ErrEACCES)
	inner.ch <- udpbatch.Message{Buf: spoofedWire(sess.ID), Addr: netem.Addr{Host: 3, Port: 33}}
	select {
	case err := <-serveErr:
		if !errors.Is(err, syscall.EACCES) {
			t.Fatalf("ServeBatch returned %v, want EACCES", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ServeBatch did not return on a fatal errno")
	}
	d.Close()
}
