package sessiond

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/sspcrypto"
	"repro/internal/terminal"
)

// sampleSnapshot builds a realistic snapshot: a screen driven through the
// emulator (colors, wide characters, combining marks, scrolled-off
// history) plus every counter field populated.
func sampleSnapshot(seed int64) *sessionSnapshot {
	rng := rand.New(rand.NewSource(seed))
	emu := terminal.NewEmulator(80, 24)
	emu.Framebuffer().SetScrollbackLimit(32)
	emu.WriteString("\x1b]0;resume torture\x07")
	emu.WriteString("\x1b[1;31mbold red\x1b[0m plain \x1b[44mblue bg\x1b[0m\r\n")
	emu.WriteString("cjk: 你好世界 emoji: 🙂 combining: ȩ́\r\n")
	for i := 0; i < 30; i++ {
		emu.WriteString("scrolled line with content\r\n")
	}
	emu.WriteString("\x1b[5;10H\x1b[4mcursor parked here")

	key, _ := sspcrypto.KeyFromBytes(bytes.Repeat([]byte{byte(seed)}, sspcrypto.KeySize))
	sn := &sessionSnapshot{
		ID:           rng.Uint64(),
		Key:          key,
		OrigW:        80,
		OrigH:        24,
		NextSeq:      rng.Uint64() >> 1,
		ExpectedSeq:  rng.Uint64() >> 1,
		NextStateNum: rng.Uint64() >> 1,
		RecvNum:      rng.Uint64() >> 1,
		StreamSize:   rng.Uint64() >> 1,
		HaveRemote:   seed%2 == 0,
		Remote:       netem.Addr{Host: rng.Uint32(), Port: uint16(rng.Uint32())},
		Heard:        seed%3 == 0,
		LastActive:   time.Unix(0, rng.Int63()),
		PendingOut: []timedOutput{
			{at: time.Unix(0, rng.Int63()), data: []byte("queued host output\r\n")},
			{at: time.Unix(0, rng.Int63()), data: []byte{0x1b, '[', '2', 'J'}},
		},
		FB: emu.Framebuffer(),
	}
	return sn
}

// TestSessionSnapshotRoundTrip: decode(encode(s)) == s, field by field,
// with the framebuffer compared through its canonical serialization.
func TestSessionSnapshotRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		sn := sampleSnapshot(seed)
		enc := appendSessionSnapshot(nil, sn)
		got, err := decodeSessionSnapshot(enc)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if got.ID != sn.ID || got.Key != sn.Key || got.OrigW != sn.OrigW || got.OrigH != sn.OrigH ||
			got.NextSeq != sn.NextSeq || got.ExpectedSeq != sn.ExpectedSeq ||
			got.NextStateNum != sn.NextStateNum || got.RecvNum != sn.RecvNum ||
			got.StreamSize != sn.StreamSize || got.HaveRemote != sn.HaveRemote ||
			got.Remote != sn.Remote || got.Heard != sn.Heard ||
			!got.LastActive.Equal(sn.LastActive) {
			t.Fatalf("seed %d: scalar fields did not round-trip: %+v vs %+v", seed, got, sn)
		}
		if len(got.PendingOut) != len(sn.PendingOut) {
			t.Fatalf("seed %d: pending out length %d != %d", seed, len(got.PendingOut), len(sn.PendingOut))
		}
		for i := range got.PendingOut {
			if !got.PendingOut[i].at.Equal(sn.PendingOut[i].at) ||
				!bytes.Equal(got.PendingOut[i].data, sn.PendingOut[i].data) {
				t.Fatalf("seed %d: pending out %d did not round-trip", seed, i)
			}
		}
		// The codec is canonical for decoded values: re-encoding the
		// decoded snapshot reproduces the bytes exactly (framebuffer
		// included — cells, draw state, tabs, title, scrollback window).
		re := appendSessionSnapshot(nil, got)
		if !bytes.Equal(enc, re) {
			t.Fatalf("seed %d: re-encode differs (%d vs %d bytes)", seed, len(enc), len(re))
		}
		if got.FB.ScrollbackLines() != sn.FB.ScrollbackLines() {
			t.Fatalf("seed %d: scrollback %d != %d", seed, got.FB.ScrollbackLines(), sn.FB.ScrollbackLines())
		}
	}
}

// TestSessionSnapshotTruncation: every strict prefix of a valid encoding
// must error — never panic, never decode.
func TestSessionSnapshotTruncation(t *testing.T) {
	enc := appendSessionSnapshot(nil, sampleSnapshot(1))
	for n := 0; n < len(enc); n++ {
		if _, err := decodeSessionSnapshot(enc[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(enc))
		}
	}
}

// TestSessionSnapshotVersionSkew: an unknown snapshot version errors.
func TestSessionSnapshotVersionSkew(t *testing.T) {
	enc := appendSessionSnapshot(nil, sampleSnapshot(2))
	enc[0] = snapshotVersion + 1
	if _, err := decodeSessionSnapshot(enc); err == nil {
		t.Fatal("version-skewed snapshot decoded without error")
	}
}

// TestJournalDetectsCorruption: flipping any byte of a journal file is
// detected — a header error or a skipped (CRC-failed) record — and never
// silently accepted or panicking.
func TestJournalDetectsCorruption(t *testing.T) {
	recs := [][]byte{
		appendSessionSnapshot(nil, sampleSnapshot(3)),
		appendSessionSnapshot(nil, sampleSnapshot(4)),
	}
	hdr := journalHeader{NextID: 7, FlushedAt: time.Unix(0, 12345)}
	file := appendJournal(nil, hdr, recs)

	if _, snaps, bad, err := decodeJournal(file); err != nil || bad != 0 || len(snaps) != 2 {
		t.Fatalf("pristine journal: snaps=%d bad=%d err=%v", len(snaps), bad, err)
	}
	for pos := 0; pos < len(file); pos++ {
		mut := append([]byte(nil), file...)
		mut[pos] ^= 0x40
		_, snaps, bad, err := decodeJournal(mut)
		if err == nil && bad == 0 && len(snaps) == 2 {
			t.Fatalf("corruption at byte %d/%d went undetected", pos, len(file))
		}
	}
	// Truncation is always detected, and a torn record section must not
	// take down the whole load: once the header is intact, every record
	// that fully survived is still recovered.
	for n := 0; n < len(file); n++ {
		_, snaps, bad, err := decodeJournal(file[:n])
		if err == nil && bad == 0 {
			t.Fatalf("truncated journal (%d/%d bytes) went undetected", n, len(file))
		}
		if err != nil && len(snaps) > 0 {
			t.Fatalf("truncation at %d returned fatal error despite %d recovered records", n, len(snaps))
		}
	}
	// A torn tail right after the first complete record keeps that record:
	// strip the second record (its uvarint length prefix, bytes, CRC).
	rec1Framed := len(binary.AppendUvarint(nil, uint64(len(recs[1])))) + len(recs[1]) + 4
	cut := len(file) - rec1Framed
	if _, snaps, bad, err := decodeJournal(file[:cut]); err != nil || bad != 1 || len(snaps) != 1 {
		t.Fatalf("torn tail: snaps=%d bad=%d err=%v, want 1 recovered + 1 bad", len(snaps), bad, err)
	}
}

// FuzzSessionSnapshotCodec is the round-trip fuzz harness: arbitrary
// input must never panic; anything that decodes must re-encode to a
// stable canonical form.
func FuzzSessionSnapshotCodec(f *testing.F) {
	for seed := int64(0); seed < 4; seed++ {
		f.Add(appendSessionSnapshot(nil, sampleSnapshot(seed)))
	}
	f.Add([]byte{})
	f.Add([]byte{snapshotVersion})
	f.Fuzz(func(t *testing.T, data []byte) {
		sn, err := decodeSessionSnapshot(data)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		enc := appendSessionSnapshot(nil, sn)
		sn2, err := decodeSessionSnapshot(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		enc2 := appendSessionSnapshot(nil, sn2)
		if !bytes.Equal(enc, enc2) {
			t.Fatal("canonical encoding is not a fixed point")
		}
	})
}

// FuzzJournalDecode: arbitrary journal files must never panic the loader.
func FuzzJournalDecode(f *testing.F) {
	recs := [][]byte{appendSessionSnapshot(nil, sampleSnapshot(5))}
	f.Add(appendJournal(nil, journalHeader{NextID: 1, FlushedAt: time.Unix(0, 1)}, recs))
	f.Add([]byte(journalMagic))
	// Segment files land in the same state directory; feeding one to the
	// checkpoint decoder (and vice versa, see FuzzSegmentDecode) must fail
	// cleanly, never panic.
	seg := appendSegmentHeader(nil, 1, 2)
	seg = appendFramedRecord(seg, append([]byte{recFull}, appendSessionSnapshot(nil, sampleSnapshot(5))...))
	f.Add(seg)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _, _ = func() (journalHeader, []*sessionSnapshot, int, error) {
			return decodeJournal(data)
		}()
		if _, _, body, err := decodeSegmentHeader(data); err == nil {
			decodeSegmentRecords(body)
		}
	})
}
