package sessiond

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/netem"
	"repro/internal/telemetry"
	"repro/internal/udpbatch"
)

// This file is the daemon's batched packet pipeline — the refactor that
// removes the one-syscall-per-datagram cost from both directions of the
// serve loop.
//
// Ingress: the reader drains whole batches from the socket (one recvmmsg
// on Linux), demultiplexes each batch once, and delivers each session's
// datagrams as one run over a single channel send — one worker wakeup and
// one set of registry lookups per session per batch instead of per packet.
//
// Egress: sessions never write to the socket themselves. emit enqueues
// sealed wire onto a daemon-wide ring; a flusher drains the ring through
// WriteBatch (one sendmmsg for a whole sweep of sessions), with explicit
// backpressure (ring full → drop, SSP retransmits) and partial-write
// handling. In simulation the same ring is flushed synchronously at the
// end of every HandlePacket/HandleBatch/TickDue, so virtual-time runs
// exercise the identical code path deterministically.

// IOModel selects which provider geometry the simulation's syscall and
// stack-traversal accounting mirrors. The packet path is identical in
// every model — what changes is how many modeled syscalls and UDP-stack
// traversals a batch is charged, matching what the corresponding real
// provider (udpbatch's ladder) would pay on a served socket.
type IOModel int

const (
	// IOModelMMsg is the default: recvmmsg/sendmmsg geometry, one syscall
	// per DefaultBatch datagrams, one stack traversal per datagram.
	IOModelMMsg IOModel = iota
	// IOModelLoop is the portable one-datagram-per-syscall baseline
	// (Config.UnbatchedIO maps here).
	IOModelLoop
	// IOModelGSO is segmentation offload: same-peer equal-length runs
	// coalesce into super-datagrams (udpbatch.SegmentRun), so both
	// syscalls AND stack traversals are charged per run, not per
	// datagram.
	IOModelGSO
	// IOModelURing is the completion-based geometry: submissions and
	// completions move through shared rings, so read syscalls are charged
	// per drained completion-queue sweep; traversals stay per datagram
	// (no coalescing on this path).
	IOModelURing
)

func (m IOModel) String() string {
	switch m {
	case IOModelMMsg:
		return "mmsg"
	case IOModelLoop:
		return "loop"
	case IOModelGSO:
		return "gso"
	case IOModelURing:
		return "io_uring"
	}
	return "unknown"
}

// ParseIOModel maps a provider name — the same names the udpbatch ladder
// and the -udp-provider flag use — to the modeled geometry. Unknown names
// error rather than default, matching NewUDPConnProvider's refusal to
// silently substitute a provider.
func ParseIOModel(name string) (IOModel, error) {
	switch name {
	case "", "mmsg":
		return IOModelMMsg, nil
	case "loop":
		return IOModelLoop, nil
	case "gso":
		return IOModelGSO, nil
	case "uring", "io_uring":
		return IOModelURing, nil
	}
	return IOModelMMsg, fmt.Errorf("sessiond: unknown io model %q", name)
}

// uringCQSweep mirrors the io_uring provider's recv completion-queue
// depth: one modeled enter drains up to this many completions.
const uringCQSweep = 256

// inRun is one session's slice of a read batch: consecutive (in arrival
// order) datagrams for the same session, delivered to the worker as one
// channel message. Runs and their packet slices are pooled.
type inRun struct {
	pkts []inPacket
	// at is when the run was enqueued to the worker; the dequeue side
	// turns it into a queue_wait stage observation.
	at time.Time
	// pooled marks wire buffers drawn from the daemon's read pool (the
	// ServeBatch path); the worker recycles them after handling. Runs from
	// Dispatch/HandleBatch carry caller-owned buffers instead.
	pooled bool
}

var runPool = sync.Pool{New: func() any { return &inRun{} }}

func getRun(pooled bool) *inRun {
	r := runPool.Get().(*inRun)
	r.pooled = pooled
	return r
}

// freeRun recycles a run and, for reader-owned buffers, its wire storage.
func (d *Daemon) freeRun(r *inRun) {
	if r.pooled {
		for i := range r.pkts {
			d.readPool.Put(r.pkts[i].wire)
		}
	}
	for i := range r.pkts {
		r.pkts[i] = inPacket{}
	}
	r.pkts = r.pkts[:0]
	r.at = time.Time{}
	r.pooled = false
	runPool.Put(r)
}

// sessGroup pairs a session with its run while a batch is being
// demultiplexed.
type sessGroup struct {
	s   *Session
	run *inRun
}

// groupBatch demultiplexes one read batch into per-session runs,
// preserving arrival order within each session (SSP is order-sensitive
// per session and indifferent across sessions). The returned slice is
// daemon-owned scratch, valid until the next call; the caller consumes
// every run. Only the single reader (or the single simulation driver)
// may call it.
func (d *Daemon) groupBatch(msgs []udpbatch.Message, pooled bool) []sessGroup {
	demuxStart := d.cfg.Clock.Now()
	defer func() {
		d.pipe.Observe(telemetry.StageDemux, d.cfg.Clock.Now().Sub(demuxStart))
	}()
	// Clear the previous batch's entries first: retained *Session
	// pointers in the scratch backing would otherwise pin evicted
	// sessions (and their screen state) until a later batch happened to
	// overwrite the slot.
	stale := d.groupScratch[:cap(d.groupScratch)]
	for i := range stale {
		stale[i] = sessGroup{}
	}
	// Epoch-stamped O(1) group lookup: a session whose groupEpoch matches
	// this batch already has a slot; anything else starts one. Keeps the
	// demultiplex O(batch) even when a simulation hands over a very large
	// same-instant batch spanning hundreds of sessions.
	d.groupEpoch++
	epoch := d.groupEpoch
	groups := d.groupScratch[:0]
	for i := range msgs {
		s := d.route(msgs[i].Buf)
		if s == nil {
			if pooled {
				d.readPool.Put(msgs[i].Buf)
			}
			continue
		}
		if s.groupEpoch != epoch {
			s.groupEpoch = epoch
			s.groupIdx = len(groups)
			groups = append(groups, sessGroup{s: s, run: getRun(pooled)})
		}
		g := &groups[s.groupIdx]
		g.run.pkts = append(g.run.pkts, inPacket{wire: msgs[i].Buf, src: msgs[i].Addr})
	}
	d.groupScratch = groups[:0]
	return groups
}

// DispatchBatch routes one read batch to the session workers: one channel
// send per session present in the batch. The reader loop calls it; wire
// buffers are pool-owned and recycled by the workers after handling.
func (d *Daemon) DispatchBatch(msgs []udpbatch.Message) {
	d.dispatchGrouped(msgs, true)
}

func (d *Daemon) dispatchGrouped(msgs []udpbatch.Message, pooled bool) {
	groups := d.groupBatch(msgs, pooled)
	for _, g := range groups {
		d.deliverRun(g.s, g.run)
	}
	clearGroups(groups)
}

// clearGroups zeroes consumed scratch entries immediately so the *Session
// pointers cannot pin evicted sessions' screen state through an idle gap
// until the next batch arrives.
func clearGroups(groups []sessGroup) {
	for i := range groups {
		groups[i] = sessGroup{}
	}
}

// deliverRun enqueues one run to a session's worker, dropping it (SSP
// retransmission recovers) when the session's datagram budget
// (Config.InboxDepth packets, not runs) is exhausted.
func (d *Daemon) deliverRun(s *Session, r *inRun) {
	s.workerOnce.Do(func() { go s.worker() })
	n := int64(len(r.pkts))
	// Reserve the session's datagram budget atomically (Dispatch is
	// documented safe for concurrent use, so a check-then-act pair could
	// overshoot the bound): CAS in the reservation, give it back on any
	// failure path. A run larger than the remaining budget is admitted
	// PARTIALLY — its prefix fits, its tail drops — so an InboxDepth
	// smaller than one read batch bounds the session without starving it
	// (whole-run drops would also condemn every coalesced retransmission).
	// Under the shed policy every session's budget halves: sustained
	// pressure means offered load exceeds drain rate, and short queues
	// shed it where it arises (the flooded sessions) instead of letting
	// deep queues convert the overload into memory and latency.
	depth := int64(d.inboxDepth())
	if d.shedding() {
		if depth /= 2; depth < 1 {
			depth = 1
		}
	}
	var admit int64
	for {
		cur := s.queuedPkts.Load()
		avail := depth - cur
		if avail <= 0 {
			// Backpressure: a slow session must not stall the shared
			// reader nor pin more wire memory than the pre-batching
			// one-packet-per-slot bound allowed.
			d.metrics.DropsQueueFull.Add(n)
			d.recordEv(telemetry.EvDropQueue, s.ID, uint64(n))
			d.notePressureDrop(n)
			d.freeRun(r)
			return
		}
		admit = n
		if admit > avail {
			admit = avail
		}
		if s.queuedPkts.CompareAndSwap(cur, cur+admit) {
			break
		}
		// CAS contention: budget moved under us — recompute before
		// committing, so packets are never dropped against a stale limit.
	}
	if admit < n {
		tail := r.pkts[admit:]
		d.metrics.DropsQueueFull.Add(n - admit)
		d.recordEv(telemetry.EvDropQueue, s.ID, uint64(n-admit))
		d.notePressureDrop(n - admit)
		if r.pooled {
			for i := range tail {
				d.readPool.Put(tail[i].wire)
			}
		}
		for i := range tail {
			tail[i] = inPacket{}
		}
		r.pkts = r.pkts[:admit]
		n = admit
	}
	r.at = d.cfg.Clock.Now()
	select {
	case s.inbox <- r:
		d.metrics.DispatchQueueDepth.Add(n)
		// If the session was removed while we enqueued, its worker may
		// already have done its final drain; compensate so the queue-depth
		// gauge cannot leak a phantom entry.
		if s.closedFlag.Load() {
			select {
			case r2 := <-s.inbox:
				s.queuedPkts.Add(-int64(len(r2.pkts)))
				d.metrics.DispatchQueueDepth.Add(-int64(len(r2.pkts)))
				d.freeRun(r2)
			default:
			}
		}
	default:
		// The run channel itself filled (only possible under a flood of
		// single-packet runs): same backpressure, same recovery — and the
		// reservation goes back.
		s.queuedPkts.Add(-n)
		d.metrics.DropsQueueFull.Add(n)
		d.recordEv(telemetry.EvDropQueue, s.ID, uint64(n))
		d.notePressureDrop(n)
		d.freeRun(r)
	}
}

// HandleBatch is the synchronous batch entry point (virtual-time
// simulation): it demultiplexes the batch, processes each session's run
// in order, and flushes the egress ring before returning, so replies are
// emitted deterministically within the same scheduler instant. Read-side
// syscall accounting models a vectorized reader draining this batch.
func (d *Daemon) HandleBatch(msgs []udpbatch.Message) {
	if len(msgs) == 0 {
		return
	}
	d.recordEv(telemetry.EvBatchIn, 0, uint64(len(msgs)))
	// Model the read side per I/O geometry: how many syscalls would have
	// drained this batch, and how many times the UDP stack would have run.
	// GSO charges both per coalesced same-peer run (the GRO splitter hands
	// a whole train over as one super-datagram); io_uring charges reads
	// per completion-queue sweep; mmsg/loop charge one traversal per
	// datagram and syscalls per readBatchCap chunk.
	var units, unitCap int
	switch d.cfg.IOModel {
	case IOModelGSO:
		runs := segmentRuns(msgs)
		d.metrics.StackTraversalsIn.Add(int64(runs))
		units, unitCap = runs, udpbatch.GROReadSlots
	case IOModelURing:
		d.metrics.StackTraversalsIn.Add(int64(len(msgs)))
		units, unitCap = len(msgs), uringCQSweep
	default:
		d.metrics.StackTraversalsIn.Add(int64(len(msgs)))
		units, unitCap = len(msgs), d.readBatchCap()
	}
	calls := (units + unitCap - 1) / unitCap
	for i := 0; i < calls; i++ {
		// Attribute the batch's datagrams evenly across the modeled calls
		// so the size histogram stays meaningful in every model.
		size := len(msgs) / calls
		if i < len(msgs)%calls {
			size++
		}
		d.metrics.ReadBatchCalls.Add(1)
		d.metrics.ReadBatchSizes.Observe(size)
		// The modeled read syscall is instantaneous in virtual time; the
		// 0-duration marker keeps StageRead's count == read_batch_calls.
		d.pipe.Observe(telemetry.StageRead, 0)
	}
	groups := d.groupBatch(msgs, false)
	for _, g := range groups {
		for i := range g.run.pkts {
			g.s.handle(g.run.pkts[i].wire, g.run.pkts[i].src)
		}
		d.freeRun(g.run)
		// Keep ring occupancy bounded however large the batch: flushing
		// at the high-water mark mid-batch sends the same datagrams at
		// the same instant (no behavioral divergence from the unbatched
		// baseline, which flushes per packet), it only splits the sweep —
		// so a giant batch can never overflow the ring into drops that
		// the one-packet-at-a-time path would not have suffered.
		if d.egress.nearFull() {
			d.flushEgress()
		}
	}
	clearGroups(groups)
	d.flushEgress()
}

// readBatchCap reports how many datagrams one modeled read syscall moves.
func (d *Daemon) readBatchCap() int {
	if d.cfg.IOModel == IOModelLoop {
		return 1
	}
	return udpbatch.DefaultBatch
}

// writeBatchCap reports how many datagrams one modeled write syscall
// moves (the served connection's capability when there is one). The GSO
// model sweeps wider: one sendmmsg carries DefaultBatch segmented runs,
// so the sweep size is messages-per-call, not runs-per-call.
func (d *Daemon) writeBatchCap() int {
	if bcp := d.serveConn.Load(); bcp != nil && d.send == nil {
		return (*bcp).BatchCap()
	}
	switch d.cfg.IOModel {
	case IOModelLoop:
		return 1
	case IOModelGSO:
		return udpbatch.GSOBatch
	}
	return udpbatch.DefaultBatch
}

// segmentRuns walks msgs with the provider's run definition
// (udpbatch.SegmentRun) and reports how many coalesced super-datagrams
// would carry them — the modeled stack-traversal count for GSO paths.
func segmentRuns(msgs []udpbatch.Message) int {
	runs := 0
	for off := 0; off < len(msgs); {
		off += udpbatch.SegmentRun(msgs[off:])
		runs++
	}
	return runs
}

// ---- Egress ring ----

// egressEntry is one sealed, enveloped datagram awaiting transmission.
type egressEntry struct {
	dst  netem.Addr
	wire []byte
	// at is when the datagram entered the ring; the flusher turns it into
	// an egress_wait stage observation.
	at time.Time
	// pooled marks wire copied into a daemon pool buffer (RecycleWire
	// mode: the sender reuses its buffer as soon as emit returns, so the
	// ring must own a copy); the flusher recycles it after the write.
	pooled bool
}

// egressRing is a bounded MPSC queue between session workers and the
// egress flusher. Enqueue is called under session locks and must never
// block; overflow is reported to the caller, which drops the datagram
// (backpressure — SSP treats it as loss and retransmits).
type egressRing struct {
	mu      sync.Mutex
	entries []egressEntry
	head, n int
	wake    chan struct{}
}

func newEgressRing(capacity int) *egressRing {
	return &egressRing{
		entries: make([]egressEntry, capacity),
		wake:    make(chan struct{}, 1),
	}
}

func (r *egressRing) enqueue(e egressEntry) bool {
	r.mu.Lock()
	if r.n == len(r.entries) {
		r.mu.Unlock()
		return false
	}
	r.entries[(r.head+r.n)%len(r.entries)] = e
	r.n++
	r.mu.Unlock()
	select {
	case r.wake <- struct{}{}:
	default:
	}
	return true
}

// nearFull reports occupancy at or beyond half capacity — the point at
// which a synchronous driver should flush mid-batch rather than risk
// overflow drops a per-packet driver would never produce.
func (r *egressRing) nearFull() bool {
	r.mu.Lock()
	full := r.n >= len(r.entries)/2
	r.mu.Unlock()
	return full
}

// drainInto pops up to len(dst) entries in FIFO order.
func (r *egressRing) drainInto(dst []egressEntry) int {
	r.mu.Lock()
	n := r.n
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		idx := (r.head + i) % len(r.entries)
		dst[i] = r.entries[idx]
		r.entries[idx] = egressEntry{}
	}
	r.head = (r.head + n) % len(r.entries)
	r.n -= n
	r.mu.Unlock()
	return n
}

// enqueueEgress queues one sealed datagram for batched transmission,
// copying it into a pool buffer when the sender recycles its own.
// Called with the emitting session's lock held; never blocks. Reports
// whether the datagram was admitted (the caller attributes the drop).
func (d *Daemon) enqueueEgress(dst netem.Addr, wire []byte) bool {
	e := egressEntry{dst: dst, wire: wire, at: d.cfg.Clock.Now()}
	if d.cfg.RecycleWire {
		e.wire = append(d.wirePool.Get(), wire...)
		e.pooled = true
	}
	if !d.egress.enqueue(e) {
		d.metrics.DropsEgressFull.Add(1)
		d.notePressureDrop(1)
		if e.pooled {
			d.wirePool.Put(e.wire)
		}
		return false
	}
	// PacketsOut/BytesOut are counted in writeOut, per datagram actually
	// handed to the transport — a later write error must not leave
	// phantom "sent" traffic in the metrics.
	d.metrics.EgressQueueDepth.Add(1)
	return true
}

// flushEgress drains the ring completely, transmitting in batches of the
// write cap. It is safe from both the simulation driver and the async
// flusher (egressMu serializes whole sweeps); it must not be called with
// any session lock held.
func (d *Daemon) flushEgress() {
	d.egressMu.Lock()
	defer d.egressMu.Unlock()
	for {
		// The write cap can change after the first flush (a connection
		// attached by Serve/ServeBatch supersedes the pre-serve default);
		// sizing the sweep to the current cap keeps the write-batch
		// histogram and syscall accounting honest.
		if want := d.writeBatchCap(); len(d.egressScratch) != want {
			d.egressScratch = make([]egressEntry, want)
		}
		n := d.egress.drainInto(d.egressScratch)
		if n == 0 {
			return
		}
		d.metrics.EgressQueueDepth.Add(-int64(n))
		writeStart := d.cfg.Clock.Now()
		for i := 0; i < n; i++ {
			d.pipe.Observe(telemetry.StageEgressWait, writeStart.Sub(d.egressScratch[i].at))
		}
		d.writeOut(d.egressScratch[:n])
		d.pipe.Observe(telemetry.StageWrite, d.cfg.Clock.Now().Sub(writeStart))
		for i := 0; i < n; i++ {
			if d.egressScratch[i].pooled {
				d.wirePool.Put(d.egressScratch[i].wire)
			}
			d.egressScratch[i] = egressEntry{}
		}
	}
}

// writeOut transmits one drained sweep: through the embedder's Send in
// simulation, through the served batch connection in production —
// honoring WriteBatch's short-batch (retry the remainder) and error
// (drop the failing datagram, keep going) semantics.
func (d *Daemon) writeOut(entries []egressEntry) {
	if d.send != nil {
		// Modeled write accounting per I/O geometry: every model pays one
		// syscall per drained sweep (writeBatchCap sizes the sweep — 1 for
		// loop, DefaultBatch for mmsg, GSOBatch for gso, mirroring each
		// real provider's WriteBatch clamp: the GSO provider sweeps 8x
		// wider because run coalescing bounds its per-call msghdr count).
		// Stack traversals are what segmentation offload changes: the GSO
		// model charges one per same-peer segment run, computed with the
		// provider's own arithmetic (udpbatch.SegmentRun over the drained
		// entries); every other model pays one per datagram.
		msgs := d.writeMsgScratch[:0]
		for i := range entries {
			msgs = append(msgs, udpbatch.Message{Buf: entries[i].wire, Addr: entries[i].dst})
		}
		d.writeMsgScratch = msgs[:0]
		if d.cfg.IOModel == IOModelGSO {
			d.metrics.StackTraversalsOut.Add(int64(segmentRuns(msgs)))
		} else {
			d.metrics.StackTraversalsOut.Add(int64(len(entries)))
		}
		d.metrics.WriteBatchCalls.Add(1)
		d.metrics.WriteBatchSizes.Observe(len(entries))
		for i := range entries {
			d.send(entries[i].dst, entries[i].wire)
			d.metrics.PacketsOut.Add(1)
			d.metrics.BytesOut.Add(int64(len(entries[i].wire)))
		}
		return
	}
	bcp := d.serveConn.Load()
	if bcp == nil {
		return // not serving and no Send: nowhere to transmit (metrics-only embedder)
	}
	bc := *bcp
	// On a real socket, traversal counts come from the provider itself
	// when it meters them (GSO counts super-datagrams); otherwise one
	// traversal per transmitted datagram.
	tc, hasTC := bc.(udpbatch.TraversalCounter)
	var trav0 int64
	if hasTC {
		_, trav0 = tc.Traversals()
	}
	sentTotal := 0
	defer func() {
		if hasTC {
			_, trav1 := tc.Traversals()
			d.metrics.StackTraversalsOut.Add(trav1 - trav0)
		} else {
			d.metrics.StackTraversalsOut.Add(int64(sentTotal))
		}
	}()
	msgs := d.writeMsgScratch[:0]
	for i := range entries {
		msgs = append(msgs, udpbatch.Message{Buf: entries[i].wire, Addr: entries[i].dst})
	}
	d.writeMsgScratch = msgs[:0]
	for off := 0; off < len(msgs); {
		n, err := bc.WriteBatch(msgs[off:])
		d.metrics.WriteBatchCalls.Add(1)
		if n < 0 {
			n = 0 // defensive: a negative count must not rewind the sweep
		}
		if n > 0 {
			sentTotal += n
			d.metrics.WriteBatchSizes.Observe(n)
			d.metrics.PacketsOut.Add(int64(n))
			for i := off; i < off+n; i++ {
				d.metrics.BytesOut.Add(int64(len(msgs[i].Buf)))
			}
		}
		off += n
		if err != nil {
			// msgs[off] is undeliverable (e.g. a transient ICMP-induced
			// error): drop it and continue with the rest.
			d.metrics.EgressWriteErrors.Add(1)
			off++
			continue
		}
		if n == 0 {
			// No progress and no error: defensive guard against a stuck
			// implementation; drop the remainder rather than spin.
			d.metrics.EgressWriteErrors.Add(int64(len(msgs) - off))
			return
		}
	}
}

// egressLoop is the async flusher: it wakes when sessions enqueue and
// drains the ring through the socket in batches.
func (d *Daemon) egressLoop() {
	for {
		select {
		case <-d.stop:
			return
		case <-d.egress.wake:
			d.flushEgress()
		}
	}
}

// ServeBatch runs the daemon over a batched connection: the reader loop
// drains whole batches, demultiplexes them once, and feeds per-session
// runs to the workers, while the egress flusher writes replies out in
// batches. It returns when the connection read fails (socket closed) or
// the daemon is closed.
func (d *Daemon) ServeBatch(bc udpbatch.Conn) error {
	d.serveConn.Store(&bc)
	d.Start()
	slots := bc.BatchCap()
	if slots < 1 {
		slots = 1
	}
	if slots > udpbatch.DefaultBatch {
		slots = udpbatch.DefaultBatch
	}
	// Per-provider read-slot sizing: a provider whose reads can exceed
	// the MTU-derived pool class (a UDP_GRO super-datagram split, an
	// io_uring provided buffer) declares it via SlotSizer, and the pool
	// grows a matching super-buffer size class. Without this, an
	// oversized-but-legitimate datagram would truncate, fail the AEAD,
	// and — because SSP retransmits the identical datagram — fail on
	// every retry forever (a livelock, not a loss).
	slotSize := udpbatch.ReadSlotSize(bc, d.readPool.BufSize())
	if slotSize > d.readPool.BufSize() {
		d.readPool.EnableSuper(slotSize, 4*udpbatch.DefaultBatch)
	}
	// A one-datagram loop adapter (legacy Serve: 64 KiB scratch slots)
	// reuses its read buffer and enqueues an exact-size copy per datagram
	// — the pre-batching memory profile. The vectorized path hands its
	// right-sized pooled buffers to the workers zero-copy instead.
	copyOut := slots == 1
	msgs := make([]udpbatch.Message, slots)
	var copyScratch []udpbatch.Message
	if copyOut {
		copyScratch = make([]udpbatch.Message, slots)
	}
	// Read-side stack traversals: metered by the provider when it counts
	// super-datagrams (GSO), otherwise one per datagram.
	rtc, hasRTC := bc.(udpbatch.TraversalCounter)
	var travIn int64
	if hasRTC {
		travIn, _ = rtc.Traversals()
	}
	for {
		for i := range msgs {
			if msgs[i].Buf == nil {
				msgs[i].Buf = d.readPool.GetSized(slotSize)
			}
		}
		readStart := d.cfg.Clock.Now()
		n, err := bc.ReadBatch(msgs)
		if err != nil {
			select {
			case <-d.stop:
				return nil
			default:
			}
			if udpbatch.IsTransientIOError(err) {
				// Kernel pressure or one peer's ICMP error surfaced as an
				// errno (EINTR, ENOBUFS, ETIMEDOUT, ECONNREFUSED, …):
				// nothing is wrong with the socket, and dying here would
				// kill every session on it. Absorb, breathe, retry.
				d.metrics.ReadErrorsTransient.Add(1)
				d.cfg.Clock.Sleep(time.Millisecond)
				continue
			}
			return err
		}
		select {
		case <-d.stop:
			return nil
		default:
		}
		if n == 0 {
			// Transient-pressure yield (see udpbatch.Conn): back off
			// briefly instead of spinning failing syscalls at the exact
			// moment the kernel is short on memory.
			d.cfg.Clock.Sleep(time.Millisecond)
			continue
		}
		d.metrics.ReadBatchCalls.Add(1)
		d.metrics.ReadBatchSizes.Observe(n)
		if hasRTC {
			in1, _ := rtc.Traversals()
			d.metrics.StackTraversalsIn.Add(in1 - travIn)
			travIn = in1
		} else {
			d.metrics.StackTraversalsIn.Add(int64(n))
		}
		// StageRead on the real socket includes the blocking wait for the
		// first datagram — it is "time from wanting data to having it",
		// not pure syscall cost (an idle daemon shows large reads).
		d.pipe.Observe(telemetry.StageRead, d.cfg.Clock.Now().Sub(readStart))
		d.recordEv(telemetry.EvBatchIn, 0, uint64(n))
		if copyOut {
			for i := 0; i < n; i++ {
				copyScratch[i] = udpbatch.Message{
					Buf:  append([]byte(nil), msgs[i].Buf...),
					Addr: msgs[i].Addr,
				}
			}
			d.dispatchGrouped(copyScratch[:n], false)
			// The oversized read buffers stay here for reuse.
		} else {
			d.dispatchGrouped(msgs[:n], true)
			for i := 0; i < n; i++ {
				msgs[i].Buf = nil // ownership moved to the runs
			}
		}
	}
}
