package sessiond

import (
	"encoding/json"
	"expvar"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/terminal"
)

// TestScreenStateStats proves the resident screen-state gauges see what
// the sessions actually hold: pooled rows from scroll floods with history
// disabled, shared scrollback rows when history is enabled, and interned
// graphemes from unicode output.
func TestScreenStateStats(t *testing.T) {
	sched := simclock.NewScheduler(time.Date(2012, 4, 1, 0, 0, 0, 0, time.UTC))

	// Default daemon: scrollback disabled, rows recycle through the pool.
	d, err := New(Config{Clock: sched, IdleTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := d.OpenSession(); err != nil {
			t.Fatal(err)
		}
	}
	wake := d.Pump(sched)
	var lines strings.Builder
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&lines, "flood line %d with cafe\u0301 de\u0301ja\u0300 vu\r\n", i) // combining-built é à
	}
	d.reg.each(func(s *Session) {
		s.mu.Lock()
		s.srv.HostOutput([]byte(lines.String()))
		s.rearmLocked(sched.Now())
		s.mu.Unlock()
	})
	wake()
	sched.RunFor(2 * time.Second) // let sender ticks snapshot the screens
	st := d.ScreenStateStats()
	if st.Sessions != 3 {
		t.Fatalf("sampled %d sessions, want 3", st.Sessions)
	}
	if st.ScreenRows != 3*24 {
		t.Fatalf("screen rows = %d, want %d", st.ScreenRows, 3*24)
	}
	if st.SharedScreenRows == 0 {
		t.Fatal("sender snapshots exist but no grid rows register as shared")
	}
	if st.ScrollbackRows != 0 || st.ScrollbackArenaRows != 0 {
		t.Fatalf("history disabled but gauges show %d/%d scrollback rows",
			st.ScrollbackRows, st.ScrollbackArenaRows)
	}
	if terminal.InternedGraphemes() == 0 {
		t.Fatal("unicode output interned no graphemes")
	}

	// Opt-in scrollback: history accumulates and is visible in the gauge.
	d2, err := New(Config{Clock: sched, IdleTimeout: -1, Scrollback: 30})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := d2.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	s2.mu.Lock()
	s2.srv.HostOutput([]byte(lines.String()))
	s2.mu.Unlock()
	st2 := d2.ScreenStateStats()
	if st2.ScrollbackRows != 17 { // 40 lines on a 24-high screen: 17 scrolled off
		t.Fatalf("scrollback rows = %d, want 17", st2.ScrollbackRows)
	}
	if st2.ScrollbackArenaRows < st2.ScrollbackRows {
		t.Fatalf("arena rows %d < visible %d", st2.ScrollbackArenaRows, st2.ScrollbackRows)
	}

	// The expvar surface renders the same numbers.
	d2.PublishExpvar("sessiond_test")
	v := expvar.Get("sessiond_test.screen_state")
	if v == nil {
		t.Fatal("screen_state gauge not published")
	}
	var got ScreenStateStats
	if err := json.Unmarshal([]byte(v.String()), &got); err != nil {
		t.Fatalf("screen_state gauge is not JSON: %v", err)
	}
	if got.ScrollbackRows != 17 || got.Sessions != 1 {
		t.Fatalf("published gauge = %+v", got)
	}
	if g := expvar.Get("sessiond_test.interned_graphemes"); g == nil || g.String() == "0" {
		t.Fatalf("interned_graphemes gauge = %v", g)
	}
}

// TestDegradationMetricsPublished pins the fault-tolerance counters to
// the expvar surface: every gauge the graceful-degradation machinery
// drives (journal retry/suspension, unauth quota, shed policy, transient
// read errors) must be published and must render the live values.
func TestDegradationMetricsPublished(t *testing.T) {
	sched := simclock.NewScheduler(time.Date(2012, 4, 1, 0, 0, 0, 0, time.UTC))
	d, err := New(Config{Clock: sched, IdleTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	d.metrics.JournalFlushFailures.Add(3)
	d.metrics.JournalSuspended.Set(1)
	d.metrics.JournalRetryBackoffMs.Set(250)
	d.metrics.DropsUnauthQuota.Add(7)
	d.metrics.ShedEvents.Add(2)
	d.metrics.Shedding.Set(1)
	d.metrics.ReadErrorsTransient.Add(5)
	d.PublishExpvar("sessiond_degradation_test")
	for name, want := range map[string]string{
		"journal_flush_failures":   "3",
		"journal_suspended":        "1",
		"journal_retry_backoff_ms": "250",
		"drops_unauth_quota":       "7",
		"shed_events":              "2",
		"shedding":                 "1",
		"read_errors_transient":    "5",
	} {
		v := expvar.Get("sessiond_degradation_test." + name)
		if v == nil {
			t.Errorf("%s not published", name)
			continue
		}
		if v.String() != want {
			t.Errorf("%s = %s, want %s", name, v.String(), want)
		}
	}
}
