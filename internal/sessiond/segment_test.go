package sessiond

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/netem"
	"repro/internal/simclock"
)

// journalTestDaemon builds a loop-less daemon over a real state directory:
// FlushJournal is fully synchronous, so every test below is deterministic.
func journalTestDaemon(t *testing.T, dir string, mod func(*Config)) *Daemon {
	t.Helper()
	cfg := Config{
		Clock:       simclock.NewScheduler(time.Date(2012, 4, 1, 0, 0, 0, 0, time.UTC)),
		Send:        func(netem.Addr, []byte) {},
		IdleTimeout: -1,
		StateDir:    dir,
	}
	if mod != nil {
		mod(&cfg)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// dirtyOutput applies host output to the session's screen (and thereby
// marks it dirty for the next incremental flush).
func dirtyOutput(s *Session, text string) {
	s.Do(func(srv *core.Server) { srv.HostOutput([]byte(text)) })
}

// fbBytes returns the canonical serialization of the session's screen.
func fbBytes(s *Session) []byte {
	var b []byte
	s.Do(func(srv *core.Server) {
		b = srv.Terminal().Framebuffer().AppendSnapshot(nil)
	})
	return b
}

// dirListing returns the sorted file names of a state directory.
func dirListing(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names
}

func TestSegmentNameRoundTrip(t *testing.T) {
	for _, c := range []struct{ epoch, seq uint64 }{{0, 0}, {1, 0}, {7, 123}, {1 << 40, 1 << 50}} {
		name := segmentFileName(c.epoch, c.seq)
		ep, sq, ok := parseSegmentName(name)
		if !ok || ep != c.epoch || sq != c.seq {
			t.Fatalf("%q parsed to (%d, %d, %v), want (%d, %d)", name, ep, sq, ok, c.epoch, c.seq)
		}
	}
	for _, bad := range []string{
		"sessions.journal", "sessions.journal.tmp", "sessions.journal.seg.",
		"sessions.journal.seg.1", "sessions.journal.seg.1.", "sessions.journal.seg..2",
		"sessions.journal.seg.x.2", "sessions.journal.seg.1.y", "other.seg.1.2",
	} {
		if _, _, ok := parseSegmentName(bad); ok {
			t.Fatalf("%q parsed as a segment name", bad)
		}
	}
}

// TestSegmentRecordsTornVsCorrupt pins the damage taxonomy the replay
// relies on: every truncation of the record region is classified torn
// (recoverable prefix), while in-place byte damage on a complete frame is
// classified corruption.
func TestSegmentRecordsTornVsCorrupt(t *testing.T) {
	bodies := [][]byte{
		append([]byte{recMeta}, binary.AppendUvarint(nil, 99)...),
		append([]byte{recClose}, binary.AppendUvarint(nil, 7)...),
		append([]byte{recFull}, appendSessionSnapshot(nil, sampleSnapshot(11))...),
	}
	var region []byte
	boundary := map[int]int{0: 0} // byte offset -> complete records before it
	for i, b := range bodies {
		region = appendFramedRecord(region, b)
		boundary[len(region)] = i + 1
	}
	recs, bad, torn := decodeSegmentRecords(region)
	if bad != 0 || torn || len(recs) != len(bodies) {
		t.Fatalf("pristine region: recs=%d bad=%d torn=%v", len(recs), bad, torn)
	}
	for i, rec := range recs {
		if !bytes.Equal(rec, bodies[i]) {
			t.Fatalf("record %d did not round-trip", i)
		}
	}
	for n := 0; n < len(region); n++ {
		recs, bad, torn := decodeSegmentRecords(region[:n])
		if whole, atBoundary := boundary[n]; atBoundary {
			// A cut on a frame boundary is a clean, shorter segment.
			if bad != 0 || torn || len(recs) != whole {
				t.Fatalf("boundary cut at %d: recs=%d bad=%d torn=%v, want %d clean records", n, len(recs), bad, torn, whole)
			}
		} else if bad == 0 || !torn {
			t.Fatalf("mid-frame cut at %d: recs=%d bad=%d torn=%v, want torn damage", n, len(recs), bad, torn)
		}
		for i, rec := range recs {
			if !bytes.Equal(rec, bodies[i]) {
				t.Fatalf("truncation at %d: surviving record %d altered", n, i)
			}
		}
	}
	// Flip one byte inside the LAST record's frame: the complete-frame CRC
	// check must classify it as corruption, and earlier records survive.
	mut := append([]byte(nil), region...)
	mut[len(mut)-5] ^= 0x20
	recs, bad, torn = decodeSegmentRecords(mut)
	if bad == 0 || torn || len(recs) != len(bodies)-1 {
		t.Fatalf("corrupted tail frame: recs=%d bad=%d torn=%v, want prefix + corruption", len(recs), bad, torn)
	}
}

// TestIncrementalJournalRestoreRoundTrip drives several sessions through
// multiple incremental flushes (full records, then row deltas), kills the
// daemon without a final flush, and requires the restored screens to be
// byte-identical to the live ones — checkpoint + segment replay loses
// nothing.
func TestIncrementalJournalRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := journalTestDaemon(t, dir, nil)
	var sessions []*Session
	for i := 0; i < 3; i++ {
		s, err := d.OpenSession()
		if err != nil {
			t.Fatal(err)
		}
		dirtyOutput(s, fmt.Sprintf("\x1b[1;3%dmsession %d banner\x1b[0m\r\n", i+1, i))
		sessions = append(sessions, s)
	}
	if err := d.FlushJournal(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		for i, s := range sessions {
			dirtyOutput(s, fmt.Sprintf("round %d output on session %d\r\n", round, i))
		}
		if err := d.FlushJournal(); err != nil {
			t.Fatal(err)
		}
	}
	if segs := d.metrics.JournalSegments.Value(); segs < 5 {
		t.Fatalf("journal_segments = %d after 5 incremental flushes, want >= 5", segs)
	}

	live := make(map[uint64][]byte, len(sessions))
	for _, s := range sessions {
		live[s.ID] = fbBytes(s)
	}
	// Hard kill: no Close, no final flush. Boot a second daemon on the
	// same directory.
	d2 := journalTestDaemon(t, dir, nil)
	if got := d2.Metrics().SessionsRestored.Value(); got != int64(len(sessions)) {
		t.Fatalf("restored %d/%d sessions", got, len(sessions))
	}
	for id, want := range live {
		s2 := d2.Lookup(id)
		if s2 == nil {
			t.Fatalf("session %d missing after restore", id)
		}
		if got := fbBytes(s2); !bytes.Equal(got, want) {
			t.Fatalf("session %d: restored screen differs from live screen (%d vs %d bytes)", id, len(got), len(want))
		}
	}
	// Counters restored at-or-above the live ones (the reservation bump).
	for _, s := range sessions {
		var liveSeq, restSeq uint64
		s.Do(func(srv *core.Server) { liveSeq = srv.Transport().Connection().NextSeq() })
		d2.Lookup(s.ID).Do(func(srv *core.Server) { restSeq = srv.Transport().Connection().NextSeq() })
		if restSeq < liveSeq {
			t.Fatalf("session %d: restored NextSeq %d below live %d", s.ID, restSeq, liveSeq)
		}
	}
}

// TestJournalIdleSessionsZeroFlushBytes pins the dirty-tracking contract:
// once flushed, idle sessions cost ZERO bytes (and zero I/O of any kind)
// on subsequent flushes, and a single busy session among many costs only
// its own delta.
func TestJournalIdleSessionsZeroFlushBytes(t *testing.T) {
	dir := t.TempDir()
	d := journalTestDaemon(t, dir, nil)
	var sessions []*Session
	for i := 0; i < 8; i++ {
		s, err := d.OpenSession()
		if err != nil {
			t.Fatal(err)
		}
		dirtyOutput(s, fmt.Sprintf("user@host:~$ session %d ready\r\n", i))
		sessions = append(sessions, s)
	}
	preBatch := d.metrics.JournalBytes.Value()
	if err := d.FlushJournal(); err != nil {
		t.Fatal(err)
	}
	batchBytes := d.metrics.JournalBytes.Value() - preBatch
	if batchBytes <= 0 {
		t.Fatal("first incremental flush wrote nothing")
	}

	bytes0 := d.metrics.JournalBytes.Value()
	flushes0 := d.metrics.JournalFlushes.Value()
	listing0 := dirListing(t, dir)
	for i := 0; i < 5; i++ {
		if err := d.FlushJournal(); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.metrics.JournalBytes.Value(); got != bytes0 {
		t.Fatalf("idle flushes wrote %d bytes, want 0", got-bytes0)
	}
	if got := d.metrics.JournalFlushes.Value(); got != flushes0 {
		t.Fatalf("idle flushes counted as %d real flushes, want 0", got-flushes0)
	}
	if got := dirListing(t, dir); !equalStrings(got, listing0) {
		t.Fatalf("idle flushes touched the state directory: %v -> %v", listing0, got)
	}

	// One busy session among eight: the flush costs only that session's
	// delta, far below re-recording the whole batch.
	dirtyOutput(sessions[0], "one more line\r\n")
	if err := d.FlushJournal(); err != nil {
		t.Fatal(err)
	}
	delta := d.metrics.JournalBytes.Value() - bytes0
	if delta <= 0 {
		t.Fatal("busy-session flush wrote nothing")
	}
	if delta*4 > batchBytes {
		t.Fatalf("single-session delta %dB is not small against the 8-session batch %dB", delta, batchBytes)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestJournalCompaction drives the segment tail past the compaction
// threshold and verifies the fold: a fresh checkpoint supersedes the tail,
// the old segments are deleted, and a restart restores the exact state.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	d := journalTestDaemon(t, dir, func(c *Config) { c.JournalCompactMinBytes = 1 })
	s, err := d.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	runs0 := d.metrics.CompactionRuns.Value()
	line := strings.Repeat("compaction fodder line of output ", 4) + "\r\n"
	compacted := false
	for i := 0; i < 300; i++ {
		dirtyOutput(s, fmt.Sprintf("%04d %s", i, line))
		if err := d.FlushJournal(); err != nil {
			t.Fatal(err)
		}
		if d.metrics.CompactionRuns.Value() > runs0 {
			compacted = true
			break
		}
	}
	if !compacted {
		t.Fatal("segment tail never triggered compaction")
	}
	if got := d.metrics.JournalSegments.Value(); got != 0 {
		t.Fatalf("journal_segments = %d right after compaction, want 0", got)
	}
	for _, name := range dirListing(t, dir) {
		if strings.Contains(name, segSuffix) {
			t.Fatalf("stale segment %q survived compaction", name)
		}
	}
	want := fbBytes(s)
	d2 := journalTestDaemon(t, dir, nil)
	s2 := d2.Lookup(s.ID)
	if s2 == nil {
		t.Fatal("session missing after post-compaction restore")
	}
	if got := fbBytes(s2); !bytes.Equal(got, want) {
		t.Fatal("post-compaction restore differs from live screen")
	}
}

// TestMidCompactionCrashRestore simulates dying between the two steps of a
// compaction — the new-epoch checkpoint is durable but the superseded
// segments were never deleted — and requires the next boot to restore
// purely from the checkpoint, ignore the stale epoch, and clean it up.
func TestMidCompactionCrashRestore(t *testing.T) {
	dir := t.TempDir()
	d := journalTestDaemon(t, dir, func(c *Config) { c.JournalCompactMinBytes = 1 })
	s, err := d.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	runs0 := d.metrics.CompactionRuns.Value()
	stale := make(map[string][]byte)
	compacted := false
	for i := 0; i < 300; i++ {
		dirtyOutput(s, fmt.Sprintf("line %04d with enough content to add up\r\n", i))
		// Remember the segment files that exist BEFORE each flush: when
		// the compacting flush lands, these are exactly the files its
		// second step deletes.
		for _, name := range dirListing(t, dir) {
			if strings.Contains(name, segSuffix) {
				if _, seen := stale[name]; !seen {
					data, err := os.ReadFile(filepath.Join(dir, name))
					if err != nil {
						t.Fatal(err)
					}
					stale[name] = data
				}
			}
		}
		if err := d.FlushJournal(); err != nil {
			t.Fatal(err)
		}
		if d.metrics.CompactionRuns.Value() > runs0 {
			compacted = true
			break
		}
	}
	if !compacted || len(stale) == 0 {
		t.Fatalf("no compaction observed (compacted=%v staleSegs=%d)", compacted, len(stale))
	}
	want := fbBytes(s)
	// Crash happened before the deletes: put the superseded segments back.
	for name, data := range stale {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o600); err != nil {
			t.Fatal(err)
		}
	}
	d2 := journalTestDaemon(t, dir, nil)
	s2 := d2.Lookup(s.ID)
	if s2 == nil {
		t.Fatal("session missing after mid-compaction-crash restore")
	}
	if got := fbBytes(s2); !bytes.Equal(got, want) {
		t.Fatal("mid-compaction-crash restore differs from live screen")
	}
	// The stale epoch was recognized and cleaned up.
	for _, name := range dirListing(t, dir) {
		if _, wasStale := stale[name]; wasStale {
			t.Fatalf("stale segment %q survived the restoring boot", name)
		}
	}
}

// TestTornSegmentRestoresWithoutPoison pins the torn-tail policy: a short
// write tears the newest segment, and the next boot still restores EVERY
// session — the untouched ones exactly, the torn one at its last durable
// state — because truncation damage never poisons the replay.
func TestTornSegmentRestoresWithoutPoison(t *testing.T) {
	dir := t.TempDir()
	ffs := faultinject.NewFaultFS(nil, 21)
	d := journalTestDaemon(t, dir, func(c *Config) { c.FS = ffs })
	sA, err := d.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	sB, err := d.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	dirtyOutput(sA, "session A durable base\r\n")
	dirtyOutput(sB, "session B durable base\r\n")
	if err := d.FlushJournal(); err != nil {
		t.Fatal(err)
	}
	durableA, durableB := fbBytes(sA), fbBytes(sB)

	dirtyOutput(sA, "doomed update that the disk will tear\r\n")
	ffs.SetFaults(faultinject.FSFaults{ShortWriteProb: 1})
	if err := d.FlushJournal(); err == nil {
		t.Fatal("short-written flush reported success")
	}
	ffs.SetFaults(faultinject.FSFaults{})

	// Hard kill, healthy boot.
	d2 := journalTestDaemon(t, dir, nil)
	if got := d2.Metrics().SessionsRestored.Value(); got != 2 {
		t.Fatalf("restored %d/2 sessions after a torn segment — torn damage must not poison", got)
	}
	gotB := fbBytes(d2.Lookup(sB.ID))
	if !bytes.Equal(gotB, durableB) {
		t.Fatal("untouched session B changed across the torn-segment restore")
	}
	gotA := fbBytes(d2.Lookup(sA.ID))
	liveA := fbBytes(sA)
	if !bytes.Equal(gotA, durableA) && !bytes.Equal(gotA, liveA) {
		t.Fatal("session A restored to neither its durable base nor the torn update")
	}
}

// TestAppendRecordEncodeAllocFree guards the steady-state incremental
// flush encode: snapshotting a session, diffing row generations, and
// encoding the delta record into a warmed arena performs no heap
// allocations — the per-interval cost at thousands of sessions is pure
// CPU and bytes, never collector pressure.
func TestAppendRecordEncodeAllocFree(t *testing.T) {
	sched := simclock.NewScheduler(time.Date(2012, 4, 1, 0, 0, 0, 0, time.UTC))
	d, err := New(Config{
		Clock:       sched,
		Send:        func(netem.Addr, []byte) {},
		IdleTimeout: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := d.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	for i := 0; i < 20; i++ {
		s.srv.HostOutput([]byte("\x1b[32mbase\x1b[0m screen content line\r\n"))
	}
	fb := s.srv.Terminal().Framebuffer()
	gens := make([]uint64, fb.H)
	for i := 0; i < fb.H; i++ {
		gens[i] = fb.RowGen(i)
	}
	// A couple of rows move past the recorded base: the typical
	// steady-state delta shape.
	s.srv.HostOutput([]byte("delta row one\r\n"))
	s.srv.HostOutput([]byte("delta row two\r\n"))
	s.mu.Unlock()

	var sn sessionSnapshot
	var buf []byte
	var rowIdx []int
	encode := func() {
		s.mu.Lock()
		s.snapshotSessionLocked(&sn, DefaultSeqReserve)
		fb := sn.FB
		rowIdx = rowIdx[:0]
		for i := 0; i < fb.H; i++ {
			if fb.RowGen(i) != gens[i] {
				rowIdx = append(rowIdx, i)
			}
		}
		buf = appendDeltaBody(buf[:0], &sn, rowIdx)
		s.mu.Unlock()
	}
	encode() // warm buffers
	if len(rowIdx) == 0 || len(buf) == 0 {
		t.Fatalf("delta encode produced nothing (rows=%d bytes=%d)", len(rowIdx), len(buf))
	}
	if n := testing.AllocsPerRun(200, encode); n != 0 {
		t.Fatalf("delta record encode allocates %.1f times per run, want 0", n)
	}
}

// FuzzSegmentDecode: arbitrary segment files — and every truncation of a
// valid one — must never panic the replay, whatever mix of full, delta,
// tombstone and meta records they decode into.
func FuzzSegmentDecode(f *testing.F) {
	base := sampleSnapshot(6)
	var file []byte
	file = appendSegmentHeader(file, 3, 7)
	file = appendFramedRecord(file, append([]byte{recMeta}, binary.AppendUvarint(nil, 42)...))
	file = appendFramedRecord(file, append([]byte{recClose}, binary.AppendUvarint(nil, 9)...))
	file = appendFramedRecord(file, append([]byte{recFull}, appendSessionSnapshot(nil, base)...))
	file = appendFramedRecord(file, appendDeltaBody(nil, base, []int{0, 2, 5}))
	f.Add(file)
	f.Add(file[:len(file)/2])
	f.Add(file[:11])
	f.Add([]byte(segMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, body, err := decodeSegmentHeader(data)
		if err != nil {
			return
		}
		recs, _, _ := decodeSegmentRecords(body)
		replay := newJournalReplay(journalHeader{NextID: 1}, []*sessionSnapshot{sampleSnapshot(6)})
		for _, rec := range recs {
			if !replay.applyRecord(rec) {
				break
			}
		}
	})
}
