package sessiond_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/host"
	"repro/internal/netem"
	"repro/internal/network"
	"repro/internal/overlay"
	"repro/internal/sessiond"
	"repro/internal/simclock"
	"repro/internal/sspcrypto"
	"repro/internal/terminal"
)

var epoch = time.Date(2012, 4, 1, 0, 0, 0, 0, time.UTC)

// simWorld is a virtual-time world with one daemon behind one address and
// any number of clients, each on its own emulated path.
type simWorld struct {
	t          *testing.T
	sched      *simclock.Scheduler
	nw         *netem.Network
	d          *sessiond.Daemon
	wake       func()
	daemonAddr netem.Addr
	paths      map[netem.Addr]*netem.Path
	params     netem.LinkParams
	seed       int64
}

func newSimWorld(t *testing.T, cfg sessiond.Config, params netem.LinkParams) *simWorld {
	t.Helper()
	w := &simWorld{
		t:          t,
		sched:      simclock.NewScheduler(epoch),
		daemonAddr: netem.Addr{Host: 9999, Port: 60001},
		paths:      make(map[netem.Addr]*netem.Path),
		params:     params,
		seed:       1,
	}
	w.nw = netem.NewNetwork(w.sched)
	cfg.Clock = w.sched
	cfg.Send = func(dst netem.Addr, wire []byte) {
		if p := w.paths[dst]; p != nil {
			p.Down.Send(netem.Packet{Src: w.daemonAddr, Dst: dst, Payload: wire})
		}
	}
	var err error
	w.d, err = sessiond.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.wake = w.d.Pump(w.sched)
	w.nw.Attach(w.daemonAddr, func(p netem.Packet) {
		w.d.HandlePacket(p.Payload, p.Src)
		w.wake()
	})
	return w
}

// simClient is one emulated Mosh client attached to the daemon's socket.
type simClient struct {
	w    *simWorld
	cl   *core.Client
	addr netem.Addr
	path *netem.Path
	wake func()
	// dead silences the client's uplink (a user who closed the laptop);
	// its session goes idle from the daemon's point of view.
	dead bool
}

func (w *simWorld) addClient(sess *sessiond.Session, addr netem.Addr) *simClient {
	w.t.Helper()
	c := &simClient{w: w, addr: addr}
	w.seed++
	c.path = netem.NewPath(w.nw, w.params, w.seed)
	w.paths[addr] = c.path
	var err error
	c.cl, err = core.NewClient(core.ClientConfig{
		Key:         sess.Key(),
		Clock:       w.sched,
		Envelope:    &network.Envelope{ID: sess.ID},
		Predictions: overlay.Never,
		Emit: func(wire []byte) {
			if c.dead {
				return
			}
			c.path.Up.Send(netem.Packet{Src: c.addr, Dst: w.daemonAddr, Payload: wire})
		},
	})
	if err != nil {
		w.t.Fatal(err)
	}
	c.wake = core.Pump(w.sched, c.cl)
	w.nw.Attach(addr, func(p netem.Packet) {
		c.cl.Receive(p.Payload, p.Src)
		c.wake()
	})
	return c
}

// roamTo moves the client to a new source address mid-session, as a mobile
// client changing networks does.
func (c *simClient) roamTo(addr netem.Addr) {
	c.w.nw.Detach(c.addr)
	delete(c.w.paths, c.addr)
	c.addr = addr
	c.w.paths[addr] = c.path
	c.w.nw.Attach(addr, func(p netem.Packet) {
		c.cl.Receive(p.Payload, p.Src)
		c.wake()
	})
}

func (c *simClient) typeString(s string) {
	for i := 0; i < len(s); i++ {
		c.cl.UserBytes([]byte{s[i]})
	}
	c.wake()
}

// screenText renders the client's reconstructed screen as one string.
func (c *simClient) screenText() string {
	fb := c.cl.ServerState()
	out := ""
	for i := 0; i < fb.H; i++ {
		out += fb.Text(i) + "\n"
	}
	return out
}

// runUntil steps virtual time until pred holds, failing after limit.
func (w *simWorld) runUntil(limit time.Duration, pred func() bool, what string) {
	w.t.Helper()
	deadline := w.sched.Now().Add(limit)
	for !pred() {
		if !w.sched.Now().Before(deadline) {
			w.t.Fatalf("timeout (%v) waiting for %s", limit, what)
		}
		w.sched.RunFor(5 * time.Millisecond)
	}
}

func lan() netem.LinkParams { return netem.LinkParams{Delay: 2 * time.Millisecond, Overhead: 28} }

func shellApp(id uint64) host.App { return host.NewShell(int64(id)) }

func TestDaemonRunsIndependentSessions(t *testing.T) {
	w := newSimWorld(t, sessiond.Config{NewApp: shellApp}, lan())
	sa, err := w.d.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := w.d.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if sa.ID == sb.ID {
		t.Fatalf("duplicate session IDs: %d", sa.ID)
	}
	ca := w.addClient(sa, netem.Addr{Host: 1, Port: 1001})
	cb := w.addClient(sb, netem.Addr{Host: 2, Port: 1002})
	w.sched.RunFor(2 * time.Second) // connect + RTT warmup

	ca.typeString("alpha")
	cb.typeString("bravo")
	w.runUntil(5*time.Second, func() bool {
		return ca.cl.ServerState().Text(0) == "user@remote:~$ alpha"+spaces(80-20) &&
			cb.cl.ServerState().Text(0) == "user@remote:~$ bravo"+spaces(80-20)
	}, "both sessions to echo their own input")

	if w.d.SessionsLive() != 2 {
		t.Fatalf("SessionsLive = %d, want 2", w.d.SessionsLive())
	}
	m := w.d.Metrics()
	if m.PacketsIn.Value() == 0 || m.PacketsOut.Value() == 0 {
		t.Fatalf("no traffic recorded: %s", m)
	}
}

func spaces(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = ' '
	}
	return string(b)
}

// TestRoamingUnderMultiplexer is the satellite scenario: two sessions on
// one socket; one client changes source address mid-session. Its replies
// must follow the new address while the other session's reply target stays
// untouched.
func TestRoamingUnderMultiplexer(t *testing.T) {
	w := newSimWorld(t, sessiond.Config{NewApp: shellApp}, lan())
	sa, _ := w.d.OpenSession()
	sb, _ := w.d.OpenSession()
	aHome := netem.Addr{Host: 10, Port: 1001}
	bHome := netem.Addr{Host: 20, Port: 2002}
	ca := w.addClient(sa, aHome)
	cb := w.addClient(sb, bHome)
	w.sched.RunFor(2 * time.Second)

	ca.typeString("one")
	cb.typeString("two")
	w.runUntil(5*time.Second, func() bool {
		return ca.cl.ServerState().Text(0)[:18] == "user@remote:~$ one" &&
			cb.cl.ServerState().Text(0)[:18] == "user@remote:~$ two"
	}, "initial echoes")

	remoteOf := func(s *sessiond.Session) netem.Addr {
		var a netem.Addr
		s.Do(func(srv *core.Server) { a, _ = srv.Transport().Connection().RemoteAddr() })
		return a
	}
	if got := remoteOf(sa); got != aHome {
		t.Fatalf("session A reply target = %v, want %v", got, aHome)
	}
	if got := remoteOf(sb); got != bHome {
		t.Fatalf("session B reply target = %v, want %v", got, bHome)
	}

	// A roams to a new network; B stays put.
	aRoam := netem.Addr{Host: 77, Port: 4444}
	ca.roamTo(aRoam)
	ca.typeString("x")
	w.runUntil(5*time.Second, func() bool { return remoteOf(sa) == aRoam }, "A's replies to follow the roam")

	if got := remoteOf(sb); got != bHome {
		t.Fatalf("B's reply target moved to %v after A roamed; want %v untouched", got, bHome)
	}
	// A must still converge at the new address (replies actually arrive).
	w.runUntil(5*time.Second, func() bool {
		return ca.cl.ServerState().Text(0)[:19] == "user@remote:~$ onex"
	}, "A to keep converging after roaming")
	if w.d.Metrics().RoamingEvents.Value() < 1 {
		t.Fatalf("roaming event not counted: %s", w.d.Metrics())
	}
	// And B's session still works.
	cb.typeString("y")
	w.runUntil(5*time.Second, func() bool {
		return cb.cl.ServerState().Text(0)[:19] == "user@remote:~$ twoy"
	}, "B to keep working")
}

func TestIdleEviction(t *testing.T) {
	w := newSimWorld(t, sessiond.Config{NewApp: shellApp, IdleTimeout: 2 * time.Second}, lan())
	sa, _ := w.d.OpenSession()
	sb, _ := w.d.OpenSession()
	sc, _ := w.d.OpenSession()
	ca := w.addClient(sa, netem.Addr{Host: 1, Port: 1001})
	cb := w.addClient(sb, netem.Addr{Host: 2, Port: 1002})
	// Session C is a pre-issued slot nobody ever redeems: it must wait
	// indefinitely, never idle-evicted.

	// B connects and types once, then vanishes (laptop closed).
	cb.typeString("b")
	w.sched.RunFor(500 * time.Millisecond)
	cb.dead = true

	// Keep A warm well past B's eviction horizon.
	for i := 0; i < 8; i++ {
		ca.typeString("k")
		w.sched.RunFor(700 * time.Millisecond)
	}
	if w.d.Lookup(sb.ID) != nil {
		t.Fatal("silent session B was not evicted")
	}
	if got := w.d.Metrics().SessionsEvicted.Value(); got != 1 {
		t.Fatalf("SessionsEvicted = %d, want 1", got)
	}
	if w.d.Lookup(sa.ID) == nil {
		t.Fatal("active session A was evicted")
	}
	if w.d.Lookup(sc.ID) == nil {
		t.Fatal("never-redeemed session C was evicted; pre-issued slots must wait indefinitely")
	}
	if w.d.SessionsLive() != 2 {
		t.Fatalf("SessionsLive = %d, want 2 (A active, C waiting)", w.d.SessionsLive())
	}
}

func TestCapacityAndClose(t *testing.T) {
	w := newSimWorld(t, sessiond.Config{Capacity: 2}, lan())
	s1, err := w.d.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.d.OpenSession(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.d.OpenSession(); err != sessiond.ErrCapacity {
		t.Fatalf("third OpenSession: err=%v, want ErrCapacity", err)
	}
	w.d.CloseSession(s1.ID)
	if w.d.SessionsLive() != 1 {
		t.Fatalf("SessionsLive = %d after close, want 1", w.d.SessionsLive())
	}
	if _, err := w.d.OpenSession(); err != nil {
		t.Fatalf("OpenSession after close: %v", err)
	}
}

func TestDropAccounting(t *testing.T) {
	w := newSimWorld(t, sessiond.Config{NewApp: shellApp}, lan())
	s, _ := w.d.OpenSession()
	m := w.d.Metrics()

	w.d.HandlePacket([]byte{1, 2, 3}, netem.Addr{Host: 5})
	if m.DropsBadEnvelope.Value() != 1 {
		t.Fatalf("DropsBadEnvelope = %d, want 1", m.DropsBadEnvelope.Value())
	}
	// Valid envelope, no such session.
	w.d.HandlePacket(network.AppendEnvelope(nil, 0xdead), netem.Addr{Host: 5})
	if m.DropsUnknownSession.Value() != 1 {
		t.Fatalf("DropsUnknownSession = %d, want 1", m.DropsUnknownSession.Value())
	}
	// Valid envelope for a live session, garbage ciphertext: the key says no.
	junk := append(network.AppendEnvelope(nil, s.ID), make([]byte, 64)...)
	w.d.HandlePacket(junk, netem.Addr{Host: 5})
	if m.DropsAuth.Value() != 1 {
		t.Fatalf("DropsAuth = %d, want 1", m.DropsAuth.Value())
	}
	// A spoofed envelope (wrong session's ID on another key's packet) must
	// not roam the session: reply target stays unset.
	s.Do(func(srv *core.Server) {
		if _, ok := srv.Transport().Connection().RemoteAddr(); ok {
			t.Fatal("inauthentic packet set a reply target")
		}
	})
}

// expectedSingleSessionFrame runs the same application and keystrokes
// through a plain single-session SSP pair (no daemon, no envelope) in
// virtual time and returns the client's converged screen rendered to
// bytes. This is the baseline daemon sessions must match byte for byte.
func expectedSingleSessionFrame(t *testing.T, appSeed int64, script string) []byte {
	t.Helper()
	sched := simclock.NewScheduler(epoch)
	nw := netem.NewNetwork(sched)
	path := netem.NewPath(nw, netem.LinkParams{Delay: 2 * time.Millisecond, Overhead: 28}, 42)
	clientAddr := netem.Addr{Host: 1, Port: 1001}
	serverAddr := netem.Addr{Host: 2, Port: 60001}
	key := sspcrypto.Key{byte(appSeed), 0x77}

	app := host.NewShell(appSeed)
	var server *core.Server
	var wakeServer func()
	var lastAt time.Time
	server, err := core.NewServer(core.ServerConfig{
		Key: key, Clock: sched,
		Emit: func(wire []byte) {
			if dst, ok := server.Transport().Connection().RemoteAddr(); ok {
				path.Down.Send(netem.Packet{Src: serverAddr, Dst: dst, Payload: wire})
			}
		},
		HostInput: func(data []byte) {
			out, delay := app.Input(data)
			if len(out) == 0 {
				return
			}
			at := sched.Now().Add(delay)
			if at.Before(lastAt) {
				at = lastAt
			}
			lastAt = at
			d := out
			sched.At(at, func() { server.HostOutput(d); wakeServer() })
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	server.Terminal().Framebuffer().SetScrollbackLimit(-1)
	server.HostOutput(app.Start())

	var client *core.Client
	client, err = core.NewClient(core.ClientConfig{
		Key: key, Clock: sched, Predictions: overlay.Never,
		Emit: func(wire []byte) {
			path.Up.Send(netem.Packet{Src: clientAddr, Dst: serverAddr, Payload: wire})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	wakeClient := core.Pump(sched, client)
	wakeServer = core.Pump(sched, server)
	nw.Attach(serverAddr, func(p netem.Packet) { server.Receive(p.Payload, p.Src); wakeServer() })
	nw.Attach(clientAddr, func(p netem.Packet) { client.Receive(p.Payload, p.Src); wakeClient() })

	sched.RunFor(time.Second)
	for i := 0; i < len(script); i++ {
		client.UserBytes([]byte{script[i]})
	}
	wakeClient()
	// First wait for every keystroke to reach the host application, then
	// for the host's responses to flush, then for screens to converge —
	// otherwise the trivially-equal initial state satisfies Equal before
	// any input has round-tripped.
	deadline := sched.Now().Add(30 * time.Second)
	for server.Transport().RemoteState().Size() < uint64(len(script)) {
		if !sched.Now().Before(deadline) {
			t.Fatal("baseline session never delivered all input")
		}
		sched.RunFor(5 * time.Millisecond)
	}
	sched.RunFor(2 * time.Second) // host think-time responses flush
	for !client.ServerState().Equal(server.Terminal().Framebuffer()) {
		if !sched.Now().Before(deadline) {
			t.Fatal("baseline session never converged")
		}
		sched.RunFor(5 * time.Millisecond)
	}
	return terminal.NewFrame(false, nil, client.ServerState())
}

func TestManySessionsMatchSingleSessionBaseline(t *testing.T) {
	// Virtual-time version of the equivalence claim at a modest scale; the
	// race test (race_test.go) does the 200-session concurrent version.
	const n = 32
	const profiles = 4
	w := newSimWorld(t, sessiond.Config{
		NewApp: func(id uint64) host.App { return host.NewShell(int64(id % profiles)) },
	}, lan())

	expect := make([][]byte, profiles)
	for p := 0; p < profiles; p++ {
		expect[p] = expectedSingleSessionFrame(t, int64(p), fmt.Sprintf("run job %d\r", p))
	}

	clients := make([]*simClient, n)
	sessions := make([]*sessiond.Session, n)
	for i := 0; i < n; i++ {
		s, err := w.d.OpenSession()
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
		clients[i] = w.addClient(s, netem.Addr{Host: uint32(100 + i), Port: uint16(1000 + i)})
	}
	w.sched.RunFor(2 * time.Second)
	for i, c := range clients {
		c.typeString(fmt.Sprintf("run job %d\r", sessions[i].ID%profiles))
	}
	for i, c := range clients {
		want := expect[sessions[i].ID%profiles]
		w.runUntil(20*time.Second, func() bool {
			return string(terminal.NewFrame(false, nil, c.cl.ServerState())) == string(want)
		}, fmt.Sprintf("session %d to match the single-session baseline frame", sessions[i].ID))
	}
}
