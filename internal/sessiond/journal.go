package sessiond

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/network"
	"repro/internal/sspcrypto"
	"repro/internal/statesync"
)

// This file implements the daemon's crash-safe persistence: a periodic +
// on-shutdown journal writer with atomic rename, and the boot path that
// restores journaled sessions so a reconnecting client's next datagram
// authenticates and resumes — a restart becomes just another form of
// packet loss.
//
// # Nonce safety (the two-phase reservation)
//
// Each flush records, per session, a reservation ceiling for the outgoing
// sequence numbers (AES-OCB nonces) and state numbers: the live counter
// plus Config.SeqReserve. Sessions never send past their *currently
// applied* ceiling, and a new ceiling is applied only after the journal
// that records it has been durably renamed into place. A crash at any
// point therefore restores counters at least as high as anything the dead
// process could have put on the wire: no nonce, and no state number, is
// ever used twice across a restart. A session that exhausts its
// reservation between flushes simply suppresses sends (SSP loss) and
// requests an early flush.

// DefaultJournalInterval is the periodic flush cadence.
const DefaultJournalInterval = 10 * time.Second

// DefaultSeqReserve is the per-flush counter reservation: how many
// datagrams (and minted states) a session may produce between flushes
// before sends are suppressed pending the next flush.
const DefaultSeqReserve = 1 << 16

// journalFileName is the snapshot inside Config.StateDir; the .tmp sibling
// is the atomic-rename staging file.
const journalFileName = "sessions.journal"

// journal is the daemon's persistence state. All buffers are reused across
// flushes, so the steady-state encode path allocates nothing.
type journal struct {
	path, tmpPath string
	interval      time.Duration
	reserve       uint64

	// arena accumulates the encoded session records back to back;
	// offs[i] delimits record i. fileBuf assembles the whole journal
	// file. records is the reusable [][]byte view handed to appendJournal.
	arena   []byte
	offs    []int
	fileBuf []byte
	records [][]byte

	// pending is the two-phase ceiling list: applied to the live sessions
	// only after the rename is durable.
	pending []pendingCeiling

	// sessScratch reuses the per-flush collection of live sessions.
	sessScratch []*Session
}

type pendingCeiling struct {
	s       *Session
	seqCeil uint64
	numCeil uint64
}

func newJournal(dir string, interval time.Duration, reserve uint64) *journal {
	return &journal{
		path:     filepath.Join(dir, journalFileName),
		tmpPath:  filepath.Join(dir, "."+journalFileName+".tmp"),
		interval: interval,
		reserve:  reserve,
	}
}

// snapshotSessionLocked fills sn from s. Caller holds s.mu. The returned
// ceilings are the proposed (journal-recorded) reservations; they are NOT
// applied to the session here — see FlushJournal's two-phase apply.
func (s *Session) snapshotSessionLocked(sn *sessionSnapshot, reserve uint64) (seqCeil, numCeil uint64) {
	tr := s.srv.Transport()
	conn := tr.Connection()
	seqCeil = conn.NextSeq() + reserve
	if seqCeil > sspcrypto.MaxSeq+1 {
		seqCeil = sspcrypto.MaxSeq + 1
	}
	numCeil = tr.Sender().NumHighWater() + reserve
	*sn = sessionSnapshot{
		ID:           s.ID,
		Key:          s.key,
		OrigW:        s.origW,
		OrigH:        s.origH,
		NextSeq:      seqCeil,
		ExpectedSeq:  conn.ExpectedSeq(),
		NextStateNum: numCeil,
		RecvNum:      tr.RemoteStateNum(),
		StreamSize:   tr.RemoteState().Size(),
		LastActive:   s.lastActive,
		PendingOut:   s.pendingOut,
		FB:           s.srv.Terminal().Framebuffer(),
	}
	if addr, ok := conn.RemoteAddr(); ok {
		sn.HaveRemote = true
		sn.Remote = addr
	}
	_, sn.Heard = conn.LastHeard()
	return seqCeil, numCeil
}

// FlushJournal writes a snapshot of every live session to the state
// directory (atomic rename) and then raises each session's send-counter
// ceilings to the recorded reservations. It is a no-op error when the
// daemon has no Config.StateDir. Safe to call from any goroutine; flushes
// are serialized by the journal itself being confined to one caller at a
// time via the daemon's flush path (journal loop, Close, tests).
func (d *Daemon) FlushJournal() error {
	return d.flushJournal(false)
}

// flushJournal implements FlushJournal. final marks Close's shutdown
// flush: once the daemon is closing, every other flush is refused so a
// queued periodic flush can never run after Close removed the sessions
// and overwrite the final snapshot with an empty journal.
func (d *Daemon) flushJournal(final bool) error {
	j := d.journal
	if j == nil {
		return errors.New("sessiond: no StateDir configured")
	}
	d.flushMu.Lock()
	defer d.flushMu.Unlock()
	if d.closing.Load() && !final {
		return nil
	}

	// Collect live sessions in ID order (deterministic record order).
	sessions := j.sessScratch[:0]
	d.reg.each(func(s *Session) { sessions = append(sessions, s) })
	sort.Slice(sessions, func(a, b int) bool { return sessions[a].ID < sessions[b].ID })
	j.sessScratch = sessions

	j.arena = j.arena[:0]
	j.offs = j.offs[:0]
	j.pending = j.pending[:0]
	var sn sessionSnapshot
	for _, s := range sessions {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			continue
		}
		seqCeil, numCeil := s.snapshotSessionLocked(&sn, j.reserve)
		j.arena = appendSessionSnapshot(j.arena, &sn)
		s.mu.Unlock()
		j.offs = append(j.offs, len(j.arena))
		j.pending = append(j.pending, pendingCeiling{s: s, seqCeil: seqCeil, numCeil: numCeil})
	}

	j.records = j.records[:0]
	start := 0
	for _, end := range j.offs {
		j.records = append(j.records, j.arena[start:end])
		start = end
	}
	hdr := journalHeader{NextID: d.nextID.Load(), FlushedAt: d.cfg.Clock.Now()}
	j.fileBuf = appendJournal(j.fileBuf[:0], hdr, j.records)

	if err := writeFileAtomic(j.tmpPath, j.path, j.fileBuf); err != nil {
		d.metrics.JournalErrors.Add(1)
		return fmt.Errorf("sessiond: journal flush: %w", err)
	}

	// Phase two: the reservations are durable; raise the live ceilings.
	for _, p := range j.pending {
		p.s.mu.Lock()
		if !p.s.closed {
			tr := p.s.srv.Transport()
			tr.Connection().SetSeqCeiling(p.seqCeil)
			tr.Sender().SetNumCeiling(p.numCeil)
		}
		p.s.mu.Unlock()
	}
	d.metrics.JournalFlushes.Add(1)
	d.metrics.JournalBytes.Add(int64(len(j.fileBuf)))
	// Release the session pointers the scratch arrays hold (to their full
	// capacity — earlier, larger flushes left entries beyond the current
	// length), so evicted sessions' screens are collectable between
	// flushes instead of being pinned until the session count grows back.
	full := j.sessScratch[:cap(j.sessScratch)]
	clear(full)
	j.sessScratch = full[:0]
	fullPending := j.pending[:cap(j.pending)]
	clear(fullPending)
	j.pending = fullPending[:0]
	return nil
}

// writeFileAtomic writes data to tmp, fsyncs it, renames it over path, and
// fsyncs the directory so the rename itself is durable.
func writeFileAtomic(tmp, path string, data []byte) error {
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync() // best effort; not all filesystems support it
		dir.Close()
	}
	return nil
}

// requestFlush asks the journal loop for an early flush (low reservation
// headroom, a freshly opened session). Non-blocking; coalesces.
func (d *Daemon) requestFlush() {
	select {
	case d.flushReq <- struct{}{}:
	default:
	}
}

// maybeRequestFlushLocked triggers an early flush when a session is
// consuming its counter reservation faster than the periodic cadence
// refreshes it. Caller holds s.mu.
func (s *Session) maybeRequestFlushLocked() {
	j := s.d.journal
	if j == nil {
		return
	}
	low := j.reserve / 4
	tr := s.srv.Transport()
	if tr.Connection().SeqRemaining() <= low || tr.Sender().NumRemaining() <= low {
		s.d.requestFlush()
	}
}

// journalLoop is the async flush driver (Serve mode): periodic cadence
// plus on-demand requests. Simulation embedders call FlushJournal
// directly in virtual time instead.
func (d *Daemon) journalLoop() {
	t := time.NewTicker(d.journal.interval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
		case <-d.flushReq:
		}
		d.FlushJournal() // error already counted in metrics
	}
}

// restoreFromJournal loads the state directory's journal (if present) and
// revives every non-stale session. Called from New before any traffic.
func (d *Daemon) restoreFromJournal() error {
	data, err := os.ReadFile(d.journal.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("sessiond: reading journal: %w", err)
	}
	hdr, snaps, bad, err := decodeJournal(data)
	if err != nil {
		return fmt.Errorf("sessiond: %w", err)
	}
	d.metrics.JournalBadRecords.Add(int64(bad))
	now := d.cfg.Clock.Now()
	maxID := hdr.NextID
	for _, sn := range snaps {
		// Boot-time eviction of stale snapshots: a session that was idle
		// past the eviction horizon when the daemon died would have been
		// evicted had it kept running; don't resurrect it. Pre-issued
		// slots nobody ever redeemed wait indefinitely, as live ones do.
		if idle := d.cfg.IdleTimeout; idle > 0 && sn.Heard && now.Sub(sn.LastActive) >= idle {
			d.metrics.SnapshotsStale.Add(1)
			continue
		}
		if _, err := d.restoreSession(sn); err != nil {
			return fmt.Errorf("sessiond: restoring session %d: %w", sn.ID, err)
		}
		if sn.ID > maxID {
			maxID = sn.ID
		}
	}
	d.nextID.Store(maxID)
	return nil
}

// restoreSession revives one journaled session: restored screen and input
// stream, reserved counters, and — per SSP semantics — a fresh diff
// baseline of state 0, so the first frame to the surviving client is a
// full repaint it applies against its pristine initial state.
func (d *Daemon) restoreSession(sn *sessionSnapshot) (*Session, error) {
	if d.reg.lookup(sn.ID) != nil {
		return nil, fmt.Errorf("duplicate session id %d", sn.ID)
	}
	s := &Session{
		ID:      sn.ID,
		d:       d,
		key:     sn.Key,
		origW:   sn.OrigW,
		origH:   sn.OrigH,
		heapIdx: -1,
		done:    make(chan struct{}),
		inbox:   make(chan *inRun, d.inboxDepth()),
	}
	var raddr *netem.Addr
	if sn.HaveRemote {
		addr := sn.Remote
		raddr = &addr
	}
	srv, err := core.NewServer(core.ServerConfig{
		Key:         sn.Key,
		Clock:       d.cfg.Clock,
		Width:       sn.OrigW,
		Height:      sn.OrigH,
		Timing:      d.cfg.Timing,
		MinRTO:      d.cfg.MinRTO,
		MaxRTO:      d.cfg.MaxRTO,
		Envelope:    &network.Envelope{ID: sn.ID},
		RecycleWire: d.cfg.RecycleWire,
		Emit:        func(wire []byte) { s.emit(wire) },
		HostInput:   func(data []byte) { s.hostInput(data) },
		Resume: &core.ServerResume{
			Current:      statesync.NewCompleteWithFramebuffer(sn.FB),
			Baseline:     statesync.NewComplete(sn.OrigW, sn.OrigH),
			Stream:       statesync.RestoreUserStream(sn.StreamSize),
			SendNumFloor: sn.NextStateNum,
			RecvNum:      sn.RecvNum,
			NextSeq:      sn.NextSeq,
			ExpectedSeq:  sn.ExpectedSeq,
			RemoteAddr:   raddr,
			Heard:        sn.Heard,
		},
	})
	if err != nil {
		return nil, err
	}
	s.srv = srv
	// Zero headroom until the post-restore flush records fresh
	// reservations; nothing is sent under the restored ceilings.
	srv.Transport().Connection().SetSeqCeiling(sn.NextSeq)
	srv.Transport().Sender().SetNumCeiling(sn.NextStateNum)
	s.lastActive = sn.LastActive
	// Host output the dead process had queued but not yet interpreted
	// flushes at (or immediately after) its original due time.
	s.pendingOut = sn.PendingOut
	// Reattach the host application. RestoreApp models an application that
	// survived the restart (a pty held open across a frontend restart, the
	// torture tests' transplanted apps); falling back to NewApp gives the
	// session a fresh application behind its restored screen. Start() is
	// never replayed — the restored screen already reflects history.
	if d.cfg.RestoreApp != nil {
		s.app = d.cfg.RestoreApp(s.ID)
	} else if d.cfg.NewApp != nil {
		s.app = d.cfg.NewApp(s.ID)
	}
	d.reg.insert(s)
	d.metrics.SessionsLive.Add(1)
	d.metrics.SessionsRestored.Add(1)
	s.mu.Lock()
	s.rearmLocked(d.cfg.Clock.Now())
	s.mu.Unlock()
	return s, nil
}
