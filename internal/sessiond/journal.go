package sessiond

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/netem"
	"repro/internal/network"
	"repro/internal/sspcrypto"
	"repro/internal/statesync"
	"repro/internal/telemetry"
	"repro/internal/terminal"
)

// This file implements the daemon's crash-safe persistence: a periodic +
// on-shutdown journal writer with atomic rename, and the boot path that
// restores journaled sessions so a reconnecting client's next datagram
// authenticates and resumes — a restart becomes just another form of
// packet loss.
//
// # Nonce safety (the two-phase reservation)
//
// Each flush records, per session, a reservation ceiling for the outgoing
// sequence numbers (AES-OCB nonces) and state numbers: the live counter
// plus Config.SeqReserve. Sessions never send past their *currently
// applied* ceiling, and a new ceiling is applied only after the journal
// that records it has been durably renamed into place. A crash at any
// point therefore restores counters at least as high as anything the dead
// process could have put on the wire: no nonce, and no state number, is
// ever used twice across a restart. A session that exhausts its
// reservation between flushes simply suppresses sends (SSP loss) and
// requests an early flush.

// DefaultJournalInterval is the periodic flush cadence.
const DefaultJournalInterval = 10 * time.Second

// DefaultSeqReserve is the per-flush counter reservation: how many
// datagrams (and minted states) a session may produce between flushes
// before sends are suppressed pending the next flush.
const DefaultSeqReserve = 1 << 16

// journalFileName is the snapshot inside Config.StateDir; the .tmp sibling
// is the atomic-rename staging file.
const journalFileName = "sessions.journal"

// suspendedSuffix marks an invalidated journal: when sustained disk
// failure suspends journaling, the stale on-disk snapshot is renamed
// aside so a crash during the suspension cannot restore counters below
// nonces that were used while it lasted.
const suspendedSuffix = ".suspended"

// corruptSuffix preserves a journal whose header failed to decode (torn
// rename caught mid-header, foreign file): the daemon boots empty —
// always nonce-safe — and the artifact stays on disk for forensics.
const corruptSuffix = ".corrupt"

// Journal suspension modes (the journal_suspended gauge values).
const (
	journalActive      = 0 // flushes succeeding (or still retrying below the threshold)
	journalUnjournaled = 1 // stale snapshot invalidated, ceilings lifted: full service, no durability
	journalFailSafe    = 2 // invalidation ALSO failed: ceilings stay binding, sessions stall at exhaustion
)

// DefaultJournalCompactMinBytes floors the compaction trigger so tiny
// deployments do not checkpoint on every few appended records.
const DefaultJournalCompactMinBytes = 64 << 10

// journal is the daemon's persistence state. All buffers are reused across
// flushes, so the steady-state encode path allocates nothing.
type journal struct {
	path, tmpPath string
	dir           string
	interval      time.Duration
	reserve       uint64

	// fs is the filesystem seam every journal I/O goes through
	// (faultinject.OSFS in production).
	fs faultinject.FS

	// Flush-failure state, guarded by the daemon's flushMu (every flush
	// serializes on it). retryAt and suspended are additionally atomic
	// because the timing paths (NextDeadline, TickDue, journalLoop,
	// OpenSession) read them without the lock.
	retryMin, retryMax time.Duration
	suspendAfter       int
	rng                *faultinject.Rand // deterministic backoff jitter
	fails              int               // consecutive failed attempts
	backoff            time.Duration     // current base backoff (0 = healthy)
	retryAt            atomic.Int64      // unix nanos of the next allowed attempt; 0 = none
	suspended          atomic.Int32      // journalActive/journalUnjournaled/journalFailSafe

	// arena accumulates the encoded session records back to back;
	// offs[i] delimits record i. fileBuf assembles the whole journal
	// file. records is the reusable [][]byte view handed to appendJournal.
	arena   []byte
	offs    []int
	fileBuf []byte
	records [][]byte

	// pending is the two-phase ceiling list: applied to the live sessions
	// only after the rename is durable.
	pending []pendingCeiling

	// sessScratch reuses the per-flush collection of live sessions.
	sessScratch []*Session

	// ---- Log-structured state (guarded by the daemon's flushMu) ----

	// fullRewrite forces every flush onto the checkpoint path — the
	// pre-incremental behavior, kept as the measured baseline
	// (Config.JournalFullRewrite).
	fullRewrite bool
	// compactMin floors the compaction trigger.
	compactMin int64
	// epoch is the current checkpoint generation; segments are written at
	// this epoch and boot replays only matching segments.
	epoch uint64
	// segSeq numbers the next segment file within the epoch. Bumped even
	// on a failed append so a possibly-partially-written name is never
	// reused.
	segSeq uint64
	// segBytes/segCount track the live segment tail since the last
	// checkpoint; haveCheckpoint/checkpointBytes describe that checkpoint.
	// Compaction triggers when segBytes outgrows the checkpoint (see
	// compactDueLocked).
	segBytes        int64
	segCount        int64
	haveCheckpoint  bool
	checkpointBytes int64
	// lastNextID is the last durably recorded session-ID issuance floor; a
	// flush emits a recMeta only when the live counter moved past it.
	lastNextID uint64

	// ---- Dirty tracking (own lock: marked from packet paths) ----

	// dirtyMu guards dirty and tombs. A session enqueues itself at most
	// once (Session.dirty CAS) so the list is bounded by the live session
	// count; tombstones are enqueued by removeLocked.
	dirtyMu sync.Mutex
	dirty   []*Session
	tombs   []uint64

	// Reused per-flush scratch for the incremental path.
	drainScratch []*Session
	tombScratch  []uint64
	rowScratch   []int
	dirtySet     map[uint64]struct{}
}

type pendingCeiling struct {
	s       *Session
	seqCeil uint64
	numCeil uint64
}

func newJournal(cfg Config) *journal {
	seed := cfg.FaultSeed
	if seed == 0 {
		seed = 0x5e55104d // fixed default: runs stay reproducible
	}
	compactMin := int64(cfg.JournalCompactMinBytes)
	if compactMin <= 0 {
		compactMin = DefaultJournalCompactMinBytes
	}
	return &journal{
		path:         filepath.Join(cfg.StateDir, journalFileName),
		tmpPath:      filepath.Join(cfg.StateDir, "."+journalFileName+".tmp"),
		dir:          cfg.StateDir,
		interval:     cfg.JournalInterval,
		reserve:      cfg.SeqReserve,
		fs:           cfg.FS,
		retryMin:     cfg.JournalRetryMin,
		retryMax:     cfg.JournalRetryMax,
		suspendAfter: cfg.JournalSuspendAfter,
		rng:          faultinject.NewRand(seed),
		fullRewrite:  cfg.JournalFullRewrite,
		compactMin:   compactMin,
		dirtySet:     make(map[uint64]struct{}),
	}
}

// markDirty enqueues this session for the next incremental flush. The CAS
// admits each session once per flush cycle, so the steady-state cost of a
// packet on an already-dirty session is one atomic load.
func (s *Session) markDirty() {
	j := s.d.journal
	if j == nil {
		return
	}
	if s.dirty.CompareAndSwap(false, true) {
		j.dirtyMu.Lock()
		j.dirty = append(j.dirty, s)
		j.dirtyMu.Unlock()
	}
}

// noteClosed enqueues a tombstone so the next flush durably records the
// close (otherwise a restart would resurrect the session).
func (j *journal) noteClosed(id uint64) {
	j.dirtyMu.Lock()
	j.tombs = append(j.tombs, id)
	j.dirtyMu.Unlock()
}

// drainDirty atomically takes the current dirty list and tombstones,
// clearing each session's dirty flag. A mark that races the drain simply
// lands in the next cycle's list. The returned slices are owned by the
// caller until the next drain (double-buffered scratch).
func (j *journal) drainDirty() (sessions []*Session, tombs []uint64) {
	j.dirtyMu.Lock()
	sessions, j.dirty = j.dirty, j.drainScratch[:0]
	tombs, j.tombs = j.tombs, j.tombScratch[:0]
	j.dirtyMu.Unlock()
	j.drainScratch = sessions
	j.tombScratch = tombs
	for _, s := range sessions {
		s.dirty.Store(false)
	}
	return sessions, tombs
}

// requeueDirty re-marks a failed batch so the retry re-encodes it.
func (j *journal) requeueDirty(sessions []*Session, tombs []uint64) {
	for _, s := range sessions {
		s.markDirty()
	}
	if len(tombs) > 0 {
		j.dirtyMu.Lock()
		j.tombs = append(j.tombs, tombs...)
		j.dirtyMu.Unlock()
	}
}

// compactDueLocked reports whether the segment tail has outgrown the
// checkpoint enough that folding it in is worth a full rewrite. The 2×
// factor bounds the log at O(live state) while keeping the amortized
// write amplification comfortably under 2 (each changed byte is written
// once in its segment and at most half a time again per compaction).
// Caller holds flushMu.
func (j *journal) compactDueLocked() bool {
	floor := j.compactMin
	if j.checkpointBytes > floor {
		floor = j.checkpointBytes
	}
	return j.segBytes >= 2*floor
}

// snapshotSessionLocked fills sn from s. Caller holds s.mu. The returned
// ceilings are the proposed (journal-recorded) reservations; they are NOT
// applied to the session here — see FlushJournal's two-phase apply.
func (s *Session) snapshotSessionLocked(sn *sessionSnapshot, reserve uint64) (seqCeil, numCeil uint64) {
	tr := s.srv.Transport()
	conn := tr.Connection()
	seqCeil = conn.NextSeq() + reserve
	if seqCeil > sspcrypto.MaxSeq+1 {
		seqCeil = sspcrypto.MaxSeq + 1
	}
	numCeil = tr.Sender().NumHighWater() + reserve
	*sn = sessionSnapshot{
		ID:           s.ID,
		Key:          s.key,
		OrigW:        s.origW,
		OrigH:        s.origH,
		NextSeq:      seqCeil,
		ExpectedSeq:  conn.ExpectedSeq(),
		NextStateNum: numCeil,
		RecvNum:      tr.RemoteStateNum(),
		StreamSize:   tr.RemoteState().Size(),
		LastActive:   s.lastActive,
		PendingOut:   s.pendingOut,
		FB:           s.srv.Terminal().Framebuffer(),
	}
	if addr, ok := conn.RemoteAddr(); ok {
		sn.HaveRemote = true
		sn.Remote = addr
	}
	_, sn.Heard = conn.LastHeard()
	return seqCeil, numCeil
}

// FlushJournal writes a snapshot of every live session to the state
// directory (atomic rename) and then raises each session's send-counter
// ceilings to the recorded reservations. It is a no-op error when the
// daemon has no Config.StateDir. Safe to call from any goroutine; flushes
// are serialized by the journal itself being confined to one caller at a
// time via the daemon's flush path (journal loop, Close, tests).
func (d *Daemon) FlushJournal() error {
	return d.flushJournal(false)
}

// flushJournal implements FlushJournal. final marks Close's shutdown
// flush: once the daemon is closing, every other flush is refused so a
// queued periodic flush can never run after Close removed the sessions
// and overwrite the final snapshot with an empty journal.
//
// The flush dispatches onto one of two paths. The incremental path — the
// steady state — appends one segment file holding only the sessions whose
// durable core changed since the last flush (dirty tracking), a complete
// no-op when nothing changed. The checkpoint path rewrites the whole
// journal atomically at the next epoch and deletes the now-stale segment
// tail; it runs on shutdown, on the first flush after boot, while resuming
// from a suspension, when Config.JournalFullRewrite pins the baseline
// behavior, and when compaction is due (the log outgrew the checkpoint).
func (d *Daemon) flushJournal(final bool) error {
	j := d.journal
	if j == nil {
		return errors.New("sessiond: no StateDir configured")
	}
	d.flushMu.Lock()
	defer d.flushMu.Unlock()
	if d.closing.Load() && !final {
		return nil
	}
	now := d.cfg.Clock.Now()
	if !final {
		// Backoff gate: while a failed flush is waiting out its backoff,
		// every flush request — periodic tick, low-headroom storm from a
		// thousand sessions — collapses into this cheap refusal. Retries
		// happen only when the backoff expires; the shutdown flush is the
		// one caller allowed through regardless.
		if at := j.retryAt.Load(); at != 0 && now.UnixNano() < at {
			return nil
		}
	}
	suspendMode := j.suspended.Load()
	compact := j.haveCheckpoint && suspendMode == journalActive &&
		!j.fullRewrite && !final && j.compactDueLocked()
	if final || j.fullRewrite || !j.haveCheckpoint || suspendMode != journalActive || compact {
		return d.flushCheckpointLocked(now, suspendMode, compact)
	}
	return d.flushIncrementalLocked(now)
}

// flushCheckpointLocked writes a full-journal checkpoint at the next epoch
// (atomic rename), then deletes the segment tail the checkpoint absorbed.
// A crash between those two steps leaves stale-epoch segments the next
// boot ignores and removes. Caller holds flushMu.
func (d *Daemon) flushCheckpointLocked(now time.Time, suspendMode int32, compact bool) error {
	j := d.journal
	// The checkpoint records everyone, so the pending dirty set is
	// absorbed — but only if the write lands; a failure requeues it so
	// the incremental path still knows who changed.
	dirtySessions, tombs := j.drainDirty()
	clear(j.dirtySet)
	for _, s := range dirtySessions {
		j.dirtySet[s.ID] = struct{}{}
	}

	// Collect live sessions in ID order (deterministic record order).
	sessions := j.sessScratch[:0]
	d.reg.each(func(s *Session) { sessions = append(sessions, s) })
	sort.Slice(sessions, func(a, b int) bool { return sessions[a].ID < sessions[b].ID })
	j.sessScratch = sessions

	j.arena = j.arena[:0]
	j.offs = j.offs[:0]
	j.pending = j.pending[:0]
	changed := int64(0)
	var sn sessionSnapshot
	for _, s := range sessions {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			continue
		}
		seqCeil, numCeil := s.snapshotSessionLocked(&sn, j.reserve)
		if suspendMode == journalUnjournaled {
			// Resuming from the unjournaled suspension: ceilings were
			// lifted, so the session could otherwise sail past the
			// snapshot while this flush is in flight — and a crash after
			// the rename would then restore counters BELOW used nonces.
			// Re-cap at snapshot time, under the same lock that took the
			// snapshot, so the recorded reservation is a true upper bound
			// on everything this session can ever put on the wire.
			tr := s.srv.Transport()
			tr.Connection().SetSeqCeiling(seqCeil)
			tr.Sender().SetNumCeiling(numCeil)
		}
		recStart := len(j.arena)
		j.arena = appendSessionSnapshot(j.arena, &sn)
		s.noteEncodedLocked(sn.FB)
		s.mu.Unlock()
		if _, dirty := j.dirtySet[s.ID]; dirty {
			changed += int64(len(j.arena) - recStart)
		}
		j.offs = append(j.offs, len(j.arena))
		j.pending = append(j.pending, pendingCeiling{s: s, seqCeil: seqCeil, numCeil: numCeil})
	}

	j.records = j.records[:0]
	start := 0
	for _, end := range j.offs {
		j.records = append(j.records, j.arena[start:end])
		start = end
	}
	hdr := journalHeader{NextID: d.nextID.Load(), Epoch: j.epoch + 1, FlushedAt: now}
	j.fileBuf = appendJournal(j.fileBuf[:0], hdr, j.records)

	if err := writeFileAtomic(j.fs, j.tmpPath, j.path, j.fileBuf); err != nil {
		d.metrics.JournalErrors.Add(1)
		if suspendMode == journalUnjournaled {
			// Still suspended and the disk still says no: lift the
			// ceilings we just re-capped, so service continues. Safe —
			// the on-disk journal is still the invalidated one.
			d.liftCeilingsLocked()
		}
		j.requeueDirty(dirtySessions, tombs)
		d.noteFlushFailureLocked(now)
		return fmt.Errorf("sessiond: journal flush: %w", err)
	}

	// The checkpoint is durable: advance the epoch and drop the segment
	// tail it absorbed (best effort — anything left behind is stale-epoch
	// and the next boot removes it).
	j.epoch = hdr.Epoch
	j.haveCheckpoint = true
	j.checkpointBytes = int64(len(j.fileBuf))
	j.lastNextID = hdr.NextID
	j.removeStaleSegmentsLocked(j.epoch)
	j.segBytes, j.segSeq, j.segCount = 0, 0, 0
	d.metrics.JournalSegments.Set(0)
	if compact {
		d.metrics.CompactionRuns.Add(1)
	}

	// Phase two: the reservations are durable; raise the live ceilings
	// (and validate each session's screen-delta base — the checkpoint row
	// generations recorded above are now on disk).
	for _, p := range j.pending {
		p.s.mu.Lock()
		if !p.s.closed {
			tr := p.s.srv.Transport()
			tr.Connection().SetSeqCeiling(p.seqCeil)
			tr.Sender().SetNumCeiling(p.numCeil)
			p.s.jrValid = true
		}
		p.s.mu.Unlock()
	}
	d.noteFlushSuccessLocked()
	d.metrics.JournalFlushes.Add(1)
	d.metrics.JournalBytes.Add(int64(len(j.fileBuf)))
	d.metrics.JournalChangedBytes.Add(changed)
	// Release the session pointers the scratch arrays hold (to their full
	// capacity — earlier, larger flushes left entries beyond the current
	// length), so evicted sessions' screens are collectable between
	// flushes instead of being pinned until the session count grows back.
	full := j.sessScratch[:cap(j.sessScratch)]
	clear(full)
	j.sessScratch = full[:0]
	fullPending := j.pending[:cap(j.pending)]
	clear(fullPending)
	j.pending = fullPending[:0]
	return nil
}

// flushIncrementalLocked appends one segment file carrying only the
// durable changes since the last flush: the session-ID floor when it
// moved, tombstones for closed sessions, and one record per dirty session
// (a screen-delta record when the dimensions are unchanged and few rows
// moved, a full snapshot record otherwise). With nothing changed it is a
// complete no-op: no I/O, no metrics, no backoff perturbation — the
// "idle sessions cost zero flush bytes" property. Caller holds flushMu.
func (d *Daemon) flushIncrementalLocked(now time.Time) error {
	j := d.journal
	sessions, tombs := j.drainDirty()
	nextID := d.nextID.Load()
	if len(sessions) == 0 && len(tombs) == 0 && nextID == j.lastNextID {
		return nil
	}
	sort.Slice(sessions, func(a, b int) bool { return sessions[a].ID < sessions[b].ID })

	j.arena = j.arena[:0]
	j.offs = j.offs[:0]
	j.pending = j.pending[:0]
	if nextID != j.lastNextID {
		j.arena = append(j.arena, recMeta)
		j.arena = binary.AppendUvarint(j.arena, nextID)
		j.offs = append(j.offs, len(j.arena))
	}
	for _, id := range tombs {
		j.arena = append(j.arena, recClose)
		j.arena = binary.AppendUvarint(j.arena, id)
		j.offs = append(j.offs, len(j.arena))
	}
	var sn sessionSnapshot
	for _, s := range sessions {
		s.mu.Lock()
		if s.closed {
			// removeLocked queued a tombstone; that record (this batch or
			// the next) is the session's durable fate.
			s.mu.Unlock()
			continue
		}
		seqCeil, numCeil := s.snapshotSessionLocked(&sn, j.reserve)
		fb := sn.FB
		useDelta := false
		if s.jrValid && s.jrW == fb.W && s.jrH == fb.H &&
			s.jrSb == 0 && fb.ScrollbackLines() == 0 && len(s.jrGens) == fb.H {
			j.rowScratch = j.rowScratch[:0]
			for i := 0; i < fb.H; i++ {
				if fb.RowGen(i) != s.jrGens[i] {
					j.rowScratch = append(j.rowScratch, i)
				}
			}
			// Past half the screen a delta stops paying for itself (the
			// row encoding matches the checkpoint's, so the crossover is
			// purely the changed-row fraction).
			useDelta = len(j.rowScratch) <= fb.H/2
		}
		if useDelta {
			j.arena = appendDeltaBody(j.arena, &sn, j.rowScratch)
		} else {
			j.arena = append(j.arena, recFull)
			j.arena = appendSessionSnapshot(j.arena, &sn)
		}
		s.noteEncodedLocked(fb)
		s.mu.Unlock()
		j.offs = append(j.offs, len(j.arena))
		j.pending = append(j.pending, pendingCeiling{s: s, seqCeil: seqCeil, numCeil: numCeil})
	}
	if len(j.offs) == 0 {
		// Every drained session raced a close and its tombstone is queued
		// for the next cycle; nothing durable changed yet.
		return nil
	}

	changed := int64(len(j.arena))
	j.fileBuf = appendSegmentHeader(j.fileBuf[:0], j.epoch, j.segSeq)
	start := 0
	for _, end := range j.offs {
		j.fileBuf = appendFramedRecord(j.fileBuf, j.arena[start:end])
		start = end
	}

	name := filepath.Join(j.dir, segmentFileName(j.epoch, j.segSeq))
	// The file name is single-use (segSeq advances on failure too), so a
	// torn append can only ever damage this file's own tail — previously
	// durable records live in other files and are untouchable.
	err := writeSegmentFile(j.fs, name, j.fileBuf)
	if err != nil {
		// The attempt may have left a partial file: advance the sequence
		// so the retry never appends after a torn tail, and account the
		// possible on-disk bytes toward compaction. Boot replays the
		// CRC-complete prefix; the requeued batch re-records every
		// affected session (full records — their delta base is invalid).
		j.segSeq++
		j.segBytes += int64(len(j.fileBuf))
		j.segCount++
		d.metrics.JournalSegments.Set(j.segCount)
		d.metrics.JournalErrors.Add(1)
		j.requeueDirty(sessions, tombs)
		d.noteFlushFailureLocked(now)
		return fmt.Errorf("sessiond: journal append: %w", err)
	}
	j.segSeq++
	j.segBytes += int64(len(j.fileBuf))
	j.segCount++
	j.lastNextID = nextID
	d.metrics.JournalSegments.Set(j.segCount)

	// Phase two: the reservations are durable; raise the live ceilings and
	// validate each session's screen-delta base.
	for _, p := range j.pending {
		p.s.mu.Lock()
		if !p.s.closed {
			tr := p.s.srv.Transport()
			tr.Connection().SetSeqCeiling(p.seqCeil)
			tr.Sender().SetNumCeiling(p.numCeil)
			p.s.jrValid = true
		}
		p.s.mu.Unlock()
	}
	d.noteFlushSuccessLocked()
	d.metrics.JournalFlushes.Add(1)
	d.metrics.JournalBytes.Add(int64(len(j.fileBuf)))
	d.metrics.JournalChangedBytes.Add(changed)
	fullPending := j.pending[:cap(j.pending)]
	clear(fullPending)
	j.pending = fullPending[:0]
	full := j.drainScratch[:cap(j.drainScratch)]
	clear(full)
	j.drainScratch = full[:0]
	return nil
}

// noteEncodedLocked records the screen generation fingerprint this flush
// encoded, so the next incremental flush can diff against it. jrValid
// stays false until the write proves durable (phase two); a failed or
// torn write therefore forces the next record to be a full snapshot.
// Caller holds s.mu.
func (s *Session) noteEncodedLocked(fb *terminal.Framebuffer) {
	s.jrGens = s.jrGens[:0]
	for i := 0; i < fb.H; i++ {
		s.jrGens = append(s.jrGens, fb.RowGen(i))
	}
	s.jrW, s.jrH, s.jrSb = fb.W, fb.H, fb.ScrollbackLines()
	s.jrValid = false
}

// removeStaleSegmentsLocked deletes every segment file whose epoch is not
// keepEpoch (best effort). Caller holds flushMu.
func (j *journal) removeStaleSegmentsLocked(keepEpoch uint64) {
	names, err := j.fs.ReadDir(j.dir)
	if err != nil {
		return
	}
	for _, name := range names {
		if ep, _, ok := parseSegmentName(name); ok && ep != keepEpoch {
			j.fs.Remove(filepath.Join(j.dir, name))
		}
	}
}

// writeSegmentFile creates one segment file and makes it durable. Every
// operation goes through the filesystem seam, so fault schedules can fail
// or tear any step — the torn-append crash points TestChaosTorture and the
// nonce property tests exercise.
func writeSegmentFile(fs faultinject.FS, name string, data []byte) error {
	f, err := fs.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o600)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeFileAtomic writes data to tmp, fsyncs it, renames it over path, and
// fsyncs the directory so the rename itself is durable. Every operation
// goes through the filesystem seam, so fault schedules can fail any step.
func writeFileAtomic(fs faultinject.FS, tmp, path string, data []byte) error {
	f, err := fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return err
	}
	fs.SyncDir(filepath.Dir(path)) // best effort; not all filesystems support it
	return nil
}

// noteFlushFailureLocked advances the retry/backoff state after a failed
// flush attempt and, past the suspension threshold, degrades to the
// explicit journaling-suspended state. Caller holds flushMu.
func (d *Daemon) noteFlushFailureLocked(now time.Time) {
	j := d.journal
	j.fails++
	d.metrics.JournalFlushFailures.Add(1)
	d.recordEv(telemetry.EvJournalFlushFail, 0, uint64(j.fails))
	if j.backoff <= 0 {
		j.backoff = j.retryMin
	} else if j.backoff < j.retryMax {
		j.backoff *= 2
		if j.backoff > j.retryMax {
			j.backoff = j.retryMax
		}
	}
	// Deterministic jitter in [0, backoff/4]: retries from a fleet of
	// daemons (or one daemon's many incarnations in a test matrix) spread
	// out instead of thundering onto a recovering disk in lockstep.
	delay := j.backoff + time.Duration(j.rng.Uint64()%uint64(j.backoff/4+1))
	j.retryAt.Store(now.Add(delay).UnixNano())
	d.metrics.JournalRetryBackoffMs.Set(int64(delay / time.Millisecond))
	if j.suspendAfter > 0 && j.fails >= j.suspendAfter && j.suspended.Load() == journalActive {
		d.suspendJournalingLocked()
	}
	d.requestFlush() // nudge the async loop to recompute its sleep
}

// noteFlushSuccessLocked resets the retry/backoff state and, when the
// journal was suspended, resumes it — the successful flush that just
// landed re-recorded every session with snapshot-time ceilings, so
// durability and nonce safety are both restored. Caller holds flushMu.
func (d *Daemon) noteFlushSuccessLocked() {
	j := d.journal
	j.fails = 0
	j.backoff = 0
	j.retryAt.Store(0)
	d.metrics.JournalRetryBackoffMs.Set(0)
	if j.suspended.Swap(journalActive) != journalActive {
		d.metrics.JournalSuspended.Set(journalActive)
		d.recordEv(telemetry.EvJournalResume, 0, 0)
		j.fs.Remove(j.path + suspendedSuffix) // best-effort cleanup
	}
}

// suspendJournalingLocked degrades the daemon after sustained flush
// failure. The stale on-disk snapshot is invalidated first (renamed
// aside): if that succeeds — or there was nothing on disk — a crash
// during the suspension restores nothing, so no counter can ever be
// restored below a nonce used while suspended, and the live ceilings are
// safely lifted: full service, no durability. If even the invalidation
// fails, the stale snapshot could still be restored by a crash, so the
// fail-safe keeps the recorded ceilings binding: sessions stall when
// their reservation runs out rather than risk nonce reuse. Caller holds
// flushMu.
func (d *Daemon) suspendJournalingLocked() {
	j := d.journal
	mode := int32(journalFailSafe)
	if err := j.fs.Rename(j.path, j.path+suspendedSuffix); err == nil || errors.Is(err, os.ErrNotExist) {
		mode = journalUnjournaled
	}
	j.suspended.Store(mode)
	d.metrics.JournalSuspended.Set(int64(mode))
	d.degrade("journal-suspend", telemetry.EvJournalSuspend, 0, uint64(mode))
	if mode == journalUnjournaled {
		d.liftCeilingsLocked()
	}
}

// liftCeilingsLocked removes every live session's send-counter ceilings
// (valid only while the on-disk journal is invalidated). Caller holds
// flushMu; takes each session lock briefly, same order as a flush.
func (d *Daemon) liftCeilingsLocked() {
	d.reg.each(func(s *Session) {
		s.mu.Lock()
		if !s.closed {
			tr := s.srv.Transport()
			tr.Connection().SetSeqCeiling(sspcrypto.MaxSeq + 1)
			tr.Sender().SetNumCeiling(^uint64(0))
		}
		s.mu.Unlock()
	})
}

// JournalSuspended reports the suspension gauge (journalActive /
// journalUnjournaled / journalFailSafe) for tests and status surfaces.
func (d *Daemon) JournalSuspended() int {
	if d.journal == nil {
		return journalActive
	}
	return int(d.journal.suspended.Load())
}

// requestFlush asks the journal loop for an early flush (low reservation
// headroom, a freshly opened session). Non-blocking; coalesces.
func (d *Daemon) requestFlush() {
	select {
	case d.flushReq <- struct{}{}:
	default:
	}
}

// maybeRequestFlushLocked triggers an early flush when a session is
// consuming its counter reservation faster than the periodic cadence
// refreshes it. Caller holds s.mu.
func (s *Session) maybeRequestFlushLocked() {
	j := s.d.journal
	if j == nil {
		return
	}
	low := j.reserve / 4
	tr := s.srv.Transport()
	if tr.Connection().SeqRemaining() <= low || tr.Sender().NumRemaining() <= low {
		// A session can burn through its reservation by sending alone
		// (retransmits, server-push output) without otherwise dirtying
		// durable state; mark it so the incremental flush actually encodes
		// the raised ceilings — otherwise the early flush would be the
		// no-op that starves it.
		s.markDirty()
		s.d.requestFlush()
	}
}

// journalLoop is the async flush driver (Serve mode): periodic cadence,
// on-demand requests, and failed-flush retries. Simulation embedders
// call FlushJournal directly in virtual time instead (with retries
// riding the deadline heap — see TickDue). Flush attempts self-gate on
// the backoff state, so a request storm during an outage costs nothing;
// the loop only has to make sure it is AWAKE when the backoff expires,
// which is what the retryAt-aware sleep below does.
func (d *Daemon) journalLoop() {
	j := d.journal
	clk := d.cfg.Clock
	timer := clk.NewTimer(j.interval)
	defer timer.Stop()
	for {
		// While a failed flush is waiting out its backoff, stop selecting
		// on flushReq: attempts self-gate on the backoff anyway, so waking
		// for the low-headroom request storm would spin this loop at the
		// packet rate for the remainder of a disk outage. The timer below
		// is armed for the backoff deadline, which is the only instant
		// worth waking for.
		req := d.flushReq
		if j.retryAt.Load() != 0 {
			req = nil
		}
		select {
		case <-d.stop:
			return
		case <-timer.C():
		case <-req:
		}
		d.FlushJournal() // outcome recorded in metrics/backoff state
		sleep := j.interval
		if at := j.retryAt.Load(); at != 0 {
			// Recompute the backoff deadline from the Clock. A deadline
			// already in the past means the backoff expired while we were
			// busy: retry on the immediately-firing timer rather than
			// clamping to a busy-spin resleep.
			until := time.Unix(0, at).Sub(clk.Now())
			if until < sleep {
				sleep = until
			}
			if sleep < 0 {
				sleep = 0
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C():
			default:
			}
		}
		timer.Reset(sleep)
	}
}

// restoreFromJournal loads the state directory's checkpoint plus its
// matching-epoch segment tail (if present) and revives every non-stale
// session. Called from New before any traffic.
func (d *Daemon) restoreFromJournal() error {
	j := d.journal
	type segFile struct {
		name       string
		epoch, seq uint64
	}
	var segs []segFile
	if names, err := j.fs.ReadDir(j.dir); err == nil {
		for _, name := range names {
			if ep, sq, ok := parseSegmentName(name); ok {
				segs = append(segs, segFile{name: name, epoch: ep, seq: sq})
			}
		}
	}
	sort.Slice(segs, func(a, b int) bool {
		if segs[a].epoch != segs[b].epoch {
			return segs[a].epoch < segs[b].epoch
		}
		return segs[a].seq < segs[b].seq
	})
	// dropSegs discards orphaned segments (best effort), remembering the
	// highest orphan epoch so the first checkpoint this incarnation writes
	// supersedes even a segment the delete failed to remove.
	dropSegs := func() {
		for _, sg := range segs {
			if sg.epoch > j.epoch {
				j.epoch = sg.epoch
			}
			j.fs.Remove(filepath.Join(j.dir, sg.name))
		}
	}
	data, err := j.fs.ReadFile(j.path)
	if os.IsNotExist(err) {
		// No checkpoint: fresh boot, or a suspension invalidated it.
		// Orphan segments extend nothing restorable — deltas without their
		// base cannot be applied, and restoring nothing is always
		// nonce-safe (this is what keeps the suspended-crash contract:
		// nothing journaled while the snapshot was invalidated can revive).
		dropSegs()
		return nil
	}
	if err != nil {
		return fmt.Errorf("sessiond: reading journal: %w", err)
	}
	hdr, snaps, bad, err := decodeJournal(data)
	if err != nil {
		// The checkpoint exists but its header never survived to disk (a
		// rename torn by power loss, or a foreign file). Refusing to boot
		// would turn one bad sector into a dead daemon; restoring nothing
		// is always nonce-safe (no counter can be resealed by a session
		// that was never revived). Preserve the artifact for forensics and
		// start empty. The segment tail extends a checkpoint that cannot
		// be read, so it goes too.
		d.metrics.JournalBadRecords.Add(1)
		j.fs.Rename(j.path, j.path+corruptSuffix)
		dropSegs()
		return nil
	}
	d.metrics.JournalBadRecords.Add(int64(bad))
	j.epoch = hdr.Epoch
	replay := newJournalReplay(hdr, snaps)
	for _, sg := range segs {
		if sg.epoch != hdr.Epoch {
			// A crash between writing a compacted checkpoint and deleting
			// the old tail leaves stale-epoch segments; their content is
			// folded into the checkpoint already.
			j.fs.Remove(filepath.Join(j.dir, sg.name))
			continue
		}
		d.replaySegment(replay, filepath.Join(j.dir, sg.name), hdr.Epoch)
	}
	now := d.cfg.Clock.Now()
	maxID := replay.nextID
	for _, sn := range replay.sessionsSorted() {
		// Boot-time eviction of stale snapshots: a session that was idle
		// past the eviction horizon when the daemon died would have been
		// evicted had it kept running; don't resurrect it. Pre-issued
		// slots nobody ever redeemed wait indefinitely, as live ones do.
		if idle := d.cfg.IdleTimeout; idle > 0 && sn.Heard && now.Sub(sn.LastActive) >= idle {
			d.metrics.SnapshotsStale.Add(1)
			continue
		}
		if _, err := d.restoreSession(sn); err != nil {
			return fmt.Errorf("sessiond: restoring session %d: %w", sn.ID, err)
		}
		if sn.ID > maxID {
			maxID = sn.ID
		}
	}
	d.nextID.Store(maxID)
	return nil
}

// replaySegment folds one segment file into the replay state.
//
// Damage policy: truncation is benign, corruption is not. A torn tail
// (framing that runs out mid-record — the shape a crashed or short-write
// append leaves, since each segment gets exactly one Write call) keeps
// every CRC-complete record before it; that is consistent because a failed
// append requeues its whole batch, so every session the tear touched
// reappears as a full record in a later segment. The same goes for a file
// whose header never finished (unreadable, short, or inconsistent): the
// write that created it reported failure, so the file is skipped whole.
// Real corruption — a record that fails its CRC or decodes malformed with
// INTACT framing, which one truncated Write can never produce — poisons
// every session restored so far: later deltas might build on updates the
// gap swallowed, so they are ignored until a full record re-establishes
// their session. Dropping a session is always nonce-safe.
func (d *Daemon) replaySegment(replay *journalReplay, path string, epoch uint64) {
	j := d.journal
	data, err := j.fs.ReadFile(path)
	if err != nil {
		d.metrics.JournalBadRecords.Add(1)
		return
	}
	ep, _, body, err := decodeSegmentHeader(data)
	if err != nil || ep != epoch {
		d.metrics.JournalBadRecords.Add(1)
		return
	}
	recs, bad, torn := decodeSegmentRecords(body)
	poison := bad > 0 && !torn
	for _, rec := range recs {
		if !replay.applyRecord(rec) {
			// The CRC passed but the body is malformed: corruption, not a
			// tear. Nothing after it in this file can be trusted either.
			bad++
			poison = true
			break
		}
	}
	d.metrics.JournalBadRecords.Add(int64(bad))
	if poison {
		replay.poisonAll()
	}
}

// restoreSession revives one journaled session: restored screen and input
// stream, reserved counters, and — per SSP semantics — a fresh diff
// baseline of state 0, so the first frame to the surviving client is a
// full repaint it applies against its pristine initial state.
func (d *Daemon) restoreSession(sn *sessionSnapshot) (*Session, error) {
	if d.reg.lookup(sn.ID) != nil {
		return nil, fmt.Errorf("duplicate session id %d", sn.ID)
	}
	s := &Session{
		ID:      sn.ID,
		d:       d,
		key:     sn.Key,
		origW:   sn.OrigW,
		origH:   sn.OrigH,
		heapIdx: -1,
		done:    make(chan struct{}),
		inbox:   make(chan *inRun, d.inboxDepth()),
	}
	var raddr *netem.Addr
	if sn.HaveRemote {
		addr := sn.Remote
		raddr = &addr
	}
	srv, err := core.NewServer(core.ServerConfig{
		Key:         sn.Key,
		Clock:       d.cfg.Clock,
		Width:       sn.OrigW,
		Height:      sn.OrigH,
		Timing:      d.cfg.Timing,
		MinRTO:      d.cfg.MinRTO,
		MaxRTO:      d.cfg.MaxRTO,
		Envelope:    &network.Envelope{ID: sn.ID},
		Probe:       d.pipe,
		RecycleWire: d.cfg.RecycleWire,
		Emit:        func(wire []byte) { s.emit(wire) },
		HostInput:   func(data []byte) { s.hostInput(data) },
		Resume: &core.ServerResume{
			Current:      statesync.NewCompleteWithFramebuffer(sn.FB),
			Baseline:     statesync.NewComplete(sn.OrigW, sn.OrigH),
			Stream:       statesync.RestoreUserStream(sn.StreamSize),
			SendNumFloor: sn.NextStateNum,
			RecvNum:      sn.RecvNum,
			NextSeq:      sn.NextSeq,
			ExpectedSeq:  sn.ExpectedSeq,
			RemoteAddr:   raddr,
			Heard:        sn.Heard,
		},
	})
	if err != nil {
		return nil, err
	}
	s.srv = srv
	// Zero headroom until the post-restore flush records fresh
	// reservations; nothing is sent under the restored ceilings.
	srv.Transport().Connection().SetSeqCeiling(sn.NextSeq)
	srv.Transport().Sender().SetNumCeiling(sn.NextStateNum)
	s.lastActive = sn.LastActive
	// Host output the dead process had queued but not yet interpreted
	// flushes at (or immediately after) its original due time.
	s.pendingOut = sn.PendingOut
	// Reattach the host application. RestoreApp models an application that
	// survived the restart (a pty held open across a frontend restart, the
	// torture tests' transplanted apps); falling back to NewApp gives the
	// session a fresh application behind its restored screen. Start() is
	// never replayed — the restored screen already reflects history.
	if d.cfg.RestoreApp != nil {
		s.app = d.cfg.RestoreApp(s.ID)
	} else if d.cfg.NewApp != nil {
		s.app = d.cfg.NewApp(s.ID)
	}
	d.reg.insert(s)
	d.metrics.SessionsLive.Add(1)
	d.metrics.SessionsRestored.Add(1)
	s.mu.Lock()
	s.rearmLocked(d.cfg.Clock.Now())
	s.mu.Unlock()
	return s, nil
}
