package sessiond

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"repro/internal/binio"
	"repro/internal/netem"
	"repro/internal/sspcrypto"
	"repro/internal/terminal"
)

// This file defines the versioned binary codec for session snapshots and
// the journal file that aggregates them — the durable core that lets a
// sessiond restart resume every session instead of stranding its clients.
//
// A snapshot holds exactly what SSP needs to treat the restart as packet
// loss: the session key and ID, the per-direction counter reservations
// (outgoing sequence/nonce ceiling, state-number ceiling, incoming replay
// floor), the newest client state number and delivered-event count, a
// remote-address hint, the session's original terminal dimensions (the
// fresh-baseline diff target), and the serialized screen — plus the
// scrollback window when server-side history is enabled.
//
// Decode is hardened: every length is validated against the remaining
// input and hard bounds, every record carries a CRC, and any inconsistency
// returns an error — corrupted, truncated, or version-skewed journals can
// never panic the daemon.

// Journal file layout: header (magic, version, daemon fields), then
// sessionCount length-prefixed snapshot records, each followed by a CRC32
// (Castagnoli) of its bytes.
const (
	journalMagic = "MOSHJRNL"
	// journalVersion 2 added the checkpoint epoch (the log-structured
	// journal: checkpoint + segment tail). Version-1 files fail decode and
	// boot empty — always nonce-safe.
	journalVersion = 2

	// snapshotVersion tags each session record independently of the file
	// header, so individual records can evolve.
	snapshotVersion = 1

	// maxSnapshotLen bounds one session record; a corrupted length can
	// never force a huge allocation.
	maxSnapshotLen = 16 << 20
)

// ErrBadJournal reports a corrupted, truncated, or version-skewed journal
// or session snapshot.
var ErrBadJournal = errors.New("sessiond: malformed session journal")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// sessionSnapshot is the durable core of one session.
type sessionSnapshot struct {
	ID  uint64
	Key sspcrypto.Key

	// OrigW, OrigH are the session's dimensions at creation: the blank
	// baseline (state 0) the resume repaint diffs from, which must match
	// the client's pristine initial state exactly.
	OrigW, OrigH int

	// NextSeq is the outgoing nonce reservation ceiling: strictly above
	// every sequence number the recording incarnation could seal.
	NextSeq uint64
	// ExpectedSeq is the incoming replay floor at flush time.
	ExpectedSeq uint64
	// NextStateNum is the state-number reservation ceiling (same two-phase
	// rule as NextSeq).
	NextStateNum uint64
	// RecvNum is the newest client state number received.
	RecvNum uint64
	// StreamSize is the user-input stream's global event count: everything
	// at or below it was delivered to the application.
	StreamSize uint64

	// Remote address hint for immediate post-restore sending.
	HaveRemote bool
	Remote     netem.Addr
	// Heard marks that authentic client traffic had arrived.
	Heard bool
	// LastActive is the session's idle-eviction clock, for boot-time
	// eviction of stale snapshots.
	LastActive time.Time

	// PendingOut carries host output that was queued (application think
	// time) but not yet interpreted at flush time, so a restart drops no
	// bytes between the application and the terminal.
	PendingOut []timedOutput

	// FB is the serialized screen (and scrollback window, when enabled).
	FB *terminal.Framebuffer
}

// Bounds for PendingOut decode.
const (
	maxPendingOut      = 1 << 12
	maxPendingOutBytes = 1 << 20
)

// appendSessionSnapshot encodes one snapshot record (without the length
// prefix or CRC the journal wraps around it). With a warmed buffer the
// steady-state encode performs no heap allocations.
func appendSessionSnapshot(buf []byte, sn *sessionSnapshot) []byte {
	buf = append(buf, snapshotVersion)
	buf = binary.AppendUvarint(buf, sn.ID)
	buf = append(buf, sn.Key[:]...)
	buf = binary.AppendUvarint(buf, uint64(sn.OrigW))
	buf = binary.AppendUvarint(buf, uint64(sn.OrigH))
	buf = binary.AppendUvarint(buf, sn.NextSeq)
	buf = binary.AppendUvarint(buf, sn.ExpectedSeq)
	buf = binary.AppendUvarint(buf, sn.NextStateNum)
	buf = binary.AppendUvarint(buf, sn.RecvNum)
	buf = binary.AppendUvarint(buf, sn.StreamSize)
	var fl byte
	if sn.HaveRemote {
		fl |= 1
	}
	if sn.Heard {
		fl |= 2
	}
	buf = append(buf, fl)
	buf = binary.AppendUvarint(buf, uint64(sn.Remote.Host))
	buf = binary.AppendUvarint(buf, uint64(sn.Remote.Port))
	buf = binary.AppendVarint(buf, sn.LastActive.UnixNano())
	buf = binary.AppendUvarint(buf, uint64(len(sn.PendingOut)))
	for _, po := range sn.PendingOut {
		buf = binary.AppendVarint(buf, po.at.UnixNano())
		buf = binary.AppendUvarint(buf, uint64(len(po.data)))
		buf = append(buf, po.data...)
	}
	return sn.FB.AppendSnapshot(buf)
}

// decodeSessionSnapshot reverses appendSessionSnapshot. It never panics on
// malformed input and requires the record to be fully consumed.
func decodeSessionSnapshot(data []byte) (*sessionSnapshot, error) {
	r := binio.NewReader(data)
	ver, ok := r.Byte()
	if !ok {
		return nil, ErrBadJournal
	}
	if ver != snapshotVersion {
		return nil, fmt.Errorf("%w: snapshot version %d", ErrBadJournal, ver)
	}
	sn := &sessionSnapshot{}
	if sn.ID, ok = r.Uvarint(); !ok {
		return nil, ErrBadJournal
	}
	rawKey, ok := r.Bytes(sspcrypto.KeySize)
	if !ok {
		return nil, ErrBadJournal
	}
	key, err := sspcrypto.KeyFromBytes(rawKey)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadJournal, err)
	}
	sn.Key = key
	w, ok := r.BoundedUvarint(1 << 12)
	if !ok || w < 1 {
		return nil, ErrBadJournal
	}
	h, ok := r.BoundedUvarint(1 << 12)
	if !ok || h < 1 {
		return nil, ErrBadJournal
	}
	sn.OrigW, sn.OrigH = int(w), int(h)
	for _, dst := range []*uint64{&sn.NextSeq, &sn.ExpectedSeq, &sn.NextStateNum, &sn.RecvNum, &sn.StreamSize} {
		if *dst, ok = r.Uvarint(); !ok {
			return nil, ErrBadJournal
		}
	}
	fl, ok := r.Byte()
	if !ok {
		return nil, ErrBadJournal
	}
	sn.HaveRemote = fl&1 != 0
	sn.Heard = fl&2 != 0
	host, ok := r.BoundedUvarint(uint64(^uint32(0)))
	if !ok {
		return nil, ErrBadJournal
	}
	port, ok := r.BoundedUvarint(uint64(^uint16(0)))
	if !ok {
		return nil, ErrBadJournal
	}
	sn.Remote = netem.Addr{Host: uint32(host), Port: uint16(port)}
	nanos, ok := r.Varint()
	if !ok {
		return nil, ErrBadJournal
	}
	sn.LastActive = time.Unix(0, nanos)
	poCount, ok := r.BoundedUvarint(maxPendingOut)
	if !ok {
		return nil, ErrBadJournal
	}
	for i := uint64(0); i < poCount; i++ {
		at, ok := r.Varint()
		if !ok {
			return nil, ErrBadJournal
		}
		dlen, ok := r.BoundedUvarint(maxPendingOutBytes)
		if !ok {
			return nil, ErrBadJournal
		}
		data, ok := r.Bytes(int(dlen))
		if !ok {
			return nil, ErrBadJournal
		}
		sn.PendingOut = append(sn.PendingOut, timedOutput{
			at:   time.Unix(0, at),
			data: append([]byte(nil), data...),
		})
	}
	fb, rest, err := terminal.DecodeSnapshot(r.Rest())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadJournal, err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadJournal, len(rest))
	}
	sn.FB = fb
	return sn, nil
}

// journalHeader is the daemon-level state a journal carries besides the
// per-session records.
type journalHeader struct {
	// NextID resumes session-ID issuance so post-restart OpenSession calls
	// never collide with restored sessions.
	NextID uint64
	// Epoch names the checkpoint generation. Log segments carry the epoch
	// of the checkpoint they extend; boot replays only segments whose
	// epoch matches the checkpoint on disk, so a crash between writing a
	// compacted checkpoint and deleting the old segments can never replay
	// a stale tail.
	Epoch uint64
	// FlushedAt stamps the snapshot (diagnostics; eviction uses each
	// session's own LastActive).
	FlushedAt time.Time
}

// appendJournal encodes a complete journal file: header (CRC-protected)
// plus one wrapped record per snapshot, in the order given.
func appendJournal(buf []byte, hdr journalHeader, records [][]byte) []byte {
	start := len(buf)
	buf = append(buf, journalMagic...)
	buf = binary.AppendUvarint(buf, journalVersion)
	buf = binary.AppendUvarint(buf, hdr.NextID)
	buf = binary.AppendUvarint(buf, hdr.Epoch)
	buf = binary.AppendVarint(buf, hdr.FlushedAt.UnixNano())
	buf = binary.AppendUvarint(buf, uint64(len(records)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[start:], crcTable))
	for _, rec := range records {
		buf = binary.AppendUvarint(buf, uint64(len(rec)))
		buf = append(buf, rec...)
		buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(rec, crcTable))
	}
	return buf
}

// decodeJournal parses a journal file. Records that fail their CRC or
// their own decode are skipped, and a truncated or garbled record section
// abandons only the remainder — both reported via badRecords — so one
// corrupted session (or a torn tail) cannot strand every other. Only
// header corruption fails the whole load: the header's CRC covers the
// session count and the NextID issuance floor, which must be trusted
// before any session is revived.
func decodeJournal(data []byte) (hdr journalHeader, snaps []*sessionSnapshot, badRecords int, err error) {
	r := binio.NewReader(data)
	magic, ok := r.Bytes(len(journalMagic))
	if !ok || string(magic) != journalMagic {
		return hdr, nil, 0, fmt.Errorf("%w: bad magic", ErrBadJournal)
	}
	ver, ok := r.Uvarint()
	if !ok {
		return hdr, nil, 0, ErrBadJournal
	}
	if ver != journalVersion {
		return hdr, nil, 0, fmt.Errorf("%w: journal version %d", ErrBadJournal, ver)
	}
	if hdr.NextID, ok = r.Uvarint(); !ok {
		return hdr, nil, 0, ErrBadJournal
	}
	if hdr.Epoch, ok = r.Uvarint(); !ok {
		return hdr, nil, 0, ErrBadJournal
	}
	nanos, ok := r.Varint()
	if !ok {
		return hdr, nil, 0, ErrBadJournal
	}
	hdr.FlushedAt = time.Unix(0, nanos)
	count, ok := r.BoundedUvarint(1 << 20)
	if !ok {
		return hdr, nil, 0, ErrBadJournal
	}
	hdrLen := len(data) - r.Len()
	sum, ok := r.Bytes(4)
	if !ok || binary.LittleEndian.Uint32(sum) != crc32.Checksum(data[:hdrLen], crcTable) {
		return hdr, nil, 0, fmt.Errorf("%w: header checksum", ErrBadJournal)
	}
	for i := uint64(0); i < count; i++ {
		rlen, lenOK := r.Uvarint()
		rec, recOK := r.Bytes(int(rlen))
		sum, sumOK := r.Bytes(4)
		if !lenOK || rlen > maxSnapshotLen || !recOK || !sumOK {
			// Torn tail: the record framing itself is gone, so nothing
			// after this point can be located. Count the remainder as bad
			// and keep what already verified.
			badRecords += int(count - i)
			return hdr, snaps, badRecords, nil
		}
		if binary.LittleEndian.Uint32(sum) != crc32.Checksum(rec, crcTable) {
			badRecords++
			continue
		}
		sn, err := decodeSessionSnapshot(rec)
		if err != nil {
			badRecords++
			continue
		}
		snaps = append(snaps, sn)
	}
	if r.Len() != 0 {
		badRecords++ // trailing garbage past the CRC-verified count
	}
	return hdr, snaps, badRecords, nil
}
