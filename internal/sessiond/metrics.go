package sessiond

import (
	"expvar"
	"fmt"
)

// Metrics counts the daemon's activity. All fields are safe for concurrent
// update; tests read them directly and production publishes them through
// the expvar registry (and so over any net/http debug listener).
type Metrics struct {
	SessionsLive    expvar.Int // currently registered sessions
	SessionsOpened  expvar.Int // cumulative OpenSession successes
	SessionsEvicted expvar.Int // sessions removed by idle eviction
	SessionsClosed  expvar.Int // sessions removed by explicit close

	PacketsIn  expvar.Int // datagrams offered to the daemon
	BytesIn    expvar.Int
	PacketsOut expvar.Int // datagrams emitted by all sessions
	BytesOut   expvar.Int

	DropsBadEnvelope    expvar.Int // datagrams without a parseable envelope
	DropsUnknownSession expvar.Int // envelope named no live session
	DropsAuth           expvar.Int // per-session receive failures (forged, stale, replayed)
	DropsQueueFull      expvar.Int // async dispatch refused by a full session inbox

	DispatchQueueDepth expvar.Int // packets currently queued to session workers
	RoamingEvents      expvar.Int // authentic source-address changes observed
}

// Publish registers every counter with the process-wide expvar registry
// under prefix (e.g. "sessiond.sessions_live"). Call it at most once per
// process per prefix — expvar panics on duplicate names.
func (m *Metrics) Publish(prefix string) {
	for _, v := range []struct {
		name string
		v    expvar.Var
	}{
		{"sessions_live", &m.SessionsLive},
		{"sessions_opened", &m.SessionsOpened},
		{"sessions_evicted", &m.SessionsEvicted},
		{"sessions_closed", &m.SessionsClosed},
		{"packets_in", &m.PacketsIn},
		{"bytes_in", &m.BytesIn},
		{"packets_out", &m.PacketsOut},
		{"bytes_out", &m.BytesOut},
		{"drops_bad_envelope", &m.DropsBadEnvelope},
		{"drops_unknown_session", &m.DropsUnknownSession},
		{"drops_auth", &m.DropsAuth},
		{"drops_queue_full", &m.DropsQueueFull},
		{"dispatch_queue_depth", &m.DispatchQueueDepth},
		{"roaming_events", &m.RoamingEvents},
	} {
		expvar.Publish(prefix+"."+v.name, v.v)
	}
}

// String renders a one-line summary for logs and the load harness.
func (m *Metrics) String() string {
	return fmt.Sprintf(
		"sessions=%d (opened=%d evicted=%d) in=%d pkts/%d B out=%d pkts/%d B drops[env=%d unk=%d auth=%d queue=%d] roams=%d",
		m.SessionsLive.Value(), m.SessionsOpened.Value(), m.SessionsEvicted.Value(),
		m.PacketsIn.Value(), m.BytesIn.Value(), m.PacketsOut.Value(), m.BytesOut.Value(),
		m.DropsBadEnvelope.Value(), m.DropsUnknownSession.Value(), m.DropsAuth.Value(),
		m.DropsQueueFull.Value(), m.RoamingEvents.Value())
}
