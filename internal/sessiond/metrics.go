package sessiond

import (
	"expvar"
	"fmt"
	"sync/atomic"

	"repro/internal/terminal"
)

// batchHistBuckets caps the histogram's resolution; batches larger than
// the last bucket (far beyond any sendmmsg vector this stack issues)
// accumulate there.
const batchHistBuckets = 128

// BatchHist is a concurrency-safe fixed-bucket histogram of batch sizes
// (1..batchHistBuckets datagrams per syscall). It answers the operational
// question the batched pipeline raises: how many datagrams is one syscall
// actually moving?
type BatchHist struct {
	counts [batchHistBuckets + 1]atomic.Int64
}

// Observe records one batch of n datagrams.
func (h *BatchHist) Observe(n int) {
	if n < 1 {
		return
	}
	if n > batchHistBuckets {
		n = batchHistBuckets
	}
	h.counts[n].Add(1)
}

// Samples reports how many batches have been observed.
func (h *BatchHist) Samples() int64 {
	var total int64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Quantile returns the batch size at quantile q in [0,1] (0 when no
// samples have been observed).
func (h *BatchHist) Quantile(q float64) int {
	total := h.Samples()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total-1))
	var seen int64
	for i := 1; i <= batchHistBuckets; i++ {
		seen += h.counts[i].Load()
		if seen > rank {
			return i
		}
	}
	return batchHistBuckets
}

// expvarValue renders the histogram's summary for /debug/vars.
func (h *BatchHist) expvarValue() any {
	return map[string]int64{
		"samples": h.Samples(),
		"p50":     int64(h.Quantile(0.50)),
		"p99":     int64(h.Quantile(0.99)),
	}
}

// Metrics counts the daemon's activity. All fields are safe for concurrent
// update; tests read them directly and production publishes them through
// the expvar registry (and so over any net/http debug listener).
type Metrics struct {
	SessionsLive    expvar.Int // currently registered sessions
	SessionsOpened  expvar.Int // cumulative OpenSession successes
	SessionsEvicted expvar.Int // sessions removed by idle eviction
	SessionsClosed  expvar.Int // sessions removed by explicit close

	PacketsIn  expvar.Int // datagrams offered to the daemon
	BytesIn    expvar.Int
	PacketsOut expvar.Int // datagrams emitted by all sessions
	BytesOut   expvar.Int

	DropsBadEnvelope    expvar.Int // datagrams without a parseable envelope
	DropsUnknownSession expvar.Int // envelope named no live session
	DropsAuth           expvar.Int // per-session receive failures (forged, stale, replayed)
	DropsQueueFull      expvar.Int // async dispatch refused by a full session inbox

	DispatchQueueDepth expvar.Int // packets currently queued to session workers
	RoamingEvents      expvar.Int // authentic source-address changes observed

	// Batched-pipeline counters. ReadBatchCalls/WriteBatchCalls count
	// syscalls (real on a served socket, modeled one-per-batch in
	// simulation); with PacketsIn/PacketsOut they yield syscalls-per-
	// packet, the number the vectorized pipeline exists to shrink.
	ReadBatchCalls    expvar.Int
	WriteBatchCalls   expvar.Int
	ReadBatchSizes    BatchHist  // datagrams moved per read syscall
	WriteBatchSizes   BatchHist  // datagrams moved per write syscall
	EgressQueueDepth  expvar.Int // datagrams waiting on the egress ring
	DropsEgressFull   expvar.Int // datagrams dropped at a full egress ring (backpressure)
	EgressWriteErrors expvar.Int // datagrams dropped by a failing socket write

	SessionsRestored  expvar.Int // sessions revived from the journal at boot
	SnapshotsStale    expvar.Int // journal records evicted at boot (idle past the horizon)
	JournalFlushes    expvar.Int // successful journal writes
	JournalBytes      expvar.Int // cumulative journal bytes written
	JournalErrors     expvar.Int // failed journal writes (reservations not extended)
	JournalBadRecords expvar.Int // journal records skipped for CRC/decode failure

	// Degradation observability (the fault-injection hardening). The
	// gauges make the daemon's failure posture visible from /debug/vars:
	// an operator watching journal_suspended knows exactly what a crash
	// right now would lose.
	JournalFlushFailures  expvar.Int // flush attempts that failed (before any retry succeeded)
	JournalSuspended      expvar.Int // gauge: 0 active, 1 suspended (unjournaled), 2 suspended (fail-safe)
	JournalRetryBackoffMs expvar.Int // gauge: current flush-retry backoff in ms (0 = healthy)
	DropsUnauthQuota      expvar.Int // datagrams refused by the per-source unauth token bucket
	ShedEvents            expvar.Int // times sustained pressure activated the shed policy
	Shedding              expvar.Int // gauge: 1 while the shed policy is active
	ReadErrorsTransient   expvar.Int // transient socket read errors absorbed by ServeBatch
}

// Publish registers every counter with the process-wide expvar registry
// under prefix (e.g. "sessiond.sessions_live"). Call it at most once per
// process per prefix — expvar panics on duplicate names.
func (m *Metrics) Publish(prefix string) {
	for _, v := range []struct {
		name string
		v    expvar.Var
	}{
		{"sessions_live", &m.SessionsLive},
		{"sessions_opened", &m.SessionsOpened},
		{"sessions_evicted", &m.SessionsEvicted},
		{"sessions_closed", &m.SessionsClosed},
		{"packets_in", &m.PacketsIn},
		{"bytes_in", &m.BytesIn},
		{"packets_out", &m.PacketsOut},
		{"bytes_out", &m.BytesOut},
		{"drops_bad_envelope", &m.DropsBadEnvelope},
		{"drops_unknown_session", &m.DropsUnknownSession},
		{"drops_auth", &m.DropsAuth},
		{"drops_queue_full", &m.DropsQueueFull},
		{"dispatch_queue_depth", &m.DispatchQueueDepth},
		{"roaming_events", &m.RoamingEvents},
		{"read_batch_calls", &m.ReadBatchCalls},
		{"write_batch_calls", &m.WriteBatchCalls},
		{"egress_queue_depth", &m.EgressQueueDepth},
		{"drops_egress_full", &m.DropsEgressFull},
		{"egress_write_errors", &m.EgressWriteErrors},
		{"sessions_restored", &m.SessionsRestored},
		{"snapshots_stale", &m.SnapshotsStale},
		{"journal_flushes", &m.JournalFlushes},
		{"journal_bytes", &m.JournalBytes},
		{"journal_errors", &m.JournalErrors},
		{"journal_bad_records", &m.JournalBadRecords},
		{"journal_flush_failures", &m.JournalFlushFailures},
		{"journal_suspended", &m.JournalSuspended},
		{"journal_retry_backoff_ms", &m.JournalRetryBackoffMs},
		{"drops_unauth_quota", &m.DropsUnauthQuota},
		{"shed_events", &m.ShedEvents},
		{"shedding", &m.Shedding},
		{"read_errors_transient", &m.ReadErrorsTransient},
	} {
		expvar.Publish(prefix+"."+v.name, v.v)
	}
	// Batch-size distributions and the syscalls the vectorized pipeline
	// saved versus a one-datagram-per-syscall loop.
	expvar.Publish(prefix+".read_batch_size", expvar.Func(m.ReadBatchSizes.expvarValue))
	expvar.Publish(prefix+".write_batch_size", expvar.Func(m.WriteBatchSizes.expvarValue))
	expvar.Publish(prefix+".syscalls_avoided", expvar.Func(func() any {
		return m.SyscallsAvoided()
	}))
}

// SyscallsAvoided reports how many read+write syscalls batching has saved
// so far versus the one-per-datagram baseline.
func (m *Metrics) SyscallsAvoided() int64 {
	avoided := (m.PacketsIn.Value() - m.ReadBatchCalls.Value()) +
		(m.PacketsOut.Value() - m.WriteBatchCalls.Value())
	if avoided < 0 {
		return 0
	}
	return avoided
}

// ScreenStateStats aggregates the resident screen-state footprint across
// every live session: how much terminal memory the daemon actually holds
// and how much of it is shared or recycled. Together with the process-wide
// interned-grapheme count it makes memory-per-session observable under
// load.
type ScreenStateStats struct {
	// Sessions sampled (live at collection time).
	Sessions int
	// ScreenRows is the summed grid height; SharedScreenRows counts grid
	// rows currently shared copy-on-write with a sender snapshot.
	ScreenRows, SharedScreenRows int
	// PooledRows counts recycled rows waiting on per-session free lists.
	PooledRows int
	// ScrollbackRows is the summed visible history; ScrollbackArenaRows
	// counts shared-arena entries kept alive (retained for structural
	// sharing with snapshots, ≥ ScrollbackRows until compaction).
	ScrollbackRows, ScrollbackArenaRows int
}

// ScreenStateStats samples every live session's framebuffer footprint.
// It takes each session's lock briefly; intended for metric scrapes.
func (d *Daemon) ScreenStateStats() ScreenStateStats {
	var st ScreenStateStats
	d.reg.each(func(s *Session) {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		m := s.srv.Terminal().Framebuffer().MemStats()
		s.mu.Unlock()
		st.Sessions++
		st.ScreenRows += m.ScreenRows
		st.SharedScreenRows += m.SharedScreenRows
		st.PooledRows += m.PooledRows
		st.ScrollbackRows += m.ScrollbackRows
		st.ScrollbackArenaRows += m.ScrollbackArenaRows
	})
	return st
}

// PublishExpvar registers the daemon's counters plus resident screen-state
// gauges with the process-wide expvar registry under prefix. The
// screen-state gauge walks every session at scrape time (one sweep per
// render, sessions locked briefly); interned_graphemes is the process-wide
// grapheme table size. Call at most once per process per prefix — expvar
// panics on duplicate names.
func (d *Daemon) PublishExpvar(prefix string) {
	d.metrics.Publish(prefix)
	expvar.Publish(prefix+".interned_graphemes", expvar.Func(func() any {
		return terminal.InternedGraphemes()
	}))
	expvar.Publish(prefix+".screen_state", expvar.Func(func() any {
		return d.ScreenStateStats()
	}))
}

// String renders a one-line summary for logs and the load harness.
func (m *Metrics) String() string {
	return fmt.Sprintf(
		"sessions=%d (opened=%d evicted=%d) in=%d pkts/%d B out=%d pkts/%d B drops[env=%d unk=%d auth=%d queue=%d] roams=%d",
		m.SessionsLive.Value(), m.SessionsOpened.Value(), m.SessionsEvicted.Value(),
		m.PacketsIn.Value(), m.BytesIn.Value(), m.PacketsOut.Value(), m.BytesOut.Value(),
		m.DropsBadEnvelope.Value(), m.DropsUnknownSession.Value(), m.DropsAuth.Value(),
		m.DropsQueueFull.Value(), m.RoamingEvents.Value())
}
