package sessiond

import (
	"expvar"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/statesync"
	"repro/internal/telemetry"
	"repro/internal/terminal"
)

// batchHistBuckets caps the histogram's resolution; batches larger than
// the last bucket (far beyond any sendmmsg vector this stack issues)
// accumulate there.
const batchHistBuckets = 128

// BatchHist is a concurrency-safe histogram of batch sizes
// (1..batchHistBuckets datagrams per syscall). It answers the operational
// question the batched pipeline raises: how many datagrams is one syscall
// actually moving? It is a thin clamp over telemetry.Hist: with subBits=8
// every value up to 256 gets an exact bucket, so clamping to 128 keeps the
// pre-telemetry quantiles bit-for-bit.
type BatchHist struct {
	once sync.Once
	h    *telemetry.Hist
}

func (h *BatchHist) hist() *telemetry.Hist {
	h.once.Do(func() { h.h = telemetry.NewHist(8) })
	return h.h
}

// Observe records one batch of n datagrams.
func (h *BatchHist) Observe(n int) {
	if n < 1 {
		return
	}
	if n > batchHistBuckets {
		n = batchHistBuckets
	}
	h.hist().Observe(int64(n))
}

// Samples reports how many batches have been observed.
func (h *BatchHist) Samples() int64 { return h.hist().Count() }

// Quantile returns the batch size at quantile q in [0,1] (0 when no
// samples have been observed).
func (h *BatchHist) Quantile(q float64) int { return int(h.hist().Quantile(q)) }

// expvarValue renders the histogram's summary for /debug/vars.
func (h *BatchHist) expvarValue() any {
	return map[string]int64{
		"samples": h.Samples(),
		"p50":     int64(h.Quantile(0.50)),
		"p99":     int64(h.Quantile(0.99)),
	}
}

// Metrics counts the daemon's activity. All fields are safe for concurrent
// update; tests read them directly and production publishes them through
// the expvar registry (and so over any net/http debug listener).
type Metrics struct {
	SessionsLive    expvar.Int // currently registered sessions
	SessionsOpened  expvar.Int // cumulative OpenSession successes
	SessionsEvicted expvar.Int // sessions removed by idle eviction
	SessionsClosed  expvar.Int // sessions removed by explicit close

	PacketsIn  expvar.Int // datagrams offered to the daemon
	BytesIn    expvar.Int
	PacketsOut expvar.Int // datagrams emitted by all sessions
	BytesOut   expvar.Int

	DropsBadEnvelope    expvar.Int // datagrams without a parseable envelope
	DropsUnknownSession expvar.Int // envelope named no live session
	DropsAuth           expvar.Int // per-session receive failures (forged, stale, replayed)
	DropsQueueFull      expvar.Int // async dispatch refused by a full session inbox

	DispatchQueueDepth expvar.Int // packets currently queued to session workers
	RoamingEvents      expvar.Int // authentic source-address changes observed

	// Batched-pipeline counters. ReadBatchCalls/WriteBatchCalls count
	// syscalls (real on a served socket, modeled one-per-batch in
	// simulation); with PacketsIn/PacketsOut they yield syscalls-per-
	// packet, the number the vectorized pipeline exists to shrink.
	ReadBatchCalls    expvar.Int
	WriteBatchCalls   expvar.Int
	ReadBatchSizes    BatchHist  // datagrams moved per read syscall
	WriteBatchSizes   BatchHist  // datagrams moved per write syscall
	EgressQueueDepth  expvar.Int // datagrams waiting on the egress ring
	DropsEgressFull   expvar.Int // datagrams dropped at a full egress ring (backpressure)
	EgressWriteErrors expvar.Int // datagrams dropped by a failing socket write

	// Stack traversals count how many times the kernel's UDP stack ran
	// per direction: one per wire datagram on mmsg/loop/io_uring paths,
	// one per coalesced super-datagram on GSO/GRO paths. With PacketsIn/
	// PacketsOut they yield stack-traversals-per-packet — the below-
	// syscall cost GSO exists to shrink (a syscall moving 64 datagrams
	// still pays 64 stack traversals without segmentation offload). Real
	// served sockets meter through udpbatch.TraversalCounter; simulation
	// models the same run arithmetic via udpbatch.SegmentRun.
	StackTraversalsIn  expvar.Int
	StackTraversalsOut expvar.Int

	SessionsRestored  expvar.Int // sessions revived from the journal at boot
	SnapshotsStale    expvar.Int // journal records evicted at boot (idle past the horizon)
	JournalFlushes    expvar.Int // successful journal writes (checkpoints and segments)
	JournalBytes      expvar.Int // cumulative journal bytes written (= journal_flush_bytes)
	JournalErrors     expvar.Int // failed journal writes (reservations not extended)
	JournalBadRecords expvar.Int // journal records skipped for CRC/decode failure

	// Incremental-journal accounting. JournalChangedBytes is the encoded
	// size of the records covering sessions whose durable core actually
	// changed — the denominator of the write-amplification ratio
	// (JournalWriteAmp); with full rewrites the numerator additionally
	// carries every unchanged session, which is the waste the segment log
	// eliminates.
	JournalChangedBytes expvar.Int
	JournalSegments     expvar.Int // gauge: live segment files since the last checkpoint
	CompactionRuns      expvar.Int // checkpoints triggered by segment-tail growth

	// Degradation observability (the fault-injection hardening). The
	// gauges make the daemon's failure posture visible from /debug/vars:
	// an operator watching journal_suspended knows exactly what a crash
	// right now would lose.
	JournalFlushFailures  expvar.Int // flush attempts that failed (before any retry succeeded)
	JournalSuspended      expvar.Int // gauge: 0 active, 1 suspended (unjournaled), 2 suspended (fail-safe)
	JournalRetryBackoffMs expvar.Int // gauge: current flush-retry backoff in ms (0 = healthy)
	DropsUnauthQuota      expvar.Int // datagrams refused by the per-source unauth token bucket
	ShedEvents            expvar.Int // times sustained pressure activated the shed policy
	Shedding              expvar.Int // gauge: 1 while the shed policy is active
	ReadErrorsTransient   expvar.Int // transient socket read errors absorbed by ServeBatch
}

// metricFields maps every published counter name to its accessor, so the
// expvar registrations can read through an atomic slot (see Publish).
var metricFields = []struct {
	name string
	get  func(m *Metrics) int64
}{
	{"sessions_live", func(m *Metrics) int64 { return m.SessionsLive.Value() }},
	{"sessions_opened", func(m *Metrics) int64 { return m.SessionsOpened.Value() }},
	{"sessions_evicted", func(m *Metrics) int64 { return m.SessionsEvicted.Value() }},
	{"sessions_closed", func(m *Metrics) int64 { return m.SessionsClosed.Value() }},
	{"packets_in", func(m *Metrics) int64 { return m.PacketsIn.Value() }},
	{"bytes_in", func(m *Metrics) int64 { return m.BytesIn.Value() }},
	{"packets_out", func(m *Metrics) int64 { return m.PacketsOut.Value() }},
	{"bytes_out", func(m *Metrics) int64 { return m.BytesOut.Value() }},
	{"drops_bad_envelope", func(m *Metrics) int64 { return m.DropsBadEnvelope.Value() }},
	{"drops_unknown_session", func(m *Metrics) int64 { return m.DropsUnknownSession.Value() }},
	{"drops_auth", func(m *Metrics) int64 { return m.DropsAuth.Value() }},
	{"drops_queue_full", func(m *Metrics) int64 { return m.DropsQueueFull.Value() }},
	{"dispatch_queue_depth", func(m *Metrics) int64 { return m.DispatchQueueDepth.Value() }},
	{"roaming_events", func(m *Metrics) int64 { return m.RoamingEvents.Value() }},
	{"read_batch_calls", func(m *Metrics) int64 { return m.ReadBatchCalls.Value() }},
	{"write_batch_calls", func(m *Metrics) int64 { return m.WriteBatchCalls.Value() }},
	{"egress_queue_depth", func(m *Metrics) int64 { return m.EgressQueueDepth.Value() }},
	{"drops_egress_full", func(m *Metrics) int64 { return m.DropsEgressFull.Value() }},
	{"egress_write_errors", func(m *Metrics) int64 { return m.EgressWriteErrors.Value() }},
	{"stack_traversals_in", func(m *Metrics) int64 { return m.StackTraversalsIn.Value() }},
	{"stack_traversals_out", func(m *Metrics) int64 { return m.StackTraversalsOut.Value() }},
	{"sessions_restored", func(m *Metrics) int64 { return m.SessionsRestored.Value() }},
	{"snapshots_stale", func(m *Metrics) int64 { return m.SnapshotsStale.Value() }},
	{"journal_flushes", func(m *Metrics) int64 { return m.JournalFlushes.Value() }},
	{"journal_bytes", func(m *Metrics) int64 { return m.JournalBytes.Value() }},
	{"journal_errors", func(m *Metrics) int64 { return m.JournalErrors.Value() }},
	{"journal_bad_records", func(m *Metrics) int64 { return m.JournalBadRecords.Value() }},
	{"journal_flush_bytes", func(m *Metrics) int64 { return m.JournalBytes.Value() }},
	{"journal_changed_bytes", func(m *Metrics) int64 { return m.JournalChangedBytes.Value() }},
	{"journal_segments", func(m *Metrics) int64 { return m.JournalSegments.Value() }},
	{"compaction_runs", func(m *Metrics) int64 { return m.CompactionRuns.Value() }},
	{"journal_flush_failures", func(m *Metrics) int64 { return m.JournalFlushFailures.Value() }},
	{"journal_suspended", func(m *Metrics) int64 { return m.JournalSuspended.Value() }},
	{"journal_retry_backoff_ms", func(m *Metrics) int64 { return m.JournalRetryBackoffMs.Value() }},
	{"drops_unauth_quota", func(m *Metrics) int64 { return m.DropsUnauthQuota.Value() }},
	{"shed_events", func(m *Metrics) int64 { return m.ShedEvents.Value() }},
	{"shedding", func(m *Metrics) int64 { return m.Shedding.Value() }},
	{"read_errors_transient", func(m *Metrics) int64 { return m.ReadErrorsTransient.Value() }},
}

// pubMu guards the prefix→slot maps below. expvar.Publish panics on a
// duplicate name, so each prefix is registered exactly once, with every
// registered Func reading through an atomic slot; republishing the same
// prefix (a daemon restarted in-process, a test constructing a fresh
// Metrics) just swaps the slot.
var (
	pubMu       sync.Mutex
	metricSlots = map[string]*atomic.Pointer[Metrics]{}
	daemonSlots = map[string]*atomic.Pointer[Daemon]{}
)

// Publish registers every counter with the process-wide expvar registry
// under prefix (e.g. "sessiond.sessions_live"). Idempotent per prefix:
// the first call registers the names, later calls re-point them at m —
// no duplicate-name panic, and stale objects stop being scraped.
func (m *Metrics) Publish(prefix string) {
	pubMu.Lock()
	defer pubMu.Unlock()
	if slot, ok := metricSlots[prefix]; ok {
		slot.Store(m)
		return
	}
	slot := &atomic.Pointer[Metrics]{}
	slot.Store(m)
	metricSlots[prefix] = slot
	for _, f := range metricFields {
		get := f.get
		// An expvar.Func returning int64 renders exactly like expvar.Int
		// (both are json-encoded integers), so swapping the registration
		// style is invisible to scrapers.
		expvar.Publish(prefix+"."+f.name, expvar.Func(func() any { return get(slot.Load()) }))
	}
	// Batch-size distributions and the syscalls the vectorized pipeline
	// saved versus a one-datagram-per-syscall loop.
	expvar.Publish(prefix+".read_batch_size", expvar.Func(func() any {
		return slot.Load().ReadBatchSizes.expvarValue()
	}))
	expvar.Publish(prefix+".write_batch_size", expvar.Func(func() any {
		return slot.Load().WriteBatchSizes.expvarValue()
	}))
	expvar.Publish(prefix+".syscalls_avoided", expvar.Func(func() any {
		return slot.Load().SyscallsAvoided()
	}))
	// Float-valued ratio: published as a Func because the int64-rendering
	// metricFields table cannot carry it.
	expvar.Publish(prefix+".journal_write_amp", expvar.Func(func() any {
		return slot.Load().JournalWriteAmp()
	}))
}

// JournalWriteAmp reports the journal's cumulative write amplification:
// bytes flushed to disk per byte of changed durable state. The incremental
// log holds it near 1 between compactions and ≤ 2 amortized; full rewrites
// scale it with the ratio of total to changed sessions. Zero before any
// changed byte has been recorded.
func (m *Metrics) JournalWriteAmp() float64 {
	changed := m.JournalChangedBytes.Value()
	if changed <= 0 {
		return 0
	}
	return float64(m.JournalBytes.Value()) / float64(changed)
}

// SyscallsAvoided reports how many read+write syscalls batching has saved
// so far versus the one-per-datagram baseline.
func (m *Metrics) SyscallsAvoided() int64 {
	avoided := (m.PacketsIn.Value() - m.ReadBatchCalls.Value()) +
		(m.PacketsOut.Value() - m.WriteBatchCalls.Value())
	if avoided < 0 {
		return 0
	}
	return avoided
}

// ScreenStateStats aggregates the resident screen-state footprint across
// every live session: how much terminal memory the daemon actually holds
// and how much of it is shared or recycled. Together with the process-wide
// interned-grapheme count it makes memory-per-session observable under
// load.
type ScreenStateStats struct {
	// Sessions sampled (live at collection time).
	Sessions int
	// ScreenRows is the summed grid height; SharedScreenRows counts grid
	// rows currently shared copy-on-write with a sender snapshot.
	ScreenRows, SharedScreenRows int
	// PooledRows counts recycled rows waiting on per-session free lists.
	PooledRows int
	// ScrollbackRows is the summed visible history; ScrollbackArenaRows
	// counts shared-arena entries kept alive (retained for structural
	// sharing with snapshots, ≥ ScrollbackRows until compaction).
	ScrollbackRows, ScrollbackArenaRows int
	// ResidentBytes is the cell storage actually resident across every
	// sampled session, counting each distinct backing array once — so
	// rows deduplicated by the intern table (and rows structurally shared
	// between sessions and snapshots) are charged a single time.
	// InternedRows counts grid rows whose storage is intern-table
	// canonical.
	ResidentBytes, InternedRows int
}

// ResidentBytesPerSession reports the deduplicated cell bytes divided by
// the sampled session count (0 with no sessions) — the gauge the
// row-interning work is measured by.
func (st ScreenStateStats) ResidentBytesPerSession() int {
	if st.Sessions == 0 {
		return 0
	}
	return st.ResidentBytes / st.Sessions
}

// ScreenStateStats samples every live session's framebuffer footprint.
// It takes each session's lock briefly; intended for metric scrapes.
func (d *Daemon) ScreenStateStats() ScreenStateStats {
	var st ScreenStateStats
	seen := make(map[*terminal.Cell]struct{}, 1024)
	d.reg.each(func(s *Session) {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		fb := s.srv.Terminal().Framebuffer()
		m := fb.MemStats()
		bytes, interned := fb.AccumulateResident(seen)
		s.mu.Unlock()
		st.Sessions++
		st.ScreenRows += m.ScreenRows
		st.SharedScreenRows += m.SharedScreenRows
		st.PooledRows += m.PooledRows
		st.ScrollbackRows += m.ScrollbackRows
		st.ScrollbackArenaRows += m.ScrollbackArenaRows
		st.ResidentBytes += bytes
		st.InternedRows += interned
	})
	return st
}

// PublishExpvar registers the daemon's counters plus its live-inspection
// gauges with the process-wide expvar registry under prefix: resident
// screen state, transport introspection (SRTT/frame-interval quantiles,
// queue depths), keystroke→echo percentiles, per-stage pipeline latencies,
// buffer-pool effectiveness, and process-wide statesync/grapheme counters.
// The walking gauges (screen_state, transport) take each session's lock
// briefly at scrape time. Idempotent per prefix, like Metrics.Publish.
func (d *Daemon) PublishExpvar(prefix string) {
	d.metrics.Publish(prefix)
	pubMu.Lock()
	defer pubMu.Unlock()
	if slot, ok := daemonSlots[prefix]; ok {
		slot.Store(d)
		return
	}
	slot := &atomic.Pointer[Daemon]{}
	slot.Store(d)
	daemonSlots[prefix] = slot
	expvar.Publish(prefix+".interned_graphemes", expvar.Func(func() any {
		return terminal.InternedGraphemes()
	}))
	expvar.Publish(prefix+".screen_state", expvar.Func(func() any {
		return slot.Load().ScreenStateStats()
	}))
	expvar.Publish(prefix+".resident_bytes_per_session", expvar.Func(func() any {
		return slot.Load().ScreenStateStats().ResidentBytesPerSession()
	}))
	expvar.Publish(prefix+".interned_rows", expvar.Func(func() any {
		rows, bytes := terminal.InternedRowStats()
		return map[string]int64{"rows": int64(rows), "bytes": int64(bytes)}
	}))
	expvar.Publish(prefix+".statesync_applies", expvar.Func(func() any {
		sc, sb, uc, ub := statesync.ApplyStats()
		return map[string]int64{
			"screen": sc, "screen_bytes": sb,
			"stream": uc, "stream_bytes": ub,
		}
	}))
	expvar.Publish(prefix+".transport", expvar.Func(func() any {
		return slot.Load().TransportStats()
	}))
	expvar.Publish(prefix+".echo", expvar.Func(func() any {
		return slot.Load().echoExpvar()
	}))
	expvar.Publish(prefix+".stage_latency", expvar.Func(func() any {
		return slot.Load().stageExpvar()
	}))
	expvar.Publish(prefix+".buffer_pools", expvar.Func(func() any {
		return slot.Load().poolExpvar()
	}))
}

// echoExpvar renders the Fig. 6 keystroke→echo summary.
func (d *Daemon) echoExpvar() any {
	total, le16, leRTT := d.pipe.EchoStats()
	h := d.pipe.Stage(telemetry.StageEcho)
	return map[string]int64{
		"total":   total,
		"le_16ms": le16,
		"le_rtt":  leRTT,
		"p50_us":  int64(h.QuantileDuration(0.50) / time.Microsecond),
		"p99_us":  int64(h.QuantileDuration(0.99) / time.Microsecond),
		"p999_us": int64(h.QuantileDuration(0.999) / time.Microsecond),
	}
}

// stageExpvar renders every pipeline stage's latency summary.
func (d *Daemon) stageExpvar() any {
	out := make(map[string]map[string]int64, len(telemetry.Stages()))
	for _, st := range telemetry.Stages() {
		h := d.pipe.Stage(st)
		out[st.String()] = map[string]int64{
			"count":  h.Count(),
			"p50_us": int64(h.QuantileDuration(0.50) / time.Microsecond),
			"p99_us": int64(h.QuantileDuration(0.99) / time.Microsecond),
		}
	}
	return out
}

// poolExpvar renders buffer-pool effectiveness: gets vs misses (a miss is
// a Get that had to allocate; a healthy steady state plateaus misses).
func (d *Daemon) poolExpvar() any {
	out := map[string]int64{}
	if p := d.readPool; p != nil {
		g, m := p.Stats()
		out["read_gets"], out["read_misses"] = g, m
	}
	if p := d.wirePool; p != nil {
		g, m := p.Stats()
		out["wire_gets"], out["wire_misses"] = g, m
	}
	return out
}

// String renders a one-line summary for logs and the load harness.
func (m *Metrics) String() string {
	return fmt.Sprintf(
		"sessions=%d (opened=%d evicted=%d) in=%d pkts/%d B out=%d pkts/%d B drops[env=%d unk=%d auth=%d queue=%d] roams=%d",
		m.SessionsLive.Value(), m.SessionsOpened.Value(), m.SessionsEvicted.Value(),
		m.PacketsIn.Value(), m.BytesIn.Value(), m.PacketsOut.Value(), m.BytesOut.Value(),
		m.DropsBadEnvelope.Value(), m.DropsUnknownSession.Value(), m.DropsAuth.Value(),
		m.DropsQueueFull.Value(), m.RoamingEvents.Value())
}
