package sessiond_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/host"
	"repro/internal/netem"
	"repro/internal/network"
	"repro/internal/overlay"
	"repro/internal/sessiond"
	"repro/internal/simclock"
	"repro/internal/terminal"
)

// TestDaemon200ConcurrentSessions runs 200 real-time sessions concurrently
// over one daemon "socket" (the concurrent Dispatch path with per-session
// workers and the shared tick loop), with 200 client goroutines hammering
// it. Every session's converged screen must render byte-identically to a
// plain single-session SSP baseline running the same application and
// keystrokes. Run with -race: this is the daemon's concurrency proof.
func TestDaemon200ConcurrentSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time concurrency test")
	}
	const (
		nSessions = 200
		nProfiles = 8
	)
	script := func(profile uint64) string { return fmt.Sprintf("make -j %d\r", profile) }

	// Baselines: one single-session virtual-time run per distinct
	// application profile.
	expect := make([][]byte, nProfiles)
	for p := uint64(0); p < nProfiles; p++ {
		expect[p] = expectedSingleSessionFrame(t, int64(p), script(p))
	}

	// The in-memory "socket": the daemon sends to a client address, the
	// conduit routes to that client's downlink channel. The route table is
	// fully populated before any traffic flows and never mutated after, so
	// the concurrent session workers can read it without a lock.
	routes := make(map[netem.Addr]chan []byte, nSessions)
	daemonSrc := netem.Addr{Host: 9999, Port: 60001}

	d, err := sessiond.New(sessiond.Config{
		Clock:  simclock.Real{},
		NewApp: func(id uint64) host.App { return host.NewShell(int64(id % nProfiles)) },
		Send: func(dst netem.Addr, wire []byte) {
			if ch, ok := routes[dst]; ok {
				select {
				case ch <- wire:
				default: // full downlink models a drop-tail queue; SSP recovers
				}
			}
		},
		IdleTimeout: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	defer d.Close()

	sessions := make([]*sessiond.Session, nSessions)
	addrs := make([]netem.Addr, nSessions)
	for i := 0; i < nSessions; i++ {
		s, err := d.OpenSession()
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
		addrs[i] = netem.Addr{Host: uint32(10 + i), Port: uint16(7000 + i%1000)}
		routes[addrs[i]] = make(chan []byte, 512)
	}

	runClient := func(i int) error {
		s := sessions[i]
		down := routes[addrs[i]]
		var cl *core.Client
		cl, err := core.NewClient(core.ClientConfig{
			Key:         s.Key(),
			Clock:       simclock.Real{},
			Envelope:    &network.Envelope{ID: s.ID},
			Predictions: overlay.Never,
			Emit: func(wire []byte) {
				d.Dispatch(wire, addrs[i])
			},
		})
		if err != nil {
			return err
		}
		for _, b := range []byte(script(s.ID % nProfiles)) {
			cl.UserBytes([]byte{b})
		}
		cl.Tick()
		want := expect[s.ID%nProfiles]
		deadline := time.Now().Add(60 * time.Second)
		for {
			if got := terminal.NewFrame(false, nil, cl.ServerState()); bytes.Equal(got, want) {
				return nil
			}
			if time.Now().After(deadline) {
				got := terminal.NewFrame(false, nil, cl.ServerState())
				return fmt.Errorf("session %d (profile %d) never matched baseline;\n got %q\nwant %q",
					s.ID, s.ID%nProfiles, got, want)
			}
			wait := cl.WaitTime()
			if wait < time.Millisecond {
				wait = time.Millisecond
			}
			if wait > 20*time.Millisecond {
				wait = 20 * time.Millisecond
			}
			select {
			case wire := <-down:
				cl.Receive(wire, daemonSrc)
			case <-time.After(wait):
				cl.Tick()
			}
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, nSessions)
	for i := 0; i < nSessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = runClient(i)
		}(i)
	}
	wg.Wait()
	failed := 0
	for i, err := range errs {
		if err != nil {
			failed++
			if failed <= 3 {
				t.Errorf("client %d: %v", i, err)
			}
		}
	}
	if failed > 0 {
		t.Fatalf("%d/%d sessions failed to match the single-session baseline", failed, nSessions)
	}
	m := d.Metrics()
	if got := m.SessionsLive.Value(); got != nSessions {
		t.Fatalf("SessionsLive = %d, want %d", got, nSessions)
	}
	t.Logf("daemon metrics: %s", m)
}
