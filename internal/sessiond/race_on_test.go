//go:build race

package sessiond

// raceEnabled lets allocation guards skip under the race detector, whose
// instrumentation makes sync.Pool allocate bookkeeping per operation.
// CI runs the guards in a dedicated non-race step (see ci.yml).
const raceEnabled = true
