package sessiond

import (
	"container/heap"
	"sync"
	"time"
)

// timerHeap is the daemon's single next-deadline structure: every live
// session holds exactly one entry (its earliest pending deadline — sender
// tick, delayed host output, or idle check). One goroutine sleeping on the
// heap's minimum replaces the timer goroutine per session a naive design
// would need, which is what lets one daemon carry thousands of sessions.
//
// Lock order: a Session's mu may be held while taking the heap's mu (every
// arm/remove happens that way); the heap's mu is never held while taking a
// session's mu — popDue collects due sessions under the lock and returns,
// and the caller ticks them after release.
type timerHeap struct {
	mu      sync.Mutex
	entries sessionHeap
	// wake is signaled (non-blocking) whenever the earliest deadline moves
	// earlier, so the async tick loop can re-sleep. Sim drivers ignore it.
	wake chan struct{}
	// dueScratch is reused across popDue calls (single tick driver).
	dueScratch []*Session
}

func newTimerHeap() *timerHeap {
	return &timerHeap{wake: make(chan struct{}, 1)}
}

// arm sets s's deadline to at, inserting or repositioning its entry.
func (h *timerHeap) arm(s *Session, at time.Time) {
	h.mu.Lock()
	moved := false
	if s.heapIdx >= 0 {
		s.deadline = at
		heap.Fix(&h.entries, s.heapIdx)
	} else {
		s.deadline = at
		heap.Push(&h.entries, s)
	}
	if len(h.entries) > 0 && h.entries[0] == s {
		moved = true // s is now the minimum; the sleeper may need to wake
	}
	h.mu.Unlock()
	if moved {
		select {
		case h.wake <- struct{}{}:
		default:
		}
	}
}

// remove drops s from the heap (eviction/close).
func (h *timerHeap) remove(s *Session) {
	h.mu.Lock()
	if s.heapIdx >= 0 {
		heap.Remove(&h.entries, s.heapIdx)
	}
	h.mu.Unlock()
}

// next reports the earliest pending deadline.
func (h *timerHeap) next() (time.Time, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.entries) == 0 {
		return time.Time{}, false
	}
	return h.entries[0].deadline, true
}

// popDue removes and returns every session whose deadline is at or before
// now. Popped sessions are off the heap until their next arm — ticking a
// session always re-arms it. The returned slice is scratch owned by the
// heap, valid until the next popDue call; only the single tick driver
// (tick loop or sim pump) calls it.
func (h *timerHeap) popDue(now time.Time) []*Session {
	h.mu.Lock()
	defer h.mu.Unlock()
	due := h.dueScratch[:0]
	for len(h.entries) > 0 && !h.entries[0].deadline.After(now) {
		due = append(due, heap.Pop(&h.entries).(*Session))
	}
	h.dueScratch = due
	return due
}

// sessionHeap implements container/heap over sessions by deadline.
type sessionHeap []*Session

func (q sessionHeap) Len() int           { return len(q) }
func (q sessionHeap) Less(i, j int) bool { return q[i].deadline.Before(q[j].deadline) }
func (q sessionHeap) Swap(i, j int)      { q[i], q[j] = q[j], q[i]; q[i].heapIdx = i; q[j].heapIdx = j }
func (q *sessionHeap) Push(x any)        { s := x.(*Session); s.heapIdx = len(*q); *q = append(*q, s) }
func (q *sessionHeap) Pop() any {
	old := *q
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	s.heapIdx = -1
	*q = old[:n-1]
	return s
}
