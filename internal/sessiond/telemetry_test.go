package sessiond_test

import (
	"expvar"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/sessiond"
	"repro/internal/telemetry"
)

// TestPublishIdempotentPerPrefix is the regression test for the expvar
// duplicate-name panic: publishing two different Metrics objects (or two
// daemons) under the same prefix must not panic, and a scrape after the
// second Publish must read the newer object's values.
func TestPublishIdempotentPerPrefix(t *testing.T) {
	const prefix = "sessiond_republish_test"
	var a, b sessiond.Metrics
	a.PacketsIn.Add(11)
	b.PacketsIn.Add(22)

	a.Publish(prefix) // first registration
	a.Publish(prefix) // same object again: must not panic
	if got := expvar.Get(prefix + ".packets_in").String(); got != "11" {
		t.Fatalf("after first publish, packets_in = %s, want 11", got)
	}
	b.Publish(prefix) // different object, same prefix: repoint, no panic
	if got := expvar.Get(prefix + ".packets_in").String(); got != "22" {
		t.Fatalf("after republish, packets_in = %s, want 22 (new object)", got)
	}

	// The daemon-level surface must be idempotent too (this is the exact
	// restart-in-process scenario that used to panic).
	w1 := newSimWorld(t, sessiond.Config{IdleTimeout: -1}, lan())
	w1.d.PublishExpvar(prefix)
	w2 := newSimWorld(t, sessiond.Config{IdleTimeout: -1}, lan())
	w2.d.PublishExpvar(prefix)
	if expvar.Get(prefix+".screen_state") == nil {
		t.Fatal("daemon gauges missing after republish")
	}
}

// TestBatchSizeExpvarPinned pins the batch-size expvar rendering
// byte-for-byte: BatchHist is now backed by telemetry.Hist, and this is
// the proof the promotion changed nothing observable. The old fixed-bucket
// quantile walk gave {1,2,3,4,5} → p50=3, p99=4.
func TestBatchSizeExpvarPinned(t *testing.T) {
	const prefix = "sessiond_batchpin_test"
	var m sessiond.Metrics
	for n := 1; n <= 5; n++ {
		m.ReadBatchSizes.Observe(n)
	}
	m.Publish(prefix)
	const want = `{"p50":3,"p99":4,"samples":5}`
	if got := expvar.Get(prefix + ".read_batch_size").String(); got != want {
		t.Fatalf("read_batch_size = %s, want %s", got, want)
	}
}

// TestDegradationDumpOnQuotaTrip proves the tentpole's failure-forensics
// promise: when the unauth quota trips, OnDegrade receives a flight-
// recorder dump that still contains the events leading up to the trip
// (the flood's drop_auth records), plus the trip event itself.
func TestDegradationDumpOnQuotaTrip(t *testing.T) {
	var (
		reasons []string
		dumps   [][]byte
	)
	w := newSimWorld(t, sessiond.Config{
		IdleTimeout:      -1,
		UnauthQuotaBurst: 4,
		UnauthQuotaRate:  1,
		OnDegrade: func(reason string, dump []byte) {
			reasons = append(reasons, reason)
			dumps = append(dumps, dump)
		},
	}, lan())
	sess, err := w.d.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	wire := spoofedWire(sess.ID)
	src := netem.Addr{Host: 66, Port: 666}
	for i := 0; i < 16; i++ {
		w.d.HandlePacket(wire, src)
	}
	if len(reasons) != 1 || reasons[0] != "unauth-quota" {
		t.Fatalf("degradation callbacks = %v, want exactly [unauth-quota] (rate limited)", reasons)
	}
	dump := string(dumps[0])
	for _, want := range []string{"reason: unauth-quota", "drop_auth", "quota_blocked"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("dump missing %q:\n%s", want, dump)
		}
	}
	// The JSON rendering carries the same story for machines.
	js := string(w.d.FlightDumpJSON("test"))
	if !strings.Contains(js, `"drop_auth"`) {
		t.Fatalf("JSON dump missing drop_auth events:\n%s", js)
	}

	// Rate limiting: an immediate re-trip stays silent, but after the
	// dump interval passes (virtual time), the next trip dumps again.
	w.sched.RunFor(11 * time.Second)
	for i := 0; i < 16; i++ {
		w.d.HandlePacket(wire, src)
	}
	if len(reasons) != 2 {
		t.Fatalf("after dump interval, callbacks = %d, want 2", len(reasons))
	}
}

// TestKeystrokeEchoMeasured drives a real session through the simulated
// network and checks the server-side keystroke→echo pipeline end to end:
// echoes are matched, the Fig. 6 counters move, and the flight recorder
// holds the keystroke/frame_sent/echo event chain.
func TestKeystrokeEchoMeasured(t *testing.T) {
	var echoes int
	w := newSimWorld(t, sessiond.Config{
		NewApp: shellApp,
		OnEcho: func(session uint64, latency, srtt time.Duration) {
			echoes++
			if latency < 0 {
				t.Errorf("negative echo latency %v", latency)
			}
		},
	}, lan())
	sess, err := w.d.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	cl := w.addClient(sess, netem.Addr{Host: 1, Port: 1001})
	w.sched.RunFor(2 * time.Second)
	cl.typeString("hello")
	w.sched.RunFor(3 * time.Second)

	total, le16, leRTT := w.d.Pipeline().EchoStats()
	if total == 0 || echoes == 0 {
		t.Fatalf("no echoes matched (pipeline=%d callback=%d)", total, echoes)
	}
	if le16 > total || leRTT > total {
		t.Fatalf("threshold counters exceed total: le16=%d leRTT=%d total=%d", le16, leRTT, total)
	}
	if h := w.d.Pipeline().Stage(telemetry.StageEcho); h.Count() != total {
		t.Fatalf("echo histogram count %d != echo total %d", h.Count(), total)
	}

	seen := map[telemetry.Code]bool{}
	for _, ev := range w.d.FlightRecorder().Snapshot() {
		seen[ev.Code] = true
	}
	for _, want := range []telemetry.Code{telemetry.EvKeystroke, telemetry.EvFrameSent, telemetry.EvEcho} {
		if !seen[want] {
			t.Fatalf("flight recorder missing %v events (have %v)", want, seen)
		}
	}

	// The stage histograms saw traffic on the sim-exercised stages.
	for _, st := range []telemetry.Stage{telemetry.StageRead, telemetry.StageDemux,
		telemetry.StageVerify, telemetry.StageApply, telemetry.StageTick,
		telemetry.StageSeal, telemetry.StageEgressWait, telemetry.StageWrite} {
		if w.d.Pipeline().Stage(st).Count() == 0 {
			t.Fatalf("stage %v never observed", st)
		}
	}
}

// TestMetricsHandlerServesPrometheus exercises the hand-rolled text
// exposition: well-formed TYPE lines, the Fig. 6 counters, and a labeled
// stage histogram.
func TestMetricsHandlerServesPrometheus(t *testing.T) {
	w := newSimWorld(t, sessiond.Config{NewApp: shellApp}, lan())
	sess, _ := w.d.OpenSession()
	cl := w.addClient(sess, netem.Addr{Host: 1, Port: 1001})
	w.sched.RunFor(2 * time.Second)
	cl.typeString("x")
	w.sched.RunFor(2 * time.Second)

	rec := &fakeResponseWriter{header: make(http.Header)}
	w.d.MetricsHandler().ServeHTTP(rec, nil)
	body := rec.body.String()
	for _, want := range []string{
		"# TYPE sessiond_packets_in counter",
		"# TYPE sessiond_sessions_live gauge",
		"sessiond_echo_total ",
		"sessiond_echo_within_16ms_total ",
		`sessiond_stage_latency_seconds_bucket{stage="verify",le="+Inf"}`,
		`sessiond_read_batch_size_bucket{le="1"}`,
		"sessiond_transport_srtt_seconds{quantile=\"0.5\"}",
		"sessiond_statesync_screen_applies",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q\n----\n%s", want, body)
		}
	}
	if ct := rec.header["Content-Type"][0]; !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
}

// fakeResponseWriter is a minimal http.ResponseWriter (no httptest, to
// keep the test surface identical across environments).
type fakeResponseWriter struct {
	header http.Header
	body   strings.Builder
	code   int
}

func (f *fakeResponseWriter) Header() http.Header         { return f.header }
func (f *fakeResponseWriter) WriteHeader(code int)        { f.code = code }
func (f *fakeResponseWriter) Write(b []byte) (int, error) { return f.body.Write(b) }
