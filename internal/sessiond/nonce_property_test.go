package sessiond_test

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/network"
	"repro/internal/overlay"
	"repro/internal/sessiond"
	"repro/internal/simclock"
	"repro/internal/sspcrypto"
)

// TestNoncePropertyAcrossCrashPoints is the crash-point property test for
// the two-phase counter reservation: for EVERY prefix of journal flushes,
// restoring from that prefix's journal yields per-session counters that
// strictly exceed every nonce (and state number) the live daemon had put
// on the wire at any moment while that journal was the newest durable one.
// A crash anywhere in the timeline therefore can never reseal a nonce.
//
// The test deliberately starves the reservation (SeqReserve far below the
// traffic volume) so the ceiling actually binds between flushes: sends are
// suppressed rather than ever crossing the journaled reservation.
func TestNoncePropertyAcrossCrashPoints(t *testing.T) {
	const (
		nSessions = 3
		reserve   = 64
		nFlushes  = 8
	)
	sched := simclock.NewScheduler(epoch)
	nw := netem.NewNetwork(sched)
	daemonAddr := netem.Addr{Host: 0xCAFE, Port: 60001}
	paths := make(map[netem.Addr]*netem.Path)

	// cumMax tracks, per session, the highest server→client sequence
	// number (nonce) observed on the wire so far.
	cumMax := make(map[uint64]uint64)
	dir := t.TempDir()
	cfg := sessiond.Config{
		Clock: sched,
		Send: func(dst netem.Addr, wire []byte) {
			id, inner, err := network.ParseEnvelope(wire)
			if err != nil || len(inner) < 8 {
				t.Fatalf("unparseable daemon datagram: %v", err)
			}
			seq := binary.BigEndian.Uint64(inner[:8]) & sspcrypto.MaxSeq
			if seq > cumMax[id] {
				cumMax[id] = seq
			}
			if p := paths[dst]; p != nil {
				p.Down.Send(netem.Packet{Src: daemonAddr, Dst: dst, Payload: wire})
			}
		},
		NewApp:      shellApp,
		IdleTimeout: -1,
		StateDir:    dir,
		SeqReserve:  reserve,
	}
	d, err := sessiond.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wake := d.Pump(sched)
	nw.Attach(daemonAddr, func(p netem.Packet) {
		d.HandlePacket(p.Payload, p.Src)
		wake()
	})

	type cl struct {
		c  *core.Client
		id uint64
		w  func()
	}
	var clients []*cl
	for i := 0; i < nSessions; i++ {
		sess, err := d.OpenSession()
		if err != nil {
			t.Fatal(err)
		}
		addr := netem.Addr{Host: uint32(500 + i), Port: 9000}
		path := netem.NewPath(nw, lan(), int64(31+i))
		paths[addr] = path
		c := &cl{id: sess.ID}
		c.c, err = core.NewClient(core.ClientConfig{
			Key:         sess.Key(),
			Clock:       sched,
			Envelope:    &network.Envelope{ID: sess.ID},
			Predictions: overlay.Never,
			Emit: func(wire []byte) {
				path.Up.Send(netem.Packet{Src: addr, Dst: daemonAddr, Payload: wire})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		c.w = core.Pump(sched, c.c)
		cc := c
		nw.Attach(addr, func(p netem.Packet) {
			cc.c.Receive(p.Payload, p.Src)
			cc.w()
		})
		clients = append(clients, c)
	}

	liveCounters := func() (seqHW, numHW map[uint64]uint64) {
		seqHW, numHW = make(map[uint64]uint64), make(map[uint64]uint64)
		for _, c := range clients {
			sess := d.Lookup(c.id)
			sess.Do(func(srv *core.Server) {
				seqHW[c.id] = srv.Transport().Connection().NextSeq()
				numHW[c.id] = srv.Transport().Sender().NumHighWater()
			})
		}
		return seqHW, numHW
	}

	// Timeline: type with ENTER floods (heavy frame traffic), flushing the
	// journal every so often and copying the durable file after each flush.
	journalPath := filepath.Join(dir, "sessions.journal")
	var snapshots [][]byte
	var liveSeqAtFlush, liveNumAtFlush []map[uint64]uint64
	var wireMaxAtFlush []map[uint64]uint64
	snapWireMax := func() map[uint64]uint64 {
		m := make(map[uint64]uint64, len(cumMax))
		for k, v := range cumMax {
			m[k] = v
		}
		return m
	}
	for f := 0; f < nFlushes; f++ {
		for k := 0; k < 6; k++ {
			for _, c := range clients {
				c.c.UserBytes([]byte{'\r'})
				c.w()
			}
			sched.RunFor(130 * time.Millisecond)
		}
		// Sample the live high-water marks and the wire maxima just before
		// the flush completes: every send while the PREVIOUS journal was
		// newest-durable is bounded by these.
		seqHW, numHW := liveCounters()
		liveSeqAtFlush = append(liveSeqAtFlush, seqHW)
		liveNumAtFlush = append(liveNumAtFlush, numHW)
		wireMaxAtFlush = append(wireMaxAtFlush, snapWireMax())
		if err := d.FlushJournal(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(journalPath)
		if err != nil {
			t.Fatal(err)
		}
		snapshots = append(snapshots, append([]byte(nil), data...))
	}

	// Starvation phase: keep typing with no flush at all, so the last
	// reservation binds. Suppression — not overshoot — must be the result.
	for k := 0; k < 120; k++ {
		for _, c := range clients {
			c.c.UserBytes([]byte{'\r'})
			c.w()
		}
		sched.RunFor(60 * time.Millisecond)
	}
	finalSeq, finalNum := liveCounters()
	finalWire := snapWireMax()
	suppressed := 0
	remainingZero := false
	for _, c := range clients {
		d.Lookup(c.id).Do(func(srv *core.Server) {
			suppressed += srv.Transport().Sender().Stats().Suppressed
			if srv.Transport().Connection().SeqRemaining() == 0 {
				remainingZero = true
			}
		})
	}
	if suppressed == 0 || !remainingZero {
		t.Fatalf("starvation phase did not bind the reservation (suppressed=%d remainingZero=%v)", suppressed, remainingZero)
	}

	// restoredCounters restores a daemon from journal snapshot i (in a
	// scratch directory) and reads each session's restored counters.
	restoredCounters := func(snap []byte) (seq, num map[uint64]uint64) {
		rdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(rdir, "sessions.journal"), snap, 0o600); err != nil {
			t.Fatal(err)
		}
		rcfg := cfg
		rcfg.StateDir = rdir
		rcfg.Send = func(netem.Addr, []byte) {}
		rd, err := sessiond.New(rcfg)
		if err != nil {
			t.Fatal(err)
		}
		defer rd.Close()
		seq, num = make(map[uint64]uint64), make(map[uint64]uint64)
		for _, c := range clients {
			sess := rd.Lookup(c.id)
			if sess == nil {
				t.Fatalf("session %d missing from restored snapshot", c.id)
			}
			sess.Do(func(srv *core.Server) {
				seq[c.id] = srv.Transport().Connection().NextSeq()
				num[c.id] = srv.Transport().Sender().NumHighWater()
			})
		}
		return seq, num
	}

	// boundsFor(i): while journal i was the newest durable one (from its
	// completion until journal i+1 completed — or forever, for the last),
	// every wire nonce and live counter stayed below these.
	boundsFor := func(i int) (seq, num, wire map[uint64]uint64) {
		if i+1 < len(snapshots) {
			return liveSeqAtFlush[i+1], liveNumAtFlush[i+1], wireMaxAtFlush[i+1]
		}
		return finalSeq, finalNum, finalWire
	}

	// The property, for every crash point: restoring journal i yields
	// counters that strictly exceed every wire nonce sealed while it was
	// newest-durable, and at least match the live counters.
	for i, snap := range snapshots {
		rseq, rnum := restoredCounters(snap)
		boundSeq, boundNum, boundWire := boundsFor(i)
		for _, c := range clients {
			if w, ok := boundWire[c.id]; ok && rseq[c.id] <= w {
				t.Errorf("flush %d session %d: restored NextSeq %d does not exceed wire nonce %d", i, c.id, rseq[c.id], w)
			}
			if rseq[c.id] < boundSeq[c.id] {
				t.Errorf("flush %d session %d: restored NextSeq %d below live next-seq %d", i, c.id, rseq[c.id], boundSeq[c.id])
			}
			if rnum[c.id] < boundNum[c.id] {
				t.Errorf("flush %d session %d: restored state-num floor %d below live high water %d", i, c.id, rnum[c.id], boundNum[c.id])
			}
		}
	}

	// The TORN property: a power cut during (or after) a rename can leave
	// ANY prefix of journal i on disk. For a dense sample of truncation
	// points, booting from the prefix must succeed (a torn header
	// degrades to an empty restore, never a dead daemon) and must revive
	// ONLY sessions whose counters still clear every sealed nonce —
	// losing a session is safe, resealing a nonce is not.
	restoredPartial := func(snap []byte) (seq, num map[uint64]uint64, restored int) {
		rdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(rdir, "sessions.journal"), snap, 0o600); err != nil {
			t.Fatal(err)
		}
		rcfg := cfg
		rcfg.StateDir = rdir
		rcfg.Send = func(netem.Addr, []byte) {}
		rd, err := sessiond.New(rcfg)
		if err != nil {
			t.Fatalf("daemon refused to boot from a %d-byte torn journal: %v", len(snap), err)
		}
		defer rd.Close()
		seq, num = make(map[uint64]uint64), make(map[uint64]uint64)
		for _, c := range clients {
			sess := rd.Lookup(c.id)
			if sess == nil {
				continue // torn away — safe loss
			}
			restored++
			sess.Do(func(srv *core.Server) {
				seq[c.id] = srv.Transport().Connection().NextSeq()
				num[c.id] = srv.Transport().Sender().NumHighWater()
			})
		}
		return seq, num, restored
	}
	fullRestores, tornBoots := 0, 0
	for i, snap := range snapshots {
		boundSeq, boundNum, boundWire := boundsFor(i)
		step := 1 + len(snap)/48
		cuts := []int{len(snap)} // always include the untorn file
		for n := 0; n < len(snap); n += step {
			cuts = append(cuts, n)
		}
		for _, n := range cuts {
			rseq, rnum, restored := restoredPartial(snap[:n])
			tornBoots++
			if restored == nSessions {
				fullRestores++
			}
			for _, c := range clients {
				got, ok := rseq[c.id]
				if !ok {
					continue
				}
				if w, okw := boundWire[c.id]; okw && got <= w {
					t.Errorf("flush %d torn at %d, session %d: restored NextSeq %d does not exceed wire nonce %d", i, n, c.id, got, w)
				}
				if got < boundSeq[c.id] {
					t.Errorf("flush %d torn at %d, session %d: restored NextSeq %d below live next-seq %d", i, n, c.id, got, boundSeq[c.id])
				}
				if rnum[c.id] < boundNum[c.id] {
					t.Errorf("flush %d torn at %d, session %d: restored state-num floor %d below live high water %d", i, n, c.id, rnum[c.id], boundNum[c.id])
				}
			}
		}
	}
	if fullRestores == 0 {
		t.Fatal("no truncation point exercised a complete restore — sampling too coarse")
	}
	t.Logf("torn-journal boots: %d (%d restored all %d sessions)", tornBoots, fullRestores, nSessions)
}
