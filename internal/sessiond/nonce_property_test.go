package sessiond_test

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/network"
	"repro/internal/overlay"
	"repro/internal/sessiond"
	"repro/internal/simclock"
	"repro/internal/sspcrypto"
)

// TestNoncePropertyAcrossCrashPoints is the crash-point property test for
// the two-phase counter reservation: for EVERY prefix of journal flushes,
// restoring from that prefix's journal yields per-session counters that
// strictly exceed every nonce (and state number) the live daemon had put
// on the wire at any moment while that journal was the newest durable one.
// A crash anywhere in the timeline therefore can never reseal a nonce.
//
// The test deliberately starves the reservation (SeqReserve far below the
// traffic volume) so the ceiling actually binds between flushes: sends are
// suppressed rather than ever crossing the journaled reservation.
func TestNoncePropertyAcrossCrashPoints(t *testing.T) {
	const (
		nSessions = 3
		reserve   = 64
		nFlushes  = 8
	)
	sched := simclock.NewScheduler(epoch)
	nw := netem.NewNetwork(sched)
	daemonAddr := netem.Addr{Host: 0xCAFE, Port: 60001}
	paths := make(map[netem.Addr]*netem.Path)

	// cumMax tracks, per session, the highest server→client sequence
	// number (nonce) observed on the wire so far.
	cumMax := make(map[uint64]uint64)
	dir := t.TempDir()
	cfg := sessiond.Config{
		Clock: sched,
		Send: func(dst netem.Addr, wire []byte) {
			id, inner, err := network.ParseEnvelope(wire)
			if err != nil || len(inner) < 8 {
				t.Fatalf("unparseable daemon datagram: %v", err)
			}
			seq := binary.BigEndian.Uint64(inner[:8]) & sspcrypto.MaxSeq
			if seq > cumMax[id] {
				cumMax[id] = seq
			}
			if p := paths[dst]; p != nil {
				p.Down.Send(netem.Packet{Src: daemonAddr, Dst: dst, Payload: wire})
			}
		},
		NewApp:      shellApp,
		IdleTimeout: -1,
		StateDir:    dir,
		SeqReserve:  reserve,
		// A tiny compaction floor makes the timeline alternate between
		// compacted checkpoints and incremental segment tails, so the
		// crash-point property is exercised across both journal shapes —
		// including crashes landing mid-compaction.
		JournalCompactMinBytes: 1,
	}
	d, err := sessiond.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wake := d.Pump(sched)
	nw.Attach(daemonAddr, func(p netem.Packet) {
		d.HandlePacket(p.Payload, p.Src)
		wake()
	})

	type cl struct {
		c  *core.Client
		id uint64
		w  func()
	}
	var clients []*cl
	for i := 0; i < nSessions; i++ {
		sess, err := d.OpenSession()
		if err != nil {
			t.Fatal(err)
		}
		addr := netem.Addr{Host: uint32(500 + i), Port: 9000}
		path := netem.NewPath(nw, lan(), int64(31+i))
		paths[addr] = path
		c := &cl{id: sess.ID}
		c.c, err = core.NewClient(core.ClientConfig{
			Key:         sess.Key(),
			Clock:       sched,
			Envelope:    &network.Envelope{ID: sess.ID},
			Predictions: overlay.Never,
			Emit: func(wire []byte) {
				path.Up.Send(netem.Packet{Src: addr, Dst: daemonAddr, Payload: wire})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		c.w = core.Pump(sched, c.c)
		cc := c
		nw.Attach(addr, func(p netem.Packet) {
			cc.c.Receive(p.Payload, p.Src)
			cc.w()
		})
		clients = append(clients, c)
	}

	liveCounters := func() (seqHW, numHW map[uint64]uint64) {
		seqHW, numHW = make(map[uint64]uint64), make(map[uint64]uint64)
		for _, c := range clients {
			sess := d.Lookup(c.id)
			sess.Do(func(srv *core.Server) {
				seqHW[c.id] = srv.Transport().Connection().NextSeq()
				numHW[c.id] = srv.Transport().Sender().NumHighWater()
			})
		}
		return seqHW, numHW
	}

	// Timeline: type with ENTER floods (heavy frame traffic), flushing the
	// journal every so often and copying the durable state — the checkpoint
	// AND its segment tail, the whole directory — after each flush.
	snapshotDir := func() map[string][]byte {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		m := make(map[string][]byte, len(ents))
		for _, e := range ents {
			if e.IsDir() {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			m[e.Name()] = data
		}
		return m
	}
	// newestFile names the artifact written LAST in a snapshot: a
	// checkpoint deletes every segment of the epoch before it, so any
	// surviving segment postdates the checkpoint and the highest
	// (epoch, seq) segment is the newest write; with no segments the
	// checkpoint itself was the final write. A power cut tears the newest
	// write, so that is the file the torn property truncates.
	newestFile := func(snap map[string][]byte) string {
		best, bestEpoch, bestSeq := "", uint64(0), uint64(0)
		for name := range snap {
			if !strings.HasPrefix(name, "sessions.journal.seg.") {
				continue
			}
			rest := name[len("sessions.journal.seg."):]
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				continue
			}
			ep, err1 := strconv.ParseUint(rest[:dot], 10, 64)
			sq, err2 := strconv.ParseUint(rest[dot+1:], 10, 64)
			if err1 != nil || err2 != nil {
				continue
			}
			if best == "" || ep > bestEpoch || (ep == bestEpoch && sq > bestSeq) {
				best, bestEpoch, bestSeq = name, ep, sq
			}
		}
		if best == "" {
			return "sessions.journal"
		}
		return best
	}
	writeSnapshot := func(rdir string, snap map[string][]byte, tear string, n int) {
		for name, data := range snap {
			if name == tear {
				data = data[:n]
			}
			if err := os.WriteFile(filepath.Join(rdir, name), data, 0o600); err != nil {
				t.Fatal(err)
			}
		}
	}
	var snapshots []map[string][]byte
	var liveSeqAtFlush, liveNumAtFlush []map[uint64]uint64
	var wireMaxAtFlush []map[uint64]uint64
	snapWireMax := func() map[uint64]uint64 {
		m := make(map[uint64]uint64, len(cumMax))
		for k, v := range cumMax {
			m[k] = v
		}
		return m
	}
	for f := 0; f < nFlushes; f++ {
		for k := 0; k < 6; k++ {
			for _, c := range clients {
				c.c.UserBytes([]byte{'\r'})
				c.w()
			}
			sched.RunFor(130 * time.Millisecond)
		}
		// Sample the live high-water marks and the wire maxima just before
		// the flush completes: every send while the PREVIOUS journal was
		// newest-durable is bounded by these.
		seqHW, numHW := liveCounters()
		liveSeqAtFlush = append(liveSeqAtFlush, seqHW)
		liveNumAtFlush = append(liveNumAtFlush, numHW)
		wireMaxAtFlush = append(wireMaxAtFlush, snapWireMax())
		if err := d.FlushJournal(); err != nil {
			t.Fatal(err)
		}
		snapshots = append(snapshots, snapshotDir())
	}

	// Starvation phase: keep typing with no flush at all, so the last
	// reservation binds. Suppression — not overshoot — must be the result.
	for k := 0; k < 120; k++ {
		for _, c := range clients {
			c.c.UserBytes([]byte{'\r'})
			c.w()
		}
		sched.RunFor(60 * time.Millisecond)
	}
	finalSeq, finalNum := liveCounters()
	finalWire := snapWireMax()
	suppressed := 0
	remainingZero := false
	for _, c := range clients {
		d.Lookup(c.id).Do(func(srv *core.Server) {
			suppressed += srv.Transport().Sender().Stats().Suppressed
			if srv.Transport().Connection().SeqRemaining() == 0 {
				remainingZero = true
			}
		})
	}
	if suppressed == 0 || !remainingZero {
		t.Fatalf("starvation phase did not bind the reservation (suppressed=%d remainingZero=%v)", suppressed, remainingZero)
	}

	// restoredCounters restores a daemon from journal snapshot i (in a
	// scratch directory) and reads each session's restored counters.
	restoredCounters := func(snap map[string][]byte) (seq, num map[uint64]uint64) {
		rdir := t.TempDir()
		writeSnapshot(rdir, snap, "", 0)
		rcfg := cfg
		rcfg.StateDir = rdir
		rcfg.Send = func(netem.Addr, []byte) {}
		rd, err := sessiond.New(rcfg)
		if err != nil {
			t.Fatal(err)
		}
		defer rd.Close()
		seq, num = make(map[uint64]uint64), make(map[uint64]uint64)
		for _, c := range clients {
			sess := rd.Lookup(c.id)
			if sess == nil {
				t.Fatalf("session %d missing from restored snapshot", c.id)
			}
			sess.Do(func(srv *core.Server) {
				seq[c.id] = srv.Transport().Connection().NextSeq()
				num[c.id] = srv.Transport().Sender().NumHighWater()
			})
		}
		return seq, num
	}

	// boundsFor(i): while journal i was the newest durable one (from its
	// completion until journal i+1 completed — or forever, for the last),
	// every wire nonce and live counter stayed below these.
	boundsFor := func(i int) (seq, num, wire map[uint64]uint64) {
		if i+1 < len(snapshots) {
			return liveSeqAtFlush[i+1], liveNumAtFlush[i+1], wireMaxAtFlush[i+1]
		}
		return finalSeq, finalNum, finalWire
	}

	// The property, for every crash point: restoring journal i yields
	// counters that strictly exceed every wire nonce sealed while it was
	// newest-durable, and at least match the live counters.
	for i, snap := range snapshots {
		rseq, rnum := restoredCounters(snap)
		boundSeq, boundNum, boundWire := boundsFor(i)
		for _, c := range clients {
			if w, ok := boundWire[c.id]; ok && rseq[c.id] <= w {
				t.Errorf("flush %d session %d: restored NextSeq %d does not exceed wire nonce %d", i, c.id, rseq[c.id], w)
			}
			if rseq[c.id] < boundSeq[c.id] {
				t.Errorf("flush %d session %d: restored NextSeq %d below live next-seq %d", i, c.id, rseq[c.id], boundSeq[c.id])
			}
			if rnum[c.id] < boundNum[c.id] {
				t.Errorf("flush %d session %d: restored state-num floor %d below live high water %d", i, c.id, rnum[c.id], boundNum[c.id])
			}
		}
	}

	// The TORN property: a power cut during the newest write can leave ANY
	// prefix of that file on disk — a checkpoint torn mid-rename, or an
	// appended segment torn mid-write — with every older artifact intact.
	// For a dense sample of truncation points, booting from the damaged
	// directory must succeed (a torn header degrades to a partial or empty
	// restore, never a dead daemon) and must revive ONLY sessions whose
	// counters still clear every sealed nonce — losing a session is safe,
	// resealing a nonce is not.
	restoredPartial := func(snap map[string][]byte, tear string, n int) (seq, num map[uint64]uint64, restored int) {
		rdir := t.TempDir()
		writeSnapshot(rdir, snap, tear, n)
		rcfg := cfg
		rcfg.StateDir = rdir
		rcfg.Send = func(netem.Addr, []byte) {}
		rd, err := sessiond.New(rcfg)
		if err != nil {
			t.Fatalf("daemon refused to boot with %s torn at %d bytes: %v", tear, n, err)
		}
		defer rd.Close()
		seq, num = make(map[uint64]uint64), make(map[uint64]uint64)
		for _, c := range clients {
			sess := rd.Lookup(c.id)
			if sess == nil {
				continue // torn away — safe loss
			}
			restored++
			sess.Do(func(srv *core.Server) {
				seq[c.id] = srv.Transport().Connection().NextSeq()
				num[c.id] = srv.Transport().Sender().NumHighWater()
			})
		}
		return seq, num, restored
	}
	fullRestores, tornBoots := 0, 0
	tornCheckpoints, tornSegments := 0, 0
	segmentsOf := func(snap map[string][]byte) map[string][]byte {
		m := map[string][]byte{}
		for name, data := range snap {
			if strings.HasPrefix(name, "sessions.journal.seg.") {
				m[name] = data
			}
		}
		return m
	}
	for i, snap := range snapshots {
		// Bounds are timeline-dependent. A PARTIAL cut of flush i's file
		// means the daemon died while that write was in flight: phase two
		// never ran, ceilings never rose, so everything sealed by then is
		// bounded by the reservations already durable BEFORE flush i — the
		// samples taken just before it. Sessions the tear reverts to an
		// older record therefore still clear every sealed nonce. The
		// UNTORN cut means flush i completed and period i's traffic ran
		// under its reservations, so the stronger period-i bounds apply.
		crashSeq, crashNum, crashWire := liveSeqAtFlush[i], liveNumAtFlush[i], wireMaxAtFlush[i]
		fullSeq, fullNum, fullWire := boundsFor(i)
		tear := newestFile(snap)
		dirs := []map[string][]byte{snap}
		if tear == "sessions.journal" {
			tornCheckpoints++
			// Mid-compaction crash: the compacted checkpoint lands (whole
			// or torn) while the superseded epoch's segment tail is still
			// on disk — the window between the checkpoint rename and the
			// stale-segment deletes.
			if i > 0 {
				if stale := segmentsOf(snapshots[i-1]); len(stale) > 0 {
					combo := make(map[string][]byte, len(stale)+1)
					for name, data := range stale {
						combo[name] = data
					}
					combo["sessions.journal"] = snap["sessions.journal"]
					dirs = append(dirs, combo)
				}
			}
		} else {
			tornSegments++
		}
		for _, sdir := range dirs {
			data := sdir[tear]
			step := 1 + len(data)/48
			cuts := []int{len(data)} // always include the untorn file
			for n := 0; n < len(data); n += step {
				cuts = append(cuts, n)
			}
			for _, n := range cuts {
				rseq, rnum, restored := restoredPartial(sdir, tear, n)
				tornBoots++
				if restored == nSessions {
					fullRestores++
				}
				boundSeq, boundNum, boundWire := crashSeq, crashNum, crashWire
				if n == len(data) {
					boundSeq, boundNum, boundWire = fullSeq, fullNum, fullWire
				}
				for _, c := range clients {
					got, ok := rseq[c.id]
					if !ok {
						continue
					}
					if w, okw := boundWire[c.id]; okw && got <= w {
						t.Errorf("flush %d torn at %d, session %d: restored NextSeq %d does not exceed wire nonce %d", i, n, c.id, got, w)
					}
					if got < boundSeq[c.id] {
						t.Errorf("flush %d torn at %d, session %d: restored NextSeq %d below live next-seq %d", i, n, c.id, got, boundSeq[c.id])
					}
					if rnum[c.id] < boundNum[c.id] {
						t.Errorf("flush %d torn at %d, session %d: restored state-num floor %d below live high water %d", i, n, c.id, rnum[c.id], boundNum[c.id])
					}
				}
			}
		}
	}
	if fullRestores == 0 {
		t.Fatal("no truncation point exercised a complete restore — sampling too coarse")
	}
	t.Logf("torn-journal boots: %d (%d restored all %d sessions; %d flushes ended in a checkpoint, %d in a segment)",
		tornBoots, fullRestores, nSessions, tornCheckpoints, tornSegments)
}
