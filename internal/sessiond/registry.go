package sessiond

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/host"
	"repro/internal/netem"
	"repro/internal/network"
	"repro/internal/sspcrypto"
)

// shardCount splits the session map so concurrent packet dispatch does not
// serialize on one lock. Power of two; the low bits of the session ID pick
// the shard (IDs are sequential, so consecutive sessions land on different
// shards).
const shardCount = 64

type shard struct {
	mu       sync.RWMutex
	sessions map[uint64]*Session
}

// registry is the daemon's sharded session table.
type registry struct {
	shards [shardCount]shard
}

func newRegistry() *registry {
	r := &registry{}
	for i := range r.shards {
		r.shards[i].sessions = make(map[uint64]*Session)
	}
	return r
}

func (r *registry) shardFor(id uint64) *shard { return &r.shards[id&(shardCount-1)] }

func (r *registry) lookup(id uint64) *Session {
	sh := r.shardFor(id)
	sh.mu.RLock()
	s := sh.sessions[id]
	sh.mu.RUnlock()
	return s
}

func (r *registry) insert(s *Session) {
	sh := r.shardFor(s.ID)
	sh.mu.Lock()
	sh.sessions[s.ID] = s
	sh.mu.Unlock()
}

func (r *registry) delete(id uint64) {
	sh := r.shardFor(id)
	sh.mu.Lock()
	delete(sh.sessions, id)
	sh.mu.Unlock()
}

// each calls f on every live session (snapshot per shard; f runs without
// shard locks held).
func (r *registry) each(f func(*Session)) {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		snapshot := make([]*Session, 0, len(sh.sessions))
		for _, s := range sh.sessions {
			snapshot = append(snapshot, s)
		}
		sh.mu.RUnlock()
		for _, s := range snapshot {
			f(s)
		}
	}
}

// timedOutput is one pending host-application write, delayed to model the
// application's think time (host.App.Input returns a delay).
type timedOutput struct {
	at time.Time
	// keyAt is the arrival time of the keystroke that provoked this
	// output (zero for output with no keystroke attribution), feeding the
	// keystroke→echo tracker when the output is applied.
	keyAt time.Time
	data  []byte
}

// Session is one SSP session multiplexed on the daemon's socket. Its state
// machine (core.Server, host app, pending output) is guarded by mu; the
// heap bookkeeping (deadline, heapIdx) is guarded by the daemon's timer
// heap lock.
type Session struct {
	// ID is the cleartext envelope identifier on the shared socket.
	ID uint64

	d   *Daemon
	key sspcrypto.Key

	// origW, origH are the terminal dimensions at session creation,
	// preserved across restarts: the blank state-0 baseline both sides
	// fall back to after a daemon restart must match the client's
	// pristine initial screen exactly, even if the session resized since.
	origW, origH int

	mu         sync.Mutex
	srv        *core.Server
	app        host.App
	pendingOut []timedOutput
	lastActive time.Time
	closed     bool

	// Async dispatch (Serve mode): the reader pushes per-session runs
	// (one or more datagrams from a read batch) to inbox and a per-session
	// worker goroutine drains it — one channel send and one wakeup per
	// run. queuedPkts counts the DATAGRAMS queued (runs carry several), so
	// Config.InboxDepth bounds per-session memory in packets exactly as it
	// did before batching. closedFlag mirrors closed for lock-free reads
	// on the dispatch path.
	inbox      chan *inRun
	queuedPkts atomic.Int64
	workerOnce sync.Once
	done       chan struct{}
	closedFlag atomic.Bool

	// groupEpoch/groupIdx are the batch demultiplexer's O(1) group lookup
	// (Daemon.groupBatch): when groupEpoch matches the current batch's
	// epoch, groupIdx is this session's slot in the scratch. Touched only
	// by the single reader (or sim driver) goroutine — never concurrently.
	groupEpoch uint64
	groupIdx   int

	// lastArmed is the deadline currently in the timer heap for this
	// session (zero when the entry was popped); guarded by mu. rearmLocked
	// skips the heap lock when the deadline is unchanged.
	lastArmed time.Time

	// Keystroke→echo tracking (guarded by mu): echoAwait holds the
	// arrival times of keystrokes whose host output has been applied to
	// the terminal but not yet carried by a minted frame; lastSentNum is
	// the sender state number as of the last match pass, so a fresh mint
	// is detected by its advance. The ring samples bursts (overflow is
	// dropped, not queued): it is measurement, not accounting.
	echoAwait   [16]time.Time
	echoAwaitN  int
	lastSentNum uint64

	// Timer-heap entry, guarded by the daemon's timerHeap lock.
	deadline time.Time
	heapIdx  int

	// dirty marks that this session's durable core changed since the last
	// journal flush encoded it; the CAS in markDirty admits the session
	// onto the journal's dirty list exactly once per flush cycle.
	dirty atomic.Bool

	// Screen-delta base tracking for the incremental journal, guarded by
	// mu: jrGens holds the per-row generation numbers as of the last
	// encoded record, jrW/jrH/jrSb the dimensions and scrollback depth.
	// jrValid is true only while the record that captured them is durable
	// on disk (set in a flush's phase two, cleared at every encode), so a
	// failed or torn write forces the next record to be a full snapshot.
	jrGens         []uint64
	jrW, jrH, jrSb int
	jrValid        bool
}

type inPacket struct {
	wire []byte
	src  netem.Addr
}

// Key returns the session's pre-shared key for out-of-band bootstrap (the
// daemon's analogue of mosh-server's "MOSH CONNECT port key" line).
func (s *Session) Key() sspcrypto.Key { return s.key }

// Do runs f with the session locked, giving tests and embedders serialized
// access to the underlying server endpoint. Anything f caused the session
// to emit is flushed from the egress ring before Do returns, preserving
// the synchronous-send feel embedders had before the batched pipeline.
func (s *Session) Do(f func(srv *core.Server)) {
	s.mu.Lock()
	f(s.srv)
	s.mu.Unlock()
	// f had arbitrary access to the session's durable core; assume it
	// changed something so the next incremental flush records it.
	s.markDirty()
	s.d.flushEgress()
}

// ErrCapacity is returned by OpenSession when the daemon is full.
var ErrCapacity = errors.New("sessiond: session capacity reached")

// OpenSession issues a new session: a fresh random key, the next session
// ID, a server endpoint configured with the envelope, and (when the daemon
// has an application factory) a freshly started host application. The
// returned session is live immediately; hand its ID and Key to the client
// out of band.
func (d *Daemon) OpenSession() (*Session, error) {
	d.openMu.Lock()
	defer d.openMu.Unlock()
	if d.cfg.Capacity > 0 && int(d.metrics.SessionsLive.Value()) >= d.cfg.Capacity {
		return nil, ErrCapacity
	}
	key, err := sspcrypto.NewRandomKey()
	if err != nil {
		return nil, err
	}
	id := d.nextID.Add(1)
	s := &Session{
		ID:      id,
		d:       d,
		key:     key,
		origW:   d.cfg.Width,
		origH:   d.cfg.Height,
		heapIdx: -1,
		done:    make(chan struct{}),
		inbox:   make(chan *inRun, d.inboxDepth()),
	}
	srv, err := core.NewServer(core.ServerConfig{
		Key:         key,
		Clock:       d.cfg.Clock,
		Width:       d.cfg.Width,
		Height:      d.cfg.Height,
		Timing:      d.cfg.Timing,
		MinRTO:      d.cfg.MinRTO,
		MaxRTO:      d.cfg.MaxRTO,
		Envelope:    &network.Envelope{ID: id},
		Probe:       d.pipe,
		RecycleWire: d.cfg.RecycleWire,
		Emit:        func(wire []byte) { s.emit(wire) },
		HostInput:   func(data []byte) { s.hostInput(data) },
	})
	if err != nil {
		return nil, err
	}
	s.srv = srv
	// By default the daemon's terminals keep no local scrollback: the
	// client reconstructs its own history from scroll diffs, and at
	// thousands of sessions the dead rows would dominate memory. This also
	// lets the framebuffer recycle scrolled-off rows (terminal row
	// pooling). Config.Scrollback opts in to (structurally shared,
	// clone-cheap) server-side history.
	sb := -1
	if d.cfg.Scrollback > 0 {
		sb = d.cfg.Scrollback
	}
	srv.Terminal().Framebuffer().SetScrollbackLimit(sb)
	now := d.cfg.Clock.Now()
	s.lastActive = now
	if d.cfg.NewApp != nil {
		s.app = d.cfg.NewApp(id)
		if out := s.app.Start(); len(out) > 0 {
			s.mu.Lock()
			srv.HostOutput(out)
			s.mu.Unlock()
		}
	}
	if d.journal != nil {
		if d.journal.suspended.Load() == journalUnjournaled {
			// Journaling is suspended with the on-disk snapshot
			// invalidated: nothing can be restored, so nothing this
			// session sends can collide with a future restore — it joins
			// the other sessions at lifted ceilings, and the eventual
			// resume flush re-caps it at snapshot time like everyone else.
			srv.Transport().Connection().SetSeqCeiling(sspcrypto.MaxSeq + 1)
			srv.Transport().Sender().SetNumCeiling(^uint64(0))
		} else {
			// A brand-new session has no journal record yet; cap its counters
			// at one reservation so that, if the daemon dies before the next
			// flush, the session's absence from the journal is the only loss
			// (nothing it sent can collide with a future restore). The flush
			// request gets it journaled promptly. (In the fail-safe
			// suspension this cap is also the session's service bound.)
			srv.Transport().Connection().SetSeqCeiling(d.cfg.SeqReserve)
			srv.Transport().Sender().SetNumCeiling(d.cfg.SeqReserve)
		}
		// A new session is durable state the journal has never seen.
		s.markDirty()
		d.requestFlush()
	}
	d.reg.insert(s)
	d.metrics.SessionsLive.Add(1)
	d.metrics.SessionsOpened.Add(1)
	s.mu.Lock()
	s.rearmLocked(now)
	s.mu.Unlock()
	return s, nil
}

// CloseSession removes a session explicitly (user logout, admin action).
func (d *Daemon) CloseSession(id uint64) {
	s := d.reg.lookup(id)
	if s == nil {
		return
	}
	s.mu.Lock()
	s.removeLocked(&d.metrics.SessionsClosed)
	s.mu.Unlock()
}

// removeLocked takes the session out of the daemon: registry, timer heap,
// worker. Caller holds s.mu; counter is the metric to credit.
func (s *Session) removeLocked(counter interface{ Add(int64) }) {
	if s.closed {
		return
	}
	s.closed = true
	s.closedFlag.Store(true)
	close(s.done)
	s.d.reg.delete(s.ID)
	s.d.timers.remove(s)
	if j := s.d.journal; j != nil {
		// Record the close durably: without a tombstone the next restart
		// would resurrect this session from its last journal record.
		j.noteClosed(s.ID)
	}
	s.d.metrics.SessionsLive.Add(-1)
	counter.Add(1)
}
