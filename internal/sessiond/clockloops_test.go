package sessiond

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/simclock"
)

var loopEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// countingClock wraps a Manual clock and counts timer traffic, making "how
// often did a daemon loop wake and re-arm" an observable quantity.
type countingClock struct {
	*simclock.Manual
	resets atomic.Int64
}

func (c *countingClock) NewTimer(d time.Duration) simclock.Timer {
	return &countingTimer{Timer: c.Manual.NewTimer(d), c: c}
}

type countingTimer struct {
	simclock.Timer
	c *countingClock
}

func (t *countingTimer) Reset(d time.Duration) bool {
	t.c.resets.Add(1)
	return t.Timer.Reset(d)
}

// waitUntil polls cond in real time — the loops under test run as real
// goroutines even though they sleep on a virtual clock.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	var real simclock.Real
	deadline := real.Now().Add(5 * time.Second)
	for !cond() {
		if real.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		real.Sleep(time.Millisecond)
	}
}

// TestTickLoopHonorsInjectedClock pins the tickLoop half of the one-time-
// regime bug: deadlines are computed against cfg.Clock.Now, so the sleep
// must ride the same clock. Under a Manual clock the loop must fire a due
// session deadline when *virtual* time crosses it — the pre-fix loop slept
// on a real time.Timer and would sit out the full wall-clock duration.
func TestTickLoopHonorsInjectedClock(t *testing.T) {
	clk := simclock.NewManual(loopEpoch)
	d, err := New(Config{Clock: clk, IdleTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := d.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	at, ok := d.NextDeadline()
	if !ok {
		// Arm via the ordinary path: any session work re-arms the heap.
		s.Do(func(srv *core.Server) {})
		if at, ok = d.NextDeadline(); !ok {
			t.Fatal("no session deadline armed")
		}
	}
	go d.tickLoop()
	defer close(d.stop)

	clk.BlockUntilWaiters(1) // the loop parked its sleep on the clock
	clk.Advance(at.Sub(clk.Now()) + time.Millisecond)
	waitUntil(t, "tick loop to consume the due deadline", func() bool {
		next, ok := d.NextDeadline()
		return !ok || next.After(at)
	})
}

// TestJournalLoopBoundedWakeupsDuringOutage pins the journalLoop half:
// during a sustained disk outage (every write fails with EIO), a flush-
// request storm from low-headroom sessions must NOT wake the loop — wakeups
// are bounded by the backoff cadence, and each backoff expiry costs exactly
// one (failed) flush attempt. The pre-fix loop woke per request and clamped
// past deadlines to a 1 ms resleep, spinning at ~1 kHz for the outage.
func TestJournalLoopBoundedWakeupsDuringOutage(t *testing.T) {
	clk := &countingClock{Manual: simclock.NewManual(loopEpoch)}
	ffs := faultinject.NewFaultFS(nil, 1)
	d, err := New(Config{
		Clock:               clk,
		IdleTimeout:         -1,
		StateDir:            t.TempDir(),
		FS:                  ffs,
		JournalRetryMin:     100 * time.Millisecond,
		JournalRetryMax:     400 * time.Millisecond,
		JournalSuspendAfter: -1, // keep the outage in pure retry/backoff
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := d.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	go d.journalLoop()
	defer close(d.stop)
	clk.BlockUntilWaiters(1) // loop parked on its cadence timer

	// Outage begins. The first on-demand request reaches the disk, fails,
	// and arms the backoff. The session must be dirty for the attempt to
	// reach the disk at all — a clean incremental flush is a no-op.
	ffs.SetFaults(faultinject.FSFaults{FailAll: faultinject.ErrEIO})
	errs0 := d.metrics.JournalErrors.Value()
	s.Do(func(*core.Server) {})
	d.requestFlush()
	waitUntil(t, "first failed flush attempt", func() bool {
		return d.metrics.JournalErrors.Value() > errs0
	})
	waitUntil(t, "loop to re-park after the failure", func() bool {
		return clk.WaiterCount() >= 1
	})

	// Request storm while the backoff is pending: none of it may wake the
	// loop. Give the loop real time to misbehave, then count re-arms — the
	// pre-fix loop racks up thousands here.
	resets0 := clk.resets.Load()
	for i := 0; i < 20000; i++ {
		d.requestFlush()
	}
	simclock.Real{}.Sleep(150 * time.Millisecond)
	if grew := clk.resets.Load() - resets0; grew > 2 {
		t.Fatalf("flush-request storm woke the journal loop %d times during backoff; wakeups must be timer-bounded", grew)
	}
	if d.metrics.JournalErrors.Value() != errs0+1 {
		t.Fatalf("storm leaked %d extra flush attempts through the backoff gate",
			d.metrics.JournalErrors.Value()-errs0-1)
	}

	// Each backoff expiry buys exactly one retry: advance virtual time
	// across several expiries and count attempts, not spins.
	for round := int64(1); round <= 4; round++ {
		waitUntil(t, "loop parked before advance", func() bool { return clk.WaiterCount() >= 1 })
		clk.Advance(600 * time.Millisecond) // > retryMax + jitter
		waitUntil(t, "one retry per backoff expiry", func() bool {
			return d.metrics.JournalErrors.Value() >= errs0+1+round
		})
	}
	if total := clk.resets.Load() - resets0; total > 16 {
		t.Fatalf("journal loop re-armed %d times across 4 backoff expiries; expected a handful", total)
	}

	// Outage ends: the next expiry flushes clean and the loop returns to
	// serving on-demand requests.
	ffs.SetFaults(faultinject.FSFaults{})
	flushes0 := d.metrics.JournalFlushes.Value()
	waitUntil(t, "loop parked before heal advance", func() bool { return clk.WaiterCount() >= 1 })
	clk.Advance(600 * time.Millisecond)
	waitUntil(t, "post-outage flush success", func() bool {
		return d.metrics.JournalFlushes.Value() > flushes0
	})
}
