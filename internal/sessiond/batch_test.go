package sessiond

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/host"
	"repro/internal/netem"
	"repro/internal/network"
	"repro/internal/overlay"
	"repro/internal/simclock"
	"repro/internal/udpbatch"
)

var batchT0 = time.Date(2012, 4, 1, 0, 0, 0, 0, time.UTC)

// envPkt builds a wire datagram carrying just a session envelope plus
// payload bytes (enough for routing/grouping; it will fail auth if
// handled, which grouping tests never do).
func envPkt(id uint64, tag byte) []byte {
	return append(network.AppendEnvelope(nil, id), tag)
}

// TestGroupBatchGroupsPerSessionInOrder checks the demultiplexer: one run
// per session present in the batch, arrival order preserved within each
// run, unknown sessions dropped and counted.
func TestGroupBatchGroupsPerSessionInOrder(t *testing.T) {
	sched := simclock.NewScheduler(batchT0)
	d, err := New(Config{Clock: sched, IdleTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := d.OpenSession()
	s2, _ := d.OpenSession()
	msgs := []udpbatch.Message{
		{Buf: envPkt(s1.ID, 'a'), Addr: netem.Addr{Host: 1}},
		{Buf: envPkt(s2.ID, 'x'), Addr: netem.Addr{Host: 2}},
		{Buf: envPkt(s1.ID, 'b'), Addr: netem.Addr{Host: 1}},
		{Buf: envPkt(0xdead, '?'), Addr: netem.Addr{Host: 3}}, // unknown session
		{Buf: envPkt(s1.ID, 'c'), Addr: netem.Addr{Host: 1}},
		{Buf: envPkt(s2.ID, 'y'), Addr: netem.Addr{Host: 2}},
	}
	groups := d.groupBatch(msgs, false)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	tags := func(r *inRun) string {
		var b []byte
		for _, p := range r.pkts {
			b = append(b, p.wire[len(p.wire)-1])
		}
		return string(b)
	}
	if groups[0].s != s1 || tags(groups[0].run) != "abc" {
		t.Fatalf("group 0: session %d run %q, want session %d run \"abc\"", groups[0].s.ID, tags(groups[0].run), s1.ID)
	}
	if groups[1].s != s2 || tags(groups[1].run) != "xy" {
		t.Fatalf("group 1: session %d run %q, want session %d run \"xy\"", groups[1].s.ID, tags(groups[1].run), s2.ID)
	}
	if got := d.metrics.DropsUnknownSession.Value(); got != 1 {
		t.Fatalf("DropsUnknownSession = %d, want 1", got)
	}
	if got := d.metrics.PacketsIn.Value(); got != 6 {
		t.Fatalf("PacketsIn = %d, want 6", got)
	}
	for _, g := range groups {
		d.freeRun(g.run)
	}
}

// TestEgressRingBackpressure fills the ring past capacity: overflow must
// be dropped (counted, pooled buffers recycled), never block, and a flush
// must deliver the accepted prefix in order.
func TestEgressRingBackpressure(t *testing.T) {
	sched := simclock.NewScheduler(batchT0)
	var sent []byte
	d, err := New(Config{
		Clock:       sched,
		IdleTimeout: -1,
		EgressDepth: 4,
		Send:        func(dst netem.Addr, wire []byte) { sent = append(sent, wire[0]) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := byte(0); i < 7; i++ {
		d.enqueueEgress(netem.Addr{Host: 1}, []byte{i})
	}
	if got := d.metrics.DropsEgressFull.Value(); got != 3 {
		t.Fatalf("DropsEgressFull = %d, want 3", got)
	}
	if got := d.metrics.EgressQueueDepth.Value(); got != 4 {
		t.Fatalf("EgressQueueDepth = %d, want 4", got)
	}
	if got := d.metrics.PacketsOut.Value(); got != 0 {
		t.Fatalf("PacketsOut = %d before any flush, want 0 (counted on transmit, not enqueue)", got)
	}
	d.flushEgress()
	if !bytes.Equal(sent, []byte{0, 1, 2, 3}) {
		t.Fatalf("flushed %v, want FIFO prefix [0 1 2 3]", sent)
	}
	if got := d.metrics.PacketsOut.Value(); got != 4 {
		t.Fatalf("PacketsOut = %d after flush, want 4 (drops must not count as sent)", got)
	}
	if got := d.metrics.EgressQueueDepth.Value(); got != 0 {
		t.Fatalf("EgressQueueDepth after flush = %d, want 0", got)
	}
}

// scriptedConn is a batch conn whose WriteBatch follows a script of
// (consume n, maybe error) steps, recording everything delivered — the
// partial-write/error-semantics fixture.
type scriptedConn struct {
	steps []struct {
		n   int
		err error
	}
	delivered []byte
}

func (c *scriptedConn) BatchCap() int                             { return 4 }
func (c *scriptedConn) ReadBatch([]udpbatch.Message) (int, error) { select {} }
func (c *scriptedConn) WriteBatch(msgs []udpbatch.Message) (int, error) {
	step := struct {
		n   int
		err error
	}{n: len(msgs)}
	if len(c.steps) > 0 {
		step = c.steps[0]
		c.steps = c.steps[1:]
	}
	if step.n > len(msgs) {
		step.n = len(msgs)
	}
	for i := 0; i < step.n; i++ {
		c.delivered = append(c.delivered, msgs[i].Buf[0])
	}
	return step.n, step.err
}

// TestWriteOutPartialAndErrorSemantics pins the documented WriteBatch
// contract end to end through the flusher: a short batch is retried from
// the remainder, an erroring datagram is dropped (counted) and the rest
// still goes out.
func TestWriteOutPartialAndErrorSemantics(t *testing.T) {
	sched := simclock.NewScheduler(batchT0)
	d, err := New(Config{Clock: sched, IdleTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	conn := &scriptedConn{}
	conn.steps = []struct {
		n   int
		err error
	}{
		{n: 2},                          // partial write: kernel took 2 of 4
		{n: 1, err: errors.New("icmp")}, // sent 1, next datagram errored
		{n: 0, err: errors.New("icmp")}, // first datagram of remainder errored
	}
	var bc udpbatch.Conn = conn
	d.serveConn.Store(&bc)
	for i := byte(10); i < 17; i++ {
		d.enqueueEgress(netem.Addr{Host: 1}, []byte{i})
	}
	d.flushEgress()
	// 7 enqueued in batches of 4 (conn.BatchCap) → sweep 1 is [10 11 12 13]:
	// partial 2, then 1+error dropping 13; sweep 2 is [14 15 16]: error drops
	// 14, then default consumes the rest.
	want := []byte{10, 11, 12, 15, 16}
	if !bytes.Equal(conn.delivered, want) {
		t.Fatalf("delivered %v, want %v", conn.delivered, want)
	}
	if got := d.metrics.EgressWriteErrors.Value(); got != 2 {
		t.Fatalf("EgressWriteErrors = %d, want 2", got)
	}
}

// pipeConn is an in-memory bidirectional batch conn for ServeBatch
// end-to-end tests: reads come from a channel, writes land in one.
type pipeConn struct {
	in     chan udpbatch.Message
	out    chan udpbatch.Message
	closed chan struct{}
}

func newPipeConn() *pipeConn {
	return &pipeConn{
		in:     make(chan udpbatch.Message, 256),
		out:    make(chan udpbatch.Message, 256),
		closed: make(chan struct{}),
	}
}

func (p *pipeConn) BatchCap() int { return 8 }

func (p *pipeConn) Close() error {
	select {
	case <-p.closed:
	default:
		close(p.closed)
	}
	return nil
}

func (p *pipeConn) ReadBatch(msgs []udpbatch.Message) (int, error) {
	var first udpbatch.Message
	select {
	case first = <-p.in:
	case <-p.closed:
		return 0, errors.New("closed")
	}
	msgs[0].Buf = append(msgs[0].Buf[:0], first.Buf...)
	msgs[0].Addr = first.Addr
	n := 1
	for n < len(msgs) {
		select {
		case m := <-p.in:
			msgs[n].Buf = append(msgs[n].Buf[:0], m.Buf...)
			msgs[n].Addr = m.Addr
			n++
		default:
			return n, nil
		}
	}
	return n, nil
}

func (p *pipeConn) WriteBatch(msgs []udpbatch.Message) (int, error) {
	for i := range msgs {
		select {
		case p.out <- udpbatch.Message{Buf: append([]byte(nil), msgs[i].Buf...), Addr: msgs[i].Addr}:
		case <-p.closed:
			return i, errors.New("closed")
		}
	}
	return len(msgs), nil
}

// TestServeBatchEndToEnd drives a real client through ServeBatch over an
// in-memory batch conn: the full async pipeline — vectorized reader,
// per-session runs, worker, egress ring, batched flusher — must converge
// the client to the server screen, with RecycleWire on (pooled egress
// copies) to exercise buffer recycling under -race.
func TestServeBatchEndToEnd(t *testing.T) {
	d, err := New(Config{
		Clock:       simclock.Real{},
		IdleTimeout: -1,
		RecycleWire: true,
		NewApp:      func(id uint64) host.App { return host.NewShell(int64(id)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	sess, err := d.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	conn := newPipeConn()
	serveErr := make(chan error, 1)
	go func() { serveErr <- d.ServeBatch(conn) }()

	cl := newTestClient(t, sess, func(wire []byte) {
		conn.in <- udpbatch.Message{Buf: append([]byte(nil), wire...), Addr: netem.Addr{Host: 42, Port: 7}}
	})
	const text = "batchedpipeline"
	for _, b := range []byte(text) {
		cl.UserBytes([]byte{b})
	}
	cl.Tick()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if sawEcho(cl, text) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never saw the echoed text through the batched pipeline")
		}
		select {
		case m := <-conn.out:
			cl.Receive(m.Buf, netem.Addr{Host: 9999, Port: 60001})
		case <-time.After(5 * time.Millisecond):
			cl.Tick()
		}
	}
	if d.metrics.ReadBatchCalls.Value() == 0 || d.metrics.WriteBatchCalls.Value() == 0 {
		t.Fatal("batch syscall counters did not move")
	}
	if got := d.metrics.ReadBatchSizes.Samples(); got == 0 {
		t.Fatal("read batch histogram empty")
	}
	d.Close()
	if err := <-serveErr; err != nil {
		t.Fatalf("ServeBatch returned %v", err)
	}
}

// TestInboxBoundCountsDatagrams pins the per-session backpressure
// contract: Config.InboxDepth bounds queued DATAGRAMS, not runs — a read
// batch must not multiply a slow session's memory budget by the batch
// size. The session's worker is wedged by holding the session lock, so
// deliveries accumulate deterministically.
func TestInboxBoundCountsDatagrams(t *testing.T) {
	d, err := New(Config{
		Clock:       simclock.Real{},
		IdleTimeout: -1,
		InboxDepth:  8,
		Send:        func(netem.Addr, []byte) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s, err := d.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	// Wedge the worker: it will dequeue at most one run and then block in
	// handle() on the session lock we hold.
	s.mu.Lock()
	defer s.mu.Unlock()
	const runSize = 4
	deliver := func() {
		r := getRun(false)
		for i := 0; i < runSize; i++ {
			r.pkts = append(r.pkts, inPacket{wire: envPkt(s.ID, byte(i)), src: netem.Addr{Host: 1}})
		}
		d.deliverRun(s, r)
	}
	deliver()
	// Give the worker a moment to take the first run (it subtracts from
	// the budget before blocking on s.mu).
	deadline := time.Now().Add(2 * time.Second)
	for s.queuedPkts.Load() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		deliver()
	}
	// Budget 8 admits exactly two more 4-packet runs; the remaining three
	// (12 datagrams) must be dropped, not queued.
	if got := s.queuedPkts.Load(); got != 8 {
		t.Fatalf("queued %d datagrams with InboxDepth=8, want 8", got)
	}
	if got := d.metrics.DropsQueueFull.Value(); got != 12 {
		t.Fatalf("DropsQueueFull = %d datagrams, want 12", got)
	}
}

// TestInboxBoundAdmitsRunPrefix pins partial admission: a run larger
// than the remaining budget is truncated, not dropped whole — otherwise
// an InboxDepth below the read-batch size would starve a busy session
// forever (its coalesced retransmissions would be condemned too).
func TestInboxBoundAdmitsRunPrefix(t *testing.T) {
	d, err := New(Config{
		Clock:       simclock.Real{},
		IdleTimeout: -1,
		InboxDepth:  8,
		Send:        func(netem.Addr, []byte) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s, err := d.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// One run of 12 against a budget of 8: the first 8 datagrams must be
	// admitted, the 4-packet tail dropped.
	r := getRun(false)
	for i := 0; i < 12; i++ {
		r.pkts = append(r.pkts, inPacket{wire: envPkt(s.ID, byte(i)), src: netem.Addr{Host: 1}})
	}
	d.deliverRun(s, r)
	// The wedged worker may have dequeued the run (subtracting its 8)
	// before blocking on s.mu; accept either resting state but never a
	// whole-run drop.
	if got := d.metrics.DropsQueueFull.Value(); got != 4 {
		t.Fatalf("DropsQueueFull = %d, want 4 (tail only, prefix admitted)", got)
	}
	if got := s.queuedPkts.Load(); got != 0 && got != 8 {
		t.Fatalf("queuedPkts = %d, want 0 (dequeued) or 8 (queued)", got)
	}
}

// TestBatchEgressAllocFree pins the enqueue→flush cycle at zero heap
// allocations per datagram in steady state, in RecycleWire mode (the
// real-socket configuration: ring copies into pooled buffers).
func TestBatchEgressAllocFree(t *testing.T) {
	sched := simclock.NewScheduler(batchT0)
	d, err := New(Config{
		Clock:       sched,
		IdleTimeout: -1,
		RecycleWire: true,
		Send:        func(netem.Addr, []byte) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	wire := bytes.Repeat([]byte{7}, 120)
	dst := netem.Addr{Host: 3, Port: 4}
	// Warm the pools and scratch.
	for i := 0; i < 8; i++ {
		d.enqueueEgress(dst, wire)
	}
	d.flushEgress()
	allocs := testing.AllocsPerRun(500, func() {
		for i := 0; i < 8; i++ {
			d.enqueueEgress(dst, wire)
		}
		d.flushEgress()
	})
	if allocs != 0 {
		t.Fatalf("egress enqueue+flush = %.2f allocs per 8-datagram sweep, want 0", allocs)
	}
}

// TestBatchGroupDispatchAllocFree pins the read-side demultiplexer at
// zero allocations per batch in steady state (pool-owned buffers grouped
// into pooled runs and recycled).
func TestBatchGroupDispatchAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates inside sync.Pool; CI runs this guard without -race")
	}
	sched := simclock.NewScheduler(batchT0)
	d, err := New(Config{Clock: sched, IdleTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	var ids []uint64
	for i := 0; i < 4; i++ {
		s, err := d.OpenSession()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID)
	}
	msgs := make([]udpbatch.Message, 16)
	fill := func() {
		for i := range msgs {
			buf := d.readPool.Get()
			buf = network.AppendEnvelope(buf, ids[i%len(ids)])
			msgs[i].Buf = append(buf, byte(i))
			msgs[i].Addr = netem.Addr{Host: uint32(i)}
		}
	}
	sweep := func() {
		for _, g := range d.groupBatch(msgs, true) {
			d.freeRun(g.run)
		}
	}
	fill()
	sweep()
	allocs := testing.AllocsPerRun(500, func() {
		fill()
		sweep()
	})
	if allocs != 0 {
		t.Fatalf("group+recycle = %.2f allocs per 16-datagram batch, want 0", allocs)
	}
}

// newTestClient builds a real-time SSP client bound to sess.
func newTestClient(t *testing.T, sess *Session, emit func(wire []byte)) *core.Client {
	t.Helper()
	cl, err := core.NewClient(core.ClientConfig{
		Key:         sess.Key(),
		Clock:       simclock.Real{},
		Envelope:    &network.Envelope{ID: sess.ID},
		Predictions: overlay.Never,
		Emit:        emit,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// sawEcho reports whether the client's reconstructed screen contains text.
func sawEcho(cl *core.Client, text string) bool {
	fb := cl.ServerState()
	var b strings.Builder
	for r := 0; r < fb.H; r++ {
		for c := 0; c < fb.W; c++ {
			b.WriteString(fb.Peek(r, c).String())
		}
		b.WriteByte('\n')
	}
	return strings.Contains(b.String(), text)
}

// sizedConn is a fake provider that, like the GSO and io_uring providers,
// declares oversized read slots via udpbatch.SlotSizer and truncates
// kernel-style when handed a smaller buffer.
type sizedConn struct {
	slotSize int
	payload  []byte
	gotCap   chan int
	served   bool
	closed   chan struct{}
}

func (c *sizedConn) BatchCap() int        { return 8 }
func (c *sizedConn) ReadSlotSize() int    { return c.slotSize }
func (c *sizedConn) ProviderName() string { return "fake-sized" }

func (c *sizedConn) Close() error {
	select {
	case <-c.closed:
	default:
		close(c.closed)
	}
	return nil
}

func (c *sizedConn) ReadBatch(msgs []udpbatch.Message) (int, error) {
	if c.served {
		<-c.closed
		return 0, errors.New("closed")
	}
	c.served = true
	c.gotCap <- cap(msgs[0].Buf)
	n := len(c.payload)
	if cp := cap(msgs[0].Buf); cp < n {
		n = cp // kernel-style truncation: the exact failure the fix removes
	}
	msgs[0].Buf = msgs[0].Buf[:n]
	copy(msgs[0].Buf, c.payload)
	msgs[0].Addr = netem.Addr{Host: 7, Port: 7}
	return 1, nil
}

func (c *sizedConn) WriteBatch(msgs []udpbatch.Message) (int, error) {
	return len(msgs), nil
}

// TestServeBatchSlotSizing is the regression test for per-provider read
// slot sizing: a provider declaring MaxDatagram read slots must receive
// buffers that large, so an oversized-but-legitimate datagram (a GRO
// super-datagram, a jumbo frame) arrives whole instead of truncating —
// truncation fails the AEAD, and since SSP retransmits the identical
// datagram, every retry fails identically (a livelock, not a loss).
func TestServeBatchSlotSizing(t *testing.T) {
	d, err := New(Config{Clock: simclock.Real{}, IdleTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	payload := append(envPkt(12345, 1), bytes.Repeat([]byte{0xab}, 10000)...)
	conn := &sizedConn{
		slotSize: udpbatch.MaxDatagram,
		payload:  payload,
		gotCap:   make(chan int, 1),
		closed:   make(chan struct{}),
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- d.ServeBatch(conn) }()
	select {
	case got := <-conn.gotCap:
		if got < udpbatch.MaxDatagram {
			t.Fatalf("read slot cap = %d, want >= %d (declared via SlotSizer)", got, udpbatch.MaxDatagram)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ServeBatch never read")
	}
	// The datagram must reach routing at full length: BytesIn counts the
	// wire bytes as delivered by the provider.
	deadline := time.Now().Add(10 * time.Second)
	for d.metrics.BytesIn.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := d.metrics.BytesIn.Value(); got != int64(len(payload)) {
		t.Fatalf("BytesIn = %d, want %d (oversized datagram truncated)", got, len(payload))
	}
	d.Close()
	<-serveErr
}

// TestIOModelAccounting pins the per-model syscall and stack-traversal
// arithmetic against a hand-computed batch: 6 same-source equal-length
// datagrams followed by 2 from another source.
func TestIOModelAccounting(t *testing.T) {
	mkBatch := func() []udpbatch.Message {
		var msgs []udpbatch.Message
		a := netem.Addr{Host: 1, Port: 1}
		b := netem.Addr{Host: 2, Port: 2}
		for i := 0; i < 6; i++ {
			msgs = append(msgs, udpbatch.Message{Buf: envPkt(1, byte(i)), Addr: a})
		}
		for i := 0; i < 2; i++ {
			msgs = append(msgs, udpbatch.Message{Buf: envPkt(2, byte(i)), Addr: b})
		}
		return msgs
	}
	cases := []struct {
		model     IOModel
		wantCalls int64
		wantTrav  int64
	}{
		{IOModelMMsg, 1, 8},  // one recvmmsg, one traversal per datagram
		{IOModelLoop, 8, 8},  // one syscall per datagram
		{IOModelGSO, 1, 2},   // two same-src runs → two traversals, one read call
		{IOModelURing, 1, 8}, // one CQ sweep, traversals per datagram
	}
	for _, tc := range cases {
		t.Run(tc.model.String(), func(t *testing.T) {
			sched := simclock.NewScheduler(batchT0)
			d, err := New(Config{Clock: sched, IdleTimeout: -1, IOModel: tc.model})
			if err != nil {
				t.Fatal(err)
			}
			d.HandleBatch(mkBatch())
			if got := d.metrics.ReadBatchCalls.Value(); got != tc.wantCalls {
				t.Errorf("ReadBatchCalls = %d, want %d", got, tc.wantCalls)
			}
			if got := d.metrics.StackTraversalsIn.Value(); got != tc.wantTrav {
				t.Errorf("StackTraversalsIn = %d, want %d", got, tc.wantTrav)
			}
		})
	}
}

// TestGSOWriteModelCountsRuns pins the egress model: a sweep of same-peer
// equal-length datagrams is charged one stack traversal per coalesced run
// and syscalls per DefaultBatch runs, using the provider's own run
// definition.
func TestGSOWriteModelCountsRuns(t *testing.T) {
	sched := simclock.NewScheduler(batchT0)
	var sent int
	d, err := New(Config{
		Clock:       sched,
		IdleTimeout: -1,
		IOModel:     IOModelGSO,
		Send:        func(dst netem.Addr, wire []byte) { sent++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	// 10 equal-length datagrams to peer A (one run), 3 to peer B (one run).
	wire := bytes.Repeat([]byte{0x5c}, 100)
	for i := 0; i < 10; i++ {
		d.enqueueEgress(netem.Addr{Host: 1, Port: 1}, wire)
	}
	for i := 0; i < 3; i++ {
		d.enqueueEgress(netem.Addr{Host: 2, Port: 2}, wire)
	}
	d.flushEgress()
	if sent != 13 {
		t.Fatalf("sent %d datagrams, want 13", sent)
	}
	if got := d.metrics.StackTraversalsOut.Value(); got != 2 {
		t.Fatalf("StackTraversalsOut = %d, want 2 (two same-peer runs)", got)
	}
	if got := d.metrics.WriteBatchCalls.Value(); got != 1 {
		t.Fatalf("WriteBatchCalls = %d, want 1 (both runs fit one sendmmsg)", got)
	}
}
