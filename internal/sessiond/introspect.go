package sessiond

import (
	"sort"
	"time"
)

// SessionStats is a point-in-time transport snapshot of one session, read
// under the session lock: the live RTT estimator, the frame-rule interval
// the sender is currently honoring, and the queue depths that tell an
// operator where a slow session's latency is hiding.
type SessionStats struct {
	ID uint64
	// SRTT and RTTVar are the RFC 6298 estimator state (zero before the
	// first RTT sample); RTTSamples counts how many measurements fed it.
	SRTT       time.Duration
	RTTVar     time.Duration
	RTTSamples int
	// FrameInterval is the sender's current minimum inter-frame interval
	// (the paper's frame rule: SRTT/2 clamped to [20ms, 250ms]).
	FrameInterval time.Duration
	// OutstandingStates counts sender states not yet acknowledged by the
	// peer; FragmentsHeld counts partially reassembled inbound fragments;
	// QueuedPackets is the session inbox depth in datagrams.
	OutstandingStates int
	FragmentsHeld     int
	QueuedPackets     int64
}

// Stats snapshots the session's live transport state.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	tr := s.srv.Transport()
	conn := tr.Connection()
	st := SessionStats{
		ID:                s.ID,
		RTTVar:            conn.RTTVar(),
		RTTSamples:        conn.RTTSamples(),
		FrameInterval:     tr.Sender().SendInterval(),
		OutstandingStates: tr.Sender().SentStateCount(),
		FragmentsHeld:     tr.FragmentsHeld(),
		QueuedPackets:     s.queuedPkts.Load(),
	}
	if conn.HaveRTT() {
		st.SRTT = conn.SRTT(0)
	}
	return st
}

// TransportStats aggregates live transport introspection across every
// session: distribution points (p50/p99/max) for SRTT and frame interval,
// plus totals for outstanding states, held fragments, and queued packets.
// Sessions without an RTT sample yet are excluded from the SRTT quantiles
// but counted in Sessions.
type TransportStats struct {
	Sessions int

	SRTTp50, SRTTp99, SRTTMax                            time.Duration
	FrameIntervalP50, FrameIntervalP99, FrameIntervalMax time.Duration

	OutstandingStates int
	FragmentsHeld     int
	QueuedPackets     int64
}

// TransportStats walks the registry and aggregates per-session transport
// snapshots. It takes each session lock briefly; with thousands of sessions
// this is an operator-path call, not a hot-path one.
func (d *Daemon) TransportStats() TransportStats {
	var (
		out    TransportStats
		srtts  []time.Duration
		frames []time.Duration
	)
	d.reg.each(func(s *Session) {
		st := s.Stats()
		out.Sessions++
		out.OutstandingStates += st.OutstandingStates
		out.FragmentsHeld += st.FragmentsHeld
		out.QueuedPackets += st.QueuedPackets
		if st.SRTT > 0 {
			srtts = append(srtts, st.SRTT)
		}
		frames = append(frames, st.FrameInterval)
	})
	out.SRTTp50, out.SRTTp99, out.SRTTMax = durQuantiles(srtts)
	out.FrameIntervalP50, out.FrameIntervalP99, out.FrameIntervalMax = durQuantiles(frames)
	return out
}

// durQuantiles sorts in place and returns p50, p99, and max (zeros for an
// empty slice). The rank formula matches telemetry.Hist.Quantile.
func durQuantiles(ds []time.Duration) (p50, p99, max time.Duration) {
	if len(ds) == 0 {
		return 0, 0, 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	rank := func(q float64) time.Duration {
		return ds[int(q*float64(len(ds)-1))]
	}
	return rank(0.50), rank(0.99), ds[len(ds)-1]
}
