package trace

import (
	"testing"
	"time"
)

func TestSixUsersKeystrokeBudget(t *testing.T) {
	traces := SixUsers(1)
	if len(traces) != 6 {
		t.Fatalf("%d traces", len(traces))
	}
	total := 0
	for _, tr := range traces {
		total += len(tr.Steps)
	}
	// The paper's corpus had 9,986 keystrokes across six users.
	if total < 9000 || total > 11000 {
		t.Fatalf("total keystrokes = %d, want ≈10k", total)
	}
}

func TestTypingFractionMatchesPaper(t *testing.T) {
	traces := SixUsers(1)
	typing, total := 0, 0
	for _, tr := range traces {
		for k, n := range tr.KindCounts() {
			total += n
			if k == Typing {
				typing += n
			}
		}
	}
	frac := float64(typing) / float64(total)
	// The paper bounds typing from below — "more than two-thirds of user
	// keystrokes" (§3.2) — with ~70% of all keystrokes displayed
	// instantly (§4). The generator targets that window.
	if frac < 0.67 || frac > 0.90 {
		t.Fatalf("typing fraction = %.2f, want in [0.67, 0.90]", frac)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := Generate(7, SixProfiles()[0], 500)
	b := Generate(7, SixProfiles()[0], 500)
	if len(a.Steps) != len(b.Steps) {
		t.Fatal("nondeterministic step count")
	}
	for i := range a.Steps {
		if a.Steps[i].At != b.Steps[i].At || string(a.Steps[i].Data) != string(b.Steps[i].Data) ||
			string(a.Steps[i].Response) != string(b.Steps[i].Response) {
			t.Fatalf("traces diverge at step %d", i)
		}
	}
}

func TestStepsMonotonicAndPlausible(t *testing.T) {
	tr := Generate(3, SixProfiles()[3], 1000)
	var prev time.Duration
	for i, s := range tr.Steps {
		if s.At < prev {
			t.Fatalf("step %d goes back in time", i)
		}
		prev = s.At
		if len(s.Data) == 0 {
			t.Fatalf("step %d has no keystroke bytes", i)
		}
		if s.ResponseDelay < 0 || s.ResponseDelay > 200*time.Millisecond {
			t.Fatalf("step %d response delay %v", i, s.ResponseDelay)
		}
	}
	if tr.Duration() < time.Minute {
		t.Fatalf("1000-keystroke trace lasts only %v", tr.Duration())
	}
}

func TestTypingStepsEcho(t *testing.T) {
	// Typing keystrokes in shell/editor contexts should mostly have an
	// echo response containing the typed byte.
	tr := Generate(5, SixProfiles()[0], 800)
	echoed, typing := 0, 0
	for _, s := range tr.Steps {
		if s.Kind != Typing {
			continue
		}
		typing++
		for _, b := range s.Response {
			if len(s.Data) == 1 && b == s.Data[0] {
				echoed++
				break
			}
		}
	}
	if typing == 0 {
		t.Fatal("no typing steps")
	}
	if frac := float64(echoed) / float64(typing); frac < 0.9 {
		t.Fatalf("only %.2f of typing steps echo", frac)
	}
}

func TestNavigationStepsRepaint(t *testing.T) {
	tr := Generate(9, SixProfiles()[2], 800) // mail-heavy
	nav, repaint := 0, 0
	for _, s := range tr.Steps {
		if s.Kind != Navigation {
			continue
		}
		nav++
		if len(s.Response) > 100 {
			repaint++
		}
	}
	if nav == 0 {
		t.Fatal("mail-heavy trace has no navigation")
	}
	if repaint == 0 {
		t.Fatal("navigation never repainted the screen")
	}
}

func TestProfilesDiffer(t *testing.T) {
	traces := SixUsers(1)
	kChat := traces[4].KindCounts() // compose-heavy
	kMail := traces[2].KindCounts() // navigation-heavy
	fChat := float64(kChat[Typing]) / float64(len(traces[4].Steps))
	fMail := float64(kMail[Typing]) / float64(len(traces[2].Steps))
	if fChat <= fMail {
		t.Fatalf("chat user typing fraction %.2f should exceed mail user %.2f", fChat, fMail)
	}
}
