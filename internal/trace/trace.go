// Package trace generates and replays keystroke traces in the style of the
// paper's evaluation workload (§4): about 40 hours of usage from six users
// totalling ~9,986 keystrokes across shells, editors, mail readers and
// password prompts, with roughly 70% of keystrokes being predictable
// "typing" and the rest "navigation" and control keys.
//
// The paper's actual traces are unpublished, so (per the substitution rule
// in DESIGN.md) the generator synthesizes sessions with the same published
// properties. Each step records the keystroke, its kind, and the host
// application's prerecorded response — exactly the replay format the
// paper's measurement used. Long idle periods are already "sped up" the
// way the paper describes.
package trace

import (
	"math/rand"
	"time"

	"repro/internal/host"
)

// Kind classifies a keystroke the way the paper's analysis does.
type Kind int

const (
	// Typing is a printable character the host is expected to echo —
	// the predictable ~70%.
	Typing Kind = iota
	// Navigation moves around an application (mail index, pager, arrow
	// keys): the effect is a screen change no local engine can guess.
	Navigation
	// Control is ENTER, backspace, ^C and friends.
	Control
)

func (k Kind) String() string {
	switch k {
	case Typing:
		return "typing"
	case Navigation:
		return "navigation"
	default:
		return "control"
	}
}

// Step is one keystroke with its prerecorded host response.
type Step struct {
	// At is when the user presses the key (trace-relative).
	At time.Duration
	// Data is the keystroke as host bytes.
	Data []byte
	// Kind classifies the keystroke.
	Kind Kind
	// Response is the host's prerecorded output (nil if none).
	Response []byte
	// ResponseDelay is the host's processing time before writing.
	ResponseDelay time.Duration
}

// Trace is one user's session.
type Trace struct {
	Name   string
	Width  int
	Height int
	// Startup is the host output before the first keystroke.
	Startup []byte
	Steps   []Step
}

// Duration returns the trace length (last keystroke time plus slack).
func (t *Trace) Duration() time.Duration {
	if len(t.Steps) == 0 {
		return 0
	}
	return t.Steps[len(t.Steps)-1].At + 2*time.Second
}

// KindCounts tallies keystrokes by kind.
func (t *Trace) KindCounts() map[Kind]int {
	m := make(map[Kind]int)
	for _, s := range t.Steps {
		m[s.Kind]++
	}
	return m
}

// generator accumulates steps while driving host models.
type generator struct {
	rng   *rand.Rand
	now   time.Duration
	steps []Step
}

func (g *generator) key(data []byte, kind Kind, app host.App, gap time.Duration) {
	g.now += gap
	resp, delay := app.Input(data)
	g.steps = append(g.steps, Step{
		At:            g.now,
		Data:          append([]byte(nil), data...),
		Kind:          kind,
		Response:      resp,
		ResponseDelay: delay,
	})
}

// typingGap is a realistic inter-key interval: real-world typing averages
// roughly three keystrokes per second once hesitations between words are
// included (the paper replayed its traces with recorded keystroke timing).
func (g *generator) typingGap() time.Duration {
	return time.Duration(150+g.rng.Intn(300)) * time.Millisecond
}

// thinkGap is a pause while the user reads output or decides what to do
// next (already sped up, but never shorter than a human actually pauses
// after seeing a screenful change).
func (g *generator) thinkGap() time.Duration {
	return time.Duration(1200+g.rng.Intn(2800)) * time.Millisecond
}

var words = []string{
	"ls", "cd", "git status", "make test", "grep -r main", "cat notes.txt",
	"the", "quick", "system", "paper", "terminal", "network", "latency",
	"packet", "mobile", "shell", "editor", "process", "remote", "session",
}

// shellBurst types a command and runs it; occasionally the command opens
// a pager the user pages through (pure navigation).
func (g *generator) shellBurst(app host.App) {
	cmd := words[g.rng.Intn(len(words))]
	g.now += g.thinkGap()
	for _, r := range cmd {
		g.key([]byte(string(r)), Typing, app, g.typingGap())
	}
	if g.rng.Intn(6) == 0 { // typo + correction
		g.key([]byte{0x7f}, Control, app, g.typingGap())
		g.key([]byte("s"), Typing, app, g.typingGap())
	}
	g.key([]byte{'\r'}, Control, app, g.typingGap())
	if g.rng.Intn(3) == 0 { // man page / git log through a pager
		pager := host.NewPager(g.rng.Int63())
		n := 2 + g.rng.Intn(5)
		for i := 0; i < n; i++ {
			g.key([]byte{' '}, Navigation, pager, g.thinkGap())
		}
		g.key([]byte{'q'}, Navigation, pager, g.thinkGap())
	}
}

// editorBurst types prose with occasional arrow-key movement.
func (g *generator) editorBurst(app *host.Editor) {
	g.now += g.thinkGap()
	// People compose prose in long runs: that is what makes most typing
	// land in an already-confirmed epoch and display instantly.
	n := 7 + g.rng.Intn(12)
	for i := 0; i < n; i++ {
		w := words[g.rng.Intn(len(words))]
		for _, r := range w {
			g.key([]byte(string(r)), Typing, app, g.typingGap())
		}
		g.key([]byte(" "), Typing, app, g.typingGap())
	}
	moves := g.rng.Intn(3)
	arrows := [][]byte{{0x1b, '[', 'A'}, {0x1b, '[', 'B'}, {0x1b, '[', 'C'}, {0x1b, '[', 'D'}}
	for i := 0; i < moves; i++ {
		g.key(arrows[g.rng.Intn(4)], Navigation, app, g.typingGap()+100*time.Millisecond)
	}
	if g.rng.Intn(4) == 0 {
		g.key([]byte{'\r'}, Control, app, g.typingGap())
	}
}

// composeBurst models writing an email or document paragraph: a long
// uninterrupted typing run (tens of seconds), the dominant activity in the
// paper's corpus ("emails, chat, editing") and the reason most keystrokes
// land in an already-confirmed prediction epoch.
func (g *generator) composeBurst(app *host.Editor) {
	// Composition runs for a minute or more at a stretch — far longer
	// than even a badly bufferbloated round trip, which is what lets the
	// prediction epoch confirm and the bulk of the run display locally.
	g.now += g.thinkGap()
	n := 35 + g.rng.Intn(25)
	for i := 0; i < n; i++ {
		w := words[g.rng.Intn(len(words))]
		for _, r := range w {
			g.key([]byte(string(r)), Typing, app, g.typingGap())
		}
		g.key([]byte(" "), Typing, app, g.typingGap())
	}
	if g.rng.Intn(3) == 0 {
		g.key([]byte{'\r'}, Control, app, g.typingGap())
	}
}

// mailBurst navigates messages.
func (g *generator) mailBurst(app host.App) {
	n := 25 + g.rng.Intn(30)
	for i := 0; i < n; i++ {
		keys := []byte{'n', 'n', 'n', 'p', '\r', ' '}
		k := keys[g.rng.Intn(len(keys))]
		kind := Navigation
		g.key([]byte{k}, kind, app, g.thinkGap())
	}
}

// passwordBurst types a password blind.
func (g *generator) passwordBurst(app host.App) {
	g.now += g.thinkGap()
	for i := 0; i < 8; i++ {
		g.key([]byte{byte('a' + g.rng.Intn(26))}, Typing, app, g.typingGap())
	}
	g.key([]byte{'\r'}, Control, app, g.typingGap())
}

// Profile weights the activities a user performs.
type Profile struct {
	Name    string
	Shell   int // relative weight of shell bursts
	Editor  int
	Compose int // long prose runs (email/chat/document writing)
	Mail    int
	Passwd  int
}

// SixProfiles are the six users of the evaluation, with different
// application mixes (shell-heavy, editor-heavy, mail-heavy, chat-like...).
// The weights are tuned so that the aggregate keystroke mix lands near the
// paper's ~70% typing.
func SixProfiles() []Profile {
	return []Profile{
		{Name: "user1-shell", Shell: 8, Editor: 1, Compose: 1, Mail: 3, Passwd: 1},
		{Name: "user2-editor", Shell: 2, Editor: 4, Compose: 4, Mail: 3, Passwd: 0},
		{Name: "user3-mail", Shell: 2, Editor: 1, Compose: 1, Mail: 8, Passwd: 0},
		{Name: "user4-mixed", Shell: 4, Editor: 2, Compose: 2, Mail: 4, Passwd: 1},
		{Name: "user5-chat", Shell: 2, Editor: 2, Compose: 6, Mail: 3, Passwd: 0},
		{Name: "user6-ops", Shell: 7, Editor: 1, Compose: 1, Mail: 3, Passwd: 2},
	}
}

// Generate synthesizes one user's trace with approximately targetKeys
// keystrokes.
func Generate(seed int64, p Profile, targetKeys int) *Trace {
	g := &generator{rng: rand.New(rand.NewSource(seed))}
	shell := host.NewShell(seed + 1)
	editor := host.NewEditor(seed+2, 80)
	mail := host.NewMailReader(seed + 3)

	tr := &Trace{Name: p.Name, Width: 80, Height: 24, Startup: shell.Start()}

	total := p.Shell + p.Editor + p.Compose + p.Mail + p.Passwd
	if total == 0 {
		total, p.Shell = 1, 1
	}
	for len(g.steps) < targetKeys {
		x := g.rng.Intn(total)
		switch {
		case x < p.Shell:
			g.shellBurst(shell)
		case x < p.Shell+p.Editor:
			g.editorBurst(editor)
		case x < p.Shell+p.Editor+p.Compose:
			g.composeBurst(editor)
		case x < p.Shell+p.Editor+p.Compose+p.Mail:
			g.mailBurst(mail)
		default:
			// "sudo something" → ENTER brings up the password prompt.
			pw := host.NewPasswordPrompt()
			g.now += g.thinkGap()
			g.steps = append(g.steps, Step{
				At: g.now, Data: []byte{'\r'}, Kind: Control,
				Response: pw.Start(), ResponseDelay: 5 * time.Millisecond,
			})
			g.passwordBurst(pw)
		}
	}
	tr.Steps = g.steps
	return tr
}

// SixUsers generates the full evaluation workload: six traces totalling
// close to the paper's 9,986 keystrokes.
func SixUsers(seed int64) []*Trace {
	profiles := SixProfiles()
	traces := make([]*Trace, len(profiles))
	for i, p := range profiles {
		traces[i] = Generate(seed+int64(i)*1000, p, 1664)
	}
	return traces
}
