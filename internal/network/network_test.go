package network

import (
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/simclock"
	"repro/internal/sspcrypto"
)

var t0 = time.Date(2012, 4, 1, 0, 0, 0, 0, time.UTC)

func pair(t *testing.T, clock simclock.Clock) (client, server *Connection) {
	t.Helper()
	key := sspcrypto.Key{9, 9, 9}
	var err error
	client, err = NewConnection(Config{Direction: sspcrypto.ToServer, Key: key, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	server, err = NewConnection(Config{Direction: sspcrypto.ToClient, Key: key, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	return client, server
}

func TestPayloadRoundTrip(t *testing.T) {
	clk := simclock.NewManual(t0)
	client, server := pair(t, clk)
	wire, err := client.NewPacket([]byte("keys"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := server.Receive(wire, netem.Addr{Host: 1, Port: 2})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "keys" {
		t.Fatalf("payload = %q", got)
	}
}

func TestSequenceNumbersIncrement(t *testing.T) {
	clk := simclock.NewManual(t0)
	client, _ := pair(t, clk)
	if client.NextSeq() != 0 {
		t.Fatal("fresh connection should start at seq 0")
	}
	client.NewPacket(nil)
	client.NewPacket(nil)
	if client.NextSeq() != 2 {
		t.Fatalf("NextSeq = %d", client.NextSeq())
	}
}

func TestStaleAndReplayedPacketsDropped(t *testing.T) {
	clk := simclock.NewManual(t0)
	client, server := pair(t, clk)
	w1, _ := client.NewPacket([]byte("one"))
	w2, _ := client.NewPacket([]byte("two"))
	src := netem.Addr{Host: 1}
	if _, err := server.Receive(w2, src); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Receive(w1, src); err != ErrOldPacket {
		t.Fatalf("reordered-older packet: err = %v, want ErrOldPacket", err)
	}
	if _, err := server.Receive(w2, src); err != ErrOldPacket {
		t.Fatalf("replayed packet: err = %v, want ErrOldPacket", err)
	}
}

func TestOwnDirectionRejected(t *testing.T) {
	clk := simclock.NewManual(t0)
	client, _ := pair(t, clk)
	wire, _ := client.NewPacket(nil)
	if _, err := client.Receive(wire, netem.Addr{}); err != ErrOwnDirection {
		t.Fatalf("err = %v, want ErrOwnDirection", err)
	}
}

func TestForgedPacketRejected(t *testing.T) {
	clk := simclock.NewManual(t0)
	client, server := pair(t, clk)
	wire, _ := client.NewPacket([]byte("x"))
	wire[len(wire)-1] ^= 1
	if _, err := server.Receive(wire, netem.Addr{}); err != sspcrypto.ErrAuth {
		t.Fatalf("err = %v, want ErrAuth", err)
	}
	if _, heard := server.LastHeard(); heard {
		t.Fatal("forged packet counted as heard")
	}
}

func TestRoamingUpdatesTarget(t *testing.T) {
	clk := simclock.NewManual(t0)
	client, server := pair(t, clk)
	a1 := netem.Addr{Host: 1, Port: 10}
	a2 := netem.Addr{Host: 2, Port: 20}
	w1, _ := client.NewPacket(nil)
	w2, _ := client.NewPacket(nil)
	w3, _ := client.NewPacket(nil)
	server.Receive(w1, a1)
	if got, _ := server.RemoteAddr(); got != a1 {
		t.Fatalf("target = %v", got)
	}
	server.Receive(w2, a2)
	if got, _ := server.RemoteAddr(); got != a2 {
		t.Fatalf("after roam target = %v", got)
	}
	if server.RemoteAddrChanges() != 1 {
		t.Fatalf("roam count = %d", server.RemoteAddrChanges())
	}
	// A stale packet from the old address must NOT steal the target back.
	if _, err := server.Receive(w1, a1); err != ErrOldPacket {
		t.Fatal("stale packet accepted")
	}
	if got, _ := server.RemoteAddr(); got != a2 {
		t.Fatal("stale packet moved the reply target")
	}
	_ = w3
}

func TestClientDoesNotRoamServer(t *testing.T) {
	clk := simclock.NewManual(t0)
	client, server := pair(t, clk)
	serverAddr := netem.Addr{Host: 5, Port: 50}
	client.SetRemoteAddr(serverAddr)
	w, _ := server.NewPacket(nil)
	client.Receive(w, netem.Addr{Host: 6, Port: 60})
	if got, _ := client.RemoteAddr(); got != serverAddr {
		t.Fatalf("client re-targeted to %v; only the server side roams", got)
	}
}

func TestRTTEstimation(t *testing.T) {
	clk := simclock.NewManual(t0)
	client, server := pair(t, clk)
	src := netem.Addr{Host: 1}
	// client -> server (50ms one way), server replies immediately,
	// reply arrives 50ms later: RTT = 100ms.
	w, _ := client.NewPacket(nil)
	clk.Advance(50 * time.Millisecond)
	server.Receive(w, src)
	r, _ := server.NewPacket(nil)
	clk.Advance(50 * time.Millisecond)
	client.Receive(r, netem.Addr{Host: 2})
	if !client.HaveRTT() {
		t.Fatal("no RTT sample")
	}
	if got := client.SRTT(0); got < 95*time.Millisecond || got > 105*time.Millisecond {
		t.Fatalf("SRTT = %v, want ~100ms", got)
	}
}

func TestTimestampReplyAdjustedForHoldTime(t *testing.T) {
	clk := simclock.NewManual(t0)
	client, server := pair(t, clk)
	src := netem.Addr{Host: 1}
	w, _ := client.NewPacket(nil)
	clk.Advance(50 * time.Millisecond)
	server.Receive(w, src)
	// Server delays its ack 300ms (like a delayed ACK would).
	clk.Advance(300 * time.Millisecond)
	r, _ := server.NewPacket(nil)
	clk.Advance(50 * time.Millisecond)
	client.Receive(r, netem.Addr{Host: 2})
	// Despite 300ms hold, measured RTT must reflect only path delay.
	if got := client.SRTT(0); got < 95*time.Millisecond || got > 110*time.Millisecond {
		t.Fatalf("SRTT = %v, want ~100ms despite 300ms hold", got)
	}
}

func TestRTOBounds(t *testing.T) {
	clk := simclock.NewManual(t0)
	client, server := pair(t, clk)
	if client.RTO() != DefaultMaxRTO {
		t.Fatalf("pre-sample RTO = %v, want max", client.RTO())
	}
	src := netem.Addr{Host: 1}
	// Near-zero RTT drives RTO to the 50ms floor (not TCP's 1s).
	for i := 0; i < 20; i++ {
		w, _ := client.NewPacket(nil)
		server.Receive(w, src)
		r, _ := server.NewPacket(nil)
		clk.Advance(time.Millisecond)
		client.Receive(r, netem.Addr{Host: 2})
	}
	if got := client.RTO(); got != DefaultMinRTO {
		t.Fatalf("RTO = %v, want floor %v", got, DefaultMinRTO)
	}
}

func TestRTOCustomFloor(t *testing.T) {
	clk := simclock.NewManual(t0)
	key := sspcrypto.Key{1}
	c, err := NewConnection(Config{Direction: sspcrypto.ToServer, Key: key, Clock: clk, MinRTO: time.Second, MaxRTO: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	c.observeRTT(1)
	if got := c.RTO(); got != time.Second {
		t.Fatalf("RTO = %v, want custom 1s floor", got)
	}
}

func TestRFC6298Smoothing(t *testing.T) {
	clk := simclock.NewManual(t0)
	c, _ := NewConnection(Config{Direction: sspcrypto.ToServer, Key: sspcrypto.Key{1}, Clock: clk})
	c.observeRTT(100)
	if c.srtt != 100 || c.rttvar != 50 {
		t.Fatalf("first sample: srtt=%v rttvar=%v", c.srtt, c.rttvar)
	}
	c.observeRTT(200)
	// RTTVAR = 3/4*50 + 1/4*|100-200| = 62.5; SRTT = 7/8*100 + 1/8*200 = 112.5
	if c.rttvar != 62.5 || c.srtt != 112.5 {
		t.Fatalf("second sample: srtt=%v rttvar=%v", c.srtt, c.rttvar)
	}
}

func TestTimestampWraparound(t *testing.T) {
	// Start the clock so that the 16-bit millisecond timestamp wraps
	// between request and reply; the mod-2^16 arithmetic must still
	// produce the right sample.
	start := time.UnixMilli((1 << 16) - 20)
	clk := simclock.NewManual(start)
	client, server := pair(t, clk)
	w, _ := client.NewPacket(nil)
	clk.Advance(30 * time.Millisecond) // crosses the wrap
	server.Receive(w, netem.Addr{Host: 1})
	r, _ := server.NewPacket(nil)
	clk.Advance(30 * time.Millisecond)
	client.Receive(r, netem.Addr{Host: 2})
	if got := client.SRTT(0); got < 55*time.Millisecond || got > 65*time.Millisecond {
		t.Fatalf("SRTT across wrap = %v, want ~60ms", got)
	}
}

func TestRequiresClock(t *testing.T) {
	if _, err := NewConnection(Config{Direction: sspcrypto.ToServer, Key: sspcrypto.Key{}}); err == nil {
		t.Fatal("NewConnection accepted nil clock")
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	clk := simclock.NewManual(t0)
	key := sspcrypto.Key{9, 9, 9}
	env := &Envelope{ID: 0xfeedface12345678}
	client, err := NewConnection(Config{Direction: sspcrypto.ToServer, Key: key, Clock: clk, Envelope: env})
	if err != nil {
		t.Fatal(err)
	}
	server, err := NewConnection(Config{Direction: sspcrypto.ToClient, Key: key, Clock: clk, Envelope: env})
	if err != nil {
		t.Fatal(err)
	}
	wire, err := client.NewPacket([]byte("keys"))
	if err != nil {
		t.Fatal(err)
	}
	id, inner, err := ParseEnvelope(wire)
	if err != nil || id != env.ID {
		t.Fatalf("ParseEnvelope: id=%#x err=%v", id, err)
	}
	if len(inner) != len(wire)-EnvelopeLen {
		t.Fatalf("inner length %d", len(inner))
	}
	got, err := server.Receive(wire, netem.Addr{Host: 1, Port: 2})
	if err != nil || string(got) != "keys" {
		t.Fatalf("Receive: %q, %v", got, err)
	}
	if server.Overhead() != client.Overhead() || server.Overhead() != len(wire)-len("keys") {
		t.Fatalf("Overhead %d does not match wire expansion %d", server.Overhead(), len(wire)-len("keys"))
	}
}

func TestEnvelopeMismatchRejected(t *testing.T) {
	clk := simclock.NewManual(t0)
	key := sspcrypto.Key{9, 9, 9}
	client, err := NewConnection(Config{Direction: sspcrypto.ToServer, Key: key, Clock: clk, Envelope: &Envelope{ID: 7}})
	if err != nil {
		t.Fatal(err)
	}
	server, err := NewConnection(Config{Direction: sspcrypto.ToClient, Key: key, Clock: clk, Envelope: &Envelope{ID: 8}})
	if err != nil {
		t.Fatal(err)
	}
	wire, err := client.NewPacket([]byte("keys"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Receive(wire, netem.Addr{}); err != ErrEnvelope {
		t.Fatalf("mismatched envelope: err=%v, want ErrEnvelope", err)
	}
	if _, err := server.Receive(wire[:EnvelopeLen-1], netem.Addr{}); err != ErrEnvelope {
		t.Fatalf("truncated envelope: err=%v, want ErrEnvelope", err)
	}
}

func TestNoEnvelopeWireFormatUnchanged(t *testing.T) {
	// A session without an Envelope must produce bytes identical to what it
	// produced before the envelope hook existed: header+ciphertext only,
	// and an enveloped peer must not accept them as enveloped.
	clk := simclock.NewManual(t0)
	client, server := pair(t, clk)
	wire, err := client.NewPacket([]byte("keys"))
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != client.Overhead()+len("keys") {
		t.Fatalf("wire length %d, want %d", len(wire), client.Overhead()+len("keys"))
	}
	if got, err := server.Receive(wire, netem.Addr{}); err != nil || string(got) != "keys" {
		t.Fatalf("Receive: %q, %v", got, err)
	}
	// And an enveloped peer must not accept the plain format: the first 8
	// ciphertext bytes read as a (wrong) session ID.
	envServer, err := NewConnection(Config{
		Direction: sspcrypto.ToClient, Key: sspcrypto.Key{9, 9, 9}, Clock: clk,
		Envelope: &Envelope{ID: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	wire2, err := client.NewPacket([]byte("more"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := envServer.Receive(wire2, netem.Addr{}); err == nil {
		t.Fatal("enveloped endpoint accepted plain-format wire")
	}
}
