// Package network implements SSP's datagram layer (paper §2.2). It accepts
// opaque transport payloads, prepends an incrementing sequence number,
// encrypts each packet with AES-OCB, and tracks the connection's timing and
// the client's current address.
//
// Responsibilities, per the paper:
//
//   - confidentiality and authenticity under a single pre-shared key;
//   - idempotent datagrams — reordered or replayed packets are simply
//     discarded by sequence number, with no replay cache;
//   - client roaming — whenever the server receives an authentic datagram
//     with the highest sequence number so far, that packet's source address
//     becomes the new reply target;
//   - RTT and RTT-variation estimation from per-packet millisecond
//     timestamps and hold-time-adjusted timestamp replies, using TCP's
//     algorithm (RFC 6298) with a 50 ms (not 1 s) lower bound on the RTO.
//
// The layer is IO-free: NewPacket returns wire bytes for the caller to
// transmit (over internal/netem in simulation, or a real UDP socket in
// cmd/mosh-client and cmd/mosh-server), and Receive consumes wire bytes.
package network

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/netem"
	"repro/internal/simclock"
	"repro/internal/sspcrypto"
	"repro/internal/telemetry"
)

// Timing constants from the paper and the reference implementation.
const (
	// DefaultMinRTO is SSP's floor on the retransmission timeout: 50 ms
	// rather than TCP's one second (§2.2 change 3).
	DefaultMinRTO = 50 * time.Millisecond
	// DefaultMaxRTO caps the retransmission timeout.
	DefaultMaxRTO = 1000 * time.Millisecond
)

// tsNone is the wire encoding of "no timestamp reply".
const tsNone = 0xFFFF

// Errors surfaced by Receive. ErrOldPacket and ErrOwnDirection are normal
// network noise and safe to ignore; authentication failures mean the packet
// was forged or corrupted.
var (
	ErrOldPacket    = errors.New("network: stale or replayed sequence number")
	ErrOwnDirection = errors.New("network: packet from our own direction")
	ErrEnvelope     = errors.New("network: missing or mismatched session envelope")
	// ErrSeqExhausted reports that the outgoing sequence number has reached
	// the durable reservation ceiling (see SetSeqCeiling). The packet is not
	// sent; SSP treats the suppression as ordinary loss and the embedder is
	// expected to extend the reservation (flush its journal) promptly.
	ErrSeqExhausted = errors.New("network: sequence reservation exhausted")
)

// Session-ID envelope. A multiplexing daemon (internal/sessiond) runs many
// independent SSP sessions behind one socket by prepending a cleartext
// 64-bit big-endian session ID to every datagram. The ID is routing
// metadata only: authenticity still comes from each session's AES-OCB key,
// so a spoofed or corrupted ID merely selects a session whose key fails to
// open the packet. Without an Envelope the wire format is byte-identical
// to single-session SSP.

// EnvelopeLen is the byte length of the session-ID envelope.
const EnvelopeLen = 8

// Envelope configures the session-ID header on a Connection.
type Envelope struct {
	// ID is this session's 64-bit identifier on the shared socket.
	ID uint64
}

// AppendEnvelope appends the 8-byte envelope for session id to dst.
func AppendEnvelope(dst []byte, id uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, id)
}

// ParseEnvelope splits an enveloped datagram into its session ID and the
// inner SSP packet. The daemon uses it to demultiplex before any
// cryptography runs.
func ParseEnvelope(wire []byte) (id uint64, inner []byte, err error) {
	if len(wire) < EnvelopeLen {
		return 0, nil, ErrEnvelope
	}
	return binary.BigEndian.Uint64(wire), wire[EnvelopeLen:], nil
}

// Config parameterizes a Connection.
type Config struct {
	// Direction identifies which end this is (client seals ToServer).
	Direction sspcrypto.Direction
	// Key is the pre-shared session key.
	Key sspcrypto.Key
	// Clock supplies time; required.
	Clock simclock.Clock
	// MinRTO/MaxRTO bound the retransmission timeout. Zero values take
	// the defaults. MinRTO is an ablation knob (the paper argues 50 ms
	// against TCP's 1 s floor).
	MinRTO, MaxRTO time.Duration
	// Envelope, when non-nil, prepends the cleartext session-ID header to
	// outgoing packets and requires (and strips) a matching one on
	// incoming packets — the sessiond multiplexer's wire format. Nil keeps
	// the single-session format byte-identical.
	Envelope *Envelope
	// Resume, when non-nil, restores the connection's durable counters
	// from a persisted snapshot instead of starting at zero (a sessiond
	// restart). See Resume for the crash-safety contract.
	Resume *Resume
	// Probe, when non-nil, receives AEAD timing: a StageSeal span per
	// sealed datagram and a StageVerify span per opened one, measured on
	// cfg.Clock (0-duration under virtual time, still counted).
	Probe *telemetry.Pipeline
}

// Resume restores a Connection across a process restart. NextSeq must be a
// previously journaled reservation ceiling (every nonce the dead process
// could have sealed is strictly below it — see SetSeqCeiling), so the
// (key, direction, sequence) nonce is never reused. ExpectedSeq restores
// the replay floor for the incoming direction as of the journal flush:
// packets accepted before that flush stay rejected. Packets the dead
// process accepted AFTER its last flush can each be replayed once against
// the restored endpoint — the live floor cannot be reconstructed, and
// over-bumping it would deafen the connection to its genuine peer forever.
// The layers above keep that window harmless for state (instructions are
// idempotent by state number and user-input diffs by event index); its
// real residue is that a replayed packet can transiently re-aim the
// roaming reply target until the genuine peer's next datagram (higher
// sequence number) re-learns the address.
type Resume struct {
	// NextSeq seeds the outgoing sequence counter.
	NextSeq uint64
	// ExpectedSeq seeds the lowest acceptable incoming sequence number.
	ExpectedSeq uint64
	// RemoteAddr, when non-nil, seeds the reply target so the restored
	// server can resume sending (heartbeats, the resume repaint) before
	// the client speaks. Roaming re-learns it from authentic traffic.
	RemoteAddr *netem.Addr
	// Heard marks that the dead process had heard authentic traffic; the
	// restored connection treats the restart instant as the last-heard
	// time so retransmission stays active.
	Heard bool
}

// Connection is one end of an SSP datagram-layer association. It is a pure
// state machine: not safe for concurrent use.
type Connection struct {
	cfg     Config
	session *sspcrypto.Session

	nextSeq     uint64 // sequence number of the next outgoing packet
	expectedSeq uint64 // lowest acceptable incoming sequence number

	// seqCeiling bounds nextSeq for crash safety: packets with seq >=
	// seqCeiling are refused (ErrSeqExhausted) until the embedder journals
	// a higher reservation and raises the ceiling. 0 means unlimited (no
	// persistence configured).
	seqCeiling uint64

	// Timestamp bookkeeping for RTT measurement. savedTimestamp is the
	// most recently received remote timestamp, echoed back (adjusted for
	// hold time) on our next outgoing packet.
	savedTimestamp   int32 // -1 when none pending
	savedTimestampAt time.Time

	srtt     float64 // smoothed RTT, milliseconds
	rttvar   float64
	haveRTT  bool
	lastRTT  time.Duration
	rttCount int

	lastHeard time.Time
	heardOnce bool

	// remoteAddr is where to send. The client fixes it at dial time; the
	// server learns and re-learns it from incoming packets (roaming).
	remoteAddr    netem.Addr
	haveRemote    bool
	remoteChanges int // times the peer's address changed (roaming events)

	// ptBuf is scratch for assembling the timestamped plaintext; it is
	// consumed by sealing before NewPacket returns, so reuse is safe.
	ptBuf []byte
}

// NewConnection builds a datagram-layer endpoint.
func NewConnection(cfg Config) (*Connection, error) {
	if cfg.Clock == nil {
		return nil, errors.New("network: Config.Clock is required")
	}
	if cfg.MinRTO == 0 {
		cfg.MinRTO = DefaultMinRTO
	}
	if cfg.MaxRTO == 0 {
		cfg.MaxRTO = DefaultMaxRTO
	}
	sess, err := sspcrypto.NewSession(cfg.Key)
	if err != nil {
		return nil, err
	}
	c := &Connection{
		cfg:            cfg,
		session:        sess,
		savedTimestamp: -1,
	}
	if rs := cfg.Resume; rs != nil {
		c.nextSeq = rs.NextSeq
		c.expectedSeq = rs.ExpectedSeq
		if rs.RemoteAddr != nil {
			c.remoteAddr = *rs.RemoteAddr
			c.haveRemote = true
		}
		if rs.Heard {
			c.heardOnce = true
			c.lastHeard = cfg.Clock.Now()
		}
	}
	return c, nil
}

// SetRemoteAddr fixes the peer address (used by the client at dial time).
func (c *Connection) SetRemoteAddr(a netem.Addr) {
	c.remoteAddr = a
	c.haveRemote = true
}

// RemoteAddr returns the current reply target and whether one is known.
func (c *Connection) RemoteAddr() (netem.Addr, bool) { return c.remoteAddr, c.haveRemote }

// RemoteAddrChanges counts roaming events observed (server side).
func (c *Connection) RemoteAddrChanges() int { return c.remoteChanges }

// NextSeq reports the sequence number the next outgoing packet will carry.
func (c *Connection) NextSeq() uint64 { return c.nextSeq }

// ExpectedSeq reports the lowest incoming sequence number Receive will
// accept (the replay floor a persistence layer must journal).
func (c *Connection) ExpectedSeq() uint64 { return c.expectedSeq }

// SetSeqCeiling installs the durable nonce-reservation ceiling: AppendPacket
// refuses to seal a packet whose sequence number is not strictly below it.
//
// Crash-safety protocol (two-phase): the journal writer records the
// proposed ceiling (NextSeq + reserve) in its snapshot FIRST, and only
// after the snapshot is durably renamed does it raise the live ceiling
// here. A crash at any point therefore restores a NextSeq that is >= every
// ceiling the dead process ever sent under, so no (key, direction,
// sequence) nonce is ever sealed twice.
func (c *Connection) SetSeqCeiling(ceiling uint64) { c.seqCeiling = ceiling }

// SeqCeiling reports the current reservation ceiling (0 = unlimited).
func (c *Connection) SeqCeiling() uint64 { return c.seqCeiling }

// SeqRemaining reports how many packets may still be sealed under the
// current reservation; the embedder flushes its journal before this runs
// out. Unlimited when no ceiling is set.
func (c *Connection) SeqRemaining() uint64 {
	if c.seqCeiling == 0 {
		return sspcrypto.MaxSeq - c.nextSeq
	}
	if c.nextSeq >= c.seqCeiling {
		return 0
	}
	return c.seqCeiling - c.nextSeq
}

func timestamp16(t time.Time) uint16 { return uint16(t.UnixMilli()) }

// NewPacket seals payload into a wire datagram, embedding the current
// 16-bit millisecond timestamp and, if one is pending, a timestamp reply
// adjusted by how long we held it (so delayed acks do not inflate the
// peer's RTT estimate — §2.2 change 2). When an Envelope is configured,
// the datagram is prefixed with the cleartext session ID.
func (c *Connection) NewPacket(payload []byte) ([]byte, error) {
	return c.AppendPacket(nil, payload)
}

// AppendPacket is NewPacket appending the wire datagram to dst; the
// transport sender passes recycled buffers through it so steady-state
// sending does not allocate per datagram.
func (c *Connection) AppendPacket(dst, payload []byte) ([]byte, error) {
	if c.seqCeiling != 0 && c.nextSeq >= c.seqCeiling {
		return nil, ErrSeqExhausted
	}
	now := c.cfg.Clock.Now()
	reply := uint16(tsNone)
	if c.savedTimestamp >= 0 {
		hold := now.Sub(c.savedTimestampAt).Milliseconds()
		reply = uint16(uint32(c.savedTimestamp) + uint32(hold))
		c.savedTimestamp = -1
	}
	pt := append(c.ptBuf[:0], 0, 0, 0, 0)
	binary.BigEndian.PutUint16(pt[0:], timestamp16(now))
	binary.BigEndian.PutUint16(pt[2:], reply)
	pt = append(pt, payload...)
	c.ptBuf = pt[:0]
	seq := c.nextSeq
	c.nextSeq++
	if c.cfg.Envelope != nil {
		dst = AppendEnvelope(dst, c.cfg.Envelope.ID)
	}
	wire, err := c.session.SealAppend(dst, c.cfg.Direction, seq, pt)
	if pr := c.cfg.Probe; pr != nil {
		pr.Observe(telemetry.StageSeal, c.cfg.Clock.Now().Sub(now))
	}
	if err != nil {
		return nil, fmt.Errorf("network: sealing packet: %w", err)
	}
	return wire, nil
}

// Receive authenticates and opens a wire datagram received from src,
// returning the transport payload. Stale and replayed packets return
// ErrOldPacket; packets sealed by our own direction return ErrOwnDirection.
// On the server, an authentic packet with the newest sequence number makes
// src the new reply target, implementing roaming.
func (c *Connection) Receive(wire []byte, src netem.Addr) ([]byte, error) {
	if c.cfg.Envelope != nil {
		id, inner, err := ParseEnvelope(wire)
		if err != nil {
			return nil, err
		}
		if id != c.cfg.Envelope.ID {
			return nil, ErrEnvelope
		}
		wire = inner
	}
	pr := c.cfg.Probe
	var verifyStart time.Time
	if pr != nil {
		verifyStart = c.cfg.Clock.Now()
	}
	dir, seq, pt, err := c.session.Decrypt(wire)
	if pr != nil {
		// Failed opens are measured too: verification cost is paid either
		// way, and a flood of failures should be visible in this stage.
		pr.Observe(telemetry.StageVerify, c.cfg.Clock.Now().Sub(verifyStart))
	}
	if err != nil {
		return nil, err
	}
	if dir == c.cfg.Direction {
		return nil, ErrOwnDirection
	}
	if len(pt) < 4 {
		return nil, sspcrypto.ErrTooShort
	}
	if seq < c.expectedSeq {
		return nil, ErrOldPacket
	}
	c.expectedSeq = seq + 1
	now := c.cfg.Clock.Now()
	c.lastHeard = now
	c.heardOnce = true

	ts := binary.BigEndian.Uint16(pt[0:])
	c.savedTimestamp = int32(ts)
	c.savedTimestampAt = now

	if reply := binary.BigEndian.Uint16(pt[2:]); reply != tsNone {
		sample := float64(timestamp16(now) - reply) // mod-2^16 arithmetic
		c.observeRTT(sample)
	}

	// Roaming: the server re-targets replies at the newest source address.
	if c.cfg.Direction == sspcrypto.ToClient {
		if !c.haveRemote || c.remoteAddr != src {
			if c.haveRemote {
				c.remoteChanges++
			}
			c.remoteAddr = src
			c.haveRemote = true
		}
	}
	return pt[4:], nil
}

// observeRTT folds one RTT sample (milliseconds) into SRTT/RTTVAR per
// RFC 6298. Every SSP packet has a unique sequence number, so there is no
// retransmission ambiguity (§2.2 change 1) and every sample is usable.
func (c *Connection) observeRTT(ms float64) {
	if ms < 0 {
		return
	}
	c.lastRTT = time.Duration(ms * float64(time.Millisecond))
	c.rttCount++
	if !c.haveRTT {
		c.srtt = ms
		c.rttvar = ms / 2
		c.haveRTT = true
		return
	}
	const alpha, beta = 1.0 / 8.0, 1.0 / 4.0
	diff := c.srtt - ms
	if diff < 0 {
		diff = -diff
	}
	c.rttvar = (1-beta)*c.rttvar + beta*diff
	c.srtt = (1-alpha)*c.srtt + alpha*ms
}

// SRTT returns the smoothed round-trip estimate, or def if no sample yet.
func (c *Connection) SRTT(def time.Duration) time.Duration {
	if !c.haveRTT {
		return def
	}
	return time.Duration(c.srtt * float64(time.Millisecond))
}

// RTTVar returns the RTT variation estimate.
func (c *Connection) RTTVar() time.Duration {
	return time.Duration(c.rttvar * float64(time.Millisecond))
}

// HaveRTT reports whether at least one RTT sample has been folded in.
func (c *Connection) HaveRTT() bool { return c.haveRTT }

// RTTSamples reports how many RTT samples have been observed.
func (c *Connection) RTTSamples() int { return c.rttCount }

// RTO returns the retransmission timeout: SRTT + 4·RTTVAR clamped to
// [MinRTO, MaxRTO]. Before any sample it returns MaxRTO.
func (c *Connection) RTO() time.Duration {
	if !c.haveRTT {
		return c.cfg.MaxRTO
	}
	rto := time.Duration((c.srtt + 4*c.rttvar) * float64(time.Millisecond))
	if rto < c.cfg.MinRTO {
		rto = c.cfg.MinRTO
	}
	if rto > c.cfg.MaxRTO {
		rto = c.cfg.MaxRTO
	}
	return rto
}

// LastHeard returns when the last authentic packet arrived, and whether any
// has. The client uses this to warn the user about lost connectivity.
func (c *Connection) LastHeard() (time.Time, bool) { return c.lastHeard, c.heardOnce }

// HasPendingTimestampReply reports whether a received timestamp is waiting
// to be echoed; the transport sender uses this to piggyback replies rather
// than let them go stale.
func (c *Connection) HasPendingTimestampReply() bool { return c.savedTimestamp >= 0 }

// Overhead is the total per-packet byte overhead added by this layer
// (sequence header, AEAD tag, timestamps, and the session envelope when
// one is configured).
func (c *Connection) Overhead() int {
	n := c.session.Overhead() + 4
	if c.cfg.Envelope != nil {
		n += EnvelopeLen
	}
	return n
}
