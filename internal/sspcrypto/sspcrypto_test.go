package sspcrypto

import (
	"bytes"
	"testing"
	"testing/quick"
)

func testSession(t testing.TB) *Session {
	t.Helper()
	var key Key
	for i := range key {
		key[i] = byte(i * 7)
	}
	s, err := NewSession(key)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := testSession(t)
	for _, dir := range []Direction{ToServer, ToClient} {
		pkt, err := s.Encrypt(dir, 42, []byte("keystroke"))
		if err != nil {
			t.Fatal(err)
		}
		gotDir, seq, pt, err := s.Decrypt(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if gotDir != dir || seq != 42 || string(pt) != "keystroke" {
			t.Fatalf("got dir=%v seq=%d pt=%q", gotDir, seq, pt)
		}
	}
}

func TestDirectionsDoNotCollide(t *testing.T) {
	s := testSession(t)
	a, _ := s.Encrypt(ToServer, 7, []byte("same"))
	b, _ := s.Encrypt(ToClient, 7, []byte("same"))
	if bytes.Equal(a[8:], b[8:]) {
		t.Fatal("same seq in both directions produced identical ciphertext")
	}
}

func TestTamperedHeaderRejected(t *testing.T) {
	s := testSession(t)
	pkt, _ := s.Encrypt(ToServer, 9, []byte("hello"))
	pkt[3] ^= 0x40 // corrupt sequence header; nonce/AD check must fail
	if _, _, _, err := s.Decrypt(pkt); err != ErrAuth {
		t.Fatalf("err = %v, want ErrAuth", err)
	}
}

func TestTamperedBodyRejected(t *testing.T) {
	s := testSession(t)
	pkt, _ := s.Encrypt(ToServer, 9, []byte("hello"))
	pkt[10] ^= 1
	if _, _, _, err := s.Decrypt(pkt); err != ErrAuth {
		t.Fatalf("err = %v, want ErrAuth", err)
	}
}

func TestWrongKeyRejected(t *testing.T) {
	s := testSession(t)
	other, err := NewSession(Key{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	pkt, _ := s.Encrypt(ToClient, 1, []byte("x"))
	if _, _, _, err := other.Decrypt(pkt); err != ErrAuth {
		t.Fatalf("err = %v, want ErrAuth", err)
	}
}

func TestShortPacket(t *testing.T) {
	s := testSession(t)
	if _, _, _, err := s.Decrypt(make([]byte, 10)); err != ErrTooShort {
		t.Fatalf("err = %v, want ErrTooShort", err)
	}
}

func TestSeqRange(t *testing.T) {
	s := testSession(t)
	if _, err := s.Encrypt(ToServer, MaxSeq+1, nil); err != ErrSeqRange {
		t.Fatalf("err = %v, want ErrSeqRange", err)
	}
	pkt, err := s.Encrypt(ToServer, MaxSeq, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, seq, _, err := s.Decrypt(pkt)
	if err != nil || seq != MaxSeq {
		t.Fatalf("max seq round trip: seq=%d err=%v", seq, err)
	}
}

func TestKeyBase64RoundTrip(t *testing.T) {
	k, err := NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	enc := k.Base64()
	if len(enc) != 22 {
		t.Fatalf("encoded key %q has length %d, want 22", enc, len(enc))
	}
	back, err := KeyFromBase64(enc)
	if err != nil || back != k {
		t.Fatalf("round trip failed: %v", err)
	}
	// Padded form must also parse (users paste both).
	back, err = KeyFromBase64(enc + "==")
	if err != nil || back != k {
		t.Fatalf("padded round trip failed: %v", err)
	}
}

func TestKeyFromBase64Errors(t *testing.T) {
	if _, err := KeyFromBase64("!!!"); err == nil {
		t.Fatal("accepted garbage")
	}
	if _, err := KeyFromBase64("AAAA"); err == nil {
		t.Fatal("accepted short key")
	}
}

func TestRandomKeysDiffer(t *testing.T) {
	a, _ := NewRandomKey()
	b, _ := NewRandomKey()
	if a == b {
		t.Fatal("two random keys identical")
	}
}

func TestEncryptDecryptProperty(t *testing.T) {
	s := testSession(t)
	f := func(payload []byte, seq uint64, toClient bool) bool {
		seq &= MaxSeq
		dir := ToServer
		if toClient {
			dir = ToClient
		}
		pkt, err := s.Encrypt(dir, seq, payload)
		if err != nil {
			return false
		}
		gotDir, gotSeq, pt, err := s.Decrypt(pkt)
		return err == nil && gotDir == dir && gotSeq == seq && bytes.Equal(pt, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncryptDatagram(b *testing.B) {
	s := testSession(b)
	payload := make([]byte, 200) // typical SSP instruction size
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		if _, err := s.Encrypt(ToClient, uint64(i), payload); err != nil {
			b.Fatal(err)
		}
	}
}
