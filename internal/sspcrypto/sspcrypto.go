// Package sspcrypto provides SSP's packet encryption: AES-128-OCB under a
// single shared session key, with the 64-bit packet sequence number (plus a
// direction bit) serving as the unique nonce. Key exchange happens
// out-of-band (the paper bootstraps over SSH), so the package deliberately
// contains no handshake — just key generation/encoding and authenticated
// packet sealing.
//
// Because each datagram is an idempotent state diff, SSP needs no replay
// cache: the datagram layer simply discards packets whose sequence number
// is not newer than the newest seen (see internal/network).
package sspcrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/ocb"
)

// KeySize is the AES-128 key length in bytes.
const KeySize = 16

// Direction marks which endpoint sealed a packet. It is folded into the
// nonce's top bit so the two directions of a session can never collide on a
// nonce even though they share one key.
type Direction uint8

const (
	// ToServer marks client→server packets.
	ToServer Direction = 0
	// ToClient marks server→client packets.
	ToClient Direction = 1
)

func (d Direction) String() string {
	if d == ToServer {
		return "to-server"
	}
	return "to-client"
}

// directionBit is the top bit of the 64-bit sequence field.
const directionBit = uint64(1) << 63

// MaxSeq is the largest usable sequence number; the top bit carries the
// direction.
const MaxSeq = directionBit - 1

// Key is a 128-bit session key.
type Key [KeySize]byte

// NewRandomKey generates a key from the operating system's CSPRNG.
func NewRandomKey() (Key, error) {
	var k Key
	if _, err := rand.Read(k[:]); err != nil {
		return Key{}, fmt.Errorf("sspcrypto: generating key: %w", err)
	}
	return k, nil
}

// Base64 encodes the key the way the mosh-server program prints it for the
// bootstrap script (unpadded standard base64, 22 characters).
func (k Key) Base64() string {
	return base64.RawStdEncoding.EncodeToString(k[:])
}

// KeyFromBytes parses a raw 16-byte key (the session-journal codec stores
// keys in binary rather than base64).
func KeyFromBytes(b []byte) (Key, error) {
	if len(b) != KeySize {
		return Key{}, fmt.Errorf("sspcrypto: key is %d bytes, want %d", len(b), KeySize)
	}
	var k Key
	copy(k[:], b)
	return k, nil
}

// KeyFromBase64 parses a key printed by Base64. Padded input is accepted.
func KeyFromBase64(s string) (Key, error) {
	for len(s) > 0 && s[len(s)-1] == '=' {
		s = s[:len(s)-1]
	}
	raw, err := base64.RawStdEncoding.DecodeString(s)
	if err != nil {
		return Key{}, fmt.Errorf("sspcrypto: decoding key: %w", err)
	}
	if len(raw) != KeySize {
		return Key{}, fmt.Errorf("sspcrypto: key is %d bytes, want %d", len(raw), KeySize)
	}
	var k Key
	copy(k[:], raw)
	return k, nil
}

// Errors returned by Decrypt.
var (
	ErrAuth     = errors.New("sspcrypto: packet failed authentication")
	ErrTooShort = errors.New("sspcrypto: packet too short")
	ErrSeqRange = errors.New("sspcrypto: sequence number out of range")
)

// Session seals and opens SSP datagrams under one key. A Session is not
// safe for concurrent use; each endpoint owns one.
type Session struct {
	aead cipher.AEAD
	// nonce is scratch space reused across packets; the nonce contents are
	// fully rewritten from the header each call.
	nonce [12]byte
}

// NewSession builds a session from a key.
func NewSession(key Key) (*Session, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("sspcrypto: %w", err)
	}
	aead, err := ocb.New(block)
	if err != nil {
		return nil, err
	}
	return &Session{aead: aead}, nil
}

// Overhead is the per-packet expansion: 8-byte sequence header plus the
// 16-byte authenticator.
func (s *Session) Overhead() int { return 8 + s.aead.Overhead() }

func (s *Session) nonceFor(header uint64) []byte {
	binary.BigEndian.PutUint64(s.nonce[4:], header)
	return s.nonce[:]
}

// Encrypt seals plaintext as a wire packet: an 8-byte big-endian header
// (direction bit | sequence number) followed by the OCB ciphertext+tag.
// The header doubles as the nonce and is authenticated as associated data.
func (s *Session) Encrypt(dir Direction, seq uint64, plaintext []byte) ([]byte, error) {
	return s.SealAppend(nil, dir, seq, plaintext)
}

// SealAppend is Encrypt appending the sealed packet to dst, so callers that
// recycle wire buffers (the transport sender's fragment pool) avoid a fresh
// allocation per datagram.
func (s *Session) SealAppend(dst []byte, dir Direction, seq uint64, plaintext []byte) ([]byte, error) {
	if seq > MaxSeq {
		return nil, ErrSeqRange
	}
	header := seq
	if dir == ToClient {
		header |= directionBit
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	binary.BigEndian.PutUint64(dst[start:], header)
	return s.aead.Seal(dst, s.nonceFor(header), plaintext, dst[start:start+8]), nil
}

// Decrypt opens a wire packet, returning its direction, sequence number
// and plaintext. Inauthentic packets yield ErrAuth and no plaintext.
func (s *Session) Decrypt(packet []byte) (Direction, uint64, []byte, error) {
	if len(packet) < 8+s.aead.Overhead() {
		return 0, 0, nil, ErrTooShort
	}
	header := binary.BigEndian.Uint64(packet[:8])
	dir := ToServer
	if header&directionBit != 0 {
		dir = ToClient
	}
	pt, err := s.aead.Open(nil, s.nonceFor(header), packet[8:], packet[:8])
	if err != nil {
		return 0, 0, nil, ErrAuth
	}
	return dir, header &^ directionBit, pt, nil
}
