//go:build linux && (amd64 || arm64)

package udpbatch

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"

	"repro/internal/netem"
)

// Completion-based provider on raw io_uring (no dependencies; the syscall
// numbers and ABI structs are spelled out below — identical on amd64 and
// arm64). Two small rings share the one UDP socket:
//
//   - The receive ring runs a single multishot RECVMSG against a
//     registered provided-buffer ring: the kernel keeps posting one
//     completion per datagram into buffers it picks itself, so the
//     steady-state read path is "harvest completions, copy out, return
//     the buffer" — zero syscalls while completions are pending, one
//     blocking io_uring_enter when the queue runs dry.
//   - The send ring turns each WriteBatch sweep into a chain of linked
//     SENDMSG SQEs submitted with one syscall and drained synchronously
//     on the flusher path, exactly where sendmmsg completions were
//     handled before. IOSQE_IO_LINK keeps completion order equal to
//     submission order, so the first failure cancels the tail and the
//     (n, err) contract — msgs[n] failed, drop it, retry the rest —
//     holds without reordering bookkeeping.
//
// The capability probe is functional: construction stands the rings up
// and round-trips a datagram through both of them on a scratch basis; any
// missing facility (io_uring disabled by sysctl or seccomp, no provided
// buffer rings before 5.19, no multishot recvmsg before 6.0) fails the
// probe and the ladder falls to the GSO rung.

// Raw io_uring ABI.
const (
	sysIOUringSetup    = 425
	sysIOUringEnter    = 426
	sysIOUringRegister = 427

	ioringOffSqRing = 0x0
	ioringOffCqRing = 0x8000000
	ioringOffSqes   = 0x10000000

	ioringEnterGetevents = 1 << 0

	ioringSetupCqsize = 1 << 3
	ioringSetupClamp  = 1 << 4

	ioringFeatSingleMmap = 1 << 0

	ioringOpNop     = 0
	ioringOpSendmsg = 9
	ioringOpRecvmsg = 10

	iosqeIOLink       = 1 << 2
	iosqeBufferSelect = 1 << 5

	ioringRecvMultishot = 1 << 1 // sqe.ioprio flag for OP_RECVMSG

	ioringCqeFBuffer = 1 << 0
	ioringCqeFMore   = 1 << 1

	ioringRegisterPbufRing   = 22
	ioringUnregisterPbufRing = 23
)

type ioSqringOffsets struct {
	head, tail, ringMask, ringEntries, flags, dropped, array, resv1 uint32
	userAddr                                                        uint64
}

type ioCqringOffsets struct {
	head, tail, ringMask, ringEntries, overflow, cqes, flags, resv1 uint32
	userAddr                                                        uint64
}

type ioUringParams struct {
	sqEntries, cqEntries, flags, sqThreadCPU, sqThreadIdle, features, wqFd uint32
	resv                                                                   [3]uint32
	sqOff                                                                  ioSqringOffsets
	cqOff                                                                  ioCqringOffsets
}

// ioUringSqe mirrors struct io_uring_sqe (64 bytes).
type ioUringSqe struct {
	opcode      uint8
	flags       uint8
	ioprio      uint16
	fd          int32
	off         uint64
	addr        uint64
	length      uint32
	opFlags     uint32
	userData    uint64
	bufIndex    uint16 // union: buf_index / buf_group
	personality uint16
	spliceFdIn  int32
	addr3       uint64
	pad2        uint64
}

// ioUringCqe mirrors struct io_uring_cqe (16 bytes).
type ioUringCqe struct {
	userData uint64
	res      int32
	flags    uint32
}

type ioUringBufReg struct {
	ringAddr    uint64
	ringEntries uint32
	bgid        uint16
	flags       uint16
	resv        [3]uint64
}

// ioUringBuf mirrors struct io_uring_buf; entry 0's resv field doubles as
// the ring's shared 16-bit tail.
type ioUringBuf struct {
	addr   uint64
	length uint32
	bid    uint16
	resv   uint16
}

// uring is one mmap'd ring (submission + completion queues).
type uring struct {
	fd          int
	sqMem       []byte
	cqMem       []byte // == sqMem under IORING_FEAT_SINGLE_MMAP
	sqeMem      []byte
	singleMmap  bool
	sqHead      *uint32
	sqTail      *uint32
	sqMask      uint32
	sqArray     []uint32
	sqes        []ioUringSqe
	cqHead      *uint32
	cqTail      *uint32
	cqMask      uint32
	cqes        []ioUringCqe
	sqLocalTail uint32
}

func newRing(entries, cqEntries uint32) (*uring, error) {
	var p ioUringParams
	p.flags = ioringSetupClamp
	if cqEntries > 0 {
		p.flags |= ioringSetupCqsize
		p.cqEntries = cqEntries
	}
	fd, _, e := syscall.Syscall(sysIOUringSetup, uintptr(entries), uintptr(unsafe.Pointer(&p)), 0)
	if e != 0 {
		return nil, fmt.Errorf("io_uring_setup: %w", e)
	}
	r := &uring{fd: int(fd)}
	fail := func(err error) (*uring, error) {
		r.destroy()
		return nil, err
	}
	sqSize := int(p.sqOff.array + p.sqEntries*4)
	cqSize := int(p.cqOff.cqes) + int(p.cqEntries)*int(unsafe.Sizeof(ioUringCqe{}))
	r.singleMmap = p.features&ioringFeatSingleMmap != 0
	if r.singleMmap && cqSize > sqSize {
		sqSize = cqSize
	}
	var err error
	r.sqMem, err = syscall.Mmap(r.fd, ioringOffSqRing, sqSize,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
	if err != nil {
		return fail(err)
	}
	if r.singleMmap {
		r.cqMem = r.sqMem
	} else {
		r.cqMem, err = syscall.Mmap(r.fd, ioringOffCqRing, cqSize,
			syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
		if err != nil {
			return fail(err)
		}
	}
	r.sqeMem, err = syscall.Mmap(r.fd, ioringOffSqes, int(p.sqEntries)*int(unsafe.Sizeof(ioUringSqe{})),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
	if err != nil {
		return fail(err)
	}
	r.sqHead = (*uint32)(unsafe.Pointer(&r.sqMem[p.sqOff.head]))
	r.sqTail = (*uint32)(unsafe.Pointer(&r.sqMem[p.sqOff.tail]))
	r.sqMask = *(*uint32)(unsafe.Pointer(&r.sqMem[p.sqOff.ringMask]))
	r.sqArray = unsafe.Slice((*uint32)(unsafe.Pointer(&r.sqMem[p.sqOff.array])), p.sqEntries)
	r.sqes = unsafe.Slice((*ioUringSqe)(unsafe.Pointer(&r.sqeMem[0])), p.sqEntries)
	r.cqHead = (*uint32)(unsafe.Pointer(&r.cqMem[p.cqOff.head]))
	r.cqTail = (*uint32)(unsafe.Pointer(&r.cqMem[p.cqOff.tail]))
	r.cqMask = *(*uint32)(unsafe.Pointer(&r.cqMem[p.cqOff.ringMask]))
	r.cqes = unsafe.Slice((*ioUringCqe)(unsafe.Pointer(&r.cqMem[p.cqOff.cqes])), p.cqEntries)
	r.sqLocalTail = atomic.LoadUint32(r.sqTail)
	return r, nil
}

// push stages one SQE; the caller submits via enter. Callers serialize
// pushes per ring (rsqMu / wmu).
func (r *uring) push(sqe *ioUringSqe) bool {
	head := atomic.LoadUint32(r.sqHead)
	if r.sqLocalTail-head >= uint32(len(r.sqes)) {
		return false
	}
	idx := r.sqLocalTail & r.sqMask
	r.sqes[idx] = *sqe
	r.sqArray[idx] = idx
	r.sqLocalTail++
	atomic.StoreUint32(r.sqTail, r.sqLocalTail)
	return true
}

// enter submits staged SQEs and/or waits for completions.
func (r *uring) enter(toSubmit, minComplete, flags uint32) (int, error) {
	for {
		n, _, e := syscall.Syscall6(sysIOUringEnter, uintptr(r.fd),
			uintptr(toSubmit), uintptr(minComplete), uintptr(flags), 0, 0)
		if e == syscall.EINTR {
			// Re-entering is safe: the kernel submits at most what the SQ
			// ring holds, so a partially-submitted batch cannot double.
			continue
		}
		if e != 0 {
			return 0, e
		}
		return int(n), nil
	}
}

// peek consumes one completion if available.
func (r *uring) peek() (ioUringCqe, bool) {
	head := *r.cqHead
	if head == atomic.LoadUint32(r.cqTail) {
		return ioUringCqe{}, false
	}
	c := r.cqes[head&r.cqMask]
	atomic.StoreUint32(r.cqHead, head+1)
	return c, true
}

func (r *uring) destroy() {
	if r.sqeMem != nil {
		syscall.Munmap(r.sqeMem)
	}
	if r.cqMem != nil && !r.singleMmap {
		syscall.Munmap(r.cqMem)
	}
	if r.sqMem != nil {
		syscall.Munmap(r.sqMem)
	}
	syscall.Close(r.fd)
}

const (
	uringRecvBufs  = 32 // provided buffers (power of two)
	uringSendSlots = DefaultBatch

	// Provided-buffer layout for multishot RECVMSG: io_uring_recvmsg_out
	// header (16) + name area (sockaddrBuf capacity) + payload. The
	// stride is rounded to 8 so every buffer stays aligned for the raw
	// sockaddr casts.
	uringRecvHdr     = 16
	uringRecvPayload = uringRecvHdr + sockaddrBuf // control capacity is 0
	uringBufStride   = (uringRecvPayload + MaxDatagram + 7) &^ 7

	udRecvArm = ^uint64(0)     // userData of the multishot recv op
	udWake    = ^uint64(0) - 1 // userData of the close-wake NOP
)

// bufRing is a registered provided-buffer ring: the descriptor ring is
// page-aligned mmap'd memory shared with the kernel; the payload slab is
// ordinary (non-moving) Go heap the descriptors point into.
type bufRing struct {
	ringMem []byte
	slab    []byte
	entries uint32
	tail    uint32
}

func newBufRing(ringFd int, entries uint32, bgid uint16) (*bufRing, error) {
	mem, err := syscall.Mmap(-1, 0, int(entries)*int(unsafe.Sizeof(ioUringBuf{})),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_ANONYMOUS|syscall.MAP_PRIVATE)
	if err != nil {
		return nil, err
	}
	b := &bufRing{
		ringMem: mem,
		slab:    make([]byte, int(entries)*uringBufStride),
		entries: entries,
	}
	reg := ioUringBufReg{
		ringAddr:    uint64(uintptr(unsafe.Pointer(&mem[0]))),
		ringEntries: entries,
		bgid:        bgid,
	}
	_, _, e := syscall.Syscall6(sysIOUringRegister, uintptr(ringFd),
		ioringRegisterPbufRing, uintptr(unsafe.Pointer(&reg)), 1, 0, 0)
	if e != 0 {
		syscall.Munmap(mem)
		return nil, fmt.Errorf("register pbuf ring: %w", e)
	}
	for bid := uint16(0); bid < uint16(entries); bid++ {
		b.add(bid)
	}
	b.publish()
	return b, nil
}

func (b *bufRing) buf(bid uint16) []byte {
	off := int(bid) * uringBufStride
	return b.slab[off : off+uringBufStride]
}

// add stages buffer bid for the kernel; publish makes staged entries
// visible.
func (b *bufRing) add(bid uint16) {
	idx := b.tail & (b.entries - 1)
	e := (*ioUringBuf)(unsafe.Pointer(&b.ringMem[idx*uint32(unsafe.Sizeof(ioUringBuf{}))]))
	e.addr = uint64(uintptr(unsafe.Pointer(&b.slab[int(bid)*uringBufStride])))
	e.length = uringBufStride
	e.bid = bid
	b.tail++
}

func (b *bufRing) publish() {
	// The shared tail is the 16-bit resv field of entry 0 (offset 14);
	// sync/atomic has no 16-bit store, so compose one 32-bit release
	// store covering entry 0's bid (offset 12, low half on these
	// little-endian targets) and the tail. Only this side writes either
	// field; the kernel only reads.
	word := (*uint32)(unsafe.Pointer(&b.ringMem[12]))
	bid0 := *(*uint16)(unsafe.Pointer(&b.ringMem[12]))
	atomic.StoreUint32(word, uint32(bid0)|uint32(uint16(b.tail))<<16)
}

func (b *bufRing) destroy(ringFd int) {
	reg := ioUringBufReg{bgid: 0}
	syscall.Syscall6(sysIOUringRegister, uintptr(ringFd),
		ioringUnregisterPbufRing, uintptr(unsafe.Pointer(&reg)), 1, 0, 0)
	syscall.Munmap(b.ringMem)
}

// uringConn is the io_uring implementation of Conn.
type uringConn struct {
	c  *net.UDPConn
	fd int32
	v6 bool

	rring *uring
	bufs  *bufRing
	rmsg  syscall.Msghdr
	rname [sockaddrBuf]byte
	rsqMu sync.Mutex // serializes recv-ring SQ use (re-arm vs close wake)

	wmu    sync.Mutex
	wring  *uring
	wmsgs  []syscall.Msghdr
	wiovs  []syscall.Iovec
	wnames [][sockaddrBuf]byte
	wres   []int32

	closed       atomic.Bool
	readerBusy   atomic.Int32
	teardownOnce sync.Once

	rxTrav, txTrav atomic.Int64
}

// newURingUDP builds the io_uring connection for c and proves it works
// with a loopback round-trip; any failure tears down and reports why, so
// the ladder can fall to the next rung.
func newURingUDP(c *net.UDPConn) (Conn, error) {
	u := &uringConn{
		c:      c,
		wmsgs:  make([]syscall.Msghdr, uringSendSlots),
		wiovs:  make([]syscall.Iovec, uringSendSlots),
		wnames: make([][sockaddrBuf]byte, uringSendSlots),
		wres:   make([]int32, uringSendSlots),
	}
	rc, err := c.SyscallConn()
	if err != nil {
		return nil, err
	}
	var nameErr error
	cerr := rc.Control(func(fd uintptr) {
		// The raw fd is retained for the rings' lifetime: the daemon owns
		// the socket for the daemon's lifetime and Close tears the rings
		// down before closing it, so the fd cannot be recycled under us.
		u.fd = int32(fd)
		sa, err := syscall.Getsockname(int(fd))
		if err != nil {
			nameErr = err
			return
		}
		_, u.v6 = sa.(*syscall.SockaddrInet6)
	})
	if cerr != nil {
		return nil, cerr
	}
	if nameErr != nil {
		return nil, nameErr
	}
	if u.rring, err = newRing(8, 256); err != nil {
		return nil, fmt.Errorf("udpbatch: io_uring unavailable: %w", err)
	}
	if u.wring, err = newRing(uringSendSlots, 2*uringSendSlots); err != nil {
		u.rring.destroy()
		return nil, fmt.Errorf("udpbatch: io_uring unavailable: %w", err)
	}
	if u.bufs, err = newBufRing(u.rring.fd, uringRecvBufs, 0); err != nil {
		u.rring.destroy()
		u.wring.destroy()
		return nil, fmt.Errorf("udpbatch: io_uring unavailable: %w", err)
	}
	fail := func(err error) (Conn, error) {
		u.teardownOnce.Do(u.teardown)
		return nil, err
	}
	if err := u.armRecv(); err != nil {
		return fail(fmt.Errorf("udpbatch: io_uring unavailable: %w", err))
	}
	if err := u.selfTest(); err != nil {
		return fail(fmt.Errorf("udpbatch: io_uring probe failed: %w", err))
	}
	return u, nil
}

// selfTest round-trips one datagram through the send chain, the multishot
// recv and the provided-buffer ring — a functional capability probe that
// catches every pre-6.0 kernel and every seccomp/sysctl restriction in
// one shot. It runs at construction, before the socket's address is
// handed to any peer; a stray foreign datagram consumed here is ordinary
// UDP loss.
func (u *uringConn) selfTest() error {
	la, ok := u.c.LocalAddr().(*net.UDPAddr)
	if !ok {
		return errors.New("not a UDP socket")
	}
	ip := la.IP
	if ip == nil || ip.IsUnspecified() {
		if u.v6 {
			ip = net.IPv6loopback
		} else {
			ip = net.IPv4(127, 0, 0, 1)
		}
	}
	target, ok := CompressUDPAddr(&net.UDPAddr{IP: ip, Port: la.Port})
	if !ok {
		return errors.New("unmappable local address")
	}
	payload := []byte("udpbatch-uring-probe")
	if n, err := u.WriteBatch([]Message{{Buf: payload, Addr: target}}); err != nil || n != 1 {
		return fmt.Errorf("probe send: n=%d err=%w", n, err)
	}
	slot := []Message{{Buf: make([]byte, 0, 2048)}}
	deadline := clk.Now().Add(250 * time.Millisecond)
	for clk.Now().Before(deadline) {
		n, rearm, err := u.harvest(slot)
		if rearm {
			if err := u.armRecv(); err != nil {
				return err
			}
		}
		if err != nil {
			return err
		}
		if n == 1 && string(slot[0].Buf) == string(payload) {
			return nil
		}
		slot[0].Buf = slot[0].Buf[:0]
		clk.Sleep(time.Millisecond)
	}
	return errors.New("no completion within deadline (multishot recvmsg unsupported?)")
}

func (u *uringConn) BatchCap() int { return uringSendSlots }

func (u *uringConn) ProviderName() string { return "io_uring" }

// ReadSlotSize: a provided buffer holds up to the UDP payload ceiling, so
// caller slots must too — an oversized-but-legitimate datagram must not
// truncate on the copy-out.
func (u *uringConn) ReadSlotSize() int { return MaxDatagram }

// Traversals: no segmentation offload on this path — one traversal per
// datagram — reported so stack-traversal metering stays uniform across
// providers.
func (u *uringConn) Traversals() (in, out int64) {
	return u.rxTrav.Load(), u.txTrav.Load()
}

// armRecv (re)arms the multishot RECVMSG with buffer selection.
func (u *uringConn) armRecv() error {
	u.rsqMu.Lock()
	defer u.rsqMu.Unlock()
	u.rmsg = syscall.Msghdr{Name: &u.rname[0], Namelen: sockaddrBuf}
	sqe := ioUringSqe{
		opcode:   ioringOpRecvmsg,
		flags:    iosqeBufferSelect,
		ioprio:   ioringRecvMultishot,
		fd:       u.fd,
		addr:     uint64(uintptr(unsafe.Pointer(&u.rmsg))),
		length:   1,
		userData: udRecvArm,
		bufIndex: 0, // buf_group
	}
	if !u.rring.push(&sqe) {
		return errors.New("udpbatch: recv ring full")
	}
	_, err := u.rring.enter(1, 0, 0)
	return err
}

// wake posts a NOP on the receive ring so a reader blocked in
// io_uring_enter returns and observes the closed flag.
func (u *uringConn) wake() {
	u.rsqMu.Lock()
	defer u.rsqMu.Unlock()
	sqe := ioUringSqe{opcode: ioringOpNop, userData: udWake}
	if u.rring.push(&sqe) {
		u.rring.enter(1, 0, 0)
	}
}

// harvest drains pending receive completions into msgs without blocking.
// rearm reports that the multishot op terminated (no IORING_CQE_F_MORE)
// and must be resubmitted.
func (u *uringConn) harvest(msgs []Message) (n int, rearm bool, err error) {
	out := 0
	added := false
	for out < len(msgs) {
		cqe, ok := u.rring.peek()
		if !ok {
			break
		}
		if cqe.userData != udRecvArm {
			continue // close-wake NOP
		}
		if cqe.flags&ioringCqeFMore == 0 {
			rearm = true
		}
		if cqe.res < 0 {
			e := syscall.Errno(-cqe.res)
			switch e {
			case syscall.ENOBUFS, syscall.ECANCELED, syscall.EAGAIN, syscall.EINTR,
				syscall.ENOMEM, syscall.ECONNREFUSED, syscall.EHOSTUNREACH,
				syscall.ENETUNREACH, syscall.ETIMEDOUT, syscall.EPROTO:
				// Transient (kernel pressure, buffer exhaustion, one peer's
				// ICMP error): the re-arm plus replenished buffers recover,
				// and the mmsg path's discipline holds — never kill the
				// shared socket's reader for one peer.
				continue
			}
			if added {
				u.bufs.publish()
			}
			return out, rearm, e
		}
		if cqe.flags&ioringCqeFBuffer == 0 {
			continue // defensive: completion without a selected buffer
		}
		bid := uint16(cqe.flags >> 16)
		buf := u.bufs.buf(bid)
		n := int(cqe.res)
		if n > len(buf) {
			n = len(buf)
		}
		if addr, payload, ok := parseRecvmsgOut(buf[:n]); ok {
			k := len(payload)
			if c := cap(msgs[out].Buf); c < k {
				k = c // undersized caller slot: kernel-style truncation
			}
			msgs[out].Buf = msgs[out].Buf[:k]
			copy(msgs[out].Buf, payload[:k])
			msgs[out].Addr = addr
			out++
			u.rxTrav.Add(1)
		}
		u.bufs.add(bid)
		added = true
	}
	if added {
		u.bufs.publish()
	}
	return out, rearm, nil
}

// parseRecvmsgOut decodes the io_uring_recvmsg_out layout the kernel
// writes into a selected buffer: {namelen, controllen, payloadlen, flags}
// (4×u32), the name area at its full capacity, then the payload.
func parseRecvmsgOut(b []byte) (netem.Addr, []byte, bool) {
	if len(b) < uringRecvPayload {
		return netem.Addr{}, nil, false
	}
	payloadLen := int(*(*uint32)(unsafe.Pointer(&b[8])))
	if payloadLen > len(b)-uringRecvPayload {
		payloadLen = len(b) - uringRecvPayload
	}
	addr, ok := decodeName((*[sockaddrBuf]byte)(unsafe.Pointer(&b[uringRecvHdr])))
	if !ok {
		return netem.Addr{}, nil, false
	}
	return addr, b[uringRecvPayload : uringRecvPayload+payloadLen], true
}

// ReadBatch drains completions the kernel already posted — zero syscalls
// when the queue is busy — and blocks in io_uring_enter only when idle.
func (u *uringConn) ReadBatch(msgs []Message) (int, error) {
	if len(msgs) == 0 {
		return 0, nil
	}
	if u.closed.Load() {
		return 0, net.ErrClosed
	}
	u.readerBusy.Add(1)
	defer u.readerBusy.Add(-1)
	for i := range msgs {
		if cap(msgs[i].Buf) == 0 {
			return 0, errors.New("udpbatch: read slot without buffer capacity")
		}
	}
	for {
		if u.closed.Load() {
			return 0, net.ErrClosed
		}
		n, rearm, err := u.harvest(msgs)
		if rearm && !u.closed.Load() {
			if aerr := u.armRecv(); aerr != nil && err == nil {
				err = aerr
			}
		}
		if n > 0 {
			return n, nil
		}
		if err != nil {
			return 0, err
		}
		if _, err := u.rring.enter(0, 1, ioringEnterGetevents); err != nil {
			return 0, err
		}
	}
}

// WriteBatch submits up to uringSendSlots linked SENDMSG SQEs with one
// io_uring_enter and waits for their (in-order) completions on the same
// call — the flusher path drains completions exactly where it used to
// drain sendmmsg results.
func (u *uringConn) WriteBatch(msgs []Message) (int, error) {
	if len(msgs) == 0 {
		return 0, nil
	}
	u.wmu.Lock()
	defer u.wmu.Unlock()
	if u.closed.Load() {
		return 0, net.ErrClosed
	}
	n := len(msgs)
	if n > uringSendSlots {
		n = uringSendSlots
	}
	// Same contract as the mmsg path: an empty slot truncates the batch
	// before it, transmits the valid prefix, then surfaces at index n.
	var slotErr error
	for i := 0; i < n; i++ {
		if len(msgs[i].Buf) == 0 {
			n, slotErr = i, errors.New("udpbatch: empty write slot")
			break
		}
	}
	if n == 0 {
		return 0, slotErr
	}
	for i := 0; i < n; i++ {
		nameLen := encodeName(&u.wnames[i], msgs[i].Addr, u.v6)
		u.wiovs[i] = syscall.Iovec{Base: &msgs[i].Buf[0]}
		u.wiovs[i].SetLen(len(msgs[i].Buf))
		u.wmsgs[i] = syscall.Msghdr{
			Name:    &u.wnames[i][0],
			Namelen: nameLen,
			Iov:     &u.wiovs[i],
			Iovlen:  1,
		}
		sqe := ioUringSqe{
			opcode:   ioringOpSendmsg,
			fd:       u.fd,
			addr:     uint64(uintptr(unsafe.Pointer(&u.wmsgs[i]))),
			length:   1,
			opFlags:  syscall.MSG_NOSIGNAL,
			userData: uint64(i),
		}
		if i < n-1 {
			sqe.flags = iosqeIOLink
		}
		if !u.wring.push(&sqe) {
			n = i // ring full cannot happen at these sizes; degrade to a short write
			break
		}
	}
	if n == 0 {
		return 0, slotErr
	}
	if _, err := u.wring.enter(uint32(n), uint32(n), ioringEnterGetevents); err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		u.wres[i] = 1 // sentinel: not yet completed
	}
	for got := 0; got < n; {
		cqe, ok := u.wring.peek()
		if !ok {
			if _, err := u.wring.enter(0, 1, ioringEnterGetevents); err != nil {
				return 0, err
			}
			continue
		}
		if cqe.userData < uint64(n) && u.wres[cqe.userData] == 1 {
			u.wres[cqe.userData] = cqe.res
			got++
		}
	}
	runtime.KeepAlive(msgs)
	sent := 0
	for i := 0; i < n; i++ {
		if u.wres[i] < 0 {
			// The link chain guarantees everything after the first failure
			// completed as -ECANCELED; msgs[sent] is the failing datagram,
			// the caller drops it and retries the remainder.
			u.txTrav.Add(int64(sent))
			return sent, syscall.Errno(-u.wres[i])
		}
		sent++
	}
	u.txTrav.Add(int64(sent))
	if slotErr != nil {
		return sent, slotErr
	}
	return sent, nil
}

// Close wakes a blocked reader, closes the socket, and tears the rings
// down once the reader has drained out of them.
func (u *uringConn) Close() error {
	if !u.closed.CompareAndSwap(false, true) {
		return nil
	}
	u.wake()
	err := u.c.Close()
	go func() {
		// The reader re-checks the closed flag after every blocking wait;
		// once it has left the ring, unmapping is safe. The bound makes a
		// wedged reader leak the rings rather than race them.
		for i := 0; i < 2000 && u.readerBusy.Load() != 0; i++ {
			clk.Sleep(time.Millisecond)
		}
		if u.readerBusy.Load() != 0 {
			return
		}
		u.wmu.Lock()
		defer u.wmu.Unlock()
		u.teardownOnce.Do(u.teardown)
	}()
	return err
}

func (u *uringConn) teardown() {
	u.bufs.destroy(u.rring.fd)
	u.rring.destroy()
	u.wring.destroy()
}
