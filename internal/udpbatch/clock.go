package udpbatch

import "repro/internal/simclock"

// clk is the package's time source. Providers are constructed bare from a
// *net.UDPConn (no config struct to thread a clock through), so the clock
// is injected at package level: real by default, swappable for tests that
// want the probe/retry waits and the log rate limiter in virtual time.
var clk simclock.Clock = simclock.Real{}

// SetClock injects the clock used for provider probe deadlines, retry
// waits, and log rate limiting. Call before constructing providers; not
// safe to swap while providers are live.
func SetClock(c simclock.Clock) {
	if c == nil {
		c = simclock.Real{}
	}
	clk = c
}
