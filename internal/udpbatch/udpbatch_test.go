package udpbatch

import (
	"errors"
	"testing"

	"repro/internal/netem"
)

// chanConn is a deterministic in-memory SingleConn for adapter tests.
type chanConn struct {
	in   chan Message
	sent []Message
	// failAt makes WriteTo fail on the datagram with this index (-1 = never).
	failAt int
	writes int
}

func newChanConn(depth int) *chanConn {
	return &chanConn{in: make(chan Message, depth), failAt: -1}
}

func (c *chanConn) ReadFrom(buf []byte) (int, netem.Addr, error) {
	m, ok := <-c.in
	if !ok {
		return 0, netem.Addr{}, errors.New("closed")
	}
	n := copy(buf, m.Buf)
	return n, m.Addr, nil
}

func (c *chanConn) WriteTo(wire []byte, dst netem.Addr) error {
	if c.writes == c.failAt {
		c.writes++
		return errors.New("boom")
	}
	c.writes++
	c.sent = append(c.sent, Message{Buf: append([]byte(nil), wire...), Addr: dst})
	return nil
}

func TestLoopConnReadOneWriteAll(t *testing.T) {
	sc := newChanConn(4)
	sc.in <- Message{Buf: []byte("hello"), Addr: netem.Addr{Host: 7, Port: 9}}
	bc := NewLoopConn(sc)
	if got := bc.BatchCap(); got != 1 {
		t.Fatalf("loop BatchCap = %d, want 1", got)
	}
	msgs := make([]Message, 3)
	for i := range msgs {
		msgs[i].Buf = make([]byte, 0, 64)
	}
	n, err := bc.ReadBatch(msgs)
	if err != nil || n != 1 {
		t.Fatalf("ReadBatch = %d, %v; want 1 datagram", n, err)
	}
	if string(msgs[0].Buf) != "hello" || msgs[0].Addr.Host != 7 {
		t.Fatalf("read %q from %v", msgs[0].Buf, msgs[0].Addr)
	}

	out := []Message{
		{Buf: []byte("a"), Addr: netem.Addr{Host: 1}},
		{Buf: []byte("b"), Addr: netem.Addr{Host: 2}},
	}
	if n, err := bc.WriteBatch(out); err != nil || n != 2 {
		t.Fatalf("WriteBatch = %d, %v; want 2", n, err)
	}
	if len(sc.sent) != 2 || string(sc.sent[1].Buf) != "b" {
		t.Fatalf("underlying conn saw %v", sc.sent)
	}
}

// TestLoopConnWriteError pins the error contract: WriteBatch returns the
// index of the failing datagram so the caller can drop it and continue
// with the remainder.
func TestLoopConnWriteError(t *testing.T) {
	sc := newChanConn(1)
	sc.failAt = 1
	bc := NewLoopConn(sc)
	out := []Message{
		{Buf: []byte("a"), Addr: netem.Addr{Host: 1}},
		{Buf: []byte("b"), Addr: netem.Addr{Host: 2}},
		{Buf: []byte("c"), Addr: netem.Addr{Host: 3}},
	}
	n, err := bc.WriteBatch(out)
	if err == nil || n != 1 {
		t.Fatalf("WriteBatch = %d, %v; want n=1 and an error naming msgs[1]", n, err)
	}
	// The documented recovery: drop msgs[n], retry the rest.
	if n2, err := bc.WriteBatch(out[n+1:]); err != nil || n2 != 1 {
		t.Fatalf("retry WriteBatch = %d, %v", n2, err)
	}
	if len(sc.sent) != 2 || string(sc.sent[0].Buf) != "a" || string(sc.sent[1].Buf) != "c" {
		t.Fatalf("delivered %v, want a then c with b dropped", sc.sent)
	}
}

func TestPoolRecycles(t *testing.T) {
	p := NewPool(128, 2)
	a := p.Get()
	if cap(a) < 128 || len(a) != 0 {
		t.Fatalf("Get: len=%d cap=%d", len(a), cap(a))
	}
	a = append(a, 1, 2, 3)
	p.Put(a)
	b := p.Get()
	if &b[:1][0] != &a[:1][0] {
		t.Fatal("pool did not recycle the buffer")
	}
	// Undersized buffers must not poison the ring.
	p.Put(make([]byte, 0, 16))
	if c := p.Get(); cap(c) < 128 {
		t.Fatalf("pool handed out an undersized buffer (cap %d)", cap(c))
	}
}

// TestPoolAllocFree proves the steady-state Get/Put cycle allocates
// nothing — the property the batched read path's 0 allocs/packet budget
// rests on.
func TestPoolAllocFree(t *testing.T) {
	p := NewPool(DefaultBufSize, 8)
	p.Put(p.Get())
	allocs := testing.AllocsPerRun(1000, func() {
		b := p.Get()
		p.Put(b)
	})
	if allocs != 0 {
		t.Fatalf("pool Get/Put = %.1f allocs, want 0", allocs)
	}
}

// TestSegmentRun pins the one shared definition of a GSO-coalescible run
// that both the real provider and sessiond's modeled accounting use.
func TestSegmentRun(t *testing.T) {
	a := netem.Addr{Host: 1, Port: 1}
	b := netem.Addr{Host: 2, Port: 2}
	mk := func(n int, addr netem.Addr) Message {
		return Message{Buf: make([]byte, n), Addr: addr}
	}
	cases := []struct {
		name string
		msgs []Message
		want int
	}{
		{"empty", nil, 0},
		{"single", []Message{mk(100, a)}, 1},
		{"equal run", []Message{mk(100, a), mk(100, a), mk(100, a)}, 3},
		{"peer change breaks", []Message{mk(100, a), mk(100, b)}, 1},
		{"shorter trailer closes", []Message{mk(100, a), mk(100, a), mk(40, a), mk(100, a)}, 3},
		{"longer breaks", []Message{mk(100, a), mk(200, a)}, 1},
		{"empty first slot", []Message{mk(0, a), mk(100, a)}, 1},
		{"empty mid breaks", []Message{mk(100, a), mk(0, a)}, 1},
	}
	for _, tc := range cases {
		if got := SegmentRun(tc.msgs); got != tc.want {
			t.Errorf("%s: SegmentRun = %d, want %d", tc.name, got, tc.want)
		}
	}
	// Kernel caps: at most MaxSegments segments and MaxDatagram total bytes
	// per super-datagram.
	long := make([]Message, MaxSegments+10)
	for i := range long {
		long[i] = mk(100, a)
	}
	if got := SegmentRun(long); got != MaxSegments {
		t.Errorf("segment cap: SegmentRun = %d, want %d", got, MaxSegments)
	}
	big := []Message{mk(40000, a), mk(40000, a)} // 80000 > MaxDatagram
	if got := SegmentRun(big); got != 1 {
		t.Errorf("byte cap: SegmentRun = %d, want 1", got)
	}
}

// TestPoolSuperClass pins the two-size-class pool: GetSized draws from
// the class that fits, Put routes each buffer home, and widening drops
// cached supers that could truncate a future read.
func TestPoolSuperClass(t *testing.T) {
	p := NewPool(2048, 4)
	if got := p.GetSized(2048); cap(got) < 2048 {
		t.Fatalf("base GetSized cap = %d", cap(got))
	}
	// Before EnableSuper an oversized request allocates a one-off.
	b := p.GetSized(10000)
	if cap(b) < 10000 {
		t.Fatalf("one-off cap = %d, want >= 10000", cap(b))
	}
	p.EnableSuper(MaxDatagram, 2)
	if p.SuperSize() != MaxDatagram {
		t.Fatalf("SuperSize = %d", p.SuperSize())
	}
	s1 := p.GetSized(MaxDatagram)
	if cap(s1) < MaxDatagram {
		t.Fatalf("super cap = %d", cap(s1))
	}
	// Returned supers recycle through the super list, not the base ring.
	p.Put(s1)
	s2 := p.GetSized(5000)
	if cap(s2) < MaxDatagram {
		t.Fatal("super request did not hit the super free list")
	}
	// The old one-off (10000 < superSize) does not poison the super class.
	p.Put(b)
	s3 := p.GetSized(MaxDatagram)
	if cap(s3) < MaxDatagram {
		t.Fatalf("undersized buffer reached the super list: cap %d", cap(s3))
	}
	// Base buffers still recycle normally alongside the super class.
	base := p.Get()
	p.Put(base)
	if got := p.Get(); cap(got) != cap(base) {
		t.Fatalf("base class disturbed: cap %d vs %d", cap(got), cap(base))
	}
}

// TestPoolSuperAllocFree pins the super class at zero steady-state
// allocations, like the base class.
func TestPoolSuperAllocFree(t *testing.T) {
	p := NewPool(2048, 8)
	p.EnableSuper(MaxDatagram, 8)
	warm := p.GetSized(MaxDatagram)
	p.Put(warm)
	allocs := testing.AllocsPerRun(1000, func() {
		b := p.GetSized(MaxDatagram)
		p.Put(b)
	})
	if allocs > 0 {
		t.Fatalf("super class steady state = %.1f allocs/op, want 0", allocs)
	}
}
