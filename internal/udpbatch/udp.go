package udpbatch

import (
	"errors"
	"fmt"
	"net"
	"os"
	"time"

	"repro/internal/netem"
)

// The rest of the stack tracks peers as netem.Addr — a 32-bit host plus a
// 16-bit port, standing in for (IPv4, UDP port). The mapping is bijective
// for IPv4 sources, so unlike the historical adapter in cmd/mosh-server no
// side table is needed: an address decompresses straight back into a
// socket address. Non-IPv4 sources are dropped at the read (IPv6 needs a
// wider address type in internal/netem first — see ROADMAP); because the
// pre-auth mapping is injective, a spoofed datagram cannot redirect
// another peer's replies.

// CompressUDPAddr maps an IPv4 UDP address into netem.Addr form. ok is
// false for non-IPv4 addresses.
func CompressUDPAddr(a *net.UDPAddr) (netem.Addr, bool) {
	ip4 := a.IP.To4()
	if ip4 == nil {
		return netem.Addr{}, false
	}
	host := uint32(ip4[0])<<24 | uint32(ip4[1])<<16 | uint32(ip4[2])<<8 | uint32(ip4[3])
	return netem.Addr{Host: host, Port: uint16(a.Port)}, true
}

// DecompressUDPAddr is the inverse of CompressUDPAddr.
func DecompressUDPAddr(a netem.Addr) *net.UDPAddr {
	return &net.UDPAddr{
		IP:   net.IPv4(byte(a.Host>>24), byte(a.Host>>16), byte(a.Host>>8), byte(a.Host)),
		Port: int(a.Port),
	}
}

// udpSingle is the portable single-datagram adapter over *net.UDPConn.
type udpSingle struct {
	c *net.UDPConn
	// lastLog rate-limits transient-error logging (single reader
	// goroutine): a peer provoking a stream of ICMP errors must not let
	// unbounded stderr writes — possibly to an undrained pipe — stall the
	// shared socket's only reader.
	lastLog time.Time
}

func (u *udpSingle) ReadFrom(buf []byte) (int, netem.Addr, error) {
	for {
		n, src, err := u.c.ReadFromUDP(buf)
		if err != nil {
			// One peer's ICMP port-unreachable (or similar transient error)
			// must not tear down every other session on the shared socket;
			// only a closed socket ends the read loop.
			if errors.Is(err, net.ErrClosed) {
				return 0, netem.Addr{}, err
			}
			if now := time.Now(); now.Sub(u.lastLog) >= time.Second {
				u.lastLog = now
				fmt.Fprintln(os.Stderr, "udpbatch read:", err)
			}
			continue
		}
		a, ok := CompressUDPAddr(src)
		if !ok {
			continue // non-IPv4 source: unsupported, see package comment
		}
		return n, a, nil
	}
}

func (u *udpSingle) WriteTo(wire []byte, dst netem.Addr) error {
	_, err := u.c.WriteToUDP(wire, DecompressUDPAddr(dst))
	return err
}

func (u *udpSingle) Close() error { return u.c.Close() }

// NewUDPConn wraps a UDP socket in the best available batch
// implementation: recvmmsg/sendmmsg on Linux, the loop adapter elsewhere
// (or when the raw syscall surface is unavailable for this socket).
func NewUDPConn(c *net.UDPConn) Conn {
	if bc, err := newPlatformUDP(c); err == nil {
		return bc
	}
	return NewLoopConn(&udpSingle{c: c})
}

// NewUDPLoopConn wraps a UDP socket in the portable one-datagram-per-
// syscall adapter regardless of platform — the explicit fallback mode.
func NewUDPLoopConn(c *net.UDPConn) Conn { return NewLoopConn(&udpSingle{c: c}) }
