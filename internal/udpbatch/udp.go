package udpbatch

import (
	"errors"
	"fmt"
	"net"
	"os"
	"time"

	"repro/internal/netem"
)

// The rest of the stack tracks peers as netem.Addr. For IPv4 sources that
// is a 32-bit host plus a 16-bit port; native IPv6 sources carry their
// upper 12 address bytes in Addr.Pfx with the V6 flag set. Both mappings
// are bijective, so unlike the historical adapter in cmd/mosh-server no
// side table is needed: an address decompresses straight back into a
// socket address, and because the pre-auth mapping is injective, a
// spoofed datagram cannot redirect another peer's replies. Scoped
// (link-local zoned) IPv6 sources are refused at the read — a zone index
// does not fit a comparable value without aliasing.

// CompressUDPAddr maps a UDP address into netem.Addr form. IPv4 and
// IPv4-mapped IPv6 addresses take the compact form; native IPv6 sets V6
// and fills Pfx. ok is false only for malformed or zoned addresses.
func CompressUDPAddr(a *net.UDPAddr) (netem.Addr, bool) {
	if ip4 := a.IP.To4(); ip4 != nil {
		host := uint32(ip4[0])<<24 | uint32(ip4[1])<<16 | uint32(ip4[2])<<8 | uint32(ip4[3])
		return netem.Addr{Host: host, Port: uint16(a.Port)}, true
	}
	ip := a.IP.To16()
	if ip == nil || a.Zone != "" {
		return netem.Addr{}, false
	}
	addr := netem.Addr{Port: uint16(a.Port), V6: true}
	copy(addr.Pfx[:], ip[:12])
	addr.Host = uint32(ip[12])<<24 | uint32(ip[13])<<16 | uint32(ip[14])<<8 | uint32(ip[15])
	return addr, true
}

// DecompressUDPAddr is the inverse of CompressUDPAddr.
func DecompressUDPAddr(a netem.Addr) *net.UDPAddr {
	if a.V6 {
		ip := make(net.IP, 16)
		copy(ip, a.Pfx[:])
		ip[12], ip[13] = byte(a.Host>>24), byte(a.Host>>16)
		ip[14], ip[15] = byte(a.Host>>8), byte(a.Host)
		return &net.UDPAddr{IP: ip, Port: int(a.Port)}
	}
	return &net.UDPAddr{
		IP:   net.IPv4(byte(a.Host>>24), byte(a.Host>>16), byte(a.Host>>8), byte(a.Host)),
		Port: int(a.Port),
	}
}

// udpSingle is the portable single-datagram adapter over *net.UDPConn.
type udpSingle struct {
	c *net.UDPConn
	// lastLog rate-limits transient-error logging (single reader
	// goroutine): a peer provoking a stream of ICMP errors must not let
	// unbounded stderr writes — possibly to an undrained pipe — stall the
	// shared socket's only reader.
	lastLog time.Time
}

func (u *udpSingle) ReadFrom(buf []byte) (int, netem.Addr, error) {
	for {
		n, src, err := u.c.ReadFromUDP(buf)
		if err != nil {
			// One peer's ICMP port-unreachable (or similar transient error)
			// must not tear down every other session on the shared socket;
			// only a closed socket ends the read loop.
			if errors.Is(err, net.ErrClosed) {
				return 0, netem.Addr{}, err
			}
			if now := clk.Now(); now.Sub(u.lastLog) >= time.Second {
				u.lastLog = now
				fmt.Fprintln(os.Stderr, "udpbatch read:", err)
			}
			continue
		}
		a, ok := CompressUDPAddr(src)
		if !ok {
			continue // malformed or zoned source: unsupported, see package comment
		}
		return n, a, nil
	}
}

func (u *udpSingle) WriteTo(wire []byte, dst netem.Addr) error {
	_, err := u.c.WriteToUDP(wire, DecompressUDPAddr(dst))
	return err
}

func (u *udpSingle) Close() error { return u.c.Close() }

// NewUDPConn wraps a UDP socket in the best available batch provider,
// walking the fallback ladder io_uring → GSO/GRO → mmsg → loop: each rung
// is a runtime capability probe (a kernel feature, a seccomp policy or a
// non-Linux platform fails the rung, never the daemon), and the loop
// adapter always works.
func NewUDPConn(c *net.UDPConn) Conn {
	bc, _ := NewUDPConnProvider(c, "auto")
	return bc
}

// NewUDPConnProvider selects a provider by name. "auto" (or "") walks the
// ladder; an explicit name fails rather than falling back, so an operator
// pinning a provider learns it is unavailable instead of silently running
// a different one. Names: "uring" (alias "io_uring"), "gso", "mmsg",
// "loop", "auto".
func NewUDPConnProvider(c *net.UDPConn, provider string) (Conn, error) {
	switch provider {
	case "", "auto":
		if bc, err := newURingUDP(c); err == nil {
			return bc, nil
		}
		if bc, err := newGSOUDP(c); err == nil {
			return bc, nil
		}
		if bc, err := newPlatformUDP(c); err == nil {
			return bc, nil
		}
		return NewUDPLoopConn(c), nil
	case "uring", "io_uring":
		return newURingUDP(c)
	case "gso":
		return newGSOUDP(c)
	case "mmsg":
		return newPlatformUDP(c)
	case "loop":
		return NewUDPLoopConn(c), nil
	}
	return nil, fmt.Errorf("udpbatch: unknown provider %q", provider)
}

// NewUDPLoopConn wraps a UDP socket in the portable one-datagram-per-
// syscall adapter regardless of platform — the explicit fallback mode.
func NewUDPLoopConn(c *net.UDPConn) Conn { return NewLoopConn(&udpSingle{c: c}) }

// ProbeResult is one rung of the capability ladder as probed on this
// kernel.
type ProbeResult struct {
	Name string
	OK   bool
	Err  error // why the rung is unavailable (nil when OK)
}

// ProbeProviders constructs each provider in ladder order against scratch
// loopback sockets and reports which rungs this kernel supports. The CI
// capability-probe step and -udp-provider=auto startup logging use it;
// provider tests consult it to skip (loudly) rather than fail where the
// runner's kernel lacks a facility.
func ProbeProviders() []ProbeResult {
	probe := func(name string) ProbeResult {
		c, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			return ProbeResult{Name: name, Err: err}
		}
		bc, err := NewUDPConnProvider(c, name)
		if err != nil {
			c.Close()
			return ProbeResult{Name: name, Err: err}
		}
		if cl, ok := bc.(interface{ Close() error }); ok {
			cl.Close()
		} else {
			c.Close()
		}
		return ProbeResult{Name: name, OK: true}
	}
	return []ProbeResult{
		probe("uring"),
		probe("gso"),
		probe("mmsg"),
		probe("loop"),
	}
}
