// Package udpbatch is the vectorized socket surface under the sessiond
// daemon. The paper's mosh-server owns one socket per session, so one
// syscall per datagram is free; a daemon multiplexing thousands of
// sessions over one UDP socket pays that syscall on every packet in each
// direction, and at high session counts it dominates the per-packet cost.
// This package replaces the one-datagram-at-a-time contract with a
// batch-first one:
//
//   - Conn moves whole batches: ReadBatch fills a caller-owned slice of
//     Messages (one syscall on Linux via recvmmsg), WriteBatch transmits
//     one (sendmmsg), with short-batch and partial-write semantics spelled
//     out below.
//   - Pool is a bounded free ring of wire buffers, so the steady-state
//     read path hands pre-sized storage to the kernel and recycles it
//     after dispatch without allocating per datagram.
//   - NewLoopConn adapts any single-datagram connection to Conn, so every
//     existing PacketConn keeps working (one datagram per call — the
//     portable fallback path, and the accounting baseline).
//
// The Linux fast path lives in mmsg_linux.go behind a build tag and uses
// raw syscalls only (no new dependencies); NewUDPConn picks it when
// available and falls back to the loop adapter elsewhere.
package udpbatch

import (
	"sync"

	"repro/internal/netem"
)

// DefaultBatch is the batch capacity used by callers that do not choose
// their own: large enough that a loaded daemon amortizes a syscall over
// tens of datagrams, small enough that one batch of MTU-sized buffers
// stays within a few hundred kilobytes.
const DefaultBatch = 64

// DefaultBufSize is the per-datagram buffer capacity the pool hands out.
// SSP fragments at an MTU of ~1200 bytes plus datagram-layer overhead, so
// 2 KiB covers every packet this stack emits; an oversized foreign
// datagram is truncated by the kernel and then discarded by the AEAD.
const DefaultBufSize = 2048

// MaxSegments mirrors the kernel's UDP_MAX_SEGMENTS: the most MTU-sized
// segments one GSO super-datagram (one sendmsg, one stack traversal) may
// carry.
const MaxSegments = 64

// MaxDatagram is the read-slot capacity that can never truncate: the
// 64 KiB UDP payload ceiling, which bounds both a UDP_GRO coalesced
// super-datagram and any single oversized-but-legitimate datagram.
const MaxDatagram = 65535

// GSOBatch is how many messages one GSO-provider WriteBatch call may
// consume (DefaultBatch segmented runs of typical train length).
// sessiond's modeled syscall accounting mirrors it so simulated GSO
// sweeps match the wire path's geometry.
const GSOBatch = 8 * DefaultBatch

// GROReadSlots is how many super-buffers one GSO-provider read syscall
// fills: each can carry a whole coalesced train, so a small vector
// already moves hundreds of datagrams per syscall.
const GROReadSlots = 8

// Message is one datagram slot in a batch.
//
// For reads the caller provides Buf with free capacity (len is ignored,
// cap is the receive window) and ReadBatch reslices Buf to the datagram's
// bytes and sets Addr to its source. For writes the caller sets Buf to
// the wire bytes and Addr to the destination.
type Message struct {
	Buf  []byte
	Addr netem.Addr
}

// Conn is a batched datagram connection.
//
// ReadBatch blocks until at least one datagram is available, fills up to
// len(msgs) slots, and returns how many it filled ("short batch": any
// 1 <= n <= len(msgs) is a complete, successful read — the kernel simply
// had no more queued). n == 0 with a nil error is a transient-pressure
// yield (e.g. recvmmsg ENOMEM): nothing was read, the caller just calls
// again.
//
// WriteBatch transmits msgs in order and returns how many datagrams were
// consumed. A short count with a nil error means the kernel took only a
// prefix (partial write) — the caller retries the remainder. A non-nil
// error means msgs[n] itself failed; the caller should drop that datagram
// (SSP treats it as loss) and continue with msgs[n+1:].
type Conn interface {
	ReadBatch(msgs []Message) (n int, err error)
	WriteBatch(msgs []Message) (n int, err error)
	// BatchCap reports the largest batch one underlying syscall can move:
	// DefaultBatch-like values for vectorized implementations, 1 for
	// loop adapters. Metrics use it to attribute syscall counts honestly.
	BatchCap() int
}

// Optional Conn refinements. Conn itself must not grow methods — fault
// injectors and test fakes implement it structurally — so capabilities
// beyond the three-call contract are discovered by interface assertion.

// SlotSizer is implemented by providers whose reads can legitimately
// exceed the transport MTU: a UDP_GRO super-datagram or an io_uring
// provided buffer holds up to MaxDatagram bytes. The serve loop draws
// read slots from the matching pool size class, so an oversized-but-
// legitimate read can never be truncated (a truncated datagram fails the
// AEAD, and the peer's retransmissions of it fail forever — a livelock).
type SlotSizer interface {
	ReadSlotSize() int
}

// ReadSlotSize reports the read-slot capacity conn needs: its SlotSizer
// value when it declares one, fallback otherwise.
func ReadSlotSize(conn Conn, fallback int) int {
	if s, ok := conn.(SlotSizer); ok {
		if n := s.ReadSlotSize(); n > fallback {
			return n
		}
	}
	return fallback
}

// Provider names the kernel facility a Conn rides on ("io_uring", "gso",
// "mmsg", "loop"); the capability probe, startup logs and CI read it.
type Provider interface {
	ProviderName() string
}

// ProviderName reports conn's provider, or "unknown" for implementations
// that do not declare one (fault injectors, test fakes).
func ProviderName(conn Conn) string {
	if p, ok := conn.(Provider); ok {
		return p.ProviderName()
	}
	return "unknown"
}

// TraversalCounter is implemented by providers whose syscalls move
// coalesced super-datagrams: Traversals reports cumulative UDP-stack
// traversals (one per wire datagram on mmsg/loop paths, one per GSO/GRO
// super-datagram on segmented paths). sessiond diffs it around batch
// calls to meter stack-traversals-per-packet honestly.
type TraversalCounter interface {
	Traversals() (in, out int64)
}

// SegmentRun reports the length of the maximal GSO-coalescible prefix of
// msgs: datagrams to the same peer whose payloads equal the first's
// length (the last segment of a run may be shorter, ending it), capped at
// MaxSegments segments and the MaxDatagram super-buffer ceiling. The real
// GSO provider and sessiond's modeled syscall accounting share this one
// definition, so simulated counts and wire behavior cannot drift apart.
func SegmentRun(msgs []Message) int {
	if len(msgs) == 0 {
		return 0
	}
	seg := len(msgs[0].Buf)
	if seg == 0 {
		return 1
	}
	dst := msgs[0].Addr
	total := seg
	n := 1
	for n < len(msgs) && n < MaxSegments {
		l := len(msgs[n].Buf)
		if l == 0 || l > seg || total+l > MaxDatagram || msgs[n].Addr != dst {
			break
		}
		n++
		total += l
		if l < seg {
			break // shorter trailer closes the super-datagram
		}
	}
	return n
}

// SingleConn is the legacy one-datagram surface (sessiond.PacketConn
// satisfies it structurally): a blocking read and a consuming write.
type SingleConn interface {
	ReadFrom(buf []byte) (n int, src netem.Addr, err error)
	WriteTo(wire []byte, dst netem.Addr) error
}

// Pool is a bounded free ring of wire buffers. Get returns a zero-length
// buffer with at least BufSize capacity; Put recycles one. The ring is
// bounded so a burst cannot pin memory forever, and misses simply
// allocate — the steady state is all hits.
//
// A pool can additionally grow a super-buffer size class (EnableSuper):
// a second bounded free list of much larger buffers for providers whose
// reads exceed the transport MTU — a 64 KiB UDP_GRO coalesced read must
// land in a slot that can never truncate it. Put routes returned buffers
// to the class their capacity fits, so base and super storage recycle
// independently and a super buffer is never wasted holding an MTU-sized
// datagram slot.
type Pool struct {
	mu        sync.Mutex
	free      [][]byte
	superFree [][]byte
	size      int
	superSize int // 0 until EnableSuper
	max       int
	superMax  int
	// gets/misses meter pool effectiveness: a miss is a Get that had to
	// allocate. A steady-state daemon should see the miss count plateau.
	gets   int64
	misses int64
}

// NewPool builds a pool handing out bufSize-capacity buffers and keeping
// at most max free ones (0 means 4×DefaultBatch).
func NewPool(bufSize, max int) *Pool {
	if bufSize <= 0 {
		bufSize = DefaultBufSize
	}
	if max <= 0 {
		max = 4 * DefaultBatch
	}
	return &Pool{size: bufSize, max: max}
}

// BufSize reports the capacity of buffers this pool hands out.
func (p *Pool) BufSize() int { return p.size }

// EnableSuper registers (or widens) the pool's super-buffer size class:
// GetSized requests above the base size draw from a second free list of
// size-capacity buffers, keeping at most max free (0 means DefaultBatch).
// Idempotent; widening the class drops cached buffers that no longer fit
// it rather than letting them truncate a future oversized read.
func (p *Pool) EnableSuper(size, max int) {
	if size <= 0 {
		size = MaxDatagram
	}
	if max <= 0 {
		max = DefaultBatch
	}
	p.mu.Lock()
	if size < p.size {
		size = p.size
	}
	if size > p.superSize {
		p.superSize = size
		keep := p.superFree[:0]
		for _, b := range p.superFree {
			if cap(b) >= size {
				keep = append(keep, b)
			}
		}
		for i := len(keep); i < len(p.superFree); i++ {
			p.superFree[i] = nil
		}
		p.superFree = keep
	}
	if max > p.superMax {
		p.superMax = max
	}
	p.mu.Unlock()
}

// SuperSize reports the super class capacity (0 when disabled).
func (p *Pool) SuperSize() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.superSize
}

// GetSized returns an empty buffer with capacity at least n, drawn from
// the smallest size class that fits. Requests beyond every class allocate
// exactly-sized one-offs (counted as misses) rather than truncating.
func (p *Pool) GetSized(n int) []byte {
	if n <= p.size {
		return p.Get()
	}
	p.mu.Lock()
	p.gets++
	if n <= p.superSize {
		if k := len(p.superFree); k > 0 {
			b := p.superFree[k-1]
			p.superFree[k-1] = nil
			p.superFree = p.superFree[:k-1]
			p.mu.Unlock()
			return b[:0]
		}
	}
	p.misses++
	size := p.superSize
	if n > size {
		size = n
	}
	p.mu.Unlock()
	return make([]byte, 0, size)
}

// Get returns an empty buffer with at least BufSize capacity.
func (p *Pool) Get() []byte {
	p.mu.Lock()
	p.gets++
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return b[:0]
	}
	p.misses++
	p.mu.Unlock()
	return make([]byte, 0, p.size)
}

// Stats reports how many buffers Get has handed out and how many of
// those had to be freshly allocated (pool misses).
func (p *Pool) Stats() (gets, misses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gets, p.misses
}

// Put recycles a buffer obtained from Get or GetSized, routing it to the
// size class its capacity fits. Undersized foreign buffers are dropped
// rather than poisoning a ring.
func (p *Pool) Put(b []byte) {
	if cap(b) < p.size {
		return
	}
	p.mu.Lock()
	if p.superSize > 0 && cap(b) >= p.superSize {
		if len(p.superFree) < p.superMax {
			p.superFree = append(p.superFree, b)
		}
	} else if len(p.free) < p.max {
		p.free = append(p.free, b)
	}
	p.mu.Unlock()
}

// loopConn adapts a SingleConn to the batch interface: one datagram per
// read call, a write loop per batch. This is the portable fallback and
// the semantic baseline the batched implementations must match.
type loopConn struct {
	sc SingleConn
}

// NewLoopConn wraps a single-datagram connection as a Conn.
func NewLoopConn(sc SingleConn) Conn { return &loopConn{sc: sc} }

func (l *loopConn) BatchCap() int { return 1 }

func (l *loopConn) ProviderName() string { return "loop" }

func (l *loopConn) ReadBatch(msgs []Message) (int, error) {
	if len(msgs) == 0 {
		return 0, nil
	}
	buf := msgs[0].Buf[:cap(msgs[0].Buf)]
	n, src, err := l.sc.ReadFrom(buf)
	if err != nil {
		return 0, err
	}
	msgs[0].Buf = buf[:n]
	msgs[0].Addr = src
	return 1, nil
}

func (l *loopConn) WriteBatch(msgs []Message) (int, error) {
	for i := range msgs {
		if err := l.sc.WriteTo(msgs[i].Buf, msgs[i].Addr); err != nil {
			return i, err
		}
	}
	return len(msgs), nil
}

// Close forwards to the underlying connection when it supports closing,
// so a daemon shutdown can unblock a pending read through the adapter.
func (l *loopConn) Close() error {
	if c, ok := l.sc.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}
