// Package udpbatch is the vectorized socket surface under the sessiond
// daemon. The paper's mosh-server owns one socket per session, so one
// syscall per datagram is free; a daemon multiplexing thousands of
// sessions over one UDP socket pays that syscall on every packet in each
// direction, and at high session counts it dominates the per-packet cost.
// This package replaces the one-datagram-at-a-time contract with a
// batch-first one:
//
//   - Conn moves whole batches: ReadBatch fills a caller-owned slice of
//     Messages (one syscall on Linux via recvmmsg), WriteBatch transmits
//     one (sendmmsg), with short-batch and partial-write semantics spelled
//     out below.
//   - Pool is a bounded free ring of wire buffers, so the steady-state
//     read path hands pre-sized storage to the kernel and recycles it
//     after dispatch without allocating per datagram.
//   - NewLoopConn adapts any single-datagram connection to Conn, so every
//     existing PacketConn keeps working (one datagram per call — the
//     portable fallback path, and the accounting baseline).
//
// The Linux fast path lives in mmsg_linux.go behind a build tag and uses
// raw syscalls only (no new dependencies); NewUDPConn picks it when
// available and falls back to the loop adapter elsewhere.
package udpbatch

import (
	"sync"

	"repro/internal/netem"
)

// DefaultBatch is the batch capacity used by callers that do not choose
// their own: large enough that a loaded daemon amortizes a syscall over
// tens of datagrams, small enough that one batch of MTU-sized buffers
// stays within a few hundred kilobytes.
const DefaultBatch = 64

// DefaultBufSize is the per-datagram buffer capacity the pool hands out.
// SSP fragments at an MTU of ~1200 bytes plus datagram-layer overhead, so
// 2 KiB covers every packet this stack emits; an oversized foreign
// datagram is truncated by the kernel and then discarded by the AEAD.
const DefaultBufSize = 2048

// Message is one datagram slot in a batch.
//
// For reads the caller provides Buf with free capacity (len is ignored,
// cap is the receive window) and ReadBatch reslices Buf to the datagram's
// bytes and sets Addr to its source. For writes the caller sets Buf to
// the wire bytes and Addr to the destination.
type Message struct {
	Buf  []byte
	Addr netem.Addr
}

// Conn is a batched datagram connection.
//
// ReadBatch blocks until at least one datagram is available, fills up to
// len(msgs) slots, and returns how many it filled ("short batch": any
// 1 <= n <= len(msgs) is a complete, successful read — the kernel simply
// had no more queued). n == 0 with a nil error is a transient-pressure
// yield (e.g. recvmmsg ENOMEM): nothing was read, the caller just calls
// again.
//
// WriteBatch transmits msgs in order and returns how many datagrams were
// consumed. A short count with a nil error means the kernel took only a
// prefix (partial write) — the caller retries the remainder. A non-nil
// error means msgs[n] itself failed; the caller should drop that datagram
// (SSP treats it as loss) and continue with msgs[n+1:].
type Conn interface {
	ReadBatch(msgs []Message) (n int, err error)
	WriteBatch(msgs []Message) (n int, err error)
	// BatchCap reports the largest batch one underlying syscall can move:
	// DefaultBatch-like values for vectorized implementations, 1 for
	// loop adapters. Metrics use it to attribute syscall counts honestly.
	BatchCap() int
}

// SingleConn is the legacy one-datagram surface (sessiond.PacketConn
// satisfies it structurally): a blocking read and a consuming write.
type SingleConn interface {
	ReadFrom(buf []byte) (n int, src netem.Addr, err error)
	WriteTo(wire []byte, dst netem.Addr) error
}

// Pool is a bounded free ring of wire buffers. Get returns a zero-length
// buffer with at least BufSize capacity; Put recycles one. The ring is
// bounded so a burst cannot pin memory forever, and misses simply
// allocate — the steady state is all hits.
type Pool struct {
	mu   sync.Mutex
	free [][]byte
	size int
	max  int
	// gets/misses meter pool effectiveness: a miss is a Get that had to
	// allocate. A steady-state daemon should see the miss count plateau.
	gets   int64
	misses int64
}

// NewPool builds a pool handing out bufSize-capacity buffers and keeping
// at most max free ones (0 means 4×DefaultBatch).
func NewPool(bufSize, max int) *Pool {
	if bufSize <= 0 {
		bufSize = DefaultBufSize
	}
	if max <= 0 {
		max = 4 * DefaultBatch
	}
	return &Pool{size: bufSize, max: max}
}

// BufSize reports the capacity of buffers this pool hands out.
func (p *Pool) BufSize() int { return p.size }

// Get returns an empty buffer with at least BufSize capacity.
func (p *Pool) Get() []byte {
	p.mu.Lock()
	p.gets++
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return b[:0]
	}
	p.misses++
	p.mu.Unlock()
	return make([]byte, 0, p.size)
}

// Stats reports how many buffers Get has handed out and how many of
// those had to be freshly allocated (pool misses).
func (p *Pool) Stats() (gets, misses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gets, p.misses
}

// Put recycles a buffer obtained from Get. Undersized foreign buffers are
// dropped rather than poisoning the ring.
func (p *Pool) Put(b []byte) {
	if cap(b) < p.size {
		return
	}
	p.mu.Lock()
	if len(p.free) < p.max {
		p.free = append(p.free, b)
	}
	p.mu.Unlock()
}

// loopConn adapts a SingleConn to the batch interface: one datagram per
// read call, a write loop per batch. This is the portable fallback and
// the semantic baseline the batched implementations must match.
type loopConn struct {
	sc SingleConn
}

// NewLoopConn wraps a single-datagram connection as a Conn.
func NewLoopConn(sc SingleConn) Conn { return &loopConn{sc: sc} }

func (l *loopConn) BatchCap() int { return 1 }

func (l *loopConn) ReadBatch(msgs []Message) (int, error) {
	if len(msgs) == 0 {
		return 0, nil
	}
	buf := msgs[0].Buf[:cap(msgs[0].Buf)]
	n, src, err := l.sc.ReadFrom(buf)
	if err != nil {
		return 0, err
	}
	msgs[0].Buf = buf[:n]
	msgs[0].Addr = src
	return 1, nil
}

func (l *loopConn) WriteBatch(msgs []Message) (int, error) {
	for i := range msgs {
		if err := l.sc.WriteTo(msgs[i].Buf, msgs[i].Addr); err != nil {
			return i, err
		}
	}
	return len(msgs), nil
}

// Close forwards to the underlying connection when it supports closing,
// so a daemon shutdown can unblock a pending read through the adapter.
func (l *loopConn) Close() error {
	if c, ok := l.sc.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}
