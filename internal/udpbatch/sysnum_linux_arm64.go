//go:build linux && arm64

package udpbatch

import "syscall"

// The frozen syscall package predates sendmmsg(2); the numbers are ABI
// constants per architecture.
const (
	sysRecvmmsg = syscall.SYS_RECVMMSG // 243
	sysSendmmsg = 269
)
