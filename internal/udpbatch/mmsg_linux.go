//go:build linux && (amd64 || arm64)

package udpbatch

import (
	"errors"
	"net"
	"runtime"
	"sync"
	"syscall"
	"unsafe"

	"repro/internal/netem"
)

// Linux fast path: recvmmsg(2)/sendmmsg(2) over the runtime-poller socket,
// via raw syscalls (no dependencies beyond the standard library). The
// socket stays in non-blocking mode under the net poller; ReadBatch parks
// on the poller until readable, then drains up to a full batch with one
// syscall. Addresses are converted straight between netem.Addr and raw
// sockaddrs — both plain AF_INET sockets and AF_INET6 dual-stack sockets
// (IPv4-mapped addresses) are supported.
//
// The build tag is 64-bit Linux: syscall.Msghdr.Iovlen is a uint64 there
// (32-bit ABIs declare it uint32 and the syscall package offers no
// portable setter). Everything else falls back to the loop adapter.

// mmsghdr mirrors struct mmsghdr. Go pads the struct to the alignment of
// syscall.Msghdr, matching the kernel's array stride.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
}

// sockaddrBuf is large enough for sockaddr_in6 (28 bytes).
const sockaddrBuf = 28

// rawInet4 mirrors struct sockaddr_in with the port kept as big-endian
// bytes (the syscall package's Port field is raw network order, which is
// easy to get wrong; explicit bytes are not).
type rawInet4 struct {
	family uint16 // host byte order
	port   [2]byte
	addr   [4]byte
	zero   [8]byte
}

// rawInet6 mirrors struct sockaddr_in6.
type rawInet6 struct {
	family   uint16 // host byte order
	port     [2]byte
	flowinfo uint32
	addr     [16]byte
	scope    uint32
}

// mmsgConn is the vectorized implementation of Conn.
type mmsgConn struct {
	c  *net.UDPConn
	rc syscall.RawConn
	// v6 marks an AF_INET6 (dual-stack) socket: outgoing sockaddrs must be
	// IPv4-mapped sockaddr_in6, incoming ones arrive that way.
	v6 bool

	// Read scratch (used by the single reader goroutine).
	rhdrs  []mmsghdr
	riovs  []syscall.Iovec
	rnames [][sockaddrBuf]byte

	// Write scratch, guarded by wmu (multiple flush paths may overlap
	// around shutdown).
	wmu    sync.Mutex
	whdrs  []mmsghdr
	wiovs  []syscall.Iovec
	wnames [][sockaddrBuf]byte

	// Persistent poller callbacks with their operands passed through
	// fields: a fresh closure per call would heap-allocate, and the read
	// path is budgeted at zero allocations per batch.
	readFn, writeFn func(fd uintptr) bool
	rN, rGot        int
	rErr            syscall.Errno
	wN, wSent       int
	wErr            syscall.Errno
}

// newPlatformUDP builds the recvmmsg/sendmmsg connection for c.
func newPlatformUDP(c *net.UDPConn) (Conn, error) {
	rc, err := c.SyscallConn()
	if err != nil {
		return nil, err
	}
	m := &mmsgConn{
		c:      c,
		rc:     rc,
		rhdrs:  make([]mmsghdr, DefaultBatch),
		riovs:  make([]syscall.Iovec, DefaultBatch),
		rnames: make([][sockaddrBuf]byte, DefaultBatch),
		whdrs:  make([]mmsghdr, DefaultBatch),
		wiovs:  make([]syscall.Iovec, DefaultBatch),
		wnames: make([][sockaddrBuf]byte, DefaultBatch),
	}
	// Transient-errno handling: EINTR retries immediately inside the
	// callback. ENOMEM/ENOBUFS (kernel memory pressure) must neither kill
	// the daemon nor re-park — the poller is edge-triggered, so already-
	// queued datagrams would generate no new readiness edge and the
	// backlog would stall until fresh traffic arrived; instead the call
	// yields an empty success and the caller simply retries. Only EAGAIN
	// parks (its readiness edge is guaranteed to come).
	//
	// The ICMP family (ECONNREFUSED/EHOSTUNREACH/ENETUNREACH/ETIMEDOUT/
	// EPROTO) is a pending socket error from an earlier send to one
	// unreachable peer, surfaced on the next receive. It says nothing
	// about the other sessions multiplexed on this socket, so it too is a
	// transient yield: consuming the error clears it, and the already-
	// queued datagrams behind it arrive on the retry. Returning it would
	// let one dead peer kill every session's reader.
	m.readFn = func(fd uintptr) bool {
		for {
			r, _, e := syscall.Syscall6(sysRecvmmsg, fd,
				uintptr(unsafe.Pointer(&m.rhdrs[0])), uintptr(m.rN),
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			switch e {
			case syscall.EAGAIN:
				return false // park on the poller until readable
			case syscall.EINTR:
				continue
			case syscall.ENOMEM, syscall.ENOBUFS,
				syscall.ECONNREFUSED, syscall.EHOSTUNREACH,
				syscall.ENETUNREACH, syscall.ETIMEDOUT, syscall.EPROTO:
				m.rErr, m.rGot = 0, 0 // transient: yield, caller retries
				return true
			}
			if e != 0 {
				r = 0 // Syscall6 reports r1=-1 on error; the count is 0
			}
			m.rErr, m.rGot = e, int(r)
			return true
		}
	}
	m.writeFn = func(fd uintptr) bool {
		for {
			r, _, e := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&m.whdrs[0])), uintptr(m.wN),
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			switch e {
			case syscall.EAGAIN:
				return false // socket buffer full: wait for writability
			case syscall.EINTR:
				continue // retry now; a parked write may see no new edge
			}
			if e != 0 {
				r = 0 // Syscall6 reports r1=-1 on error; nothing was sent
			}
			m.wErr, m.wSent = e, int(r)
			return true
		}
	}
	var nameErr error
	cerr := rc.Control(func(fd uintptr) {
		sa, err := syscall.Getsockname(int(fd))
		if err != nil {
			// Without the socket's family, outgoing sockaddrs could be
			// built wrong and every send would fail silently; surface the
			// error so NewUDPConn falls back to the loop adapter instead.
			nameErr = err
			return
		}
		_, m.v6 = sa.(*syscall.SockaddrInet6)
	})
	if cerr != nil {
		return nil, cerr
	}
	if nameErr != nil {
		return nil, nameErr
	}
	return m, nil
}

func (m *mmsgConn) BatchCap() int { return DefaultBatch }

func (m *mmsgConn) ProviderName() string { return "mmsg" }

func (m *mmsgConn) Close() error { return m.c.Close() }

// ReadBatch drains up to len(msgs) datagrams with one recvmmsg call,
// parking on the runtime poller until at least one is available.
func (m *mmsgConn) ReadBatch(msgs []Message) (int, error) {
	n := len(msgs)
	if n == 0 {
		return 0, nil
	}
	if n > len(m.rhdrs) {
		n = len(m.rhdrs)
	}
	for {
		for i := 0; i < n; i++ {
			if cap(msgs[i].Buf) == 0 {
				return 0, errors.New("udpbatch: read slot without buffer capacity")
			}
			msgs[i].Buf = msgs[i].Buf[:cap(msgs[i].Buf)]
			m.riovs[i] = syscall.Iovec{Base: &msgs[i].Buf[0]}
			m.riovs[i].SetLen(len(msgs[i].Buf))
			m.rhdrs[i] = mmsghdr{hdr: syscall.Msghdr{
				Name:    &m.rnames[i][0],
				Namelen: sockaddrBuf,
				Iov:     &m.riovs[i],
				Iovlen:  1,
			}}
		}
		m.rN, m.rGot, m.rErr = n, 0, 0
		err := m.rc.Read(m.readFn)
		runtime.KeepAlive(msgs)
		if err != nil {
			return 0, err
		}
		if m.rErr != 0 {
			return 0, m.rErr
		}
		got := m.rGot
		if got == 0 {
			// Transient-pressure yield from the syscall callback: only
			// this case reports an empty success to the caller.
			return 0, nil
		}
		// Reslice each filled slot to its datagram and decode its source.
		// Undecodable sources (unknown family, zoned link-local v6) are
		// filtered out in place, swapping their capacity buffers toward
		// the tail so no pooled storage is lost; order among survivors is
		// preserved, which is all the demultiplexer needs.
		out := 0
		for i := 0; i < got; i++ {
			addr, ok := decodeName(&m.rnames[i])
			if !ok {
				continue
			}
			if out != i {
				msgs[out].Buf, msgs[i].Buf = msgs[i].Buf, msgs[out].Buf
			}
			msgs[out].Buf = msgs[out].Buf[:m.rhdrs[i].n]
			msgs[out].Addr = addr
			out++
		}
		if out > 0 {
			return out, nil
		}
		// The whole batch was unsupported sources (e.g. zoned link-local
		// IPv6): read again rather than returning an empty success the
		// caller would mistake for kernel pressure — a flood of such
		// datagrams must not throttle the other sessions' reader.
	}
}

// WriteBatch transmits msgs with one sendmmsg call per kernel acceptance.
// It returns how many datagrams the kernel consumed; a non-nil error
// reports that msgs[n] failed (the caller drops it and moves on).
func (m *mmsgConn) WriteBatch(msgs []Message) (int, error) {
	if len(msgs) == 0 {
		return 0, nil
	}
	m.wmu.Lock()
	defer m.wmu.Unlock()
	n := len(msgs)
	if n > len(m.whdrs) {
		n = len(m.whdrs)
	}
	// An empty slot truncates the batch BEFORE it: the valid prefix is
	// transmitted first, so the (n, err) return keeps its meaning — n
	// datagrams delivered, msgs[n] failed — matching the loop adapter.
	var slotErr error
	for i := 0; i < n; i++ {
		if len(msgs[i].Buf) == 0 {
			n, slotErr = i, errors.New("udpbatch: empty write slot")
			break
		}
		nameLen := encodeName(&m.wnames[i], msgs[i].Addr, m.v6)
		m.wiovs[i] = syscall.Iovec{Base: &msgs[i].Buf[0]}
		m.wiovs[i].SetLen(len(msgs[i].Buf))
		m.whdrs[i] = mmsghdr{hdr: syscall.Msghdr{
			Name:    &m.wnames[i][0],
			Namelen: nameLen,
			Iov:     &m.wiovs[i],
			Iovlen:  1,
		}}
	}
	if n == 0 {
		return 0, slotErr // msgs[0] itself is the empty slot
	}
	m.wN, m.wSent, m.wErr = n, 0, 0
	err := m.rc.Write(m.writeFn)
	runtime.KeepAlive(msgs)
	if err != nil {
		return 0, err
	}
	if m.wErr != 0 {
		// sendmmsg reports an error only when the first datagram fails, so
		// wSent is 0 and msgs[0] is the undeliverable one; the caller drops
		// it and continues. For UDP this is typically a transient ICMP-
		// induced error and must not kill the flusher.
		return m.wSent, m.wErr
	}
	if slotErr != nil && m.wSent == n {
		// Whole valid prefix delivered; surface the empty slot as the
		// failing datagram at index n so the caller drops it and retries
		// the remainder.
		return m.wSent, slotErr
	}
	return m.wSent, nil
}

// decodeName converts a raw source sockaddr into a netem.Addr. IPv4 and
// IPv4-mapped IPv6 sources take the compact form; native IPv6 sources set
// V6 and carry their prefix. ok is false only for unknown families and
// scoped (zoned) v6 sources, which do not fit a comparable address
// without aliasing.
func decodeName(name *[sockaddrBuf]byte) (netem.Addr, bool) {
	switch *(*uint16)(unsafe.Pointer(name)) { // sa_family_t, host order
	case syscall.AF_INET:
		sa := (*rawInet4)(unsafe.Pointer(name))
		return netem.Addr{
			Host: uint32(sa.addr[0])<<24 | uint32(sa.addr[1])<<16 | uint32(sa.addr[2])<<8 | uint32(sa.addr[3]),
			Port: uint16(sa.port[0])<<8 | uint16(sa.port[1]),
		}, true
	case syscall.AF_INET6:
		sa := (*rawInet6)(unsafe.Pointer(name))
		// IPv4-mapped addresses (::ffff:a.b.c.d) canonicalize to the
		// compact IPv4 form so a dual-stack socket and a plain v4 socket
		// agree on every v4 peer's identity.
		mapped := sa.addr[10] == 0xff && sa.addr[11] == 0xff
		for i := 0; mapped && i < 10; i++ {
			mapped = sa.addr[i] == 0
		}
		if mapped {
			return netem.Addr{
				Host: uint32(sa.addr[12])<<24 | uint32(sa.addr[13])<<16 | uint32(sa.addr[14])<<8 | uint32(sa.addr[15]),
				Port: uint16(sa.port[0])<<8 | uint16(sa.port[1]),
			}, true
		}
		if sa.scope != 0 {
			return netem.Addr{}, false // zoned link-local: unsupported
		}
		a := netem.Addr{
			Host: uint32(sa.addr[12])<<24 | uint32(sa.addr[13])<<16 | uint32(sa.addr[14])<<8 | uint32(sa.addr[15]),
			Port: uint16(sa.port[0])<<8 | uint16(sa.port[1]),
			V6:   true,
		}
		copy(a.Pfx[:], sa.addr[:12])
		return a, true
	}
	return netem.Addr{}, false
}

// encodeName fills a raw destination sockaddr for dst and returns its
// length. v6 marks an AF_INET6 (dual-stack) socket, where IPv4
// destinations must be written as IPv4-mapped sockaddr_in6. A native-v6
// destination is always written as sockaddr_in6 — on a v4-only socket the
// kernel refuses it (EAFNOSUPPORT) and the per-datagram error contract
// drops just that datagram.
func encodeName(name *[sockaddrBuf]byte, dst netem.Addr, v6 bool) uint32 {
	*name = [sockaddrBuf]byte{}
	if v6 || dst.V6 {
		sa := (*rawInet6)(unsafe.Pointer(name))
		sa.family = syscall.AF_INET6
		sa.port = [2]byte{byte(dst.Port >> 8), byte(dst.Port)}
		if dst.V6 {
			copy(sa.addr[:12], dst.Pfx[:])
		} else {
			sa.addr[10], sa.addr[11] = 0xff, 0xff
		}
		sa.addr[12] = byte(dst.Host >> 24)
		sa.addr[13] = byte(dst.Host >> 16)
		sa.addr[14] = byte(dst.Host >> 8)
		sa.addr[15] = byte(dst.Host)
		return uint32(unsafe.Sizeof(rawInet6{}))
	}
	sa := (*rawInet4)(unsafe.Pointer(name))
	sa.family = syscall.AF_INET
	sa.port = [2]byte{byte(dst.Port >> 8), byte(dst.Port)}
	sa.addr = [4]byte{byte(dst.Host >> 24), byte(dst.Host >> 16), byte(dst.Host >> 8), byte(dst.Host)}
	return uint32(unsafe.Sizeof(rawInet4{}))
}
