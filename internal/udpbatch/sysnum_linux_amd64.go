//go:build linux && amd64

package udpbatch

import "syscall"

// The frozen syscall package predates sendmmsg(2); the numbers are ABI
// constants per architecture.
const (
	sysRecvmmsg = syscall.SYS_RECVMMSG // 299
	sysSendmmsg = 307
)
