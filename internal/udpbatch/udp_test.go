package udpbatch

import (
	"net"
	"testing"
)

// TestCompressUDPAddrRoundTrip pins the bijective netem.Addr mapping for
// IPv4, IPv4-mapped and native IPv6 addresses, and the refusal of zoned
// (scoped) sources.
func TestCompressUDPAddrRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		in   *net.UDPAddr
		ok   bool
		v6   bool
		out  string // expected decompressed IP (String form); "" = same as in
	}{
		{"v4", &net.UDPAddr{IP: net.IPv4(203, 0, 113, 9), Port: 60001}, true, false, ""},
		{"v4-mapped", &net.UDPAddr{IP: net.ParseIP("::ffff:192.0.2.7"), Port: 443}, true, false, "192.0.2.7"},
		{"v6", &net.UDPAddr{IP: net.ParseIP("2001:db8::1234:5678"), Port: 60002}, true, true, ""},
		{"v6 loopback", &net.UDPAddr{IP: net.ParseIP("::1"), Port: 7}, true, true, ""},
		{"zoned", &net.UDPAddr{IP: net.ParseIP("fe80::1"), Port: 1, Zone: "eth0"}, false, false, ""},
		{"malformed", &net.UDPAddr{IP: net.IP{1, 2, 3}, Port: 1}, false, false, ""},
	}
	for _, tc := range cases {
		a, ok := CompressUDPAddr(tc.in)
		if ok != tc.ok {
			t.Errorf("%s: ok = %v, want %v", tc.name, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if a.V6 != tc.v6 {
			t.Errorf("%s: V6 = %v, want %v", tc.name, a.V6, tc.v6)
		}
		back := DecompressUDPAddr(a)
		wantIP := tc.out
		if wantIP == "" {
			wantIP = tc.in.IP.String()
		}
		if back.IP.String() != wantIP || back.Port != tc.in.Port {
			t.Errorf("%s: round trip = %v, want %s:%d", tc.name, back, wantIP, tc.in.Port)
		}
	}
}

// TestAddrDistinct guards the injectivity the pre-auth peer map relies
// on: a native v6 address whose low 4 bytes collide with a v4 host must
// still compare unequal, and distinct v6 prefixes must not alias.
func TestAddrDistinct(t *testing.T) {
	v4, _ := CompressUDPAddr(&net.UDPAddr{IP: net.IPv4(10, 0, 0, 1), Port: 99})
	v6, _ := CompressUDPAddr(&net.UDPAddr{IP: net.ParseIP("2001:db8::a00:1"), Port: 99})
	if v4 == v6 {
		t.Fatal("v4 and v6 addresses with equal low bytes must not alias")
	}
	p1, _ := CompressUDPAddr(&net.UDPAddr{IP: net.ParseIP("2001:db8:1::1"), Port: 99})
	p2, _ := CompressUDPAddr(&net.UDPAddr{IP: net.ParseIP("2001:db8:2::1"), Port: 99})
	if p1 == p2 {
		t.Fatal("distinct v6 prefixes must not alias")
	}
}
