//go:build linux && (amd64 || arm64)

package udpbatch

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/netem"
)

// dialBatchPair opens a server batch conn plus a plain client socket
// aimed at it over loopback.
func dialBatchPair(t *testing.T, network string) (Conn, *net.UDPConn, *net.UDPConn) {
	t.Helper()
	srv, err := net.ListenUDP(network, &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	bc, err := newPlatformUDP(srv)
	if err != nil {
		srv.Close()
		t.Fatalf("newPlatformUDP: %v", err)
	}
	cl, err := net.DialUDP("udp4", nil, srv.LocalAddr().(*net.UDPAddr))
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); cl.Close() })
	return bc, srv, cl
}

// TestMMsgReadBatchDrainsQueue sends several datagrams before the first
// read, so one recvmmsg call must return them all, with correct lengths
// and source addresses.
func TestMMsgReadBatchDrainsQueue(t *testing.T) {
	bc, _, cl := dialBatchPair(t, "udp4")
	const count = 5
	for i := 0; i < count; i++ {
		if _, err := cl.Write([]byte(fmt.Sprintf("pkt-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Loopback delivery is asynchronous; wait for the full backlog.
	deadline := time.Now().Add(5 * time.Second)
	got := 0
	msgs := make([]Message, DefaultBatch)
	for i := range msgs {
		msgs[i].Buf = make([]byte, 0, DefaultBufSize)
	}
	var batches int
	for got < count {
		if time.Now().After(deadline) {
			t.Fatalf("read %d/%d datagrams before timeout", got, count)
		}
		n, err := bc.ReadBatch(msgs[: count-got : count-got])
		if err != nil {
			t.Fatal(err)
		}
		batches++
		wantSrc, _ := CompressUDPAddr(cl.LocalAddr().(*net.UDPAddr))
		for i := 0; i < n; i++ {
			want := fmt.Sprintf("pkt-%d", got+i)
			if string(msgs[i].Buf) != want {
				t.Fatalf("datagram %d = %q, want %q", got+i, msgs[i].Buf, want)
			}
			if msgs[i].Addr != wantSrc {
				t.Fatalf("datagram %d src = %v, want %v", got+i, msgs[i].Addr, wantSrc)
			}
		}
		got += n
	}
	t.Logf("read %d datagrams in %d recvmmsg call(s)", got, batches)
}

// TestMMsgWriteBatchRoundTrip sends a batch through sendmmsg and checks
// every datagram arrives intact at the right peer.
func TestMMsgWriteBatchRoundTrip(t *testing.T) {
	bc, _, cl := dialBatchPair(t, "udp4")
	dst, ok := CompressUDPAddr(cl.LocalAddr().(*net.UDPAddr))
	if !ok {
		t.Fatal("client address not IPv4")
	}
	const count = 7
	out := make([]Message, count)
	for i := range out {
		out[i] = Message{Buf: []byte(fmt.Sprintf("reply-%d", i)), Addr: dst}
	}
	sent := 0
	for sent < count {
		n, err := bc.WriteBatch(out[sent:])
		if err != nil {
			t.Fatalf("WriteBatch after %d: %v", sent, err)
		}
		if n == 0 {
			t.Fatal("WriteBatch made no progress")
		}
		sent += n
	}
	cl.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	for i := 0; i < count; i++ {
		n, err := cl.Read(buf)
		if err != nil {
			t.Fatalf("client read %d: %v", i, err)
		}
		if want := fmt.Sprintf("reply-%d", i); string(buf[:n]) != want {
			t.Fatalf("client got %q, want %q", buf[:n], want)
		}
	}
}

// TestMMsgDualStackMapped exercises an AF_INET6 dual-stack socket: reads
// decode IPv4-mapped sources, writes build IPv4-mapped destinations.
func TestMMsgDualStackMapped(t *testing.T) {
	srv, err := net.ListenUDP("udp", &net.UDPAddr{})
	if err != nil {
		t.Skipf("dual-stack UDP unavailable: %v", err)
	}
	defer srv.Close()
	bc, err := newPlatformUDP(srv)
	if err != nil {
		t.Fatalf("newPlatformUDP: %v", err)
	}
	port := srv.LocalAddr().(*net.UDPAddr).Port
	cl, err := net.DialUDP("udp4", nil, &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: port})
	if err != nil {
		t.Skipf("loopback dial unavailable: %v", err)
	}
	defer cl.Close()
	if _, err := cl.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	msgs := []Message{{Buf: make([]byte, 0, DefaultBufSize)}}
	n, err := bc.ReadBatch(msgs)
	if err != nil || n != 1 {
		t.Fatalf("ReadBatch = %d, %v", n, err)
	}
	if string(msgs[0].Buf) != "ping" {
		t.Fatalf("got %q", msgs[0].Buf)
	}
	wantSrc, _ := CompressUDPAddr(cl.LocalAddr().(*net.UDPAddr))
	if msgs[0].Addr != wantSrc {
		t.Fatalf("mapped source = %v, want %v", msgs[0].Addr, wantSrc)
	}
	if n, err := bc.WriteBatch([]Message{{Buf: []byte("pong"), Addr: msgs[0].Addr}}); err != nil || n != 1 {
		t.Fatalf("WriteBatch = %d, %v", n, err)
	}
	cl.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	rn, err := cl.Read(buf)
	if err != nil || string(buf[:rn]) != "pong" {
		t.Fatalf("reply = %q, %v", buf[:rn], err)
	}
}

// TestMMsgWriteBatchErrorCount pins the error-path contract the egress
// flusher's recovery arithmetic depends on: when sendmmsg fails on the
// FIRST datagram, WriteBatch must report n=0 (not the raw syscall's -1),
// so the caller can drop msgs[0] and continue with the rest.
func TestMMsgWriteBatchErrorCount(t *testing.T) {
	bc, _, cl := dialBatchPair(t, "udp4")
	good, _ := CompressUDPAddr(cl.LocalAddr().(*net.UDPAddr))
	// 255.255.255.255 without SO_BROADCAST draws EACCES from the kernel.
	bad := netem.Addr{Host: 0xFFFFFFFF, Port: 9}
	msgs := []Message{
		{Buf: []byte("doomed"), Addr: bad},
		{Buf: []byte("fine"), Addr: good},
	}
	n, err := bc.WriteBatch(msgs)
	if err == nil {
		t.Skip("kernel accepted a broadcast send without SO_BROADCAST; cannot provoke the error path")
	}
	if n != 0 {
		t.Fatalf("WriteBatch error count = %d, want 0 (the failing datagram is msgs[n])", n)
	}
	// The documented recovery: drop msgs[n], retry the remainder.
	if n2, err := bc.WriteBatch(msgs[n+1:]); err != nil || n2 != 1 {
		t.Fatalf("retry after dropping the failing datagram = %d, %v", n2, err)
	}
	cl.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	rn, err := cl.Read(buf)
	if err != nil || string(buf[:rn]) != "fine" {
		t.Fatalf("surviving datagram = %q, %v", buf[:rn], err)
	}
}

// TestMMsgReadBatchAllocFree pins the vectorized read path's allocation
// budget: with pooled buffers prepared, ReadBatch itself performs zero
// heap allocations per call.
func TestMMsgReadBatchAllocFree(t *testing.T) {
	bc, _, cl := dialBatchPair(t, "udp4")
	msgs := make([]Message, 4)
	pool := NewPool(DefaultBufSize, 16)
	for i := range msgs {
		msgs[i].Buf = pool.Get()
	}
	payload := []byte("x")
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := cl.Write(payload); err != nil {
			t.Fatal(err)
		}
		n, err := bc.ReadBatch(msgs)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			b := msgs[i].Buf
			pool.Put(b)
			msgs[i].Buf = pool.Get()
		}
	})
	if allocs > 0 {
		t.Fatalf("ReadBatch steady state = %.1f allocs/call, want 0", allocs)
	}
}

// TestMMsgNativeV6 exercises the widened address path end to end over
// ::1: reads decode native IPv6 sources into V6-flagged netem.Addrs,
// writes rebuild full sockaddr_in6 destinations from them.
func TestMMsgNativeV6(t *testing.T) {
	srv, err := net.ListenUDP("udp6", &net.UDPAddr{IP: net.IPv6loopback})
	if err != nil {
		t.Skipf("IPv6 loopback unavailable: %v", err)
	}
	defer srv.Close()
	bc, err := newPlatformUDP(srv)
	if err != nil {
		t.Fatalf("newPlatformUDP: %v", err)
	}
	cl, err := net.DialUDP("udp6", nil, srv.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Skipf("IPv6 loopback dial unavailable: %v", err)
	}
	defer cl.Close()
	if _, err := cl.Write([]byte("ping6")); err != nil {
		t.Fatal(err)
	}
	msgs := []Message{{Buf: make([]byte, 0, DefaultBufSize)}}
	n, err := bc.ReadBatch(msgs)
	if err != nil || n != 1 {
		t.Fatalf("ReadBatch = %d, %v", n, err)
	}
	if string(msgs[0].Buf) != "ping6" {
		t.Fatalf("got %q", msgs[0].Buf)
	}
	if !msgs[0].Addr.V6 {
		t.Fatalf("native v6 source decoded without V6 flag: %v", msgs[0].Addr)
	}
	wantSrc, ok := CompressUDPAddr(cl.LocalAddr().(*net.UDPAddr))
	if !ok || msgs[0].Addr != wantSrc {
		t.Fatalf("source = %v, want %v", msgs[0].Addr, wantSrc)
	}
	if n, err := bc.WriteBatch([]Message{{Buf: []byte("pong6"), Addr: msgs[0].Addr}}); err != nil || n != 1 {
		t.Fatalf("WriteBatch = %d, %v", n, err)
	}
	cl.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	rn, err := cl.Read(buf)
	if err != nil || string(buf[:rn]) != "pong6" {
		t.Fatalf("reply = %q, %v", buf[:rn], err)
	}
}
