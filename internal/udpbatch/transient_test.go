package udpbatch

import (
	"errors"
	"io"
	"net"
	"os"
	"syscall"
	"testing"
)

// TestIsTransientIOError pins the transient-errno contract: kernel
// pressure and per-peer ICMP errors survive (the daemon retries), real
// socket failures do not — and wrapping through the layers net.UDPConn
// actually produces (*net.OpError around *os.SyscallError) is unwrapped.
func TestIsTransientIOError(t *testing.T) {
	transient := []error{
		syscall.EINTR, syscall.EAGAIN, syscall.ENOBUFS, syscall.ENOMEM,
		syscall.ECONNREFUSED, syscall.EHOSTUNREACH, syscall.ENETUNREACH,
		syscall.ETIMEDOUT, syscall.EPROTO,
	}
	for _, e := range transient {
		if !IsTransientIOError(e) {
			t.Errorf("%v should be transient", e)
		}
		wrapped := &net.OpError{Op: "read", Net: "udp",
			Err: os.NewSyscallError("recvmmsg", e)}
		if !IsTransientIOError(wrapped) {
			t.Errorf("wrapped %v should be transient", e)
		}
	}
	fatal := []error{
		syscall.EACCES, syscall.EBADF, net.ErrClosed, io.EOF,
		errors.New("socket exploded"), nil,
	}
	for _, e := range fatal {
		if IsTransientIOError(e) {
			t.Errorf("%v should NOT be transient", e)
		}
	}
}
