//go:build linux && (amd64 || arm64)

package udpbatch

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"unsafe"

	"repro/internal/netem"
)

// Segmentation-offload provider: the same recvmmsg/sendmmsg machinery as
// the mmsg path, but moving *coalesced super-datagrams* so the kernel
// traverses the UDP stack once per peer-train instead of once per
// datagram.
//
// Egress: WriteBatch scans the batch for maximal same-peer runs of
// equal-length datagrams (SegmentRun — the last segment of a run may be
// shorter, closing it) and sends each run as ONE msghdr whose iovecs are
// the run's payloads plus a UDP_SEGMENT cmsg carrying the segment size;
// the kernel linearizes and resegments on the wire, byte-identical to
// sending the datagrams individually. Up to DefaultBatch runs ride one
// sendmmsg.
//
// Ingress: UDP_GRO is enabled on the socket, so the kernel hands over
// same-peer trains as single super-datagrams with the segment size in a
// cmsg. ReadBatch reads into provider-owned 64 KiB super-buffers and
// splits every super-datagram back into per-message slots at exact
// original boundaries (groSplitter, unit-tested against synthetic
// coalesced buffers). Reads that outsize the caller's slots carry over to
// the next call; nothing is dropped.

const (
	solUDP        = 17  // SOL_UDP
	optUDPSegment = 103 // UDP_SEGMENT
	optUDPGRO     = 104 // UDP_GRO

	// groReadSlots is how many super-buffers one recvmmsg fills: each can
	// carry a whole coalesced train, so a small vector already moves
	// hundreds of datagrams per syscall without pinning megabytes.
	groReadSlots = GROReadSlots

	// gsoWriteMsgs bounds how many messages one WriteBatch call may
	// consume (the flattened iovec scratch). The partial-write contract
	// covers larger batches.
	gsoWriteMsgs = GSOBatch
)

// cmsgHdr mirrors struct cmsghdr on 64-bit Linux.
type cmsgHdr struct {
	length uint64
	level  int32
	typ    int32
}

const cmsgHdrLen = 16 // unsafe.Sizeof(cmsgHdr{})

// groSplitter owns the super-buffers one recvmmsg fills and deals their
// segments back out as individual datagrams. It is pure state — no
// syscalls — so the boundary-reconstruction logic is unit-testable
// without a GRO-capable kernel.
type groSplitter struct {
	bufs []([]byte) // accepted super-datagrams, resliced to their wire length
	segs []int      // GRO segment size per super (0 = not coalesced)
	srcs []netem.Addr
	cnt  int // supers held
	cur  int // super currently being drained
	off  int // byte offset within it
}

func newGROSplitter(slots int) groSplitter {
	return groSplitter{
		bufs: make([][]byte, slots),
		segs: make([]int, slots),
		srcs: make([]netem.Addr, slots),
	}
}

func (s *groSplitter) reset() { s.cnt, s.cur, s.off = 0, 0, 0 }

// push records one received super-datagram for draining.
func (s *groSplitter) push(buf []byte, seg int, src netem.Addr) {
	s.bufs[s.cnt], s.segs[s.cnt], s.srcs[s.cnt] = buf, seg, src
	s.cnt++
}

func (s *groSplitter) pending() bool { return s.cur < s.cnt }

// drain copies pending segments into caller slots, reproducing the
// original datagram boundaries exactly: every segment is seg bytes except
// a shorter final one. Returns how many slots it filled; segments that
// outnumber the slots stay pending for the next call.
func (s *groSplitter) drain(msgs []Message) int {
	out := 0
	for s.cur < s.cnt && out < len(msgs) {
		buf := s.bufs[s.cur]
		if len(buf) == 0 {
			// A zero-length datagram is legal UDP: deliver one empty message.
			msgs[out].Buf = msgs[out].Buf[:0]
			msgs[out].Addr = s.srcs[s.cur]
			out++
			s.cur++
			s.off = 0
			continue
		}
		adv := len(buf) - s.off
		if seg := s.segs[s.cur]; seg > 0 && seg < adv {
			adv = seg
		}
		n := adv
		if c := cap(msgs[out].Buf); c < n {
			n = c // undersized caller slot: kernel-style truncation
		}
		msgs[out].Buf = msgs[out].Buf[:n]
		copy(msgs[out].Buf, buf[s.off:s.off+n])
		msgs[out].Addr = s.srcs[s.cur]
		out++
		s.off += adv
		if s.off >= len(buf) {
			s.cur++
			s.off = 0
		}
	}
	if s.cur >= s.cnt {
		s.reset()
	}
	return out
}

// gsoConn is the segmentation-offload implementation of Conn.
type gsoConn struct {
	c  *net.UDPConn
	rc syscall.RawConn
	v6 bool

	// Read scratch (single reader goroutine).
	split  groSplitter
	rstore [][]byte // groReadSlots × MaxDatagram provider-owned storage
	rhdrs  []mmsghdr
	riovs  []syscall.Iovec
	rnames [][sockaddrBuf]byte
	rctrls [][8]uint64 // 64-byte aligned cmsg space per message

	// Write scratch, guarded by wmu.
	wmu    sync.Mutex
	whdrs  []mmsghdr // one per run
	wiovs  []syscall.Iovec
	wnames [][sockaddrBuf]byte
	wctrls [][3]uint64 // CMSG_SPACE(sizeof(uint16)) = 24, 8-aligned
	wruns  []int       // messages consumed by each msghdr

	// Persistent poller callbacks (operands via fields — 0 allocs/batch).
	readFn, writeFn func(fd uintptr) bool
	rN, rGot        int
	rErr            syscall.Errno
	wN, wSent       int
	wErr            syscall.Errno

	// Stack traversals: one per super-datagram moved, not per datagram.
	rxTrav, txTrav atomic.Int64
}

// newGSOUDP builds the GSO/GRO connection for c, failing (so the ladder
// falls to mmsg) on kernels without UDP_SEGMENT/UDP_GRO.
func newGSOUDP(c *net.UDPConn) (Conn, error) {
	rc, err := c.SyscallConn()
	if err != nil {
		return nil, err
	}
	g := &gsoConn{
		c:      c,
		rc:     rc,
		split:  newGROSplitter(groReadSlots),
		rstore: make([][]byte, groReadSlots),
		rhdrs:  make([]mmsghdr, groReadSlots),
		riovs:  make([]syscall.Iovec, groReadSlots),
		rnames: make([][sockaddrBuf]byte, groReadSlots),
		rctrls: make([][8]uint64, groReadSlots),
		whdrs:  make([]mmsghdr, DefaultBatch),
		wiovs:  make([]syscall.Iovec, gsoWriteMsgs),
		wnames: make([][sockaddrBuf]byte, DefaultBatch),
		wctrls: make([][3]uint64, DefaultBatch),
		wruns:  make([]int, DefaultBatch),
	}
	for i := range g.rstore {
		g.rstore[i] = make([]byte, MaxDatagram)
	}
	var optErr error
	cerr := rc.Control(func(fd uintptr) {
		// Capability probe doubles as setup. UDP_GRO=1 turns on ingress
		// coalescing (the provider's read side requires it); setting
		// UDP_SEGMENT to 0 proves the egress facility exists without
		// changing behavior — the real segment size rides per-send cmsgs.
		if err := syscall.SetsockoptInt(int(fd), solUDP, optUDPGRO, 1); err != nil {
			optErr = err
			return
		}
		if err := syscall.SetsockoptInt(int(fd), solUDP, optUDPSegment, 0); err != nil {
			optErr = err
			return
		}
		sa, err := syscall.Getsockname(int(fd))
		if err != nil {
			optErr = err
			return
		}
		_, g.v6 = sa.(*syscall.SockaddrInet6)
	})
	if cerr != nil {
		return nil, cerr
	}
	if optErr != nil {
		return nil, fmt.Errorf("udpbatch: gso/gro unavailable: %w", optErr)
	}
	// Transient-errno discipline matches the mmsg path (see mmsg_linux.go):
	// EAGAIN parks, EINTR retries, kernel pressure and the ICMP family
	// yield an empty success the caller retries.
	g.readFn = func(fd uintptr) bool {
		for {
			r, _, e := syscall.Syscall6(sysRecvmmsg, fd,
				uintptr(unsafe.Pointer(&g.rhdrs[0])), uintptr(g.rN),
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			switch e {
			case syscall.EAGAIN:
				return false
			case syscall.EINTR:
				continue
			case syscall.ENOMEM, syscall.ENOBUFS,
				syscall.ECONNREFUSED, syscall.EHOSTUNREACH,
				syscall.ENETUNREACH, syscall.ETIMEDOUT, syscall.EPROTO:
				g.rErr, g.rGot = 0, 0
				return true
			}
			if e != 0 {
				r = 0
			}
			g.rErr, g.rGot = e, int(r)
			return true
		}
	}
	g.writeFn = func(fd uintptr) bool {
		for {
			r, _, e := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&g.whdrs[0])), uintptr(g.wN),
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			switch e {
			case syscall.EAGAIN:
				return false
			case syscall.EINTR:
				continue
			}
			if e != 0 {
				r = 0
			}
			g.wErr, g.wSent = e, int(r)
			return true
		}
	}
	return g, nil
}

func (g *gsoConn) BatchCap() int { return gsoWriteMsgs }

func (g *gsoConn) ProviderName() string { return "gso" }

// ReadSlotSize: a GRO super-datagram (or a single oversized-but-legitimate
// datagram) can reach the UDP payload ceiling; caller slots must fit it.
func (g *gsoConn) ReadSlotSize() int { return MaxDatagram }

// Traversals reports cumulative UDP-stack traversals: one per
// super-datagram each direction.
func (g *gsoConn) Traversals() (in, out int64) {
	return g.rxTrav.Load(), g.txTrav.Load()
}

func (g *gsoConn) Close() error { return g.c.Close() }

// ReadBatch first drains segments carried over from the previous syscall,
// then performs one recvmmsg into the provider's super-buffers and splits
// the result into caller slots.
func (g *gsoConn) ReadBatch(msgs []Message) (int, error) {
	if len(msgs) == 0 {
		return 0, nil
	}
	for i := range msgs {
		if cap(msgs[i].Buf) == 0 {
			return 0, errors.New("udpbatch: read slot without buffer capacity")
		}
	}
	if g.split.pending() {
		if n := g.split.drain(msgs); n > 0 {
			return n, nil
		}
	}
	for {
		for i := 0; i < groReadSlots; i++ {
			buf := g.rstore[i]
			g.riovs[i] = syscall.Iovec{Base: &buf[0]}
			g.riovs[i].SetLen(len(buf))
			g.rhdrs[i] = mmsghdr{hdr: syscall.Msghdr{
				Name:    &g.rnames[i][0],
				Namelen: sockaddrBuf,
				Iov:     &g.riovs[i],
				Iovlen:  1,
				Control: (*byte)(unsafe.Pointer(&g.rctrls[i][0])),
			}}
			g.rhdrs[i].hdr.SetControllen(int(unsafe.Sizeof(g.rctrls[i])))
		}
		g.rN, g.rGot, g.rErr = groReadSlots, 0, 0
		err := g.rc.Read(g.readFn)
		if err != nil {
			return 0, err
		}
		if g.rErr != 0 {
			return 0, g.rErr
		}
		if g.rGot == 0 {
			return 0, nil // transient-pressure yield
		}
		g.split.reset()
		for i := 0; i < g.rGot; i++ {
			addr, ok := decodeName(&g.rnames[i])
			if !ok {
				continue // undecodable source, same filter as the mmsg path
			}
			seg := groSegSize(&g.rctrls[i], int(g.rhdrs[i].hdr.Controllen))
			g.split.push(g.rstore[i][:g.rhdrs[i].n], seg, addr)
		}
		if g.split.cnt > 0 {
			g.rxTrav.Add(int64(g.split.cnt))
			return g.split.drain(msgs), nil
		}
		// Whole vector filtered: read again rather than yielding an empty
		// success the caller would mistake for kernel pressure.
	}
}

// groSegSize walks a received control buffer for the UDP_GRO cmsg and
// returns the coalesced segment size (0 when the read is a single
// ordinary datagram).
func groSegSize(ctrl *[8]uint64, n int) int {
	if max := int(unsafe.Sizeof(*ctrl)); n > max {
		n = max
	}
	off := 0
	for off+cmsgHdrLen <= n {
		h := (*cmsgHdr)(unsafe.Add(unsafe.Pointer(ctrl), off))
		if h.length < cmsgHdrLen {
			break
		}
		if h.level == solUDP && h.typ == optUDPGRO && off+cmsgHdrLen+4 <= n {
			return int(*(*int32)(unsafe.Add(unsafe.Pointer(ctrl), off+cmsgHdrLen)))
		}
		off += int((h.length + 7) &^ 7)
	}
	return 0
}

// WriteBatch groups the batch into same-peer segment runs and transmits
// one msghdr per run — one stack traversal per train — with one sendmmsg
// per call. It consumes one syscall's worth and returns short (the
// partial-write contract) so syscall accounting stays honest; a non-nil
// error reports that msgs[n] failed (the caller drops it and the rest of
// its run regroups on retry).
func (g *gsoConn) WriteBatch(msgs []Message) (int, error) {
	if len(msgs) == 0 {
		return 0, nil
	}
	g.wmu.Lock()
	defer g.wmu.Unlock()
	hdrs, used := 0, 0
	var slotErr error
	for hdrs < len(g.whdrs) && used < len(msgs) && used < len(g.wiovs) {
		if len(msgs[used].Buf) == 0 {
			// Same contract as the mmsg path: the valid prefix transmits
			// first, then the empty slot surfaces as the failing datagram.
			slotErr = errors.New("udpbatch: empty write slot")
			break
		}
		run := SegmentRun(msgs[used:])
		if used+run > len(g.wiovs) {
			run = len(g.wiovs) - used
		}
		seg := len(msgs[used].Buf)
		for k := 0; k < run; k++ {
			g.wiovs[used+k] = syscall.Iovec{Base: &msgs[used+k].Buf[0]}
			g.wiovs[used+k].SetLen(len(msgs[used+k].Buf))
		}
		nameLen := encodeName(&g.wnames[hdrs], msgs[used].Addr, g.v6)
		g.whdrs[hdrs] = mmsghdr{hdr: syscall.Msghdr{
			Name:    &g.wnames[hdrs][0],
			Namelen: nameLen,
			Iov:     &g.wiovs[used],
			Iovlen:  uint64(run),
		}}
		if run > 1 {
			c := &g.wctrls[hdrs]
			h := (*cmsgHdr)(unsafe.Pointer(c))
			h.length = cmsgHdrLen + 2 // CMSG_LEN(sizeof(__u16))
			h.level, h.typ = solUDP, optUDPSegment
			*(*uint16)(unsafe.Pointer(uintptr(unsafe.Pointer(c)) + cmsgHdrLen)) = uint16(seg)
			g.whdrs[hdrs].hdr.Control = (*byte)(unsafe.Pointer(c))
			g.whdrs[hdrs].hdr.SetControllen(int(unsafe.Sizeof(*c))) // CMSG_SPACE
		}
		g.wruns[hdrs] = run
		hdrs++
		used += run
	}
	if hdrs == 0 {
		return 0, slotErr
	}
	g.wN, g.wSent, g.wErr = hdrs, 0, 0
	err := g.rc.Write(g.writeFn)
	runtime.KeepAlive(msgs)
	if err != nil {
		return 0, err
	}
	consumed := 0
	for i := 0; i < g.wSent; i++ {
		consumed += g.wruns[i]
	}
	g.txTrav.Add(int64(g.wSent))
	if g.wErr != 0 {
		// The msghdr after the delivered prefix failed; its first datagram
		// is msgs[consumed]. The caller drops it and retries the remainder,
		// which regroups into fresh runs.
		return consumed, g.wErr
	}
	if slotErr != nil && g.wSent == hdrs {
		return consumed, slotErr
	}
	return consumed, nil
}
