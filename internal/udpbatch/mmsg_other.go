//go:build !linux || !(amd64 || arm64)

package udpbatch

import (
	"errors"
	"net"
)

// errNoPlatformBatch makes NewUDPConn fall back to the portable loop
// adapter on platforms without a vectorized implementation.
var errNoPlatformBatch = errors.New("udpbatch: no vectorized socket I/O on this platform")

func newPlatformUDP(*net.UDPConn) (Conn, error) { return nil, errNoPlatformBatch }
