//go:build !linux || !(amd64 || arm64)

package udpbatch

import (
	"errors"
	"net"
)

// errNoPlatformBatch makes NewUDPConn fall back to the portable loop
// adapter on platforms without a vectorized implementation.
var errNoPlatformBatch = errors.New("udpbatch: no vectorized socket I/O on this platform")

func newPlatformUDP(*net.UDPConn) (Conn, error) { return nil, errNoPlatformBatch }

// The segmentation-offload and io_uring rungs of the provider ladder are
// Linux-only; elsewhere they fail the capability probe like any other
// missing kernel facility.
func newGSOUDP(*net.UDPConn) (Conn, error)   { return nil, errNoPlatformBatch }
func newURingUDP(*net.UDPConn) (Conn, error) { return nil, errNoPlatformBatch }
