package udpbatch

import (
	"errors"
	"syscall"
)

// IsTransientIOError reports whether err is a socket-level errno that a
// datagram server must absorb rather than die on. Two families qualify:
//
//   - kernel-pressure errors (EINTR, EAGAIN, ENOBUFS, ENOMEM): nothing is
//     wrong with the socket, the kernel just could not service the call
//     right now — retry;
//   - ICMP-induced errors a connected (or erroring) UDP socket surfaces on
//     the NEXT syscall (ECONNREFUSED, EHOSTUNREACH, ENETUNREACH,
//     ETIMEDOUT, EPROTO): they describe one peer's reachability, not the
//     socket — a multiplexing daemon with many peers behind one socket
//     must treat them as that datagram's loss, never as a fatal
//     condition for every other session's traffic.
//
// The batched implementations already swallow what they can inside the
// poller callback; this predicate is the contract for callers holding an
// error from any Conn (including the loop adapter over a connected
// net.UDPConn, which wraps these errnos in *net.OpError — errors.Is
// unwraps them).
func IsTransientIOError(err error) bool {
	for _, e := range []syscall.Errno{
		syscall.EINTR, syscall.EAGAIN, syscall.ENOBUFS, syscall.ENOMEM,
		syscall.ECONNREFUSED, syscall.EHOSTUNREACH, syscall.ENETUNREACH,
		syscall.ETIMEDOUT, syscall.EPROTO,
	} {
		if errors.Is(err, e) {
			return true
		}
	}
	return false
}
