//go:build linux && (amd64 || arm64)

package udpbatch

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/netem"
)

// TestProviderProbe reports which rungs of the provider ladder this
// kernel supports. CI runs it verbosely as the capability-probe step, so
// every run records exactly which providers the other tests exercised —
// a skipped GSO or io_uring test is visible, not silent.
func TestProviderProbe(t *testing.T) {
	for _, r := range ProbeProviders() {
		if r.OK {
			t.Logf("provider %-8s available", r.Name)
		} else {
			t.Logf("provider %-8s UNAVAILABLE on this kernel: %v", r.Name, r.Err)
		}
	}
	// The portable rung must always hold; everything above it may
	// legitimately be missing.
	res := ProbeProviders()
	if last := res[len(res)-1]; last.Name != "loop" || !last.OK {
		t.Fatalf("loop rung must always be available, got %+v", last)
	}
}

// dialProviderPair opens a server batch conn on the named provider plus a
// plain client socket aimed at it over loopback, skipping loudly when the
// kernel lacks the facility.
func dialProviderPair(t *testing.T, provider string) (Conn, *net.UDPConn) {
	t.Helper()
	srv, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	bc, err := NewUDPConnProvider(srv, provider)
	if err != nil {
		srv.Close()
		t.Skipf("SKIP: provider %q unavailable on this kernel: %v", provider, err)
	}
	cl, err := net.DialUDP("udp4", nil, srv.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if c, ok := bc.(interface{ Close() error }); ok {
			c.Close()
		}
		cl.Close()
	})
	return bc, cl
}

// TestGSOWriteCoalescesRun pins the tentpole egress behavior: a same-peer
// run of equal-length datagrams (with a shorter trailer) leaves WriteBatch
// as ONE segmented super-datagram — one stack traversal — and arrives at
// the peer as the original individual datagrams, byte-identical.
func TestGSOWriteCoalescesRun(t *testing.T) {
	bc, cl := dialProviderPair(t, "gso")
	dst, _ := CompressUDPAddr(cl.LocalAddr().(*net.UDPAddr))
	const seg = 512
	payloads := make([][]byte, 7)
	msgs := make([]Message, len(payloads))
	for i := range payloads {
		n := seg
		if i == len(payloads)-1 {
			n = 100 // shorter trailer closes the run
		}
		payloads[i] = bytes.Repeat([]byte{byte('a' + i)}, n)
		msgs[i] = Message{Buf: payloads[i], Addr: dst}
	}
	n, err := bc.WriteBatch(msgs)
	if err != nil || n != len(msgs) {
		t.Fatalf("WriteBatch = %d, %v; want %d, nil", n, err, len(msgs))
	}
	if tc, ok := bc.(TraversalCounter); ok {
		if _, out := tc.Traversals(); out != 1 {
			t.Fatalf("egress traversals = %d, want 1 (whole run in one super-datagram)", out)
		}
	}
	cl.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 2048)
	for i := range payloads {
		rn, err := cl.Read(buf)
		if err != nil {
			t.Fatalf("client read %d: %v", i, err)
		}
		if !bytes.Equal(buf[:rn], payloads[i]) {
			t.Fatalf("datagram %d: got %d bytes (%q…), want %d bytes of %q",
				i, rn, buf[:min(rn, 8)], len(payloads[i]), payloads[i][0])
		}
	}
}

// TestGSOReadBatch drains a backlog through the GRO-enabled read path;
// whether or not the kernel coalesced on loopback, the split must deliver
// the original datagrams in order with correct sources.
func TestGSOReadBatch(t *testing.T) {
	bc, cl := dialProviderPair(t, "gso")
	const count = 6
	for i := 0; i < count; i++ {
		if _, err := cl.Write([]byte(fmt.Sprintf("pkt-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	wantSrc, _ := CompressUDPAddr(cl.LocalAddr().(*net.UDPAddr))
	msgs := make([]Message, DefaultBatch)
	for i := range msgs {
		msgs[i].Buf = make([]byte, 0, DefaultBufSize)
	}
	deadline := time.Now().Add(5 * time.Second)
	got := 0
	for got < count {
		if time.Now().After(deadline) {
			t.Fatalf("read %d/%d datagrams before timeout", got, count)
		}
		n, err := bc.ReadBatch(msgs[: count-got : count-got])
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if want := fmt.Sprintf("pkt-%d", got+i); string(msgs[i].Buf) != want {
				t.Fatalf("datagram %d = %q, want %q", got+i, msgs[i].Buf, want)
			}
			if msgs[i].Addr != wantSrc {
				t.Fatalf("datagram %d src = %v, want %v", got+i, msgs[i].Addr, wantSrc)
			}
			msgs[i].Buf = msgs[i].Buf[:0]
		}
		got += n
	}
}

// TestGROSplitBoundaries is the satellite's pure unit test: a synthetic
// coalesced super-datagram must split back into the exact original
// datagram boundaries — full segments plus a shorter final one — across
// multiple drain calls with carry-over.
func TestGROSplitBoundaries(t *testing.T) {
	src := netem.Addr{Host: 0x7F000001, Port: 4242}
	// 3 full 7-byte segments + a 4-byte trailer, as UDP_GRO delivers them.
	super := []byte("AAAAAAABBBBBBBCCCCCCCDDDD")
	want := [][]byte{
		[]byte("AAAAAAA"), []byte("BBBBBBB"), []byte("CCCCCCC"), []byte("DDDD"),
	}
	s := newGROSplitter(4)
	s.push(super, 7, src)
	// Drain through 2-slot windows to force carry-over between calls.
	slots := make([]Message, 2)
	for i := range slots {
		slots[i].Buf = make([]byte, 0, 32)
	}
	var got [][]byte
	for s.pending() {
		n := s.drain(slots)
		if n == 0 {
			t.Fatal("drain made no progress with pending segments")
		}
		for i := 0; i < n; i++ {
			if slots[i].Addr != src {
				t.Fatalf("segment src = %v, want %v", slots[i].Addr, src)
			}
			got = append(got, append([]byte(nil), slots[i].Buf...))
			slots[i].Buf = slots[i].Buf[:0]
		}
	}
	if len(got) != len(want) {
		t.Fatalf("split into %d datagrams, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("datagram %d = %q, want %q", i, got[i], want[i])
		}
	}

	// A non-coalesced read (seg=0) passes through whole.
	s.push([]byte("single"), 0, src)
	if n := s.drain(slots); n != 1 || string(slots[0].Buf) != "single" {
		t.Fatalf("non-coalesced drain = %d, %q", n, slots[0].Buf)
	}
	// A zero-length datagram is legal UDP and must deliver one empty message.
	slots[0].Buf = slots[0].Buf[:0]
	s.push(nil, 0, src)
	if n := s.drain(slots); n != 1 || len(slots[0].Buf) != 0 || slots[0].Addr != src {
		t.Fatalf("zero-length drain = %d, len %d", n, len(slots[0].Buf))
	}
}

// TestURingRoundTrip exercises the io_uring provider in both directions:
// multishot-recv ingress and linked-send egress.
func TestURingRoundTrip(t *testing.T) {
	bc, cl := dialProviderPair(t, "uring")
	const count = 5
	for i := 0; i < count; i++ {
		if _, err := cl.Write([]byte(fmt.Sprintf("in-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	wantSrc, _ := CompressUDPAddr(cl.LocalAddr().(*net.UDPAddr))
	msgs := make([]Message, DefaultBatch)
	for i := range msgs {
		msgs[i].Buf = make([]byte, 0, DefaultBufSize)
	}
	deadline := time.Now().Add(5 * time.Second)
	got := 0
	for got < count {
		if time.Now().After(deadline) {
			t.Fatalf("read %d/%d datagrams before timeout", got, count)
		}
		n, err := bc.ReadBatch(msgs[: count-got : count-got])
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if want := fmt.Sprintf("in-%d", got+i); string(msgs[i].Buf) != want {
				t.Fatalf("datagram %d = %q, want %q", got+i, msgs[i].Buf, want)
			}
			if msgs[i].Addr != wantSrc {
				t.Fatalf("datagram %d src = %v, want %v", got+i, msgs[i].Addr, wantSrc)
			}
			msgs[i].Buf = msgs[i].Buf[:0]
		}
		got += n
	}
	out := make([]Message, count)
	for i := range out {
		out[i] = Message{Buf: []byte(fmt.Sprintf("out-%d", i)), Addr: wantSrc}
	}
	sent := 0
	for sent < count {
		n, err := bc.WriteBatch(out[sent:])
		if err != nil {
			t.Fatalf("WriteBatch after %d: %v", sent, err)
		}
		if n == 0 {
			t.Fatal("WriteBatch made no progress")
		}
		sent += n
	}
	cl.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	for i := 0; i < count; i++ {
		rn, err := cl.Read(buf)
		if err != nil {
			t.Fatalf("client read %d: %v", i, err)
		}
		if want := fmt.Sprintf("out-%d", i); string(buf[:rn]) != want {
			t.Fatalf("client got %q, want %q", buf[:rn], want)
		}
	}
}

// TestURingWriteBatchErrorCount pins the linked-send error contract to
// the same shape as sendmmsg: the failing datagram is msgs[n], the prefix
// before it was transmitted, and the cancelled tail retries cleanly.
func TestURingWriteBatchErrorCount(t *testing.T) {
	bc, cl := dialProviderPair(t, "uring")
	good, _ := CompressUDPAddr(cl.LocalAddr().(*net.UDPAddr))
	bad := netem.Addr{Host: 0xFFFFFFFF, Port: 9} // broadcast without SO_BROADCAST → EACCES
	msgs := []Message{
		{Buf: []byte("doomed"), Addr: bad},
		{Buf: []byte("fine"), Addr: good},
	}
	n, err := bc.WriteBatch(msgs)
	if err == nil {
		t.Skip("kernel accepted a broadcast send without SO_BROADCAST; cannot provoke the error path")
	}
	if n != 0 {
		t.Fatalf("WriteBatch error count = %d, want 0 (the failing datagram is msgs[n])", n)
	}
	if n2, err := bc.WriteBatch(msgs[n+1:]); err != nil || n2 != 1 {
		t.Fatalf("retry after dropping the failing datagram = %d, %v", n2, err)
	}
	cl.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	rn, err := cl.Read(buf)
	if err != nil || string(buf[:rn]) != "fine" {
		t.Fatalf("surviving datagram = %q, %v", buf[:rn], err)
	}
}

// TestProviderOversizedRead is the regression test for the slot-sizing
// fix: an oversized-but-legitimate datagram (bigger than the MTU-derived
// pool class but within the provider's declared ReadSlotSize) must arrive
// whole. Before per-provider slot sizing it would truncate, fail the
// AEAD, and every retransmission of it would fail the same way.
func TestProviderOversizedRead(t *testing.T) {
	for _, provider := range []string{"gso", "uring"} {
		t.Run(provider, func(t *testing.T) {
			bc, cl := dialProviderPair(t, provider)
			want := ReadSlotSize(bc, DefaultBufSize)
			if want <= DefaultBufSize {
				t.Fatalf("provider %s must declare a super slot size, got %d", provider, want)
			}
			payload := bytes.Repeat([]byte{0x5a}, 5000) // > DefaultBufSize, < loopback MTU
			if _, err := cl.Write(payload); err != nil {
				t.Fatal(err)
			}
			pool := NewPool(DefaultBufSize, 8)
			pool.EnableSuper(want, 8)
			msgs := []Message{{Buf: pool.GetSized(want)}}
			deadline := time.Now().Add(5 * time.Second)
			for {
				if time.Now().After(deadline) {
					t.Fatal("datagram never arrived")
				}
				n, err := bc.ReadBatch(msgs)
				if err != nil {
					t.Fatal(err)
				}
				if n == 1 {
					break
				}
			}
			if !bytes.Equal(msgs[0].Buf, payload) {
				t.Fatalf("oversized datagram truncated: got %d bytes, want %d",
					len(msgs[0].Buf), len(payload))
			}
		})
	}
}

// Alloc guards for the new hot paths (named in CI's alloc gate).

// TestGSOWriteBatchAllocFree pins the coalescing egress path at zero heap
// allocations per WriteBatch call.
func TestGSOWriteBatchAllocFree(t *testing.T) {
	bc, cl := dialProviderPair(t, "gso")
	dst, _ := CompressUDPAddr(cl.LocalAddr().(*net.UDPAddr))
	payload := bytes.Repeat([]byte{'w'}, 256)
	msgs := []Message{
		{Buf: payload, Addr: dst},
		{Buf: payload, Addr: dst},
		{Buf: payload, Addr: dst},
	}
	drain := make([]byte, 2048)
	allocs := testing.AllocsPerRun(100, func() {
		sent := 0
		for sent < len(msgs) {
			n, err := bc.WriteBatch(msgs[sent:])
			if err != nil {
				t.Fatal(err)
			}
			sent += n
		}
	})
	cl.SetReadDeadline(time.Now().Add(time.Second))
	for {
		if _, err := cl.Read(drain); err != nil {
			break
		}
	}
	if allocs > 0 {
		t.Fatalf("GSO WriteBatch steady state = %.1f allocs/call, want 0", allocs)
	}
}

// TestGSOReadBatchAllocFree pins the GRO split ingress path at zero heap
// allocations per ReadBatch call.
func TestGSOReadBatchAllocFree(t *testing.T) {
	bc, cl := dialProviderPair(t, "gso")
	msgs := make([]Message, 4)
	pool := NewPool(DefaultBufSize, 16)
	for i := range msgs {
		msgs[i].Buf = pool.Get()
	}
	payload := []byte("x")
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := cl.Write(payload); err != nil {
			t.Fatal(err)
		}
		for {
			n, err := bc.ReadBatch(msgs)
			if err != nil {
				t.Fatal(err)
			}
			if n > 0 {
				for i := 0; i < n; i++ {
					pool.Put(msgs[i].Buf)
					msgs[i].Buf = pool.Get()
				}
				break
			}
		}
	})
	if allocs > 0 {
		t.Fatalf("GSO ReadBatch steady state = %.1f allocs/call, want 0", allocs)
	}
}

// TestURingWriteBatchAllocFree pins the linked-send path at zero heap
// allocations per WriteBatch call.
func TestURingWriteBatchAllocFree(t *testing.T) {
	bc, cl := dialProviderPair(t, "uring")
	dst, _ := CompressUDPAddr(cl.LocalAddr().(*net.UDPAddr))
	payload := bytes.Repeat([]byte{'u'}, 256)
	msgs := []Message{
		{Buf: payload, Addr: dst},
		{Buf: payload, Addr: dst},
	}
	drain := make([]byte, 2048)
	allocs := testing.AllocsPerRun(100, func() {
		sent := 0
		for sent < len(msgs) {
			n, err := bc.WriteBatch(msgs[sent:])
			if err != nil {
				t.Fatal(err)
			}
			sent += n
		}
	})
	cl.SetReadDeadline(time.Now().Add(time.Second))
	for {
		if _, err := cl.Read(drain); err != nil {
			break
		}
	}
	if allocs > 0 {
		t.Fatalf("io_uring WriteBatch steady state = %.1f allocs/call, want 0", allocs)
	}
}

// TestURingReadBatchAllocFree pins the completion-harvest ingress path at
// zero heap allocations per ReadBatch call.
func TestURingReadBatchAllocFree(t *testing.T) {
	bc, cl := dialProviderPair(t, "uring")
	msgs := make([]Message, 4)
	pool := NewPool(DefaultBufSize, 16)
	for i := range msgs {
		msgs[i].Buf = pool.Get()
	}
	payload := []byte("x")
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := cl.Write(payload); err != nil {
			t.Fatal(err)
		}
		for {
			n, err := bc.ReadBatch(msgs)
			if err != nil {
				t.Fatal(err)
			}
			if n > 0 {
				for i := 0; i < n; i++ {
					pool.Put(msgs[i].Buf)
					msgs[i].Buf = pool.Get()
				}
				break
			}
		}
	})
	if allocs > 0 {
		t.Fatalf("io_uring ReadBatch steady state = %.1f allocs/call, want 0", allocs)
	}
}
