// Package tcpsim is a simplified TCP implementation over the emulated
// network, built as the substrate for the SSH baseline in the paper's
// evaluation (§4). It reproduces the TCP mechanisms that dominate SSH's
// interactive latency on bad networks:
//
//   - reliable, in-order delivery with cumulative acks;
//   - retransmission timeout per RFC 6298 with TCP's one-second floor and
//     exponential backoff — the source of the "huge delays" the paper
//     measures under loss (SSP lowers the floor to 50 ms instead);
//   - slow start and congestion avoidance with fast retransmit on three
//     duplicate acks; interactive flows rarely have enough data in flight
//     to trigger it, which is exactly the paper's point (§2.2);
//   - head-of-line blocking: nothing after a lost byte is delivered until
//     the gap is repaired.
//
// A second use is the bulk "concurrent TCP download" flow that fills the
// LTE bottleneck buffer in the bufferbloat experiment.
package tcpsim

import (
	"encoding/binary"
	"math"
	"time"

	"repro/internal/netem"
	"repro/internal/simclock"
)

// Config parameterizes a connection endpoint.
type Config struct {
	// Sched drives timers (and supplies the clock).
	Sched *simclock.Scheduler
	// Link carries outgoing segments; the peer's address is Remote.
	Link *netem.Link
	// Local, Remote are the endpoint addresses.
	Local, Remote netem.Addr
	// Deliver receives in-order application bytes.
	Deliver func(data []byte)
	// MSS is the maximum segment payload (default 1200).
	MSS int
	// MinRTO is the retransmission-timeout floor (default: TCP's 1 s;
	// the ablation bench lowers it to SSP's 50 ms to isolate that design
	// choice).
	MinRTO time.Duration
	// MaxRTO caps exponential backoff (default 60 s, as in Linux).
	MaxRTO time.Duration
	// InitialCwnd in segments (default 10, like modern Linux).
	InitialCwnd int
	// Beta is the multiplicative-decrease factor on loss (default 0.7,
	// CUBIC's value; Reno would be 0.5).
	Beta float64
	// CAGain scales congestion-avoidance growth relative to Reno's one
	// MSS per RTT (default 4, approximating CUBIC's faster reprobing of
	// a previously-achieved window on long-queue paths).
	CAGain float64
	// UseCubic switches congestion avoidance to the CUBIC window curve
	// (RFC 8312): wall-clock growth that plateaus near the window where
	// loss last occurred. This is "Linux default TCP (cubic)" from the
	// paper's footnote, and it is what keeps a deep drop-tail buffer
	// standing full under a bulk download even as the queue inflates the
	// RTT — the LTE experiment's bufferbloat.
	UseCubic bool
}

// Stats counts connection activity.
type Stats struct {
	SegmentsSent    int
	SegmentsRcvd    int
	Retransmissions int
	Timeouts        int
	FastRetransmits int
	BytesDelivered  int64
}

// segment header layout: seq(4) ack(4) flags(1) [payload].
const headerLen = 9

const flagData = 1

// Conn is one endpoint of a simplified TCP connection. The "handshake" is
// implicit (both endpoints are constructed knowing each other), matching
// an SSH session that is already established when measurement begins.
type Conn struct {
	cfg Config

	// Send state (byte sequence space).
	sndBuf []byte // unacknowledged + unsent bytes, base sndUna
	sndUna uint32
	sndNxt uint32
	// segEnds tracks the end sequence of each unacked segment: the
	// congestion window is enforced in packets (like Linux), which is
	// what strangles dup-ack traffic after a timeout and produces TCP's
	// deep backoff stalls on interactive flows.
	segEnds  []uint32
	cwnd     float64 // in bytes
	ssthresh float64
	dupAcks  int
	// recoverSeq implements NewReno loss recovery: the window is reduced
	// at most once per loss event (until sndUna passes recoverSeq).
	recoverSeq uint32
	// rtxNext is the retransmission sweep position within a recovery
	// episode: it advances once through the window (approximating SACK)
	// so a mass drop is repaired in one pass rather than one hole per
	// round trip.
	rtxNext   uint32
	rtxTimer  *simclock.EventTimer
	rtxArmed  bool
	backoff   uint
	srtt      float64 // ms
	rttvar    float64
	minRTT    float64 // ms; HyStart-style slow-start exit signal
	haveRTT   bool
	sampleSeq uint32    // sequence being timed
	sampleAt  time.Time // when it was sent
	sampling  bool

	// Receive state.
	rcvNxt uint32
	ooo    map[uint32][]byte

	// CUBIC state.
	wMax       float64
	epochStart time.Time

	stats Stats
}

// New creates a connection endpoint.
func New(cfg Config) *Conn {
	if cfg.MSS == 0 {
		cfg.MSS = 1200
	}
	if cfg.MinRTO == 0 {
		cfg.MinRTO = time.Second // RFC 6298 §2.4
	}
	if cfg.MaxRTO == 0 {
		cfg.MaxRTO = 60 * time.Second
	}
	if cfg.InitialCwnd == 0 {
		cfg.InitialCwnd = 10
	}
	if cfg.Beta == 0 {
		cfg.Beta = 0.7
	}
	if cfg.CAGain == 0 {
		cfg.CAGain = 4
	}
	c := &Conn{
		cfg:      cfg,
		cwnd:     float64(cfg.InitialCwnd * cfg.MSS),
		ssthresh: 1 << 30,
		ooo:      make(map[uint32][]byte),
	}
	c.rtxTimer = cfg.Sched.NewEventTimer(c.onTimeout)
	return c
}

// Stats returns a snapshot of counters.
func (c *Conn) Stats() Stats { return c.stats }

// Outstanding reports bytes sent but not yet acknowledged.
func (c *Conn) Outstanding() int { return int(c.sndNxt - c.sndUna) }

// Buffered reports bytes accepted by Send but not yet acknowledged.
func (c *Conn) Buffered() int { return len(c.sndBuf) }

// RTO returns the current retransmission timeout with backoff applied.
func (c *Conn) RTO() time.Duration {
	var base time.Duration
	if !c.haveRTT {
		base = time.Second // RFC 6298 initial RTO
	} else {
		base = time.Duration((c.srtt + 4*c.rttvar) * float64(time.Millisecond))
	}
	if base < c.cfg.MinRTO {
		base = c.cfg.MinRTO
	}
	rto := base << c.backoff
	if rto > c.cfg.MaxRTO {
		rto = c.cfg.MaxRTO
	}
	return rto
}

// Send queues application data for reliable delivery.
func (c *Conn) Send(data []byte) {
	c.sndBuf = append(c.sndBuf, data...)
	c.trySend()
}

// cwndPackets is the congestion window in whole segments.
func (c *Conn) cwndPackets() int {
	p := int(c.cwnd) / c.cfg.MSS
	if p < 1 {
		p = 1
	}
	return p
}

// trySend transmits as much queued data as the congestion window allows,
// gated both in bytes and in packets.
func (c *Conn) trySend() {
	for {
		inFlight := int(c.sndNxt - c.sndUna)
		if inFlight >= int(c.cwnd) || len(c.segEnds) >= c.cwndPackets() {
			return
		}
		unsent := len(c.sndBuf) - inFlight
		if unsent <= 0 {
			return
		}
		n := unsent
		if n > c.cfg.MSS {
			n = c.cfg.MSS
		}
		if room := int(c.cwnd) - inFlight; n > room {
			n = room
		}
		if n <= 0 {
			return
		}
		payload := c.sndBuf[inFlight : inFlight+n]
		c.transmit(c.sndNxt, payload, false)
		c.sndNxt += uint32(n)
		c.segEnds = append(c.segEnds, c.sndNxt)
	}
}

// transmit sends one data segment and manages the RTT sample and timer.
func (c *Conn) transmit(seq uint32, payload []byte, isRtx bool) {
	buf := make([]byte, headerLen+len(payload))
	binary.BigEndian.PutUint32(buf, seq)
	binary.BigEndian.PutUint32(buf[4:], c.rcvNxt)
	buf[8] = flagData
	copy(buf[headerLen:], payload)
	c.stats.SegmentsSent++
	if isRtx {
		c.stats.Retransmissions++
		if c.sampling && c.sampleSeq == seq {
			c.sampling = false // Karn's algorithm: never time retransmits
		}
	} else if !c.sampling {
		c.sampling = true
		c.sampleSeq = seq
		c.sampleAt = c.cfg.Sched.Now()
	}
	c.cfg.Link.Send(netem.Packet{Src: c.cfg.Local, Dst: c.cfg.Remote, Payload: buf})
	// RFC 6298 (5.1): start the timer when data is put in flight — but
	// only if it is not already running, or new transmissions would
	// postpone a lost segment's timeout indefinitely.
	if !c.rtxArmed || isRtx {
		c.armTimer()
	}
}

// cubicGrow advances the window along the CUBIC curve (RFC 8312):
// W(t) = C·(t−K)³ + Wmax, in segments, with C = 0.4 and
// K = ∛(Wmax·(1−β)/C). Growth is steep far from Wmax and flattens near
// it, so a flow sharing a deep drop-tail buffer hovers at the buffer's
// capacity instead of oscillating between empty and full.
func (c *Conn) cubicGrow() {
	now := c.cfg.Sched.Now()
	if c.epochStart.IsZero() {
		c.epochStart = now
		if c.wMax < c.cwnd {
			c.wMax = c.cwnd
		}
	}
	mss := float64(c.cfg.MSS)
	t := now.Sub(c.epochStart).Seconds()
	wmaxSeg := c.wMax / mss
	const cubicC = 0.4
	k := math.Cbrt(wmaxSeg * (1 - c.cfg.Beta) / cubicC)
	target := (cubicC*math.Pow(t-k, 3) + wmaxSeg) * mss
	if target > c.cwnd {
		// At most one MSS per ack keeps growth ack-clocked.
		c.cwnd += math.Min(target-c.cwnd, mss)
	}
}

// retransmitSweep resends up to maxSegs segments at the sweep position,
// advancing it. Segments the receiver already holds are discarded there;
// the sweep visits each outstanding byte at most once per recovery
// episode, so even a mass drop is repaired in a single self-clocked pass.
func (c *Conn) retransmitSweep(maxSegs int) {
	if c.rtxNext < c.sndUna {
		c.rtxNext = c.sndUna
	}
	for i := 0; i < maxSegs; i++ {
		off := int(c.rtxNext - c.sndUna)
		remaining := c.Outstanding() - off
		if remaining <= 0 {
			return
		}
		n := remaining
		if n > c.cfg.MSS {
			n = c.cfg.MSS
		}
		c.transmit(c.rtxNext, c.sndBuf[off:off+n], true)
		c.rtxNext += uint32(n)
	}
}

func (c *Conn) sendAck() {
	buf := make([]byte, headerLen)
	binary.BigEndian.PutUint32(buf, c.sndNxt)
	binary.BigEndian.PutUint32(buf[4:], c.rcvNxt)
	c.stats.SegmentsSent++
	c.cfg.Link.Send(netem.Packet{Src: c.cfg.Local, Dst: c.cfg.Remote, Payload: buf})
}

func (c *Conn) armTimer() {
	c.rtxArmed = true
	c.rtxTimer.ResetAfter(c.RTO())
}

// onTimeout is the RTO expiry: back off exponentially, collapse the
// window, and retransmit the first unacknowledged segment (RFC 6298 §5).
func (c *Conn) onTimeout() {
	c.rtxArmed = false
	if c.Outstanding() == 0 {
		return
	}
	c.stats.Timeouts++
	c.backoff++
	c.ssthresh = c.cwnd / 2
	if min := float64(2 * c.cfg.MSS); c.ssthresh < min {
		c.ssthresh = min
	}
	c.cwnd = float64(c.cfg.MSS)
	c.dupAcks = 0
	// The timeout opens a fresh recovery episode; the repair sweep
	// restarts at the ack point.
	c.recoverSeq = c.sndNxt
	c.rtxNext = c.sndUna
	c.wMax = c.cwnd
	c.epochStart = time.Time{}
	n := c.Outstanding()
	if n > c.cfg.MSS {
		n = c.cfg.MSS
	}
	c.transmit(c.sndUna, c.sndBuf[:n], true)
}

// Receive processes one incoming segment (wire bytes from the netem
// handler).
func (c *Conn) Receive(pkt []byte) {
	if len(pkt) < headerLen {
		return
	}
	c.stats.SegmentsRcvd++
	seq := binary.BigEndian.Uint32(pkt)
	ack := binary.BigEndian.Uint32(pkt[4:])
	hasData := pkt[8]&flagData != 0
	payload := pkt[headerLen:]

	c.processAck(ack)

	if hasData && len(payload) > 0 {
		c.processData(seq, payload)
		c.sendAck()
	}
}

func (c *Conn) processAck(ack uint32) {
	if ack > c.sndNxt {
		return // nonsense
	}
	if ack > c.sndUna {
		acked := int(ack - c.sndUna)
		// RTT sample (only for never-retransmitted segments).
		if c.sampling && ack > c.sampleSeq {
			ms := float64(c.cfg.Sched.Now().Sub(c.sampleAt).Milliseconds())
			if !c.haveRTT {
				c.srtt, c.rttvar, c.minRTT, c.haveRTT = ms, ms/2, ms, true
			} else {
				d := c.srtt - ms
				if d < 0 {
					d = -d
				}
				c.rttvar = 0.75*c.rttvar + 0.25*d
				c.srtt = 0.875*c.srtt + 0.125*ms
				if ms < c.minRTT {
					c.minRTT = ms
				}
			}
			c.sampling = false
			// HyStart-style delay signal: building queue ends slow start
			// before the window wildly overshoots the path.
			if c.cwnd < c.ssthresh && c.minRTT > 0 && c.srtt > 3*c.minRTT {
				c.ssthresh = c.cwnd
			}
		}
		c.sndUna = ack
		c.sndBuf = c.sndBuf[acked:]
		for len(c.segEnds) > 0 && c.segEnds[0] <= ack {
			c.segEnds = c.segEnds[1:]
		}
		c.backoff = 0
		c.dupAcks = 0
		// Congestion control: slow start, then additive increase. Growth
		// is per-ACK in MSS units (packet-counted, like Linux) so
		// interactive flows with tiny segments recover at the same pace
		// as bulk flows.
		switch {
		case c.cwnd < c.ssthresh:
			c.cwnd += float64(c.cfg.MSS)
		case c.cfg.UseCubic:
			c.cubicGrow()
		default:
			c.cwnd += c.cfg.CAGain * float64(c.cfg.MSS) * float64(c.cfg.MSS) / c.cwnd
		}
		if c.Outstanding() == 0 {
			c.rtxTimer.Stop()
			c.rtxArmed = false
		} else {
			// RFC 6298 (5.3): restart the timer when new data is acked.
			c.armTimer()
			// Partial ack during recovery: continue the repair sweep
			// rather than waiting one round trip per hole, which no
			// SACK-era TCP suffers. If the sweep already covered the
			// window but holes remain (retransmissions were dropped
			// too), start another pass.
			if ack <= c.recoverSeq {
				if c.rtxNext >= c.sndNxt {
					c.rtxNext = c.sndUna
				}
				c.retransmitSweep(2)
			}
		}
		c.trySend()
		return
	}
	if ack == c.sndUna && c.Outstanding() > 0 {
		c.dupAcks++
		// Modern Linux recovers from isolated loss with early
		// retransmit / SACK-based recovery well before the classic
		// three-dupack threshold; two duplicate acks trigger repair
		// here. The counter resets so a lost retransmission can be
		// repaired again by further duplicates.
		if c.dupAcks >= 2 {
			c.dupAcks = 0
			c.stats.FastRetransmits++
			if c.sndUna > c.recoverSeq {
				// New loss event: reduce once and remember how far the
				// recovery extends (NewReno), then start the repair
				// sweep at the hole.
				c.recoverSeq = c.sndNxt
				c.rtxNext = c.sndUna
				c.wMax = c.cwnd
				c.epochStart = time.Time{}
				c.ssthresh = c.cwnd * c.cfg.Beta
				if min := float64(2 * c.cfg.MSS); c.ssthresh < min {
					c.ssthresh = min
				}
				c.cwnd = c.ssthresh
			}
			c.retransmitSweep(2)
		}
	}
}

func (c *Conn) processData(seq uint32, payload []byte) {
	switch {
	case seq == c.rcvNxt:
		c.deliver(payload)
		// Drain any out-of-order segments that are now contiguous.
		for {
			next, ok := c.ooo[c.rcvNxt]
			if !ok {
				break
			}
			delete(c.ooo, c.rcvNxt)
			c.deliver(next)
		}
	case seq > c.rcvNxt:
		if len(c.ooo) < 4096 {
			c.ooo[seq] = append([]byte(nil), payload...)
		}
	default:
		// Duplicate of already-delivered data: just re-ack.
	}
}

func (c *Conn) deliver(data []byte) {
	c.rcvNxt += uint32(len(data))
	c.stats.BytesDelivered += int64(len(data))
	if c.cfg.Deliver != nil {
		c.cfg.Deliver(data)
	}
}

// Pair wires two connection endpoints over a path, for tests and the
// benchmark harness: a's segments travel path.Up, b's travel path.Down.
func Pair(sched *simclock.Scheduler, net *netem.Network, path *netem.Path,
	aAddr, bAddr netem.Addr, aDeliver, bDeliver func([]byte), minRTO time.Duration) (a, b *Conn) {
	a = New(Config{Sched: sched, Link: path.Up, Local: aAddr, Remote: bAddr, Deliver: aDeliver, MinRTO: minRTO})
	b = New(Config{Sched: sched, Link: path.Down, Local: bAddr, Remote: aAddr, Deliver: bDeliver, MinRTO: minRTO})
	net.Attach(aAddr, func(p netem.Packet) { a.Receive(p.Payload) })
	net.Attach(bAddr, func(p netem.Packet) { b.Receive(p.Payload) })
	return a, b
}
