package tcpsim

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/simclock"
)

var t0 = time.Date(2012, 4, 1, 0, 0, 0, 0, time.UTC)

type fixture struct {
	sched *simclock.Scheduler
	net   *netem.Network
	path  *netem.Path
	a, b  *Conn
	gotA  []byte
	gotB  []byte
}

func newFixture(t *testing.T, params netem.LinkParams) *fixture {
	t.Helper()
	f := &fixture{sched: simclock.NewScheduler(t0)}
	f.net = netem.NewNetwork(f.sched)
	f.path = netem.NewPath(f.net, params, 5)
	aAddr := netem.Addr{Host: 1, Port: 22}
	bAddr := netem.Addr{Host: 2, Port: 22}
	f.a, f.b = Pair(f.sched, f.net, f.path, aAddr, bAddr,
		func(d []byte) { f.gotA = append(f.gotA, d...) },
		func(d []byte) { f.gotB = append(f.gotB, d...) }, 0)
	return f
}

func TestInOrderDelivery(t *testing.T) {
	f := newFixture(t, netem.LinkParams{Delay: 50 * time.Millisecond})
	f.a.Send([]byte("hello "))
	f.a.Send([]byte("world"))
	f.sched.RunFor(time.Second)
	if string(f.gotB) != "hello world" {
		t.Fatalf("delivered %q", f.gotB)
	}
}

func TestBidirectional(t *testing.T) {
	f := newFixture(t, netem.LinkParams{Delay: 30 * time.Millisecond})
	f.a.Send([]byte("ping"))
	f.b.Send([]byte("pong"))
	f.sched.RunFor(time.Second)
	if string(f.gotB) != "ping" || string(f.gotA) != "pong" {
		t.Fatalf("a got %q, b got %q", f.gotA, f.gotB)
	}
}

func TestLargeTransferSegmentsAndReassembles(t *testing.T) {
	f := newFixture(t, netem.LinkParams{Delay: 10 * time.Millisecond})
	data := bytes.Repeat([]byte("0123456789"), 10000) // 100 kB
	f.a.Send(data)
	f.sched.RunFor(10 * time.Second)
	if !bytes.Equal(f.gotB, data) {
		t.Fatalf("delivered %d bytes, want %d", len(f.gotB), len(data))
	}
	if f.a.Stats().SegmentsSent < 80 {
		t.Fatalf("only %d segments for 100kB", f.a.Stats().SegmentsSent)
	}
}

func TestRecoversFromLoss(t *testing.T) {
	f := newFixture(t, netem.LinkParams{Delay: 50 * time.Millisecond, LossProb: 0.29})
	data := bytes.Repeat([]byte("x"), 50000)
	f.a.Send(data)
	f.sched.RunFor(10 * time.Minute)
	if !bytes.Equal(f.gotB, data) {
		t.Fatalf("delivered %d/%d bytes under loss", len(f.gotB), len(data))
	}
	if f.a.Stats().Retransmissions == 0 {
		t.Fatal("no retransmissions under 29% loss")
	}
}

func TestRTOFloorIsOneSecond(t *testing.T) {
	f := newFixture(t, netem.LinkParams{Delay: 10 * time.Millisecond})
	// Warm the RTT estimate (20ms RTT => raw RTO would be tiny).
	f.a.Send([]byte("warmup"))
	f.sched.RunFor(time.Second)
	if got := f.a.RTO(); got != time.Second {
		t.Fatalf("RTO = %v, want TCP's 1s floor", got)
	}
}

func TestExponentialBackoff(t *testing.T) {
	f := newFixture(t, netem.LinkParams{Delay: 10 * time.Millisecond, LossProb: 1.0})
	f.a.Send([]byte("doomed"))
	f.sched.RunFor(40 * time.Second)
	st := f.a.Stats()
	if st.Timeouts < 3 || st.Timeouts > 8 {
		// 1s + 2s + 4s + 8s + 16s... ≈ 5 timeouts in 40s.
		t.Fatalf("timeouts in 40s of blackhole = %d, want ~5 (exponential backoff)", st.Timeouts)
	}
	if got := f.a.RTO(); got < 16*time.Second {
		t.Fatalf("RTO after backoff = %v", got)
	}
}

func TestHeadOfLineBlocking(t *testing.T) {
	// Under loss, the stream must stay intact and in order: nothing
	// after a lost byte is delivered until the gap repairs.
	f := newFixture(t, netem.LinkParams{Delay: 20 * time.Millisecond, LossProb: 0.5})
	payload := bytes.Repeat([]byte("abcdefgh"), 2000)
	f.a.Send(payload)
	f.sched.RunFor(15 * time.Minute)
	if !bytes.Equal(f.gotB, payload) {
		t.Fatalf("stream corrupted: got %d bytes want %d", len(f.gotB), len(payload))
	}
}

func TestFastRetransmit(t *testing.T) {
	// A single early loss in a large transfer should trigger fast
	// retransmit (3 dup acks) rather than waiting out the 1s RTO.
	sched := simclock.NewScheduler(t0)
	nw := netem.NewNetwork(sched)
	path := netem.NewPath(nw, netem.LinkParams{Delay: 20 * time.Millisecond}, 5)
	aAddr := netem.Addr{Host: 1, Port: 22}
	bAddr := netem.Addr{Host: 2, Port: 22}
	var got []byte
	a := New(Config{Sched: sched, Link: path.Up, Local: aAddr, Remote: bAddr})
	b := New(Config{Sched: sched, Link: path.Down, Local: bAddr, Remote: aAddr,
		Deliver: func(d []byte) { got = append(got, d...) }})
	count, dropped := 0, false
	nw.Attach(aAddr, func(p netem.Packet) { a.Receive(p.Payload) })
	nw.Attach(bAddr, func(p netem.Packet) {
		count++
		if count == 3 && !dropped {
			dropped = true
			return // drop exactly one data segment
		}
		b.Receive(p.Payload)
	})
	data := bytes.Repeat([]byte("z"), 30000)
	a.Send(data)
	sched.RunFor(5 * time.Second)
	if !bytes.Equal(got, data) {
		t.Fatalf("got %d bytes want %d", len(got), len(data))
	}
	if a.Stats().FastRetransmits == 0 {
		t.Fatal("loss repaired without fast retransmit")
	}
	if a.Stats().Timeouts > 0 {
		t.Fatal("RTO fired despite dup-ack availability")
	}
}

func TestCustomMinRTO(t *testing.T) {
	sched := simclock.NewScheduler(t0)
	nw := netem.NewNetwork(sched)
	path := netem.NewPath(nw, netem.LinkParams{Delay: 10 * time.Millisecond}, 5)
	a, _ := Pair(sched, nw, path, netem.Addr{Host: 1}, netem.Addr{Host: 2}, nil, nil, 50*time.Millisecond)
	a.Send([]byte("x"))
	sched.RunFor(time.Second)
	if got := a.RTO(); got >= time.Second {
		t.Fatalf("custom floor ignored: RTO = %v", got)
	}
}

func TestBulkFlowFillsBottleneckQueue(t *testing.T) {
	// The bufferbloat mechanism behind the paper's LTE table: a bulk
	// transfer's cwnd growth fills the drop-tail buffer, adding seconds
	// of queueing delay for everyone sharing it.
	sched := simclock.NewScheduler(t0)
	nw := netem.NewNetwork(sched)
	down := netem.NewLink(nw, netem.LTE(), 9)
	up := netem.NewLink(nw, netem.LTE(), 10)
	aAddr := netem.Addr{Host: 1, Port: 80}
	bAddr := netem.Addr{Host: 2, Port: 80}
	// Bulk data flows "down" (server→client), acks flow "up"; the flow
	// uses CUBIC-style wall-clock growth like sshsim.BulkFlow.
	server := New(Config{Sched: sched, Link: down, Local: bAddr, Remote: aAddr,
		UseCubic: true})
	client := New(Config{Sched: sched, Link: up, Local: aAddr, Remote: bAddr})
	nw.Attach(bAddr, func(p netem.Packet) { server.Receive(p.Payload) })
	nw.Attach(aAddr, func(p netem.Packet) { client.Receive(p.Payload) })

	// Keep the bulk sender saturated.
	chunk := bytes.Repeat([]byte("B"), 64*1024)
	var feed func()
	feed = func() {
		// Keep well more data buffered than the bottleneck queue holds,
		// so cwnd growth (not the application) is the limit.
		if server.Buffered() < 8*1024*1024 {
			server.Send(chunk)
		}
		sched.AfterFunc(10*time.Millisecond, feed)
	}
	sched.AfterFunc(0, feed)
	sched.RunFor(30 * time.Second)

	maxQueue := down.Stats().MaxQueueBytes
	if maxQueue < netem.LTE().QueueBytes/2 {
		t.Fatalf("bulk flow filled only %d of %d queue bytes", maxQueue, netem.LTE().QueueBytes)
	}
	// The queueing delay corresponding to a full buffer at 8 Mbit/s is
	// multiple seconds — the paper's SSH-on-LTE latency.
	if qd := time.Duration(int64(maxQueue) * 8 * int64(time.Second) / netem.LTE().RateBitsPerSec); qd < time.Second {
		t.Fatalf("max queueing delay only %v", qd)
	}
}

func TestInteractiveLatencyUnderLossHasHugeTail(t *testing.T) {
	// The qualitative shape of the paper's loss table for SSH: median
	// okay, mean and σ huge, because a lost keystroke waits out 1s+
	// exponentially backed-off RTOs with no fast-retransmit rescue.
	f := newFixture(t, netem.LinkParams{Delay: 50 * time.Millisecond, LossProb: 0.29})
	var latencies []time.Duration
	sendAt := make(map[int]time.Time)
	delivered := 0
	f.b.cfg.Deliver = func(d []byte) {
		for range d {
			latencies = append(latencies, f.sched.Now().Sub(sendAt[delivered]))
			delivered++
		}
	}
	for i := 0; i < 200; i++ {
		i := i
		f.sched.AfterFunc(time.Duration(i)*250*time.Millisecond, func() {
			sendAt[i] = f.sched.Now()
			f.a.Send([]byte{byte(i)})
		})
	}
	f.sched.RunFor(10 * time.Minute)
	if len(latencies) != 200 {
		t.Fatalf("delivered %d of 200 keystrokes", len(latencies))
	}
	var max time.Duration
	var sum time.Duration
	for _, l := range latencies {
		sum += l
		if l > max {
			max = l
		}
	}
	mean := sum / 200
	if max < 2*time.Second {
		t.Fatalf("max latency %v; expected multi-second RTO stalls", max)
	}
	if mean < 200*time.Millisecond {
		t.Fatalf("mean latency %v suspiciously low for 29%% loss", mean)
	}
}
