package statesync

import "sync/atomic"

// Process-wide apply counters, following terminal.InternedGraphemes'
// idiom for package-level gauges: the state objects are too numerous and
// short-lived to carry per-object meters, but "how much state
// synchronization work is this process doing" is a first-class
// observability question. Published by sessiond's expvar/Prometheus
// exporters.
var (
	screenApplies    atomic.Int64
	screenApplyBytes atomic.Int64
	streamApplies    atomic.Int64
	streamApplyBytes atomic.Int64
)

// ApplyStats reports the process-wide diff application counters: how
// many screen-state diffs (client direction) and user-input-stream diffs
// (server direction) have been applied, and their cumulative wire bytes.
func ApplyStats() (screenCount, screenBytes, streamCount, streamBytes int64) {
	return screenApplies.Load(), screenApplyBytes.Load(),
		streamApplies.Load(), streamApplyBytes.Load()
}
