// Package statesync defines the two state objects Mosh synchronizes with
// SSP (paper §2): the UserStream, a client→server record of everything the
// user has done (keystrokes and window resizes, where the diff carries
// every intervening event), and Complete, the server→client terminal
// screen state (where the diff is only the minimal transformation to the
// newest frame).
package statesync

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// EventType distinguishes user-stream events.
type EventType uint8

const (
	// EventBytes carries user keystrokes, already encoded as the byte
	// sequence the host application should receive.
	EventBytes EventType = 1
	// EventResize reports a client window-size change.
	EventResize EventType = 2
)

// Event is one element of the user input history.
type Event struct {
	Type EventType
	Data []byte // EventBytes
	W, H int    // EventResize
}

func (e Event) clone() Event {
	ne := e
	ne.Data = append([]byte(nil), e.Data...)
	return ne
}

func (e Event) equal(o Event) bool {
	if e.Type != o.Type || e.W != o.W || e.H != o.H || len(e.Data) != len(o.Data) {
		return false
	}
	for i := range e.Data {
		if e.Data[i] != o.Data[i] {
			return false
		}
	}
	return true
}

// UserStream is the client→server SSP object: an append-only event log.
// Acknowledged prefixes are garbage-collected by Subtract; base tracks how
// many events have been subtracted so global indices stay stable.
type UserStream struct {
	base   uint64
	events []Event
}

// NewUserStream returns an empty stream.
func NewUserStream() *UserStream { return &UserStream{} }

// RestoreUserStream returns an empty stream positioned at a persisted
// global size: the restored server's record of how many user events it had
// received (and delivered to the application) when the journal was
// flushed. Diffs carry absolute event indices, so a surviving client
// resynchronizes against it exactly once per event.
func RestoreUserStream(size uint64) *UserStream { return &UserStream{base: size} }

// PushBytes appends a keystroke event.
func (u *UserStream) PushBytes(data []byte) {
	u.events = append(u.events, Event{Type: EventBytes, Data: append([]byte(nil), data...)})
}

// PushResize appends a window-size event.
func (u *UserStream) PushResize(w, h int) {
	u.events = append(u.events, Event{Type: EventResize, W: w, H: h})
}

// Size returns the global event count (including subtracted history).
func (u *UserStream) Size() uint64 { return u.base + uint64(len(u.events)) }

// EventsSince returns the events with global indices >= from. The server
// uses it to feed newly arrived input to the host application exactly once.
func (u *UserStream) EventsSince(from uint64) []Event {
	if from < u.base {
		from = u.base
	}
	idx := from - u.base
	if idx > uint64(len(u.events)) {
		return nil
	}
	return u.events[idx:]
}

// Clone implements transport.State.
func (u *UserStream) Clone() *UserStream {
	n := &UserStream{base: u.base, events: make([]Event, len(u.events))}
	for i := range u.events {
		n.events[i] = u.events[i].clone()
	}
	return n
}

// Equal implements transport.State.
func (u *UserStream) Equal(o *UserStream) bool {
	if u.base != o.base || len(u.events) != len(o.events) {
		return false
	}
	for i := range u.events {
		if !u.events[i].equal(o.events[i]) {
			return false
		}
	}
	return true
}

// DiffFrom implements transport.State: the diff carries every event the
// source lacks (the paper: "for user inputs, the diff contains every
// intervening keystroke").
func (u *UserStream) DiffFrom(src *UserStream) []byte {
	return u.AppendDiff(nil, src)
}

// AppendDiff implements transport.State: DiffFrom appended to a caller-
// reused buffer. The diff leads with the absolute global index of the
// event before its first one, which makes application idempotent by
// position — a receiver holding more of the stream than the source simply
// skips the overlap. That self-verification is what lets a journal-restored
// server apply a surviving client's diff without holding its numbered
// source state (see transport.ResumableState).
func (u *UserStream) AppendDiff(buf []byte, src *UserStream) []byte {
	srcSize := src.Size()
	if srcSize > u.Size() {
		srcSize = u.base // defensive; cannot happen in SSP usage
	}
	newEvents := u.EventsSince(srcSize)
	if len(newEvents) == 0 {
		return buf
	}
	start := u.Size() - uint64(len(newEvents))
	buf = binary.AppendUvarint(buf, start)
	buf = binary.AppendUvarint(buf, uint64(len(newEvents)))
	for _, e := range newEvents {
		buf = append(buf, byte(e.Type))
		switch e.Type {
		case EventBytes:
			buf = binary.AppendUvarint(buf, uint64(len(e.Data)))
			buf = append(buf, e.Data...)
		case EventResize:
			buf = binary.AppendUvarint(buf, uint64(e.W))
			buf = binary.AppendUvarint(buf, uint64(e.H))
		}
	}
	return buf
}

// ErrBadDiff reports a malformed user-stream diff.
var ErrBadDiff = errors.New("statesync: malformed user stream diff")

// Apply implements transport.State. Events the stream already holds (the
// diff's start index plus offset falls at or below Size) are skipped, so
// overlapping diffs — replays across a daemon restart — are applied
// exactly once by global index. A diff starting beyond the stream's size
// is a gap and is refused (it cannot occur between a matched source and
// target; gaps are only ever bridged by ApplyUnknownBase's proven case).
func (u *UserStream) Apply(diff []byte) error {
	if len(diff) == 0 {
		return nil
	}
	streamApplies.Add(1)
	streamApplyBytes.Add(int64(len(diff)))
	start, n := binary.Uvarint(diff)
	if n <= 0 {
		return ErrBadDiff
	}
	if start > u.Size() {
		return fmt.Errorf("%w: diff starts at event %d beyond stream size %d", ErrBadDiff, start, u.Size())
	}
	return u.applyEvents(start, diff[n:])
}

// ApplyUnknownBase implements transport.ResumableState: the diff's source
// state is unknown to this (journal-restored) receiver, but the absolute
// start index makes application safe whenever the diff overlaps or abuts
// what we hold. A diff that starts beyond our size is accepted only when
// ackedSource proves its source state was acknowledged end-to-end — the
// dead incarnation received (and delivered) every event below the start
// index, so the restored stream jumps over the gap rather than
// re-delivering or losing anything; events we hold below the jump were
// all delivered too (the server delivers on receipt), so discarding them
// is safe. An unproven gap is unusable: it may cover events the dead
// process never received, and SSP's fallback to diffing from the acked
// baseline eventually presents a provable diff instead.
func (u *UserStream) ApplyUnknownBase(diff []byte, ackedSource bool) (bool, error) {
	if len(diff) == 0 {
		return false, nil
	}
	start, n := binary.Uvarint(diff)
	if n <= 0 {
		return false, ErrBadDiff
	}
	if start > u.Size() {
		if !ackedSource {
			return false, nil
		}
		u.events = u.events[:0]
		u.base = start
	}
	return true, u.applyEvents(start, diff[n:])
}

// applyEvents decodes the events of a diff starting at global index start,
// skipping any prefix the stream already holds and appending the rest.
func (u *UserStream) applyEvents(start uint64, diff []byte) error {
	count, n := binary.Uvarint(diff)
	if n <= 0 {
		return ErrBadDiff
	}
	diff = diff[n:]
	skip := u.Size() - start // events already held; caller ensured start <= Size
	for i := uint64(0); i < count; i++ {
		if len(diff) < 1 {
			return ErrBadDiff
		}
		t := EventType(diff[0])
		diff = diff[1:]
		var ev Event
		switch t {
		case EventBytes:
			l, n := binary.Uvarint(diff)
			if n <= 0 || uint64(len(diff[n:])) < l {
				return ErrBadDiff
			}
			if i >= skip {
				ev = Event{Type: EventBytes, Data: append([]byte(nil), diff[n:n+int(l)]...)}
			}
			diff = diff[n+int(l):]
		case EventResize:
			w, n := binary.Uvarint(diff)
			if n <= 0 {
				return ErrBadDiff
			}
			diff = diff[n:]
			h, n2 := binary.Uvarint(diff)
			if n2 <= 0 {
				return ErrBadDiff
			}
			diff = diff[n2:]
			ev = Event{Type: EventResize, W: int(w), H: int(h)}
		default:
			return fmt.Errorf("%w: unknown event type %d", ErrBadDiff, t)
		}
		if i >= skip {
			u.events = append(u.events, ev)
		}
	}
	if len(diff) != 0 {
		return ErrBadDiff
	}
	return nil
}

// Subtract implements transport.State: drops the shared prefix with other,
// advancing base so global indices remain stable.
func (u *UserStream) Subtract(other *UserStream) {
	if other.Size() <= u.base {
		return
	}
	drop := other.Size() - u.base
	if drop > uint64(len(u.events)) {
		drop = uint64(len(u.events))
	}
	u.events = append([]Event(nil), u.events[drop:]...)
	u.base += drop
}
