package statesync

import (
	"fmt"
	"testing"
)

// TestSnapshotPoolReuse pins the recycle contract: a snapshot handed back
// through Recycle is reissued by the next Clone with its storage reused,
// and the reissued snapshot matches the live state exactly.
func TestSnapshotPoolReuse(t *testing.T) {
	live := NewComplete(40, 10)
	for i := 0; i < 30; i++ {
		live.Terminal().WriteString(fmt.Sprintf("line %d of session output\r\n", i))
	}

	snap := live.Clone()
	if !snap.Equal(live) {
		t.Fatal("clone differs from live state")
	}
	live.Terminal().WriteString("more output\r\n")
	snap.Recycle()

	snap2 := live.Clone()
	if snap2 != snap {
		t.Fatal("Clone did not reuse the recycled snapshot")
	}
	if !snap2.Equal(live) {
		t.Fatal("reissued snapshot differs from live state")
	}

	// Stale content from its previous life must be gone.
	if got := snap2.Framebuffer().Text(9); got != live.Framebuffer().Text(9) {
		t.Fatalf("reissued snapshot shows stale row: %q", got)
	}

	// A resize retires the shell gracefully: Clone falls back to fresh
	// storage instead of reusing mismatched dimensions.
	snap2.Recycle()
	live.Terminal().Resize(60, 20)
	snap3 := live.Clone()
	if fb := snap3.Framebuffer(); fb.W != 60 || fb.H != 20 {
		t.Fatalf("post-resize clone is %dx%d, want 60x20", fb.W, fb.H)
	}
	if !snap3.Equal(live) {
		t.Fatal("post-resize clone differs from live state")
	}
}

// TestSnapshotPoolBounded keeps Recycle from hoarding: beyond the pool cap
// the shells are simply dropped for the garbage collector.
func TestSnapshotPoolBounded(t *testing.T) {
	live := NewComplete(10, 4)
	var snaps []*Complete
	for i := 0; i < 10; i++ {
		snaps = append(snaps, live.Clone())
	}
	for _, s := range snaps {
		s.Recycle()
	}
	if n := len(live.pool.free); n > maxPooledSnapshots {
		t.Fatalf("pool holds %d shells, cap is %d", n, maxPooledSnapshots)
	}
}

// TestSteadyStateTickZeroAllocWithScrollback is the end-to-end guard for
// the sender's per-tick snapshot path on a deep-scroll session: with the
// snapshot pool warm, clone + recycle costs nothing even with a full
// 1000-line history attached.
func TestSteadyStateTickZeroAllocWithScrollback(t *testing.T) {
	live := NewComplete(80, 24)
	for i := 0; i < 1100; i++ {
		live.Terminal().WriteString(fmt.Sprintf("scrolled line %d\r\n", i))
	}
	// Warm the pool the way the sender does: take snapshots, retire them.
	a, b := live.Clone(), live.Clone()
	a.Recycle()
	b.Recycle()
	prev := live.Clone()
	if avg := testing.AllocsPerRun(200, func() {
		next := live.Clone()
		prev.Recycle()
		prev = next
	}); avg != 0 {
		t.Errorf("steady-state pooled snapshot allocates %v per run, want 0", avg)
	}
}
