package statesync

import (
	"testing"
)

// These tests pin the resumption semantics of the two state objects: the
// user stream's index-verified diffs (exactly-once delivery across a
// daemon restart) and the snapshot-pool behavior receiver-side recycling
// relies on.

func streamWith(n int) *UserStream {
	u := NewUserStream()
	for i := 0; i < n; i++ {
		u.PushBytes([]byte{byte('a' + i)})
	}
	return u
}

// TestUserStreamApplySkipsOverlap: a diff that overlaps events the
// receiver already holds applies only the tail — replays across a restart
// deliver each keystroke exactly once.
func TestUserStreamApplySkipsOverlap(t *testing.T) {
	full := streamWith(8)
	src := streamWith(3)
	diff := full.DiffFrom(src) // events 4..8

	dst := streamWith(5) // already holds 1..5
	if err := dst.Apply(diff); err != nil {
		t.Fatal(err)
	}
	if dst.Size() != 8 {
		t.Fatalf("size = %d, want 8", dst.Size())
	}
	evs := dst.EventsSince(5)
	if len(evs) != 3 || string(evs[0].Data) != "f" || string(evs[2].Data) != "h" {
		t.Fatalf("appended tail wrong: %+v", evs)
	}
	// Full replay of the same diff is a no-op.
	if err := dst.Apply(diff); err != nil {
		t.Fatal(err)
	}
	if dst.Size() != 8 {
		t.Fatalf("size after replay = %d, want 8", dst.Size())
	}
}

// TestUserStreamApplyRejectsGap: a regular Apply must refuse a diff that
// starts beyond the stream (a gap can only be bridged by the proven
// unknown-base path).
func TestUserStreamApplyRejectsGap(t *testing.T) {
	full := streamWith(8)
	src := streamWith(5)
	diff := full.DiffFrom(src) // starts at index 5

	dst := streamWith(3)
	if err := dst.Apply(diff); err == nil {
		t.Fatal("gap diff applied without error")
	}
}

// TestUserStreamApplyUnknownBase covers the journal-restored server's
// resynchronization cases.
func TestUserStreamApplyUnknownBase(t *testing.T) {
	full := streamWith(9)
	mkDiff := func(srcLen int) []byte { return full.DiffFrom(streamWith(srcLen)) }

	t.Run("overlap applies", func(t *testing.T) {
		dst := RestoreUserStream(6) // restored: 6 events delivered
		ok, err := dst.ApplyUnknownBase(mkDiff(4), false)
		if err != nil || !ok {
			t.Fatalf("ok=%v err=%v", ok, err)
		}
		if dst.Size() != 9 {
			t.Fatalf("size = %d, want 9", dst.Size())
		}
		evs := dst.EventsSince(6)
		if len(evs) != 3 || string(evs[0].Data) != "g" {
			t.Fatalf("tail wrong: %+v", evs)
		}
	})
	t.Run("acked gap jumps", func(t *testing.T) {
		// The journal is older than the client's acknowledged base: events
		// 4..6 were provably delivered by the dead process; jump them.
		dst := RestoreUserStream(3)
		ok, err := dst.ApplyUnknownBase(mkDiff(6), true)
		if err != nil || !ok {
			t.Fatalf("ok=%v err=%v", ok, err)
		}
		if dst.Size() != 9 {
			t.Fatalf("size = %d, want 9", dst.Size())
		}
		if evs := dst.EventsSince(0); len(evs) != 3 || string(evs[0].Data) != "g" {
			t.Fatalf("jump delivered wrong events: %+v", evs)
		}
	})
	t.Run("unacked gap is unusable", func(t *testing.T) {
		// An optimistically assumed (never acknowledged) base may cover
		// events the dead process never received; jumping would lose
		// keystrokes. Unusable — SSP falls back to the acked base.
		dst := RestoreUserStream(3)
		ok, err := dst.ApplyUnknownBase(mkDiff(6), false)
		if err != nil || ok {
			t.Fatalf("ok=%v err=%v, want unusable", ok, err)
		}
		if dst.Size() != 3 {
			t.Fatalf("unusable diff mutated the stream: size %d", dst.Size())
		}
	})
	t.Run("acked gap onto non-virgin stream jumps", func(t *testing.T) {
		// A delayed pre-crash replay already appended events up to 9; the
		// surviving client's acknowledged base sits at 15 (everything
		// below it was delivered by the dead incarnation, including our
		// 9). Refusing here would livelock the stream — the client has
		// subtracted everything below 15 and can never diff lower.
		dst := RestoreUserStream(3)
		if ok, err := dst.ApplyUnknownBase(mkDiff(3), true); err != nil || !ok {
			t.Fatalf("priming apply: ok=%v err=%v", ok, err)
		}
		big := streamWith(20)
		gapDiff := big.DiffFrom(streamWith(15))
		ok, err := dst.ApplyUnknownBase(gapDiff, true)
		if err != nil || !ok {
			t.Fatalf("acked non-virgin gap: ok=%v err=%v, want jump", ok, err)
		}
		if dst.Size() != 20 {
			t.Fatalf("size = %d, want 20", dst.Size())
		}
		if evs := dst.EventsSince(0); len(evs) != 5 || string(evs[0].Data) != "p" {
			t.Fatalf("jump delivered wrong events: %+v", evs)
		}
		// The unproven version of the same gap stays unusable.
		dst2 := RestoreUserStream(3)
		dst2.ApplyUnknownBase(mkDiff(3), true)
		if ok, _ := dst2.ApplyUnknownBase(gapDiff, false); ok {
			t.Fatal("unacked non-virgin gap applied")
		}
	})
}

// TestCompleteRecycleFeedsClone pins the pool identity the receiver-side
// Recycler wiring relies on: a recycled snapshot's shell is reused by the
// next Clone in the same family.
func TestCompleteRecycleFeedsClone(t *testing.T) {
	live := NewComplete(80, 24)
	snap := live.Clone()
	live.Terminal().WriteString("hello")
	snap.Recycle()
	again := live.Clone()
	if again != snap {
		t.Fatal("recycled snapshot shell was not reused by the next Clone")
	}
	if !again.Equal(live) {
		t.Fatal("reused clone does not equal the live state")
	}
}
