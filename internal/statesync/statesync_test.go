package statesync

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestUserStreamDiffApply(t *testing.T) {
	a := NewUserStream()
	a.PushBytes([]byte("ls"))
	a.PushResize(80, 24)
	a.PushBytes([]byte("\r"))

	b := NewUserStream()
	diff := a.DiffFrom(b)
	if err := b.Apply(diff); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("apply(diff) did not reproduce the stream")
	}
	ev := b.EventsSince(0)
	if len(ev) != 3 || ev[0].Type != EventBytes || string(ev[0].Data) != "ls" ||
		ev[1].Type != EventResize || ev[1].W != 80 || ev[1].H != 24 {
		t.Fatalf("events = %+v", ev)
	}
}

func TestUserStreamIncrementalDiff(t *testing.T) {
	a := NewUserStream()
	a.PushBytes([]byte("ab"))
	b := a.Clone()
	a.PushBytes([]byte("c"))
	a.PushBytes([]byte("d"))
	diff := a.DiffFrom(b)
	if err := b.Apply(diff); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("incremental diff failed")
	}
}

func TestUserStreamEmptyDiff(t *testing.T) {
	a := NewUserStream()
	a.PushBytes([]byte("x"))
	if d := a.DiffFrom(a.Clone()); d != nil {
		t.Fatalf("diff against self = %v", d)
	}
	if err := a.Apply(nil); err != nil {
		t.Fatal(err)
	}
}

func TestUserStreamSubtract(t *testing.T) {
	a := NewUserStream()
	a.PushBytes([]byte("one"))
	a.PushBytes([]byte("two"))
	prefix := a.Clone()
	a.PushBytes([]byte("three"))
	a.Subtract(prefix)
	if a.Size() != 3 {
		t.Fatalf("global size after subtract = %d, want 3", a.Size())
	}
	ev := a.EventsSince(0)
	if len(ev) != 1 || string(ev[0].Data) != "three" {
		t.Fatalf("events after subtract = %+v", ev)
	}
	// Diffs against subtracted clones must still work.
	b := prefix.Clone()
	if err := b.Apply(a.DiffFrom(prefix)); err != nil {
		t.Fatal(err)
	}
	if b.Size() != 3 {
		t.Fatalf("size after applying post-subtract diff = %d", b.Size())
	}
}

func TestUserStreamEventsSinceIndices(t *testing.T) {
	a := NewUserStream()
	for i := 0; i < 5; i++ {
		a.PushBytes([]byte{byte('a' + i)})
	}
	ev := a.EventsSince(3)
	if len(ev) != 2 || string(ev[0].Data) != "d" {
		t.Fatalf("EventsSince(3) = %+v", ev)
	}
	if got := a.EventsSince(99); got != nil {
		t.Fatalf("EventsSince past end = %+v", got)
	}
}

func TestUserStreamBadDiffs(t *testing.T) {
	u := NewUserStream()
	for _, d := range [][]byte{
		{0x01},             // count=1 but no event
		{0x01, 0x07},       // unknown type
		{0x01, 0x01, 0x05}, // bytes event with truncated payload
	} {
		if err := u.Clone().Apply(d); err == nil {
			t.Fatalf("accepted bad diff %v", d)
		}
	}
}

func TestUserStreamDiffApplyProperty(t *testing.T) {
	f := func(chunks [][]byte, split uint8) bool {
		full := NewUserStream()
		for _, c := range chunks {
			full.PushBytes(c)
		}
		cut := int(split) % (len(chunks) + 1)
		partial := NewUserStream()
		for _, c := range chunks[:cut] {
			partial.PushBytes(c)
		}
		if err := partial.Apply(full.DiffFrom(partial)); err != nil {
			return false
		}
		return partial.Equal(full)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCompleteDiffApply(t *testing.T) {
	server := NewComplete(40, 10)
	server.Terminal().WriteString("login$ make\r\ncompiling...")
	client := NewComplete(40, 10)
	if err := client.Apply(server.DiffFrom(client)); err != nil {
		t.Fatal(err)
	}
	if !client.Equal(server) {
		t.Fatal("screen state did not converge")
	}
	if got := strings.TrimRight(client.Framebuffer().Text(1), " "); got != "compiling..." {
		t.Fatalf("row 1 = %q", got)
	}
}

func TestCompleteIncrementalDiffIsSmall(t *testing.T) {
	server := NewComplete(80, 24)
	server.Terminal().WriteString(strings.Repeat("some long line of text here\r\n", 20))
	client := server.Clone()
	server.Terminal().WriteString("x") // one echoed character
	diff := server.DiffFrom(client)
	if len(diff) > 64 {
		t.Fatalf("one-character diff is %d bytes", len(diff))
	}
	if err := client.Apply(diff); err != nil {
		t.Fatal(err)
	}
	if !client.Equal(server) {
		t.Fatal("did not converge")
	}
}

func TestCompleteSkipsIntermediateStates(t *testing.T) {
	server := NewComplete(80, 24)
	old := server.Clone()
	// A runaway process floods the screen...
	for i := 0; i < 5000; i++ {
		server.Terminal().WriteString("flooding the terminal with output!\r\n")
	}
	// ...but the diff to the newest state stays bounded by screen size.
	diff := server.DiffFrom(old)
	if len(diff) > 24*80*8 {
		t.Fatalf("diff after 5000 lines is %d bytes; must be bounded by screen", len(diff))
	}
	if err := old.Apply(diff); err != nil {
		t.Fatal(err)
	}
	if !old.Equal(server) {
		t.Fatal("did not converge")
	}
}

func TestCompleteResizePropagates(t *testing.T) {
	server := NewComplete(80, 24)
	server.Terminal().WriteString("content")
	client := server.Clone()
	server.Terminal().Resize(120, 40)
	server.Terminal().WriteString(" more")
	if err := client.Apply(server.DiffFrom(client)); err != nil {
		t.Fatal(err)
	}
	if client.Framebuffer().W != 120 || client.Framebuffer().H != 40 {
		t.Fatalf("client size %dx%d", client.Framebuffer().W, client.Framebuffer().H)
	}
	if !client.Equal(server) {
		t.Fatal("did not converge after resize")
	}
}

func TestCompleteEchoAckSync(t *testing.T) {
	server := NewComplete(20, 5)
	client := server.Clone()
	if server.SetEchoAck(7) != true {
		t.Fatal("SetEchoAck should report change")
	}
	if server.SetEchoAck(7) {
		t.Fatal("SetEchoAck repeated should report no change")
	}
	if server.Equal(client) {
		t.Fatal("echo ack change must dirty the state")
	}
	if err := client.Apply(server.DiffFrom(client)); err != nil {
		t.Fatal(err)
	}
	if client.EchoAck() != 7 || !client.Equal(server) {
		t.Fatalf("echo ack = %d", client.EchoAck())
	}
}

func TestCompleteCloneIndependence(t *testing.T) {
	a := NewComplete(20, 5)
	a.Terminal().WriteString("aaa")
	b := a.Clone()
	a.Terminal().WriteString("bbb")
	if b.Equal(a) {
		t.Fatal("clone tracked later writes")
	}
}

func TestCompleteDiffChainConvergence(t *testing.T) {
	// Simulate the receiver applying a chain of diffs across many
	// distinct screen evolutions.
	server := NewComplete(60, 12)
	client := NewComplete(60, 12)
	scripts := []string{
		"plain text\r\n",
		"\x1b[2J\x1b[H\x1b[1;33mfull redraw\x1b[0m",
		"\x1b[5;5H日本語 wide",
		"\x1b[2;10r\x1b[2;1Hscroll region\n\n\x1b[r",
		"\x1b]2;title\a\a",
		"\x1b[?25l\x1b[?1h",
		strings.Repeat("flood\r\n", 40),
	}
	for _, s := range scripts {
		server.Terminal().WriteString(s)
		if err := client.Apply(server.DiffFrom(client)); err != nil {
			t.Fatal(err)
		}
		if !client.Equal(server) {
			t.Fatalf("diverged after script %q", s)
		}
	}
}

func TestUserStreamDiffBytesExact(t *testing.T) {
	// The paper requires the user-input diff to carry every intervening
	// keystroke — verify byte content survives.
	a := NewUserStream()
	payload := []byte{0x03, 0x1b, '[', 'A', 0x7f, 0xc3, 0xa9} // ^C, up-arrow, DEL, é
	a.PushBytes(payload)
	b := NewUserStream()
	b.Apply(a.DiffFrom(b))
	if !bytes.Equal(b.EventsSince(0)[0].Data, payload) {
		t.Fatal("keystroke bytes corrupted in transit")
	}
}
