package statesync

import (
	"encoding/binary"

	"repro/internal/terminal"
)

// Complete is the server→client SSP object: the complete terminal state.
// Its diff is a small header (dimensions and the echo ack) followed by the
// minimal ANSI byte string that transforms the source screen into this one
// (computed by terminal.NewFrame) — so intermediate screen states are never
// transmitted, which is what keeps "Control-C" working within an RTT on a
// flooded terminal (paper §1, §2.3).
type Complete struct {
	emu *terminal.Emulator
	// fw holds the diff renderer's reusable scratch (scroll-detection
	// tables, blank baseline row). It is per-Complete, not cloned: the
	// sender diffs from its live object, so the scratch warms up there
	// and every subsequent frame renders without heap allocations.
	fw terminal.FrameWriter
	// pool is the snapshot free list shared by this Complete and every
	// clone derived from it (lazily created on first Clone). The transport
	// sender recycles retired snapshots (transport.Recycler), Clone reuses
	// their storage via Framebuffer.CloneInto, and the steady-state
	// snapshot churn of a session allocates nothing. Like the rest of the
	// state machinery it is single-owner: a Complete family lives on one
	// goroutine.
	pool *snapshotPool
}

// snapshotPool recycles retired snapshot Completes within one session.
type snapshotPool struct {
	free []*Complete
}

// maxPooledSnapshots bounds the free list; the sender's steady state
// retires about as many snapshots per tick as it takes.
const maxPooledSnapshots = 4

// NewComplete returns a blank terminal state of the given size.
func NewComplete(w, h int) *Complete {
	return &Complete{emu: terminal.NewEmulator(w, h)}
}

// NewCompleteWithFramebuffer wraps an existing screen state — a framebuffer
// decoded from a session journal — as the live terminal state. The
// framebuffer's storage is freshly owned (terminal.DecodeSnapshot allocates
// everything it returns), so no pooled or shared object leaks across the
// restore boundary.
func NewCompleteWithFramebuffer(fb *terminal.Framebuffer) *Complete {
	return &Complete{emu: terminal.NewEmulatorWithFramebuffer(fb)}
}

// Terminal exposes the wrapped emulator (the server writes host output to
// it; the client reads the synchronized screen from it).
func (c *Complete) Terminal() *terminal.Emulator { return c.emu }

// Framebuffer exposes the screen state.
func (c *Complete) Framebuffer() *terminal.Framebuffer { return c.emu.Framebuffer() }

// SetEchoAck updates the synchronized echo acknowledgment: the newest
// user-stream state whose keystrokes have been presented to the host
// application for at least the server's echo timeout (§3.2). Returns true
// when the value changed (making the state dirty).
func (c *Complete) SetEchoAck(n uint64) bool {
	if c.emu.Framebuffer().EchoAck == n {
		return false
	}
	c.emu.Framebuffer().EchoAck = n
	return true
}

// EchoAck reads the synchronized echo acknowledgment.
func (c *Complete) EchoAck() uint64 { return c.emu.Framebuffer().EchoAck }

// Clone implements transport.State. The screen snapshot is copy-on-write
// (terminal.Framebuffer.Clone), so cloning costs O(height) regardless of
// how much of the screen is populated — and when a recycled snapshot is
// available its storage is reused outright (Framebuffer.CloneInto), so the
// steady state costs no allocations either. Parser state is not cloned:
// every diff is a self-contained byte string, so a fresh parser is
// equivalent.
func (c *Complete) Clone() *Complete {
	if c.pool == nil {
		c.pool = &snapshotPool{}
	}
	if n := len(c.pool.free); n > 0 {
		d := c.pool.free[n-1]
		c.pool.free[n-1] = nil
		c.pool.free = c.pool.free[:n-1]
		d.emu.SetFramebuffer(c.emu.Framebuffer().CloneInto(d.emu.Framebuffer()))
		return d
	}
	return &Complete{
		emu:  terminal.NewEmulatorWithFramebuffer(c.emu.Framebuffer().Clone()),
		pool: c.pool,
	}
}

// Recycle implements transport.Recycler: the sender hands back snapshots
// it has dropped from its history, and Clone reuses their storage.
func (c *Complete) Recycle() {
	if c.pool == nil || len(c.pool.free) >= maxPooledSnapshots {
		return
	}
	c.pool.free = append(c.pool.free, c)
}

// Equal implements transport.State.
func (c *Complete) Equal(o *Complete) bool {
	return c.emu.Framebuffer().Equal(o.emu.Framebuffer())
}

// DiffFrom implements transport.State.
func (c *Complete) DiffFrom(src *Complete) []byte {
	return c.AppendDiff(nil, src)
}

// AppendDiff implements transport.State: it appends the wire diff to buf
// and returns the extended buffer. With a reused buffer this path performs
// no heap allocations in steady state.
func (c *Complete) AppendDiff(buf []byte, src *Complete) []byte {
	fb, sfb := c.emu.Framebuffer(), src.emu.Framebuffer()
	sameSize := fb.W == sfb.W && fb.H == sfb.H
	buf = binary.AppendUvarint(buf, uint64(fb.W))
	buf = binary.AppendUvarint(buf, uint64(fb.H))
	buf = binary.AppendUvarint(buf, fb.EchoAck)
	return c.fw.AppendFrame(buf, sameSize, sfb, fb)
}

// Apply implements transport.State.
func (c *Complete) Apply(diff []byte) error {
	if len(diff) == 0 {
		return nil
	}
	screenApplies.Add(1)
	screenApplyBytes.Add(int64(len(diff)))
	w, n := binary.Uvarint(diff)
	if n <= 0 {
		return ErrBadDiff
	}
	diff = diff[n:]
	h, n := binary.Uvarint(diff)
	if n <= 0 {
		return ErrBadDiff
	}
	diff = diff[n:]
	echoAck, n := binary.Uvarint(diff)
	if n <= 0 {
		return ErrBadDiff
	}
	diff = diff[n:]
	fb := c.emu.Framebuffer()
	if int(w) != fb.W || int(h) != fb.H {
		c.emu.Resize(int(w), int(h))
	}
	c.emu.Write(diff)
	c.emu.Framebuffer().EchoAck = echoAck
	return nil
}

// Subtract implements transport.State: screen states share no removable
// prefix, so this is a no-op (as in the reference implementation).
func (c *Complete) Subtract(*Complete) {}
