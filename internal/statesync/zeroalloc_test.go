package statesync

import (
	"fmt"
	"testing"
)

// TestCompleteAppendDiffZeroAlloc guards the statesync layer's steady-state
// diff path: with the Complete's own warm FrameWriter and a reused output
// buffer, producing the wire diff (header + ANSI frame) allocates nothing.
func TestCompleteAppendDiffZeroAlloc(t *testing.T) {
	cur := NewComplete(80, 24)
	for i := 0; i < 23; i++ {
		cur.Terminal().WriteString(fmt.Sprintf("line %d of steady-state screen\r\n", i))
	}
	prev := cur.Clone()
	cur.Terminal().WriteString("$")

	var buf []byte
	buf = cur.AppendDiff(buf[:0], prev) // warm the scratch
	if avg := testing.AllocsPerRun(100, func() {
		buf = cur.AppendDiff(buf[:0], prev)
	}); avg != 0 {
		t.Errorf("steady-state AppendDiff allocates %v per run, want 0", avg)
	}
	if len(buf) == 0 {
		t.Fatal("diff unexpectedly empty")
	}

	// The equality probes the sender runs each tick are allocation-free
	// too.
	same := cur.Clone()
	if avg := testing.AllocsPerRun(100, func() {
		if !cur.Equal(same) {
			t.Fatal("states diverged")
		}
	}); avg != 0 {
		t.Errorf("idle-tick Equal allocates %v per run, want 0", avg)
	}
}
