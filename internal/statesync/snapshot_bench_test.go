package statesync

import (
	"fmt"
	"testing"
)

// BenchmarkCompleteCloneDiffTyping measures the full statesync layer cost
// of one sender tick on a typing workload: snapshot the screen state and
// produce the wire diff (header + ANSI frame).
func BenchmarkCompleteCloneDiffTyping(b *testing.B) {
	cur := NewComplete(80, 24)
	for i := 0; i < 23; i++ {
		cur.Terminal().WriteString(fmt.Sprintf("%2d: benchmark warmup line with typical content\r\n", i))
	}
	cur.Terminal().WriteString("$ ")
	prev := cur.Clone()
	keys := []byte("git status && go test ./... ")
	reset := []byte("\r$ \x1b[K")
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur.Terminal().Write(keys[i%len(keys) : i%len(keys)+1])
		if i%len(keys) == len(keys)-1 {
			cur.Terminal().Write(reset)
		}
		buf = cur.AppendDiff(buf[:0], prev)
		prev = cur.Clone()
	}
	benchDiffSink = buf
}

// BenchmarkCompleteClone isolates the snapshot the sender takes for its
// sent-state history on every send.
func BenchmarkCompleteClone(b *testing.B) {
	cur := NewComplete(80, 24)
	for i := 0; i < 23; i++ {
		cur.Terminal().WriteString(fmt.Sprintf("%2d: benchmark warmup line with typical content\r\n", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchCloneSink = cur.Clone()
	}
}

var (
	benchDiffSink  []byte
	benchCloneSink *Complete
)
