package transport

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/simclock"
	"repro/internal/sspcrypto"
)

var t0 = time.Date(2012, 4, 1, 0, 0, 0, 0, time.UTC)

// textState is an append-only byte-stream state with the same diff algebra
// as the real user-input stream: a diff is the suffix of bytes the source
// lacks, and Subtract drops a shared prefix.
type textState struct {
	data []byte
}

func newText() *textState { return &textState{} }

func (s *textState) Append(b []byte) { s.data = append(s.data, b...) }

func (s *textState) Clone() *textState { return &textState{data: bytes.Clone(s.data)} }

func (s *textState) Equal(o *textState) bool { return bytes.Equal(s.data, o.data) }

func (s *textState) DiffFrom(src *textState) []byte {
	return s.AppendDiff(nil, src)
}

func (s *textState) AppendDiff(buf []byte, src *textState) []byte {
	if len(src.data) > len(s.data) || !bytes.Equal(s.data[:len(src.data)], src.data) {
		// Source is not a prefix (cannot happen in SSP's usage); resend all.
		return append(buf, s.data...)
	}
	return append(buf, s.data[len(src.data):]...)
}

func (s *textState) Apply(diff []byte) error {
	s.data = append(s.data, diff...)
	return nil
}

func (s *textState) Subtract(o *textState) {
	n := len(o.data)
	if n > len(s.data) {
		n = len(s.data)
	}
	if bytes.Equal(s.data[:n], o.data[:n]) {
		s.data = append([]byte(nil), s.data[n:]...)
	}
}

// harness wires a client and server Transport over an emulated path and
// pumps both with self-rescheduling tick timers.
type harness struct {
	sched          *simclock.Scheduler
	net            *netem.Network
	path           *netem.Path
	client, server *Transport[*textState, *textState]
	clientAddr     netem.Addr
	serverAddr     netem.Addr
	clientDrops    bool // when true, stop delivering to client (disconnection)
	wirePackets    int
	// wakeClient/wakeServer tick an endpoint and reschedule its pump
	// timer, as a real event loop does after local activity.
	wakeClient, wakeServer func()
}

func newHarness(t *testing.T, params netem.LinkParams, timing *Timing) *harness {
	t.Helper()
	h := &harness{
		sched:      simclock.NewScheduler(t0),
		clientAddr: netem.Addr{Host: 1, Port: 1000},
		serverAddr: netem.Addr{Host: 2, Port: 2000},
	}
	h.net = netem.NewNetwork(h.sched)
	h.path = netem.NewPath(h.net, params, 7)
	key := sspcrypto.Key{1, 2, 3}

	var err error
	h.client, err = New(Config[*textState, *textState]{
		Direction:     sspcrypto.ToServer,
		Key:           key,
		Clock:         h.sched,
		Timing:        timing,
		LocalInitial:  newText(),
		RemoteInitial: newText(),
		Emit: func(wire []byte) {
			h.wirePackets++
			h.path.Up.Send(netem.Packet{Src: h.clientAddr, Dst: h.serverAddr, Payload: wire})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h.server, err = New(Config[*textState, *textState]{
		Direction:     sspcrypto.ToClient,
		Key:           key,
		Clock:         h.sched,
		Timing:        timing,
		LocalInitial:  newText(),
		RemoteInitial: newText(),
		Emit: func(wire []byte) {
			h.wirePackets++
			if dst, ok := h.server.Connection().RemoteAddr(); ok {
				h.path.Down.Send(netem.Packet{Src: h.serverAddr, Dst: dst, Payload: wire})
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	h.net.Attach(h.serverAddr, func(p netem.Packet) {
		h.server.Receive(p.Payload, p.Src)
	})
	h.net.Attach(h.clientAddr, func(p netem.Packet) {
		if !h.clientDrops {
			h.client.Receive(p.Payload, p.Src)
		}
	})

	// Self-rescheduling pumps, mimicking each endpoint's event loop.
	var pumpClient, pumpServer func()
	clientTimer := h.sched.NewEventTimer(func() { pumpClient() })
	serverTimer := h.sched.NewEventTimer(func() { pumpServer() })
	pumpClient = func() {
		h.client.Tick()
		clientTimer.ResetAfter(clampWait(h.client.WaitTime()))
	}
	pumpServer = func() {
		h.server.Tick()
		serverTimer.ResetAfter(clampWait(h.server.WaitTime()))
	}
	h.wakeClient = pumpClient
	h.wakeServer = pumpServer
	h.sched.AfterFunc(0, pumpClient)
	h.sched.AfterFunc(0, pumpServer)

	// Client introduces itself so the server learns its address.
	h.client.Sender().ForceAckSoon()
	return h
}

// clampWait keeps the pump from busy-looping while still being responsive.
func clampWait(d time.Duration) time.Duration {
	const floor = time.Millisecond
	if d < floor {
		return floor
	}
	return d
}

func (h *harness) run(d time.Duration) { h.sched.RunFor(d) }

func TestBasicSynchronizationClientToServer(t *testing.T) {
	h := newHarness(t, netem.LinkParams{Delay: 40 * time.Millisecond}, nil)
	h.run(time.Second)
	h.client.CurrentState().Append([]byte("hello"))
	h.wakeClient()
	h.run(2 * time.Second)
	if got := string(h.server.RemoteState().data); got != "hello" {
		t.Fatalf("server sees %q, want %q", got, "hello")
	}
}

func TestBasicSynchronizationServerToClient(t *testing.T) {
	h := newHarness(t, netem.LinkParams{Delay: 40 * time.Millisecond}, nil)
	h.run(time.Second) // let the client introduce itself first
	h.server.CurrentState().Append([]byte("screen-update"))
	h.wakeServer()
	h.run(2 * time.Second)
	if got := string(h.client.RemoteState().data); got != "screen-update" {
		t.Fatalf("client sees %q", got)
	}
}

func TestBidirectionalConcurrentSync(t *testing.T) {
	h := newHarness(t, netem.LinkParams{Delay: 30 * time.Millisecond}, nil)
	h.run(500 * time.Millisecond)
	for i := 0; i < 20; i++ {
		h.client.CurrentState().Append([]byte("k"))
		h.wakeClient()
		h.server.CurrentState().Append([]byte("echo!"))
		h.wakeServer()
		h.run(57 * time.Millisecond)
	}
	h.run(3 * time.Second)
	if got := len(h.server.RemoteState().data); got != 20 {
		t.Fatalf("server received %d keystroke bytes, want 20", got)
	}
	if got := len(h.client.RemoteState().data); got != 100 {
		t.Fatalf("client received %d echo bytes, want 100", got)
	}
}

func TestConvergenceUnderHeavyLoss(t *testing.T) {
	h := newHarness(t, netem.LinkParams{Delay: 50 * time.Millisecond, LossProb: 0.29}, nil)
	h.run(time.Second)
	want := strings.Repeat("x", 50)
	for i := 0; i < 50; i++ {
		h.client.CurrentState().Append([]byte("x"))
		h.wakeClient()
		h.run(40 * time.Millisecond)
	}
	h.run(20 * time.Second)
	if got := string(h.server.RemoteState().data); got != want {
		t.Fatalf("server converged to %d bytes, want %d", len(got), len(want))
	}
}

func TestSkipsIntermediateStates(t *testing.T) {
	// On a long-RTT path the sender must coalesce many quick changes into
	// few instructions — the receiver should see far fewer distinct
	// states than there were changes.
	h := newHarness(t, netem.LinkParams{Delay: 250 * time.Millisecond}, nil)
	h.run(time.Second)
	for i := 0; i < 100; i++ {
		h.server.CurrentState().Append([]byte("frame"))
		h.wakeServer()
		h.run(5 * time.Millisecond)
	}
	h.run(5 * time.Second)
	if got := len(h.client.RemoteState().data); got != 500 {
		t.Fatalf("client state has %d bytes, want 500", got)
	}
	// 100 changes over 500ms on a 500ms-RTT path: at ~2 frames in flight
	// per RTT the receiver should have seen a small number of jumps.
	if states := h.server.Sender().Stats().Instructions; states > 30 {
		t.Fatalf("sent %d instructions for 100 rapid changes; expected coalescing", states)
	}
}

func TestFrameRateRespectsRTT(t *testing.T) {
	// RTT 500ms → send interval clamped to 250ms; 10 changes in 2.5s
	// should produce at most ~2.5s/250ms + slack instructions.
	h := newHarness(t, netem.LinkParams{Delay: 250 * time.Millisecond}, nil)
	h.run(2 * time.Second) // settle RTT estimate via heartbeats
	base := h.server.Sender().Stats().Instructions
	for i := 0; i < 25; i++ {
		h.server.CurrentState().Append([]byte("y"))
		h.wakeServer()
		h.run(100 * time.Millisecond)
	}
	h.run(2 * time.Second)
	sent := h.server.Sender().Stats().Instructions - base
	if sent > 14 {
		t.Fatalf("sent %d instructions in 2.5s on a 500ms-RTT path; frame rate not limited", sent)
	}
	if got := len(h.client.RemoteState().data); got != 25 {
		t.Fatalf("client has %d bytes, want 25", got)
	}
}

func TestCollectionIntervalCoalescesClumpedWrites(t *testing.T) {
	h := newHarness(t, netem.LinkParams{Delay: 10 * time.Millisecond}, nil)
	h.run(5 * time.Second) // settle: short RTT → send interval at floor
	base := h.server.Sender().Stats().Instructions
	// Three writes 2ms apart land inside one 8ms collection window.
	for i := 0; i < 3; i++ {
		h.server.CurrentState().Append([]byte("w"))
		h.wakeServer()
		h.run(2 * time.Millisecond)
	}
	h.run(time.Second)
	if sent := h.server.Sender().Stats().Instructions - base; sent != 1 {
		t.Fatalf("clumped writes produced %d instructions, want 1", sent)
	}
	if got := len(h.client.RemoteState().data); got != 3 {
		t.Fatalf("client has %d bytes, want 3", got)
	}
}

func TestAcksPruneSenderHistory(t *testing.T) {
	h := newHarness(t, netem.LinkParams{Delay: 20 * time.Millisecond}, nil)
	h.run(500 * time.Millisecond)
	for i := 0; i < 30; i++ {
		h.client.CurrentState().Append([]byte("z"))
		h.wakeClient()
		h.run(300 * time.Millisecond)
	}
	h.run(2 * time.Second)
	if n := h.client.Sender().SentStateCount(); n > 3 {
		t.Fatalf("sender retains %d states after full acknowledgment", n)
	}
	// The append-only stream must also have been garbage collected.
	if n := len(h.client.CurrentState().data); n != 0 {
		t.Fatalf("current state retains %d acked bytes; Subtract GC failed", n)
	}
}

func TestHeartbeatsWhenIdle(t *testing.T) {
	h := newHarness(t, netem.LinkParams{Delay: 20 * time.Millisecond}, nil)
	h.run(500 * time.Millisecond)
	before := h.client.Sender().Stats().EmptyAcks
	h.run(10 * time.Second)
	after := h.client.Sender().Stats().EmptyAcks
	// ~3s heartbeat interval → about 3 heartbeats in 10s.
	if got := after - before; got < 2 || got > 6 {
		t.Fatalf("sent %d heartbeats in 10 idle seconds, want ~3", got)
	}
}

func TestLargeDiffFragmentsAndReassembles(t *testing.T) {
	h := newHarness(t, netem.LinkParams{Delay: 20 * time.Millisecond}, nil)
	h.run(500 * time.Millisecond)
	big := bytes.Repeat([]byte("0123456789"), 1000) // 10 kB > MTU
	h.server.CurrentState().Append(big)
	h.wakeServer()
	h.run(3 * time.Second)
	if !bytes.Equal(h.client.RemoteState().data, big) {
		t.Fatalf("client has %d bytes, want %d", len(h.client.RemoteState().data), len(big))
	}
}

func TestReconnectAfterSilence(t *testing.T) {
	h := newHarness(t, netem.LinkParams{Delay: 20 * time.Millisecond}, nil)
	h.run(500 * time.Millisecond)
	// Client goes dark (e.g. suspended laptop) while the server's state
	// keeps changing.
	h.clientDrops = true
	h.server.CurrentState().Append([]byte("missed-while-away"))
	h.wakeServer()
	h.run(30 * time.Second)
	h.clientDrops = false
	// More activity plus heartbeats should fast-forward the client.
	h.server.CurrentState().Append([]byte("+back"))
	h.wakeServer()
	h.run(10 * time.Second)
	if got := string(h.client.RemoteState().data); got != "missed-while-away+back" {
		t.Fatalf("client state after reconnect = %q", got)
	}
}

func TestRoamingMidSession(t *testing.T) {
	h := newHarness(t, netem.LinkParams{Delay: 20 * time.Millisecond}, nil)
	h.run(500 * time.Millisecond)
	h.client.CurrentState().Append([]byte("before"))
	h.wakeClient()
	h.run(time.Second)

	// Client roams: new address, same session.
	newAddr := netem.Addr{Host: 77, Port: 7777}
	h.net.Detach(h.clientAddr)
	h.clientAddr = newAddr
	h.net.Attach(newAddr, func(p netem.Packet) {
		if !h.clientDrops {
			h.client.Receive(p.Payload, p.Src)
		}
	})

	h.client.CurrentState().Append([]byte("+after"))
	h.wakeClient()
	h.run(2 * time.Second)
	if got := string(h.server.RemoteState().data); got != "before+after" {
		t.Fatalf("server state after roam = %q", got)
	}
	if h.server.Connection().RemoteAddrChanges() != 1 {
		t.Fatalf("server observed %d roams, want 1", h.server.Connection().RemoteAddrChanges())
	}
	// And the server can still reach the client at its new address.
	h.server.CurrentState().Append([]byte("reply"))
	h.wakeServer()
	h.run(2 * time.Second)
	if got := string(h.client.RemoteState().data); got != "reply" {
		t.Fatalf("client did not hear server after roam: %q", got)
	}
}

func TestWaitTimeBounded(t *testing.T) {
	h := newHarness(t, netem.LinkParams{Delay: 20 * time.Millisecond}, nil)
	h.run(time.Second)
	if w := h.client.WaitTime(); w > DefaultTiming().HeartbeatInterval {
		t.Fatalf("idle wait time %v exceeds heartbeat interval", w)
	}
	h.client.CurrentState().Append([]byte("x"))
	if w := h.client.WaitTime(); w > DefaultTiming().SendIntervalMax {
		t.Fatalf("wait time with pending data = %v", w)
	}
}

func TestReceiveRejectsGarbage(t *testing.T) {
	h := newHarness(t, netem.LinkParams{}, nil)
	if _, err := h.client.Receive([]byte("garbage-payload-here-x"), h.serverAddr); !errors.Is(err, sspcrypto.ErrAuth) && !errors.Is(err, sspcrypto.ErrTooShort) {
		t.Fatalf("err = %v", err)
	}
}

func TestCustomCollectionInterval(t *testing.T) {
	timing := DefaultTiming()
	timing.CollectionInterval = 100 * time.Millisecond
	h := newHarness(t, netem.LinkParams{Delay: 5 * time.Millisecond}, &timing)
	h.run(5 * time.Second)
	start := h.sched.Now()
	h.server.CurrentState().Append([]byte("q"))
	h.wakeServer()
	base := h.server.Sender().Stats().Instructions
	// Run until the instruction goes out; it must not leave before the
	// 100ms collection interval.
	for h.server.Sender().Stats().Instructions == base {
		if h.sched.Now().Sub(start) > 2*time.Second {
			t.Fatal("instruction never sent")
		}
		h.sched.Step()
	}
	if wait := h.sched.Now().Sub(start); wait < 100*time.Millisecond {
		t.Fatalf("sent after %v, want >= 100ms collection interval", wait)
	}
}

func TestSendPathAllocationFreeWhenRecycled(t *testing.T) {
	// With RecycleWire (Emit consumes before returning), the steady-state
	// heartbeat path — marshal, encode, fragment, seal — must not allocate:
	// every buffer is pooled through the fragmenter and AppendPacket.
	clk := simclock.NewManual(t0)
	tr, err := New(Config[*textState, *textState]{
		Direction:     sspcrypto.ToServer,
		Key:           sspcrypto.Key{1},
		Clock:         clk,
		LocalInitial:  newText(),
		RemoteInitial: newText(),
		Emit:          func([]byte) {},
		RecycleWire:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	timing := DefaultTiming()
	// Warm up the pools with a few sends.
	for i := 0; i < 4; i++ {
		clk.Advance(timing.HeartbeatInterval + time.Millisecond)
		tr.Tick()
	}
	sent := tr.Sender().Stats().EmptyAcks
	allocs := testing.AllocsPerRun(200, func() {
		clk.Advance(timing.HeartbeatInterval + time.Millisecond)
		tr.Tick()
	})
	if got := tr.Sender().Stats().EmptyAcks; got <= sent {
		t.Fatalf("no heartbeats sent during the measurement (stats %+v)", tr.Sender().Stats())
	}
	if allocs > 0 {
		t.Fatalf("steady-state heartbeat send allocates %.1f times per packet, want 0", allocs)
	}
}

func TestDataSendPathAllocationsBounded(t *testing.T) {
	// The data path additionally clones the local object into the sent
	// history (inherent to SSP); everything else is pooled, so the per-send
	// allocation count must stay small and flat.
	clk := simclock.NewManual(t0)
	tr, err := New(Config[*textState, *textState]{
		Direction:     sspcrypto.ToServer,
		Key:           sspcrypto.Key{1},
		Clock:         clk,
		LocalInitial:  newText(),
		RemoteInitial: newText(),
		Emit:          func([]byte) {},
		RecycleWire:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	timing := DefaultTiming()
	for i := 0; i < 4; i++ {
		tr.CurrentState().Append([]byte("x"))
		clk.Advance(timing.SendIntervalMax + timing.CollectionInterval)
		tr.Tick()
	}
	sent := tr.Sender().Stats().Instructions
	allocs := testing.AllocsPerRun(100, func() {
		tr.CurrentState().Append([]byte("x"))
		clk.Advance(timing.SendIntervalMax + timing.CollectionInterval)
		tr.Tick()
	})
	if got := tr.Sender().Stats().Instructions; got <= sent {
		t.Fatalf("no instructions sent during the measurement")
	}
	// One clone of the (growing) local object plus sent-state bookkeeping;
	// the wire path itself contributes nothing.
	if allocs > 4 {
		t.Fatalf("steady-state data send allocates %.1f times per packet, want <= 4", allocs)
	}
}
