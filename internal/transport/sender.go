package transport

import (
	"time"

	"repro/internal/network"
	"repro/internal/simclock"
)

// Timing collects the transport sender's timing parameters. The defaults
// are the paper's published values; each is exposed so the benchmark
// harness can sweep them (Figure 3 sweeps CollectionInterval; the ablation
// benches sweep the others).
type Timing struct {
	// SendIntervalMin caps the frame rate at 50 Hz (paper footnote 1).
	SendIntervalMin time.Duration
	// SendIntervalMax bounds the inter-frame interval on very slow paths.
	SendIntervalMax time.Duration
	// CollectionInterval is the pause after the first host write before a
	// frame goes out, letting clumped updates coalesce (§2.3; Figure 3
	// found 8 ms optimal).
	CollectionInterval time.Duration
	// AckDelay is the delayed-ack interval; within 100 ms more than 99.9%
	// of acks piggyback on host data (§2.3).
	AckDelay time.Duration
	// HeartbeatInterval keeps NAT bindings alive and lets each side learn
	// the other is reachable (§2.3: 3 s).
	HeartbeatInterval time.Duration
	// ActiveRetryTimeout stops aggressive retransmission when the peer
	// has been silent this long (it may be disconnected; heartbeats
	// continue).
	ActiveRetryTimeout time.Duration
	// MTU is the maximum fragment-contents size in bytes.
	MTU int
}

// DefaultTiming returns the paper's parameter values.
func DefaultTiming() Timing {
	return Timing{
		SendIntervalMin:    20 * time.Millisecond,
		SendIntervalMax:    250 * time.Millisecond,
		CollectionInterval: 8 * time.Millisecond,
		AckDelay:           100 * time.Millisecond,
		HeartbeatInterval:  3 * time.Second,
		ActiveRetryTimeout: 10 * time.Second,
		MTU:                1200,
	}
}

// SenderStats counts the sender's wire activity.
type SenderStats struct {
	Instructions int // instructions carrying a non-empty diff
	EmptyAcks    int // pure acks and heartbeats
	Fragments    int // datagrams sent
	DiffBytes    int64
	// Suppressed counts sends refused by the durable reservation ceilings
	// (sequence numbers or state numbers). SSP treats each as loss; the
	// persistence layer flushes its journal to extend the reservation.
	Suppressed int
}

// sentState is one entry in the sender's history of states the receiver
// may hold.
type sentState[T State[T]] struct {
	num   uint64
	at    time.Time
	state T
}

// maxSentStates bounds the history; beyond it, a middle entry is culled
// (the extremes — the known-received baseline and the newest state — must
// survive).
const maxSentStates = 32

// Sender drives one direction of SSP: it watches a live local object and
// fast-forwards the remote host to its current state.
type Sender[T State[T]] struct {
	conn   *network.Connection
	clock  simclock.Clock
	timing Timing
	frag   fragmenter
	// emit transmits one sealed wire datagram; wired up by Transport.
	emit func(wire []byte)

	// currentState is the live object owned by the application; the
	// sender reads it every tick and clones it into sentStates on send.
	currentState T

	sentStates []sentState[T] // front = newest state known received

	assumedIdx int // index of the assumed receiver state

	nextAckTime    time.Time // delayed-ack / heartbeat deadline
	nextSendTime   time.Time // zero when no data pending
	mindelayActive bool
	mindelayAt     time.Time

	pendingDataAck bool
	ackNum         uint64 // newest remote state num, echoed in instructions

	// diffBuf is reused across ticks for DiffFrom output; the diff is
	// consumed (copied into wire fragments) before the tick returns, so
	// the buffer never escapes.
	diffBuf []byte

	// fragBuf is scratch for marshalling one fragment; it is consumed by
	// sealing (copied into the wire datagram) before the next fragment is
	// marshalled.
	fragBuf []byte

	// recycleWire enables reuse of emitted wire buffers. Only safe when
	// the Emit callback fully consumes the datagram before returning (a
	// UDP write); simulation embedders retain payloads in flight and must
	// leave it off.
	recycleWire bool
	wirePool    [][]byte

	// numFloor is the journal-restored state-number reservation: the first
	// state minted after a restart takes at least this number, so it
	// strictly exceeds every state number any previous incarnation sent
	// (the receiver's NewNum-based dedup then admits the resume repaint).
	numFloor uint64
	// numCeiling bounds minted state numbers for crash safety, with the
	// same two-phase journal protocol as the datagram layer's sequence
	// ceiling (network.Connection.SetSeqCeiling). 0 means unlimited.
	numCeiling uint64

	shutdown bool

	stats SenderStats
}

// maxWirePool bounds the recycled wire-buffer list; an instruction rarely
// spans more fragments than this in steady state.
const maxWirePool = 8

// newSender builds a sender for the live object current, whose initial
// contents both sides agree is state number 0.
func newSender[T State[T]](conn *network.Connection, clock simclock.Clock, timing Timing, current T) *Sender[T] {
	now := clock.Now()
	return &Sender[T]{
		conn:         conn,
		clock:        clock,
		timing:       timing,
		currentState: current,
		sentStates:   []sentState[T]{{num: 0, at: now, state: current.Clone()}},
		nextAckTime:  now.Add(timing.HeartbeatInterval),
	}
}

// newResumedSender builds a sender restored from a journal: current is the
// restored live object, baseline is the agreed initial state (state number
// 0, ownership transfers to the sender), and numFloor is the persisted
// state-number reservation. Because current differs from the baseline, the
// first tick conveys a full fresh-baseline diff (0 → numFloor) that the
// receiver applies via its pristine state-0 fallback.
func newResumedSender[T State[T]](conn *network.Connection, clock simclock.Clock, timing Timing, current, baseline T, numFloor uint64) *Sender[T] {
	s := newSender(conn, clock, timing, current)
	recycle(s.sentStates[0].state)
	s.sentStates[0].state = baseline
	s.numFloor = numFloor
	return s
}

// SetNumCeiling installs the durable state-number reservation ceiling; see
// network.Connection.SetSeqCeiling for the two-phase crash-safety protocol
// it participates in. 0 means unlimited.
func (s *Sender[T]) SetNumCeiling(ceiling uint64) { s.numCeiling = ceiling }

// NumHighWater reports the state-number reservation a journal snapshot must
// exceed: one past the newest minted number, and never below the restored
// floor (which may not have minted yet).
func (s *Sender[T]) NumHighWater() uint64 {
	hw := s.back().num + 1
	if hw < s.numFloor {
		hw = s.numFloor
	}
	return hw
}

// NumRemaining reports how many new states may still be minted under the
// current reservation (unlimited when no ceiling is set).
func (s *Sender[T]) NumRemaining() uint64 {
	if s.numCeiling == 0 {
		return ^uint64(0)
	}
	hw := s.NumHighWater()
	if hw >= s.numCeiling {
		return 0
	}
	return s.numCeiling - hw
}

// CurrentState returns the live object the sender synchronizes from.
func (s *Sender[T]) CurrentState() T { return s.currentState }

// Stats returns a snapshot of wire counters.
func (s *Sender[T]) Stats() SenderStats { return s.stats }

// SentStateCount reports the retained history length (for tests).
func (s *Sender[T]) SentStateCount() int { return len(s.sentStates) }

// AssumedReceiverStateNum reports which state the sender currently diffs
// against.
func (s *Sender[T]) AssumedReceiverStateNum() uint64 {
	return s.sentStates[s.assumedIdx].num
}

// ForceAckSoon makes the next Tick emit at least an empty ack; the client
// uses it right after dialing so the server learns its address without
// waiting for the first heartbeat.
func (s *Sender[T]) ForceAckSoon() { s.nextAckTime = s.clock.Now() }

// LastSentNum reports the newest state number handed to the network; the
// prediction engine stamps expiration frames with it.
func (s *Sender[T]) LastSentNum() uint64 { return s.back().num }

// LastAckedNum reports the newest state number the receiver acknowledged.
func (s *Sender[T]) LastAckedNum() uint64 { return s.front().num }

// setDataAck records that the peer delivered a new state we must
// acknowledge (within AckDelay, or piggybacked sooner).
func (s *Sender[T]) setDataAck(ackNum uint64) {
	s.ackNum = ackNum
	s.pendingDataAck = true
}

// SendInterval reports the current frame interval — the paper's
// frame-rate rule made observable for live transport introspection.
func (s *Sender[T]) SendInterval() time.Duration { return s.sendInterval() }

// sendInterval is the paper's frame-rate rule: half the smoothed RTT,
// clamped so there is about one instruction in flight at any time but
// never more than 50 frames per second.
func (s *Sender[T]) sendInterval() time.Duration {
	iv := s.conn.SRTT(time.Second) / 2
	if iv < s.timing.SendIntervalMin {
		iv = s.timing.SendIntervalMin
	}
	if iv > s.timing.SendIntervalMax {
		iv = s.timing.SendIntervalMax
	}
	return iv
}

func (s *Sender[T]) back() *sentState[T]  { return &s.sentStates[len(s.sentStates)-1] }
func (s *Sender[T]) front() *sentState[T] { return &s.sentStates[0] }

// updateAssumedReceiverState guesses the newest sent state the receiver
// has: any state sent within the last RTO (+ ack delay) is optimistically
// assumed delivered; older unacknowledged states are assumed lost.
func (s *Sender[T]) updateAssumedReceiverState(now time.Time) {
	s.assumedIdx = 0
	horizon := s.conn.RTO() + s.timing.AckDelay
	for i := 1; i < len(s.sentStates); i++ {
		if now.Sub(s.sentStates[i].at) < horizon {
			s.assumedIdx = i
		} else {
			break
		}
	}
}

// processAcknowledgmentThrough handles an incoming AckNum: all history at
// or before the acknowledged state collapses into a new baseline, and the
// shared prefix is subtracted from every retained state (garbage collection
// for append-only objects). Dropped snapshots are recycled back to the
// state implementation, which keeps the snapshot churn of a long-lived
// session allocation-free.
func (s *Sender[T]) processAcknowledgmentThrough(ack uint64) {
	idx := -1
	for i := range s.sentStates {
		if s.sentStates[i].num == ack {
			idx = i
			break
		}
	}
	if idx <= 0 {
		return // unknown (stale or bogus) ack, or already the baseline
	}
	for i := 0; i < idx; i++ {
		recycle(s.sentStates[i].state)
	}
	s.sentStates = s.sentStates[idx:]
	base := s.front().state.Clone()
	s.currentState.Subtract(base)
	for i := range s.sentStates {
		s.sentStates[i].state.Subtract(base)
	}
	recycle(base)
}

// calculateTimers recomputes the ack and send deadlines from the current
// object and history, per §2.3's sender timing rules.
func (s *Sender[T]) calculateTimers(now time.Time) {
	s.updateAssumedReceiverState(now)

	if s.pendingDataAck {
		if deadline := now.Add(s.timing.AckDelay); s.nextAckTime.After(deadline) {
			s.nextAckTime = deadline
		}
	}

	lastHeard, heard := s.conn.LastHeard()
	remoteActive := heard && now.Sub(lastHeard) < s.timing.ActiveRetryTimeout

	switch {
	case !s.currentState.Equal(s.back().state):
		// Fresh changes: wait out the collection interval and the frame
		// rate, whichever is later.
		if !s.mindelayActive {
			s.mindelayActive = true
			s.mindelayAt = now
		}
		t := s.mindelayAt.Add(s.timing.CollectionInterval)
		if u := s.back().at.Add(s.sendInterval()); u.After(t) {
			t = u
		}
		s.nextSendTime = t
	case !s.currentState.Equal(s.sentStates[s.assumedIdx].state) && remoteActive:
		// Nothing new, but the assumed receiver state lags: keep
		// retransmitting diffs at the frame rate.
		t := s.back().at.Add(s.sendInterval())
		if s.mindelayActive {
			if u := s.mindelayAt.Add(s.timing.CollectionInterval); u.After(t) {
				t = u
			}
		}
		s.nextSendTime = t
	case !s.currentState.Equal(s.front().state) && remoteActive:
		// Receiver may be fully caught up (optimistically), but we lack
		// the ack: probe again after a timeout.
		s.nextSendTime = s.back().at.Add(s.conn.RTO() + s.timing.AckDelay)
	default:
		s.nextSendTime = time.Time{}
	}
}

// tick is the sender's main entry: called whenever anything may have
// changed (host activity, packet arrival, timer expiry). It sends at most
// one instruction.
func (s *Sender[T]) tick() {
	now := s.clock.Now()
	s.calculateTimers(now)

	ackDue := !now.Before(s.nextAckTime)
	sendDue := !s.nextSendTime.IsZero() && !now.Before(s.nextSendTime)
	if !ackDue && !sendDue {
		return
	}

	s.diffBuf = s.currentState.AppendDiff(s.diffBuf[:0], s.sentStates[s.assumedIdx].state)
	diff := s.diffBuf
	if len(diff) == 0 {
		if ackDue {
			s.sendEmptyAck(now)
		}
		return
	}
	if sendDue || ackDue {
		s.sendToReceiver(now, diff)
	}
}

// waitTime reports how long the event loop may sleep before the sender
// needs another tick.
func (s *Sender[T]) waitTime() time.Duration {
	now := s.clock.Now()
	s.calculateTimers(now)
	next := s.nextAckTime
	if !s.nextSendTime.IsZero() && s.nextSendTime.Before(next) {
		next = s.nextSendTime
	}
	if d := next.Sub(now); d > 0 {
		return d
	}
	return 0
}

// sendEmptyAck emits an instruction with no diff: it carries the ack
// number (delayed ack) and doubles as the heartbeat.
func (s *Sender[T]) sendEmptyAck(now time.Time) {
	num := s.back().num
	s.sendInstruction(now, &Instruction{
		ProtocolVersion: protocolVersion,
		OldNum:          num,
		NewNum:          num,
		AckNum:          s.ackNum,
		ThrowawayNum:    s.front().num,
	})
	s.stats.EmptyAcks++
	s.pendingDataAck = false
	s.mindelayActive = false
}

// sendToReceiver conveys the current state as a diff from the assumed
// receiver state (the action "best calculated to fast-forward the remote
// host", design goal 3).
func (s *Sender[T]) sendToReceiver(now time.Time, diff []byte) {
	var newNum uint64
	if s.currentState.Equal(s.back().state) {
		// Resend of a state the receiver should already be getting:
		// same number, refreshed timestamp.
		newNum = s.back().num
		s.back().at = now
	} else {
		newNum = s.back().num + 1
		if newNum < s.numFloor {
			newNum = s.numFloor
		}
		if s.numCeiling != 0 && newNum >= s.numCeiling {
			// Reservation exhausted: minting this number could collide
			// with a post-crash restore. Suppress (SSP sees loss) until
			// the journal extends the reservation.
			s.stats.Suppressed++
			return
		}
		s.addSentState(now, newNum)
	}
	s.sendInstruction(now, &Instruction{
		ProtocolVersion: protocolVersion,
		OldNum:          s.sentStates[s.assumedIdx].num,
		NewNum:          newNum,
		AckNum:          s.ackNum,
		ThrowawayNum:    s.front().num,
		Diff:            diff,
	})
	s.stats.Instructions++
	s.stats.DiffBytes += int64(len(diff))
	s.pendingDataAck = false
	s.mindelayActive = false
}

func (s *Sender[T]) addSentState(now time.Time, num uint64) {
	s.sentStates = append(s.sentStates, sentState[T]{num: num, at: now, state: s.currentState.Clone()})
	if len(s.sentStates) > maxSentStates {
		// Cull from the middle: keep the baseline, recent states and the
		// newest.
		mid := len(s.sentStates) / 2
		if mid == s.assumedIdx {
			// Never cull the assumed receiver state: the diff the caller
			// just computed is against it, and the instruction about to go
			// out stamps its number as OldNum. (mid+1 stays interior:
			// mid ≤ len/2 and the newest entry sits at len-1 ≥ mid+2.)
			mid++
		}
		recycle(s.sentStates[mid].state)
		s.sentStates = append(s.sentStates[:mid], s.sentStates[mid+1:]...)
		if s.assumedIdx > mid {
			s.assumedIdx--
		}
	}
}

// sendInstruction fragments, seals and transmits one instruction, and
// pushes the heartbeat deadline out. Marshal and encode scratch is reused
// across datagrams; the sealed wire buffer itself is recycled only when
// the embedder has declared Emit non-retaining (RecycleWire).
func (s *Sender[T]) sendInstruction(now time.Time, inst *Instruction) {
	for _, f := range s.frag.makeFragments(inst, s.timing.MTU) {
		s.fragBuf = f.appendMarshal(s.fragBuf[:0])
		wire, err := s.conn.AppendPacket(s.takeWireBuf(len(s.fragBuf)), s.fragBuf)
		if err != nil {
			// Sequence reservation exhausted (recoverable after a journal
			// flush) or the sequence space itself is gone (session dead).
			// Either way the datagram is suppressed like loss.
			s.stats.Suppressed++
			return
		}
		s.stats.Fragments++
		if s.emit != nil {
			s.emit(wire)
		}
		if s.recycleWire && len(s.wirePool) < maxWirePool {
			s.wirePool = append(s.wirePool, wire)
		}
	}
	s.nextAckTime = now.Add(s.timing.HeartbeatInterval)
}

// takeWireBuf returns an empty buffer for one wire datagram: a recycled
// one when available, else a fresh buffer sized for the payload plus the
// datagram layer's overhead.
func (s *Sender[T]) takeWireBuf(payloadLen int) []byte {
	if n := len(s.wirePool); n > 0 {
		b := s.wirePool[n-1]
		s.wirePool = s.wirePool[:n-1]
		return b[:0]
	}
	return make([]byte, 0, payloadLen+s.conn.Overhead())
}
