package transport

import "fmt"

// maxReceivedStates bounds the receiver's history. ThrowawayNum prunes it
// in normal operation; the cap is a defensive backstop.
const maxReceivedStates = 1024

// recvState is one remote state the receiver can serve as a diff source.
type recvState[T State[T]] struct {
	num   uint64
	state T
}

// Receiver holds the remote object's reconstructed states. States are kept
// (in ascending number order) until the sender's ThrowawayNum retires
// them, because the sender may still choose any of them as a diff source.
type Receiver[T State[T]] struct {
	states []recvState[T]
}

// newReceiver builds a receiver whose state number 0 is initial.
func newReceiver[T State[T]](initial T) *Receiver[T] {
	return &Receiver[T]{states: []recvState[T]{{num: 0, state: initial.Clone()}}}
}

// Latest returns the newest reconstructed remote state. Callers must treat
// it as read-only (Clone before mutating).
func (r *Receiver[T]) Latest() T { return r.states[len(r.states)-1].state }

// LatestNum returns the newest remote state number.
func (r *Receiver[T]) LatestNum() uint64 { return r.states[len(r.states)-1].num }

// StateCount reports retained history length (for tests).
func (r *Receiver[T]) StateCount() int { return len(r.states) }

// processInstruction applies one instruction. It returns true when a new
// remote state was created (which the caller must acknowledge). Unknown
// diff sources are not an error — the instruction is simply unusable and
// the sender will fast-forward us from an older base later.
func (r *Receiver[T]) processInstruction(inst *Instruction) (bool, error) {
	// Retire history the sender promises never to reference again, but
	// always keep the newest state.
	for len(r.states) > 1 && r.states[0].num < inst.ThrowawayNum {
		r.states = r.states[1:]
	}

	if inst.NewNum <= r.LatestNum() {
		return false, nil // duplicate or superseded; idempotency by number
	}

	var source T
	found := false
	for i := range r.states {
		if r.states[i].num == inst.OldNum {
			source = r.states[i].state
			found = true
			break
		}
	}
	if !found {
		return false, nil
	}

	ns := source.Clone()
	if err := ns.Apply(inst.Diff); err != nil {
		return false, fmt.Errorf("transport: applying diff %d→%d: %w", inst.OldNum, inst.NewNum, err)
	}
	r.states = append(r.states, recvState[T]{num: inst.NewNum, state: ns})
	if len(r.states) > maxReceivedStates {
		r.states = append(r.states[:1], r.states[2:]...)
	}
	return true, nil
}
