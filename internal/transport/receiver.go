package transport

import "fmt"

// maxReceivedStates bounds the receiver's history. ThrowawayNum prunes it
// in normal operation; the cap is a defensive backstop.
const maxReceivedStates = 1024

// recvState is one remote state the receiver can serve as a diff source.
type recvState[T State[T]] struct {
	num   uint64
	state T
}

// Receiver holds the remote object's reconstructed states. States are kept
// (in ascending number order) until the sender's ThrowawayNum retires
// them, because the sender may still choose any of them as a diff source.
//
// Retired states are recycled back to the state implementation (see
// Recycler): a retired snapshot's storage may be reused by the very next
// state reconstruction. The audit behind that wiring fixed the reference
// contract of Latest(): its result is valid only until the next call to
// processInstruction — every in-repo caller reads it transiently within
// one event-loop turn, and external callers must Clone before retaining.
type Receiver[T State[T]] struct {
	states []recvState[T]

	// pristine is the agreed initial object (state number 0), kept for the
	// fresh-baseline fallback: a sender that lost its history (a restarted
	// sessiond) re-synchronizes by diffing from state 0, which both sides
	// can always reconstruct even after the numbered entry was retired
	// (SSP's "no diff-base is assumed across restart" rule). It is never
	// mutated and never recycled.
	pristine    T
	hasPristine bool

	// anyBase marks a receiver restored from a journal: diffs from unknown
	// source states may be applied through the ResumableState capability
	// (index-verified), which is how a surviving client's input stream
	// reaches a restarted server without either side rewinding.
	anyBase bool
}

// newReceiver builds a receiver whose state number 0 is initial. The
// receiver takes ownership of initial (it is retained as the pristine
// fallback source).
func newReceiver[T State[T]](initial T) *Receiver[T] {
	return &Receiver[T]{
		states:      []recvState[T]{{num: 0, state: initial.Clone()}},
		pristine:    initial,
		hasPristine: true,
	}
}

// newResumedReceiver builds a receiver restored from a journal: initial is
// installed as state number num (the newest state the dead process had
// received), and unknown-base application is enabled. There is no pristine
// state-0 fallback — a peer of a restored session never legitimately
// diffs from state 0, and the restored object is not state 0's contents.
func newResumedReceiver[T State[T]](initial T, num uint64) *Receiver[T] {
	return &Receiver[T]{
		states:  []recvState[T]{{num: num, state: initial.Clone()}},
		anyBase: true,
	}
}

// Latest returns the newest reconstructed remote state. Callers must treat
// it as read-only and must not retain it across the next received
// instruction: retired history is recycled, so a stale reference may
// observe its storage being reused (Clone before retaining).
func (r *Receiver[T]) Latest() T { return r.states[len(r.states)-1].state }

// LatestNum returns the newest remote state number.
func (r *Receiver[T]) LatestNum() uint64 { return r.states[len(r.states)-1].num }

// StateCount reports retained history length (for tests).
func (r *Receiver[T]) StateCount() int { return len(r.states) }

// processInstruction applies one instruction. It returns true when a new
// remote state was created (which the caller must acknowledge). Unknown
// diff sources are not an error — the instruction is simply unusable and
// the sender will fast-forward us from an older base later.
func (r *Receiver[T]) processInstruction(inst *Instruction) (bool, error) {
	// Retire history the sender promises never to reference again, but
	// always keep the newest state. Retired snapshots are recycled: their
	// storage feeds the next reconstruction's Clone.
	for len(r.states) > 1 && r.states[0].num < inst.ThrowawayNum {
		recycle(r.states[0].state)
		r.states = r.states[1:]
	}

	if inst.NewNum <= r.LatestNum() {
		return false, nil // duplicate or superseded; idempotency by number
	}

	var source T
	found := false
	for i := range r.states {
		if r.states[i].num == inst.OldNum {
			source = r.states[i].state
			found = true
			break
		}
	}
	if !found && inst.OldNum == 0 && r.hasPristine {
		// Fresh-baseline resynchronization: the sender (a restarted
		// daemon) is diffing from the agreed initial state. Its NewNum is
		// reservation-floored above everything it ever sent, so the
		// NewNum <= LatestNum dedup above still rejects stale replays.
		source = r.pristine
		found = true
	}
	if !found {
		return r.applyUnknownBase(inst)
	}

	ns := source.Clone()
	if err := ns.Apply(inst.Diff); err != nil {
		recycle(ns)
		return false, fmt.Errorf("transport: applying diff %d→%d: %w", inst.OldNum, inst.NewNum, err)
	}
	r.addState(inst.NewNum, ns)
	return true, nil
}

// applyUnknownBase handles an instruction whose source state is not held:
// unusable in normal operation, but a journal-restored receiver applies it
// through the ResumableState capability when the diff is index-verified.
func (r *Receiver[T]) applyUnknownBase(inst *Instruction) (bool, error) {
	// A resend marker (NewNum == OldNum) or an empty diff carries no
	// verifiable content to rebuild a state from.
	if !r.anyBase || inst.NewNum == inst.OldNum || len(inst.Diff) == 0 {
		return false, nil
	}
	ns := r.Latest().Clone()
	rs, capable := any(ns).(ResumableState)
	if !capable {
		recycle(ns)
		return false, nil
	}
	// OldNum == ThrowawayNum proves the diff's source is the sender's
	// acknowledged baseline — state the dead process provably delivered —
	// which licenses jumping a gap; anything else may only overlap.
	acked := inst.OldNum == inst.ThrowawayNum && inst.OldNum != 0
	ok, err := rs.ApplyUnknownBase(inst.Diff, acked)
	if err != nil {
		recycle(ns)
		return false, fmt.Errorf("transport: applying resumed diff %d→%d: %w", inst.OldNum, inst.NewNum, err)
	}
	if !ok {
		recycle(ns)
		return false, nil
	}
	r.addState(inst.NewNum, ns)
	return true, nil
}

// addState records a newly reconstructed state, enforcing the history cap.
func (r *Receiver[T]) addState(num uint64, st T) {
	r.states = append(r.states, recvState[T]{num: num, state: st})
	if len(r.states) > maxReceivedStates {
		recycle(r.states[1].state)
		r.states = append(r.states[:1], r.states[2:]...)
	}
}
