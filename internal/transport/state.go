// Package transport implements SSP's transport layer (paper §2.3): it
// conveys the current state of an abstract object to the remote host by
// sending Instructions — self-contained messages carrying the source and
// target state numbers and the logical diff between them — and modulates
// its "frame rate" from the datagram layer's RTT estimate so that network
// buffers never fill.
//
// The layer is agnostic to the object type: Mosh instantiates it twice per
// session, client→server on a user-input stream and server→client on a
// terminal screen state (see internal/statesync). The object implementation
// defines diff semantics; for user input the diff carries every keystroke,
// for screens only the minimal transformation to the newest frame, which is
// what lets SSP skip intermediate states on slow paths.
package transport

// State is the object interface SSP synchronizes, the Go rendering of the
// paper's abstract state object. The type parameter is the concrete
// implementation itself (e.g. *UserStream), so Clone and DiffFrom are fully
// typed.
//
// Implementations must satisfy the diff algebra SSP relies on:
//
//	target.Apply(target.DiffFrom(source)) applied to a copy of source
//	yields a state Equal to target,
//
// and diffs must be idempotent in the sense that applying the same
// instruction twice (source → target, then again) is detectable by state
// number and therefore never re-applied — the transport guarantees that by
// construction.
type State[T any] interface {
	// Clone returns a deep copy; the transport stores clones in its sent-
	// and received-state lists, which must not alias the live object.
	Clone() T

	// Equal reports semantic equality. The sender uses it to decide
	// whether anything new needs to be conveyed.
	Equal(other T) bool

	// DiffFrom returns the logical diff that, applied to source, produces
	// this state. The transport treats it as opaque bytes.
	DiffFrom(source T) []byte

	// AppendDiff appends the same diff DiffFrom returns to buf (which may
	// be nil) and returns the extended buffer. The sender reuses one
	// buffer across ticks so the per-frame diff costs no allocations; the
	// transport never retains the returned slice past the tick that
	// produced it.
	AppendDiff(buf []byte, source T) []byte

	// Apply mutates the state by applying a diff produced by DiffFrom.
	Apply(diff []byte) error

	// Subtract removes the shared prefix with other. It exists so the
	// sender can garbage-collect history common to all outstanding
	// states (meaningful for append-only objects like the user-input
	// stream; screen states implement it as a no-op).
	Subtract(other T)
}

// Recycler is an optional State capability: the sender calls Recycle on a
// retained snapshot it is dropping for good (an acknowledged baseline, a
// culled history entry), and on the scratch clones it creates during
// acknowledgment processing. An implementation may feed the object's
// storage back to its Clone path — statesync.Complete reuses the whole
// framebuffer shell, which is what makes the sender's steady-state
// snapshot allocation-free. Implementations must tolerate Recycle being
// the last call ever made on the object; the transport never touches a
// state after recycling it.
type Recycler interface {
	Recycle()
}

// recycle hands a dropped state back to its implementation, when the
// implementation wants it.
func recycle[T State[T]](st T) {
	if r, ok := any(st).(Recycler); ok {
		r.Recycle()
	}
}

// ResumableState is an optional State capability for objects whose diffs
// are self-verifying: they carry enough position information that applying
// a diff whose source state the receiver does not hold is still exactly
// correct (or detectably unusable). The user-input stream qualifies — its
// diffs carry the absolute event index they start at — while screen states
// do not (a screen diff applied to the wrong base renders garbage).
//
// A receiver restored from a journal (Receiver "any base" mode, see
// transport.Resume) uses this to resynchronize with a sender that still
// references pre-crash states: the diff is applied to a clone of the
// newest state, skipping any overlap by index.
type ResumableState interface {
	// ApplyUnknownBase applies diff to this state even though this state
	// is not the diff's source. ackedSource reports that the instruction
	// proves its source state was acknowledged end-to-end (OldNum equals
	// ThrowawayNum), which licenses skipping a gap the dead process is
	// known to have delivered. It returns ok=false when the diff cannot be
	// applied safely (the caller treats the instruction as unusable and
	// SSP's fallback-to-acked-base recovers), and a non-nil error only for
	// malformed input.
	ApplyUnknownBase(diff []byte, ackedSource bool) (ok bool, err error)
}
