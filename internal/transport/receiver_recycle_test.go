package transport

import (
	"testing"
)

// These tests pin the receiver-side snapshot lifecycle that unlocks
// Recycler wiring on the receive path (ROADMAP item): the audit of
// Latest() found every in-repo caller reads it transiently within one
// event-loop turn, so retired history can be recycled — but the contract
// must hold exactly: retired states recycle exactly once, and the newest
// state (which Latest exposes) and the pristine state-0 fallback never do.

func mkInst(old, new, throwaway uint64, diff []byte) *Instruction {
	return &Instruction{
		ProtocolVersion: protocolVersion,
		OldNum:          old,
		NewNum:          new,
		ThrowawayNum:    throwaway,
		Diff:            diff,
	}
}

func TestReceiverRecyclesRetiredStates(t *testing.T) {
	recycled := 0
	initial := &recycleState{textState: &textState{}, recycled: &recycled}
	r := newReceiver[*recycleState](initial)

	if isNew, err := r.processInstruction(mkInst(0, 1, 0, []byte("a"))); err != nil || !isNew {
		t.Fatalf("state 1: isNew=%v err=%v", isNew, err)
	}
	if isNew, err := r.processInstruction(mkInst(1, 2, 1, []byte("b"))); err != nil || !isNew {
		t.Fatalf("state 2: isNew=%v err=%v", isNew, err)
	}
	// ThrowawayNum 1 retired state 0 — exactly one recycle.
	if recycled != 1 {
		t.Fatalf("recycled = %d after retiring state 0, want 1", recycled)
	}
	if got := string(r.Latest().data); got != "ab" {
		t.Fatalf("latest = %q, want ab", got)
	}

	// Replay is idempotent by number and recycles nothing further.
	if isNew, err := r.processInstruction(mkInst(1, 2, 1, []byte("b"))); err != nil || isNew {
		t.Fatalf("replay: isNew=%v err=%v", isNew, err)
	}
	// An unknown, non-zero base is unusable (not an error) outside resume
	// mode, and must not touch the history.
	if isNew, err := r.processInstruction(mkInst(7, 9, 1, []byte("zz"))); err != nil || isNew {
		t.Fatalf("unknown base: isNew=%v err=%v", isNew, err)
	}
	if recycled != 1 || r.StateCount() != 2 {
		t.Fatalf("after noise: recycled=%d states=%d, want 1 and 2", recycled, r.StateCount())
	}
	// The live states (1 and 2) and the pristine fallback are alive.
	if initial.dead {
		t.Fatal("pristine initial state was recycled")
	}
	for i := range r.states {
		if r.states[i].state.dead {
			t.Fatalf("retained state %d was recycled", r.states[i].num)
		}
	}
}

// TestReceiverPristineStateZeroFallback proves the fresh-baseline rule: a
// sender that lost its history (daemon restart) diffs from state 0 with a
// reservation-floored NewNum, and the receiver reconstructs from its
// pristine initial even though the numbered state 0 was retired long ago.
func TestReceiverPristineStateZeroFallback(t *testing.T) {
	recycled := 0
	initial := &recycleState{textState: &textState{}, recycled: &recycled}
	r := newReceiver[*recycleState](initial)

	// Normal history: 0→1→2→3, with state 0 retired by ThrowawayNum.
	r.processInstruction(mkInst(0, 1, 0, []byte("a")))
	r.processInstruction(mkInst(1, 2, 1, []byte("b")))
	r.processInstruction(mkInst(2, 3, 2, []byte("c")))

	// Restarted sender: full resync from state 0 at a floored number.
	isNew, err := r.processInstruction(mkInst(0, 1000, 3, []byte("abcd")))
	if err != nil || !isNew {
		t.Fatalf("fresh-baseline instruction: isNew=%v err=%v", isNew, err)
	}
	if got := string(r.Latest().data); got != "abcd" {
		t.Fatalf("latest after resync = %q, want abcd", got)
	}
	if r.LatestNum() != 1000 {
		t.Fatalf("latest num = %d, want 1000", r.LatestNum())
	}
	// A stale pre-restart replay (small NewNum) stays rejected.
	if isNew, err := r.processInstruction(mkInst(0, 1, 0, []byte("a"))); err != nil || isNew {
		t.Fatalf("stale replay: isNew=%v err=%v", isNew, err)
	}
	if initial.dead {
		t.Fatal("pristine initial state was recycled during resync")
	}
}

// TestResumedReceiverRequiresResumableState: in any-base mode, a state
// type without the ResumableState capability treats unknown bases as
// unusable (screens must never be rebuilt from the wrong base), and the
// scratch clone is recycled, not leaked.
func TestResumedReceiverRequiresResumableState(t *testing.T) {
	recycled := 0
	initial := &recycleState{textState: &textState{data: []byte("xyz")}, recycled: &recycled}
	r := newResumedReceiver[*recycleState](initial, 41)

	if r.LatestNum() != 41 {
		t.Fatalf("restored latest num = %d, want 41", r.LatestNum())
	}
	isNew, err := r.processInstruction(mkInst(40, 42, 39, []byte("q")))
	if err != nil || isNew {
		t.Fatalf("unknown base on non-resumable type: isNew=%v err=%v", isNew, err)
	}
	if recycled != 1 {
		t.Fatalf("scratch clone recycles = %d, want 1", recycled)
	}
	if got := string(r.Latest().data); got != "xyz" {
		t.Fatalf("latest mutated to %q by unusable instruction", got)
	}
}
