package transport

import (
	"time"

	"repro/internal/netem"
	"repro/internal/network"
	"repro/internal/simclock"
	"repro/internal/sspcrypto"
)

// Transport binds one SSP direction pair over a single datagram-layer
// connection: a Sender synchronizing the local object outward and a
// Receiver reconstructing the remote object. Mosh instantiates one
// Transport per endpoint — on the client the local object is the user
// input stream and the remote object is the screen; on the server the
// roles are reversed.
//
// Transport is a single-threaded state machine driven by three entries:
// Receive (a datagram arrived), Tick (timers or the local object may have
// advanced), and WaitTime (how long the event loop may sleep).
type Transport[L State[L], R State[R]] struct {
	conn     *network.Connection
	clock    simclock.Clock
	sender   *Sender[L]
	receiver *Receiver[R]
	assembly assembly
}

// Config assembles a Transport endpoint.
type Config[L State[L], R State[R]] struct {
	// Direction is ToServer on the client and ToClient on the server.
	Direction sspcrypto.Direction
	// Key is the pre-shared session key.
	Key sspcrypto.Key
	// Clock drives all timing.
	Clock simclock.Clock
	// Timing overrides transport timing; zero fields take defaults.
	Timing *Timing
	// MinRTO/MaxRTO pass through to the datagram layer (ablation knobs).
	MinRTO, MaxRTO time.Duration
	// Envelope enables the sessiond session-ID envelope on every datagram
	// (nil = single-session wire format).
	Envelope *network.Envelope
	// LocalInitial is the live local object (state number 0 as currently
	// constituted); the application keeps mutating it in place.
	LocalInitial L
	// RemoteInitial is the agreed initial remote state (number 0).
	RemoteInitial R
	// Emit transmits one sealed wire datagram.
	Emit func(wire []byte)
	// RecycleWire declares that Emit fully consumes each datagram before
	// returning (for example a blocking UDP write), letting the sender
	// reuse wire buffers instead of allocating one per datagram. Leave it
	// off when Emit retains the buffer (internal/netem keeps payloads in
	// flight).
	RecycleWire bool
}

// New builds a Transport endpoint.
func New[L State[L], R State[R]](cfg Config[L, R]) (*Transport[L, R], error) {
	conn, err := network.NewConnection(network.Config{
		Direction: cfg.Direction,
		Key:       cfg.Key,
		Clock:     cfg.Clock,
		MinRTO:    cfg.MinRTO,
		MaxRTO:    cfg.MaxRTO,
		Envelope:  cfg.Envelope,
	})
	if err != nil {
		return nil, err
	}
	timing := DefaultTiming()
	if cfg.Timing != nil {
		timing = *cfg.Timing
	}
	s := newSender[L](conn, cfg.Clock, timing, cfg.LocalInitial)
	s.emit = cfg.Emit
	s.recycleWire = cfg.RecycleWire
	return &Transport[L, R]{
		conn:     conn,
		clock:    cfg.Clock,
		sender:   s,
		receiver: newReceiver[R](cfg.RemoteInitial),
	}, nil
}

// Connection exposes the datagram layer (RTT estimates, roaming target).
func (t *Transport[L, R]) Connection() *network.Connection { return t.conn }

// Sender exposes the outbound half.
func (t *Transport[L, R]) Sender() *Sender[L] { return t.sender }

// CurrentState returns the live local object.
func (t *Transport[L, R]) CurrentState() L { return t.sender.currentState }

// RemoteState returns the newest reconstructed remote state (read-only).
func (t *Transport[L, R]) RemoteState() R { return t.receiver.Latest() }

// RemoteStateNum returns the newest remote state number.
func (t *Transport[L, R]) RemoteStateNum() uint64 { return t.receiver.LatestNum() }

// Receive processes one wire datagram from src. It returns true when the
// remote object advanced to a new state. Stale, replayed and inauthentic
// packets are rejected by the datagram layer and reported as errors the
// caller may ignore.
func (t *Transport[L, R]) Receive(wire []byte, src netem.Addr) (bool, error) {
	payload, err := t.conn.Receive(wire, src)
	if err != nil {
		return false, err
	}
	frag, err := unmarshalFragment(payload)
	if err != nil {
		return false, err
	}
	inst, err := t.assembly.add(frag)
	if err != nil || inst == nil {
		return false, err
	}
	t.sender.processAcknowledgmentThrough(inst.AckNum)
	isNew, err := t.receiver.processInstruction(inst)
	if err != nil {
		return false, err
	}
	if isNew {
		t.sender.setDataAck(t.receiver.LatestNum())
	}
	// Any authentic arrival can unblock sending (acks freed history, a
	// timestamp refined RTT), so tick opportunistically.
	t.sender.tick()
	return isNew, nil
}

// Tick runs the sender's timing logic; call it after mutating the local
// object and whenever WaitTime elapses.
func (t *Transport[L, R]) Tick() { t.sender.tick() }

// WaitTime reports how long the event loop may sleep before the next Tick
// is needed.
func (t *Transport[L, R]) WaitTime() time.Duration { return t.sender.waitTime() }
