package transport

import (
	"time"

	"repro/internal/netem"
	"repro/internal/network"
	"repro/internal/simclock"
	"repro/internal/sspcrypto"
	"repro/internal/telemetry"
)

// Transport binds one SSP direction pair over a single datagram-layer
// connection: a Sender synchronizing the local object outward and a
// Receiver reconstructing the remote object. Mosh instantiates one
// Transport per endpoint — on the client the local object is the user
// input stream and the remote object is the screen; on the server the
// roles are reversed.
//
// Transport is a single-threaded state machine driven by three entries:
// Receive (a datagram arrived), Tick (timers or the local object may have
// advanced), and WaitTime (how long the event loop may sleep).
type Transport[L State[L], R State[R]] struct {
	conn     *network.Connection
	clock    simclock.Clock
	sender   *Sender[L]
	receiver *Receiver[R]
	assembly assembly
	probe    *telemetry.Pipeline
}

// Config assembles a Transport endpoint.
type Config[L State[L], R State[R]] struct {
	// Direction is ToServer on the client and ToClient on the server.
	Direction sspcrypto.Direction
	// Key is the pre-shared session key.
	Key sspcrypto.Key
	// Clock drives all timing.
	Clock simclock.Clock
	// Timing overrides transport timing; zero fields take defaults.
	Timing *Timing
	// MinRTO/MaxRTO pass through to the datagram layer (ablation knobs).
	MinRTO, MaxRTO time.Duration
	// Envelope enables the sessiond session-ID envelope on every datagram
	// (nil = single-session wire format).
	Envelope *network.Envelope
	// LocalInitial is the live local object (state number 0 as currently
	// constituted); the application keeps mutating it in place.
	LocalInitial L
	// RemoteInitial is the agreed initial remote state (number 0).
	RemoteInitial R
	// Emit transmits one sealed wire datagram.
	Emit func(wire []byte)
	// RecycleWire declares that Emit fully consumes each datagram before
	// returning (for example a blocking UDP write), letting the sender
	// reuse wire buffers instead of allocating one per datagram. Leave it
	// off when Emit retains the buffer (internal/netem keeps payloads in
	// flight).
	RecycleWire bool

	// Resume, when non-nil, restores this endpoint from a journal snapshot
	// written by a previous incarnation (internal/sessiond's crash-safe
	// restart). LocalInitial is then the restored live object and
	// LocalBaseline must be set to the agreed initial state (state number
	// 0); RemoteInitial is the restored remote object, installed as state
	// number Resume.RecvNum.
	Resume *Resume
	// LocalBaseline is the agreed initial local state; read only when
	// Resume is non-nil. Ownership transfers to the sender.
	LocalBaseline L

	// Probe, when non-nil, receives per-stage latency observations:
	// StageApply spans around statesync application, StageTick spans
	// around sender ticks, and (through the datagram layer) StageSeal /
	// StageVerify spans around the AEAD. Measured on Clock, so virtual
	// time yields deterministic (0-duration) CPU spans.
	Probe *telemetry.Pipeline
}

// Resume restores a Transport endpoint across a process restart. Every
// counter in it must come from a durable journal whose reservation rules
// guarantee it exceeds anything the dead process sent (see
// network.Connection.SetSeqCeiling and Sender.SetNumCeiling).
type Resume struct {
	// SendNumFloor is the state-number reservation: the first state minted
	// after restore takes at least this number.
	SendNumFloor uint64
	// RecvNum is the state number the restored remote object is installed
	// as (the newest remote state the dead process had received).
	RecvNum uint64
	// NextSeq and ExpectedSeq restore the datagram layer's counters.
	NextSeq, ExpectedSeq uint64
	// RemoteAddr optionally seeds the reply target (see network.Resume).
	RemoteAddr *netem.Addr
	// Heard marks that the dead process had heard authentic traffic.
	Heard bool
}

// New builds a Transport endpoint.
func New[L State[L], R State[R]](cfg Config[L, R]) (*Transport[L, R], error) {
	var netResume *network.Resume
	if rs := cfg.Resume; rs != nil {
		netResume = &network.Resume{
			NextSeq:     rs.NextSeq,
			ExpectedSeq: rs.ExpectedSeq,
			RemoteAddr:  rs.RemoteAddr,
			Heard:       rs.Heard,
		}
	}
	conn, err := network.NewConnection(network.Config{
		Direction: cfg.Direction,
		Key:       cfg.Key,
		Clock:     cfg.Clock,
		MinRTO:    cfg.MinRTO,
		MaxRTO:    cfg.MaxRTO,
		Envelope:  cfg.Envelope,
		Resume:    netResume,
		Probe:     cfg.Probe,
	})
	if err != nil {
		return nil, err
	}
	timing := DefaultTiming()
	if cfg.Timing != nil {
		timing = *cfg.Timing
	}
	var s *Sender[L]
	var r *Receiver[R]
	if rs := cfg.Resume; rs != nil {
		s = newResumedSender[L](conn, cfg.Clock, timing, cfg.LocalInitial, cfg.LocalBaseline, rs.SendNumFloor)
		// Fragment ids only need monotonicity; reusing the sequence
		// reservation guarantees the restored ids exceed every id the dead
		// process emitted, so the peer's reassembly never mistakes a
		// post-restart instruction for a stale fragment.
		s.frag.nextID = rs.NextSeq
		// The journal proves receipt through RecvNum; advertising it from
		// the first post-restore instruction lets a surviving client whose
		// ack was lost in the crash collapse its history instead of
		// retransmitting its newest state at every RTO forever.
		s.ackNum = rs.RecvNum
		r = newResumedReceiver[R](cfg.RemoteInitial, rs.RecvNum)
	} else {
		s = newSender[L](conn, cfg.Clock, timing, cfg.LocalInitial)
		r = newReceiver[R](cfg.RemoteInitial)
	}
	s.emit = cfg.Emit
	s.recycleWire = cfg.RecycleWire
	return &Transport[L, R]{
		conn:     conn,
		clock:    cfg.Clock,
		sender:   s,
		receiver: r,
		probe:    cfg.Probe,
	}, nil
}

// Connection exposes the datagram layer (RTT estimates, roaming target).
func (t *Transport[L, R]) Connection() *network.Connection { return t.conn }

// Sender exposes the outbound half.
func (t *Transport[L, R]) Sender() *Sender[L] { return t.sender }

// CurrentState returns the live local object.
func (t *Transport[L, R]) CurrentState() L { return t.sender.currentState }

// RemoteState returns the newest reconstructed remote state. Treat it as
// read-only and do not retain it across the next Receive: the receiver
// recycles retired history, so a stale reference may observe its storage
// being reused (Clone before retaining).
func (t *Transport[L, R]) RemoteState() R { return t.receiver.Latest() }

// RemoteStateNum returns the newest remote state number.
func (t *Transport[L, R]) RemoteStateNum() uint64 { return t.receiver.LatestNum() }

// Receive processes one wire datagram from src. It returns true when the
// remote object advanced to a new state. Stale, replayed and inauthentic
// packets are rejected by the datagram layer and reported as errors the
// caller may ignore.
func (t *Transport[L, R]) Receive(wire []byte, src netem.Addr) (bool, error) {
	payload, err := t.conn.Receive(wire, src)
	if err != nil {
		return false, err
	}
	frag, err := unmarshalFragment(payload)
	if err != nil {
		return false, err
	}
	inst, err := t.assembly.add(frag)
	if err != nil || inst == nil {
		return false, err
	}
	t.sender.processAcknowledgmentThrough(inst.AckNum)
	var applyStart time.Time
	if t.probe != nil {
		applyStart = t.clock.Now()
	}
	isNew, err := t.receiver.processInstruction(inst)
	if t.probe != nil {
		t.probe.Observe(telemetry.StageApply, t.clock.Now().Sub(applyStart))
	}
	if err != nil {
		return false, err
	}
	if isNew {
		t.sender.setDataAck(t.receiver.LatestNum())
	}
	// Any authentic arrival can unblock sending (acks freed history, a
	// timestamp refined RTT), so tick opportunistically.
	t.tickSender()
	return isNew, nil
}

// Tick runs the sender's timing logic; call it after mutating the local
// object and whenever WaitTime elapses.
func (t *Transport[L, R]) Tick() { t.tickSender() }

// tickSender runs one sender tick, wrapped in a StageTick span when a
// probe is configured (diff computation + frame mint cost).
func (t *Transport[L, R]) tickSender() {
	if t.probe == nil {
		t.sender.tick()
		return
	}
	start := t.clock.Now()
	t.sender.tick()
	t.probe.Observe(telemetry.StageTick, t.clock.Now().Sub(start))
}

// FragmentsHeld reports how many fragments of a partially assembled
// incoming instruction the endpoint currently buffers (0 when no
// multi-fragment instruction is in flight) — live introspection of
// reassembly depth.
func (t *Transport[L, R]) FragmentsHeld() int {
	if !t.assembly.active {
		return 0
	}
	return len(t.assembly.fragments)
}

// WaitTime reports how long the event loop may sleep before the next Tick
// is needed.
func (t *Transport[L, R]) WaitTime() time.Duration { return t.sender.waitTime() }
