package transport

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/simclock"
)

// recycleState wraps textState and counts Recycle calls, so the tests can
// pin exactly when the sender releases snapshot ownership.
type recycleState struct {
	*textState
	recycled *int
	dead     bool
}

func (s *recycleState) Clone() *recycleState {
	return &recycleState{textState: s.textState.Clone(), recycled: s.recycled}
}
func (s *recycleState) Equal(o *recycleState) bool      { return s.textState.Equal(o.textState) }
func (s *recycleState) DiffFrom(o *recycleState) []byte { return s.textState.DiffFrom(o.textState) }
func (s *recycleState) Subtract(o *recycleState)        { s.textState.Subtract(o.textState) }
func (s *recycleState) Apply(diff []byte) error         { return s.textState.Apply(diff) }
func (s *recycleState) AppendDiff(buf []byte, o *recycleState) []byte {
	return s.textState.AppendDiff(buf, o.textState)
}
func (s *recycleState) Recycle() {
	if s.dead {
		panic("transport: snapshot recycled twice")
	}
	s.dead = true
	*s.recycled++
}

// TestSenderRecyclesRetiredSnapshots proves the snapshot-retention
// contract: every state the sender drops — acknowledged baselines, culled
// history entries, and the scratch clone acknowledgment processing makes —
// is recycled exactly once, and states still in the history never are.
func TestSenderRecyclesRetiredSnapshots(t *testing.T) {
	clk := simclock.NewManual(t0)
	recycled := 0
	live := &recycleState{textState: &textState{}, recycled: &recycled}
	s := newSender[*recycleState](nil, clk, DefaultTiming(), live)

	// Build history: states 1..5.
	for i := byte(0); i < 5; i++ {
		live.data = append(live.data, 'a'+i)
		s.addSentState(clk.Now(), uint64(i)+1)
		clk.Advance(10 * time.Millisecond)
	}
	if got := s.SentStateCount(); got != 6 {
		t.Fatalf("history = %d states, want 6", got)
	}

	// Ack through state 3: states 0,1,2 retire, plus the Subtract scratch
	// clone — four recycles.
	s.processAcknowledgmentThrough(3)
	if recycled != 4 {
		t.Fatalf("recycled %d snapshots after ack, want 4 (3 retired + scratch)", recycled)
	}
	if got := s.SentStateCount(); got != 3 {
		t.Fatalf("history = %d states after ack, want 3", got)
	}

	// The surviving history must still be usable for diffs (nothing live
	// was recycled).
	for _, st := range s.sentStates {
		if st.state.dead {
			t.Fatalf("state %d recycled while still retained", st.num)
		}
	}
	if diff := live.DiffFrom(s.front().state); !bytes.Equal(diff, []byte("de")) {
		t.Fatalf("diff from baseline = %q, want %q", diff, "de")
	}

	// Overflow the history: the middle cull must recycle exactly one per
	// overflow.
	before := recycled
	num := uint64(6)
	for i := 0; i < maxSentStates; i++ {
		live.data = append(live.data, 'z')
		s.addSentState(clk.Now(), num)
		num++
		clk.Advance(time.Millisecond)
	}
	overflowed := s.SentStateCount() // stays capped
	if overflowed > maxSentStates {
		t.Fatalf("history grew to %d, cap is %d", overflowed, maxSentStates)
	}
	culled := recycled - before
	if culled == 0 {
		t.Fatal("middle cull recycled nothing")
	}
	for _, st := range s.sentStates {
		if st.state.dead {
			t.Fatalf("state %d recycled while still retained after cull", st.num)
		}
	}
}

// TestCullNeverDropsAssumedReceiverState pins the OldNum-integrity rule:
// when the history cap forces a middle cull during addSentState, the
// assumed receiver state — the base the caller's diff was computed
// against — must survive with assumedIdx still naming it.
func TestCullNeverDropsAssumedReceiverState(t *testing.T) {
	clk := simclock.NewManual(t0)
	recycled := 0
	live := &recycleState{textState: &textState{}, recycled: &recycled}
	s := newSender[*recycleState](nil, clk, DefaultTiming(), live)

	num := uint64(1)
	for len(s.sentStates) < maxSentStates {
		live.data = append(live.data, 'q')
		s.addSentState(clk.Now(), num)
		num++
	}
	// Put the assumed receiver state exactly where the next cull strikes.
	mid := (len(s.sentStates) + 1) / 2
	s.assumedIdx = mid
	assumedNum := s.sentStates[mid].num

	live.data = append(live.data, 'q')
	s.addSentState(clk.Now(), num)

	if got := s.sentStates[s.assumedIdx].num; got != assumedNum {
		t.Fatalf("assumed state num = %d after cull, want %d", got, assumedNum)
	}
	if s.sentStates[s.assumedIdx].state.dead {
		t.Fatal("assumed receiver state was recycled by the cull")
	}
}
