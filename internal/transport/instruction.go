package transport

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// protocolVersion identifies this wire format. Version 3 added the
// absolute-start-index prefix to user-stream diffs (crash-safe session
// resumption); a version-2 peer's diffs would misparse silently, so the
// bump makes mixed-version pairs fail loudly with ErrVersion instead.
const protocolVersion = 3

// Instruction is the transport layer's only message: a self-contained
// statement that "state NewNum is state OldNum plus this diff", along with
// acknowledgment (AckNum: the newest remote state we have received) and
// history trimming (ThrowawayNum: the receiver may discard every state
// numbered below it, because the sender will never again diff from them).
type Instruction struct {
	ProtocolVersion uint8
	OldNum          uint64
	NewNum          uint64
	AckNum          uint64
	ThrowawayNum    uint64
	Diff            []byte
}

var (
	// ErrBadInstruction marks a syntactically invalid instruction.
	ErrBadInstruction = errors.New("transport: malformed instruction")
	// ErrVersion marks an instruction from an incompatible peer.
	ErrVersion = errors.New("transport: unsupported protocol version")
)

// appendMarshal encodes the instruction onto buf: version byte, four
// uvarints, then the raw diff to the end of the buffer.
func (inst *Instruction) appendMarshal(buf []byte) []byte {
	buf = append(buf, inst.ProtocolVersion)
	buf = binary.AppendUvarint(buf, inst.OldNum)
	buf = binary.AppendUvarint(buf, inst.NewNum)
	buf = binary.AppendUvarint(buf, inst.AckNum)
	buf = binary.AppendUvarint(buf, inst.ThrowawayNum)
	buf = append(buf, inst.Diff...)
	return buf
}

// marshal encodes the instruction into a fresh buffer.
func (inst *Instruction) marshal() []byte {
	return inst.appendMarshal(make([]byte, 0, 1+4*binary.MaxVarintLen64+len(inst.Diff)))
}

// unmarshalInstruction decodes a buffer produced by marshal.
func unmarshalInstruction(b []byte) (*Instruction, error) {
	if len(b) < 5 {
		return nil, ErrBadInstruction
	}
	inst := &Instruction{ProtocolVersion: b[0]}
	if inst.ProtocolVersion != protocolVersion {
		return nil, fmt.Errorf("%w: %d", ErrVersion, inst.ProtocolVersion)
	}
	rest := b[1:]
	for _, dst := range []*uint64{&inst.OldNum, &inst.NewNum, &inst.AckNum, &inst.ThrowawayNum} {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, ErrBadInstruction
		}
		*dst = v
		rest = rest[n:]
	}
	inst.Diff = rest
	return inst, nil
}

// Compression. Like the reference implementation, instructions are
// zlib-compressed before fragmentation when that actually helps (screen
// repaints are full of runs and repeated escape sequences). A one-byte
// flag distinguishes the encodings.

const (
	encodingRaw  = 0
	encodingZlib = 1
	// compressThreshold skips compression for tiny instructions
	// (keystrokes, acks) where the zlib header would only add bytes.
	compressThreshold = 64
	// maxDecompressed bounds decompression output defensively.
	maxDecompressed = 16 << 20
)

// encodeInstruction marshals and, when profitable, compresses, into a
// fresh buffer. The sender's hot path goes through fragmenter.encode,
// which reuses scratch buffers instead.
func encodeInstruction(inst *Instruction) []byte {
	var fr fragmenter
	return fr.encode(inst)
}

// appendWriter adapts an append-grown byte slice to io.Writer so the
// fragmenter's pooled zlib writer can deflate straight into reusable
// scratch without a bytes.Buffer per instruction.
type appendWriter struct{ buf *[]byte }

func (w appendWriter) Write(p []byte) (int, error) {
	*w.buf = append(*w.buf, p...)
	return len(p), nil
}

// decodeInstruction reverses encodeInstruction.
func decodeInstruction(buf []byte) (*Instruction, error) {
	if len(buf) < 1 {
		return nil, ErrBadInstruction
	}
	switch buf[0] {
	case encodingRaw:
		return unmarshalInstruction(buf[1:])
	case encodingZlib:
		r, err := zlib.NewReader(bytes.NewReader(buf[1:]))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadInstruction, err)
		}
		defer r.Close()
		raw, err := io.ReadAll(io.LimitReader(r, maxDecompressed))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadInstruction, err)
		}
		return unmarshalInstruction(raw)
	default:
		return nil, ErrBadInstruction
	}
}

// Fragmentation. An instruction larger than the MTU is split into numbered
// fragments sharing an instruction id; the last fragment carries a final
// bit. Fragments of a newer instruction abandon any partial older one —
// SSP never needs the old instruction because a newer diff supersedes it.

const (
	fragmentHeaderLen = 8 + 2
	finalFragmentBit  = 0x8000
	// maxFragments bounds a single instruction's fragment count; combined
	// with the MTU this caps instruction size defensively.
	maxFragments = 1 << 14
)

// fragment is one wire piece of an instruction.
type fragment struct {
	id       uint64
	num      uint16
	final    bool
	contents []byte
}

// appendMarshal encodes the fragment onto dst.
func (f *fragment) appendMarshal(dst []byte) []byte {
	var hdr [fragmentHeaderLen]byte
	binary.BigEndian.PutUint64(hdr[:], f.id)
	num := f.num
	if f.final {
		num |= finalFragmentBit
	}
	binary.BigEndian.PutUint16(hdr[8:], num)
	dst = append(dst, hdr[:]...)
	return append(dst, f.contents...)
}

func (f *fragment) marshal() []byte {
	return f.appendMarshal(make([]byte, 0, fragmentHeaderLen+len(f.contents)))
}

func unmarshalFragment(b []byte) (*fragment, error) {
	if len(b) < fragmentHeaderLen {
		return nil, ErrBadInstruction
	}
	num := binary.BigEndian.Uint16(b[8:])
	return &fragment{
		id:       binary.BigEndian.Uint64(b),
		num:      num &^ finalFragmentBit,
		final:    num&finalFragmentBit != 0,
		contents: b[fragmentHeaderLen:],
	}, nil
}

// fragmenter splits instructions for transmission. Its scratch buffers are
// reused across calls: fragments returned by makeFragments (and their
// contents) are valid only until the next call, which is all the sender
// needs — each instruction's fragments are sealed and emitted before the
// next instruction exists.
type fragmenter struct {
	nextID uint64

	rawBuf    []byte     // marshalled instruction scratch
	encBuf    []byte     // encoded (flag + raw/deflate) payload scratch
	fragStore []fragment // fragment structs, reused
	fragPtrs  []*fragment
	zw        *zlib.Writer
}

// encode marshals and, when profitable, compresses the instruction into
// the fragmenter's reusable scratch. The returned slice aliases encBuf.
func (fr *fragmenter) encode(inst *Instruction) []byte {
	fr.rawBuf = inst.appendMarshal(fr.rawBuf[:0])
	raw := fr.rawBuf
	if len(raw) >= compressThreshold {
		fr.encBuf = append(fr.encBuf[:0], encodingZlib)
		aw := appendWriter{&fr.encBuf}
		if fr.zw == nil {
			fr.zw = zlib.NewWriter(aw)
		} else {
			fr.zw.Reset(aw)
		}
		fr.zw.Write(raw)
		fr.zw.Close()
		if len(fr.encBuf) < len(raw)+1 {
			return fr.encBuf
		}
	}
	fr.encBuf = append(append(fr.encBuf[:0], encodingRaw), raw...)
	return fr.encBuf
}

// makeFragments splits the marshalled instruction into fragments whose
// contents are at most mtu bytes each. The result aliases the fragmenter's
// scratch and is invalidated by the next call.
func (fr *fragmenter) makeFragments(inst *Instruction, mtu int) []*fragment {
	if mtu < 1 {
		mtu = 1
	}
	payload := fr.encode(inst)
	id := fr.nextID
	fr.nextID++
	fr.fragStore = fr.fragStore[:0]
	for num := 0; ; num++ {
		n := len(payload)
		if n > mtu {
			n = mtu
		}
		fr.fragStore = append(fr.fragStore, fragment{
			id:       id,
			num:      uint16(num),
			final:    n == len(payload),
			contents: payload[:n],
		})
		payload = payload[n:]
		if len(payload) == 0 {
			break
		}
	}
	fr.fragPtrs = fr.fragPtrs[:0]
	for i := range fr.fragStore {
		fr.fragPtrs = append(fr.fragPtrs, &fr.fragStore[i])
	}
	return fr.fragPtrs
}

// assembly reassembles fragments into instructions. It holds at most one
// instruction in progress; fragments from a newer id reset it.
type assembly struct {
	id        uint64
	active    bool
	fragments map[uint16][]byte
	total     int // fragment count once the final fragment is seen, else -1
}

// add consumes one fragment; when it completes an instruction, the decoded
// instruction is returned.
func (a *assembly) add(f *fragment) (*Instruction, error) {
	if f.num >= maxFragments {
		return nil, ErrBadInstruction
	}
	if !a.active || f.id != a.id {
		if a.active && f.id < a.id {
			return nil, nil // stale fragment of an abandoned instruction
		}
		a.id = f.id
		a.active = true
		a.fragments = make(map[uint16][]byte)
		a.total = -1
	}
	a.fragments[f.num] = f.contents
	if f.final {
		a.total = int(f.num) + 1
	}
	if a.total < 0 || len(a.fragments) < a.total {
		return nil, nil
	}
	var buf []byte
	for i := 0; i < a.total; i++ {
		part, ok := a.fragments[uint16(i)]
		if !ok {
			return nil, nil
		}
		buf = append(buf, part...)
	}
	a.active = false
	a.fragments = nil
	return decodeInstruction(buf)
}
