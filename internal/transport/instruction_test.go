package transport

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestInstructionRoundTrip(t *testing.T) {
	in := &Instruction{
		ProtocolVersion: protocolVersion,
		OldNum:          3,
		NewNum:          9,
		AckNum:          17,
		ThrowawayNum:    2,
		Diff:            []byte("diff-bytes"),
	}
	out, err := unmarshalInstruction(in.marshal())
	if err != nil {
		t.Fatal(err)
	}
	if out.OldNum != 3 || out.NewNum != 9 || out.AckNum != 17 || out.ThrowawayNum != 2 ||
		!bytes.Equal(out.Diff, in.Diff) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestInstructionRoundTripProperty(t *testing.T) {
	f := func(oldN, newN, ack, throw uint64, diff []byte) bool {
		in := &Instruction{ProtocolVersion: protocolVersion, OldNum: oldN, NewNum: newN, AckNum: ack, ThrowawayNum: throw, Diff: diff}
		out, err := unmarshalInstruction(in.marshal())
		if err != nil {
			return false
		}
		return out.OldNum == oldN && out.NewNum == newN && out.AckNum == ack &&
			out.ThrowawayNum == throw && bytes.Equal(out.Diff, diff)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestInstructionBadVersion(t *testing.T) {
	in := &Instruction{ProtocolVersion: 99}
	if _, err := unmarshalInstruction(in.marshal()); err == nil {
		t.Fatal("accepted wrong protocol version")
	}
}

func TestInstructionTruncated(t *testing.T) {
	if _, err := unmarshalInstruction([]byte{protocolVersion, 1}); err == nil {
		t.Fatal("accepted truncated instruction")
	}
	if _, err := unmarshalInstruction(nil); err == nil {
		t.Fatal("accepted empty instruction")
	}
}

// instOfSize builds an instruction with n bytes of incompressible diff
// (compression would otherwise collapse it under the fragmentation MTU).
func instOfSize(n int) *Instruction {
	diff := make([]byte, n)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range diff {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		diff[i] = byte(x)
	}
	return &Instruction{ProtocolVersion: protocolVersion, OldNum: 1, NewNum: 2, AckNum: 3, ThrowawayNum: 0, Diff: diff}
}

func TestFragmentationSingle(t *testing.T) {
	var fr fragmenter
	frags := fr.makeFragments(instOfSize(100), 1200)
	if len(frags) != 1 || !frags[0].final {
		t.Fatalf("got %d fragments", len(frags))
	}
}

func TestFragmentationSplitAndReassemble(t *testing.T) {
	var fr fragmenter
	in := instOfSize(5000)
	frags := fr.makeFragments(in, 1200)
	if len(frags) < 5 {
		t.Fatalf("got %d fragments for 5000-byte diff at mtu 1200", len(frags))
	}
	var a assembly
	for i, f := range frags {
		back, err := unmarshalFragment(f.marshal())
		if err != nil {
			t.Fatal(err)
		}
		inst, err := a.add(back)
		if err != nil {
			t.Fatal(err)
		}
		if i < len(frags)-1 && inst != nil {
			t.Fatal("assembled before final fragment")
		}
		if i == len(frags)-1 {
			if inst == nil {
				t.Fatal("did not assemble after final fragment")
			}
			if !bytes.Equal(inst.Diff, in.Diff) {
				t.Fatal("reassembled diff mismatch")
			}
		}
	}
}

func TestFragmentReassemblyOutOfOrder(t *testing.T) {
	var fr fragmenter
	in := instOfSize(3000)
	frags := fr.makeFragments(in, 1000)
	var a assembly
	order := []int{2, 0, 3, 1}
	if len(frags) != 4 {
		t.Fatalf("expected 4 fragments, got %d", len(frags))
	}
	var got *Instruction
	for _, idx := range order {
		inst, err := a.add(frags[idx])
		if err != nil {
			t.Fatal(err)
		}
		if inst != nil {
			got = inst
		}
	}
	if got == nil || !bytes.Equal(got.Diff, in.Diff) {
		t.Fatal("out-of-order reassembly failed")
	}
}

// copyFragments deep-copies makeFragments output so a test can hold it
// across a later makeFragments call (which reuses the scratch buffers).
func copyFragments(frags []*fragment) []*fragment {
	out := make([]*fragment, len(frags))
	for i, f := range frags {
		c := *f
		c.contents = append([]byte(nil), f.contents...)
		out[i] = &c
	}
	return out
}

func TestNewerInstructionAbandonsOlder(t *testing.T) {
	var fr fragmenter
	old := copyFragments(fr.makeFragments(instOfSize(3000), 1000))
	fresh := fr.makeFragments(instOfSize(50), 1000)
	var a assembly
	if inst, _ := a.add(old[0]); inst != nil {
		t.Fatal("premature assembly")
	}
	inst, err := a.add(fresh[0])
	if err != nil || inst == nil {
		t.Fatalf("fresh single-fragment instruction should assemble: %v", err)
	}
	// A late fragment of the abandoned instruction must not resurrect it.
	if inst, _ := a.add(old[1]); inst != nil {
		t.Fatal("stale fragment assembled")
	}
}

func TestFragmentLossLeavesInstructionIncomplete(t *testing.T) {
	var fr fragmenter
	frags := fr.makeFragments(instOfSize(3000), 1000)
	var a assembly
	for i, f := range frags {
		if i == 1 {
			continue // lost
		}
		if inst, _ := a.add(f); inst != nil {
			t.Fatal("assembled despite missing fragment")
		}
	}
}

func TestFragmentMarshalRoundTrip(t *testing.T) {
	f := &fragment{id: 77, num: 3, final: true, contents: []byte("abc")}
	back, err := unmarshalFragment(f.marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.id != 77 || back.num != 3 || !back.final || string(back.contents) != "abc" {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestFragmentTooShort(t *testing.T) {
	if _, err := unmarshalFragment(make([]byte, 5)); err == nil {
		t.Fatal("accepted short fragment")
	}
}

func TestInstructionCompression(t *testing.T) {
	// A repetitive screen repaint must compress.
	in := &Instruction{ProtocolVersion: protocolVersion, OldNum: 1, NewNum: 2,
		Diff: []byte(strings.Repeat("\x1b[K all work and no play ", 100))}
	enc := encodeInstruction(in)
	if enc[0] != encodingZlib {
		t.Fatalf("large repetitive instruction not compressed")
	}
	if len(enc) >= len(in.marshal()) {
		t.Fatalf("compression grew the payload: %d vs %d", len(enc), len(in.marshal()))
	}
	out, err := decodeInstruction(enc)
	if err != nil || !bytes.Equal(out.Diff, in.Diff) {
		t.Fatalf("compressed round trip failed: %v", err)
	}
	// A keystroke-sized instruction stays raw.
	small := &Instruction{ProtocolVersion: protocolVersion, Diff: []byte("x")}
	if enc := encodeInstruction(small); enc[0] != encodingRaw {
		t.Fatal("tiny instruction pointlessly compressed")
	}
}

func TestDecodeInstructionRejectsGarbage(t *testing.T) {
	if _, err := decodeInstruction(nil); err == nil {
		t.Fatal("accepted empty buffer")
	}
	if _, err := decodeInstruction([]byte{encodingZlib, 0xde, 0xad}); err == nil {
		t.Fatal("accepted broken zlib stream")
	}
	if _, err := decodeInstruction([]byte{99, 1, 2, 3}); err == nil {
		t.Fatal("accepted unknown encoding")
	}
}
