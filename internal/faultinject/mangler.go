package faultinject

import (
	"sync"
	"sync/atomic"
)

// MangleFaults parameterizes a Mangler. Probabilities are per datagram.
type MangleFaults struct {
	DropProb    float64 // datagram vanishes
	DupProb     float64 // datagram is delivered twice
	CorruptProb float64 // one byte flipped (AEAD must reject)
	TruncProb   float64 // strict prefix delivered (AEAD must reject)
}

// MangleStats counts what a Mangler did.
type MangleStats struct {
	Dropped    atomic.Int64
	Duplicated atomic.Int64
	Corrupted  atomic.Int64
	Truncated  atomic.Int64
	Passed     atomic.Int64
}

// Mangler applies a seeded drop/dup/corrupt/truncate schedule to
// individual wire datagrams, for harnesses sitting on a packet path
// rather than a Conn (bench's chaos schedule runs one per direction).
// The zero schedule passes everything through untouched.
type Mangler struct {
	rng *Rand

	mu     sync.Mutex
	faults MangleFaults

	stats MangleStats
}

// NewMangler returns a Mangler driven by the given seed.
func NewMangler(seed int64) *Mangler { return &Mangler{rng: NewRand(seed)} }

// SetFaults replaces the schedule (zero disables). Bench uses this to
// open and close the chaos window at scheduled virtual times.
func (m *Mangler) SetFaults(f MangleFaults) {
	m.mu.Lock()
	m.faults = f
	m.mu.Unlock()
}

// Stats exposes the mangle counters.
func (m *Mangler) Stats() *MangleStats { return &m.stats }

// Mangle maps one wire datagram to zero, one, or two datagrams to
// deliver. Modified or duplicated payloads are fresh copies, so callers
// may hand the results to retaining sinks (netem links) safely; an
// untouched datagram is returned as-is.
func (m *Mangler) Mangle(wire []byte) [][]byte {
	m.mu.Lock()
	f := m.faults
	m.mu.Unlock()
	if f == (MangleFaults{}) || len(wire) == 0 {
		m.stats.Passed.Add(1)
		return [][]byte{wire}
	}
	if m.rng.Chance(f.DropProb) {
		m.stats.Dropped.Add(1)
		return nil
	}
	out, touched := wire, false
	if len(wire) > 1 && m.rng.Chance(f.CorruptProb) {
		c := make([]byte, len(wire))
		copy(c, wire)
		c[m.rng.Intn(len(c))] ^= 1 << uint(m.rng.Intn(8))
		out, touched = c, true
		m.stats.Corrupted.Add(1)
	}
	if len(out) > 1 && m.rng.Chance(f.TruncProb) {
		t := make([]byte, 1+m.rng.Intn(len(out)-1))
		copy(t, out)
		out, touched = t, true
		m.stats.Truncated.Add(1)
	}
	if m.rng.Chance(f.DupProb) {
		d := make([]byte, len(out))
		copy(d, out)
		m.stats.Duplicated.Add(1)
		return [][]byte{out, d}
	}
	if !touched {
		m.stats.Passed.Add(1)
	}
	return [][]byte{out}
}
