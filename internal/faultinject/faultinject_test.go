package faultinject

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/netem"
	"repro/internal/udpbatch"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := NewRand(43)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if n := r.Intn(17); n < 0 || n >= 17 {
			t.Fatalf("Intn out of range: %v", n)
		}
	}
	if r.Chance(0) {
		t.Fatal("Chance(0) fired")
	}
	if !r.Chance(1) {
		t.Fatal("Chance(1) did not fire")
	}
}

// fakeConn is a scriptable inner connection: queued inbound datagrams,
// recorded outbound ones.
type fakeConn struct {
	in    [][]byte
	addr  netem.Addr
	wrote [][]byte
}

func (f *fakeConn) BatchCap() int { return 8 }

func (f *fakeConn) ReadBatch(msgs []udpbatch.Message) (int, error) {
	n := 0
	for n < len(msgs) && n < len(f.in) {
		buf := msgs[n].Buf[:0]
		buf = append(buf, f.in[n]...)
		msgs[n].Buf = buf
		msgs[n].Addr = f.addr
		n++
	}
	f.in = f.in[n:]
	return n, nil
}

func (f *fakeConn) WriteBatch(msgs []udpbatch.Message) (int, error) {
	for i := range msgs {
		f.wrote = append(f.wrote, append([]byte(nil), msgs[i].Buf...))
	}
	return len(msgs), nil
}

func newMsgs(n int) []udpbatch.Message {
	msgs := make([]udpbatch.Message, n)
	for i := range msgs {
		msgs[i].Buf = make([]byte, 0, 64)
	}
	return msgs
}

func TestConnScriptedErrors(t *testing.T) {
	inner := &fakeConn{in: [][]byte{[]byte("hello")}}
	c := NewConn(inner, 1)
	c.ScriptReadError(ErrEINTR, ErrENOBUFS)
	for _, want := range []error{ErrEINTR, ErrENOBUFS} {
		if _, err := c.ReadBatch(newMsgs(4)); !errors.Is(err, want) {
			t.Fatalf("scripted read error = %v, want %v", err, want)
		}
	}
	msgs := newMsgs(4)
	n, err := c.ReadBatch(msgs)
	if err != nil || n != 1 || string(msgs[0].Buf) != "hello" {
		t.Fatalf("post-script read = %d, %v, %q", n, err, msgs[0].Buf)
	}
	c.ScriptWriteError(ErrEACCES)
	if _, err := c.WriteBatch(newMsgs(1)); !errors.Is(err, syscall.EACCES) {
		t.Fatalf("scripted write error = %v, want EACCES", err)
	}
	if got := c.Stats().ReadErrs.Load(); got != 2 {
		t.Fatalf("ReadErrs = %d, want 2", got)
	}
	if got := c.Stats().WriteErrs.Load(); got != 1 {
		t.Fatalf("WriteErrs = %d, want 1", got)
	}
}

func TestConnMangling(t *testing.T) {
	payload := []byte("0123456789abcdef")
	inner := &fakeConn{}
	c := NewConn(inner, 99)
	c.SetFaults(ConnFaults{CorruptProb: 0.5, TruncProb: 0.3, DupProb: 0.3})
	var corrupted, truncated, dups, clean int
	for round := 0; round < 200; round++ {
		inner.in = [][]byte{append([]byte(nil), payload...)}
		msgs := newMsgs(4)
		n, err := c.ReadBatch(msgs)
		if err != nil {
			t.Fatal(err)
		}
		if n == 2 {
			dups++
			if !bytes.Equal(msgs[0].Buf, msgs[1].Buf) {
				t.Fatal("duplicate differs from original")
			}
		} else if n != 1 {
			t.Fatalf("read %d datagrams", n)
		}
		switch {
		case len(msgs[0].Buf) < len(payload):
			truncated++
		case !bytes.Equal(msgs[0].Buf, payload):
			corrupted++
		default:
			clean++
		}
	}
	if corrupted == 0 || truncated == 0 || dups == 0 || clean == 0 {
		t.Fatalf("schedule did not mix: corrupt=%d trunc=%d dup=%d clean=%d",
			corrupted, truncated, dups, clean)
	}
	st := c.Stats()
	if st.Corrupted.Load() == 0 || st.Truncated.Load() == 0 || st.Duplicated.Load() == 0 {
		t.Fatalf("stats did not count: %d/%d/%d",
			st.Corrupted.Load(), st.Truncated.Load(), st.Duplicated.Load())
	}
}

func TestConnWriteFaults(t *testing.T) {
	inner := &fakeConn{}
	c := NewConn(inner, 7)
	c.SetFaults(ConnFaults{WriteErrProb: 1})
	msgs := newMsgs(4)
	for i := range msgs {
		msgs[i].Buf = append(msgs[i].Buf, byte(i))
	}
	n, err := c.WriteBatch(msgs)
	if err == nil {
		t.Fatal("write fault did not fire")
	}
	if n != len(inner.wrote) {
		t.Fatalf("reported %d transmitted, inner saw %d", n, len(inner.wrote))
	}
	// Partial writes: a strict prefix is consumed with a nil error.
	inner.wrote = nil
	c.SetFaults(ConnFaults{PartialWriteProb: 1})
	n, err = c.WriteBatch(msgs)
	if err != nil || n < 1 || n >= len(msgs) {
		t.Fatalf("partial write = %d, %v; want strict prefix", n, err)
	}
	if c.Stats().PartialWrites.Load() == 0 {
		t.Fatal("partial write not counted")
	}
}

func TestFaultFSShortWriteAndSync(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, 3)
	ffs.SetFaults(FSFaults{ShortWriteProb: 1})
	path := filepath.Join(dir, "f")
	f, err := ffs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("x"), 100)
	n, err := f.Write(data)
	if !errors.Is(err, syscall.ENOSPC) || n <= 0 || n >= len(data) {
		t.Fatalf("short write = %d, %v; want strict prefix + ENOSPC", n, err)
	}
	f.Close()
	if got, _ := os.ReadFile(path); len(got) != n {
		t.Fatalf("on-disk prefix %d bytes, reported %d", len(got), n)
	}
	ffs.SetFaults(FSFaults{SyncErrProb: 1})
	f, err = ffs.OpenFile(path, os.O_WRONLY, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync fault = %v, want EIO", err)
	}
	f.Close()
	if ffs.Stats().ShortWrites.Load() == 0 || ffs.Stats().SyncErrs.Load() == 0 {
		t.Fatal("fs stats did not count")
	}
}

func TestFaultFSTornRename(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, 11)
	src, dst := filepath.Join(dir, "src"), filepath.Join(dir, "dst")
	content := bytes.Repeat([]byte("journal"), 50)
	f, err := ffs.OpenFile(src, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(content); err != nil {
		t.Fatal(err)
	}
	f.Close()
	ffs.SetFaults(FSFaults{TornRenameProb: 1})
	if err := ffs.Rename(src, dst); err != nil {
		t.Fatalf("torn rename reported failure: %v", err)
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) >= len(content) || !bytes.Equal(got, content[:len(got)]) {
		t.Fatalf("destination is not a strict prefix: %d vs %d bytes", len(got), len(content))
	}
	if _, err := os.Stat(src); !os.IsNotExist(err) {
		t.Fatalf("source survived the torn rename: %v", err)
	}
	if ffs.Stats().TornRenames.Load() != 1 {
		t.Fatal("torn rename not counted")
	}
}

func TestFaultFSFailAllAndHook(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, 5)
	ffs.SetFaults(FSFaults{FailAll: ErrEACCES})
	if _, err := ffs.OpenFile(filepath.Join(dir, "f"), os.O_WRONLY|os.O_CREATE, 0o600); !errors.Is(err, syscall.EACCES) {
		t.Fatalf("FailAll open = %v, want EACCES", err)
	}
	if err := ffs.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); !errors.Is(err, syscall.EACCES) {
		t.Fatalf("FailAll rename = %v, want EACCES", err)
	}
	// Reads are not gated by FailAll (the journal must stay loadable).
	if _, err := ffs.ReadFile(filepath.Join(dir, "nope")); !os.IsNotExist(err) {
		t.Fatalf("read under FailAll = %v, want not-exist", err)
	}
	ffs.SetFaults(FSFaults{})
	var ops []Op
	ffs.SetOpHook(func(op Op, path string) error {
		ops = append(ops, op)
		if op == OpSync {
			return ErrEIO
		}
		return nil
	})
	f, err := ffs.OpenFile(filepath.Join(dir, "g"), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("x"))
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("hooked sync = %v, want EIO", err)
	}
	f.Close()
	want := []Op{OpOpen, OpWrite, OpSync, OpClose}
	if len(ops) != len(want) {
		t.Fatalf("hook saw %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("hook saw %v, want %v", ops, want)
		}
	}
}

func TestMangler(t *testing.T) {
	m := NewMangler(21)
	wire := []byte("datagram-payload-bytes")
	// Zero schedule: identity, same backing array.
	out := m.Mangle(wire)
	if len(out) != 1 || &out[0][0] != &wire[0] {
		t.Fatal("zero schedule did not pass through")
	}
	m.SetFaults(MangleFaults{DropProb: 0.25, DupProb: 0.25, CorruptProb: 0.25, TruncProb: 0.25})
	var drops, dups, mods, passed int
	for i := 0; i < 400; i++ {
		out := m.Mangle(wire)
		switch len(out) {
		case 0:
			drops++
		case 2:
			dups++
		case 1:
			if bytes.Equal(out[0], wire) {
				passed++
				continue
			}
			mods++
			// A modified payload must be a fresh copy: the original is
			// untouched.
			if string(wire) != "datagram-payload-bytes" {
				t.Fatal("mangling modified the caller's buffer")
			}
		}
	}
	if drops == 0 || dups == 0 || mods == 0 || passed == 0 {
		t.Fatalf("schedule did not mix: drop=%d dup=%d mod=%d pass=%d", drops, dups, mods, passed)
	}
	st := m.Stats()
	if st.Dropped.Load() == 0 || st.Duplicated.Load() == 0 ||
		st.Corrupted.Load()+st.Truncated.Load() == 0 {
		t.Fatal("mangle stats did not count")
	}
}
