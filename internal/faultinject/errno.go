package faultinject

import "syscall"

// The errnos the harness injects, re-exported so tests and fault
// schedules spell them the same way the kernel would. They are real
// syscall.Errno values: errors.Is and the poller's errno switches treat
// injected faults exactly like native ones.
var (
	ErrEINTR        = error(syscall.EINTR)        // interrupted syscall: retry
	ErrENOBUFS      = error(syscall.ENOBUFS)      // transient kernel buffer exhaustion
	ErrENOMEM       = error(syscall.ENOMEM)       // transient kernel memory pressure
	ErrEACCES       = error(syscall.EACCES)       // persistent: firewall EPERM-style rejection
	ErrEIO          = error(syscall.EIO)          // disk I/O error
	ErrENOSPC       = error(syscall.ENOSPC)       // disk full
	ErrETIMEDOUT    = error(syscall.ETIMEDOUT)    // connected-UDP ICMP timeout
	ErrECONNREFUSED = error(syscall.ECONNREFUSED) // connected-UDP ICMP port unreachable
)
