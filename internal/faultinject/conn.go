package faultinject

import (
	"sync"
	"sync/atomic"

	"repro/internal/udpbatch"
)

// ConnFaults parameterizes the probabilistic fault schedule of a Conn.
// All probabilities are per opportunity (per read call, per datagram, per
// write batch); zero values inject nothing.
type ConnFaults struct {
	// ReadErrProb returns an errno from ReadErrnos instead of reading.
	ReadErrProb float64
	// ReadErrnos cycles the injected read errnos (defaults to the
	// transient trio EINTR, ENOBUFS, ENOMEM when empty).
	ReadErrnos []error
	// TruncProb truncates one received datagram to a strict prefix,
	// modeling an undersized receive buffer; the AEAD must reject it.
	TruncProb float64
	// CorruptProb flips one byte of a received datagram in place.
	CorruptProb float64
	// DupProb duplicates a received datagram into the next free batch
	// slot, modeling kernel/network duplication behind one poll wakeup.
	DupProb float64
	// WriteErrProb fails one datagram of a write batch with an errno from
	// WriteErrnos (per the Conn contract: msgs[n] failed, caller drops it
	// and continues).
	WriteErrProb float64
	// WriteErrnos cycles the injected write errnos (defaults to ENOBUFS).
	WriteErrnos []error
	// PartialWriteProb makes WriteBatch consume only a strict prefix of a
	// multi-datagram batch (short count, nil error — caller retries).
	PartialWriteProb float64
}

// ConnStats counts injected faults; read it after a run to prove the
// schedule actually fired.
type ConnStats struct {
	ReadErrs      atomic.Int64
	WriteErrs     atomic.Int64
	Truncated     atomic.Int64
	Corrupted     atomic.Int64
	Duplicated    atomic.Int64
	PartialWrites atomic.Int64
}

// Conn wraps a udpbatch.Conn and injects faults on the way through. The
// wrapped connection sees only what the schedule lets through; the
// wrapping daemon sees every hazard the batch contract documents.
//
// Scripted errors (ScriptReadError / ScriptWriteError) fire first, in
// FIFO order, before any probabilistic fault — they are how tests pin
// exact errno sequences (EINTR then ENOBUFS then a real read, a
// persistent EACCES, …).
type Conn struct {
	inner udpbatch.Conn
	rng   *Rand

	mu          sync.Mutex
	faults      ConnFaults
	scriptRead  []error
	scriptWrite []error
	readErrIdx  int
	writeErrIdx int

	stats ConnStats
}

var defaultReadErrnos = []error{ErrEINTR, ErrENOBUFS, ErrENOMEM}
var defaultWriteErrnos = []error{ErrENOBUFS}

// NewConn wraps inner with a fault injector driven by the given seed.
func NewConn(inner udpbatch.Conn, seed int64) *Conn {
	return &Conn{inner: inner, rng: NewRand(seed)}
}

// SetFaults replaces the probabilistic fault schedule (zero value
// disables it). Scripted errors are unaffected.
func (c *Conn) SetFaults(f ConnFaults) {
	c.mu.Lock()
	c.faults = f
	c.mu.Unlock()
}

// ScriptReadError queues errs to be returned by the next ReadBatch calls,
// in order, before anything is read.
func (c *Conn) ScriptReadError(errs ...error) {
	c.mu.Lock()
	c.scriptRead = append(c.scriptRead, errs...)
	c.mu.Unlock()
}

// ScriptWriteError queues errs to be returned by the next WriteBatch
// calls, in order, before anything is written.
func (c *Conn) ScriptWriteError(errs ...error) {
	c.mu.Lock()
	c.scriptWrite = append(c.scriptWrite, errs...)
	c.mu.Unlock()
}

// Stats exposes the injected-fault counters.
func (c *Conn) Stats() *ConnStats { return &c.stats }

// BatchCap forwards to the wrapped connection.
func (c *Conn) BatchCap() int { return c.inner.BatchCap() }

// Close forwards to the wrapped connection when it supports closing.
func (c *Conn) Close() error {
	if cl, ok := c.inner.(interface{ Close() error }); ok {
		return cl.Close()
	}
	return nil
}

func (c *Conn) nextReadErr() error {
	f := &c.faults
	errs := f.ReadErrnos
	if len(errs) == 0 {
		errs = defaultReadErrnos
	}
	e := errs[c.readErrIdx%len(errs)]
	c.readErrIdx++
	return e
}

func (c *Conn) nextWriteErr() error {
	f := &c.faults
	errs := f.WriteErrnos
	if len(errs) == 0 {
		errs = defaultWriteErrnos
	}
	e := errs[c.writeErrIdx%len(errs)]
	c.writeErrIdx++
	return e
}

// ReadBatch injects scripted/probabilistic read errors, then reads from
// the wrapped connection and mangles the received datagrams per the
// schedule (corrupt, truncate, duplicate).
func (c *Conn) ReadBatch(msgs []udpbatch.Message) (int, error) {
	c.mu.Lock()
	if len(c.scriptRead) > 0 {
		err := c.scriptRead[0]
		c.scriptRead = c.scriptRead[1:]
		c.mu.Unlock()
		c.stats.ReadErrs.Add(1)
		return 0, err
	}
	if c.rng.Chance(c.faults.ReadErrProb) {
		err := c.nextReadErr()
		c.mu.Unlock()
		c.stats.ReadErrs.Add(1)
		return 0, err
	}
	f := c.faults
	c.mu.Unlock()

	n, err := c.inner.ReadBatch(msgs)
	if err != nil || n == 0 {
		return n, err
	}
	for i := 0; i < n; i++ {
		buf := msgs[i].Buf
		if len(buf) > 1 && c.rng.Chance(f.CorruptProb) {
			buf[c.rng.Intn(len(buf))] ^= 1 << uint(c.rng.Intn(8))
			c.stats.Corrupted.Add(1)
		}
		if len(buf) > 1 && c.rng.Chance(f.TruncProb) {
			msgs[i].Buf = buf[:1+c.rng.Intn(len(buf)-1)]
			c.stats.Truncated.Add(1)
		}
	}
	// Duplicate at most one datagram per batch into the next free slot,
	// so the injected load stays bounded by the caller's batch size.
	if n < len(msgs) && c.rng.Chance(f.DupProb) {
		srcIdx := c.rng.Intn(n)
		src := msgs[srcIdx].Buf
		dst := msgs[n].Buf
		if cap(dst) < len(src) {
			dst = make([]byte, len(src))
		}
		dst = dst[:len(src)]
		copy(dst, src)
		msgs[n].Buf = dst
		msgs[n].Addr = msgs[srcIdx].Addr
		n++
		c.stats.Duplicated.Add(1)
	}
	return n, nil
}

// WriteBatch injects scripted/probabilistic write failures per the Conn
// contract, forwarding what the schedule admits.
func (c *Conn) WriteBatch(msgs []udpbatch.Message) (int, error) {
	c.mu.Lock()
	if len(c.scriptWrite) > 0 {
		err := c.scriptWrite[0]
		c.scriptWrite = c.scriptWrite[1:]
		c.mu.Unlock()
		c.stats.WriteErrs.Add(1)
		return 0, err
	}
	f := c.faults
	var injectErr error
	if c.rng.Chance(f.WriteErrProb) {
		injectErr = c.nextWriteErr()
	}
	c.mu.Unlock()

	if injectErr != nil {
		// msgs[fail] fails; the prefix before it is really transmitted.
		fail := c.rng.Intn(len(msgs) + 1)
		if fail == len(msgs) {
			fail = 0
		}
		n, err := c.inner.WriteBatch(msgs[:fail])
		if err != nil || n < fail {
			return n, err
		}
		c.stats.WriteErrs.Add(1)
		return fail, injectErr
	}
	if len(msgs) > 1 && c.rng.Chance(f.PartialWriteProb) {
		k := 1 + c.rng.Intn(len(msgs)-1)
		n, err := c.inner.WriteBatch(msgs[:k])
		if err == nil && n == k {
			c.stats.PartialWrites.Add(1)
		}
		return n, err
	}
	return c.inner.WriteBatch(msgs)
}
