package faultinject

import (
	"os"
	"sync"
	"sync/atomic"
)

// File is the subset of *os.File the journal writer touches.
type File interface {
	Write(p []byte) (n int, err error)
	Sync() error
	Close() error
}

// FS is the filesystem seam the sessiond journal reads and writes
// through. Production uses OSFS; fault tests substitute a FaultFS so
// every operation of the atomic-rename protocol can fail on schedule.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadFile(name string) ([]byte, error)
	// ReadDir lists the entry names in a directory (the journal uses it
	// to discover log segments at boot and compaction).
	ReadDir(dir string) ([]string, error)
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs a directory so a completed rename is durable
	// (best effort — not every filesystem supports it).
	SyncDir(dir string) error
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OSFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(name string) error                     { return os.Remove(name) }
func (OSFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	d.Close()
	return err
}

// Op names one filesystem operation for OpHook scripting.
type Op string

const (
	OpOpen    Op = "open"
	OpWrite   Op = "write"
	OpSync    Op = "sync"
	OpClose   Op = "close"
	OpRename  Op = "rename"
	OpRemove  Op = "remove"
	OpRead    Op = "read"
	OpReadDir Op = "readdir"
	OpMkdir   Op = "mkdir"
	OpSyncDir Op = "syncdir"
)

// FSFaults parameterizes the probabilistic filesystem fault schedule.
// All probabilities are per operation; zero values inject nothing.
type FSFaults struct {
	// WriteErrProb fails a Write with EIO or ENOSPC (alternating).
	WriteErrProb float64
	// ShortWriteProb makes a Write persist only a strict prefix and
	// return ENOSPC — the mid-write disk-full case.
	ShortWriteProb float64
	// SyncErrProb fails an fsync with EIO (data may or may not be down).
	SyncErrProb float64
	// RenameErrProb fails a rename with EIO; the old snapshot survives.
	RenameErrProb float64
	// TornRenameProb makes a rename "succeed" but leave only a prefix of
	// the source at the destination — the power-cut-mid-rename model the
	// journal decoder must tolerate.
	TornRenameProb float64
	// ReadErrProb fails a ReadFile with EIO.
	ReadErrProb float64
	// FailAll, when non-nil, fails every mutating operation with this
	// error — the disk-gone / read-only-remount model used to drive the
	// journal into its suspended state.
	FailAll error
}

// FSStats counts injected filesystem faults.
type FSStats struct {
	WriteErrs   atomic.Int64
	ShortWrites atomic.Int64
	SyncErrs    atomic.Int64
	RenameErrs  atomic.Int64
	TornRenames atomic.Int64
	ReadErrs    atomic.Int64
}

// FaultFS wraps an FS and injects faults per schedule. The zero
// schedule is transparent. An OpHook, when set, observes every
// operation before any probabilistic fault and may inject its own
// error — tests use it to script exact failures and to record attempt
// times for backoff assertions.
type FaultFS struct {
	inner FS
	rng   *Rand

	mu     sync.Mutex
	faults FSFaults
	hook   func(op Op, path string) error
	// written accumulates bytes written per open path so a torn rename
	// can materialize a truncated prefix of the source at the
	// destination. Only journal-sized staging files flow through here.
	written map[string][]byte

	stats FSStats
}

// NewFaultFS wraps inner (nil means OSFS) with a fault injector driven
// by the given seed.
func NewFaultFS(inner FS, seed int64) *FaultFS {
	if inner == nil {
		inner = OSFS{}
	}
	return &FaultFS{inner: inner, rng: NewRand(seed), written: make(map[string][]byte)}
}

// SetFaults replaces the probabilistic fault schedule (zero disables).
func (f *FaultFS) SetFaults(fl FSFaults) {
	f.mu.Lock()
	f.faults = fl
	f.mu.Unlock()
}

// Faults returns the current schedule.
func (f *FaultFS) Faults() FSFaults {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.faults
}

// SetOpHook installs (or clears) the per-operation hook.
func (f *FaultFS) SetOpHook(hook func(op Op, path string) error) {
	f.mu.Lock()
	f.hook = hook
	f.mu.Unlock()
}

// Stats exposes the injected-fault counters.
func (f *FaultFS) Stats() *FSStats { return &f.stats }

// enter runs the hook and the FailAll gate for one operation.
func (f *FaultFS) enter(op Op, path string, mutating bool) error {
	f.mu.Lock()
	hook := f.hook
	failAll := f.faults.FailAll
	f.mu.Unlock()
	if hook != nil {
		if err := hook(op, path); err != nil {
			return err
		}
	}
	if mutating && failAll != nil {
		return failAll
	}
	return nil
}

func (f *FaultFS) chance(p float64) bool { return f.rng.Chance(p) }

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := f.enter(OpOpen, name, flag&(os.O_WRONLY|os.O_RDWR|os.O_CREATE) != 0); err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	if flag&os.O_TRUNC != 0 {
		f.mu.Lock()
		delete(f.written, name)
		f.mu.Unlock()
	}
	return &faultFile{fs: f, f: inner, path: name}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.enter(OpRename, newpath, true); err != nil {
		f.stats.RenameErrs.Add(1)
		return err
	}
	f.mu.Lock()
	torn := f.faults.TornRenameProb
	renameErr := f.faults.RenameErrProb
	content := f.written[oldpath]
	f.mu.Unlock()
	if f.chance(renameErr) {
		f.stats.RenameErrs.Add(1)
		return ErrEIO
	}
	if len(content) > 1 && f.chance(torn) {
		// Power-cut model: the destination ends up holding only a prefix
		// of the source, and the source is gone. The caller sees success;
		// only a later reader discovers the tear.
		prefix := content[:1+f.rng.Intn(len(content)-1)]
		if err := f.writeRaw(newpath, prefix); err != nil {
			return err
		}
		f.inner.Remove(oldpath)
		f.forget(oldpath)
		f.stats.TornRenames.Add(1)
		return nil
	}
	if err := f.inner.Rename(oldpath, newpath); err != nil {
		return err
	}
	f.mu.Lock()
	if c, ok := f.written[oldpath]; ok {
		f.written[newpath] = c
		delete(f.written, oldpath)
	}
	f.mu.Unlock()
	return nil
}

// writeRaw bypasses fault injection to materialize a torn destination.
func (f *FaultFS) writeRaw(path string, data []byte) error {
	g, err := f.inner.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	_, werr := g.Write(data)
	cerr := g.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

func (f *FaultFS) forget(path string) {
	f.mu.Lock()
	delete(f.written, path)
	f.mu.Unlock()
}

func (f *FaultFS) Remove(name string) error {
	if err := f.enter(OpRemove, name, true); err != nil {
		return err
	}
	f.forget(name)
	return f.inner.Remove(name)
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if err := f.enter(OpRead, name, false); err != nil {
		f.stats.ReadErrs.Add(1)
		return nil, err
	}
	if f.chance(f.Faults().ReadErrProb) {
		f.stats.ReadErrs.Add(1)
		return nil, ErrEIO
	}
	return f.inner.ReadFile(name)
}

func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	if err := f.enter(OpReadDir, dir, false); err != nil {
		f.stats.ReadErrs.Add(1)
		return nil, err
	}
	if f.chance(f.Faults().ReadErrProb) {
		f.stats.ReadErrs.Add(1)
		return nil, ErrEIO
	}
	return f.inner.ReadDir(dir)
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.enter(OpMkdir, path, true); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) SyncDir(dir string) error {
	if err := f.enter(OpSyncDir, dir, false); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultFile injects write/sync/close faults and records written bytes so
// a torn rename can truncate them.
type faultFile struct {
	fs   *FaultFS
	f    File
	path string
}

func (ff *faultFile) Write(p []byte) (int, error) {
	fs := ff.fs
	if err := fs.enter(OpWrite, ff.path, true); err != nil {
		fs.stats.WriteErrs.Add(1)
		return 0, err
	}
	fl := fs.Faults()
	if fs.chance(fl.WriteErrProb) {
		fs.stats.WriteErrs.Add(1)
		if fs.stats.WriteErrs.Load()%2 == 0 {
			return 0, ErrENOSPC
		}
		return 0, ErrEIO
	}
	if len(p) > 1 && fs.chance(fl.ShortWriteProb) {
		// Disk fills mid-write: a prefix lands, the caller gets ENOSPC.
		k := 1 + fs.rng.Intn(len(p)-1)
		n, err := ff.f.Write(p[:k])
		if err == nil {
			fs.record(ff.path, p[:n])
			err = ErrENOSPC
			fs.stats.ShortWrites.Add(1)
		}
		return n, err
	}
	n, err := ff.f.Write(p)
	if n > 0 {
		fs.record(ff.path, p[:n])
	}
	return n, err
}

func (fs *FaultFS) record(path string, p []byte) {
	fs.mu.Lock()
	fs.written[path] = append(fs.written[path], p...)
	fs.mu.Unlock()
}

func (ff *faultFile) Sync() error {
	fs := ff.fs
	if err := fs.enter(OpSync, ff.path, true); err != nil {
		fs.stats.SyncErrs.Add(1)
		return err
	}
	if fs.chance(fs.Faults().SyncErrProb) {
		fs.stats.SyncErrs.Add(1)
		return ErrEIO
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error {
	if err := ff.fs.enter(OpClose, ff.path, false); err != nil {
		return err
	}
	return ff.f.Close()
}
