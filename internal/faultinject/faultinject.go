// Package faultinject is the seeded, deterministic fault-injection layer
// behind the chaos tests: it makes the failure surfaces that loss/roam/
// restart experiments never touch — syscall errnos on the hot socket
// path, EIO/ENOSPC/torn writes in the journal, mangled datagrams in
// flight — reproducible inputs instead of production surprises.
//
// Three composable providers share one seeded PRNG discipline:
//
//   - Conn wraps a udpbatch.Conn and injects scripted or probabilistic
//     read/write errnos (EINTR, ENOBUFS, ENOMEM, persistent EACCES, …),
//     truncated reads, duplicated and corrupted datagrams, and partial
//     writes — every hazard the batch contract documents, on demand.
//   - FS is the filesystem seam the sessiond journal writes through; OSFS
//     is the real thing and FaultFS injects EIO, ENOSPC, short writes,
//     failed fsyncs and torn renames at every operation, with an OpHook
//     for scripting exact failures and recording attempt times.
//   - Mangler drops, duplicates, corrupts, or truncates individual wire
//     datagrams for harnesses that sit on a packet path rather than a
//     Conn (the bench chaos schedule uses one per direction).
//
// Everything is driven by Rand, a splitmix64 PRNG: same seed, same fault
// schedule, every run. All providers are safe for concurrent use.
package faultinject

import "sync"

// Rand is a small deterministic PRNG (splitmix64). It is seeded
// explicitly — never from the clock — so a fault schedule is a pure
// function of its seed. Safe for concurrent use.
type Rand struct {
	mu    sync.Mutex
	state uint64
}

// NewRand returns a Rand seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{state: uint64(seed)}
}

// Uint64 returns the next 64-bit value of the sequence.
func (r *Rand) Uint64() uint64 {
	r.mu.Lock()
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	r.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a value in [0, n). n must be > 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("faultinject: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Chance reports true with probability p (deterministically, from the
// seeded sequence). p <= 0 never fires; p >= 1 always fires.
func (r *Rand) Chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}
