// Package host provides deterministic models of the applications behind
// the paper's keystroke traces (§4): shells that echo line input, raw-mode
// full-screen editors, mail readers whose navigation keys trigger screen
// repaints, and password prompts that echo nothing. The trace generator
// composes them into sessions, and the benchmark harness replays their
// prerecorded responses exactly the way the paper's server-side replay
// process did ("waited for the expected user input and then replied in
// time with the prerecorded server output").
//
// All models are pure functions of their input history for a given seed,
// so the Mosh and SSH arms of every experiment see byte-identical host
// behavior.
package host

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// App models a host application. Input consumes one user keystroke (as
// host bytes) and returns the application's output write and how long the
// application "thought" before writing it (0 delay with nil output means
// no response).
type App interface {
	// Start returns the application's initial output (prompt, first
	// screen repaint).
	Start() []byte
	// Input processes one keystroke.
	Input(data []byte) (output []byte, delay time.Duration)
}

// Shell models a canonical line-editing shell at a prompt: printables are
// echoed, backspace rubs out, ENTER runs the "command" and prints its
// output followed by a fresh prompt.
type Shell struct {
	rng    *rand.Rand
	prompt string
	line   []byte
}

// NewShell returns a shell with deterministic command output from seed.
func NewShell(seed int64) *Shell {
	return &Shell{rng: rand.New(rand.NewSource(seed)), prompt: "user@remote:~$ "}
}

// Start prints the initial prompt.
func (s *Shell) Start() []byte { return []byte(s.prompt) }

// Input implements App.
func (s *Shell) Input(data []byte) ([]byte, time.Duration) {
	var out []byte
	delay := time.Duration(1+s.rng.Intn(8)) * time.Millisecond
	for _, b := range data {
		switch {
		case b == '\r':
			out = append(out, "\r\n"...)
			out = append(out, s.commandOutput()...)
			out = append(out, s.prompt...)
			s.line = s.line[:0]
		case b == 0x7f || b == 0x08:
			if len(s.line) > 0 {
				s.line = s.line[:len(s.line)-1]
				out = append(out, "\b \b"...)
			}
		case b == 0x03: // ^C
			out = append(out, "^C\r\n"...)
			out = append(out, s.prompt...)
			s.line = s.line[:0]
		case b >= 0x20 && b < 0x7f:
			s.line = append(s.line, b)
			out = append(out, b)
		case b >= 0x80: // UTF-8 continuation/lead: echo through
			s.line = append(s.line, b)
			out = append(out, b)
		}
	}
	return out, delay
}

// commandOutput fabricates a plausible command result.
func (s *Shell) commandOutput() []byte {
	lines := s.rng.Intn(6)
	var b strings.Builder
	for i := 0; i < lines; i++ {
		fmt.Fprintf(&b, "-rw-r--r-- 1 user user %6d Apr  1 12:%02d file%02d.txt\r\n",
			s.rng.Intn(100000), s.rng.Intn(60), s.rng.Intn(100))
	}
	return []byte(b.String())
}

// Editor models a raw-mode full-screen compose/edit session (vi, emacs,
// alpine's composer): printables echo at the cursor, lines soft-wrap with
// an explicit newline, and — like every real compose UI — the cursor is
// kept in a mid-screen editing region that is repainted when it fills,
// rather than scrolling the whole screen on every wrapped line. (Per-line
// full-screen scrolls would invalidate every outstanding prediction on a
// long-RTT path; real editors do not behave that way.)
type Editor struct {
	rng          *rand.Rand
	keystrokes   int
	width        int
	needRepaint  bool
	sinceRepaint int // printable characters since the last region repaint
}

// editorRegionTop is the 1-based row the editing region starts at; text
// autowraps downward from here and the region is repainted well before it
// could reach the bottom of a 24-row screen and force scrolling.
const editorRegionTop = 12

// editorRepaintEvery bounds how much text accumulates between region
// repaints: 6 lines of an 80-column screen.
const editorRepaintEvery = 6 * 80

// NewEditor returns an editor model.
func NewEditor(seed int64, width int) *Editor {
	return &Editor{rng: rand.New(rand.NewSource(seed)), width: width}
}

// Start paints the editor screen.
func (e *Editor) Start() []byte {
	var b strings.Builder
	b.WriteString("\x1b[2J\x1b[H")
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&b, "line %d of the file being edited\r\n", i+1)
	}
	b.WriteString("\x1b[24;1H\x1b[7m-- buffer.txt --\x1b[0m\x1b[12;1H")
	return []byte(b.String())
}

// Reposition makes the next response begin with a repaint into the editing
// region — what an editor does when the user returns to it.
func (e *Editor) Reposition() { e.needRepaint = true }

func (e *Editor) maybeRepaint(out []byte) []byte {
	if e.needRepaint || e.sinceRepaint >= editorRepaintEvery {
		e.needRepaint = false
		e.sinceRepaint = 0
		out = append(out, fmt.Sprintf("\x1b[%d;1H\x1b[0J", editorRegionTop)...)
	}
	return out
}

// Input implements App. Echoed text autowraps naturally; the region
// repaint keeps the cursor away from the screen bottom, as real compose
// interfaces do (they repaint their message area rather than scrolling the
// whole screen line by line).
func (e *Editor) Input(data []byte) ([]byte, time.Duration) {
	e.keystrokes++
	delay := time.Duration(1+e.rng.Intn(10)) * time.Millisecond
	var out []byte
	out = e.maybeRepaint(out)
	switch {
	case len(data) == 1 && data[0] >= 0x20 && data[0] < 0x7f:
		out = append(out, data[0])
		e.sinceRepaint++
		// Periodically the editor also updates its status line (a
		// second write shortly after the echo).
		if e.keystrokes%17 == 0 {
			out = append(out, "\x1b7\x1b[24;60H\x1b[7m[+]\x1b[0m\x1b8"...)
		}
	case len(data) == 1 && data[0] == '\r':
		out = append(out, "\r\n"...)
		e.sinceRepaint += e.width
	case len(data) == 1 && (data[0] == 0x7f || data[0] == 0x08):
		out = append(out, "\b \b"...)
	case len(data) == 3 && data[0] == 0x1b && data[1] == '[':
		// Arrow key: the editor moves the cursor (navigation).
		switch data[2] {
		case 'A', 'B', 'C', 'D':
			out = append(out, 0x1b, '[', data[2])
		}
	default:
		// Control command (^X, ^S...): redraw the status line.
		out = append(out, "\x1b7\x1b[24;1H\x1b[7m-- saved --\x1b[0m\x1b8"...)
		delay += time.Duration(e.rng.Intn(20)) * time.Millisecond
	}
	return out, delay
}

// MailReader models alpine/mutt-style message navigation: each keystroke
// repaints a chunk of the screen and echoes nothing — the paper's
// canonical "navigation" workload that prediction cannot help.
type MailReader struct {
	rng     *rand.Rand
	message int
}

// NewMailReader returns a mail reader model.
func NewMailReader(seed int64) *MailReader {
	return &MailReader{rng: rand.New(rand.NewSource(seed))}
}

// Start paints the index screen.
func (m *MailReader) Start() []byte { return m.repaint() }

func (m *MailReader) repaint() []byte {
	var b strings.Builder
	b.WriteString("\x1b[2J\x1b[H\x1b[7m  PINE 4.64   MESSAGE INDEX                    Folder: INBOX\x1b[0m\r\n\r\n")
	for i := 0; i < 18; i++ {
		marker := "  "
		if i == m.message%18 {
			marker = "->"
		}
		fmt.Fprintf(&b, "%s %3d  Apr %2d  sender%02d@example.com   (%4d)  Subject line %d\r\n",
			marker, i+1, 1+m.rng.Intn(28), m.rng.Intn(100), m.rng.Intn(9000), m.rng.Intn(1000))
	}
	return []byte(b.String())
}

// Input implements App.
func (m *MailReader) Input(data []byte) ([]byte, time.Duration) {
	delay := time.Duration(5+m.rng.Intn(30)) * time.Millisecond
	if len(data) == 1 {
		switch data[0] {
		case 'n', 'j':
			m.message++
			return m.repaint(), delay
		case 'p', 'k':
			if m.message > 0 {
				m.message--
			}
			return m.repaint(), delay
		case '\r', ' ':
			return m.repaint(), delay
		}
	}
	return nil, 0
}

// Pager models less/more: space and 'b' page through a document with a
// full-screen repaint, 'q' quits back to the shell prompt. Pure
// navigation — the canonical workload prediction cannot help (§2).
type Pager struct {
	rng  *rand.Rand
	page int
}

// NewPager returns a pager model.
func NewPager(seed int64) *Pager {
	return &Pager{rng: rand.New(rand.NewSource(seed))}
}

// Start paints the first page.
func (p *Pager) Start() []byte { return p.repaint() }

func (p *Pager) repaint() []byte {
	var b strings.Builder
	b.WriteString("\x1b[2J\x1b[H")
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&b, "MANUAL(%d)  section text line %d with some explanatory words %04x\r\n",
			p.page, i, p.rng.Intn(1<<16))
	}
	b.WriteString("\x1b[7m--More--\x1b[0m")
	return []byte(b.String())
}

// Input implements App.
func (p *Pager) Input(data []byte) ([]byte, time.Duration) {
	delay := time.Duration(2+p.rng.Intn(15)) * time.Millisecond
	if len(data) == 1 {
		switch data[0] {
		case ' ', 'f':
			p.page++
			return p.repaint(), delay
		case 'b':
			if p.page > 0 {
				p.page--
			}
			return p.repaint(), delay
		case 'q':
			return []byte("\x1b[2J\x1b[Huser@remote:~$ "), delay
		}
	}
	return nil, 0
}

// PasswordPrompt models sudo/passwd: the prompt is printed once and
// keystrokes produce no echo until ENTER.
type PasswordPrompt struct {
	done bool
}

// NewPasswordPrompt returns a password prompt model.
func NewPasswordPrompt() *PasswordPrompt { return &PasswordPrompt{} }

// Start prints the prompt.
func (p *PasswordPrompt) Start() []byte { return []byte("Password: ") }

// Input implements App.
func (p *PasswordPrompt) Input(data []byte) ([]byte, time.Duration) {
	if p.done {
		return nil, 0
	}
	for _, b := range data {
		if b == '\r' {
			p.done = true
			return []byte("\r\nauthentication ok\r\n"), 30 * time.Millisecond
		}
	}
	return nil, 0 // silence: no echo
}

// BulkStream models a bulk-output host: `tail -F` on a busy high-entropy
// log (ciphertext blobs, compressed build artifacts, base64 payloads),
// where every keystroke releases a burst of lines whose screen diff spans
// several MTU-sized fragments even after the transport's zlib pass. Each
// reply therefore leaves the daemon as a run of equal-length datagrams to
// one peer — the egress-train workload UDP segmentation offload coalesces
// into single kernel-stack traversals.
type BulkStream struct {
	rng   *rand.Rand
	lines int
}

// bulkAlphabet is wide enough (~6.5 bits/char of rng entropy) that zlib
// cannot collapse a burst below a few MTUs.
const bulkAlphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/=!@#$%^&*()-_[]{};:,.<>?|~"

// NewBulkStream returns a bulk-output model emitting lines log lines per
// keystroke (<=0 selects the default burst, which more than fills a
// 64-row window so the reply diff spans ~8 fragments at the transport's
// 1200-byte MTU).
func NewBulkStream(seed int64, lines int) *BulkStream {
	if lines <= 0 {
		lines = 96
	}
	return &BulkStream{rng: rand.New(rand.NewSource(seed)), lines: lines}
}

// Start fills the screen with the stream's tail.
func (t *BulkStream) Start() []byte { return t.emit(24) }

// bulkLineWidth sizes each log line for a large window (the screen diff
// is bounded by one screenful, so wide rows — a dashboard or build log on
// a modern full-screen terminal — are what make replies span many MTUs).
const bulkLineWidth = 160

func (t *BulkStream) emit(n int) []byte {
	const width = bulkLineWidth
	b := make([]byte, 0, n*(width+2))
	for i := 0; i < n; i++ {
		for j := 0; j < width; j++ {
			b = append(b, bulkAlphabet[t.rng.Intn(len(bulkAlphabet))])
		}
		b = append(b, '\r', '\n')
	}
	return b
}

// Input implements App: any keystroke streams the next burst. The think
// time is short and tight (1-3 ms) — a log follower releases its backlog
// as fast as the pty hands it over, which is what keeps correlated bursts
// across sessions concentrated into shared egress sweeps.
func (t *BulkStream) Input(data []byte) ([]byte, time.Duration) {
	return t.emit(t.lines), time.Duration(1+t.rng.Intn(3)) * time.Millisecond
}
