package host

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func feed(t *testing.T, app App, input string) []byte {
	t.Helper()
	var out []byte
	for _, b := range []byte(input) {
		o, d := app.Input([]byte{b})
		if d < 0 || d > 500*time.Millisecond {
			t.Fatalf("implausible app delay %v", d)
		}
		out = append(out, o...)
	}
	return out
}

func TestShellEchoesTyping(t *testing.T) {
	sh := NewShell(1)
	if !strings.Contains(string(sh.Start()), "$") {
		t.Fatalf("prompt missing: %q", sh.Start())
	}
	out := feed(t, sh, "ls -la")
	if string(out) != "ls -la" {
		t.Fatalf("echo = %q", out)
	}
}

func TestShellBackspace(t *testing.T) {
	sh := NewShell(1)
	feed(t, sh, "ab")
	out, _ := sh.Input([]byte{0x7f})
	if string(out) != "\b \b" {
		t.Fatalf("rubout = %q", out)
	}
	// Backspace on an empty line echoes nothing.
	sh2 := NewShell(1)
	out, _ = sh2.Input([]byte{0x7f})
	if len(out) != 0 {
		t.Fatalf("empty-line rubout = %q", out)
	}
}

func TestShellEnterRunsCommand(t *testing.T) {
	sh := NewShell(7)
	feed(t, sh, "ls")
	out, _ := sh.Input([]byte{'\r'})
	if !bytes.HasPrefix(out, []byte("\r\n")) {
		t.Fatalf("no newline before output: %q", out)
	}
	if !strings.HasSuffix(string(out), "user@remote:~$ ") {
		t.Fatalf("no fresh prompt: %q", out)
	}
}

func TestShellInterrupt(t *testing.T) {
	sh := NewShell(1)
	feed(t, sh, "sleep 100")
	out, _ := sh.Input([]byte{0x03})
	if !strings.Contains(string(out), "^C") {
		t.Fatalf("interrupt echo = %q", out)
	}
}

func TestShellDeterministic(t *testing.T) {
	a, b := NewShell(5), NewShell(5)
	feed(t, a, "make\r")
	feed(t, b, "make\r")
	oa, _ := a.Input([]byte{'\r'})
	ob, _ := b.Input([]byte{'\r'})
	if !bytes.Equal(oa, ob) {
		t.Fatal("same seed, different output")
	}
}

func TestEditorEchoAndStatus(t *testing.T) {
	ed := NewEditor(1, 80)
	if !strings.Contains(string(ed.Start()), "buffer.txt") {
		t.Fatal("editor start screen missing status line")
	}
	statusSeen := false
	for i := 0; i < 40; i++ {
		out, _ := ed.Input([]byte{'x'})
		if !bytes.HasPrefix(out, []byte{'x'}) {
			t.Fatalf("keystroke %d echo = %q", i, out)
		}
		if bytes.Contains(out, []byte("[+]")) {
			statusSeen = true
		}
	}
	if !statusSeen {
		t.Fatal("periodic status-line update never happened")
	}
}

func TestEditorArrows(t *testing.T) {
	ed := NewEditor(1, 80)
	out, _ := ed.Input([]byte{0x1b, '[', 'A'})
	if string(out) != "\x1b[A" {
		t.Fatalf("up-arrow response = %q", out)
	}
	out, _ = ed.Input([]byte{0x1b, '[', 'D'})
	if string(out) != "\x1b[D" {
		t.Fatalf("left-arrow response = %q", out)
	}
}

func TestMailNavigationRepaints(t *testing.T) {
	m := NewMailReader(1)
	if len(m.Start()) < 500 {
		t.Fatal("index screen too small")
	}
	out, _ := m.Input([]byte{'n'})
	if len(out) < 500 || !bytes.Contains(out, []byte("MESSAGE INDEX")) {
		t.Fatalf("navigation did not repaint: %d bytes", len(out))
	}
	// Unknown keys produce nothing.
	out, _ = m.Input([]byte{'z'})
	if out != nil {
		t.Fatalf("unknown key output = %q", out)
	}
}

func TestPagerPages(t *testing.T) {
	p := NewPager(3)
	first := string(p.Start())
	if !strings.Contains(first, "--More--") {
		t.Fatal("pager prompt missing")
	}
	next, _ := p.Input([]byte{' '})
	if string(next) == first {
		t.Fatal("space did not page forward")
	}
	quit, _ := p.Input([]byte{'q'})
	if !strings.Contains(string(quit), "$") {
		t.Fatalf("quit did not restore prompt: %q", quit)
	}
}

func TestPasswordPromptSilence(t *testing.T) {
	pw := NewPasswordPrompt()
	if string(pw.Start()) != "Password: " {
		t.Fatalf("prompt = %q", pw.Start())
	}
	for _, b := range []byte("hunter2") {
		out, _ := pw.Input([]byte{b})
		if out != nil {
			t.Fatalf("password echoed: %q", out)
		}
	}
	out, _ := pw.Input([]byte{'\r'})
	if !strings.Contains(string(out), "ok") {
		t.Fatalf("enter response = %q", out)
	}
	// After completion the prompt is inert.
	out, _ = pw.Input([]byte{'x'})
	if out != nil {
		t.Fatal("finished prompt still responding")
	}
}
