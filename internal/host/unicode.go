package host

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// unicodeEchoes is the grapheme repertoire of the CJK/emoji compose
// workload: wide ideographs, emoji, and accented letters built from
// combining marks — every printed cell is non-ASCII, which is exactly the
// screen-state workload the packed interned cell model exists for.
var unicodeEchoes = []string{
	"終", "端", "同", "期", "漢", "字", "状", "態",
	"🙂", "🚀",
	"é", "ö", "á", "ū",
}

// UnicodeEditor models a raw-mode CJK/emoji compose session (an IME-driven
// editor): every printable keystroke echoes the next non-ASCII grapheme,
// with the same mid-screen editing-region repaint discipline as Editor.
type UnicodeEditor struct {
	rng          *rand.Rand
	keystrokes   int
	width        int
	needRepaint  bool
	sinceRepaint int
}

// NewUnicodeEditor returns a CJK/emoji editor model.
func NewUnicodeEditor(seed int64, width int) *UnicodeEditor {
	return &UnicodeEditor{rng: rand.New(rand.NewSource(seed)), width: width}
}

// Start paints the editor screen with unicode content.
func (e *UnicodeEditor) Start() []byte {
	var b strings.Builder
	b.WriteString("\x1b[2J\x1b[H")
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&b, "第%d行: 編集中の文書 🙂 café %d\r\n", i+1, i)
	}
	b.WriteString("\x1b[24;1H\x1b[7m-- 文書.txt --\x1b[0m\x1b[12;1H")
	return []byte(b.String())
}

func (e *UnicodeEditor) maybeRepaint(out []byte) []byte {
	if e.needRepaint || e.sinceRepaint >= editorRepaintEvery {
		e.needRepaint = false
		e.sinceRepaint = 0
		out = append(out, fmt.Sprintf("\x1b[%d;1H\x1b[0J", editorRegionTop)...)
	}
	return out
}

// Input implements App: printables echo wide/combining graphemes, ENTER
// opens a fresh line, everything else redraws the status line.
func (e *UnicodeEditor) Input(data []byte) ([]byte, time.Duration) {
	e.keystrokes++
	delay := time.Duration(1+e.rng.Intn(10)) * time.Millisecond
	var out []byte
	out = e.maybeRepaint(out)
	switch {
	case len(data) == 1 && data[0] >= 0x20 && data[0] < 0x7f:
		g := unicodeEchoes[(e.keystrokes+int(data[0]))%len(unicodeEchoes)]
		out = append(out, g...)
		e.sinceRepaint += 2 // assume wide
	case len(data) == 1 && data[0] == '\r':
		out = append(out, "\r\n"...)
		e.sinceRepaint += e.width
	default:
		out = append(out, "\x1b7\x1b[24;1H\x1b[7m-- 保存 --\x1b[0m\x1b8"...)
		delay += time.Duration(e.rng.Intn(20)) * time.Millisecond
	}
	return out, delay
}

// LogTail models `tail -f` on a busy log (or a pager held on space):
// every keystroke scrolls several raw lines past, so the client's
// framebuffer accumulates deep scrollback — the workload the structurally
// shared scrollback exists for.
type LogTail struct {
	rng  *rand.Rand
	line int
}

// NewLogTail returns a deep-scrollback log stream model.
func NewLogTail(seed int64) *LogTail {
	return &LogTail{rng: rand.New(rand.NewSource(seed))}
}

// Start fills the screen with log output.
func (l *LogTail) Start() []byte { return l.emit(24) }

func (l *LogTail) emit(n int) []byte {
	var b strings.Builder
	for i := 0; i < n; i++ {
		l.line++
		fmt.Fprintf(&b, "%08d %s worker=%02d obj=%06x built in %dms\r\n",
			l.line, []string{"INFO", "WARN", "DEBUG"}[l.rng.Intn(3)],
			l.rng.Intn(32), l.rng.Intn(1<<24), 1+l.rng.Intn(90))
	}
	return []byte(b.String())
}

// Input implements App: any keystroke advances the stream by a few lines.
func (l *LogTail) Input(data []byte) ([]byte, time.Duration) {
	delay := time.Duration(1+l.rng.Intn(8)) * time.Millisecond
	return l.emit(3 + l.rng.Intn(3)), delay
}
