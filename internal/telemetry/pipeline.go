package telemetry

import (
	"sync/atomic"
	"time"
)

// Stage names one segment of the datagram pipeline, ingress to egress.
// Every stage gets a latency histogram in a Pipeline; the probes live in
// udpbatch/sessiond/network/transport and take timestamps from the
// configured Clock, so under simclock the CPU-bound stages read as 0 and
// the queueing stages read exact virtual waits — deterministically.
type Stage uint8

const (
	// StageRead is one ingress read call. On a served socket it includes
	// blocking for traffic; in simulation it is a 0-duration marker per
	// modeled read syscall (so its count still matches read_batch_calls).
	StageRead Stage = iota
	// StageDemux is envelope parsing + per-session grouping of one batch.
	StageDemux
	// StageQueueWait is a packet run's wait in a session inbox between
	// dispatch and its worker dequeuing it (async serving only).
	StageQueueWait
	// StageVerify is AEAD open (decrypt + authenticate) of one datagram.
	StageVerify
	// StageApply is statesync apply of one received instruction.
	StageApply
	// StageTick is one sender tick (diff computation + frame mint).
	StageTick
	// StageSeal is AEAD seal of one outgoing datagram.
	StageSeal
	// StageEgressWait is a datagram's wait in the egress ring between
	// enqueue and the sweep that writes it.
	StageEgressWait
	// StageWrite is one egress sweep's socket write (batched or looped).
	StageWrite
	// StageEcho is the end-to-end keystroke→echo-frame latency: from a
	// keystroke's arrival at the daemon to the mint of the first state
	// delta that carries its host output. This is the paper's Fig. 6
	// number, measured server-side.
	StageEcho
	numStages
)

var stageNames = [numStages]string{
	StageRead:       "read",
	StageDemux:      "demux",
	StageQueueWait:  "queue_wait",
	StageVerify:     "verify",
	StageApply:      "apply",
	StageTick:       "tick",
	StageSeal:       "seal",
	StageEgressWait: "egress_wait",
	StageWrite:      "write",
	StageEcho:       "echo",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage?"
}

// Stages lists every pipeline stage in ingress-to-egress order, for
// exporters and reports that iterate the whole vocabulary.
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// Pipeline holds one latency histogram per stage plus the Fig. 6 echo
// counters. A nil *Pipeline is valid and inert, so probe sites need no
// nil checks.
type Pipeline struct {
	hists [numStages]*Hist

	echoTotal atomic.Int64
	echoLE16  atomic.Int64 // echoes within 16 ms (one frame at 60 Hz)
	echoLERTT atomic.Int64 // echoes within one smoothed RTT
}

// NewPipeline returns a pipeline with empty stage histograms
// (nanosecond-valued, ≤1.6% relative error).
func NewPipeline() *Pipeline {
	p := &Pipeline{}
	for i := range p.hists {
		p.hists[i] = NewHist(6)
	}
	return p
}

// Observe records one stage latency. Nil-safe.
func (p *Pipeline) Observe(st Stage, d time.Duration) {
	if p == nil {
		return
	}
	p.hists[st].Observe(int64(d))
}

// Stage returns the histogram for one stage (nil on a nil pipeline —
// Hist's read accessors are nil-safe).
func (p *Pipeline) Stage(st Stage) *Hist {
	if p == nil {
		return nil
	}
	return p.hists[st]
}

// ObserveEcho records one matched keystroke→echo latency along with the
// paper's two threshold buckets: within 16 ms, and within one smoothed
// RTT (skipped when the transport has no RTT estimate yet). Nil-safe.
func (p *Pipeline) ObserveEcho(lat, srtt time.Duration) {
	if p == nil {
		return
	}
	p.hists[StageEcho].Observe(int64(lat))
	p.echoTotal.Add(1)
	if lat <= 16*time.Millisecond {
		p.echoLE16.Add(1)
	}
	if srtt > 0 && lat <= srtt {
		p.echoLERTT.Add(1)
	}
}

// EchoStats reports the Fig. 6 counters: total matched echoes, echoes
// within 16 ms, and echoes within one RTT. Nil-safe.
func (p *Pipeline) EchoStats() (total, le16, leRTT int64) {
	if p == nil {
		return 0, 0, 0
	}
	return p.echoTotal.Load(), p.echoLE16.Load(), p.echoLERTT.Load()
}

// Merge adds o's histograms and counters into p (nil o is ignored).
func (p *Pipeline) Merge(o *Pipeline) {
	if p == nil || o == nil {
		return
	}
	for i := range p.hists {
		p.hists[i].Merge(o.hists[i])
	}
	p.echoTotal.Add(o.echoTotal.Load())
	p.echoLE16.Add(o.echoLE16.Load())
	p.echoLERTT.Add(o.echoLERTT.Load())
}

// Reset zeroes every stage histogram and the echo counters.
func (p *Pipeline) Reset() {
	if p == nil {
		return
	}
	for i := range p.hists {
		p.hists[i].Reset()
	}
	p.echoTotal.Store(0)
	p.echoLE16.Store(0)
	p.echoLERTT.Store(0)
}
