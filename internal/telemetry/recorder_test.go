package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

var recT0 = time.Date(2012, 4, 1, 0, 0, 0, 0, time.UTC)

func TestRecorderRoundTrip(t *testing.T) {
	r := NewRecorder(16)
	r.Record(EvKeystroke, 7, 1, recT0)
	r.Record(EvEcho, 7, 4200, recT0.Add(12*time.Millisecond))
	r.Record(EvRoam, 9, 2, recT0.Add(5*time.Millisecond))
	evs := r.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("snapshot has %d events, want 3", len(evs))
	}
	// Oldest first regardless of shard interleaving.
	want := []struct {
		code Code
		sess uint64
		arg  uint64
	}{{EvKeystroke, 7, 1}, {EvRoam, 9, 2}, {EvEcho, 7, 4200}}
	for i, w := range want {
		if evs[i].Code != w.code || evs[i].Session != w.sess || evs[i].Arg != w.arg {
			t.Fatalf("event %d = %+v, want %+v", i, evs[i], w)
		}
	}
	if !evs[2].At.Equal(recT0.Add(12 * time.Millisecond)) {
		t.Fatalf("timestamp not preserved: %v", evs[2].At)
	}
}

// TestRecorderWrap proves the ring keeps only the newest slots-per-shard
// events for a session: one session hashes to one shard.
func TestRecorderWrap(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(EvBatchIn, 8, uint64(i), recT0.Add(time.Duration(i)*time.Second))
	}
	evs := r.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("snapshot has %d events, want ring size 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Arg != uint64(6+i) {
			t.Fatalf("event %d arg = %d, want %d (oldest overwritten)", i, ev.Arg, 6+i)
		}
	}
}

func TestRecorderDisabledAndNil(t *testing.T) {
	r := NewRecorder(16)
	r.SetEnabled(false)
	r.Record(EvRoam, 1, 0, recT0)
	if evs := r.Snapshot(); len(evs) != 0 {
		t.Fatalf("disabled recorder stored %d events", len(evs))
	}
	r.SetEnabled(true)
	r.Record(EvRoam, 1, 0, recT0)
	if evs := r.Snapshot(); len(evs) != 1 {
		t.Fatalf("re-enabled recorder stored %d events, want 1", len(evs))
	}

	var nilR *Recorder
	nilR.Record(EvRoam, 1, 0, recT0) // must not panic
	nilR.SetEnabled(true)
	if nilR.Enabled() || nilR.Snapshot() != nil {
		t.Fatal("nil recorder must be permanently disabled and empty")
	}
	if got := nilR.AppendDump(nil, "x", recT0); !strings.Contains(string(got), "0 events") {
		t.Fatalf("nil recorder dump = %q", got)
	}
}

// TestRecordAllocFree is the CI alloc gate for the enabled record path:
// storing an event must never allocate.
func TestRecordAllocFree(t *testing.T) {
	r := NewRecorder(0)
	ts := recT0
	if n := testing.AllocsPerRun(1000, func() { r.Record(EvEcho, 42, 7, ts) }); n != 0 {
		t.Fatalf("Record allocates %v per call", n)
	}
}

// TestRecordDisabledCheap is the CI gate for the disabled path: with
// recording off, Record must make no allocations and cost no more than
// a few nanoseconds (one atomic load + branch). The 250 ns ceiling is
// two orders of magnitude above the real cost, loose enough for any
// loaded CI runner while still catching an accidental time.Now() or
// allocation sneaking ahead of the gate.
func TestRecordDisabledCheap(t *testing.T) {
	r := NewRecorder(0)
	r.SetEnabled(false)
	ts := recT0
	if n := testing.AllocsPerRun(1000, func() { r.Record(EvEcho, 42, 7, ts) }); n != 0 {
		t.Fatalf("disabled Record allocates %v per call", n)
	}
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.Record(EvEcho, 42, 7, ts)
		}
	})
	if ns := res.NsPerOp(); ns > 250 {
		t.Fatalf("disabled Record costs %d ns/op, want a few ns", ns)
	}
}

func TestRecorderDumpFormats(t *testing.T) {
	r := NewRecorder(16)
	r.Record(EvDropAuth, 3, 0, recT0)
	r.Record(EvShedTrip, 0, 256, recT0.Add(time.Second))
	now := recT0.Add(2 * time.Second)

	text := string(r.AppendDump(nil, "unit-test", now))
	for _, want := range []string{"reason: unit-test", "2 events", "drop_auth", "shed_trip", "arg=256"} {
		if !strings.Contains(text, want) {
			t.Errorf("text dump missing %q:\n%s", want, text)
		}
	}

	var doc struct {
		Reason string `json:"reason"`
		Events []struct {
			Event   string `json:"event"`
			Session uint64 `json:"session"`
			Arg     uint64 `json:"arg"`
		} `json:"events"`
	}
	if err := json.Unmarshal(r.AppendDumpJSON(nil, "unit-test", now), &doc); err != nil {
		t.Fatalf("JSON dump does not parse: %v", err)
	}
	if doc.Reason != "unit-test" || len(doc.Events) != 2 {
		t.Fatalf("JSON dump = %+v", doc)
	}
	if doc.Events[0].Event != "drop_auth" || doc.Events[1].Arg != 256 {
		t.Fatalf("JSON events = %+v", doc.Events)
	}
}

// TestRecorderConcurrent hammers all shards under -race.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(64)
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(sess uint64) {
			for i := 0; i < 5000; i++ {
				r.Record(EvBatchIn, sess, uint64(i), recT0.Add(time.Duration(i)))
			}
			done <- struct{}{}
		}(uint64(w))
	}
	for i := 0; i < 100; i++ {
		r.Snapshot()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if evs := r.Snapshot(); len(evs) != 8*64 {
		t.Fatalf("final snapshot has %d events, want full rings (%d)", len(evs), 8*64)
	}
}
