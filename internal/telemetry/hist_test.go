package telemetry

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestHistQuantileOracle checks Hist quantiles against a sorted-sample
// oracle using the same rank rule: exact equality for values in the
// sub-2^subBits range, same-bucket equality (bounded relative error)
// above it.
func TestHistQuantileOracle(t *testing.T) {
	for _, sub := range []int{6, 8} {
		rng := rand.New(rand.NewSource(42))
		h := NewHist(sub)
		var vals []int64
		for i := 0; i < 5000; i++ {
			var v int64
			switch rng.Intn(3) {
			case 0:
				v = rng.Int63n(1 << sub) // exact region
			case 1:
				v = rng.Int63n(1 << 20)
			default:
				v = rng.Int63n(int64(10 * time.Second))
			}
			vals = append(vals, v)
			h.Observe(v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
			oracle := vals[int64(q*float64(len(vals)-1))]
			got := h.Quantile(q)
			if oracle < 1<<sub {
				if got != oracle {
					t.Errorf("subBits=%d q=%v: got %d, oracle %d (exact region)", sub, q, got, oracle)
				}
				continue
			}
			if h.bucketIndex(got) != h.bucketIndex(oracle) || got > oracle {
				t.Errorf("subBits=%d q=%v: got %d not in oracle %d's bucket", sub, q, got, oracle)
			}
		}
		if h.Count() != int64(len(vals)) {
			t.Errorf("count = %d, want %d", h.Count(), len(vals))
		}
	}
}

// TestHistBucketRoundTrip pins the bucket layout: every bucket's lower
// bound maps back to that bucket, and indexes are monotonic in value.
func TestHistBucketRoundTrip(t *testing.T) {
	h := NewHist(6)
	for idx := 0; idx < len(h.counts); idx++ {
		v := h.bucketValue(idx)
		if got := h.bucketIndex(v); got != idx {
			t.Fatalf("bucketIndex(bucketValue(%d)=%d) = %d", idx, v, got)
		}
	}
	last := -1
	for _, v := range []int64{0, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, 1 << 39, 1<<40 - 1, 1 << 50} {
		idx := h.bucketIndex(v)
		if idx < last {
			t.Fatalf("bucketIndex not monotonic at %d", v)
		}
		last = idx
	}
	if h.bucketIndex(1<<50) != len(h.counts)-1 {
		t.Fatal("overflow value must clamp to the last bucket")
	}
	if h.bucketIndex(-5) != 0 {
		t.Fatal("negative values must clamp to bucket 0")
	}
}

func TestHistMergeReset(t *testing.T) {
	a, b := NewHist(6), NewHist(6)
	for i := int64(1); i <= 100; i++ {
		a.Observe(i)
		b.Observe(i * 1000)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d, want 200", a.Count())
	}
	if a.Sum() != 5050+5050*1000 {
		t.Fatalf("merged sum = %d", a.Sum())
	}
	if q := a.Quantile(0.25); q > 64 {
		t.Fatalf("p25 of merged = %d, want from a's range", q)
	}
	if q := a.Quantile(0.9); q < 1000 {
		t.Fatalf("p90 of merged = %d, want from b's range", q)
	}

	// Mismatched layouts must be ignored, not corrupt the histogram.
	a.Merge(NewHist(8))
	if a.Count() != 200 {
		t.Fatalf("mismatched merge changed count to %d", a.Count())
	}

	a.Reset()
	if a.Count() != 0 || a.Sum() != 0 || a.Quantile(0.5) != 0 {
		t.Fatal("reset histogram is not empty")
	}
}

// TestHistConcurrent hammers one histogram from many goroutines while a
// reader takes quantiles; run under -race this proves the lock-free
// paths are data-race-free.
func TestHistConcurrent(t *testing.T) {
	h := NewHist(6)
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(rng.Int63n(1 << 30))
			}
		}(int64(w))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			h.Quantile(0.99)
			h.CountLE(1 << 20)
		}
	}()
	wg.Wait()
	<-done
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
}

// TestHistObserveAllocFree gates the record path at 0 allocs/observation.
func TestHistObserveAllocFree(t *testing.T) {
	h := NewHist(6)
	if n := testing.AllocsPerRun(1000, func() { h.Observe(123456) }); n != 0 {
		t.Fatalf("Hist.Observe allocates %v per call", n)
	}
}

func TestPipelineEchoStats(t *testing.T) {
	p := NewPipeline()
	p.ObserveEcho(5*time.Millisecond, 100*time.Millisecond)  // ≤16ms, ≤RTT
	p.ObserveEcho(20*time.Millisecond, 100*time.Millisecond) // ≤RTT only
	p.ObserveEcho(200*time.Millisecond, 100*time.Millisecond)
	p.ObserveEcho(time.Millisecond, 0) // no RTT estimate: 16ms bucket only
	total, le16, leRTT := p.EchoStats()
	if total != 4 || le16 != 2 || leRTT != 2 {
		t.Fatalf("echo stats = %d/%d/%d, want 4/2/2", total, le16, leRTT)
	}
	if p.Stage(StageEcho).Count() != 4 {
		t.Fatalf("echo hist count = %d", p.Stage(StageEcho).Count())
	}

	// The nil pipeline and nil hist are inert, not panics: probe sites
	// rely on this.
	var nilP *Pipeline
	nilP.Observe(StageSeal, time.Millisecond)
	nilP.ObserveEcho(time.Millisecond, time.Millisecond)
	if nilP.Stage(StageSeal).Count() != 0 {
		t.Fatal("nil pipeline stage must read as empty")
	}

	p.Reset()
	if tot, _, _ := p.EchoStats(); tot != 0 || p.Stage(StageEcho).Count() != 0 {
		t.Fatal("reset pipeline is not empty")
	}
}
