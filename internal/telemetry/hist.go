// Package telemetry is the daemon's observability spine: a log-bucketed
// histogram (Hist), a fixed set of datagram-pipeline stages with latency
// tracking (Pipeline), and a lock-free flight recorder of structured
// events (Recorder). Everything here is safe for concurrent use, records
// in 0 allocations on the steady-state path, and takes timestamps from
// the caller so it behaves identically under simclock virtual time.
package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histMaxBits caps the value range: observations at or above 2^histMaxBits
// land in the final bucket. 2^40 ns is ~18 minutes — far beyond any
// latency this pipeline can produce.
const histMaxBits = 40

// Hist is a log-linear histogram in the HDR style: values below
// 2^subBits are counted exactly (one bucket per value), and each higher
// power-of-two range [2^k, 2^(k+1)) is split into 2^(subBits-1) equal
// sub-buckets, bounding relative error by 2^-(subBits-1). Observe is
// lock-free and allocation-free; quantile reads race benignly with
// concurrent writers (they see some prefix of the in-flight updates).
//
// The zero Hist is not usable; construct with NewHist.
type Hist struct {
	subBits int
	counts  []atomic.Int64
	total   atomic.Int64
	sum     atomic.Int64
}

// NewHist returns a histogram with 2^subBits exact low buckets. subBits
// trades memory for precision: 6 (the Pipeline default) is ~9 KB per
// histogram at ≤1.6% error; 8 keeps every value below 256 exact (what
// the batch-size histograms need: batches are 1..128).
func NewHist(subBits int) *Hist {
	if subBits < 2 {
		subBits = 2
	}
	if subBits > 16 {
		subBits = 16
	}
	n := 1<<subBits + (histMaxBits-subBits)<<(subBits-1)
	return &Hist{subBits: subBits, counts: make([]atomic.Int64, n)}
}

// bucketIndex maps a value to its bucket. Values < 2^subBits map to
// themselves; above that, the top bit picks the power-of-two range and
// the next subBits-1 bits pick the sub-bucket.
func (h *Hist) bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	n := h.subBits
	if v < 1<<n {
		return int(v)
	}
	top := bits.Len64(uint64(v)) // v in [2^(top-1), 2^top)
	if top > histMaxBits {
		return len(h.counts) - 1
	}
	k := top - 1
	sub := int(v>>(k-(n-1))) - 1<<(n-1)
	return 1<<n + (k-n)<<(n-1) + sub
}

// bucketValue is the lowest value mapping to bucket idx, so
// bucketValue(bucketIndex(v)) <= v always holds and quantiles never
// overstate.
func (h *Hist) bucketValue(idx int) int64 {
	n := h.subBits
	if idx < 1<<n {
		return int64(idx)
	}
	r := idx - 1<<n
	k := n + r>>(n-1)
	sub := r & (1<<(n-1) - 1)
	return int64(1<<(n-1)+sub) << (k - (n - 1))
}

// Observe records one value. Negative values count as 0.
func (h *Hist) Observe(v int64) {
	h.counts[h.bucketIndex(v)].Add(1)
	h.total.Add(1)
	if v > 0 {
		h.sum.Add(v)
	}
}

// Count reports how many observations have been recorded.
func (h *Hist) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum reports the sum of all observed values.
func (h *Hist) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns the value at quantile q in [0, 1] (0 when empty):
// the lower bound of the bucket holding the observation of rank
// q·(count-1), exact for values in the sub-2^subBits range.
func (h *Hist) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total-1))
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen > rank {
			return h.bucketValue(i)
		}
	}
	return h.bucketValue(len(h.counts) - 1)
}

// CountLE reports how many observations landed in buckets whose lower
// bound is ≤ v — exact when v+1 is a bucket boundary (powers of two
// are), otherwise it may include up to one bucket of larger values.
// This is the Prometheus cumulative-bucket reading.
func (h *Hist) CountLE(v int64) int64 {
	if h == nil {
		return 0
	}
	idx := h.bucketIndex(v)
	var seen int64
	for i := 0; i <= idx; i++ {
		seen += h.counts[i].Load()
	}
	return seen
}

// Merge adds o's counts into h. Histograms with different subBits have
// incompatible bucket layouts; such merges (and nil) are ignored.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.subBits != h.subBits {
		return
	}
	for i := range h.counts {
		if c := o.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.total.Add(o.total.Load())
	h.sum.Add(o.sum.Load())
}

// Reset zeroes all counts. Concurrent observers may land updates on
// either side of the sweep; totals stay consistent with the buckets
// only once writers quiesce.
func (h *Hist) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.total.Store(0)
	h.sum.Store(0)
}

// QuantileDuration is Quantile for histograms observing nanoseconds.
func (h *Hist) QuantileDuration(q float64) time.Duration {
	return time.Duration(h.Quantile(q))
}
