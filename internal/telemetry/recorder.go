package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// Code identifies one flight-recorder event type. The vocabulary is the
// daemon's "what was I doing" trace: ingress batches, keystrokes and
// their echo frames, every drop class, and the degradation transitions
// from the fault-tolerance machinery.
type Code uint8

const (
	EvNone             Code = iota
	EvBatchIn               // ingress batch handled; arg = datagrams in the batch
	EvKeystroke             // user input reached a session's host; arg = input bytes
	EvEcho                  // keystroke matched to its echo frame; arg = latency in µs
	EvFrameSent             // sender minted a new state; arg = state number
	EvDropAuth              // datagram failed AEAD verification
	EvDropQueue             // session inbox full; arg = datagrams dropped
	EvDropEgress            // egress ring full, datagram dropped
	EvQuotaBlocked          // source refused pre-AEAD by the unauth quota
	EvRoam                  // authentic datagram from a new source address
	EvShedTrip              // shed policy tripped; arg = drop threshold
	EvJournalFlushFail      // journal flush failed; arg = consecutive failures
	EvJournalSuspend        // journaling suspended; arg = suspension mode
	EvJournalResume         // journaling resumed after suspension
	EvDump                  // a flight-recorder dump was taken
	numCodes
)

var codeNames = [numCodes]string{
	EvNone:             "none",
	EvBatchIn:          "batch_in",
	EvKeystroke:        "keystroke",
	EvEcho:             "echo",
	EvFrameSent:        "frame_sent",
	EvDropAuth:         "drop_auth",
	EvDropQueue:        "drop_queue",
	EvDropEgress:       "drop_egress",
	EvQuotaBlocked:     "quota_blocked",
	EvRoam:             "roam",
	EvShedTrip:         "shed_trip",
	EvJournalFlushFail: "journal_flush_fail",
	EvJournalSuspend:   "journal_suspend",
	EvJournalResume:    "journal_resume",
	EvDump:             "dump",
}

func (c Code) String() string {
	if int(c) < len(codeNames) {
		return codeNames[c]
	}
	return fmt.Sprintf("code(%d)", uint8(c))
}

const (
	recorderShards = 8
	wordsPerEvent  = 4 // ts, session, arg, code — each one atomic word

	// DefaultRecorderSlots is the per-shard ring size: 8×1024 events is
	// ~256 KB and several seconds of history under heavy load.
	DefaultRecorderSlots = 1024
)

// recShard is one ring. The cursor is padded onto its own cache line so
// the eight shards' hot counters do not false-share.
type recShard struct {
	pos   atomic.Uint64
	_     [7]uint64
	words []atomic.Uint64
}

// Recorder is a lock-free in-memory flight recorder: a fixed ring of
// packed events per shard, sharded by session ID so concurrent session
// workers do not contend on one cursor. Record is wait-free, makes no
// allocations, and when disabled costs one atomic load. An event's four
// words are stored non-transactionally — a reader racing a wrapping
// writer can observe a torn event; dumps are diagnostics, not an audit
// log, and the ~ring-period staleness window makes this vanishingly
// rare in practice.
//
// A nil *Recorder is valid and permanently disabled, so callers never
// need a nil check on the record path.
type Recorder struct {
	enabled atomic.Bool
	slots   uint64 // per shard, power of two
	shards  [recorderShards]recShard
}

// NewRecorder returns an enabled recorder with slotsPerShard event slots
// in each of its 8 shards (0 or negative = DefaultRecorderSlots; rounded
// up to a power of two).
func NewRecorder(slotsPerShard int) *Recorder {
	if slotsPerShard <= 0 {
		slotsPerShard = DefaultRecorderSlots
	}
	n := uint64(1)
	for n < uint64(slotsPerShard) {
		n <<= 1
	}
	r := &Recorder{slots: n}
	for i := range r.shards {
		r.shards[i].words = make([]atomic.Uint64, n*wordsPerEvent)
	}
	r.enabled.Store(true)
	return r
}

// Enabled reports whether Record currently stores events. Nil-safe.
func (r *Recorder) Enabled() bool {
	return r != nil && r.enabled.Load()
}

// SetEnabled flips recording on or off. Nil-safe (no-op on nil).
func (r *Recorder) SetEnabled(on bool) {
	if r != nil {
		r.enabled.Store(on)
	}
}

// Record stores one event, overwriting the oldest in the session's
// shard. The caller supplies the timestamp so simulated clocks record
// virtual time.
func (r *Recorder) Record(code Code, session, arg uint64, now time.Time) {
	if r == nil || !r.enabled.Load() {
		return
	}
	sh := &r.shards[session%recorderShards]
	base := ((sh.pos.Add(1) - 1) & (r.slots - 1)) * wordsPerEvent
	sh.words[base].Store(uint64(now.UnixNano()))
	sh.words[base+1].Store(session)
	sh.words[base+2].Store(arg)
	sh.words[base+3].Store(uint64(code))
}

// Event is one decoded flight-recorder entry.
type Event struct {
	At      time.Time
	Code    Code
	Session uint64
	Arg     uint64
}

// Snapshot decodes every recorded event, oldest first. Safe against
// concurrent recording (modulo the documented tearing window).
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	evs := make([]Event, 0, 64)
	for s := range r.shards {
		sh := &r.shards[s]
		for i := uint64(0); i < r.slots; i++ {
			base := i * wordsPerEvent
			code := Code(sh.words[base+3].Load())
			if code == EvNone || code >= numCodes {
				continue
			}
			evs = append(evs, Event{
				At:      time.Unix(0, int64(sh.words[base].Load())),
				Session: sh.words[base+1].Load(),
				Arg:     sh.words[base+2].Load(),
				Code:    code,
			})
		}
	}
	// Deterministic order even when virtual time stamps many events with
	// one instant: time, then session, then code, then arg.
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if !a.At.Equal(b.At) {
			return a.At.Before(b.At)
		}
		if a.Session != b.Session {
			return a.Session < b.Session
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Arg < b.Arg
	})
	return evs
}

// AppendDump renders the ring human-readably: one line per event with
// its offset from now (negative = past), newest last.
func (r *Recorder) AppendDump(dst []byte, reason string, now time.Time) []byte {
	evs := r.Snapshot()
	dst = fmt.Appendf(dst, "flight recorder dump (reason: %s) at %s — %d events\n",
		reason, now.UTC().Format(time.RFC3339Nano), len(evs))
	for _, ev := range evs {
		dst = fmt.Appendf(dst, "  %12s  %-18s sess=%-6d arg=%d\n",
			ev.At.Sub(now).Round(time.Microsecond), ev.Code, ev.Session, ev.Arg)
	}
	return dst
}

type dumpJSON struct {
	Reason   string      `json:"reason"`
	AtUnixNs int64       `json:"at_unix_ns"`
	Events   []eventJSON `json:"events"`
}

type eventJSON struct {
	AtUnixNs int64  `json:"at_unix_ns"`
	Event    string `json:"event"`
	Session  uint64 `json:"session"`
	Arg      uint64 `json:"arg"`
}

// AppendDumpJSON renders the same dump as one JSON document for
// machine consumption (CI artifacts, log shippers).
func (r *Recorder) AppendDumpJSON(dst []byte, reason string, now time.Time) []byte {
	evs := r.Snapshot()
	doc := dumpJSON{Reason: reason, AtUnixNs: now.UnixNano(), Events: make([]eventJSON, len(evs))}
	for i, ev := range evs {
		doc.Events[i] = eventJSON{
			AtUnixNs: ev.At.UnixNano(),
			Event:    ev.Code.String(),
			Session:  ev.Session,
			Arg:      ev.Arg,
		}
	}
	b, err := json.Marshal(doc)
	if err != nil { // unreachable: the document is plain data
		return dst
	}
	return append(dst, b...)
}
