// Package binio provides the bounds-checked binary reader shared by the
// persistence codecs (terminal screen snapshots, sessiond session
// journals). Both decode untrusted bytes from disk, so every primitive
// validates against the remaining input and reports failure instead of
// panicking; hardening fixes land here once instead of diverging across
// hand-rolled copies.
package binio

import "encoding/binary"

// Reader consumes a byte slice front to back. The zero value reads from
// an empty input; all methods are total (no panics on any input).
type Reader struct {
	b []byte
}

// NewReader returns a reader over data (which is not copied).
func NewReader(data []byte) Reader { return Reader{b: data} }

// Rest returns the unconsumed remainder.
func (r *Reader) Rest() []byte { return r.b }

// Len reports how many bytes remain.
func (r *Reader) Len() int { return len(r.b) }

// Uvarint reads one unsigned varint.
func (r *Reader) Uvarint() (uint64, bool) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, false
	}
	r.b = r.b[n:]
	return v, true
}

// BoundedUvarint reads one unsigned varint and rejects values above max.
func (r *Reader) BoundedUvarint(max uint64) (uint64, bool) {
	v, ok := r.Uvarint()
	if !ok || v > max {
		return 0, false
	}
	return v, true
}

// Varint reads one signed varint.
func (r *Reader) Varint() (int64, bool) {
	v, n := binary.Varint(r.b)
	if n <= 0 {
		return 0, false
	}
	r.b = r.b[n:]
	return v, true
}

// Byte reads one byte.
func (r *Reader) Byte() (byte, bool) {
	if len(r.b) < 1 {
		return 0, false
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, true
}

// Bytes reads n bytes (aliasing the input, not copying). Negative n or
// insufficient input fails.
func (r *Reader) Bytes(n int) ([]byte, bool) {
	if n < 0 || len(r.b) < n {
		return nil, false
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v, true
}
