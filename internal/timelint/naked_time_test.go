package timelint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// guardedPackages are the internal packages where every clock read, sleep,
// and timer must go through an injected simclock.Clock. internal/simclock
// itself is the one place naked time.* calls are implemented, and is
// deliberately absent.
var guardedPackages = []string{
	"internal/sessiond",
	"internal/transport",
	"internal/network",
	"internal/statesync",
	"internal/udpbatch",
	"internal/bench",
	"internal/telemetry",
}

// nakedTime matches the time package's clock surface. Constructors and
// arithmetic (time.Duration, time.Unix, t.Add, t.Sub, t.Before) are fine —
// they do not read a clock or schedule a wakeup.
var nakedTime = regexp.MustCompile(`\btime\.(Now|NewTimer|NewTicker|Sleep|After|AfterFunc|Tick|Since)\(`)

// allowlist maps repo-relative file paths to the reason a naked call is
// tolerated there. Keep it empty unless a file genuinely cannot take an
// injected clock; every entry needs a justification.
var allowlist = map[string]string{}

// TestNoNakedTime walks every non-test Go file in the guarded packages and
// fails on any direct time.Now/NewTimer/NewTicker/Sleep/After/AfterFunc/
// Tick/Since call outside the allowlist. Comment lines are skipped so
// prose may name the forbidden functions. CI runs this by name; it also
// rides the ordinary `go test ./...` tier so the gate cannot be forgotten.
func TestNoNakedTime(t *testing.T) {
	root, err := repoRoot()
	if err != nil {
		t.Fatal(err)
	}
	var violations []string
	for _, pkg := range guardedPackages {
		dir := filepath.Join(root, pkg)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("guarded package missing: %v", err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			rel := pkg + "/" + name
			if reason, ok := allowlist[rel]; ok {
				t.Logf("allowlisted: %s (%s)", rel, reason)
				continue
			}
			violations = append(violations, scanFile(t, filepath.Join(dir, name), rel)...)
		}
	}
	if len(violations) > 0 {
		t.Errorf("naked time.* calls in guarded packages (inject simclock.Clock instead, or allowlist with a reason):\n  %s",
			strings.Join(violations, "\n  "))
	}
}

func scanFile(t *testing.T, path, rel string) []string {
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineno := 0
	inBlockComment := false
	for sc.Scan() {
		lineno++
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if inBlockComment {
			if strings.Contains(trimmed, "*/") {
				inBlockComment = false
			}
			continue
		}
		if strings.HasPrefix(trimmed, "//") {
			continue
		}
		if strings.HasPrefix(trimmed, "/*") {
			if !strings.Contains(trimmed, "*/") {
				inBlockComment = true
			}
			continue
		}
		if m := nakedTime.FindString(line); m != "" {
			out = append(out, fmt.Sprintf("%s:%d: %s", rel, lineno, m))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// repoRoot finds the module root by walking up from the working directory
// to the nearest go.mod — the test binary may run from any package dir.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above test working directory")
		}
		dir = parent
	}
}
