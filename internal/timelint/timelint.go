// Package timelint holds the repository's naked-time guardrail: a test
// that fails whenever a core internal package calls the time package's
// clock surface (time.Now, time.NewTimer, time.Sleep, time.After, …)
// directly instead of going through an injected simclock.Clock. Two time
// regimes stitched together is how virtual-time tests silently measure
// the wrong thing; this gate keeps the repository on one.
package timelint
