package overlay

import (
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/terminal"
)

var t0 = time.Date(2012, 4, 1, 0, 0, 0, 0, time.UTC)

// env bundles an engine with a pretend server screen for direct tests.
type env struct {
	clk *simclock.Manual
	e   *Engine
	fb  *terminal.Framebuffer // client's view of the server screen
	emu *terminal.Emulator
	seq uint64
}

func newEnv(pref DisplayPreference) *env {
	clk := simclock.NewManual(t0)
	emu := terminal.NewEmulator(40, 10)
	v := &env{clk: clk, e: NewEngine(clk, pref), emu: emu, fb: emu.Framebuffer()}
	// Slow connection so Adaptive mode predicts.
	v.e.SetSendInterval(250 * time.Millisecond)
	v.e.Cull(v.fb)
	return v
}

// typeByte simulates the user pressing a key: the engine sees it, then the
// "network" sends user-stream state seq.
func (v *env) typeByte(b byte) uint64 {
	v.seq++
	v.e.NewUserInput(v.seq, []byte{b}, v.fb)
	v.e.SetLocalFrameSent(v.seq)
	return v.seq
}

// serverEchoes makes the authoritative screen echo s and acknowledges all
// input through seq (as the echo ack would).
func (v *env) serverEchoes(s string, seq uint64) {
	v.emu.WriteString(s)
	v.e.SetLocalFrameLateAcked(seq)
	v.e.Cull(v.fb)
}

func display(v *env) *terminal.Framebuffer {
	d := v.fb.Clone()
	v.e.Apply(d)
	return d
}

func TestFirstEpochIsTentative(t *testing.T) {
	v := newEnv(Adaptive)
	v.typeByte('h')
	d := display(v)
	if d.Cell(0, 0).ContentsString() == "h" {
		t.Fatal("unconfirmed first-epoch prediction was displayed")
	}
}

func TestEpochConfirmationDisplaysPredictions(t *testing.T) {
	v := newEnv(Adaptive)
	s1 := v.typeByte('h')
	v.typeByte('e')
	v.typeByte('y')
	// Server confirms the first keystroke only.
	v.serverEchoes("h", s1)
	d := display(v)
	if got := d.Cell(0, 1).ContentsString(); got != "e" {
		t.Fatalf("cell(0,1) = %q; epoch confirmation should display later predictions", got)
	}
	if got := d.Cell(0, 2).ContentsString(); got != "y" {
		t.Fatalf("cell(0,2) = %q", got)
	}
	// And future keystrokes in the same epoch display immediately.
	v.typeByte('!')
	d = display(v)
	if got := d.Cell(0, 3).ContentsString(); got != "!" {
		t.Fatalf("cell(0,3) = %q; same-epoch prediction should show instantly", got)
	}
}

func TestPredictionsAdvanceCursor(t *testing.T) {
	v := newEnv(Adaptive)
	s1 := v.typeByte('a')
	v.serverEchoes("a", s1)
	v.typeByte('b')
	v.typeByte('c')
	d := display(v)
	if d.DS.CursorCol != 3 {
		t.Fatalf("displayed cursor col = %d, want 3", d.DS.CursorCol)
	}
}

func TestMispredictionRepairs(t *testing.T) {
	v := newEnv(Adaptive)
	s1 := v.typeByte('x')
	v.serverEchoes("x", s1) // confident now
	s2 := v.typeByte('y')   // predicted 'y' at (0,1), displayed
	if got := display(v).Cell(0, 1).ContentsString(); got != "y" {
		t.Fatalf("prediction not displayed: %q", got)
	}
	// Server actually printed 'Z' there (host did something different).
	v.serverEchoes("Z", s2)
	d := display(v)
	if got := d.Cell(0, 1).ContentsString(); got != "Z" {
		t.Fatalf("cell(0,1) = %q after repair, want server's Z", got)
	}
	if v.e.Stats().Incorrect == 0 {
		t.Fatal("misprediction not counted")
	}
}

func TestWrongTentativePredictionKillsEpochQuietly(t *testing.T) {
	v := newEnv(Adaptive)
	s1 := v.typeByte('q') // tentative prediction
	// Host does not echo (e.g. password prompt): screen unchanged.
	v.e.SetLocalFrameLateAcked(s1)
	v.e.Cull(v.fb)
	d := display(v)
	if d.Cell(0, 0).ContentsString() == "q" {
		t.Fatal("killed prediction still displayed")
	}
	if v.e.Stats().EpochsKilled == 0 {
		t.Fatal("epoch not killed")
	}
	// Confidence was never granted, so future predictions stay hidden.
	v.typeByte('r')
	if display(v).Cell(0, 1).ContentsString() == "r" {
		t.Fatal("post-kill prediction displayed without confirmation")
	}
}

func TestControlCharactersEndEpoch(t *testing.T) {
	v := newEnv(Adaptive)
	s1 := v.typeByte('a')
	v.serverEchoes("a", s1)
	v.typeByte('b') // displayed (confirmed epoch)
	epochBefore := v.e.predictionEpoch
	v.typeByte(0x03) // Ctrl-C
	if v.e.predictionEpoch <= epochBefore {
		t.Fatal("control character did not end the epoch")
	}
	// New predictions are tentative again.
	v.typeByte('c')
	d := display(v)
	found := false
	for col := 0; col < d.W; col++ {
		if d.Cell(0, col).ContentsString() == "c" {
			found = true
		}
	}
	if found {
		t.Fatal("post-control prediction displayed before confirmation")
	}
}

func TestArrowKeysEndEpoch(t *testing.T) {
	v := newEnv(Adaptive)
	epochBefore := v.e.predictionEpoch
	v.seq++
	v.e.NewUserInput(v.seq, terminal.EncodeSpecial(terminal.KeyUp, false), v.fb)
	if v.e.predictionEpoch <= epochBefore {
		t.Fatal("arrow key did not end the epoch")
	}
}

func TestBackspacePrediction(t *testing.T) {
	v := newEnv(Adaptive)
	s1 := v.typeByte('a')
	v.serverEchoes("a", s1)
	s2 := v.typeByte('b')
	v.serverEchoes("b", s2)
	// Cursor is at col 2; backspace should predict erasing col 1.
	v.typeByte(0x7f)
	d := display(v)
	if got := d.Cell(0, 1).ContentsString(); got == "b" {
		t.Fatalf("backspace prediction did not erase: %q", got)
	}
	if d.DS.CursorCol != 1 {
		t.Fatalf("cursor after backspace prediction = %d", d.DS.CursorCol)
	}
}

func TestNeverPreferenceDisablesEngine(t *testing.T) {
	v := newEnv(Never)
	s1 := v.typeByte('a')
	v.serverEchoes("a", s1)
	v.typeByte('b')
	if display(v).Cell(0, 1).ContentsString() == "b" {
		t.Fatal("Never preference displayed a prediction")
	}
	if v.e.Stats().Predicted != 0 {
		t.Fatal("Never preference made predictions")
	}
}

func TestAdaptiveHidesOnFastConnection(t *testing.T) {
	v := newEnv(Adaptive)
	v.e.SetSendInterval(5 * time.Millisecond) // LAN-fast
	s1 := v.typeByte('a')
	v.serverEchoes("a", s1)
	v.typeByte('b')
	if display(v).Cell(0, 1).ContentsString() == "b" {
		t.Fatal("fast connection should not display predictions")
	}
}

func TestAlwaysPreferenceShowsAfterConfirmation(t *testing.T) {
	v := newEnv(Always)
	v.e.SetSendInterval(5 * time.Millisecond)
	s1 := v.typeByte('a')
	v.serverEchoes("a", s1)
	v.typeByte('b')
	if display(v).Cell(0, 1).ContentsString() != "b" {
		t.Fatal("Always preference should display despite fast connection")
	}
}

func TestFlaggingUnderlinesPredictions(t *testing.T) {
	v := newEnv(Adaptive)
	v.e.SetSendInterval(300 * time.Millisecond) // above flag trigger
	s1 := v.typeByte('a')
	v.serverEchoes("a", s1)
	v.typeByte('b')
	d := display(v)
	if !d.Cell(0, 1).Rend.Underline {
		t.Fatal("high-latency prediction not underlined")
	}
	if !v.e.Flagging() {
		t.Fatal("flagging not set")
	}
}

func TestNoUnderlineOnModerateLatency(t *testing.T) {
	v := newEnv(Adaptive)
	v.e.SetSendInterval(40 * time.Millisecond) // predict but no flag
	s1 := v.typeByte('a')
	v.serverEchoes("a", s1)
	v.typeByte('b')
	d := display(v)
	if d.Cell(0, 1).ContentsString() != "b" {
		t.Fatal("prediction should display")
	}
	if d.Cell(0, 1).Rend.Underline {
		t.Fatal("prediction underlined below flag trigger")
	}
}

func TestEchoAckGatesJudgement(t *testing.T) {
	// A prediction must NOT be judged wrong merely because the server
	// acked the keystroke before the application echoed (§3.2) — only
	// the echo ack (late ack) triggers judgement.
	v := newEnv(Adaptive)
	s1 := v.typeByte('h')
	v.e.SetLocalFrameAcked(s1) // acked, but echo not yet reflected
	v.e.Cull(v.fb)
	if _, ok := v.e.records[s1]; !ok {
		t.Fatal("record vanished")
	}
	if v.e.records[s1].Outcome != OutcomePending {
		t.Fatalf("prediction judged before echo ack: %v", v.e.records[s1].Outcome)
	}
	// Now the echo arrives together with the echo ack: correct.
	v.serverEchoes("h", s1)
	rec, ok := v.e.TakeInputRecord(s1)
	if !ok || rec.Outcome != OutcomeCorrect {
		t.Fatalf("outcome = %+v, ok=%v", rec, ok)
	}
}

func TestLastColumnIsCautious(t *testing.T) {
	v := newEnv(Adaptive)
	// Put the real cursor at the right margin (col 39 of 40).
	v.emu.WriteString("\x1b[1;40H")
	epochBefore := v.e.predictionEpoch
	v.typeByte('x')
	// The echo itself is predicted, but the epoch turns tentative: the
	// next position depends on the host's wrap behavior (the paper's
	// word-wrap hazard).
	if v.e.predictionEpoch <= epochBefore {
		t.Fatal("typing at the margin should become tentative (word-wrap hazard)")
	}
	if v.e.Stats().Predicted != 1 {
		t.Fatalf("predicted %d cells, want the margin echo itself", v.e.Stats().Predicted)
	}
	// The predicted cursor continues on the next row, so follow-on
	// typing stays aligned.
	if !v.e.cursor.active || v.e.cursor.row != 1 || v.e.cursor.col != 0 {
		t.Fatalf("cursor prediction after wrap = %+v", v.e.cursor)
	}
}

func TestResizeResetsPredictions(t *testing.T) {
	v := newEnv(Adaptive)
	s1 := v.typeByte('a')
	v.serverEchoes("a", s1)
	v.typeByte('b')
	v.emu.Resize(80, 24)
	v.e.Cull(v.emu.Framebuffer())
	d := v.emu.Framebuffer().Clone()
	v.e.Apply(d)
	if d.Cell(0, 1).ContentsString() == "b" {
		t.Fatal("prediction survived a resize")
	}
}

func TestPendingExpiryResets(t *testing.T) {
	v := newEnv(Adaptive)
	v.typeByte('a')
	v.clk.Advance(25 * time.Second) // connection dead
	v.e.Cull(v.fb)
	if v.e.anyActive() {
		t.Fatal("stale predictions not abandoned")
	}
	// But predictions younger than the worst plausible verification
	// round trip (bufferbloated LTE) must survive.
	v2 := newEnv(Adaptive)
	v2.typeByte('b')
	v2.clk.Advance(8 * time.Second)
	v2.e.Cull(v2.fb)
	if !v2.e.anyActive() {
		t.Fatal("prediction abandoned before a bufferbloated RTT elapsed")
	}
}

func TestUTF8KeystrokePrediction(t *testing.T) {
	v := newEnv(Adaptive)
	s1 := v.typeByte('a')
	v.serverEchoes("a", s1)
	// é as a single multi-byte event.
	v.seq++
	v.e.NewUserInput(v.seq, []byte("é"), v.fb)
	v.e.SetLocalFrameSent(v.seq)
	d := display(v)
	if got := d.Cell(0, 1).ContentsString(); got != "é" {
		t.Fatalf("cell(0,1) = %q, want é", got)
	}
	// é split into two single-byte events (raw tty read).
	raw := []byte("ü")
	v.seq++
	v.e.NewUserInput(v.seq, raw[:1], v.fb)
	v.seq++
	v.e.NewUserInput(v.seq, raw[1:], v.fb)
	d = display(v)
	if got := d.Cell(0, 2).ContentsString(); got != "ü" {
		t.Fatalf("cell(0,2) = %q, want ü (split UTF-8)", got)
	}
}

func TestGlitchTriggerRaisesFlagging(t *testing.T) {
	v := newEnv(Adaptive)
	v.e.SetSendInterval(40 * time.Millisecond) // predict; below the flag-off threshold
	s1 := v.typeByte('a')
	v.clk.Advance(400 * time.Millisecond) // slow confirmation: a glitch
	v.serverEchoes("a", s1)
	if !v.e.Flagging() {
		t.Fatal("slow confirmation did not raise flagging")
	}
	// Ten quick confirmations spaced out repair confidence.
	for i := 0; i < glitchRepairCount; i++ {
		s := v.typeByte(byte('b' + i))
		v.clk.Advance(200 * time.Millisecond)
		v.serverEchoes(string(rune('b'+i)), s)
	}
	if v.e.Flagging() {
		t.Fatal("flagging not repaired after quick confirmations")
	}
}

func TestStatsTracking(t *testing.T) {
	v := newEnv(Adaptive)
	s1 := v.typeByte('a')
	v.serverEchoes("a", s1)
	s2 := v.typeByte('b')
	v.serverEchoes("b", s2)
	st := v.e.Stats()
	if st.InputEvents != 2 || st.Predicted != 2 || st.Correct < 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInputRecordLifecycle(t *testing.T) {
	v := newEnv(Adaptive)
	s1 := v.typeByte('a')
	rec, ok := v.e.TakeInputRecord(s1)
	if !ok || rec.Outcome != OutcomePending || rec.Displayed {
		t.Fatalf("fresh record = %+v", rec)
	}
	if _, ok := v.e.TakeInputRecord(s1); ok {
		t.Fatal("record not removed")
	}
}
