package overlay

import (
	"strings"
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/terminal"
)

func TestNoBannerWhileHealthy(t *testing.T) {
	clk := simclock.NewManual(t0)
	n := NewNotificationEngine(clk)
	n.ServerHeard()
	clk.Advance(3 * time.Second)
	fb := terminal.NewFramebuffer(40, 5)
	fb.Cell(0, 0).SetContents("x")
	n.Apply(fb)
	if fb.Cell(0, 0).ContentsString() != "x" {
		t.Fatal("banner painted while connection healthy")
	}
}

func TestBannerAfterSilence(t *testing.T) {
	clk := simclock.NewManual(t0)
	n := NewNotificationEngine(clk)
	n.ServerHeard()
	clk.Advance(10 * time.Second)
	if !n.NeedsBanner() {
		t.Fatal("no banner after 10s of silence")
	}
	fb := terminal.NewFramebuffer(60, 5)
	n.Apply(fb)
	row := fb.Text(0)
	if !strings.Contains(row, "Last contact 10 seconds ago") {
		t.Fatalf("banner = %q", row)
	}
	if !fb.Cell(0, 1).Rend.Inverse {
		t.Fatal("banner not inverse video")
	}
}

func TestBannerUnitsScale(t *testing.T) {
	clk := simclock.NewManual(t0)
	n := NewNotificationEngine(clk)
	n.ServerHeard()
	clk.Advance(5 * time.Minute)
	fb := terminal.NewFramebuffer(60, 5)
	n.Apply(fb)
	if !strings.Contains(fb.Text(0), "5 minutes") {
		t.Fatalf("banner = %q", fb.Text(0))
	}
	clk.Advance(3 * time.Hour)
	fb2 := terminal.NewFramebuffer(60, 5)
	n.Apply(fb2)
	if !strings.Contains(fb2.Text(0), "hours") {
		t.Fatalf("banner = %q", fb2.Text(0))
	}
}

func TestBannerMessageOnly(t *testing.T) {
	clk := simclock.NewManual(t0)
	n := NewNotificationEngine(clk)
	n.Message = "connecting..."
	fb := terminal.NewFramebuffer(60, 5)
	n.Apply(fb)
	if !strings.Contains(fb.Text(0), "mosh: connecting...") {
		t.Fatalf("banner = %q", fb.Text(0))
	}
}

func TestBannerNeverHeard(t *testing.T) {
	clk := simclock.NewManual(t0)
	n := NewNotificationEngine(clk)
	if n.NeedsBanner() {
		t.Fatal("banner before any contact and without a message")
	}
}
