// Package overlay implements Mosh's speculative local echo (paper §3):
// the client predicts the screen effect of each keystroke, displays
// confident predictions immediately, verifies them against the
// authoritative state arriving from the server, and repairs mistakes
// within an RTT.
//
// Predictions are grouped into epochs: an epoch begins tentatively, with
// its predictions kept in the background; once the server confirms any
// prediction of the epoch, the whole epoch (including future predictions)
// is displayed. Keystrokes that tend to change the host's echo behavior —
// control characters, arrow keys, ESC sequences — end the current epoch,
// returning the engine to the background state (§3.2).
//
// Correctness is judged with the server-side "echo ack" carried in the
// synchronized terminal state: a prediction is evaluated only once the
// server reports that the corresponding input has been presented to the
// application for at least 50 ms, which eliminates the false-negative
// flicker the paper describes.
package overlay

import (
	"time"
	"unicode/utf8"

	"repro/internal/simclock"
	"repro/internal/terminal"
)

// DisplayPreference selects when predictions are shown.
type DisplayPreference int

const (
	// Adaptive shows predictions only when the connection is slow enough
	// for them to help (the default, as in the reference implementation).
	Adaptive DisplayPreference = iota
	// Always shows confirmed-epoch predictions regardless of latency.
	Always
	// Never disables the prediction engine.
	Never
)

// Timing and confidence constants from the reference implementation.
const (
	// srttTriggerLow/High turn prediction display off/on (hysteresis) as
	// the estimated frame interval crosses them.
	srttTriggerLow  = 20 * time.Millisecond
	srttTriggerHigh = 30 * time.Millisecond
	// flagTriggerLow/High turn the "underline unconfirmed predictions"
	// display off/on (§3: underlines on high-delay connections).
	flagTriggerLow  = 50 * time.Millisecond
	flagTriggerHigh = 80 * time.Millisecond
	// glitchThreshold: a prediction outstanding this long counts as a
	// glitch and raises the flagging trigger.
	glitchThreshold = 250 * time.Millisecond
	// glitchRepairCount quick confirmations are needed to clear flagging.
	glitchRepairCount       = 10
	glitchRepairMinInterval = 150 * time.Millisecond
	// pendingExpiry: predictions unresolved this long are abandoned (the
	// connection is effectively down). It must comfortably exceed the
	// worst round trip prediction verification can survive — a
	// bufferbloated LTE path runs 5-8 s (§4).
	pendingExpiry = 20 * time.Second
)

// Outcome is the eventual fate of one predicted keystroke.
type Outcome int

const (
	// OutcomePending: not yet judged against the authoritative state.
	OutcomePending Outcome = iota
	// OutcomeCorrect: the server's screen confirmed the prediction.
	OutcomeCorrect
	// OutcomeIncorrect: the prediction was wrong and was repaired.
	OutcomeIncorrect
	// OutcomeNone: no prediction was possible for this input.
	OutcomeNone
)

// Stats aggregates engine activity for the evaluation harness.
type Stats struct {
	InputEvents      int // keystrokes observed
	Predicted        int // cell predictions made
	ShownImmediately int
	Correct          int
	Incorrect        int
	NoCredit         int
	EpochsKilled     int
}

// InputRecord traces one keystroke through the engine for latency
// measurement (paper Figure 2).
type InputRecord struct {
	Epoch       int64
	MadeAt      time.Time
	DisplayedAt time.Time
	Displayed   bool
	Outcome     Outcome
}

type cellPrediction struct {
	active              bool
	tentativeUntilEpoch int64
	expirationFrame     uint64
	predictionTime      time.Time
	col                 int
	replacement         terminal.Cell
	original            terminal.Cell
	inputSeq            uint64
}

type rowPrediction struct {
	rowNum int
	cells  []cellPrediction
}

type cursorPrediction struct {
	active              bool
	tentativeUntilEpoch int64
	expirationFrame     uint64
	predictionTime      time.Time
	row, col            int
}

// Engine is the prediction engine. It is a single-owner state machine
// (the client endpoint); not safe for concurrent use.
type Engine struct {
	clock      simclock.Clock
	preference DisplayPreference

	rows   []rowPrediction
	cursor cursorPrediction

	// Epochs.
	predictionEpoch int64
	confirmedEpoch  int64

	// Frame bookkeeping: user-stream state numbers.
	localFrameSent      uint64
	localFrameAcked     uint64
	localFrameLateAcked uint64 // the server's echo ack

	// Confidence triggers.
	sendInterval          time.Duration
	srttTrigger           bool
	glitchTrigger         int
	flagging              bool
	lastQuickConfirmation time.Time

	lastW, lastH int

	// UTF-8 assembly for multi-byte keystrokes.
	u8buf  []byte
	u8want int

	records map[uint64]*InputRecord
	stats   Stats

	// Diagnose, when set, receives a line for every misprediction —
	// useful when calibrating workloads.
	Diagnose func(format string, args ...any)
}

// NewEngine returns an engine with the given display preference.
func NewEngine(clock simclock.Clock, pref DisplayPreference) *Engine {
	return &Engine{
		clock:           clock,
		preference:      pref,
		predictionEpoch: 1,
		confirmedEpoch:  0,
		sendInterval:    250 * time.Millisecond,
		records:         make(map[uint64]*InputRecord),
	}
}

// Stats returns a snapshot of engine counters.
func (e *Engine) Stats() Stats { return e.stats }

// SetDisplayPreference changes when predictions are shown.
func (e *Engine) SetDisplayPreference(p DisplayPreference) { e.preference = p }

// SetSendInterval feeds the transport's frame interval (≈SRTT/2) into the
// adaptive display triggers.
func (e *Engine) SetSendInterval(d time.Duration) { e.sendInterval = d }

// SetLocalFrameSent records the newest user-stream state number handed to
// the network.
func (e *Engine) SetLocalFrameSent(n uint64) {
	if n > e.localFrameSent {
		e.localFrameSent = n
	}
}

// SetLocalFrameAcked records the newest user-stream state number the
// server acknowledged receiving.
func (e *Engine) SetLocalFrameAcked(n uint64) {
	if n > e.localFrameAcked {
		e.localFrameAcked = n
	}
}

// SetLocalFrameLateAcked records the server's echo ack: the newest
// user-stream state whose effects ought to be visible in the current
// screen state (§3.2).
func (e *Engine) SetLocalFrameLateAcked(n uint64) {
	if n > e.localFrameLateAcked {
		e.localFrameLateAcked = n
	}
}

// TakeInputRecord removes and returns the trace for input seq.
func (e *Engine) TakeInputRecord(seq uint64) (InputRecord, bool) {
	r, ok := e.records[seq]
	if !ok {
		return InputRecord{}, false
	}
	delete(e.records, seq)
	return *r, true
}

// showPredictions reports whether predictions are displayed at all.
func (e *Engine) showPredictions() bool {
	switch e.preference {
	case Never:
		return false
	case Always:
		return true
	default:
		return e.srttTrigger || e.glitchTrigger > 0
	}
}

// Flagging reports whether unconfirmed predictions are underlined.
func (e *Engine) Flagging() bool { return e.flagging }

func (e *Engine) becomeTentative() { e.predictionEpoch++ }

// Reset abandons every outstanding prediction and starts a fresh
// tentative epoch.
func (e *Engine) Reset() {
	e.rows = nil
	e.cursor = cursorPrediction{}
	e.becomeTentative()
}

func (e *Engine) rowFor(rowNum, width int) *rowPrediction {
	for i := range e.rows {
		if e.rows[i].rowNum == rowNum {
			return &e.rows[i]
		}
	}
	e.rows = append(e.rows, rowPrediction{rowNum: rowNum, cells: make([]cellPrediction, width)})
	return &e.rows[len(e.rows)-1]
}

// NewUserInput observes one keystroke (already encoded as host bytes) that
// is about to be added to user-stream state number seq, and makes echo
// predictions against fb, the client's current view of the server screen.
func (e *Engine) NewUserInput(seq uint64, data []byte, fb *terminal.Framebuffer) {
	if e.preference == Never {
		return
	}
	now := e.clock.Now()
	e.stats.InputEvents++
	rec := &InputRecord{Epoch: e.predictionEpoch, MadeAt: now, Outcome: OutcomeNone}
	e.records[seq] = rec
	if len(e.records) > 4096 {
		// Forget the oldest half if the harness never drains us.
		for k := range e.records {
			delete(e.records, k)
			if len(e.records) <= 2048 {
				break
			}
		}
	}

	e.cull(fb)

	// A keystroke that is not a single printable grapheme or backspace is
	// "hard to predict" (arrows, control characters, escape sequences):
	// it ends the epoch so future predictions start in the background.
	r, kind := classify(e, data)
	switch kind {
	case inputPrintable:
		e.predictEcho(seq, rec, r, fb, now)
	case inputBackspace:
		e.predictBackspace(rec, fb, now)
	case inputIncompleteUTF8:
		// Wait for the rest of the rune; no epoch change.
	default:
		// Control characters and escape sequences may move the host's
		// cursor in ways we cannot model: end the epoch and drop the
		// cursor chain so later predictions re-anchor on the
		// authoritative state.
		e.becomeTentative()
		e.cursor.active = false
	}
}

type inputKind int

const (
	inputPrintable inputKind = iota
	inputBackspace
	inputControl
	inputIncompleteUTF8
)

// classify decides how a keystroke affects prediction, assembling UTF-8
// sequences split across events.
func classify(e *Engine, data []byte) (rune, inputKind) {
	if len(e.u8buf) > 0 {
		e.u8buf = append(e.u8buf, data...)
		if !utf8.FullRune(e.u8buf) {
			if len(e.u8buf) > 4 {
				e.u8buf = nil
				return 0, inputControl
			}
			return 0, inputIncompleteUTF8
		}
		r, _ := utf8.DecodeRune(e.u8buf)
		e.u8buf = nil
		if r == utf8.RuneError {
			return 0, inputControl
		}
		return r, inputPrintable
	}
	if len(data) == 1 {
		b := data[0]
		switch {
		case b == 0x7f || b == 0x08:
			return 0, inputBackspace
		case b >= 0x20 && b < 0x7f:
			return rune(b), inputPrintable
		case b >= 0x80:
			e.u8buf = append(e.u8buf[:0], b)
			if utf8.FullRune(e.u8buf) {
				e.u8buf = nil
				return 0, inputControl
			}
			return 0, inputIncompleteUTF8
		default:
			return 0, inputControl
		}
	}
	// Multi-byte event: a whole UTF-8 rune, or an escape sequence.
	if r, size := utf8.DecodeRune(data); r != utf8.RuneError && size == len(data) && terminal.RuneWidth(r) > 0 {
		return r, inputPrintable
	}
	return 0, inputControl
}

// cursorPos returns the engine's working cursor: the active prediction if
// any, else the framebuffer's cursor.
func (e *Engine) cursorPos(fb *terminal.Framebuffer) (int, int) {
	if e.cursor.active {
		return e.cursor.row, e.cursor.col
	}
	return fb.DS.CursorRow, fb.DS.CursorCol
}

// predictEcho speculates that the host will echo r at the cursor.
func (e *Engine) predictEcho(seq uint64, rec *InputRecord, r rune, fb *terminal.Framebuffer, now time.Time) {
	crow, ccol := e.cursorPos(fb)
	width := terminal.RuneWidth(r)

	// A wide character that cannot fit on this line wraps in a way that
	// depends on the application; skip the cell prediction but keep the
	// cursor moving so later predictions stay aligned.
	if ccol+width > fb.W {
		e.becomeTentative()
		e.wrapCursorPrediction(crow, fb, now)
		return
	}

	row := e.rowFor(crow, fb.W)
	cell := &row.cells[ccol]
	if !cell.active {
		cell.original = *fb.Peek(crow, ccol)
	}
	cell.active = true
	cell.col = ccol
	cell.tentativeUntilEpoch = e.predictionEpoch
	cell.expirationFrame = e.localFrameSent + 1
	cell.predictionTime = now
	cell.inputSeq = seq
	repl := terminal.Cell{Rend: fb.DS.Rend, Wide: width == 2}
	repl.SetRune(r)
	cell.replacement = repl
	e.stats.Predicted++
	rec.Outcome = OutcomePending

	shown := e.showPredictions() && e.predictionEpoch <= e.confirmedEpoch

	if ccol+width >= fb.W {
		// The echo landed in (or reached) the last column: the next
		// character's position depends on the host's wrap behavior —
		// the paper's main source of mispredictions. Predict the wrap,
		// but start a fresh tentative epoch for what follows.
		e.becomeTentative()
		e.wrapCursorPrediction(crow, fb, now)
	} else {
		e.cursor = cursorPrediction{
			active:              true,
			tentativeUntilEpoch: e.predictionEpoch,
			expirationFrame:     e.localFrameSent + 1,
			predictionTime:      now,
			row:                 crow,
			col:                 ccol + width,
		}
	}

	if shown {
		rec.Displayed = true
		rec.DisplayedAt = now
		e.stats.ShownImmediately++
	}
}

// wrapCursorPrediction speculates that the cursor continues at the start
// of the next line (tentative: it belongs to the fresh epoch).
func (e *Engine) wrapCursorPrediction(crow int, fb *terminal.Framebuffer, now time.Time) {
	nrow := crow
	if nrow < fb.H-1 {
		nrow++
	}
	e.cursor = cursorPrediction{
		active:              true,
		tentativeUntilEpoch: e.predictionEpoch,
		expirationFrame:     e.localFrameSent + 1,
		predictionTime:      now,
		row:                 nrow,
		col:                 0,
	}
}

// predictBackspace speculates that the host will erase leftward.
func (e *Engine) predictBackspace(rec *InputRecord, fb *terminal.Framebuffer, now time.Time) {
	crow, ccol := e.cursorPos(fb)
	if ccol == 0 {
		e.becomeTentative()
		return
	}
	ccol--
	row := e.rowFor(crow, fb.W)
	cell := &row.cells[ccol]
	if !cell.active {
		cell.original = *fb.Peek(crow, ccol)
	}
	cell.active = true
	cell.col = ccol
	cell.tentativeUntilEpoch = e.predictionEpoch
	cell.expirationFrame = e.localFrameSent + 1
	cell.predictionTime = now
	cell.replacement = terminal.Cell{}
	rec.Outcome = OutcomePending
	e.stats.Predicted++

	e.cursor = cursorPrediction{
		active:              true,
		tentativeUntilEpoch: e.predictionEpoch,
		expirationFrame:     e.localFrameSent + 1,
		predictionTime:      now,
		row:                 crow,
		col:                 ccol,
	}

	if e.showPredictions() && e.predictionEpoch <= e.confirmedEpoch {
		rec.Displayed = true
		rec.DisplayedAt = now
	}
}

// Cull verifies outstanding predictions against the newest authoritative
// screen state, adjusts the confidence triggers, and discards resolved or
// expired predictions. Call it whenever a new state arrives.
func (e *Engine) Cull(fb *terminal.Framebuffer) { e.cull(fb) }

func (e *Engine) cull(fb *terminal.Framebuffer) {
	now := e.clock.Now()

	if fb.W != e.lastW || fb.H != e.lastH {
		if e.lastW != 0 {
			e.Reset()
		}
		e.lastW, e.lastH = fb.W, fb.H
	}

	e.updateTriggers()

	// Judge cell predictions.
	for ri := range e.rows {
		row := &e.rows[ri]
		if row.rowNum >= fb.H {
			for ci := range row.cells {
				row.cells[ci].active = false
			}
			continue
		}
		for ci := range row.cells {
			cell := &row.cells[ci]
			if !cell.active {
				continue
			}
			switch e.judgeCell(cell, row.rowNum, fb, now) {
			case judgeCorrect:
				if cell.tentativeUntilEpoch > e.confirmedEpoch {
					e.confirmEpoch(cell.tentativeUntilEpoch, now)
				}
				if now.Sub(cell.predictionTime) < glitchThreshold {
					if e.glitchTrigger > 0 && now.Sub(e.lastQuickConfirmation) >= glitchRepairMinInterval {
						e.glitchTrigger--
						e.lastQuickConfirmation = now
					}
				} else {
					e.glitchTrigger = glitchRepairCount
					e.flagging = true
				}
				e.resolve(cell, OutcomeCorrect)
				e.stats.Correct++
				cell.active = false
			case judgeNoCredit:
				e.resolve(cell, OutcomeCorrect)
				e.stats.NoCredit++
				cell.active = false
			case judgeWrong:
				if e.Diagnose != nil {
					actual := "?"
					if row.rowNum < fb.H && cell.col < fb.W {
						actual = fb.Peek(row.rowNum, cell.col).String()
					}
					e.Diagnose("wrong cell prediction at (%d,%d): predicted %q, screen has %q (epoch %d vs confirmed %d)",
						row.rowNum, cell.col, cell.replacement.String(), actual,
						cell.tentativeUntilEpoch, e.confirmedEpoch)
				}
				e.stats.Incorrect++
				e.resolve(cell, OutcomeIncorrect)
				if cell.tentativeUntilEpoch > e.confirmedEpoch {
					// Never displayed: quietly kill its epoch.
					e.killEpoch(cell.tentativeUntilEpoch)
					e.stats.EpochsKilled++
				} else {
					// The user saw it: repair everything and lose
					// confidence.
					e.glitchTrigger = glitchRepairCount
					e.flagging = true
					e.Reset()
					return
				}
			case judgePending:
				if now.Sub(cell.predictionTime) > pendingExpiry {
					e.Reset()
					return
				}
			}
		}
	}

	// Judge the cursor prediction.
	if e.cursor.active && e.localFrameLateAcked >= e.cursor.expirationFrame {
		if fb.DS.CursorRow == e.cursor.row && fb.DS.CursorCol == e.cursor.col {
			if e.cursor.tentativeUntilEpoch > e.confirmedEpoch {
				e.confirmEpoch(e.cursor.tentativeUntilEpoch, now)
			}
			e.cursor.active = false
		} else {
			// Wrong cursor: stop overriding it; if it was visible to the
			// user, repair.
			shown := e.cursor.tentativeUntilEpoch <= e.confirmedEpoch
			e.cursor.active = false
			if shown {
				e.Reset()
				return
			}
			e.becomeTentative()
		}
	}

	// Compact: drop rows with no active predictions.
	live := e.rows[:0]
	for _, row := range e.rows {
		for ci := range row.cells {
			if row.cells[ci].active {
				live = append(live, row)
				break
			}
		}
	}
	e.rows = live

	// Judgements may have repaired (or destroyed) confidence.
	e.updateTriggers()
}

// updateTriggers applies the adaptive display hysteresis.
func (e *Engine) updateTriggers() {
	if e.sendInterval > srttTriggerHigh {
		e.srttTrigger = true
	} else if e.srttTrigger && e.sendInterval < srttTriggerLow && !e.anyActive() {
		e.srttTrigger = false
	}
	if e.sendInterval > flagTriggerHigh || e.glitchTrigger > 0 {
		e.flagging = true
	} else if e.sendInterval < flagTriggerLow && e.glitchTrigger == 0 {
		e.flagging = false
	}
}

type judgement int

const (
	judgePending judgement = iota
	judgeCorrect
	judgeNoCredit
	judgeWrong
)

func (e *Engine) judgeCell(cell *cellPrediction, rowNum int, fb *terminal.Framebuffer, now time.Time) judgement {
	if cell.col >= fb.W || rowNum >= fb.H {
		return judgeWrong
	}
	if e.localFrameLateAcked < cell.expirationFrame {
		return judgePending
	}
	current := fb.Peek(rowNum, cell.col)
	if current.Equal(&cell.replacement) {
		// A blank predicted over a blank, or contents that were already
		// there, earn no confidence credit.
		if cell.replacement.IsBlank() || current.Equal(&cell.original) {
			return judgeNoCredit
		}
		return judgeCorrect
	}
	return judgeWrong
}

// confirmEpoch displays epoch and everything before it, stamping display
// times on records that were waiting in the background.
func (e *Engine) confirmEpoch(epoch int64, now time.Time) {
	e.confirmedEpoch = epoch
	for _, rec := range e.records {
		if !rec.Displayed && rec.Epoch <= epoch && rec.Outcome == OutcomePending {
			rec.Displayed = true
			rec.DisplayedAt = now
		}
	}
}

// killEpoch removes all predictions belonging to tentative epoch.
func (e *Engine) killEpoch(epoch int64) {
	for ri := range e.rows {
		for ci := range e.rows[ri].cells {
			c := &e.rows[ri].cells[ci]
			if c.active && c.tentativeUntilEpoch >= epoch {
				c.active = false
			}
		}
	}
	if e.cursor.active && e.cursor.tentativeUntilEpoch >= epoch {
		e.cursor.active = false
	}
	e.becomeTentative()
}

func (e *Engine) resolve(cell *cellPrediction, outcome Outcome) {
	if rec, ok := e.records[cell.inputSeq]; ok {
		if rec.Outcome == OutcomePending {
			rec.Outcome = outcome
		}
	}
}

func (e *Engine) anyActive() bool {
	for ri := range e.rows {
		for ci := range e.rows[ri].cells {
			if e.rows[ri].cells[ci].active {
				return true
			}
		}
	}
	return e.cursor.active
}

// Apply overlays displayable predictions onto fb (the client's copy of the
// server screen), producing what the user actually sees. Unconfirmed
// predictions are underlined when flagging, per §3.
func (e *Engine) Apply(fb *terminal.Framebuffer) {
	if !e.showPredictions() {
		return
	}
	for ri := range e.rows {
		row := &e.rows[ri]
		if row.rowNum >= fb.H {
			continue
		}
		for ci := range row.cells {
			cell := &row.cells[ci]
			if !cell.active || cell.tentativeUntilEpoch > e.confirmedEpoch {
				continue
			}
			if cell.col >= fb.W {
				continue
			}
			target := fb.Cell(row.rowNum, cell.col)
			*target = cell.replacement
			if e.flagging {
				target.Rend.Underline = true
			}
			fb.Row(row.rowNum).Touch()
		}
	}
	if e.cursor.active && e.cursor.tentativeUntilEpoch <= e.confirmedEpoch &&
		e.cursor.row < fb.H && e.cursor.col < fb.W {
		fb.DS.CursorRow = e.cursor.row
		fb.DS.CursorCol = e.cursor.col
	}
}
