package overlay

import (
	"fmt"
	"time"

	"repro/internal/simclock"
	"repro/internal/terminal"
)

// NotificationEngine paints the client's connectivity banner: when the
// server has been silent long enough that the session may be dead, the
// top row shows how long ago the last contact was (the paper's client
// "warn[s] the user when it hasn't recently heard from the server", §2.3).
type NotificationEngine struct {
	clock simclock.Clock

	lastWordFromServer time.Time
	heardOnce          bool

	// Message is an optional extra note (e.g. "mosh: connecting...").
	Message string

	// SilenceThreshold is how long the server may be quiet before the
	// banner appears; the default allows for a few missed heartbeats.
	SilenceThreshold time.Duration
}

// NewNotificationEngine returns a banner engine.
func NewNotificationEngine(clock simclock.Clock) *NotificationEngine {
	return &NotificationEngine{
		clock:            clock,
		SilenceThreshold: 6500 * time.Millisecond, // two heartbeats + slack
	}
}

// ServerHeard records an authentic packet arrival.
func (n *NotificationEngine) ServerHeard() {
	n.lastWordFromServer = n.clock.Now()
	n.heardOnce = true
}

// SinceHeard reports the current silence length.
func (n *NotificationEngine) SinceHeard() (time.Duration, bool) {
	if !n.heardOnce {
		return 0, false
	}
	return n.clock.Now().Sub(n.lastWordFromServer), true
}

// NeedsBanner reports whether Apply would paint anything.
func (n *NotificationEngine) NeedsBanner() bool {
	if n.Message != "" {
		return true
	}
	d, ok := n.SinceHeard()
	return ok && d >= n.SilenceThreshold
}

// humanDuration renders a silence length the way the real client does.
func humanDuration(d time.Duration) string {
	switch {
	case d < 2*time.Minute:
		return fmt.Sprintf("%d seconds", int(d.Seconds()))
	case d < 2*time.Hour:
		return fmt.Sprintf("%d minutes", int(d.Minutes()))
	default:
		return fmt.Sprintf("%d hours", int(d.Hours()))
	}
}

// Apply paints the banner over the top row of the display copy.
func (n *NotificationEngine) Apply(fb *terminal.Framebuffer) {
	if !n.NeedsBanner() || fb.H < 1 {
		return
	}
	var text string
	d, ok := n.SinceHeard()
	switch {
	case n.Message != "" && ok && d >= n.SilenceThreshold:
		text = fmt.Sprintf("mosh: %s (last contact %s ago)", n.Message, humanDuration(d))
	case n.Message != "":
		text = "mosh: " + n.Message
	default:
		text = fmt.Sprintf("mosh: Last contact %s ago.", humanDuration(d))
	}
	text = " " + text + " "
	rend := terminal.Renditions{Inverse: true, Bold: true}
	row := fb.Row(0)
	for col := 0; col < fb.W; col++ {
		c := fb.Cell(0, col)
		if col < len(text) {
			c.SetRune(rune(text[col]))
		} else {
			c.SetRune(' ')
		}
		c.Rend = rend
		c.Wide = false
	}
	row.Touch()
}
