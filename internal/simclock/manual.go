package simclock

import (
	"container/heap"
	"sync"
	"time"
)

// Manual is a Clock whose time moves only when Advance or Set is called.
// Sleepers and timers park on a waiter heap; an advance fires every waiter
// whose deadline it crosses, in deadline order, with the clock reading
// exactly the waiter's deadline at each delivery — so code under test sees
// the same exact timestamps a discrete-event simulation would produce.
//
// Manual is safe for concurrent use. Tests coordinate with the code under
// test via BlockUntilWaiters: a goroutine that calls Sleep/After/NewTimer
// registers its waiter before blocking, so "the loop has gone to sleep on
// the clock" is an observable condition rather than a real-time guess.
type Manual struct {
	mu   sync.Mutex
	cond *sync.Cond
	now  time.Time
	seq  uint64
	wh   waiterHeap
	// onWait, when set (by Auto), runs under mu after every waiter
	// registration and deregistration so an auto-advancing wrapper can
	// re-evaluate its all-blocked condition.
	onWait func()
}

// NewManual returns a Manual clock set to start.
func NewManual(start time.Time) *Manual {
	m := &Manual{now: start}
	m.cond = sync.NewCond(&m.mu)
	return m
}

const (
	waitSleep = iota // a goroutine blocked in Sleep
	waitAfter        // an After channel (caller assumed to block on it)
	waitTimer        // an armed NewTimer
)

type waiter struct {
	at   time.Time
	seq  uint64
	idx  int // heap index, -1 once popped/removed
	kind int
	ch   chan time.Time
	tm   *manualTimer // back-pointer so a fire disarms the timer; nil otherwise
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *waiterHeap) Push(x any) {
	w := x.(*waiter)
	w.idx = len(*h)
	*h = append(*h, w)
}
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.idx = -1
	*h = old[:n-1]
	return w
}

// Now returns the manual clock's current time.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Since returns the elapsed manual-clock time since t.
func (m *Manual) Since(t time.Time) time.Duration { return m.Now().Sub(t) }

// Advance moves the clock forward by d, firing every waiter whose deadline
// falls within the window, in deadline order.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.advanceToLocked(m.now.Add(d))
}

// Set jumps the clock to t (firing crossed waiters). Setting the clock
// backwards only moves the reading; waiters keep their deadlines.
func (m *Manual) Set(t time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if t.Before(m.now) {
		m.now = t
		return
	}
	m.advanceToLocked(t)
}

func (m *Manual) advanceToLocked(t time.Time) {
	for len(m.wh) > 0 {
		w := m.wh[0]
		if w.at.After(t) {
			break
		}
		heap.Pop(&m.wh)
		if w.at.After(m.now) {
			m.now = w.at // deliver with the waiter's exact timestamp
		}
		if w.tm != nil {
			w.tm.w = nil
		}
		select {
		case w.ch <- m.now:
		default: // timer channel already holds an undrained fire
		}
	}
	if m.now.Before(t) {
		m.now = t
	}
	m.notifyLocked()
}

func (m *Manual) notifyLocked() {
	m.cond.Broadcast()
	if m.onWait != nil {
		m.onWait()
	}
}

// addWaiterLocked parks a waiter delivering on ch (nil allocates a fresh
// 1-buffered channel). The waiter must be fully wired — channel included —
// before notifyLocked runs: an Auto wrapper may fire it synchronously from
// the onWait hook.
func (m *Manual) addWaiterLocked(at time.Time, kind int, ch chan time.Time, tm *manualTimer) *waiter {
	if ch == nil {
		ch = make(chan time.Time, 1)
	}
	w := &waiter{at: at, seq: m.seq, kind: kind, ch: ch, tm: tm}
	m.seq++
	heap.Push(&m.wh, w)
	if tm != nil {
		tm.w = w
	}
	m.notifyLocked()
	return w
}

// Sleep blocks the calling goroutine until the clock has been advanced d
// past the current reading. Sleep(d) for d <= 0 returns immediately.
func (m *Manual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	m.mu.Lock()
	w := m.addWaiterLocked(m.now.Add(d), waitSleep, nil, nil)
	m.mu.Unlock()
	<-w.ch
}

// After returns a channel that delivers the clock's time once it has been
// advanced d past the current reading.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	if d <= 0 {
		ch := make(chan time.Time, 1)
		ch <- m.now
		return ch
	}
	return m.addWaiterLocked(m.now.Add(d), waitAfter, nil, nil).ch
}

// NewTimer returns an armed Timer firing once the clock has been advanced d
// past the current reading. A non-positive d delivers immediately.
func (m *Manual) NewTimer(d time.Duration) Timer {
	t := &manualTimer{m: m, ch: make(chan time.Time, 1)}
	m.mu.Lock()
	t.armLocked(d)
	m.mu.Unlock()
	return t
}

type manualTimer struct {
	m  *Manual
	ch chan time.Time
	w  *waiter // nil when not armed; guarded by m.mu
}

func (t *manualTimer) armLocked(d time.Duration) {
	if d <= 0 {
		select {
		case t.ch <- t.m.now:
		default:
		}
		return
	}
	t.m.addWaiterLocked(t.m.now.Add(d), waitTimer, t.ch, t)
}

func (t *manualTimer) C() <-chan time.Time { return t.ch }

func (t *manualTimer) Stop() bool {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	if t.w == nil {
		return false
	}
	heap.Remove(&t.m.wh, t.w.idx)
	t.w = nil
	t.m.notifyLocked()
	return true
}

func (t *manualTimer) Reset(d time.Duration) bool {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	active := t.w != nil
	if active {
		heap.Remove(&t.m.wh, t.w.idx)
		t.w = nil
	}
	t.armLocked(d)
	return active
}

// WaiterCount reports how many waits are currently parked on the clock:
// blocked sleepers, outstanding After channels, and armed timers.
func (m *Manual) WaiterCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.wh)
}

// PendingTimers reports how many armed NewTimer timers are parked,
// excluding sleepers and After channels.
func (m *Manual) PendingTimers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, w := range m.wh {
		if w.kind == waitTimer {
			n++
		}
	}
	return n
}

// NextDeadline returns the earliest parked deadline, and false if nothing
// is waiting.
func (m *Manual) NextDeadline() (time.Time, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.wh) == 0 {
		return time.Time{}, false
	}
	return m.wh[0].at, true
}

// BlockUntilWaiters blocks until at least n waits are parked on the clock
// (sleepers, After channels, and armed timers all count). It is the
// test-side rendezvous: start the loop under test, BlockUntilWaiters(1),
// then Advance past its deadline.
func (m *Manual) BlockUntilWaiters(n int) {
	m.mu.Lock()
	for len(m.wh) < n {
		m.cond.Wait()
	}
	m.mu.Unlock()
}
