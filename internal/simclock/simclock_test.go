package simclock

import (
	"testing"
	"time"
)

var t0 = time.Date(2012, 4, 1, 0, 0, 0, 0, time.UTC)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler(t0)
	var got []int
	s.AfterFunc(30*time.Millisecond, func() { got = append(got, 3) })
	s.AfterFunc(10*time.Millisecond, func() { got = append(got, 1) })
	s.AfterFunc(20*time.Millisecond, func() { got = append(got, 2) })
	s.Drain(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events ran out of order: %v", got)
	}
	if want := t0.Add(30 * time.Millisecond); !s.Now().Equal(want) {
		t.Fatalf("clock = %v, want %v", s.Now(), want)
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	s := NewScheduler(t0)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.AfterFunc(time.Millisecond, func() { got = append(got, i) })
	}
	s.Drain(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler(t0)
	fired := false
	e := s.AfterFunc(time.Millisecond, func() { fired = true })
	e.Cancel()
	s.Drain(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestSchedulerPastEventRunsNow(t *testing.T) {
	s := NewScheduler(t0)
	s.RunFor(time.Second)
	var at time.Time
	s.At(t0, func() { at = s.Now() })
	s.Drain(0)
	if !at.Equal(t0.Add(time.Second)) {
		t.Fatalf("past event ran at %v, want clamped to now %v", at, t0.Add(time.Second))
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	s := NewScheduler(t0)
	s.RunUntil(t0.Add(5 * time.Second))
	if !s.Now().Equal(t0.Add(5 * time.Second)) {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestRunUntilDoesNotRunLaterEvents(t *testing.T) {
	s := NewScheduler(t0)
	fired := false
	s.AfterFunc(2*time.Second, func() { fired = true })
	s.RunUntil(t0.Add(time.Second))
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	s.RunUntil(t0.Add(3 * time.Second))
	if !fired {
		t.Fatal("event within horizon did not fire")
	}
}

func TestEventsScheduledDuringEvents(t *testing.T) {
	s := NewScheduler(t0)
	var times []time.Duration
	s.AfterFunc(10*time.Millisecond, func() {
		times = append(times, s.Now().Sub(t0))
		s.AfterFunc(10*time.Millisecond, func() {
			times = append(times, s.Now().Sub(t0))
		})
	})
	s.Drain(0)
	if len(times) != 2 || times[0] != 10*time.Millisecond || times[1] != 20*time.Millisecond {
		t.Fatalf("nested scheduling wrong: %v", times)
	}
}

func TestTimerResetReplacesDeadline(t *testing.T) {
	s := NewScheduler(t0)
	count := 0
	tm := s.NewEventTimer(func() { count++ })
	tm.ResetAfter(10 * time.Millisecond)
	tm.ResetAfter(50 * time.Millisecond)
	s.RunFor(30 * time.Millisecond)
	if count != 0 {
		t.Fatal("old deadline fired after Reset")
	}
	s.RunFor(30 * time.Millisecond)
	if count != 1 {
		t.Fatalf("timer fired %d times, want 1", count)
	}
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler(t0)
	count := 0
	tm := s.NewEventTimer(func() { count++ })
	tm.ResetAfter(10 * time.Millisecond)
	tm.Stop()
	s.RunFor(time.Second)
	if count != 0 {
		t.Fatal("stopped timer fired")
	}
}

func TestNextAtSkipsCancelled(t *testing.T) {
	s := NewScheduler(t0)
	e := s.AfterFunc(time.Millisecond, func() {})
	s.AfterFunc(2*time.Millisecond, func() {})
	e.Cancel()
	at, ok := s.NextAt()
	if !ok || !at.Equal(t0.Add(2*time.Millisecond)) {
		t.Fatalf("NextAt = %v, %v", at, ok)
	}
}

func TestManualClock(t *testing.T) {
	m := NewManual(t0)
	m.Advance(time.Minute)
	if !m.Now().Equal(t0.Add(time.Minute)) {
		t.Fatalf("manual clock = %v", m.Now())
	}
	m.Set(t0)
	if !m.Now().Equal(t0) {
		t.Fatalf("manual clock after Set = %v", m.Now())
	}
}

func TestDrainLimit(t *testing.T) {
	s := NewScheduler(t0)
	count := 0
	var reschedule func()
	reschedule = func() {
		count++
		s.AfterFunc(time.Millisecond, reschedule)
	}
	s.AfterFunc(time.Millisecond, reschedule)
	n := s.Drain(100)
	if n != 100 || count != 100 {
		t.Fatalf("Drain ran %d events, counted %d; want 100", n, count)
	}
}
