package simclock

import (
	"sync"
	"time"
)

// Auto is a Manual clock that advances itself: whenever every registered
// goroutine is blocked on the clock and at least one deadline is parked,
// the clock jumps to the earliest deadline and fires it. Virtual time then
// moves exactly as fast as the workload lets it — the property that makes
// whole-daemon runs in virtual time finish in however long the CPU work
// takes, not however long the simulated timers span.
//
// Contract: goroutines participating in the lockstep must call
// RegisterGoroutine before their first wait and UnregisterGoroutine when
// they exit, and every blocking wait they perform must go through this
// clock (Sleep, a receive on After, or a receive on an armed timer's
// channel). The clock counts parked waiters — it cannot see a goroutine
// blocked on anything else, and a registered goroutine that parks two
// waits at once (an armed timer plus a Sleep) counts twice. After and
// NewTimer count from the moment they are called, on the assumption the
// caller is about to block on the channel; arm timers immediately before
// selecting on them, as the daemon's loops do.
type Auto struct {
	Manual
	registered int  // guarded by Manual.mu
	advancing  bool // guarded by Manual.mu; cuts onWait recursion
}

// NewAuto returns an auto-advancing clock set to start. With no goroutines
// registered it behaves exactly like a Manual clock.
func NewAuto(start time.Time) *Auto {
	a := &Auto{}
	a.now = start
	a.cond = sync.NewCond(&a.mu)
	a.onWait = a.maybeAdvanceLocked
	return a
}

// RegisterGoroutine adds the calling goroutine to the lockstep: the clock
// will only auto-advance when this goroutine (and every other registered
// one) is blocked on the clock.
func (a *Auto) RegisterGoroutine() {
	a.mu.Lock()
	a.registered++
	a.maybeAdvanceLocked()
	a.mu.Unlock()
}

// UnregisterGoroutine removes the calling goroutine from the lockstep.
func (a *Auto) UnregisterGoroutine() {
	a.mu.Lock()
	if a.registered > 0 {
		a.registered--
	}
	a.maybeAdvanceLocked()
	a.mu.Unlock()
}

// Registered reports the current lockstep size.
func (a *Auto) Registered() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.registered
}

// maybeAdvanceLocked fires the earliest deadline whenever the whole
// lockstep is parked. Firing wakes (at least) one goroutine, which breaks
// the all-blocked condition; the woken goroutine re-triggers the check the
// next time it parks, so time ratchets forward one deadline at a time.
// Runs under Manual.mu via the onWait hook; advanceToLocked re-enters
// notifyLocked → onWait, so the recursion is cut with the advancing flag.
func (a *Auto) maybeAdvanceLocked() {
	if a.advancing {
		return
	}
	a.advancing = true
	for a.registered > 0 && len(a.wh) >= a.registered && len(a.wh) > 0 {
		next := a.wh[0].at
		before := len(a.wh)
		a.advanceToLocked(next)
		if len(a.wh) >= before {
			break // defensive: nothing fired, avoid spinning
		}
	}
	a.advancing = false
}
