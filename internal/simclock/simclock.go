// Package simclock provides the time substrate shared by every component in
// this repository. Protocol endpoints are written against the small Clock
// interface so that the identical state machines can run either in real time
// (over UDP sockets) or inside a deterministic discrete-event simulation
// (for tests and for regenerating the paper's experiments).
package simclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock supplies the current time. Now must be safe for concurrent use:
// daemon worker goroutines read the clock (telemetry timestamps, quota
// checks) while another goroutine advances it. Every implementation here
// (Real, Scheduler, Manual) satisfies that; the Scheduler's *other*
// methods remain confined to the simulation goroutine.
type Clock interface {
	Now() time.Time
}

// Real is a Clock backed by the system clock.
type Real struct{}

// Now returns the current wall-clock time.
func (Real) Now() time.Time { return time.Now() }

// Event is a scheduled callback inside a Scheduler. It may be cancelled
// before it fires.
type Event struct {
	at       time.Time
	seq      uint64 // tie-break: FIFO among events at the same instant
	fn       func()
	index    int // heap index, -1 once removed
	canceled bool
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

// At reports the time the event is scheduled to fire.
func (e *Event) At() time.Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Scheduler is a deterministic discrete-event simulator. It implements
// Clock; time advances only when events run. Events scheduled for the same
// instant fire in the order they were scheduled.
//
// Now is safe to call from any goroutine (daemon worker goroutines read
// the clock for telemetry while the simulation goroutine advances it);
// every other method must be confined to the simulation goroutine.
//
// The zero value is not usable; call NewScheduler.
type Scheduler struct {
	mu   sync.Mutex // guards now against concurrent Now readers
	now  time.Time
	seq  uint64
	heap eventHeap
}

// NewScheduler returns a Scheduler whose clock starts at start.
func NewScheduler(start time.Time) *Scheduler {
	return &Scheduler{now: start}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// setNow publishes a clock advance to concurrent Now readers. Internal
// same-goroutine reads of s.now need no lock: writes only ever happen on
// the simulation goroutine.
func (s *Scheduler) setNow(t time.Time) {
	s.mu.Lock()
	s.now = t
	s.mu.Unlock()
}

// At schedules fn to run at time t. Scheduling in the past runs the event at
// the current time (it will fire on the next Step).
func (s *Scheduler) At(t time.Time, fn func()) *Event {
	if t.Before(s.now) {
		t = s.now
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.heap, e)
	return e
}

// After schedules fn to run d from now.
func (s *Scheduler) After(d time.Duration, fn func()) *Event {
	return s.At(s.now.Add(d), fn)
}

// Pending reports the number of events waiting to fire, including cancelled
// events that have not yet been discarded.
func (s *Scheduler) Pending() int { return len(s.heap) }

// NextAt returns the firing time of the earliest pending live event, and
// false if none is pending.
func (s *Scheduler) NextAt() (time.Time, bool) {
	for len(s.heap) > 0 && s.heap[0].canceled {
		heap.Pop(&s.heap)
	}
	if len(s.heap) == 0 {
		return time.Time{}, false
	}
	return s.heap[0].at, true
}

// Step advances the clock to the next live event and runs it. It returns
// false if no events remain.
func (s *Scheduler) Step() bool {
	for len(s.heap) > 0 {
		e := heap.Pop(&s.heap).(*Event)
		if e.canceled {
			continue
		}
		s.setNow(e.at)
		e.fn()
		return true
	}
	return false
}

// RunUntil runs events with firing times <= t, then advances the clock to t.
func (s *Scheduler) RunUntil(t time.Time) {
	for {
		at, ok := s.NextAt()
		if !ok || at.After(t) {
			break
		}
		s.Step()
	}
	if s.now.Before(t) {
		s.setNow(t)
	}
}

// RunFor runs the simulation for duration d of virtual time.
func (s *Scheduler) RunFor(d time.Duration) { s.RunUntil(s.now.Add(d)) }

// Drain runs events until none remain or the limit of steps is hit,
// returning the number of events run. A limit of 0 means no limit.
func (s *Scheduler) Drain(limit int) int {
	n := 0
	for limit == 0 || n < limit {
		if !s.Step() {
			break
		}
		n++
	}
	return n
}

// Timer is a restartable one-shot timer on a Scheduler, analogous to
// time.Timer but virtual. It is a convenience for protocol endpoints that
// keep re-arming a single deadline (retransmission, heartbeat, and so on).
type Timer struct {
	s  *Scheduler
	ev *Event
	fn func()
}

// NewTimer returns a stopped timer that runs fn when it fires.
func (s *Scheduler) NewTimer(fn func()) *Timer { return &Timer{s: s, fn: fn} }

// Reset arms the timer to fire at t, replacing any earlier deadline.
func (t *Timer) Reset(at time.Time) {
	t.Stop()
	t.ev = t.s.At(at, t.fn)
}

// ResetAfter arms the timer to fire d from now.
func (t *Timer) ResetAfter(d time.Duration) { t.Reset(t.s.Now().Add(d)) }

// Stop cancels any pending firing.
func (t *Timer) Stop() {
	if t.ev != nil {
		t.ev.Cancel()
		t.ev = nil
	}
}

// Manual is a Clock whose time is set explicitly. It is safe for concurrent
// use and handy for unit tests that do not need an event queue.
type Manual struct {
	mu  sync.Mutex
	now time.Time
}

// NewManual returns a Manual clock set to start.
func NewManual(start time.Time) *Manual { return &Manual{now: start} }

// Now returns the manual clock's current time.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Advance moves the clock forward by d.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = m.now.Add(d)
}

// Set jumps the clock to t.
func (m *Manual) Set(t time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = t
}
