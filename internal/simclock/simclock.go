// Package simclock provides the single time regime shared by every
// component in this repository. Protocol endpoints, the sessiond event
// loops, and the benchmarks are all written against the Clock interface so
// that the identical state machines can run in real time (over UDP
// sockets), under an explicitly driven test clock, or inside a
// deterministic discrete-event simulation that regenerates the paper's
// experiments bit-for-bit.
//
// Four implementations cover the repertoire:
//
//   - Real: the system clock.
//   - Manual: time moves only on Advance/Set; sleepers and timers park on
//     a waiter heap and fire with exact timestamps.
//   - Auto: a Manual that advances itself to the next deadline whenever
//     every registered goroutine is blocked on the clock.
//   - Scheduler: a single-goroutine discrete-event simulator (callback
//     events, virtual timers) that also satisfies Clock so it can be
//     injected wholesale into the daemon.
package simclock

import (
	"container/heap"
	"sync"
	"sync/atomic"
	"time"
)

// Clock is the full time surface the rest of the repository is allowed to
// touch. Everything mirrors the time package; Now (and Since) must be safe
// for concurrent use — daemon worker goroutines read the clock for
// telemetry while another goroutine advances it.
type Clock interface {
	// Now returns the clock's current time.
	Now() time.Time
	// Since returns the elapsed time since t on this clock.
	Since(t time.Time) time.Duration
	// Sleep blocks the calling goroutine for d of this clock's time.
	// Sleep(d) for d <= 0 returns immediately.
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time once d has
	// elapsed. Like time.After, the underlying timer cannot be stopped;
	// prefer NewTimer in loops.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns an armed timer that delivers on C after d.
	NewTimer(d time.Duration) Timer
}

// Timer is the restartable one-shot timer every Clock vends. C returns the
// same channel on every call, so the time.Timer drain idiom
// (Stop, then non-blocking receive from C, then Reset) carries over
// verbatim. Stop and Reset report whether the timer was still armed, with
// the same inherent fire/Stop race time.Timer documents.
type Timer interface {
	C() <-chan time.Time
	Stop() bool
	Reset(d time.Duration) bool
}

// Real is the Clock backed by the system clock. The zero value is ready to
// use; this package is the one place naked time.* calls are allowed.
type Real struct{}

// Now returns the current wall-clock time.
func (Real) Now() time.Time { return time.Now() }

// Since returns the wall-clock time elapsed since t.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// Sleep pauses the calling goroutine for d of real time.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After returns time.After(d).
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// NewTimer returns a Timer wrapping a real time.Timer.
func (Real) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

type realTimer struct{ t *time.Timer }

func (rt realTimer) C() <-chan time.Time        { return rt.t.C }
func (rt realTimer) Stop() bool                 { return rt.t.Stop() }
func (rt realTimer) Reset(d time.Duration) bool { return rt.t.Reset(d) }

// Event is a scheduled callback inside a Scheduler. It may be cancelled
// before it fires.
type Event struct {
	at       time.Time
	seq      uint64 // tie-break: FIFO among events at the same instant
	fn       func()
	index    int // heap index, -1 once removed
	canceled atomic.Bool
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. Safe to call from any goroutine
// (timers owned by daemon loops stop their events from outside the
// simulation goroutine).
func (e *Event) Cancel() {
	if e != nil {
		e.canceled.Store(true)
	}
}

// At reports the time the event is scheduled to fire.
func (e *Event) At() time.Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Scheduler is a deterministic discrete-event simulator. It implements
// Clock; time advances only when events run. Events scheduled for the same
// instant fire in the order they were scheduled.
//
// The stepping methods (Step, RunUntil, RunFor, Drain) are confined to the
// simulation goroutine, and determinism holds only for work scheduled from
// it. Everything else — Now, Since, AfterFunc, At, the Clock timer surface
// — is safe to call from any goroutine: the heap is mutex-guarded so that
// daemon worker goroutines can arm wait timers against virtual time while
// the simulation goroutine steps. Sleep and the timer channels only make
// progress while some other goroutine steps the scheduler; calling Sleep
// from the simulation goroutine itself deadlocks.
//
// The zero value is not usable; call NewScheduler.
type Scheduler struct {
	mu   sync.Mutex // guards now, seq, and heap
	now  time.Time
	seq  uint64
	heap eventHeap
}

// NewScheduler returns a Scheduler whose clock starts at start.
func NewScheduler(start time.Time) *Scheduler {
	return &Scheduler{now: start}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Since returns the virtual time elapsed since t.
func (s *Scheduler) Since(t time.Time) time.Duration { return s.Now().Sub(t) }

// At schedules fn to run at time t. Scheduling in the past runs the event at
// the current time (it will fire on the next Step).
func (s *Scheduler) At(t time.Time, fn func()) *Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.atLocked(t, fn)
}

func (s *Scheduler) atLocked(t time.Time, fn func()) *Event {
	if t.Before(s.now) {
		t = s.now
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.heap, e)
	return e
}

// AfterFunc schedules fn to run d from now, like time.AfterFunc but in
// virtual time.
func (s *Scheduler) AfterFunc(d time.Duration, fn func()) *Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.atLocked(s.now.Add(d), fn)
}

// Pending reports the number of events waiting to fire, including cancelled
// events that have not yet been discarded.
func (s *Scheduler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.heap)
}

// NextAt returns the firing time of the earliest pending live event, and
// false if none is pending.
func (s *Scheduler) NextAt() (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.heap) > 0 && s.heap[0].canceled.Load() {
		heap.Pop(&s.heap)
	}
	if len(s.heap) == 0 {
		return time.Time{}, false
	}
	return s.heap[0].at, true
}

// Step advances the clock to the next live event and runs it. It returns
// false if no events remain. The event callback runs with the scheduler
// unlocked, so callbacks may schedule freely.
func (s *Scheduler) Step() bool {
	for {
		s.mu.Lock()
		if len(s.heap) == 0 {
			s.mu.Unlock()
			return false
		}
		e := heap.Pop(&s.heap).(*Event)
		if e.canceled.Load() {
			s.mu.Unlock()
			continue
		}
		s.now = e.at
		s.mu.Unlock()
		e.fn()
		return true
	}
}

// RunUntil runs events with firing times <= t, then advances the clock to t.
func (s *Scheduler) RunUntil(t time.Time) {
	for {
		at, ok := s.NextAt()
		if !ok || at.After(t) {
			break
		}
		s.Step()
	}
	s.mu.Lock()
	if s.now.Before(t) {
		s.now = t
	}
	s.mu.Unlock()
}

// RunFor runs the simulation for duration d of virtual time.
func (s *Scheduler) RunFor(d time.Duration) { s.RunUntil(s.Now().Add(d)) }

// Drain runs events until none remain or the limit of steps is hit,
// returning the number of events run. A limit of 0 means no limit.
func (s *Scheduler) Drain(limit int) int {
	n := 0
	for limit == 0 || n < limit {
		if !s.Step() {
			break
		}
		n++
	}
	return n
}

// Sleep blocks the calling goroutine for d of virtual time. It must be
// called from a goroutine other than the one stepping the scheduler.
func (s *Scheduler) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	ch := make(chan struct{})
	s.AfterFunc(d, func() { close(ch) })
	<-ch
}

// After returns a channel delivering the virtual time once d has elapsed.
func (s *Scheduler) After(d time.Duration) <-chan time.Time {
	return s.NewTimer(d).C()
}

// NewTimer returns an armed Timer that fires in virtual time. Safe for use
// from daemon goroutines while the simulation goroutine steps.
func (s *Scheduler) NewTimer(d time.Duration) Timer {
	t := &schedTimer{s: s, ch: make(chan time.Time, 1)}
	t.arm(d)
	return t
}

type schedTimer struct {
	s  *Scheduler
	ch chan time.Time

	mu sync.Mutex
	ev *Event
}

func (t *schedTimer) arm(d time.Duration) {
	t.s.mu.Lock()
	ev := t.s.atLocked(t.s.now.Add(d), t.fire)
	t.s.mu.Unlock()
	t.mu.Lock()
	t.ev = ev
	t.mu.Unlock()
}

func (t *schedTimer) fire() {
	t.mu.Lock()
	t.ev = nil
	t.mu.Unlock()
	select {
	case t.ch <- t.s.Now():
	default:
	}
}

func (t *schedTimer) C() <-chan time.Time { return t.ch }

func (t *schedTimer) Stop() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ev == nil {
		return false
	}
	t.ev.Cancel()
	t.ev = nil
	return true
}

func (t *schedTimer) Reset(d time.Duration) bool {
	t.mu.Lock()
	active := t.ev != nil
	if active {
		t.ev.Cancel()
		t.ev = nil
	}
	t.mu.Unlock()
	t.arm(d)
	return active
}

// EventTimer is a restartable one-shot callback timer on a Scheduler, a
// convenience for protocol endpoints that keep re-arming a single deadline
// (retransmission, heartbeat, and so on). Unlike the Clock timer surface it
// is confined to the simulation goroutine.
type EventTimer struct {
	s  *Scheduler
	ev *Event
	fn func()
}

// NewEventTimer returns a stopped timer that runs fn when it fires.
func (s *Scheduler) NewEventTimer(fn func()) *EventTimer { return &EventTimer{s: s, fn: fn} }

// Reset arms the timer to fire at t, replacing any earlier deadline.
func (t *EventTimer) Reset(at time.Time) {
	t.Stop()
	t.ev = t.s.At(at, t.fn)
}

// ResetAfter arms the timer to fire d from now.
func (t *EventTimer) ResetAfter(d time.Duration) { t.Reset(t.s.Now().Add(d)) }

// Stop cancels any pending firing.
func (t *EventTimer) Stop() {
	if t.ev != nil {
		t.ev.Cancel()
		t.ev = nil
	}
}
