package simclock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestRealClockSurface(t *testing.T) {
	var c Real
	t0 := c.Now()
	c.Sleep(-1) // must return immediately
	if c.Since(t0) < 0 {
		t.Fatal("Since went backwards")
	}
	tm := c.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-c.After(5 * time.Second):
		t.Fatal("real timer never fired")
	}
	if tm.Stop() {
		t.Error("Stop after fire reported the timer active")
	}
}

func TestManualAdvanceFiresInDeadlineOrder(t *testing.T) {
	m := NewManual(epoch)
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	sleeper := func(name string, d time.Duration) {
		defer wg.Done()
		m.Sleep(d)
		mu.Lock()
		order = append(order, name)
		mu.Unlock()
	}
	wg.Add(3)
	go sleeper("c", 30*time.Millisecond)
	go sleeper("a", 10*time.Millisecond)
	go sleeper("b", 20*time.Millisecond)
	m.BlockUntilWaiters(3)
	if got := m.WaiterCount(); got != 3 {
		t.Fatalf("WaiterCount = %d, want 3", got)
	}
	m.Advance(time.Second)
	wg.Wait()
	if got := len(order); got != 3 {
		t.Fatalf("fired %d sleepers, want 3", got)
	}
	// Sleepers appended under a lock after independent wakeups, so the
	// slice order is not guaranteed — but all three must have fired, and
	// the clock must land exactly at the advance target.
	if want := epoch.Add(time.Second); !m.Now().Equal(want) {
		t.Fatalf("Now = %v, want %v", m.Now(), want)
	}
}

func TestManualTimerExactFireTimestamp(t *testing.T) {
	m := NewManual(epoch)
	tm := m.NewTimer(10 * time.Millisecond)
	m.Advance(time.Hour) // one coarse jump across the deadline
	got := <-tm.C()
	if want := epoch.Add(10 * time.Millisecond); !got.Equal(want) {
		t.Fatalf("timer delivered %v, want the exact deadline %v", got, want)
	}
	if !m.Now().Equal(epoch.Add(time.Hour)) {
		t.Fatalf("Now = %v, want %v", m.Now(), epoch.Add(time.Hour))
	}
}

func TestManualTimerStopResetEdges(t *testing.T) {
	m := NewManual(epoch)
	tm := m.NewTimer(10 * time.Millisecond)
	if !tm.Stop() {
		t.Fatal("Stop on an armed timer must report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop must report false")
	}
	m.Advance(time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
	if tm.Reset(5*time.Millisecond) != false {
		t.Fatal("Reset on a stopped timer must report false")
	}
	if tm.Reset(7*time.Millisecond) != true {
		t.Fatal("Reset on an armed timer must report true")
	}
	if got := m.PendingTimers(); got != 1 {
		t.Fatalf("PendingTimers = %d, want 1", got)
	}
	m.Advance(7 * time.Millisecond)
	<-tm.C()
	if tm.Stop() {
		t.Fatal("Stop after fire must report false")
	}
	// The time.Timer drain idiom must carry over: fire undrained, then
	// Stop + non-blocking drain + Reset yields exactly one next delivery.
	tm.Reset(time.Millisecond)
	m.Advance(time.Millisecond)
	if tm.Stop() {
		t.Fatal("Stop after second fire must report false")
	}
	select {
	case <-tm.C():
	default:
		t.Fatal("drain found no pending delivery")
	}
	tm.Reset(2 * time.Millisecond)
	m.Advance(time.Minute)
	select {
	case <-tm.C():
	default:
		t.Fatal("reset timer did not fire")
	}
	select {
	case <-tm.C():
		t.Fatal("timer delivered twice")
	default:
	}
}

func TestManualAfterAndZeroDurations(t *testing.T) {
	m := NewManual(epoch)
	select {
	case ts := <-m.After(0):
		if !ts.Equal(epoch) {
			t.Fatalf("After(0) delivered %v, want %v", ts, epoch)
		}
	default:
		t.Fatal("After(0) must deliver immediately")
	}
	select {
	case <-m.NewTimer(-time.Second).C():
	default:
		t.Fatal("NewTimer(<0) must deliver immediately")
	}
	m.Sleep(0) // must not block
	ch := m.After(15 * time.Millisecond)
	m.Advance(15 * time.Millisecond)
	if ts := <-ch; !ts.Equal(epoch.Add(15 * time.Millisecond)) {
		t.Fatalf("After delivered %v", ts)
	}
}

// TestManualRaceHammer runs concurrent Now/Since/Sleep/timer traffic
// against concurrent Advance calls; the -race CI tier is the assertion.
func TestManualRaceHammer(t *testing.T) {
	m := NewManual(epoch)
	const workers = 8
	var done atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer done.Add(1)
			for k := 0; k < 50; k++ {
				m.Now()
				m.Since(epoch)
				if k%3 == i%3 {
					tm := m.NewTimer(time.Duration(1+k%5) * time.Millisecond)
					if k%2 == 0 {
						tm.Stop()
					} else {
						<-tm.C()
					}
				} else {
					m.Sleep(time.Duration(1+k%7) * time.Millisecond)
				}
			}
		}(i)
	}
	// Advancer: keep pushing time until every worker reports done.
	for done.Load() < workers {
		m.Advance(time.Millisecond)
		m.WaiterCount()
		m.PendingTimers()
	}
	wg.Wait()
}

// TestAutoAdvancesWhenAllBlocked is the lockstep contract: registered
// sleepers never need an external Advance, and virtual time lands exactly
// on the sum of the longest sleep chain.
func TestAutoAdvancesWhenAllBlocked(t *testing.T) {
	a := NewAuto(epoch)
	const workers = 4
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		a.RegisterGoroutine()
		go func(i int) {
			defer wg.Done()
			defer a.UnregisterGoroutine()
			for k := 0; k < 25; k++ {
				a.Sleep(time.Duration(i+1) * time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	// The longest chain is worker 3: 25 sleeps × 4 ms = 100 ms. Auto must
	// have advanced exactly that far and no further.
	if want := epoch.Add(100 * time.Millisecond); !a.Now().Equal(want) {
		t.Fatalf("auto clock ended at %v, want exactly %v", a.Now(), want)
	}
}

// TestAutoTimerLoop drives a tickLoop-shaped consumer (arm timer, select
// on its channel) in the lockstep: arming counts as blocking on the clock,
// so a single registered goroutine makes progress with no external Advance.
func TestAutoTimerLoop(t *testing.T) {
	a := NewAuto(epoch)
	a.RegisterGoroutine()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer a.UnregisterGoroutine()
		tm := a.NewTimer(10 * time.Millisecond)
		defer tm.Stop()
		for i := 0; i < 50; i++ {
			<-tm.C()
			if i < 49 {
				tm.Reset(10 * time.Millisecond)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("auto timer loop stalled")
	}
	if want := epoch.Add(500 * time.Millisecond); !a.Now().Equal(want) {
		t.Fatalf("auto clock ended at %v, want exactly %v", a.Now(), want)
	}
}

// TestSchedulerClockSurface exercises the Clock methods the daemon's
// goroutines use against a Scheduler being stepped by another goroutine.
func TestSchedulerClockSurface(t *testing.T) {
	s := NewScheduler(epoch)
	var sleptAt atomic.Value
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Sleep(50 * time.Millisecond)
		sleptAt.Store(s.Now())
		tm := s.NewTimer(20 * time.Millisecond)
		<-tm.C()
		tm.Reset(5 * time.Millisecond)
		<-tm.C()
		<-s.After(5 * time.Millisecond)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		select {
		case <-done:
			if got := sleptAt.Load().(time.Time); got.Before(epoch.Add(50 * time.Millisecond)) {
				t.Fatalf("Sleep woke at %v, before its deadline", got)
			}
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("scheduler-backed clock stalled")
		}
		s.RunFor(time.Millisecond)
	}
}

func TestSchedulerTimerStopPreventsFire(t *testing.T) {
	s := NewScheduler(epoch)
	tm := s.NewTimer(10 * time.Millisecond)
	if !tm.Stop() {
		t.Fatal("Stop on armed scheduler timer must report true")
	}
	s.RunFor(time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped scheduler timer fired")
	default:
	}
	if tm.Reset(time.Millisecond) {
		t.Fatal("Reset on stopped scheduler timer must report false")
	}
	s.RunFor(time.Second)
	select {
	case <-tm.C():
	default:
		t.Fatal("reset scheduler timer did not fire")
	}
}
