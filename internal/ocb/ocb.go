// Package ocb implements the OCB3 authenticated-encryption mode of
// operation (RFC 7253) over a 128-bit block cipher. The paper builds SSP's
// confidentiality and authenticity on AES-128 in OCB mode with a single
// shared key [Krovetz & Rogaway]; this package provides that AEAD from
// scratch on top of the standard library's AES block cipher.
//
// The implementation follows the RFC's specification directly (offset
// doubling, nonce stretching, checksum accumulation) and is validated
// against the RFC 7253 Appendix A test vectors.
package ocb

import (
	"crypto/cipher"
	"crypto/subtle"
	"errors"
	"math/bits"
)

const (
	blockSize = 16
	// NonceSize is the nonce length used by this package: 12 bytes, as in
	// the RFC's AEAD_AES_128_OCB_TAGLEN128 profile. SSP uses the packet
	// sequence number as the nonce.
	NonceSize = 12
	// TagSize is the full 128-bit authenticator length.
	TagSize = 16
	// maxL bounds the precomputed L table; 2^48 blocks is far beyond any
	// datagram this package will see.
	maxL = 48
)

// ErrOpen is returned when decryption fails authentication. No plaintext is
// ever released for an inauthentic message.
var ErrOpen = errors.New("ocb: message authentication failed")

type ocb struct {
	block   cipher.Block
	lstar   [blockSize]byte
	ldollar [blockSize]byte
	l       [maxL][blockSize]byte

	// Per-call scratch blocks. Slices of these cross the cipher.Block
	// interface, which would force stack copies to escape on every packet;
	// keeping them on the struct makes sealing and opening allocation-free.
	// The tradeoff is that this AEAD is not safe for concurrent use —
	// matching the documented contract of sspcrypto.Session, whose
	// endpoints each own one.
	tmp, pad, tag, ktop, nbuf, off [blockSize]byte
}

// New returns an OCB3 AEAD (12-byte nonce, 16-byte tag) wrapping block,
// which must have a 128-bit block size (e.g. crypto/aes).
func New(block cipher.Block) (cipher.AEAD, error) {
	if block.BlockSize() != blockSize {
		return nil, errors.New("ocb: cipher block size must be 128 bits")
	}
	o := &ocb{block: block}
	block.Encrypt(o.lstar[:], make([]byte, blockSize))
	double(&o.ldollar, &o.lstar)
	double(&o.l[0], &o.ldollar)
	for i := 1; i < maxL; i++ {
		double(&o.l[i], &o.l[i-1])
	}
	return o, nil
}

// double computes dst = 2*src in GF(2^128) with the OCB polynomial.
func double(dst, src *[blockSize]byte) {
	carry := src[0] >> 7
	for i := 0; i < blockSize-1; i++ {
		dst[i] = src[i]<<1 | src[i+1]>>7
	}
	dst[blockSize-1] = src[blockSize-1] << 1
	dst[blockSize-1] ^= carry * 0x87
}

func xorBlock(dst, a, b []byte) {
	for i := 0; i < blockSize; i++ {
		dst[i] = a[i] ^ b[i]
	}
}

func (o *ocb) NonceSize() int { return NonceSize }
func (o *ocb) Overhead() int  { return TagSize }

// initialOffset derives Offset_0 from the nonce per RFC 7253 §4.2. The
// result is written into o.off (struct scratch, like every block that
// crosses the cipher.Block interface).
func (o *ocb) initialOffset(nonce []byte) {
	n := &o.nbuf
	*n = [blockSize]byte{}
	// Nonce = num2str(TAGLEN mod 128, 7) || zeros || 1 || N.
	// TAGLEN = 128, so the leading 7 bits are zero.
	n[blockSize-1-len(nonce)] |= 1
	copy(n[blockSize-len(nonce):], nonce)
	bottom := int(n[blockSize-1] & 0x3F)
	n[blockSize-1] &= 0xC0
	ktop := &o.ktop
	o.block.Encrypt(ktop[:], n[:])
	var stretch [blockSize + 8]byte
	copy(stretch[:blockSize], ktop[:])
	for i := 0; i < 8; i++ {
		stretch[blockSize+i] = ktop[i] ^ ktop[i+1]
	}
	byteShift, bitShift := bottom/8, uint(bottom%8)
	for i := 0; i < blockSize; i++ {
		o.off[i] = stretch[i+byteShift] << bitShift
		if bitShift > 0 {
			o.off[i] |= stretch[i+byteShift+1] >> (8 - bitShift)
		}
	}
}

// hash computes the HASH(K, A) value over the associated data.
func (o *ocb) hash(ad []byte) [blockSize]byte {
	var sum, offset [blockSize]byte
	tmp := &o.tmp
	i := 1
	for len(ad) >= blockSize {
		xorBlock(offset[:], offset[:], o.l[bits.TrailingZeros(uint(i))][:])
		xorBlock(tmp[:], ad[:blockSize], offset[:])
		o.block.Encrypt(tmp[:], tmp[:])
		xorBlock(sum[:], sum[:], tmp[:])
		ad = ad[blockSize:]
		i++
	}
	if len(ad) > 0 {
		xorBlock(offset[:], offset[:], o.lstar[:])
		var padded [blockSize]byte
		copy(padded[:], ad)
		padded[len(ad)] = 0x80
		xorBlock(tmp[:], padded[:], offset[:])
		o.block.Encrypt(tmp[:], tmp[:])
		xorBlock(sum[:], sum[:], tmp[:])
	}
	return sum
}

// Seal encrypts and authenticates plaintext, authenticates additionalData,
// and appends the result to dst.
func (o *ocb) Seal(dst, nonce, plaintext, additionalData []byte) []byte {
	if len(nonce) != NonceSize {
		panic("ocb: incorrect nonce length")
	}
	ret, out := sliceForAppend(dst, len(plaintext)+TagSize)
	o.initialOffset(nonce)
	offset, tmp := &o.off, &o.tmp
	var checksum [blockSize]byte
	i := 1
	p := plaintext
	for len(p) >= blockSize {
		xorBlock(offset[:], offset[:], o.l[bits.TrailingZeros(uint(i))][:])
		xorBlock(tmp[:], p[:blockSize], offset[:])
		o.block.Encrypt(tmp[:], tmp[:])
		xorBlock(out[:blockSize], tmp[:], offset[:])
		xorBlock(checksum[:], checksum[:], p[:blockSize])
		p = p[blockSize:]
		out = out[blockSize:]
		i++
	}
	if len(p) > 0 {
		xorBlock(offset[:], offset[:], o.lstar[:])
		pad := &o.pad
		o.block.Encrypt(pad[:], offset[:])
		for j := range p {
			out[j] = p[j] ^ pad[j]
		}
		checksum[len(p)] ^= 0x80
		for j := range p {
			checksum[j] ^= p[j]
		}
		out = out[len(p):]
	}
	tag := &o.tag
	xorBlock(tag[:], checksum[:], offset[:])
	xorBlock(tag[:], tag[:], o.ldollar[:])
	o.block.Encrypt(tag[:], tag[:])
	adHash := o.hash(additionalData)
	xorBlock(tag[:], tag[:], adHash[:])
	copy(out, tag[:])
	return ret
}

// Open authenticates and decrypts ciphertext, appending the plaintext to
// dst. It returns ErrOpen if authentication fails.
func (o *ocb) Open(dst, nonce, ciphertext, additionalData []byte) ([]byte, error) {
	if len(nonce) != NonceSize {
		panic("ocb: incorrect nonce length")
	}
	if len(ciphertext) < TagSize {
		return nil, ErrOpen
	}
	body := ciphertext[:len(ciphertext)-TagSize]
	expectedTag := ciphertext[len(ciphertext)-TagSize:]
	ret, out := sliceForAppend(dst, len(body))
	o.initialOffset(nonce)
	offset, tmp := &o.off, &o.tmp
	var checksum [blockSize]byte
	i := 1
	c := body
	outp := out
	for len(c) >= blockSize {
		xorBlock(offset[:], offset[:], o.l[bits.TrailingZeros(uint(i))][:])
		xorBlock(tmp[:], c[:blockSize], offset[:])
		o.block.Decrypt(tmp[:], tmp[:])
		xorBlock(outp[:blockSize], tmp[:], offset[:])
		xorBlock(checksum[:], checksum[:], outp[:blockSize])
		c = c[blockSize:]
		outp = outp[blockSize:]
		i++
	}
	if len(c) > 0 {
		xorBlock(offset[:], offset[:], o.lstar[:])
		pad := &o.pad
		o.block.Encrypt(pad[:], offset[:])
		for j := range c {
			outp[j] = c[j] ^ pad[j]
		}
		checksum[len(c)] ^= 0x80
		for j := range c {
			checksum[j] ^= outp[j]
		}
	}
	tag := &o.tag
	xorBlock(tag[:], checksum[:], offset[:])
	xorBlock(tag[:], tag[:], o.ldollar[:])
	o.block.Encrypt(tag[:], tag[:])
	adHash := o.hash(additionalData)
	xorBlock(tag[:], tag[:], adHash[:])
	if subtle.ConstantTimeCompare(tag[:], expectedTag) != 1 {
		// Wipe any released plaintext before failing.
		for j := range out {
			out[j] = 0
		}
		return nil, ErrOpen
	}
	return ret, nil
}

// sliceForAppend extends in by n bytes, returning the combined slice and
// the newly-added tail (the same helper shape crypto/cipher uses).
func sliceForAppend(in []byte, n int) (head, tail []byte) {
	total := len(in) + n
	if cap(in) >= total {
		head = in[:total]
	} else {
		head = make([]byte, total)
		copy(head, in)
	}
	tail = head[len(in):]
	return
}
