package ocb

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func mustAEAD(t testing.TB) cipher.AEAD {
	t.Helper()
	key, _ := hex.DecodeString("000102030405060708090A0B0C0D0E0F")
	block, err := aes.NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(block)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// RFC 7253 Appendix A sample results for AEAD_AES_128_OCB_TAGLEN128 with
// key 000102030405060708090A0B0C0D0E0F.
var rfcVectors = []struct {
	nonce, ad, pt, ct string
}{
	{"BBAA99887766554433221100", "", "", "785407BFFFC8AD9EDCC5520AC9111EE6"},
	{"BBAA99887766554433221101", "0001020304050607", "0001020304050607",
		"6820B3657B6F615A5725BDA0D3B4EB3A257C9AF1F8F03009"},
	{"BBAA99887766554433221102", "0001020304050607", "",
		"81017F8203F081277152FADE694A0A00"},
	{"BBAA99887766554433221103", "", "0001020304050607",
		"45DD69F8F5AAE72414054CD1F35D82760B2CD00D2F99BFA9"},
	{"BBAA99887766554433221104", "000102030405060708090A0B0C0D0E0F", "000102030405060708090A0B0C0D0E0F",
		"571D535B60B277188BE5147170A9A22C3AD7A4FF3835B8C5701C1CCEC8FC3358"},
	{"BBAA99887766554433221105", "000102030405060708090A0B0C0D0E0F", "",
		"8CF761B6902EF764462AD86498CA6B97"},
	{"BBAA99887766554433221106", "", "000102030405060708090A0B0C0D0E0F",
		"5CE88EC2E0692706A915C00AEB8B2396F40E1C743F52436BDF06D8FA1ECA343D"},
	{"BBAA99887766554433221107", "000102030405060708090A0B0C0D0E0F1011121314151617",
		"000102030405060708090A0B0C0D0E0F1011121314151617",
		"1CA2207308C87C010756104D8840CE1952F09673A448A122C92C62241051F57356D7F3C90BB0E07F"},
}

func TestRFC7253Vectors(t *testing.T) {
	a := mustAEAD(t)
	for i, v := range rfcVectors {
		nonce, ad, pt := unhex(t, v.nonce), unhex(t, v.ad), unhex(t, v.pt)
		want := unhex(t, v.ct)
		got := a.Seal(nil, nonce, pt, ad)
		if !bytes.Equal(got, want) {
			t.Errorf("vector %d: Seal = %X, want %X", i, got, want)
			continue
		}
		back, err := a.Open(nil, nonce, got, ad)
		if err != nil {
			t.Errorf("vector %d: Open failed: %v", i, err)
			continue
		}
		if !bytes.Equal(back, pt) {
			t.Errorf("vector %d: round trip = %X, want %X", i, back, pt)
		}
	}
}

func TestTamperedCiphertextRejected(t *testing.T) {
	a := mustAEAD(t)
	nonce := make([]byte, NonceSize)
	ct := a.Seal(nil, nonce, []byte("attack at dawn"), []byte("hdr"))
	for bit := 0; bit < len(ct)*8; bit += 7 {
		mutated := bytes.Clone(ct)
		mutated[bit/8] ^= 1 << (bit % 8)
		if _, err := a.Open(nil, nonce, mutated, []byte("hdr")); err == nil {
			t.Fatalf("flipping bit %d went undetected", bit)
		}
	}
}

func TestWrongADRejected(t *testing.T) {
	a := mustAEAD(t)
	nonce := make([]byte, NonceSize)
	ct := a.Seal(nil, nonce, []byte("payload"), []byte("ad-1"))
	if _, err := a.Open(nil, nonce, ct, []byte("ad-2")); err == nil {
		t.Fatal("wrong associated data accepted")
	}
}

func TestWrongNonceRejected(t *testing.T) {
	a := mustAEAD(t)
	n1 := make([]byte, NonceSize)
	n2 := make([]byte, NonceSize)
	n2[11] = 1
	ct := a.Seal(nil, n1, []byte("payload"), nil)
	if _, err := a.Open(nil, n2, ct, nil); err == nil {
		t.Fatal("wrong nonce accepted")
	}
}

func TestShortCiphertextRejected(t *testing.T) {
	a := mustAEAD(t)
	if _, err := a.Open(nil, make([]byte, NonceSize), make([]byte, TagSize-1), nil); err == nil {
		t.Fatal("short ciphertext accepted")
	}
}

func TestSealAppendsToDst(t *testing.T) {
	a := mustAEAD(t)
	nonce := make([]byte, NonceSize)
	prefix := []byte("prefix")
	out := a.Seal(bytes.Clone(prefix), nonce, []byte("body"), nil)
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("Seal did not preserve dst prefix")
	}
	pt, err := a.Open(nil, nonce, out[len(prefix):], nil)
	if err != nil || string(pt) != "body" {
		t.Fatalf("round trip through dst prefix failed: %v %q", err, pt)
	}
}

func TestRoundTripProperty(t *testing.T) {
	a := mustAEAD(t)
	f := func(pt, ad []byte, nonceSeed uint64) bool {
		nonce := make([]byte, NonceSize)
		for i := 0; i < 8; i++ {
			nonce[4+i] = byte(nonceSeed >> (8 * i))
		}
		ct := a.Seal(nil, nonce, pt, ad)
		if len(ct) != len(pt)+TagSize {
			return false
		}
		back, err := a.Open(nil, nonce, ct, ad)
		return err == nil && bytes.Equal(back, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctNoncesDistinctCiphertexts(t *testing.T) {
	a := mustAEAD(t)
	pt := []byte("identical plaintext, 32 bytes!!!")
	seen := make(map[string]bool)
	nonce := make([]byte, NonceSize)
	for i := 0; i < 64; i++ {
		nonce[11] = byte(i)
		ct := string(a.Seal(nil, nonce, pt, nil))
		if seen[ct] {
			t.Fatal("two nonces produced identical ciphertext")
		}
		seen[ct] = true
	}
}

func TestBlockSizeValidation(t *testing.T) {
	if _, err := New(fakeBlock{}); err == nil {
		t.Fatal("accepted non-128-bit block cipher")
	}
}

type fakeBlock struct{}

func (fakeBlock) BlockSize() int          { return 8 }
func (fakeBlock) Encrypt(dst, src []byte) {}
func (fakeBlock) Decrypt(dst, src []byte) {}

func BenchmarkSeal1K(b *testing.B) {
	a := mustAEAD(b)
	nonce := make([]byte, NonceSize)
	pt := make([]byte, 1024)
	dst := make([]byte, 0, len(pt)+TagSize)
	b.SetBytes(int64(len(pt)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Seal(dst[:0], nonce, pt, nil)
	}
}

func BenchmarkOpen1K(b *testing.B) {
	a := mustAEAD(b)
	nonce := make([]byte, NonceSize)
	ct := a.Seal(nil, nonce, make([]byte, 1024), nil)
	dst := make([]byte, 0, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Open(dst[:0], nonce, ct, nil); err != nil {
			b.Fatal(err)
		}
	}
}
