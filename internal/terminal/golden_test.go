package terminal

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden frame corpora")

// frameScenario is a deterministic recorded terminal session. The golden
// test drives it through the sender's snapshot/diff cycle and pins the
// exact bytes NewFrame produces, so optimizations to the diff pipeline
// can prove they are byte-identical refactors.
type frameScenario struct {
	name string
	w, h int
	// steps are host-output chunks; one frame is cut after each.
	steps []string
}

func typingSteps() []string {
	var steps []string
	steps = append(steps, "$ ")
	for _, r := range "echo hello world" {
		steps = append(steps, string(r))
	}
	steps = append(steps, "\r\nhello world\r\n$ ")
	return steps
}

func scrollFloodSteps() []string {
	var steps []string
	for i := 0; i < 40; i++ {
		chunk := ""
		for j := 0; j < 3; j++ {
			chunk += fmt.Sprintf("line %d: the quick brown fox jumps over the lazy dog\r\n", i*3+j)
		}
		steps = append(steps, chunk)
	}
	return steps
}

func interleavedScrollSteps() []string {
	// Scrolls mixed with in-place edits above the scroll point, so scroll
	// detection has to out-vote rows that changed.
	var steps []string
	for i := 0; i < 12; i++ {
		steps = append(steps,
			fmt.Sprintf("\x1b[1;1Hstatus: tick %d\x1b[24;1H", i),
			fmt.Sprintf("appended row %d\r\n", i),
			fmt.Sprintf("\x1b[2;5Hgauge=%d\x1b[24;1H", i*7),
		)
	}
	return steps
}

func goldenScenarios() []frameScenario {
	return []frameScenario{
		{name: "typing", w: 80, h: 24, steps: typingSteps()},
		{name: "scroll-flood", w: 80, h: 24, steps: scrollFloodSteps()},
		{name: "interleaved-scroll", w: 80, h: 24, steps: interleavedScrollSteps()},
		{name: "editor", w: 80, h: 24, steps: []string{
			"\x1b[2J\x1b[H-- VISUAL --",
			"\x1b[5;10HHello, editor!",
			"\x1b[1;31mred\x1b[0m \x1b[1;4;32mbold-under-green\x1b[0m",
			"\x1b[3;20r\x1b[3;1Hregion top\r\nsecond line",
			"\x1b[10S",
			"\x1b[5;1H\x1b[2L\x1b[7;1H\x1b[1M",
			"\x1b[8;4H\x1b[4@wxyz\x1b[3P",
			"\x1b[r\x1b[18;1Hdone\x1b[K\x1b[1J",
		}},
		{name: "wide-combining", w: 40, h: 8, steps: []string{
			"中文字符测试",
			"\r\nabcéf",
			"\r\n\x1b[36m🙂🙃\x1b[0m tail",
			"\x1b[1;39H№",      // print near last column
			"\x1b[2;39H宽",      // wide char at margin wraps early
			"\x1b[3;1H\x1b[1P", // delete through wide pair
		}},
		{name: "emoji-zwj-vs16", w: 40, h: 8, steps: []string{
			// VS16 emoji presentation: narrow base widened to two columns.
			"plane ✈️ dep",
			// ZWJ profession sequence: one wide cell, not woman+laptop.
			"\r\n\U0001f469‍\U0001f4bb coding",
			// VS16 inside a ZWJ sequence (rainbow flag), then a trailer.
			"\r\n\U0001f3f3️‍\U0001f308 flag",
			// Narrow lead joined to a wide member takes the wide width.
			"\r\n☁‍\U0001f327 rain",
			// Split writes: the join arrives in a separate chunk, as a pty
			// would deliver it mid-stream.
			"\r\nfam \U0001f468‍",
			"\U0001f469‍\U0001f467 done",
			// VS16 landing on the last column stays narrow (no room).
			"\x1b[7;40H❤️",
			// Overwrite through a widened pair.
			"\x1b[2;1Hxy",
		}},
		{name: "modes-title-bell", w: 80, h: 24, steps: []string{
			"\x1b]2;session one\a",
			"\x07\x07",
			"\x1b[?5h\x1b[?1h\x1b[?2004h",
			"text under modes",
			"\x1b[?5l\x1b[?1l\x1b[?2004l",
			"\x1b]0;session two\a\x07",
			"\x1b[?25l hidden cursor \x1b[?25h",
		}},
		{name: "colors-256-truecolor", w: 80, h: 12, steps: []string{
			"\x1b[38;5;196mpalette red\x1b[0m",
			"\r\n\x1b[48;5;21mblue bg\x1b[0m",
			"\r\n\x1b[38;2;10;200;30mtruecolor\x1b[0m plain",
			"\r\n\x1b[7;38;5;250;48;2;4;5;6minverse mix\x1b[0m",
		}},
		{name: "tabs-rep-decaln", w: 80, h: 10, steps: []string{
			"a\tb\tc\td",
			"\r\x1b[3g\x1b[1;20H\x1bH\x1b[1;40H\x1bH\r",
			"x\ty\tz",
			"\r\nQ\x1b[5b",
			"\x1b#8",
			"\x1b[2J\x1b[Hafter alignment",
		}},
		{name: "wrap-and-erase", w: 20, h: 6, steps: []string{
			strings.Repeat("0123456789", 5),
			"\x1b[3;1H\x1b[0Kkept",
			"\x1b[2;10H\x1b[1K",
			"\x1b[1;1H\x1b[0J",
		}},
	}
}

func hashFrame(frame []byte) string {
	sum := sha256.Sum256(frame)
	return fmt.Sprintf("%d %s", len(frame), hex.EncodeToString(sum[:]))
}

// runScenario reproduces the sender's discipline: snapshot (Clone) after
// every frame and diff the live screen against the previous snapshot.
func runScenario(t *testing.T, sc frameScenario) []string {
	t.Helper()
	emu := NewEmulator(sc.w, sc.h)
	var lines []string

	// Initial full repaint (what a freshly connected client receives).
	lines = append(lines, hashFrame(NewFrame(false, nil, emu.Framebuffer())))
	prev := emu.Framebuffer().Clone()

	for i, chunk := range sc.steps {
		emu.WriteString(chunk)
		frame := NewFrame(true, prev, emu.Framebuffer())
		lines = append(lines, hashFrame(frame))

		// The frame must round-trip: applying it to an emulator holding the
		// previous state reproduces the live screen exactly.
		replay := NewEmulatorWithFramebuffer(prev)
		replay.Write(frame)
		if !replay.Framebuffer().Equal(emu.Framebuffer()) {
			t.Fatalf("%s step %d: frame does not round-trip", sc.name, i)
		}

		prev = emu.Framebuffer().Clone()
	}

	// A terminating full repaint of the final screen.
	lines = append(lines, hashFrame(NewFrame(false, nil, emu.Framebuffer())))
	return lines
}

// TestNewFrameGoldenCorpus pins the exact bytes of the diff pipeline on a
// recorded scenario corpus. Regenerate with `go test -run Golden -update`
// only when an intentional output change is being made.
func TestNewFrameGoldenCorpus(t *testing.T) {
	for _, sc := range goldenScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			got := strings.Join(runScenario(t, sc), "\n") + "\n"
			path := filepath.Join("testdata", "golden", sc.name+".frames")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("frame bytes diverged from golden corpus %s", path)
			}
		})
	}
}
