package terminal

import "testing"

// The modern-emoji width rules (ROADMAP "Emoji width"): a cell whose
// cluster ends in VS16 renders at width 2 even when the base character
// alone is narrow, and a ZWJ-joined sequence is ONE cell whose width is
// that of the widest joined rune — not the lead rune's.

func TestVS16WidensNarrowCell(t *testing.T) {
	e := NewEmulator(20, 4)
	e.WriteString("✈️") // AIRPLANE (narrow) + VS16 → emoji presentation, wide
	c := e.Framebuffer().Peek(0, 0)
	if got := c.ContentsString(); got != "✈️" {
		t.Fatalf("cell contents = %q, want the full VS16 cluster", got)
	}
	if !c.Wide {
		t.Fatal("VS16 cluster must render wide")
	}
	if next := e.Framebuffer().Peek(0, 1); !next.ContentsEmpty() {
		t.Fatalf("continuation cell holds %q, want blank", next.ContentsString())
	}
	if ds := e.Framebuffer().DS; ds.CursorCol != 2 {
		t.Fatalf("cursor at col %d after widening, want 2", ds.CursorCol)
	}
	// The next printed character must land after the continuation.
	e.WriteString("x")
	if got := e.Framebuffer().Peek(0, 2).ContentsString(); got != "x" {
		t.Fatalf("following char at col 2 = %q, want x", got)
	}
}

func TestVS16OnAlreadyWideCellKeepsWidth(t *testing.T) {
	e := NewEmulator(20, 4)
	e.WriteString("\U0001f642️") // 🙂 (already wide) + VS16
	c := e.Framebuffer().Peek(0, 0)
	if !c.Wide || c.ContentsString() != "\U0001f642️" {
		t.Fatalf("wide base + VS16: wide=%v contents=%q", c.Wide, c.ContentsString())
	}
	if ds := e.Framebuffer().DS; ds.CursorCol != 2 {
		t.Fatalf("cursor at col %d, want 2 (unchanged by VS16)", ds.CursorCol)
	}
}

func TestZWJSequenceJoinsIntoOneCell(t *testing.T) {
	e := NewEmulator(20, 4)
	e.WriteString("\U0001f469‍\U0001f4bb") // 👩‍💻 woman + ZWJ + laptop
	fb := e.Framebuffer()
	c := fb.Peek(0, 0)
	if got := c.ContentsString(); got != "\U0001f469‍\U0001f4bb" {
		t.Fatalf("cell contents = %q, want the joined sequence in one cell", got)
	}
	if !c.Wide {
		t.Fatal("joined emoji sequence must be wide")
	}
	// The laptop must NOT occupy its own cell.
	if got := fb.Peek(0, 2).ContentsString(); got != "" {
		t.Fatalf("col 2 holds %q; the joined rune leaked into a second cell", got)
	}
	if ds := fb.DS; ds.CursorCol != 2 {
		t.Fatalf("cursor at col %d, want 2 (one wide cell)", ds.CursorCol)
	}
}

func TestZWJWidestMemberSetsWidth(t *testing.T) {
	// Narrow lead + ZWJ + wide member: the sequence takes the width of the
	// widest joined rune (2), not the lead's (1).
	e := NewEmulator(20, 4)
	e.WriteString("☁‍\U0001f327") // ☁ (narrow) + ZWJ + 🌧 (wide)
	c := e.Framebuffer().Peek(0, 0)
	if got := c.ContentsString(); got != "☁‍\U0001f327" {
		t.Fatalf("cell contents = %q", got)
	}
	if !c.Wide {
		t.Fatal("sequence with a wide member must render wide")
	}
	if ds := e.Framebuffer().DS; ds.CursorCol != 2 {
		t.Fatalf("cursor at col %d, want 2", ds.CursorCol)
	}

	// And the converse: wide lead + ZWJ + narrow member stays wide.
	e2 := NewEmulator(20, 4)
	e2.WriteString("\U0001f469‍⚕") // 👩 + ZWJ + ⚕ (narrow staff of aesculapius)
	c2 := e2.Framebuffer().Peek(0, 0)
	if !c2.Wide || c2.ContentsString() != "\U0001f469‍⚕" {
		t.Fatalf("wide-lead join: wide=%v contents=%q", c2.Wide, c2.ContentsString())
	}
}

func TestMultiZWJSequenceStaysOneCell(t *testing.T) {
	e := NewEmulator(20, 4)
	seq := "\U0001f3f3️‍\U0001f308" // 🏳️‍🌈 flag + VS16 + ZWJ + rainbow
	e.WriteString(seq + "x")
	fb := e.Framebuffer()
	if got := fb.Peek(0, 0).ContentsString(); got != seq {
		t.Fatalf("cell 0 = %q, want the whole flag sequence", got)
	}
	if !fb.Peek(0, 0).Wide {
		t.Fatal("flag sequence must be wide")
	}
	if got := fb.Peek(0, 2).ContentsString(); got != "x" {
		t.Fatalf("col 2 = %q, want the trailing x", got)
	}
}

func TestZWJBetweenLettersDoesNotJoinCells(t *testing.T) {
	// ZWJ legitimately appears between ordinary characters (Arabic
	// shaping, Indic half-form sequences); per UAX #29 GB11 it only
	// extends a cluster when followed by a pictographic rune, so "B"
	// must get its own cell and the cursor must advance normally.
	e := NewEmulator(20, 4)
	e.WriteString("A\u200dB")
	fb := e.Framebuffer()
	if got := fb.Peek(0, 0).ContentsString(); got != "A\u200d" {
		t.Fatalf("cell 0 = %q, want A with trailing (invisible) ZWJ", got)
	}
	if fb.Peek(0, 0).Wide {
		t.Fatal("letter cell must stay narrow")
	}
	if got := fb.Peek(0, 1).ContentsString(); got != "B" {
		t.Fatalf("cell 1 = %q, want B in its own cell", got)
	}
	if ds := fb.DS; ds.CursorCol != 2 {
		t.Fatalf("cursor at col %d, want 2", ds.CursorCol)
	}
}

func TestZWJAfterLetterDoesNotSwallowEmoji(t *testing.T) {
	// GB11 requires pictographic runes on BOTH sides of the ZWJ: after
	// letter+ZWJ (Arabic shaping, Indic half-forms), a following emoji
	// starts its own cell rather than merging into the letter's.
	e := NewEmulator(20, 4)
	e.WriteString("A\u200d\U0001f642")
	fb := e.Framebuffer()
	if got := fb.Peek(0, 0).ContentsString(); got != "A\u200d" {
		t.Fatalf("cell 0 = %q, want the letter (with its invisible ZWJ) alone", got)
	}
	if fb.Peek(0, 0).Wide {
		t.Fatal("letter cell must stay narrow")
	}
	if got := fb.Peek(0, 1).ContentsString(); got != "\U0001f642" {
		t.Fatalf("cell 1 = %q, want the emoji in its own cell", got)
	}
	if !fb.Peek(0, 1).Wide {
		t.Fatal("emoji cell must be wide")
	}
	if ds := fb.DS; ds.CursorCol != 3 {
		t.Fatalf("cursor at col %d, want 3 (1 + 2)", ds.CursorCol)
	}
}

func TestStaleZWJDoesNotSwallowAfterCursorMove(t *testing.T) {
	// Grapheme clusters break on cursor motion: a cell left holding a
	// dangling ZWJ (truncated earlier write) must not absorb an emoji the
	// application prints after explicitly repositioning next to it.
	e := NewEmulator(20, 4)
	e.WriteString("☁\u200d")     // narrow cloud + dangling ZWJ at (0,0)
	e.WriteString("\x1b[1;2H")   // reposition just after it
	e.WriteString("\U0001f642x") // a NEW emoji cell, then x
	fb := e.Framebuffer()
	if got := fb.Peek(0, 0).ContentsString(); got != "☁\u200d" {
		t.Fatalf("cell 0 = %q, want the stale cluster untouched", got)
	}
	if fb.Peek(0, 0).Wide {
		t.Fatal("stale cell must stay narrow")
	}
	if got := fb.Peek(0, 1).ContentsString(); got != "\U0001f642" || !fb.Peek(0, 1).Wide {
		t.Fatalf("cell 1 = %q (wide=%v), want the emoji as its own wide cell",
			got, fb.Peek(0, 1).Wide)
	}
	if got := fb.Peek(0, 3).ContentsString(); got != "x" {
		t.Fatalf("col 3 = %q, want x after the wide emoji", got)
	}
}

func TestVS16OnPlainLetterStaysNarrow(t *testing.T) {
	// A stray variation selector on a non-emoji base (pasted rich text)
	// is zero-width noise in every wcwidth implementation; widening the
	// letter would shift every later column on the line.
	e := NewEmulator(20, 4)
	e.WriteString("a\ufe0fb")
	fb := e.Framebuffer()
	if fb.Peek(0, 0).Wide {
		t.Fatal("plain letter with VS16 must stay narrow")
	}
	if got := fb.Peek(0, 1).ContentsString(); got != "b" {
		t.Fatalf("col 1 = %q, want b immediately after the narrow cell", got)
	}
	if ds := fb.DS; ds.CursorCol != 2 {
		t.Fatalf("cursor at col %d, want 2", ds.CursorCol)
	}
}

func TestVS16AtLastColumnStaysNarrow(t *testing.T) {
	// No room for a continuation half in the last column: the cell keeps
	// width 1 (the wide-cell invariant — no leader in the last column —
	// outranks emoji presentation).
	e := NewEmulator(10, 4)
	e.WriteString("\x1b[1;10H✈️")
	fb := e.Framebuffer()
	c := fb.Peek(0, 9)
	if c.Wide {
		t.Fatal("last-column cell must not become a wide leader")
	}
	if got := c.ContentsString(); got != "✈️" {
		t.Fatalf("cluster = %q, want contents retained even though narrow", got)
	}
}

// TestEmojiWidthDiffRoundTrip proves the renderer/diff pipeline carries
// widened cells faithfully: applying the emitted frame to a fresh
// emulator reproduces the exact screen, including widths and cursor.
func TestEmojiWidthDiffRoundTrip(t *testing.T) {
	src := NewEmulator(24, 6)
	src.WriteString("✈️ ok\r\n")
	src.WriteString("\U0001f469‍\U0001f4bb code\r\n")
	src.WriteString("\U0001f3f3️‍\U0001f308 flag")

	frame := NewFrame(false, nil, src.Framebuffer())
	dst := NewEmulator(24, 6)
	dst.Write(frame)

	a, b := src.Framebuffer(), dst.Framebuffer()
	for r := 0; r < a.H; r++ {
		for c := 0; c < a.W; c++ {
			if !a.Peek(r, c).Equal(b.Peek(r, c)) {
				t.Fatalf("cell (%d,%d) differs after round trip: %q/wide=%v vs %q/wide=%v",
					r, c, a.Peek(r, c).ContentsString(), a.Peek(r, c).Wide,
					b.Peek(r, c).ContentsString(), b.Peek(r, c).Wide)
			}
		}
	}
}
