package terminal

import (
	"encoding/binary"
	"errors"
	"unicode/utf8"

	"repro/internal/binio"
)

// This file implements the compact binary serialization of a Framebuffer —
// the screen grid, draw state, and (when enabled) the scrollback window —
// used by internal/sessiond to persist sessions across a daemon restart.
//
// The format is versioned and self-delimiting. Cells are run-length encoded
// (screens are overwhelmingly runs of identical blanks), cell contents are
// written as raw grapheme bytes and re-interned on load (an intern-table
// index is process-local and meaningless in the next incarnation), and the
// scrollback window is rendered out of the shared arena row by row, so the
// serialized form shares storage with nothing.
//
// Encoding is append-only into a caller-owned buffer and performs no heap
// allocations with a warmed buffer (the journal writer's steady state).
// Decoding validates every length against the remaining input and hard
// bounds, so corrupted or truncated input returns ErrBadSnapshot — never a
// panic or an attacker-sized allocation.

// snapshotVersion identifies the framebuffer serialization format.
const snapshotVersion = 1

// ErrBadSnapshot reports a corrupted, truncated, or version-skewed
// framebuffer serialization.
var ErrBadSnapshot = errors.New("terminal: malformed framebuffer snapshot")

// Defensive bounds on decode: anything beyond these is corruption, not a
// screen this codebase can produce.
const (
	snapMaxDim         = 1 << 12 // columns or rows
	snapMaxTitle       = 1 << 13
	snapMaxScrollback  = 1 << 16
	snapMaxContent     = 1 << 9 // bytes per cell grapheme
	snapMaxScrollWidth = 1 << 12
)

// DrawState flag bit assignments (order is part of the format).
const (
	snapNextPrintWraps = 1 << iota
	snapSavedCursorSet
	snapSavedOriginMode
	snapInsertMode
	snapOriginMode
	snapAutoWrapMode
	snapCursorVisible
	snapReverseVideo
	snapAppCursorKeys
	snapAppKeypad
	snapBracketedPaste
)

// Cell flag bits.
const (
	snapCellWide = 1 << iota
	snapCellWrap
)

// Rendition flag bits.
const (
	snapRendBold = 1 << iota
	snapRendFaint
	snapRendItalic
	snapRendUnderline
	snapRendBlink
	snapRendInverse
	snapRendInvisible
)

func appendRenditions(buf []byte, r Renditions) []byte {
	buf = binary.AppendUvarint(buf, uint64(r.Fg))
	buf = binary.AppendUvarint(buf, uint64(r.Bg))
	var fl byte
	if r.Bold {
		fl |= snapRendBold
	}
	if r.Faint {
		fl |= snapRendFaint
	}
	if r.Italic {
		fl |= snapRendItalic
	}
	if r.Underline {
		fl |= snapRendUnderline
	}
	if r.Blink {
		fl |= snapRendBlink
	}
	if r.Inverse {
		fl |= snapRendInverse
	}
	if r.Invisible {
		fl |= snapRendInvisible
	}
	return append(buf, fl)
}

// contentByteLen reports how many bytes appendContentBytes will write for a
// packed content word (0 for blank).
func contentByteLen(content uint32) int {
	switch {
	case content == 0:
		return 0
	case content&graphemeBit == 0:
		return utf8.RuneLen(rune(content))
	default:
		return len(graphemes.lookup(content))
	}
}

// appendContentBytes appends the raw grapheme bytes of a content word
// (nothing for blank — unlike appendContent, which substitutes a space for
// rendering).
func appendContentBytes(buf []byte, content uint32) []byte {
	switch {
	case content == 0:
		return buf
	case content&graphemeBit == 0:
		return utf8.AppendRune(buf, rune(content))
	default:
		return append(buf, graphemes.lookup(content)...)
	}
}

func appendCell(buf []byte, c *Cell) []byte {
	var fl byte
	if c.Wide {
		fl |= snapCellWide
	}
	if c.wrap {
		fl |= snapCellWrap
	}
	buf = append(buf, fl)
	buf = binary.AppendUvarint(buf, uint64(contentByteLen(c.content)))
	buf = appendContentBytes(buf, c.content)
	return appendRenditions(buf, c.Rend)
}

// appendRow run-length encodes one row of cells.
func appendRow(buf []byte, cells []Cell) []byte {
	for i := 0; i < len(cells); {
		j := i + 1
		for j < len(cells) && cells[j] == cells[i] {
			j++
		}
		buf = binary.AppendUvarint(buf, uint64(j-i))
		buf = appendCell(buf, &cells[i])
		i = j
	}
	return buf
}

// AppendSnapshot appends a versioned binary serialization of the complete
// screen state — grid, draw state, title, synchronized counters, and the
// visible scrollback window — to buf and returns the extended buffer. The
// result aliases no framebuffer storage; rows shared copy-on-write with
// snapshots are only read. With a warmed buffer the encode performs no heap
// allocations.
func (f *Framebuffer) AppendSnapshot(buf []byte) []byte {
	buf = f.appendSnapshotMeta(buf)

	for _, r := range f.rows {
		buf = appendRow(buf, r.Cells)
	}

	// Scrollback window, oldest first. Rows may predate a resize, so each
	// carries its own width.
	buf = binary.AppendUvarint(buf, uint64(f.ScrollbackLines()))
	for i := f.sbOff; i < f.sbLen; i++ {
		cells := f.sb.rows[i].Cells
		buf = binary.AppendUvarint(buf, uint64(len(cells)))
		buf = appendRow(buf, cells)
	}
	return buf
}

// appendSnapshotMeta appends the non-grid prefix of the snapshot format:
// version, dimensions, draw state, title, synchronized counters and the
// scrollback limit — everything up to (but excluding) the cell rows. The
// journal's delta records reuse it to persist screen metadata without
// re-encoding the grid.
func (f *Framebuffer) appendSnapshotMeta(buf []byte) []byte {
	buf = append(buf, snapshotVersion)
	buf = binary.AppendUvarint(buf, uint64(f.W))
	buf = binary.AppendUvarint(buf, uint64(f.H))

	ds := &f.DS
	var fl uint64
	if ds.NextPrintWraps {
		fl |= snapNextPrintWraps
	}
	if ds.savedCursorSet {
		fl |= snapSavedCursorSet
	}
	if ds.SavedOriginMode {
		fl |= snapSavedOriginMode
	}
	if ds.InsertMode {
		fl |= snapInsertMode
	}
	if ds.OriginMode {
		fl |= snapOriginMode
	}
	if ds.AutoWrapMode {
		fl |= snapAutoWrapMode
	}
	if ds.CursorVisible {
		fl |= snapCursorVisible
	}
	if ds.ReverseVideo {
		fl |= snapReverseVideo
	}
	if ds.ApplicationCursorKeys {
		fl |= snapAppCursorKeys
	}
	if ds.ApplicationKeypad {
		fl |= snapAppKeypad
	}
	if ds.BracketedPaste {
		fl |= snapBracketedPaste
	}
	buf = binary.AppendUvarint(buf, fl)
	buf = binary.AppendUvarint(buf, uint64(ds.CursorRow))
	buf = binary.AppendUvarint(buf, uint64(ds.CursorCol))
	buf = binary.AppendUvarint(buf, uint64(ds.ScrollTop))
	buf = binary.AppendUvarint(buf, uint64(ds.ScrollBottom))
	buf = binary.AppendUvarint(buf, uint64(ds.SavedCursorRow))
	buf = binary.AppendUvarint(buf, uint64(ds.SavedCursorCol))
	buf = appendRenditions(buf, ds.Rend)
	buf = appendRenditions(buf, ds.SavedRend)
	// Tab stops as a bitset.
	for i := 0; i < len(ds.Tabs); i += 8 {
		var b byte
		for j := 0; j < 8 && i+j < len(ds.Tabs); j++ {
			if ds.Tabs[i+j] {
				b |= 1 << j
			}
		}
		buf = append(buf, b)
	}

	buf = binary.AppendUvarint(buf, uint64(len(f.Title)))
	buf = append(buf, f.Title...)
	buf = binary.AppendUvarint(buf, f.BellCount)
	buf = binary.AppendUvarint(buf, f.EchoAck)
	return binary.AppendVarint(buf, int64(f.scrollbackMax))
}

func decodeRenditions(r *binio.Reader) (Renditions, bool) {
	var rd Renditions
	fg, ok := r.Uvarint()
	if !ok || fg > uint64(^uint32(0)) {
		return rd, false
	}
	bg, ok := r.Uvarint()
	if !ok || bg > uint64(^uint32(0)) {
		return rd, false
	}
	fl, ok := r.Byte()
	if !ok {
		return rd, false
	}
	rd.Fg = Color(fg)
	rd.Bg = Color(bg)
	rd.Bold = fl&snapRendBold != 0
	rd.Faint = fl&snapRendFaint != 0
	rd.Italic = fl&snapRendItalic != 0
	rd.Underline = fl&snapRendUnderline != 0
	rd.Blink = fl&snapRendBlink != 0
	rd.Inverse = fl&snapRendInverse != 0
	rd.Invisible = fl&snapRendInvisible != 0
	return rd, true
}

// decodeRow fills cells from RLE runs, re-interning grapheme contents.
func decodeRow(r *binio.Reader, cells []Cell) bool {
	for filled := 0; filled < len(cells); {
		run, ok := r.BoundedUvarint(uint64(len(cells) - filled))
		if !ok || run == 0 {
			return false
		}
		fl, ok := r.Byte()
		if !ok {
			return false
		}
		clen, ok := r.BoundedUvarint(snapMaxContent)
		if !ok {
			return false
		}
		raw, ok := r.Bytes(int(clen))
		if !ok {
			return false
		}
		rend, ok := decodeRenditions(r)
		if !ok {
			return false
		}
		var c Cell
		// Re-intern: the packed word from the previous process is
		// meaningless here; internContents canonicalizes the raw grapheme
		// bytes against this process's table.
		c.content = internContents(string(raw))
		c.Rend = rend
		c.Wide = fl&snapCellWide != 0
		c.wrap = fl&snapCellWrap != 0
		for i := 0; i < int(run); i++ {
			cells[filled] = c
			filled++
		}
	}
	return true
}

// DecodeSnapshot decodes a serialization produced by AppendSnapshot,
// returning the restored framebuffer and the unconsumed remainder of data.
// All storage is freshly allocated; grapheme contents are re-interned into
// this process's table. Any structural inconsistency returns ErrBadSnapshot.
func DecodeSnapshot(data []byte) (*Framebuffer, []byte, error) {
	r := binio.NewReader(data)
	fail := func() (*Framebuffer, []byte, error) { return nil, nil, ErrBadSnapshot }

	ver, ok := r.Byte()
	if !ok || ver != snapshotVersion {
		return fail()
	}
	w, ok := r.BoundedUvarint(snapMaxDim)
	if !ok || w < 1 {
		return fail()
	}
	h, ok := r.BoundedUvarint(snapMaxDim)
	if !ok || h < 1 {
		return fail()
	}
	f := NewFramebuffer(int(w), int(h))
	if !decodeSnapshotMeta(&r, f) {
		return fail()
	}

	for i := 0; i < f.H; i++ {
		if !decodeRow(&r, f.rows[i].Cells) {
			return fail()
		}
		f.rows[i].gen = nextGen()
	}

	sbCount, ok := r.BoundedUvarint(snapMaxScrollback)
	if !ok {
		return fail()
	}
	if sbCount > 0 {
		if f.scrollbackMax < 0 || sbCount > uint64(f.effectiveScrollbackMax()) {
			return fail()
		}
		hist := &scrollHistory{rows: make([]*Row, 0, int(sbCount))}
		for i := uint64(0); i < sbCount; i++ {
			width, ok := r.BoundedUvarint(snapMaxScrollWidth)
			if !ok {
				return fail()
			}
			row := &Row{Cells: make([]Cell, int(width)), gen: nextGen()}
			if !decodeRow(&r, row.Cells) {
				return fail()
			}
			hist.rows = append(hist.rows, row)
		}
		f.sb = hist
		f.sbOff, f.sbLen = 0, len(hist.rows)
	}
	return f, r.Rest(), nil
}

// decodeSnapshotMeta decodes the draw-state/title/counter section of the
// snapshot format (everything appendSnapshotMeta wrote after the W and H
// fields) into f, whose dimensions must already be set.
func decodeSnapshotMeta(r *binio.Reader, f *Framebuffer) bool {
	ds := &f.DS

	fl, ok := r.Uvarint()
	if !ok {
		return false
	}
	ds.NextPrintWraps = fl&snapNextPrintWraps != 0
	ds.savedCursorSet = fl&snapSavedCursorSet != 0
	ds.SavedOriginMode = fl&snapSavedOriginMode != 0
	ds.InsertMode = fl&snapInsertMode != 0
	ds.OriginMode = fl&snapOriginMode != 0
	ds.AutoWrapMode = fl&snapAutoWrapMode != 0
	ds.CursorVisible = fl&snapCursorVisible != 0
	ds.ReverseVideo = fl&snapReverseVideo != 0
	ds.ApplicationCursorKeys = fl&snapAppCursorKeys != 0
	ds.ApplicationKeypad = fl&snapAppKeypad != 0
	ds.BracketedPaste = fl&snapBracketedPaste != 0

	coords := []*int{
		&ds.CursorRow, &ds.CursorCol, &ds.ScrollTop, &ds.ScrollBottom,
		&ds.SavedCursorRow, &ds.SavedCursorCol,
	}
	for _, dst := range coords {
		v, ok := r.BoundedUvarint(snapMaxDim)
		if !ok {
			return false
		}
		*dst = int(v)
	}
	if ds.CursorRow >= f.H || ds.CursorCol >= f.W ||
		ds.ScrollTop >= f.H || ds.ScrollBottom >= f.H || ds.ScrollTop > ds.ScrollBottom {
		return false
	}
	if ds.Rend, ok = decodeRenditions(r); !ok {
		return false
	}
	if ds.SavedRend, ok = decodeRenditions(r); !ok {
		return false
	}
	tabBytes, ok := r.Bytes((f.W + 7) / 8)
	if !ok {
		return false
	}
	for i := range ds.Tabs {
		ds.Tabs[i] = tabBytes[i/8]&(1<<(i%8)) != 0
	}

	tlen, ok := r.BoundedUvarint(snapMaxTitle)
	if !ok {
		return false
	}
	title, ok := r.Bytes(int(tlen))
	if !ok {
		return false
	}
	f.Title = string(title)
	if f.BellCount, ok = r.Uvarint(); !ok {
		return false
	}
	if f.EchoAck, ok = r.Uvarint(); !ok {
		return false
	}
	sbMax, ok := r.Varint()
	if !ok || sbMax > snapMaxScrollback || sbMax < -1 {
		return false
	}
	f.scrollbackMax = int(sbMax)
	return true
}
